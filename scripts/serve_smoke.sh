#!/usr/bin/env bash
# Campaign-server smoke: boot the tinysdr_serve daemon, submit the same
# multi-PHY campaign twice through tinysdr_submit, and assert the serve
# layer's headline contract — the second submission is >= 90% cache hits
# and both result documents are byte-identical. Artifacts (job, results,
# summaries, server stats, journals) land in the output directory for CI
# upload.
#
# Usage: scripts/serve_smoke.sh [output_dir]
set -euo pipefail
cd "$(dirname "$0")/.."

out_dir="${1:-$(mktemp -d)}"
mkdir -p "$out_dir"
socket="$out_dir/serve.sock"

cat > "$out_dir/job.json" <<'EOF'
{
  "schema": "tinysdr-job-v1",
  "name": "serve-smoke",
  "sweeps": [
    {"phy": "lora",   "rssi": [-124, -122, -120], "trials": 8, "payload_bytes": 8, "base_seed": 77},
    {"phy": "ble",    "rssi": [-96, -93],         "trials": 8, "payload_bytes": 8, "base_seed": 77},
    {"phy": "zigbee", "rssi": [-95, -92],         "trials": 8, "payload_bytes": 8, "base_seed": 77},
    {"phy": "sigfox", "rssi": [-132, -129],       "trials": 8, "payload_bytes": 8, "base_seed": 77},
    {"phy": "nbiot",  "rssi": [-126, -123],       "trials": 8, "payload_bytes": 8, "base_seed": 77}
  ],
  "fleets": [
    {"nodes": 8, "trials_per_node": 4, "payload_bytes": 8, "base_seed": 5, "deployment_seed": 2024}
  ]
}
EOF

echo "== serve smoke: starting daemon =="
./build/src/serve/tinysdr_serve \
  --socket "$socket" \
  --cache-journal "$out_dir/cache.ndjson" \
  --job-journal "$out_dir/jobs.ndjson" \
  --threads 2 > "$out_dir/serve.log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2> /dev/null || true' EXIT

# Wait for the socket to appear (daemon startup is fast, but not atomic).
for _ in $(seq 1 100); do
  [[ -S "$socket" ]] && break
  sleep 0.05
done
[[ -S "$socket" ]] || { echo "serve_smoke: daemon never bound $socket"; exit 1; }

echo "== serve smoke: submitting the campaign twice =="
./build/src/serve/tinysdr_submit --socket "$socket" --job "$out_dir/job.json" \
  --wait --out "$out_dir/result1.json" --summary "$out_dir/summary1.json"
./build/src/serve/tinysdr_submit --socket "$socket" --job "$out_dir/job.json" \
  --wait --out "$out_dir/result2.json" --summary "$out_dir/summary2.json"
./build/src/serve/tinysdr_submit --socket "$socket" --stats \
  > "$out_dir/stats.json"
./build/src/serve/tinysdr_submit --socket "$socket" --shutdown
wait "$serve_pid"
trap - EXIT

echo "== serve smoke: checking the contract =="
cmp "$out_dir/result1.json" "$out_dir/result2.json"
echo "serve_smoke: result documents are byte-identical"

if command -v python3 > /dev/null; then
  python3 scripts/check_bench_json.py \
    --schema tinysdr-job-v1 "$out_dir/job.json"
  python3 scripts/check_bench_json.py \
    --schema tinysdr-result-v1 "$out_dir/result1.json" "$out_dir/result2.json"
  # First pass computes everything; the resubmission must be >= 90% hits.
  python3 scripts/check_bench_json.py "$out_dir/summary1.json" \
    --eq "cache_hit_rate=0.0" --gt "points=0"
  python3 scripts/check_bench_json.py "$out_dir/summary2.json" \
    --gt "cache_hit_rate=0.899" --gt "points=0"
else
  echo "serve_smoke: python3 not found, skipping JSON validation"
fi

echo "serve_smoke: OK"
