#!/usr/bin/env python3
"""Perf-regression gate over tinysdr-bench-v1 documents.

Compares current bench runs against a checked-in baseline and fails on
regression. Three modes:

  check (default)
      perf_gate.py --baseline BENCH_x.json --current run1.json [run2.json...]
                   [--tolerance 0.10] [--timing-tolerance T]
                   [--ignore KEY]... [--report report.json]
      Multiple --current files are noise-merged first (min for
      lower-is-better metrics, max for higher-is-better), so rerunning a
      bench a few times filters scheduler noise before the diff.

  record
      perf_gate.py --write-baseline BENCH_x.json --current run1.json ...
      Noise-merges the runs and writes the result as the new baseline.

  self-test
      perf_gate.py --self-test BENCH_x.json ...
      Proves the gate works on each baseline: baseline-vs-itself must
      pass; a synthetic +25% timing regression, a perturbed deterministic
      scalar, and a dropped series row must each fail.

Metrics are classified by key name, because tolerance must differ by
kind:

  ignored        machine-dependent config echoes (resolved_default_threads)
  timing         lower is better; `--timing-tolerance` (wall-clock noise,
                 cross-machine variation — CI passes a loose value)
  rate           higher is better; also `--timing-tolerance`
  deterministic  everything else — simulation outputs that must reproduce
                 per seed; tight `--tolerance` (default 10%), so e.g. a
                 byte_identical flag dropping 1 -> 0 always fails.

Exit status: 0 pass, 1 regression (or self-test misbehavior), 2 usage.
The --report JSON (schema tinysdr-perf-gate-v1) lists every comparison
with its class, values, limit and status, for CI artifact upload.
"""

import argparse
import json
import sys

from check_bench_json import BenchJsonError, load_bench

DEFAULT_IGNORE = ("resolved_default_threads",)

TIMING_MARKERS = ("_ns", "_us", "_ms", "seconds", "time_s", ".real_", ".cpu_")
RATE_MARKERS = ("per_s", "per_second", "per_hour", "speedup", "throughput")


def classify(key, ignore):
    """Metric class for a scalar key or series column label."""
    for pattern in ignore:
        if pattern in key:
            return "ignored"
    for marker in RATE_MARKERS:
        if marker in key:
            return "rate"
    for marker in TIMING_MARKERS:
        if marker in key:
            return "timing"
    return "deterministic"


def merge_runs(docs, ignore):
    """Noise-merge repeated runs of one bench into a single document.

    Timing scalars keep the minimum across runs (the least-disturbed
    measurement), rates keep the maximum, deterministic scalars and all
    series come from the first run (they must not vary per seed).
    """
    merged = json.loads(json.dumps(docs[0]))  # deep copy
    for doc in docs[1:]:
        for key, value in doc.get("scalars", {}).items():
            if key not in merged["scalars"]:
                merged["scalars"][key] = value
                continue
            kind = classify(key, ignore)
            if kind == "timing":
                merged["scalars"][key] = min(merged["scalars"][key], value)
            elif kind == "rate":
                merged["scalars"][key] = max(merged["scalars"][key], value)
    return merged


def _check_value(key, kind, base, cur, tolerance, timing_tolerance):
    """One comparison -> (status, limit_text). status: ok|regression."""
    if kind == "ignored":
        return "ignored", ""
    if kind == "timing":
        limit = base * (1.0 + timing_tolerance)
        return ("ok" if cur <= limit or cur <= base else "regression",
                f"<= {limit:.6g}")
    if kind == "rate":
        limit = base * (1.0 - timing_tolerance)
        return ("ok" if cur >= limit or cur >= base else "regression",
                f">= {limit:.6g}")
    # Deterministic: symmetric relative error against the baseline scale.
    scale = max(abs(base), 1e-12)
    rel = abs(cur - base) / scale
    return ("ok" if rel <= tolerance else "regression",
            f"|rel| <= {tolerance:.6g}")


def compare(baseline, current, tolerance, timing_tolerance, ignore):
    """Diff two bench documents; returns (passed, checks list)."""
    checks = []
    passed = True

    def add(key, kind, base, cur, status, limit):
        nonlocal passed
        if status == "regression":
            passed = False
        checks.append({"key": key, "class": kind, "baseline": base,
                       "current": cur, "limit": limit, "status": status})

    base_scalars = baseline.get("scalars", {})
    cur_scalars = current.get("scalars", {})
    for key, base in sorted(base_scalars.items()):
        kind = classify(key, ignore)
        if key not in cur_scalars:
            add(key, kind, base, None, "regression", "present")
            continue
        cur = cur_scalars[key]
        status, limit = _check_value(key, kind, base, cur, tolerance,
                                     timing_tolerance)
        add(key, kind, base, cur, status, limit)
    for key in sorted(set(cur_scalars) - set(base_scalars)):
        checks.append({"key": key, "class": classify(key, ignore),
                       "baseline": None, "current": cur_scalars[key],
                       "limit": "", "status": "new"})

    base_series = baseline.get("series", {})
    cur_series = current.get("series", {})
    for name, base_s in sorted(base_series.items()):
        if name not in cur_series:
            add(f"series:{name}", "series", None, None, "regression",
                "present")
            continue
        cur_s = cur_series[name]
        if (base_s.get("x_label") != cur_s.get("x_label")
                or base_s.get("y_labels") != cur_s.get("y_labels")):
            add(f"series:{name}", "series", None, None, "regression",
                "labels match")
            continue
        if len(base_s["rows"]) != len(cur_s["rows"]):
            add(f"series:{name}.rows", "series", len(base_s["rows"]),
                len(cur_s["rows"]), "regression", "row count matches")
            continue
        labels = [base_s.get("x_label", "x")] + list(base_s["y_labels"])
        ok = True
        for r, (brow, crow) in enumerate(zip(base_s["rows"], cur_s["rows"])):
            for c, (bval, cval) in enumerate(zip(brow, crow)):
                kind = classify(labels[c], ignore)
                status, limit = _check_value(
                    f"{name}[{r}].{labels[c]}", kind, bval, cval, tolerance,
                    timing_tolerance)
                if status == "regression":
                    ok = False
                    add(f"series:{name}[{r}].{labels[c]}", kind, bval, cval,
                        status, limit)
        if ok:
            add(f"series:{name}", "series", len(base_s["rows"]),
                len(cur_s["rows"]), "ok", "cells within tolerance")
    return passed, checks


def write_report(path, baseline_path, passed, checks):
    report = {"schema": "tinysdr-perf-gate-v1",
              "baseline": baseline_path,
              "result": "pass" if passed else "fail",
              "checks": checks}
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=1)
        f.write("\n")


def print_summary(passed, checks, baseline_path):
    regressions = [c for c in checks if c["status"] == "regression"]
    for c in regressions:
        print(f"perf_gate: REGRESSION {c['key']} ({c['class']}): "
              f"baseline={c['baseline']} current={c['current']} "
              f"want {c['limit']}", file=sys.stderr)
    counted = [c for c in checks if c["status"] in ("ok", "regression")]
    verdict = "PASS" if passed else "FAIL"
    print(f"perf_gate: {verdict} vs {baseline_path}: "
          f"{len(counted) - len(regressions)}/{len(counted)} checks ok, "
          f"{len(regressions)} regression(s)")


def self_test(paths, tolerance, timing_tolerance, ignore):
    """Gate sanity proof per baseline; returns True when all behave."""
    ok = True

    def expect(name, path, want_pass, doc):
        nonlocal ok
        base = load_bench(path)
        passed, _ = compare(base, doc, tolerance, timing_tolerance, ignore)
        good = passed == want_pass
        if not good:
            ok = False
        verdict = "ok" if good else "MISBEHAVED"
        print(f"perf_gate self-test [{path}] {name}: "
              f"{'passed' if passed else 'failed'} as "
              f"{'expected' if good else 'NOT expected'} ({verdict})")

    for path in paths:
        doc = load_bench(path)
        expect("identity", path, True, doc)

        timing_keys = [k for k in doc.get("scalars", {})
                       if classify(k, ignore) == "timing"]
        if timing_keys:
            worse = json.loads(json.dumps(doc))
            worse["scalars"][timing_keys[0]] *= 1.25
            expect(f"+25% on {timing_keys[0]}", path, False, worse)

        det_keys = [k for k in doc.get("scalars", {})
                    if classify(k, ignore) == "deterministic"]
        if det_keys:
            perturbed = json.loads(json.dumps(doc))
            perturbed["scalars"][det_keys[0]] = (
                perturbed["scalars"][det_keys[0]] * 2.0 + 1.0)
            expect(f"perturbed {det_keys[0]}", path, False, perturbed)

        full_series = [n for n, s in doc.get("series", {}).items()
                       if s.get("rows")]
        if full_series:
            clipped = json.loads(json.dumps(doc))
            clipped["series"][full_series[0]]["rows"].pop()
            expect(f"dropped row of {full_series[0]}", path, False, clipped)
    return ok


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", help="checked-in baseline to diff against")
    parser.add_argument("--current", nargs="+", default=[],
                        help="current bench JSON run(s); repeats are "
                             "noise-merged")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="record mode: write merged --current runs here")
    parser.add_argument("--self-test", nargs="+", metavar="BASELINE",
                        help="prove the gate passes/fails correctly on "
                             "these baselines")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative tolerance for deterministic metrics "
                             "(default 0.10)")
    parser.add_argument("--timing-tolerance", type=float, default=None,
                        help="relative tolerance for timing/rate metrics "
                             "(default: same as --tolerance; CI uses a "
                             "loose value since runners differ from the "
                             "baseline machine)")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="SUBSTRING",
                        help="additional key substrings to skip")
    parser.add_argument("--report", metavar="PATH",
                        help="write a tinysdr-perf-gate-v1 comparison "
                             "report here")
    args = parser.parse_args(argv)

    timing_tolerance = (args.timing_tolerance if args.timing_tolerance
                        is not None else args.tolerance)
    ignore = tuple(DEFAULT_IGNORE) + tuple(args.ignore)

    try:
        if args.self_test:
            return 0 if self_test(args.self_test, args.tolerance,
                                  timing_tolerance, ignore) else 1

        if not args.current:
            parser.error("--current is required outside --self-test")
        docs = [load_bench(p) for p in args.current]
        merged = merge_runs(docs, ignore)

        if args.write_baseline:
            with open(args.write_baseline, "w", encoding="utf-8") as f:
                json.dump(merged, f, indent=1, sort_keys=True)
                f.write("\n")
            print(f"perf_gate: wrote baseline {args.write_baseline} "
                  f"from {len(docs)} run(s)")
            return 0

        if not args.baseline:
            parser.error("--baseline or --write-baseline or --self-test "
                         "is required")
        baseline = load_bench(args.baseline)
        passed, checks = compare(baseline, merged, args.tolerance,
                                 timing_tolerance, ignore)
        if args.report:
            write_report(args.report, args.baseline, passed, checks)
        print_summary(passed, checks, args.baseline)
        return 0 if passed else 1
    except BenchJsonError as err:
        print(f"perf_gate: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
