#!/usr/bin/env bash
# Tier-1 verification: build + full test suite in the default configuration,
# then a second pass under AddressSanitizer + UndefinedBehaviorSanitizer and
# a ThreadSanitizer pass over the exec engine / parallel campaign suites.
# Usage: scripts/verify.sh [--fast]   (--fast skips the sanitizer passes)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: default build =="
cmake --preset default
cmake --build --preset default -j"$(nproc)"
ctest --preset default -j"$(nproc)"

echo "== telemetry smoke: instrumented fault campaign =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./build/bench/bench_trace_campaign \
  --trace "$smoke_dir/trace.json" \
  --metrics "$smoke_dir/metrics.json" \
  --json "$smoke_dir/bench.json"
if command -v python3 > /dev/null; then
  for f in trace metrics bench; do
    python3 -m json.tool "$smoke_dir/$f.json" > /dev/null
    echo "smoke: $f.json parses"
  done
else
  echo "smoke: python3 not found, skipping JSON validation"
fi

echo "== phy smoke: LinkSimulator-backed figure bench =="
./build/bench/bench_fig11_lora_demod_ser --threads 2 \
  --json "$smoke_dir/phy_bench.json" > /dev/null
if command -v python3 > /dev/null; then
  python3 - "$smoke_dir/phy_bench.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "tinysdr-bench-v1", doc.get("schema")
series = doc["series"]["ser_vs_rssi"]
assert series["rows"], "empty sweep"
assert all(len(r) == 1 + len(series["y_labels"]) for r in series["rows"])
print(f"smoke: phy_bench.json validates ({len(series['rows'])} sweep points)")
PY
else
  echo "smoke: python3 not found, skipping JSON validation"
fi

echo "== adversary smoke: jammers + coexistence + OTA attack campaign =="
./build/bench/bench_adversary_campaign --threads 2 \
  --json "$smoke_dir/adversary_bench.json" > /dev/null
if command -v python3 > /dev/null; then
  python3 - "$smoke_dir/adversary_bench.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "tinysdr-bench-v1", doc.get("schema")
jam = doc["series"]["jammer_ser_vs_rssi"]
assert jam["rows"], "empty jammer sweep"
assert all(len(r) == 1 + len(jam["y_labels"]) for r in jam["rows"])
coex = doc["series"]["coexistence_per"]
assert coex["rows"], "empty coexistence matrix"
s = doc["scalars"]
# Survival contract: every attack regime succeeds fleet-wide while being
# detected, and the rollback push is refused by every node.
for name in ("jam-10%", "forge-ack-5%", "truncate-5%", "replay-10%",
             "combined"):
    assert s[name + ".success_rate"] == 1.0, name
assert s["jam-10%.jammed_packets"] > 0
assert s["forge-ack-5%.forged_acks_discarded"] > 0
assert s["truncate-5%.truncated_dropped"] > 0
assert s["replay-10%.replays_dropped"] > 0
assert s["rollback-push.success_rate"] == 0.0
assert s["rollback-push.rollback_rejections"] > 0
print("smoke: adversary_bench.json validates (attacks survived, "
      "rollback refused)")
PY
else
  echo "smoke: python3 not found, skipping JSON validation"
fi

echo "== fuzz smoke: every harness over its seed corpus =="
./build/tests/tinysdr_fuzz --iterations 500 --artifacts "$smoke_dir/fuzz-artifacts"

if [[ "${1:-}" != "--fast" ]]; then
  echo "== tier-1: ASan+UBSan build =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j"$(nproc)"
  ctest --preset asan-ubsan -j"$(nproc)"

  echo "== tier-1: TSan build (exec + campaign suites) =="
  cmake --preset tsan
  cmake --build --preset tsan -j"$(nproc)"
  ctest --preset tsan -j"$(nproc)" \
    -R "SeedStreams|ParallelFor|TaskGroup|WorkerPool|ParallelCampaign|Campaign|FaultCampaign"
fi

echo "verify: OK"
