#!/usr/bin/env bash
# Tier-1 verification: build + full test suite in the default configuration,
# telemetry/phy/adversary/serve/perf smokes over the bench binaries, then a
# second pass under AddressSanitizer + UndefinedBehaviorSanitizer and a
# ThreadSanitizer pass over the exec engine / parallel campaign suites.
# Usage: scripts/verify.sh [--fast]   (--fast skips the sanitizer passes)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: default build =="
cmake --preset default
cmake --build --preset default -j"$(nproc)"
ctest --preset default -j"$(nproc)"

have_python=1
command -v python3 > /dev/null || have_python=0
check_json() {
  if [[ "$have_python" == 1 ]]; then
    python3 scripts/check_bench_json.py "$@"
  else
    echo "smoke: python3 not found, skipping JSON validation"
  fi
}

echo "== telemetry smoke: instrumented fault campaign =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./build/bench/bench_trace_campaign \
  --trace "$smoke_dir/trace.json" \
  --metrics "$smoke_dir/metrics.json" \
  --flight "$smoke_dir/flight.json" \
  --json "$smoke_dir/bench.json"
# Chrome trace / metrics / flight exports are their own schemas; the bench
# summary is a full tinysdr-bench-v1 document with flight counts.
check_json --parse-only "$smoke_dir/trace.json" "$smoke_dir/metrics.json" \
  "$smoke_dir/flight.json"
check_json "$smoke_dir/bench.json" --gt "flight.records=0"

echo "== phy smoke: LinkSimulator-backed figure bench =="
./build/bench/bench_fig11_lora_demod_ser --threads 2 \
  --json "$smoke_dir/phy_bench.json" > /dev/null
check_json "$smoke_dir/phy_bench.json" --series ser_vs_rssi

echo "== adversary smoke: jammers + coexistence + OTA attack campaign =="
./build/bench/bench_adversary_campaign --threads 2 \
  --json "$smoke_dir/adversary_bench.json" > /dev/null
# Survival contract: every attack regime succeeds fleet-wide while being
# detected, and the rollback push is refused by every node.
check_json "$smoke_dir/adversary_bench.json" \
  --series jammer_ser_vs_rssi --series coexistence_per \
  --eq "jam-10%.success_rate=1.0" \
  --eq "forge-ack-5%.success_rate=1.0" \
  --eq "truncate-5%.success_rate=1.0" \
  --eq "replay-10%.success_rate=1.0" \
  --eq "combined.success_rate=1.0" \
  --gt "jam-10%.jammed_packets=0" \
  --gt "forge-ack-5%.forged_acks_discarded=0" \
  --gt "truncate-5%.truncated_dropped=0" \
  --gt "replay-10%.replays_dropped=0" \
  --eq "rollback-push.success_rate=0.0" \
  --gt "rollback-push.rollback_rejections=0"

echo "== serve smoke: campaign daemon + memoization cache contract =="
scripts/serve_smoke.sh "$smoke_dir/serve"

echo "== flow smoke: zero-copy streaming runtime =="
# The bench doubles as the streaming smoke: it fails (non-zero exit) if
# the threaded sink diverges from the single-thread schedule or the
# graph output drifts from the copy-engine reference.
./build/bench/bench_flow_streaming \
  --json "$smoke_dir/flow_streaming.json" > /dev/null
check_json "$smoke_dir/flow_streaming.json" \
  --eq "deterministic_match=1.0" --eq "copy_match_ok=1.0" \
  --gt "speedup_spsc_vs_copy=1.0"

echo "== impairment smoke: ablation + batch/stream chain identity =="
# The bench exits non-zero if the zero-magnitude chain perturbs the trial
# engine or the streaming chain diverges from the batch one.
./build/bench/bench_impairments \
  --json "$smoke_dir/impairments.json" > /dev/null
check_json "$smoke_dir/impairments.json" \
  --series ablation_per \
  --eq "batch_stream_identical=1.0" --eq "zero_chain_identical=1.0"

echo "== perf gate: bench runs vs checked-in baselines =="
if [[ "$have_python" == 1 ]]; then
  # Local machines differ from the baseline machine, so wall-clock and
  # rate metrics get a loose tolerance here; deterministic simulation
  # outputs must still reproduce within the default 10%.
  # Default google-benchmark min_time: the baselines were recorded at
  # default settings, and short runs inflate per-iter costs (setup and
  # cache warm-up stop amortizing), tripping false regressions.
  ./build/bench/bench_micro_dsp --json "$smoke_dir/micro_dsp.json" > /dev/null
  ./build/bench/bench_parallel_scaling \
    --json "$smoke_dir/parallel_scaling.json" > /dev/null
  python3 scripts/perf_gate.py \
    --baseline bench/baselines/BENCH_micro_dsp.json \
    --current "$smoke_dir/micro_dsp.json" \
    --timing-tolerance 3.0 \
    --report "$smoke_dir/perf_gate_micro_dsp.json"
  python3 scripts/perf_gate.py \
    --baseline bench/baselines/BENCH_parallel_scaling.json \
    --current "$smoke_dir/parallel_scaling.json" \
    --timing-tolerance 3.0 --ignore ".seconds" --ignore ".speedup" \
    --ignore "best_speedup" \
    --report "$smoke_dir/perf_gate_parallel_scaling.json"
  # warm_throughput is pure cache-lookup time — too noisy to gate; the
  # deterministic contract scalars (byte_identical, hit rate, points)
  # still gate tightly.
  ./build/bench/bench_serve_throughput --threads 2 \
    --json "$smoke_dir/serve_throughput.json" > /dev/null
  python3 scripts/perf_gate.py \
    --baseline bench/baselines/BENCH_serve_throughput.json \
    --current "$smoke_dir/serve_throughput.json" \
    --timing-tolerance 3.0 --ignore warm_throughput \
    --report "$smoke_dir/perf_gate_serve_throughput.json"
  # flow_streaming.json was produced by the flow smoke above; the
  # deterministic contract scalars gate tightly, rates loosely.
  python3 scripts/perf_gate.py \
    --baseline bench/baselines/BENCH_flow_streaming.json \
    --current "$smoke_dir/flow_streaming.json" \
    --timing-tolerance 3.0 --ignore ".seconds" \
    --report "$smoke_dir/perf_gate_flow_streaming.json"
  # impairments.json was produced by the impairment smoke above; every
  # number in it is deterministic, so it gates at the default tolerance.
  python3 scripts/perf_gate.py \
    --baseline bench/baselines/BENCH_impairments.json \
    --current "$smoke_dir/impairments.json" \
    --report "$smoke_dir/perf_gate_impairments.json"
else
  echo "smoke: python3 not found, skipping perf gate"
fi

echo "== fuzz smoke: every harness over its seed corpus =="
./build/tests/tinysdr_fuzz --iterations 500 --artifacts "$smoke_dir/fuzz-artifacts"

if [[ "${1:-}" != "--fast" ]]; then
  echo "== tier-1: ASan+UBSan build =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j"$(nproc)"
  ctest --preset asan-ubsan -j"$(nproc)"

  echo "== tier-1: TSan build (exec + campaign + flow suites) =="
  cmake --preset tsan
  cmake --build --preset tsan -j"$(nproc)"
  ctest --preset tsan -j"$(nproc)" \
    -R "SeedStreams|ParallelFor|TaskGroup|WorkerPool|ParallelCampaign|Campaign|FaultCampaign|SpscRing|FlowThreaded"
fi

echo "verify: OK"
