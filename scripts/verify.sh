#!/usr/bin/env bash
# Tier-1 verification: build + full test suite in the default configuration,
# then a second pass under AddressSanitizer + UndefinedBehaviorSanitizer.
# Usage: scripts/verify.sh [--fast]   (--fast skips the sanitizer pass)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: default build =="
cmake --preset default
cmake --build --preset default -j"$(nproc)"
ctest --preset default -j"$(nproc)"

if [[ "${1:-}" != "--fast" ]]; then
  echo "== tier-1: ASan+UBSan build =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j"$(nproc)"
  ctest --preset asan-ubsan -j"$(nproc)"
fi

echo "verify: OK"
