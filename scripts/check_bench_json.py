#!/usr/bin/env python3
"""Validate tinysdr JSON documents (bench, job, and result schemas).

One validator for every smoke step in scripts/verify.sh and CI, and the
loader the perf gate (scripts/perf_gate.py) builds on. Checks, in order:

  1. The file parses as JSON.
  2. `schema` matches (default tinysdr-bench-v1; --schema overrides,
     --parse-only stops after step 1).
  3. Schema-specific shape checks:
     - tinysdr-bench-v1: `config` and `scalars` are name->number maps
       and `series` entries are shape-consistent (every row has
       1 + len(y_labels) columns).
     - tinysdr-job-v1: a campaign job as submitted to tinysdr_serve —
       at least one of `sweeps` / `fleets`, each sweep naming a phy and
       a non-empty numeric rssi grid.
     - tinysdr-result-v1: a campaign result as produced by the server —
       embeds the canonical job, one `sweeps` entry per job sweep with
       7-column points, one `fleets` entry per job fleet with 9-column
       per-node rows.
  4. Any requested content assertions (bench schema only):
       --series NAME        series exists and has at least one row
       --eq NAME=VALUE      scalar equals VALUE exactly
       --gt NAME=VALUE      scalar is strictly greater than VALUE
       --config-eq NAME=VALUE  config entry equals VALUE exactly

Exits 0 when every file passes every check, 1 with a message otherwise.
"""

import argparse
import json
import sys


class BenchJsonError(Exception):
    """A bench document failed validation."""


def load_bench(path, schema="tinysdr-bench-v1"):
    """Load and shape-check one bench document; raises BenchJsonError."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise BenchJsonError(f"{path}: {err}") from err
    if not isinstance(doc, dict):
        raise BenchJsonError(f"{path}: top level is not an object")
    if schema is not None:
        got = doc.get("schema")
        if got != schema:
            raise BenchJsonError(f"{path}: schema is {got!r}, want {schema!r}")
    for block in ("config", "scalars"):
        entries = doc.get(block, {})
        if not isinstance(entries, dict):
            raise BenchJsonError(f"{path}: {block!r} is not an object")
        for name, value in entries.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise BenchJsonError(
                    f"{path}: {block} entry {name!r} is not a number: "
                    f"{value!r}")
    series = doc.get("series", {})
    if not isinstance(series, dict):
        raise BenchJsonError(f"{path}: 'series' is not an object")
    for name, s in series.items():
        if not isinstance(s, dict):
            raise BenchJsonError(f"{path}: series {name!r} is not an object")
        y_labels = s.get("y_labels")
        rows = s.get("rows")
        if not isinstance(y_labels, list) or not isinstance(rows, list):
            raise BenchJsonError(
                f"{path}: series {name!r} missing y_labels/rows lists")
        want = 1 + len(y_labels)
        for i, row in enumerate(rows):
            if not isinstance(row, list) or len(row) != want:
                raise BenchJsonError(
                    f"{path}: series {name!r} row {i} has "
                    f"{len(row) if isinstance(row, list) else '?'} columns, "
                    f"want {want}")
            for v in row:
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    raise BenchJsonError(
                        f"{path}: series {name!r} row {i} has a "
                        f"non-number: {v!r}")
    return doc


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _load_json(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise BenchJsonError(f"{path}: {err}") from err


def check_job_doc(doc, path, ctx="job"):
    """Shape-check a tinysdr-job-v1 document (or a result's embedded job)."""
    if not isinstance(doc, dict):
        raise BenchJsonError(f"{path}: {ctx} is not an object")
    if doc.get("schema") != "tinysdr-job-v1":
        raise BenchJsonError(
            f"{path}: {ctx} schema is {doc.get('schema')!r}, "
            f"want 'tinysdr-job-v1'")
    sweeps = doc.get("sweeps", [])
    fleets = doc.get("fleets", [])
    if not isinstance(sweeps, list) or not isinstance(fleets, list):
        raise BenchJsonError(f"{path}: {ctx} sweeps/fleets are not arrays")
    if not sweeps and not fleets:
        raise BenchJsonError(f"{path}: {ctx} has no sweeps and no fleets")
    for i, sweep in enumerate(sweeps):
        where = f"{ctx} sweeps[{i}]"
        if not isinstance(sweep, dict):
            raise BenchJsonError(f"{path}: {where} is not an object")
        phy = sweep.get("phy")
        if not isinstance(phy, str) or not phy:
            raise BenchJsonError(f"{path}: {where} needs a 'phy' name")
        rssi = sweep.get("rssi")
        if (not isinstance(rssi, list) or not rssi
                or not all(_is_number(x) for x in rssi)):
            raise BenchJsonError(
                f"{path}: {where} 'rssi' must be a non-empty number array")
        for knob in ("trials", "payload_bytes", "base_seed", "pad_samples",
                     "noise_figure_db"):
            if knob in sweep and not _is_number(sweep[knob]):
                raise BenchJsonError(
                    f"{path}: {where} {knob!r} is not a number")
    for i, fleet in enumerate(fleets):
        where = f"{ctx} fleets[{i}]"
        if not isinstance(fleet, dict):
            raise BenchJsonError(f"{path}: {where} is not an object")
        for knob in ("nodes", "trials_per_node", "payload_bytes",
                     "base_seed", "deployment_seed"):
            if knob in fleet and not _is_number(fleet[knob]):
                raise BenchJsonError(
                    f"{path}: {where} {knob!r} is not a number")
        if "phy" in fleet and not isinstance(fleet["phy"], str):
            raise BenchJsonError(f"{path}: {where} 'phy' is not a string")
    return doc


def check_result_doc(doc, path):
    """Shape-check a tinysdr-result-v1 document from the campaign server."""
    if not isinstance(doc, dict):
        raise BenchJsonError(f"{path}: top level is not an object")
    if doc.get("schema") != "tinysdr-result-v1":
        raise BenchJsonError(
            f"{path}: schema is {doc.get('schema')!r}, "
            f"want 'tinysdr-result-v1'")
    job = check_job_doc(doc.get("job"), path, ctx="embedded job")
    sweeps = doc.get("sweeps")
    fleets = doc.get("fleets")
    if not isinstance(sweeps, list) or not isinstance(fleets, list):
        raise BenchJsonError(f"{path}: result sweeps/fleets are not arrays")
    if len(sweeps) != len(job.get("sweeps", [])):
        raise BenchJsonError(
            f"{path}: {len(sweeps)} sweep results for "
            f"{len(job.get('sweeps', []))} job sweeps")
    if len(fleets) != len(job.get("fleets", [])):
        raise BenchJsonError(
            f"{path}: {len(fleets)} fleet results for "
            f"{len(job.get('fleets', []))} job fleets")
    for i, sweep in enumerate(sweeps):
        points = sweep.get("points") if isinstance(sweep, dict) else None
        if not isinstance(points, list):
            raise BenchJsonError(f"{path}: sweeps[{i}] has no points array")
        if len(points) != len(job["sweeps"][i].get("rssi", [])):
            raise BenchJsonError(
                f"{path}: sweeps[{i}] has {len(points)} points for "
                f"{len(job['sweeps'][i].get('rssi', []))} grid rssi values")
        for k, point in enumerate(points):
            # [rssi, frames, frame_errors, bits, bit_errors, symbols,
            #  symbol_errors]
            if (not isinstance(point, list) or len(point) != 7
                    or not all(_is_number(x) for x in point)):
                raise BenchJsonError(
                    f"{path}: sweeps[{i}] point {k} is not a 7-number row")
    for i, fleet in enumerate(fleets):
        rows = fleet.get("per_node") if isinstance(fleet, dict) else None
        if not isinstance(rows, list):
            raise BenchJsonError(f"{path}: fleets[{i}] has no per_node array")
        for k, row in enumerate(rows):
            # [node_id, "phy", rssi, frames, frame_errors, bits,
            #  bit_errors, symbols, symbol_errors]
            if (not isinstance(row, list) or len(row) != 9
                    or not _is_number(row[0])
                    or not isinstance(row[1], str)
                    or not all(_is_number(x) for x in row[2:])):
                raise BenchJsonError(
                    f"{path}: fleets[{i}] node row {k} is malformed")
    return doc


def _scalar(doc, path, name):
    scalars = doc.get("scalars", {})
    if name not in scalars:
        raise BenchJsonError(f"{path}: no scalar named {name!r}")
    return scalars[name]


def check_file(path, args):
    """Run every requested check against one file; raises BenchJsonError."""
    if args.parse_only:
        _load_json(path)
        return
    if args.schema == "tinysdr-job-v1":
        check_job_doc(_load_json(path), path)
        return
    if args.schema == "tinysdr-result-v1":
        check_result_doc(_load_json(path), path)
        return
    doc = load_bench(path, schema=args.schema)
    for name, want in args.config_eq:
        config = doc.get("config", {})
        if name not in config:
            raise BenchJsonError(f"{path}: no config entry named {name!r}")
        if config[name] != want:
            raise BenchJsonError(
                f"{path}: config {name} == {config[name]}, want {want}")
    for name in args.series:
        series = doc.get("series", {})
        if name not in series:
            raise BenchJsonError(f"{path}: no series named {name!r}")
        if not series[name]["rows"]:
            raise BenchJsonError(f"{path}: series {name!r} is empty")
    for name, want in args.eq:
        got = _scalar(doc, path, name)
        if got != want:
            raise BenchJsonError(f"{path}: scalar {name} == {got}, want {want}")
    for name, floor in args.gt:
        got = _scalar(doc, path, name)
        if not got > floor:
            raise BenchJsonError(
                f"{path}: scalar {name} == {got}, want > {floor}")


def _name_value(text):
    name, sep, value = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(f"expected NAME=VALUE, got {text!r}")
    try:
        return name, float(value)
    except ValueError as err:
        raise argparse.ArgumentTypeError(f"bad number in {text!r}") from err


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="bench JSON files to check")
    parser.add_argument("--schema", default="tinysdr-bench-v1",
                        help="expected 'schema' value")
    parser.add_argument("--parse-only", action="store_true",
                        help="only require the file to parse as JSON")
    parser.add_argument("--series", action="append", default=[],
                        metavar="NAME",
                        help="require a non-empty, shape-consistent series")
    parser.add_argument("--eq", action="append", default=[], type=_name_value,
                        metavar="NAME=VALUE", help="require scalar equality")
    parser.add_argument("--gt", action="append", default=[], type=_name_value,
                        metavar="NAME=VALUE",
                        help="require scalar strictly greater than VALUE")
    parser.add_argument("--config-eq", action="append", default=[],
                        type=_name_value, metavar="NAME=VALUE",
                        help="require config-block entry equality")
    args = parser.parse_args(argv)

    for path in args.files:
        try:
            check_file(path, args)
        except BenchJsonError as err:
            print(f"check_bench_json: FAIL: {err}", file=sys.stderr)
            return 1
        print(f"check_bench_json: OK: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
