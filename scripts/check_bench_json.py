#!/usr/bin/env python3
"""Validate tinysdr-bench-v1 JSON documents.

One validator for every smoke step in scripts/verify.sh and CI, and the
loader the perf gate (scripts/perf_gate.py) builds on. Checks, in order:

  1. The file parses as JSON.
  2. `schema` matches (default tinysdr-bench-v1; --schema overrides,
     --parse-only stops after step 1).
  3. `scalars` is a name->number map and `series` entries are
     shape-consistent: every row has 1 + len(y_labels) columns.
  4. Any requested content assertions:
       --series NAME        series exists and has at least one row
       --eq NAME=VALUE      scalar equals VALUE exactly
       --gt NAME=VALUE      scalar is strictly greater than VALUE

Exits 0 when every file passes every check, 1 with a message otherwise.
"""

import argparse
import json
import sys


class BenchJsonError(Exception):
    """A bench document failed validation."""


def load_bench(path, schema="tinysdr-bench-v1"):
    """Load and shape-check one bench document; raises BenchJsonError."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise BenchJsonError(f"{path}: {err}") from err
    if not isinstance(doc, dict):
        raise BenchJsonError(f"{path}: top level is not an object")
    if schema is not None:
        got = doc.get("schema")
        if got != schema:
            raise BenchJsonError(f"{path}: schema is {got!r}, want {schema!r}")
    scalars = doc.get("scalars", {})
    if not isinstance(scalars, dict):
        raise BenchJsonError(f"{path}: 'scalars' is not an object")
    for name, value in scalars.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise BenchJsonError(
                f"{path}: scalar {name!r} is not a number: {value!r}")
    series = doc.get("series", {})
    if not isinstance(series, dict):
        raise BenchJsonError(f"{path}: 'series' is not an object")
    for name, s in series.items():
        if not isinstance(s, dict):
            raise BenchJsonError(f"{path}: series {name!r} is not an object")
        y_labels = s.get("y_labels")
        rows = s.get("rows")
        if not isinstance(y_labels, list) or not isinstance(rows, list):
            raise BenchJsonError(
                f"{path}: series {name!r} missing y_labels/rows lists")
        want = 1 + len(y_labels)
        for i, row in enumerate(rows):
            if not isinstance(row, list) or len(row) != want:
                raise BenchJsonError(
                    f"{path}: series {name!r} row {i} has "
                    f"{len(row) if isinstance(row, list) else '?'} columns, "
                    f"want {want}")
            for v in row:
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    raise BenchJsonError(
                        f"{path}: series {name!r} row {i} has a "
                        f"non-number: {v!r}")
    return doc


def _scalar(doc, path, name):
    scalars = doc.get("scalars", {})
    if name not in scalars:
        raise BenchJsonError(f"{path}: no scalar named {name!r}")
    return scalars[name]


def check_file(path, args):
    """Run every requested check against one file; raises BenchJsonError."""
    if args.parse_only:
        try:
            with open(path, encoding="utf-8") as f:
                json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            raise BenchJsonError(f"{path}: {err}") from err
        return
    doc = load_bench(path, schema=args.schema)
    for name in args.series:
        series = doc.get("series", {})
        if name not in series:
            raise BenchJsonError(f"{path}: no series named {name!r}")
        if not series[name]["rows"]:
            raise BenchJsonError(f"{path}: series {name!r} is empty")
    for name, want in args.eq:
        got = _scalar(doc, path, name)
        if got != want:
            raise BenchJsonError(f"{path}: scalar {name} == {got}, want {want}")
    for name, floor in args.gt:
        got = _scalar(doc, path, name)
        if not got > floor:
            raise BenchJsonError(
                f"{path}: scalar {name} == {got}, want > {floor}")


def _name_value(text):
    name, sep, value = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(f"expected NAME=VALUE, got {text!r}")
    try:
        return name, float(value)
    except ValueError as err:
        raise argparse.ArgumentTypeError(f"bad number in {text!r}") from err


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="bench JSON files to check")
    parser.add_argument("--schema", default="tinysdr-bench-v1",
                        help="expected 'schema' value")
    parser.add_argument("--parse-only", action="store_true",
                        help="only require the file to parse as JSON")
    parser.add_argument("--series", action="append", default=[],
                        metavar="NAME",
                        help="require a non-empty, shape-consistent series")
    parser.add_argument("--eq", action="append", default=[], type=_name_value,
                        metavar="NAME=VALUE", help="require scalar equality")
    parser.add_argument("--gt", action="append", default=[], type=_name_value,
                        metavar="NAME=VALUE",
                        help="require scalar strictly greater than VALUE")
    args = parser.parse_args(argv)

    for path in args.files:
        try:
            check_file(path, args)
        except BenchJsonError as err:
            print(f"check_bench_json: FAIL: {err}", file=sys.stderr)
            return 1
        print(f"check_bench_json: OK: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
