// OTA testbed scenario (paper §3.4 + §5.3): the capability that makes a
// city-scale testbed manageable. Deploy 20 tinySDR nodes across a campus,
// push a brand new PHY implementation (an FPGA bitstream) to every node
// over the LoRa backbone, and report per-node programming times, energy,
// and the resulting protocol switch.
//
// Build:  cmake --build build && ./build/examples/ota_testbed
#include <iomanip>
#include <iostream>

#include "testbed/campaign.hpp"

using namespace tinysdr;

int main() {
  // The campus deployment (Fig. 7 stand-in).
  Rng rng{2026};
  auto deployment = testbed::Deployment::campus(rng);
  std::cout << "Deployed 20 nodes:\n";
  for (const auto& node : deployment.nodes())
    std::cout << "  node " << std::setw(2) << node.id << ": "
              << std::setw(6) << static_cast<int>(node.distance_m)
              << " m from AP, RSSI " << std::setw(5)
              << static_cast<int>(node.rssi.value()) << " dBm\n";

  // A new PHY to roll out: the SF12 long-range demodulator.
  Rng img_rng{1};
  auto new_phy = fpga::generate_bitstream(fpga::lora_rx_design(12),
                                          fpga::DeviceSpec{}, img_rng);
  std::cout << "\nRolling out '" << new_phy.name << "' ("
            << new_phy.size() / 1024 << " kB bitstream) over the "
            << "SF8/BW500 backbone at 14 dBm...\n";

  Rng campaign_rng{2};
  auto result = testbed::run_campaign(deployment, new_phy,
                                      ota::UpdateTarget::kFpga, campaign_rng);

  std::cout << "\nPer-node results:\n";
  for (std::size_t i = 0; i < result.per_node.size(); ++i) {
    const auto& r = result.per_node[i];
    std::cout << "  node " << std::setw(2) << deployment.nodes()[i].id << ": "
              << (r.success ? "ok  " : "FAIL") << "  "
              << std::setw(6) << std::fixed << std::setprecision(1)
              << r.total_time.value() << " s, "
              << r.transfer.retransmissions << " retx, "
              << static_cast<int>(r.total_energy.value()) << " mJ\n";
  }

  std::cout << "\nCampaign summary: " << result.successes() << "/20 nodes, "
            << "mean " << result.mean_time().value() << " s, mean energy "
            << result.mean_energy().value() << " mJ per node\n";
  std::cout << "Compression: " << result.per_node[0].original_bytes / 1024
            << " kB -> " << result.per_node[0].compressed_bytes / 1024
            << " kB ("
            << static_cast<int>(result.per_node[0].compression_ratio() * 100)
            << "%)\n";

  auto cdf = result.time_cdf_minutes();
  std::cout << "\nProgramming-time CDF (Fig. 14 style):\n";
  for (const auto& point : cdf)
    std::cout << "  " << std::setprecision(2) << point.value << " min -> "
              << static_cast<int>(point.probability * 100) << "%\n";

  std::cout << "\nWithout OTA, this rollout means driving to 20 rooftops. "
               "With it: "
            << result.mean_time().value() * 20.0 / 60.0
            << " minutes of sequential radio time from a desk.\n";
  return 0;
}
