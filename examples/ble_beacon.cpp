// BLE beacon scenario (paper §4.2): build an iBeacon-style
// ADV_NONCONN_IND, generate the full baseband on the "FPGA" (CRC-24,
// whitening, GFSK), hop across the three advertising channels with the
// 220 us retune gap, and verify reception on a CC2650-class receiver at a
// range of RSSI levels.
//
// Build:  cmake --build build && ./build/examples/ble_beacon
#include <iostream>

#include "ble/advertiser.hpp"
#include "ble/cc2650.hpp"
#include "core/device.hpp"

using namespace tinysdr;
using namespace tinysdr::ble;

int main() {
  // iBeacon-style payload: flags + manufacturer-specific data.
  AdvPacket beacon;
  beacon.adv_address = {0xC3, 0x00, 0x00, 0x12, 0x34, 0x56};
  beacon.adv_data = {0x02, 0x01, 0x06,                    // flags
                     0x0B, 0xFF, 0x4C, 0x00, 0x02, 0x15,  // mfr header
                     0xDE, 0xAD, 0xBE, 0xEF, 0x42};       // UUID prefix
  std::cout << "Beacon PDU: " << beacon.pdu().size() << " B, on-air "
            << air_bytes(beacon) << " B = " << airtime_us(beacon)
            << " us at 1 Mbps\n";

  // Burst schedule across channels 37/38/39.
  Advertiser adv{beacon};
  std::cout << "\nAdvertising burst:\n";
  for (const auto& entry : adv.burst_schedule())
    std::cout << "  ch " << entry.channel_index << " @ " << entry.start_us
              << " us (+" << entry.duration_us << " us airtime)\n";
  std::cout << "Hop gap: " << adv.hop_gap().microseconds()
            << " us (iPhone 8 comparison: 350 us)\n";

  // Transmit through the device facade (energy-accounted).
  core::TinySdrDevice dev{1};
  dev.wake();
  auto waves = dev.transmit_ble_burst(beacon, Dbm{0.0});
  std::cout << "\nTransmitted " << waves.size()
            << " channel waveforms through the radio; burst duration "
            << adv.burst_duration().microseconds() << " us\n";

  // Receive sweep on a CC2650.
  Cc2650Model receiver;
  std::cout << "\nReception vs RSSI (channel 37):\n";
  auto reference = assemble_air_bits(beacon, 37);
  for (double rssi : {-70.0, -85.0, -94.0, -100.0}) {
    Rng rng{static_cast<std::uint64_t>(-rssi)};
    auto result = receiver.receive(waves[0], reference, 37, Dbm{rssi}, rng);
    std::cout << "  " << rssi << " dBm: "
              << (result ? "received, BER " + std::to_string(result->ber)
                         : std::string("lost"))
              << "\n";
  }

  // Battery life at 1 beacon/second (the paper's 2-year claim). Only the
  // three airtimes draw TX power; the 220 us hop gaps are PLL settling at
  // negligible draw.
  power::PlatformPowerModel model;
  double tx_s = 3.0 * airtime_us(beacon) * 1e-6;
  Milliwatts avg = model.duty_cycled_average(power::Activity::kBleTransmit,
                                             tx_s / 1.0, Dbm{0.0});
  BatteryCapacity battery{1000.0, 3.7};
  std::cout << "\nBeaconing once per second: average "
            << avg.microwatts() << " uW -> "
            << battery.lifetime_at(avg).value() / (365.25 * 86400.0)
            << " years on 1000 mAh (paper: > 2 years)\n";
  return 0;
}
