// Localization scenario (paper §7, "Research on IoT localization"): use
// tinySDR's raw I/Q phase access to range a target with multi-carrier
// phase measurements — something no packet-radio IoT chip can do.
//
// Build:  cmake --build build && ./build/examples/localization
#include <iomanip>
#include <iostream>

#include "core/localization.hpp"

using namespace tinysdr;
using namespace tinysdr::core;

int main() {
  RangingConfig cfg;  // 10 tones, 902..920 MHz in 2 MHz steps
  std::cout << "Frequency ladder: " << cfg.tones << " tones from "
            << cfg.start.megahertz() << " MHz, step "
            << cfg.step.megahertz() << " MHz\n"
            << "Unambiguous range: " << cfg.unambiguous_range_m()
            << " m\n\n";

  Rng rng{2029};
  std::cout << std::fixed << std::setprecision(2);
  for (double truth : {7.5, 31.0, 66.6, 120.0}) {
    // 10 degrees of phase noise per tone — a realistic endpoint PLL.
    auto sweep = simulate_phase_sweep(cfg, truth, 10.0 * 3.14159 / 180.0,
                                      rng);
    std::cout << "Target at " << std::setw(6) << truth << " m. Phases: ";
    for (const auto& m : sweep)
      std::cout << std::setprecision(1) << m.phase_rad << " ";
    auto est = estimate_range(cfg, sweep);
    std::cout << "\n  -> estimate " << std::setprecision(2)
              << est.distance_m << " m (error "
              << std::abs(est.distance_m - truth) << " m, residual "
              << est.residual_rad << " rad)\n";
  }

  std::cout << "\nWhy tinySDR: the estimate needs the raw carrier phase at "
               "each frequency — exactly what the I/Q interface exposes "
               "and what fixed-function IoT radios hide. A distributed set "
               "of these endpoints is the paper's 'large MIMO sensing "
               "system' direction.\n";
  return 0;
}
