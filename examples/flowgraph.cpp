// Flowgraph prototyping scenario (paper §7: "integrate with GNUradio for
// easy prototyping"): assemble the radio's receive front end from reusable
// blocks, the way a researcher would sketch a custom PHY before committing
// it to Verilog.
//
// Build:  cmake --build build && ./build/examples/flowgraph
#include <cstdint>
#include <iostream>
#include <optional>

#include "dsp/fft.hpp"
#include "flow/blocks.hpp"
#include "flow/graph.hpp"

using namespace tinysdr;
using namespace tinysdr::flow;

int main() {
  // A 100 kHz tone at the radio's 4 MHz I/Q rate, through the Fig. 6b
  // front end: FIR low-pass -> decimate to 1 MHz -> 13-bit ADC -> probe.
  const double tone_hz = 100e3;
  const double fs = 4e6;

  FlowGraph graph;
  graph.add<NcoSource>(tone_hz / fs, 1 << 16);
  graph.add<FirBlock>(dsp::design_lowpass(14, 0.125));
  graph.add<DecimatorBlock>(4);
  graph.add<QuantizerBlock>(13);
  auto* sink = graph.add<VectorSink>();

  std::cout << "Running " << graph.block_count()
            << "-block receive chain: nco -> fir(14) -> decim(4) -> "
               "adc(13b) -> sink\n";
  if (!graph.run()) {
    std::cout << "graph stalled\n";
    return 1;
  }
  std::cout << "Produced " << sink->data().size()
            << " critical-rate samples\n";

  // Verify the tone survived: FFT at the decimated rate.
  dsp::Samples window(sink->data().begin(), sink->data().begin() + 8192);
  dsp::FftPlan fft{8192};
  fft.forward(window);
  auto bin = dsp::peak_bin(window);
  double measured_hz = static_cast<double>(bin) / 8192.0 * (fs / 4.0);
  std::cout << "Tone recovered at " << measured_hz / 1e3 << " kHz (expected "
            << tone_hz / 1e3 << " kHz)\n";

  // Second sketch: an energy detector (the CAD building block) as a graph.
  FlowGraph detector;
  detector.add<NcoSource>(0.21, 4096);
  detector.add<MapBlock>([](dsp::Complex s) { return s * 0.05f; });  // -26 dB
  auto* probe = detector.add<PowerProbe>();
  (void)detector.run();
  std::cout << "\nEnergy detector sketch: mean power "
            << 10.0 * std::log10(probe->mean_power()) << " dBFS over "
            << probe->samples() << " samples\n";

  // Third sketch: timed transmission. The gate holds the TX line silent
  // until the edge's monotonic sample counter reaches the fire point —
  // the software twin of triggering a hardware burst at a wall-clock
  // tick — then ends the stream after exactly 2048 samples.
  FlowGraph tx;
  tx.add<NcoSource>(0.1, 512);
  tx.add<TimedTxGate>(1000, std::optional<std::uint64_t>{2048});
  auto* tx_sink = tx.add<VectorSink>();
  auto tx_report = tx.run();
  std::cout << "\nTimed TX: burst of 512 fired at sample 1000, stream "
            << (tx_report ? "drained" : "stalled") << " after "
            << tx_sink->data().size() << " samples ("
            << tx_report.samples_streamed << " streamed across edges)\n";

  // The same graph also runs with every block pinned to its own worker,
  // parking on ring credit. Blocks are pure stream functions, so the
  // threaded sink is byte-identical to the single-thread schedule.
  FlowGraph threaded;
  auto* src = threaded.add_block<NcoSource>(tone_hz / fs, 1 << 16);
  auto* fir = threaded.add_block<FirBlock>(dsp::design_lowpass(14, 0.125));
  auto* dec = threaded.add_block<DecimatorBlock>(4);
  auto* quant = threaded.add_block<QuantizerBlock>(13);
  auto* tsink = threaded.add_block<VectorSink>();
  threaded.connect(src, fir, 1 << 10);  // small rings: real backpressure
  threaded.connect(fir, dec, 1 << 10);
  threaded.connect(dec, quant, 1 << 10);
  threaded.connect(quant, tsink, 1 << 10);
  auto treport = threaded.run_threaded();
  bool same = treport && tsink->data() == sink->data();
  std::cout << "Threaded run: " << to_string(treport.state) << ", sink "
            << (same ? "byte-identical to the single-thread schedule"
                     : "DIVERGED (bug!)")
            << "\n";

  std::cout << "\nThe same Block interface hosts any custom stage — write "
               "one work() function instead of a Verilog module while "
               "exploring, then commit the winner to the FPGA.\n";
  return same ? 0 : 1;
}
