// Flowgraph prototyping scenario (paper §7: "integrate with GNUradio for
// easy prototyping"): assemble the radio's receive front end from reusable
// blocks, the way a researcher would sketch a custom PHY before committing
// it to Verilog.
//
// Build:  cmake --build build && ./build/examples/flowgraph
#include <iostream>

#include "dsp/fft.hpp"
#include "flow/blocks.hpp"
#include "flow/graph.hpp"

using namespace tinysdr;
using namespace tinysdr::flow;

int main() {
  // A 100 kHz tone at the radio's 4 MHz I/Q rate, through the Fig. 6b
  // front end: FIR low-pass -> decimate to 1 MHz -> 13-bit ADC -> probe.
  const double tone_hz = 100e3;
  const double fs = 4e6;

  FlowGraph graph;
  graph.add<NcoSource>(tone_hz / fs, 1 << 16);
  graph.add<FirBlock>(dsp::design_lowpass(14, 0.125));
  graph.add<DecimatorBlock>(4);
  graph.add<QuantizerBlock>(13);
  auto* sink = graph.add<VectorSink>();

  std::cout << "Running " << graph.block_count()
            << "-block receive chain: nco -> fir(14) -> decim(4) -> "
               "adc(13b) -> sink\n";
  if (!graph.run()) {
    std::cout << "graph stalled\n";
    return 1;
  }
  std::cout << "Produced " << sink->data().size()
            << " critical-rate samples\n";

  // Verify the tone survived: FFT at the decimated rate.
  dsp::Samples window(sink->data().begin(), sink->data().begin() + 8192);
  dsp::FftPlan fft{8192};
  fft.forward(window);
  auto bin = dsp::peak_bin(window);
  double measured_hz = static_cast<double>(bin) / 8192.0 * (fs / 4.0);
  std::cout << "Tone recovered at " << measured_hz / 1e3 << " kHz (expected "
            << tone_hz / 1e3 << " kHz)\n";

  // Second sketch: an energy detector (the CAD building block) as a graph.
  FlowGraph detector;
  detector.add<NcoSource>(0.21, 4096);
  detector.add<MapBlock>([](dsp::Complex s) { return s * 0.05f; });  // -26 dB
  auto* probe = detector.add<PowerProbe>();
  detector.run();
  std::cout << "\nEnergy detector sketch: mean power "
            << 10.0 * std::log10(probe->mean_power()) << " dBFS over "
            << probe->samples() << " samples\n";

  std::cout << "\nThe same Block interface hosts any custom stage — write "
               "one work() function instead of a Verilog module while "
               "exploring, then commit the winner to the FPGA.\n";
  return 0;
}
