// Quickstart: bring up two tinySDR devices, send a LoRa packet from one to
// the other through the full signal path (packet codec -> chirp modulator
// -> 13-bit DAC -> AWGN channel -> AGC/ADC -> FIR -> dechirp/FFT ->
// decoder), and inspect the energy bill.
//
// Build:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "channel/noise.hpp"
#include "channel/link_budget.hpp"
#include "core/device.hpp"
#include "lora/airtime.hpp"

using namespace tinysdr;

int main() {
  // Two endpoints: a sensor node and a gateway-side listener.
  core::TinySdrDevice node{1};
  core::TinySdrDevice gateway{2};

  // Wake both (22 ms: the FPGA boots from flash while the radio sets up).
  Seconds wakeup = node.wake();
  gateway.wake();
  std::cout << "Node awake in " << wakeup.milliseconds() << " ms\n";

  node.radio().set_frequency(Hertz::from_megahertz(915.0));
  gateway.radio().set_frequency(Hertz::from_megahertz(915.0));

  // A LoRa configuration the AT86RF215 supports directly: SF8, 500 kHz.
  lora::LoraParams params{8, Hertz::from_kilohertz(500.0)};
  std::vector<std::uint8_t> payload{'h', 'i', '!', 0x2A};

  // Transmit: returns the antenna waveform at the radio's 4 MHz I/Q rate.
  auto waveform = node.transmit_lora(payload, params, Dbm{14.0});
  std::cout << "Transmitted " << payload.size() << " B in "
            << lora::time_on_air(params, payload.size()).milliseconds()
            << " ms of airtime (" << waveform.size() << " I/Q samples)\n";

  // Propagate over 500 m of campus and add receiver noise.
  channel::PathLossModel path{Hertz::from_megahertz(915.0), 2.9};
  Dbm rssi = path.received_power(Dbm{14.0}, 500.0);
  Rng rng{7};
  channel::AwgnChannel chan{node.radio().config().sample_rate, 6.0, rng};
  dsp::Samples rf(8192, dsp::Complex{0, 0});
  auto noisy = chan.apply(waveform, rssi);
  rf.insert(rf.end(), noisy.begin(), noisy.end());
  rf.insert(rf.end(), 8192, dsp::Complex{0, 0});
  std::cout << "Channel: 500 m -> RSSI " << rssi.value() << " dBm\n";

  // Receive on the gateway.
  auto result =
      gateway.receive_lora(rf, params, Seconds::from_milliseconds(60.0));
  if (result && result->packet.crc_valid) {
    std::cout << "Received: \"";
    for (std::uint8_t b : result->packet.payload)
      std::cout << static_cast<char>(b);
    std::cout << "\" (CRC OK, sync offset " << result->timing_offset
              << " samples)\n";
  } else {
    std::cout << "Reception failed\n";
    return 1;
  }

  // Back to 30 uW sleep; check the energy ledger.
  node.sleep(Seconds{10.0});
  std::cout << "\nNode energy ledger:\n";
  for (const auto& entry : node.ledger().entries())
    std::cout << "  " << entry.note << ": "
              << entry.duration.milliseconds() << " ms at "
              << entry.draw.value() << " mW = " << entry.energy.value()
              << " mJ\n";
  std::cout << "Average power: " << node.ledger().average_power().value()
            << " mW\n";
  return 0;
}
