// Sensor network scenario: the workload the paper's introduction motivates.
//
// A battery-powered tinySDR endpoint joins a TTN-style network over the
// air (OTAA), then runs a day of duty-cycled operation: wake every ten
// minutes, transmit a LoRaWAN uplink over the real CSS PHY, open the
// class-A receive window, and go back to 30 uW sleep. Prints the MAC
// exchange, the daily energy budget and the projected battery life.
//
// Build:  cmake --build build && ./build/examples/sensor_network
#include <iostream>

#include "channel/noise.hpp"
#include "core/device.hpp"
#include "lora/airtime.hpp"
#include "lora/mac.hpp"

using namespace tinysdr;

int main() {
  // --- Activation ---------------------------------------------------
  lora::AppKey app_key{};
  for (std::size_t i = 0; i < app_key.size(); ++i)
    app_key[i] = static_cast<std::uint8_t>(0xC0 + i);
  auto device_mac = lora::MacDevice::otaa(0x70B3D57ED0001234ULL, app_key);
  lora::MacNetwork network{app_key};

  auto accept = network.handle_join(device_mac.join_request());
  if (!accept || !device_mac.handle_join_accept(*accept)) {
    std::cout << "join failed\n";
    return 1;
  }
  std::cout << "OTAA join complete; DevAddr = 0x" << std::hex
            << device_mac.dev_addr() << std::dec << "\n";

  // --- One physical uplink through the full stack --------------------
  core::TinySdrDevice node{1};
  core::TinySdrDevice gateway{2};
  node.wake();
  gateway.wake();
  node.radio().set_frequency(Hertz::from_megahertz(915.0));
  gateway.radio().set_frequency(Hertz::from_megahertz(915.0));

  lora::LoraParams params{8, Hertz::from_kilohertz(500.0)};
  std::vector<std::uint8_t> reading{0x01, 0x67, 0x00, 0xFF};  // temp record
  auto frame = device_mac.uplink(reading, /*fport=*/2);
  auto waveform = node.transmit_lora(frame, params, Dbm{14.0});

  Rng rng{3};
  channel::AwgnChannel chan{node.radio().config().sample_rate, 6.0, rng};
  dsp::Samples rf(8192, dsp::Complex{0, 0});
  auto noisy = chan.apply(waveform, Dbm{-95.0});
  rf.insert(rf.end(), noisy.begin(), noisy.end());
  rf.insert(rf.end(), 8192, dsp::Complex{0, 0});
  auto rx = gateway.receive_lora(rf, params, Seconds::from_milliseconds(60.0));
  if (!rx || !rx->packet.crc_valid) {
    std::cout << "uplink lost\n";
    return 1;
  }
  auto mac_frame = network.handle_uplink(rx->packet.payload);
  std::cout << "Network server accepted uplink FCnt="
            << (mac_frame ? mac_frame->fcnt : 0) << ", "
            << mac_frame->payload.size() << " B sensor payload\n";

  // Class-A receive window feasibility (Table 4 timings).
  lora::ReceiveWindows windows;
  std::cout << "RX1 window feasible with measured switching delays: "
            << (windows.feasible(node.radio().timing()) ? "yes" : "no")
            << "\n";

  // --- A day of duty cycling ----------------------------------------
  power::PlatformPowerModel model;
  power::EnergyLedger day{model};
  const int uplinks_per_day = 144;  // every 10 minutes
  Seconds airtime = lora::time_on_air(params, frame.size());
  for (int i = 0; i < uplinks_per_day; ++i) {
    day.record_draw(power::Activity::kLoraReceive,
                    Seconds::from_milliseconds(22.0),
                    model.draw(power::Activity::kLoraReceive), "wakeup");
    day.record(power::Activity::kLoraTransmit, airtime, Dbm{14.0}, "uplink");
    day.record(power::Activity::kLoraReceive, Seconds::from_milliseconds(30.0),
               Dbm{0.0}, "rx window");
  }
  day.record(power::Activity::kSleep,
             Seconds{86400.0 - day.total_time().value()});

  BatteryCapacity battery{1000.0, 3.7};
  double years = battery.energy().value() /
                 day.total_energy().value() / 365.25;
  std::cout << "\nDaily budget (144 uplinks of " << frame.size()
            << " B at SF8/BW500, 14 dBm):\n"
            << "  energy/day: " << day.total_energy().value() / 1000.0
            << " J, average power: "
            << day.average_power().microwatts() << " uW\n"
            << "  1000 mAh battery life: " << years << " years\n"
            << "  (without the 30 uW sleep mode this would be days, not "
               "years — the paper's core argument)\n";
  return 0;
}
