// Research study (paper §6): can an IoT endpoint decode concurrent LoRa
// transmissions in real time within its power and resource budget?
//
// Two transmitters share a channel using quasi-orthogonal chirp slopes
// (SF8/BW125 and SF8/BW250); a single tinySDR runs one dechirp+FFT branch
// per configuration on its FPGA. This example walks the whole argument:
// orthogonality check, resource budget, power budget, and the decode
// quality at equal and asymmetric powers.
//
// Build:  cmake --build build && ./build/examples/concurrent_rx
#include <iostream>

#include "core/concurrent.hpp"
#include "dsp/nco.hpp"
#include "flow/blocks.hpp"
#include "flow/graph.hpp"

using namespace tinysdr;
using namespace tinysdr::core;

int main() {
  lora::LoraParams a{8, Hertz::from_kilohertz(125.0)};
  lora::LoraParams b{8, Hertz::from_kilohertz(250.0)};
  Hertz fs = Hertz::from_kilohertz(500.0);

  std::cout << "Configurations:\n"
            << "  A: SF8/BW125, chirp slope " << a.chirp_slope() / 1e6
            << " MHz/s\n"
            << "  B: SF8/BW250, chirp slope " << b.chirp_slope() / 1e6
            << " MHz/s\n"
            << "  orthogonal (slopes differ): "
            << (lora::orthogonal(a, b) ? "yes" : "no") << "\n";

  ConcurrentReceiver receiver{{a, b}, fs};
  fpga::DeviceSpec device;
  auto design = receiver.design();
  std::cout << "\nResource budget: " << design.total_luts() << " LUTs = "
            << design.utilization(device) * 100.0
            << "% of the LFE5U-25F (paper: 17%)\n"
            << "Power budget: " << receiver.platform_power().value()
            << " mW while decoding both streams (paper: 207 mW)\n";

  std::cout << "\n[1] Equal received power, sweeping level:\n";
  for (double rssi : {-110.0, -118.0, -122.0, -126.0}) {
    Rng rng{42};
    auto r = run_concurrent_trial(a, b, Dbm{rssi}, Dbm{rssi}, 150, fs, rng,
                                  11.5);
    std::cout << "  " << rssi << " dBm: SER A " << r.ser_a * 100.0
              << "%, SER B " << r.ser_b * 100.0 << "%  (" << r.symbols_a
              << "+" << r.symbols_b << " symbols)\n";
  }

  std::cout << "\n[2] A fixed at -123 dBm, interferer B sweeping "
               "(the power-control argument):\n";
  for (double interferer : {-126.0, -118.0, -112.0, -106.0}) {
    Rng rng{43};
    auto r = run_concurrent_trial(a, b, Dbm{-123.0}, Dbm{interferer}, 150,
                                  fs, rng, 11.5);
    std::cout << "  interferer " << interferer << " dBm: SER A "
              << r.ser_a * 100.0 << "%\n";
  }

  // The "one antenna, two branches" architecture as a flowgraph: the
  // captured stream fans out through a zero-copy tap, so each branch
  // (here: a per-band power monitor after its own channel filter) reads
  // the same samples without the source being copied per consumer.
  std::cout << "\n[3] Fan-out sketch: one capture, two monitor branches:\n";
  dsp::Samples capture(8192);
  dsp::Nco lo_tone, hi_tone;
  lo_tone.set_frequency(0.02);   // in-band for the 0.125 low-pass
  hi_tone.set_frequency(0.37);   // far out of band
  for (auto& s : capture) s = 0.5f * (lo_tone.next() + hi_tone.next());

  flow::FlowGraph fanout;
  auto* src = fanout.add_block<flow::VectorSource>(capture);
  auto* band_a = fanout.add_block<flow::FirBlock>(dsp::design_lowpass(14, 0.125));
  auto* probe_a = fanout.add_block<flow::PowerProbe>();
  auto* probe_raw = fanout.add_block<flow::PowerProbe>();
  fanout.connect(src, band_a);
  fanout.connect(band_a, probe_a);
  fanout.connect_tap(src, probe_raw);  // second branch, zero extra copies
  auto report = fanout.run();
  std::cout << "  graph " << flow::to_string(report.state)
            << ": raw mean power " << probe_raw->mean_power()
            << ", band-A (low-pass) mean power " << probe_a->mean_power()
            << " — the filter keeps the in-band tone's half of the "
               "power, the tap sees everything\n";

  std::cout << "\nConclusion (paper): an IoT endpoint CAN decode concurrent "
               "LoRa in real time — at 17% of a small FPGA and ~207 mW — "
               "but links need power control once an interferer rises "
               "above the noise floor.\n";
  return 0;
}
