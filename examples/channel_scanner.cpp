// Channel occupancy scanner: uses the LoRa CAD primitive (two-symbol
// dechirp carrier sense) and the radio's 220 us retune to sweep the eight
// US915 uplink channels — the low-power cousin of the SweepSense scanning
// the paper cites, and a building block for the carrier-sense research
// direction (§7 / DeepSense [41]).
//
// Build:  cmake --build build && ./build/examples/channel_scanner
#include <iomanip>
#include <iostream>

#include "channel/noise.hpp"
#include "lora/demodulator.hpp"
#include "lora/modulator.hpp"
#include "radio/at86rf215.hpp"

using namespace tinysdr;

int main() {
  lora::LoraParams params{8, Hertz::from_kilohertz(125.0)};
  lora::Demodulator demod{params, params.bandwidth};
  lora::Modulator mod{params, params.bandwidth};
  radio::At86rf215 radio;
  radio.wake();
  radio.enter_rx();

  // Simulated spectrum: transmitters active on channels 1, 4 and 6.
  Rng rng{99};
  const int kChannels = 8;
  const double base_mhz = 902.3;
  const double spacing_mhz = 0.2;
  bool truth[kChannels] = {false, true, false, false, true, false, true,
                           false};

  std::cout << "Scanning " << kChannels
            << " US915 uplink channels with two-symbol CAD ("
            << 2.0 * params.symbol_time().milliseconds() << " ms listen + "
            << radio.timing().frequency_switch.microseconds()
            << " us retune per channel):\n\n";

  Seconds scan_time{0.0};
  int hits = 0, correct = 0;
  for (int ch = 0; ch < kChannels; ++ch) {
    double freq = base_mhz + ch * spacing_mhz;
    scan_time += radio.retune(Hertz::from_megahertz(freq));

    // What the antenna sees on this channel.
    channel::AwgnChannel chan{params.bandwidth, 6.0,
                              Rng{rng.next_u32(), static_cast<std::uint64_t>(ch)}};
    dsp::Samples window;
    if (truth[ch]) {
      auto preamble = mod.preamble_waveform();
      window = chan.apply(preamble, Dbm{-118.0});  // weak but present
    } else {
      window = chan.noise_only(params.chips() * 3, chan.floor() + 5.0);
    }
    window.resize(params.chips() * 2);
    scan_time += params.symbol_time() * 2.0;

    bool detected = demod.channel_activity(window);
    if (detected) ++hits;
    if (detected == truth[ch]) ++correct;
    std::cout << "  ch " << ch << " (" << std::fixed << std::setprecision(1)
              << freq << " MHz): " << (detected ? "BUSY " : "clear")
              << (detected == truth[ch] ? "" : "   <- WRONG") << "\n";
  }

  std::cout << "\nScan of " << kChannels << " channels in "
            << scan_time.milliseconds() << " ms; " << hits
            << " busy, " << correct << "/" << kChannels << " correct.\n"
            << "A full receive would need the whole preamble per channel; "
               "CAD spends two symbols — this is what makes listen-before-"
               "talk affordable on a duty-cycled endpoint.\n";
  return correct == kChannels ? 0 : 1;
}
