// Reproduces the §5.2 LoRa power decomposition: packet TX at SF9/BW500 and
// 14 dBm (paper: 287 mW total, 179 mW radio), packet RX (186 mW total,
// 59 mW radio), and the per-packet energy at the paper's configuration.
#include "bench_common.hpp"
#include "lora/airtime.hpp"
#include "mcu/msp432.hpp"
#include "power/platform_power.hpp"

using namespace tinysdr;
using namespace tinysdr::power;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "LoRa packet power", "paper §5.2",
                      "Packet TX/RX power decomposition, SF9/BW500"};

  PlatformPowerModel model;
  fpga::Design tx_design = fpga::lora_tx_design();
  fpga::Design rx_design = fpga::lora_rx_design(9);

  double tx_radio = model.radio_tx_draw(radio::Band::kSubGhz900,
                                        Dbm{14.0}).value();
  double tx_total =
      model.draw_with_design(Activity::kLoraTransmit, tx_design, Dbm{14.0})
          .value();
  double rx_radio = model.radio_rx_draw().value();
  double rx_total =
      model.draw_with_design(Activity::kLoraReceive, rx_design).value();

  TextTable table{{"Mode", "Radio (mW)", "FPGA+MCU+reg (mW)", "Total (mW)",
                   "Paper total (mW)", "Paper radio (mW)"}};
  table.add_row({"LoRa TX @14 dBm", TextTable::num(tx_radio, 0),
                 TextTable::num(tx_total - tx_radio, 0),
                 TextTable::num(tx_total, 0), "287", "179"});
  table.add_row({"LoRa RX", TextTable::num(rx_radio, 0),
                 TextTable::num(rx_total - rx_radio, 0),
                 TextTable::num(rx_total, 0), "186", "59"});
  table.add_row(
      {"Concurrent RX (2x SF8)", TextTable::num(rx_radio, 0),
       TextTable::num(
           model.draw(Activity::kConcurrentReceive).value() - rx_radio, 0),
       TextTable::num(model.draw(Activity::kConcurrentReceive).value(), 0),
       "207", "59"});
  table.print(std::cout);

  // Per-packet energy at the measured operating point.
  lora::LoraParams p{9, Hertz::from_kilohertz(500.0)};
  for (std::size_t payload : {12ul, 51ul, 222ul}) {
    Seconds toa = lora::time_on_air(p, payload);
    Millijoules tx_energy = Milliwatts{tx_total} * toa;
    std::cout << "Packet of " << payload << " B: airtime "
              << TextTable::num(toa.milliseconds(), 1) << " ms, TX energy "
              << TextTable::num(tx_energy.value(), 2) << " mJ\n";
  }
  std::cout << "\nMCU resource usage with TTN MAC + drivers + OTA "
               "decompressor: "
            << TextTable::num(mcu::baseline_firmware().utilization() * 100.0,
                              0)
            << "% (paper: 18%).\n";
  return 0;
}
