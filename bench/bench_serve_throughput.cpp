// Campaign-server throughput: jobs through serve::Engine, cold vs warm.
//
// Submits a batch of multi-PHY sweep campaigns to an in-process engine
// (the daemon minus the socket — same execution path), then submits the
// identical batch again so every sweep point is a cache hit. Reports
// campaigns/hour for both passes, the warm-pass hit rate, and a
// byte_identical flag proving the cold and warm result documents match —
// the serve layer's whole contract in one bench.
#include <chrono>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "phy/registry.hpp"
#include "serve/engine.hpp"

using namespace tinysdr;

namespace {

serve::JobSpec make_campaign(std::uint64_t seed) {
  serve::JobSpec job;
  job.name = "throughput-" + std::to_string(seed);
  const auto& registry = phy::Registry::builtin();
  for (const auto& entry : registry.entries()) {
    serve::SweepSpec sweep;
    sweep.phy = entry.id;
    // A short ladder around each PHY's interesting region; exact physics
    // does not matter here, only that the work is real LinkSimulator
    // trials spread across every registered PHY.
    const double base = entry.id == phy::Protocol::kLora ? -124.0 : -96.0;
    sweep.rssi_dbm = {base, base + 2.0, base + 4.0};
    sweep.trials = 10;
    sweep.payload_bytes = 8;
    sweep.base_seed = seed;
    sweep.pad_samples = entry.pad_samples;
    sweep.noise_figure_db = entry.system_noise_figure_db;
    job.sweeps.push_back(sweep);
  }
  return job;
}

double campaigns_per_hour(std::size_t jobs, double seconds) {
  return seconds > 0.0 ? static_cast<double>(jobs) * 3600.0 / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Serve throughput", "testbed-as-a-service",
                      "Campaign jobs/hour through serve::Engine, cold "
                      "(all points computed) vs warm (all points from the "
                      "memoization cache)"};
  auto policy = bench::thread_policy(argc, argv);
  run.config_threads(policy);

  constexpr std::size_t kJobs = 6;
  run.config("jobs", static_cast<double>(kJobs));

  serve::EngineConfig config;
  config.policy = policy;
  serve::Engine engine{phy::Registry::builtin(), config};

  using clock = std::chrono::steady_clock;
  std::vector<std::uint64_t> cold_ids;
  for (std::size_t i = 0; i < kJobs; ++i)
    cold_ids.push_back(engine.submit(make_campaign(1000 + i)));
  const auto cold_start = clock::now();
  engine.run_all();
  const double cold_s =
      std::chrono::duration<double>(clock::now() - cold_start).count();

  std::vector<std::uint64_t> warm_ids;
  for (std::size_t i = 0; i < kJobs; ++i)
    warm_ids.push_back(engine.submit(make_campaign(1000 + i)));
  const auto warm_start = clock::now();
  engine.run_all();
  const double warm_s =
      std::chrono::duration<double>(clock::now() - warm_start).count();

  bool byte_identical = true;
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_points = 0;
  for (std::size_t i = 0; i < kJobs; ++i) {
    byte_identical = byte_identical &&
                     engine.result_json(cold_ids[i]) ==
                         engine.result_json(warm_ids[i]);
    auto status = engine.status(warm_ids[i]);
    if (status) {
      warm_hits += status->cache_hits;
      warm_points += status->cache_hits + status->cache_misses;
    }
  }
  const double hit_rate =
      warm_points > 0
          ? static_cast<double>(warm_hits) / static_cast<double>(warm_points)
          : 0.0;

  run.scalar("cold_throughput_campaigns_per_hour",
             campaigns_per_hour(kJobs, cold_s));
  run.scalar("warm_throughput_campaigns_per_hour",
             campaigns_per_hour(kJobs, warm_s));
  run.scalar("warm_cache_hit_rate", hit_rate);
  run.scalar("byte_identical", byte_identical ? 1.0 : 0.0);
  run.scalar("points", static_cast<double>(warm_points));

  std::vector<std::vector<double>> rows{
      {0.0, campaigns_per_hour(kJobs, cold_s)},
      {1.0, campaigns_per_hour(kJobs, warm_s)},
  };
  // Column label must carry the per_hour marker so the gate classes the
  // series cells as rates (loose cross-machine tolerance), matching the
  // *_campaigns_per_hour scalars.
  run.series("throughput", "Pass (0=cold, 1=warm)", {"campaigns_per_hour"},
             rows, 1);

  std::cout << "\nCold: " << cold_s << " s for " << kJobs
            << " campaigns; warm resubmission hit rate "
            << hit_rate * 100.0 << "% and byte-identical = "
            << (byte_identical ? "yes" : "NO") << ".\n";
  return byte_identical && hit_rate == 1.0 ? 0 : 1;
}
