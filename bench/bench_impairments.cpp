// Hardware-impairment ablation: for every reproduced PHY, PER at a pinned
// link margin under three front-ends — clean, impaired (CFO + IQ imbalance
// + DC offset at magnitudes a real low-cost radio exhibits), and impaired
// with the matching calibration chain (DC notch -> IQ correction ->
// preamble CFO correction) on the receiver.
//
// Every number here is deterministic (fixed seeds, fixed grids), so the
// scalars are gateable: the perf gate pins clean PER to zero, impaired PER
// high, corrected PER back at clean, and batch/stream byte-identity to 1.
#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "flow/link_stream.hpp"
#include "impair/impair.hpp"
#include "phy/calibrated_rx.hpp"
#include "phy/link_sim.hpp"
#include "phy/registry.hpp"

using namespace tinysdr;

namespace {

struct AblationPoint {
  const char* phy;
  double rssi_dbm;
  double cfo_cps;
  dsp::Complex dc;
  double iq_gain_db;
  double iq_phase_deg;
};

// Same pinned points the metamorphic suite proves: clean link error-free,
// impaired link broken, corrected link restored.
constexpr AblationPoint kPoints[] = {
    {"lora", -110.0, 0.0018, {1.0f, 0.5f}, 2.0, 10.0},
    {"ble", -85.0, 0.05, {0.5f, -0.3f}, 2.0, 10.0},
    {"zigbee", -88.0, 0.005, {0.3f, -0.2f}, 1.5, 8.0},
    {"sigfox", -120.0, 0.03, {0.5f, -0.3f}, 2.0, 10.0},
    {"nbiot", -110.0, 0.004, {0.3f, -0.2f}, 1.5, 8.0},
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Impairment ablation",
                      "hardware impairments",
                      "Per-PHY PER under clean / impaired / calibrated "
                      "front-ends, plus batch-vs-streaming chain identity"};
  run.config("trials", 20);
  run.config("payload_bytes", 12);

  std::vector<std::vector<double>> rows;
  bool all_zero_chain_identical = true;
  std::size_t idx = 0;
  for (const auto& pt : kPoints) {
    const auto* entry = phy::Registry::builtin().find_by_name(pt.phy);
    auto tx = entry->make_tx();
    auto rx = entry->make_rx();
    phy::TrialPlan plan;
    plan.trials = 20;
    plan.payload_bytes = 12;
    plan.pad_samples = entry->pad_samples;
    plan.noise_figure_db = entry->system_noise_figure_db;
    plan.base_seed = 0xCA1;
    const phy::SweepPoint point{Dbm{pt.rssi_dbm}, std::nullopt};

    phy::LinkSimulator clean{*tx, *rx, plan};
    const auto r_clean = clean.run_point(point);

    const impair::CfoDrift cfo{pt.cfo_cps};
    const impair::IqImbalance iq{pt.iq_gain_db, pt.iq_phase_deg};
    const impair::DcOffset dc{pt.dc};
    auto attach = [&](auto& sim) {
      sim.add_impairment(cfo, impair::Stage::kRx);
      sim.add_impairment(iq, impair::Stage::kRx);
      sim.add_impairment(dc, impair::Stage::kRx);
    };

    phy::LinkSimulator impaired{*tx, *rx, plan};
    attach(impaired);
    const auto r_impaired = impaired.run_point(point);

    auto cal_rx = phy::make_calibrated_rx(*entry);
    phy::LinkSimulator corrected{*tx, *cal_rx, plan};
    attach(corrected);
    const auto r_corrected = corrected.run_point(point);

    // Zero-magnitude chain must leave the engine untouched.
    const impair::CfoDrift z_cfo{0.0};
    const impair::IqImbalance z_iq{0.0, 0.0};
    const impair::DcOffset z_dc{{0.0f, 0.0f}};
    phy::LinkSimulator zeroed{*tx, *rx, plan};
    zeroed.add_impairment(z_cfo, impair::Stage::kRx);
    zeroed.add_impairment(z_iq, impair::Stage::kRx);
    zeroed.add_impairment(z_dc, impair::Stage::kRx);
    all_zero_chain_identical &= zeroed.run_point(point) == r_clean;

    rows.push_back({static_cast<double>(idx++), r_clean.per() * 100.0,
                    r_impaired.per() * 100.0, r_corrected.per() * 100.0});
    const std::string prefix = std::string("per_") + pt.phy;
    run.scalar(prefix + "_clean_pct", r_clean.per() * 100.0);
    run.scalar(prefix + "_impaired_pct", r_impaired.per() * 100.0);
    run.scalar(prefix + "_corrected_pct", r_corrected.per() * 100.0);
    run.scalar(std::string("cfo_bias_") + pt.phy,
               phy::default_calibration(*entry).cfo_bias);
  }
  run.series("ablation_per", "phy index (lora,ble,zigbee,sigfox,nbiot)",
             {"clean PER(%)", "impaired PER(%)", "corrected PER(%)"}, rows,
             2);

  // Batch/stream differential: the same full chain through run_point()
  // and the streaming flowgraph (gaps + odd ring) must agree bit for bit.
  bool batch_stream_identical = true;
  {
    const auto& entry = phy::Registry::builtin().at(phy::Protocol::kZigbee);
    auto tx = entry.make_tx();
    auto rx = entry.make_rx();
    phy::TrialPlan plan;
    plan.trials = 5;
    plan.payload_bytes = 8;
    plan.pad_samples = entry.pad_samples;
    plan.noise_figure_db = entry.system_noise_figure_db;
    plan.base_seed = 0xBEE;
    const phy::SweepPoint point{Dbm{-95.0}, std::nullopt};

    const impair::PaClip clip{0.9, 2.0};
    const impair::CfoDrift cfo{0.002, 1e-8};
    const impair::PhaseNoise pn{0.02};
    phy::LinkSimulator classic{*tx, *rx, plan};
    classic.add_impairment(clip, impair::Stage::kTx);
    classic.add_impairment(cfo, impair::Stage::kRx);
    classic.add_impairment(pn, impair::Stage::kRx);
    const auto expected = classic.run_point(point);

    flow::StreamingLink stream{*tx, *rx,
                               flow::StreamPlan{plan, /*gap_samples=*/57,
                                                /*ring_capacity=*/256}};
    stream.add_impairment(clip, impair::Stage::kTx);
    stream.add_impairment(cfo, impair::Stage::kRx);
    stream.add_impairment(pn, impair::Stage::kRx);
    auto got = stream.run(point);
    batch_stream_identical = got.report.drained() && got.point == expected;
  }
  run.scalar("batch_stream_identical", batch_stream_identical ? 1.0 : 0.0);
  run.scalar("zero_chain_identical", all_zero_chain_identical ? 1.0 : 0.0);

  std::cout << "\nCalibration closes the gap at every pinned point; "
            << "batch vs streaming chain "
            << (batch_stream_identical ? "byte-identical."
                                       : "DIVERGED — determinism bug!")
            << "\n";
  return batch_stream_identical && all_zero_chain_identical ? 0 : 1;
}
