// Adversarial & coexistence campaign: how the platform's links and OTA
// protocol hold up under deliberate interference.
//
// Three parts, all deterministic and thread-count independent:
//  1. Jammer sweeps — the Fig. 15 SF8/BW125 link against reactive, sweep
//     and pulsed jammers at a fixed received jamming power, next to the
//     clean curve (same seeds, so the delta is the jammer alone).
//  2. Multi-PHY coexistence matrix — every registry PHY as victim against
//     every registry PHY keyed up co-channel at equal power.
//  3. OTA attack campaign — the 20-node campus fleet updated while a
//     scripted protocol attacker jams, forges ACKs, truncates and replays
//     frames, or pushes a version-rollback image; reports survival metrics
//     (detected attacks, rollback refusals) per scenario.
#include "adversary/coexistence.hpp"
#include "adversary/jammer.hpp"
#include "adversary/ota_attacker.hpp"
#include "bench_common.hpp"
#include "bench_fig15_common.hpp"
#include "testbed/campaign.hpp"

using namespace tinysdr;

namespace {

void record_entry(bench::BenchRun& run, const testbed::FaultCampaignEntry& e) {
  const std::string p = e.name + ".";
  run.scalar(p + "success_rate", e.success_rate());
  run.scalar(p + "jammed_packets",
             static_cast<double>(e.total_jammed_packets));
  run.scalar(p + "forged_acks_discarded",
             static_cast<double>(e.total_forged_acks));
  run.scalar(p + "truncated_dropped",
             static_cast<double>(e.total_truncated_dropped));
  run.scalar(p + "replays_dropped",
             static_cast<double>(e.total_replays_dropped));
  run.scalar(p + "rollback_rejections",
             static_cast<double>(e.rollback_rejections));
  run.scalar(p + "retransmissions",
             static_cast<double>(e.total_retransmissions));
}

void print_entry(TextTable& table, const testbed::FaultCampaignEntry& e) {
  table.add_row({e.name, TextTable::num(100.0 * e.success_rate(), 0),
                 TextTable::num(static_cast<double>(e.total_jammed_packets), 0),
                 TextTable::num(static_cast<double>(e.total_forged_acks), 0),
                 TextTable::num(
                     static_cast<double>(e.total_truncated_dropped), 0),
                 TextTable::num(
                     static_cast<double>(e.total_replays_dropped), 0),
                 TextTable::num(static_cast<double>(e.rollback_rejections), 0),
                 TextTable::num(
                     static_cast<double>(e.total_retransmissions), 0)});
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run{
      argc, argv, "Adversary campaign", "robustness extension",
      "Jammers, multi-PHY coexistence and OTA-protocol attacks: "
      "detection and survival metrics"};
  const exec::ExecPolicy policy = bench::thread_policy(argc, argv);
  run.config_threads(policy);

  // ---- 1. Jammer sweeps on the Fig. 15 LoRa link ----------------------
  bench::Fig15Setup rig;
  phy::TrialPlan plan = rig.plan();
  plan.base_seed = 0x1A44;

  std::vector<double> grid;
  for (double rssi = -126.0; rssi <= -108.0; rssi += 2.0)
    grid.push_back(rssi);

  // Jamming power fixed near the link's noise floor: strong enough to
  // bite, weak enough that the curves stay informative across the grid.
  const Dbm jam_power{-118.0};
  adversary::ReactiveJammer reactive{{}};
  adversary::SweepJammer sweeper{{}};
  adversary::PulsedJammer pulsed{{}};

  auto sweep_with = [&](const phy::Interferer* jammer) {
    phy::LinkSimulator sim{rig.tx125, rig.rx125, plan};
    if (jammer != nullptr) sim.add_interferer(*jammer, jam_power);
    return sim.sweep_rssi(grid, policy);
  };
  auto clean = sweep_with(nullptr);
  auto vs_reactive = sweep_with(&reactive);
  auto vs_sweep = sweep_with(&sweeper);
  auto vs_pulsed = sweep_with(&pulsed);

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < grid.size(); ++i)
    rows.push_back({grid[i], clean[i].ser() * 100.0,
                    vs_reactive[i].ser() * 100.0, vs_sweep[i].ser() * 100.0,
                    vs_pulsed[i].ser() * 100.0});
  run.series("jammer_ser_vs_rssi", "RSSI (dBm)",
             {"clean SER(%)", "reactive SER(%)", "sweep SER(%)",
              "pulsed SER(%)"},
             rows, 2);

  // ---- 2. Multi-PHY coexistence matrix --------------------------------
  adversary::CoexistenceConfig coex;
  coex.trials = 3;
  auto matrix = adversary::run_coexistence_matrix(coex, policy);
  const auto& entries = phy::Registry::builtin().entries();

  std::vector<std::string> labels{"clean PER(%)"};
  for (const auto& e : entries) labels.push_back("vs " + e.name + " (%)");
  std::vector<std::vector<double>> coex_rows;
  double worst_penalty = 0.0;
  for (std::size_t v = 0; v < entries.size(); ++v) {
    std::vector<double> row{static_cast<double>(v)};
    const auto* ref = matrix.find(entries[v].id, std::nullopt);
    row.push_back(ref != nullptr ? ref->per() * 100.0 : 0.0);
    for (const auto& i : entries) {
      const auto* cell = matrix.find(entries[v].id, i.id);
      row.push_back(cell != nullptr ? cell->per() * 100.0 : 0.0);
      worst_penalty =
          std::max(worst_penalty, matrix.per_penalty(entries[v].id, i.id));
    }
    coex_rows.push_back(std::move(row));
    std::cout << "victim " << v << " = " << entries[v].name << "\n";
  }
  run.series("coexistence_per", "victim #", labels, coex_rows, 1);
  run.scalar("coexistence.worst_per_penalty", worst_penalty);

  // ---- 3. OTA protocol attack campaign --------------------------------
  Rng deploy_rng{2024};
  auto deployment = testbed::Deployment::campus(deploy_rng);
  Rng img_rng{7};
  auto image = fpga::generate_mcu_program("mcu_fw", 24 * 1024, img_rng);

  auto attacked = [](const char* name, adversary::OtaAttackPlan plan) {
    testbed::FaultScenario s;
    s.name = name;
    s.policy.max_retries = 200;
    s.make_attacker = adversary::attacker_factory(plan);
    return s;
  };
  std::vector<testbed::FaultScenario> scenarios;
  {
    adversary::OtaAttackPlan p;
    p.jam_rate = 0.10;
    scenarios.push_back(attacked("jam-10%", p));
  }
  {
    adversary::OtaAttackPlan p;
    p.forge_ack_rate = 0.05;
    scenarios.push_back(attacked("forge-ack-5%", p));
  }
  {
    adversary::OtaAttackPlan p;
    p.truncate_rate = 0.05;
    scenarios.push_back(attacked("truncate-5%", p));
  }
  {
    adversary::OtaAttackPlan p;
    p.replay_rate = 0.10;
    scenarios.push_back(attacked("replay-10%", p));
  }
  {
    // Version-rollback push: the fleet already runs v5, the attacker
    // serves a valid-but-old v1 image. Every node must refuse it.
    testbed::FaultScenario s;
    s.name = "rollback-push";
    s.image_version = 1;
    s.fleet_version = 5;
    scenarios.push_back(s);
  }
  {
    adversary::OtaAttackPlan p;
    p.jam_rate = 0.05;
    p.forge_ack_rate = 0.02;
    p.truncate_rate = 0.02;
    p.replay_rate = 0.05;
    scenarios.push_back(attacked("combined", p));
  }

  Rng campaign_rng{99};
  auto result = testbed::run_fault_campaign(deployment, image,
                                            ota::UpdateTarget::kMcu,
                                            scenarios, campaign_rng, policy);

  TextTable table{{"scenario", "success %", "jammed", "forged", "truncated",
                   "replays", "rollback-rej", "retx"}};
  print_entry(table, result.baseline);
  record_entry(run, result.baseline);
  for (const auto& s : result.scenarios) {
    print_entry(table, s);
    record_entry(run, s);
  }
  table.print(std::cout);

  std::cout << "\nSurvival: every attack regime is detected and counted by "
               "the victim (jammed/forged/truncated/replay columns), and the "
               "rollback push is refused fleet-wide without touching the "
               "running image.\n";
  return 0;
}
