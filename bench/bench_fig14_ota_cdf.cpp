// Reproduces Fig. 14: CDF of over-the-air programming time across the
// 20-node campus testbed, for the LoRa FPGA image (579 kB -> ~99 kB
// compressed), the BLE FPGA image (-> ~40 kB) and the MCU programs
// (78 kB -> ~24 kB), over the SF8/BW500/CR4:6 backbone at 14 dBm.
#include "bench_common.hpp"
#include "exec/policy.hpp"
#include "testbed/campaign.hpp"

using namespace tinysdr;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Fig. 14", "paper Fig. 14",
                      "OTA programming time CDF over the 20-node testbed"};

  // Campaigns shard across the exec worker pool; output is byte-identical
  // for any thread count (override with --threads N or TINYSDR_THREADS).
  const exec::ExecPolicy policy = bench::thread_policy(argc, argv);
  std::cout << "Sharding campaigns over "
            << exec::resolved_threads(policy.threads) << " thread(s).\n";
  run.config_threads(policy);

  Rng deploy_rng{2024};
  auto deployment = testbed::Deployment::campus(deploy_rng);
  std::cout << "Deployment: 20 nodes, RSSI "
            << TextTable::num(deployment.weakest_rssi().value(), 0) << " to "
            << TextTable::num(deployment.strongest_rssi().value(), 0)
            << " dBm from the AP.\n";

  Rng img_rng{7};
  auto lora_fpga = fpga::generate_bitstream(fpga::lora_rx_design(8),
                                            fpga::DeviceSpec{}, img_rng);
  auto ble_fpga = fpga::generate_bitstream(fpga::ble_tx_design(),
                                           fpga::DeviceSpec{}, img_rng);
  auto mcu_prog = fpga::generate_mcu_program("mcu_fw", 78 * 1024, img_rng);

  struct Job {
    const char* label;
    const char* key;
    const fpga::FirmwareImage* image;
    ota::UpdateTarget target;
    double paper_mean_s;
  } jobs[] = {
      {"FPGA: LoRa", "fpga_lora", &lora_fpga, ota::UpdateTarget::kFpga,
       150.0},
      {"FPGA: BLE", "fpga_ble", &ble_fpga, ota::UpdateTarget::kFpga, 59.0},
      {"MCU: LoRa/BLE", "mcu", &mcu_prog, ota::UpdateTarget::kMcu, 39.0},
  };

  std::vector<testbed::CampaignResult> results;
  for (const auto& job : jobs) {
    Rng rng{99};
    results.push_back(
        testbed::run_campaign(deployment, *job.image, job.target, rng,
                              policy));
    const auto& r = results.back();
    // Compressed size from the first node's report (same image for all).
    std::cout << "\n" << job.label << ": "
              << TextTable::num(
                     static_cast<double>(r.per_node[0].original_bytes) / 1024,
                     0)
              << " kB -> "
              << TextTable::num(
                     static_cast<double>(r.per_node[0].compressed_bytes) /
                         1024,
                     0)
              << " kB compressed; " << r.successes() << "/20 nodes updated; "
              << "mean time " << TextTable::num(r.mean_time().value(), 1)
              << " s (paper: ~" << TextTable::num(job.paper_mean_s, 0)
              << " s); max decompress "
              << TextTable::num(
                     r.per_node[0].decompress_time.milliseconds(), 0)
              << " ms (paper: <= 450 ms)\n";
    std::string key{job.key};
    run.scalar(key + ".successes", static_cast<double>(r.successes()));
    run.scalar(key + ".mean_time_s", r.mean_time().value());
    run.scalar(key + ".compressed_kb",
               static_cast<double>(r.per_node[0].compressed_bytes) / 1024.0);
  }

  // Print the three CDFs on a common grid of minutes.
  std::vector<std::vector<double>> rows;
  for (double minutes = 0.25; minutes <= 4.0; minutes += 0.25) {
    std::vector<double> row{minutes};
    for (const auto& r : results) {
      auto cdf = r.time_cdf_minutes();
      double p = 0.0;
      for (const auto& point : cdf)
        if (point.value <= minutes) p = point.probability;
      row.push_back(p);
    }
    rows.push_back(row);
  }
  run.series("time_cdf", "Duration (min)",
             {"CDF FPGA:LoRa", "CDF FPGA:BLE", "CDF MCU"}, rows, 2);

  std::cout << "\nShape: MCU < BLE FPGA < LoRa FPGA at every quantile "
               "(ordering by compressed size), with tails from far-node "
               "retransmissions — as in the paper.\n";
  return 0;
}
