// Fault-injection campaign across the 20-node campus testbed: subject the
// fleet to burst loss, packet corruption, mid-transfer brownouts and flash
// write failures, and report update success rate plus the airtime/energy
// cost of each regime against the fault-free baseline. Also ablates the
// windowed selective-ACK transfer against the paper's per-packet
// stop-and-wait under identical burst loss.
#include "bench_common.hpp"
#include "testbed/campaign.hpp"

using namespace tinysdr;

namespace {

/// Record a scenario's headline numbers under "<scenario>.<stat>" keys.
void record_entry(tinysdr::bench::BenchRun& run,
                  const testbed::FaultCampaignEntry& e) {
  const std::string p = e.name + ".";
  run.scalar(p + "success_rate", e.success_rate());
  run.scalar(p + "mean_time_s", e.mean_time.value());
  run.scalar(p + "mean_airtime_s", e.mean_airtime.value());
  run.scalar(p + "mean_energy_mj", e.mean_energy.value());
  run.scalar(p + "reboots", static_cast<double>(e.total_reboots));
  run.scalar(p + "resumes", static_cast<double>(e.total_resumes));
  run.scalar(p + "rollbacks", static_cast<double>(e.total_rollbacks));
  run.scalar(p + "retransmissions",
             static_cast<double>(e.total_retransmissions));
}

void print_entry(TextTable& table, const testbed::FaultCampaignEntry& e) {
  table.add_row({e.name, TextTable::num(100.0 * e.success_rate(), 0),
                 TextTable::num(e.mean_time.value(), 1),
                 TextTable::num(e.mean_airtime.value(), 1),
                 TextTable::num(e.added_airtime.value(), 1),
                 TextTable::num(e.mean_energy.value() / 1000.0, 1),
                 TextTable::num(static_cast<double>(e.total_reboots), 0),
                 TextTable::num(static_cast<double>(e.total_resumes), 0),
                 TextTable::num(static_cast<double>(e.total_rollbacks), 0),
                 TextTable::num(
                     static_cast<double>(e.total_retransmissions), 0)});
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run{
      argc, argv, "Fault campaign", "robustness extension",
      "Fleet OTA update success under injected faults (20-node campus)"};

  const exec::ExecPolicy policy = bench::thread_policy(argc, argv);
  std::cout << "Sharding passes over "
            << exec::resolved_threads(policy.threads)
            << " thread(s); results are thread-count independent.\n";
  run.config_threads(policy);

  Rng deploy_rng{2024};
  auto deployment = testbed::Deployment::campus(deploy_rng);
  Rng img_rng{7};
  auto image = fpga::generate_mcu_program("mcu_fw", 78 * 1024, img_rng);

  channel::GilbertElliottParams burst{0.05, 0.30, 0.0, 0.9};

  std::vector<testbed::FaultScenario> scenarios;
  {
    testbed::FaultScenario s;
    s.name = "burst-loss";
    s.plan.burst = burst;
    s.policy.max_retries = 200;
    scenarios.push_back(s);
  }
  {
    testbed::FaultScenario s;
    s.name = "corrupt-2%";
    s.plan.corrupt_rate = 0.02;
    s.plan.duplicate_rate = 0.01;
    scenarios.push_back(s);
  }
  {
    testbed::FaultScenario s;
    s.name = "brownout@8kB";
    s.plan.brownout_at_byte = 8 * 1024;
    scenarios.push_back(s);
  }
  {
    testbed::FaultScenario s;
    s.name = "flash-faults";
    s.plan.page_program_failure_rate = 1.0;
    s.plan.flash_fault_region = sim::FlashRegion{
        ota::FirmwareStore::kSlotABase,
        ota::FirmwareStore::kGoldenBase - ota::FirmwareStore::kSlotABase};
    scenarios.push_back(s);
  }
  {
    testbed::FaultScenario s;
    s.name = "combined";
    s.plan.burst = burst;
    s.plan.corrupt_rate = 0.01;
    s.plan.brownout_at_byte = 12 * 1024;
    s.plan.timeout_jitter = 0.2;
    s.policy.max_retries = 200;
    scenarios.push_back(s);
  }

  Rng campaign_rng{99};
  auto result = testbed::run_fault_campaign(deployment, image,
                                            ota::UpdateTarget::kMcu,
                                            scenarios, campaign_rng, policy);

  TextTable table{{"scenario", "success %", "mean time s", "airtime s",
                   "+airtime s", "energy J", "reboots", "resumes",
                   "rollbacks", "retx"}};
  print_entry(table, result.baseline);
  record_entry(run, result.baseline);
  for (const auto& s : result.scenarios) {
    print_entry(table, s);
    record_entry(run, s);
  }
  table.print(std::cout);

  std::cout << "\nSelective-ACK vs stop-and-wait under identical burst loss"
            << " (one strong-link node, same seed):\n";
  std::vector<std::uint8_t> stream(24 * 1024, 0xA5);
  ota::AccessPoint ap;
  TextTable ablation{{"ack mode", "airtime s", "time s", "acks", "retx"}};
  for (auto mode :
       {ota::AckMode::kSelectiveAck, ota::AckMode::kStopAndWait}) {
    ota::OtaLink link{ota::ota_link_params(), Dbm{-60.0},
                      std::uint64_t{0xA11CE}};
    link.set_burst(burst);
    ota::TransferPolicy policy;
    policy.mode = mode;
    policy.max_retries = 200;
    auto outcome = ap.transfer(stream, 1, link, policy);
    const std::string key = mode == ota::AckMode::kSelectiveAck
                                ? "ablation.selective_ack"
                                : "ablation.stop_and_wait";
    run.scalar(key + ".airtime_s", outcome.airtime.value());
    run.scalar(key + ".time_s", outcome.total_time.value());
    run.scalar(key + ".retransmissions",
               static_cast<double>(outcome.retransmissions));
    ablation.add_row(
        {mode == ota::AckMode::kSelectiveAck ? "selective-ack"
                                             : "stop-and-wait",
         TextTable::num(outcome.airtime.value(), 2),
         TextTable::num(outcome.total_time.value(), 2),
         TextTable::num(static_cast<double>(outcome.ack_packets), 0),
         TextTable::num(static_cast<double>(outcome.retransmissions), 0)});
  }
  ablation.print(std::cout);
  return 0;
}
