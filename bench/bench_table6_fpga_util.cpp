// Reproduces Table 6: FPGA LUT utilization for the LoRa modulator and
// demodulator at every spreading factor, plus the BLE (3%) and concurrent
// (17%) design points quoted in the text.
#include "bench_common.hpp"
#include "fpga/resources.hpp"

using namespace tinysdr;
using namespace tinysdr::fpga;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Table 6", "paper Table 6",
                      "FPGA utilization for the LoRa protocol (LFE5U-25F, "
                      "24k LUTs)"};

  DeviceSpec dev;
  TextTable table{{"SF", "LoRa TX (LUT)", "TX util", "LoRa RX (LUT)",
                   "RX util"}};
  for (int sf = 6; sf <= 12; ++sf) {
    auto tx = lora_tx_design();
    auto rx = lora_rx_design(sf);
    table.add_row({std::to_string(sf), std::to_string(tx.total_luts()),
                   TextTable::num(tx.utilization(dev) * 100.0, 1) + "%",
                   std::to_string(rx.total_luts()),
                   TextTable::num(rx.utilization(dev) * 100.0, 1) + "%"});
  }
  table.print(std::cout);

  std::cout << "\nBlock breakdown, LoRa RX SF8 (Fig. 6b blocks):\n";
  for (const auto& [name, luts] : lora_rx_design(8).breakdown())
    std::cout << "  " << name << ": " << luts << " LUTs\n";

  auto ble = ble_tx_design();
  auto conc = concurrent_rx_design({8, 8});
  std::cout << "\nBLE beacon generator: " << ble.total_luts() << " LUTs ("
            << TextTable::num(ble.utilization(dev) * 100.0, 1)
            << "%, paper: 3%)\n"
            << "Concurrent dual-SF8 demodulator: " << conc.total_luts()
            << " LUTs (" << TextTable::num(conc.utilization(dev) * 100.0, 1)
            << "%, paper: 17%)\n"
            << "Headroom with the largest demodulator loaded: "
            << TextTable::num(
                   (1.0 - lora_rx_design(12).utilization(dev)) * 100.0, 0)
            << "% of the fabric free for custom logic.\n";
  return 0;
}
