// microSD sample-recording budget (paper §3.2.2): validates the claim that
// SPI mode's 104 Mbps "is needed to write data in real time" — 4 Msps of
// 26-bit packed I/Q is exactly 104 Mbps — and demonstrates a live
// record/replay cycle through the FIFO.
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "fpga/microsd.hpp"

using namespace tinysdr;
using namespace tinysdr::fpga;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Sample recorder", "paper §3.2.2",
                      "microSD real-time I/Q recording budget"};

  std::vector<std::vector<double>> rows;
  for (double msps : {0.5, 1.0, 2.0, 4.0}) {
    double rate = recording_rate_bps(msps * 1e6);
    rows.push_back({msps, rate / 1e6, rate <= 104e6 ? 1.0 : 0.0});
  }
  run.series("sample_rate_msps", "Sample rate (Msps)",
                      {"Required rate (Mbps)", "Fits SPI 104 Mbps (1=yes)"},
                      rows, 2);
  std::cout << "At the radio's full 4 Msps the packed 13+13-bit stream is "
               "exactly 104 Mbps — the paper's SPI-mode figure.\n";

  MicroSdCard card;
  SampleRecorder recorder{card, Hertz::from_megahertz(4.0)};
  std::cout << "\nReal-time feasible at 4 Msps: "
            << (recorder.realtime_feasible() ? "yes" : "no")
            << "; FIFO stall margin "
            << TextTable::num(recorder.stall_margin(), 0)
            << "x the worst-case block-program latency.\n";

  // Record a burst and verify a round trip.
  Rng rng{5};
  std::vector<radio::IqWord> burst;
  for (int i = 0; i < 10000; ++i)
    burst.push_back({static_cast<std::int32_t>(rng.next_below(8192)) - 4096,
                     static_cast<std::int32_t>(rng.next_below(8192)) - 4096,
                     false, false});
  std::size_t dropped = recorder.record(burst);
  recorder.flush();
  std::cout << "Recorded " << recorder.samples_recorded()
            << " samples with " << dropped << " drops ("
            << TextTable::num(static_cast<double>(card.bytes_written()) /
                                  1024.0,
                              1)
            << " kB on card).\n"
            << "Card capacity at 4 Msps: "
            << TextTable::num(card.capacity_seconds(4e6), 0)
            << " s of raw I/Q per 2 GB.\n";
  return 0;
}
