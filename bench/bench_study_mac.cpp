// MAC-layer studies from the paper's §7 research questions:
//   [1] "What is the trade-off between packet length and overall
//       throughput?" — goodput vs payload size at several link margins.
//   [2] Multi-hop PHY/MAC: when does relaying beat a slow direct link?
//   [3] OTA rendezvous: listen-interval trade-off (idle power vs latency).
//   [4] Front-end impairment budget: demodulator SER vs DC/IQ/CFO errors.
#include "bench_common.hpp"
#include "channel/noise.hpp"
#include "core/concurrent.hpp"
#include "lora/demodulator.hpp"
#include "lora/modulator.hpp"
#include "ota/protocol.hpp"
#include "ota/scheduler.hpp"
#include "phy/lora_phy.hpp"
#include "radio/at86rf215.hpp"
#include "testbed/multihop.hpp"

using namespace tinysdr;

namespace {

/// Goodput (payload bits / airtime / (1-PER)^-1 expected transmissions).
double goodput(const lora::LoraParams& params, std::size_t payload, Dbm rssi,
               Rng& rng) {
  ota::OtaLink link{params, rssi, rng};
  double per = link.packet_error_rate(payload);
  double toa = lora::time_on_air(params, payload).value();
  // Stop-and-wait with retransmissions: expected time per delivered packet.
  double expected_tx = 1.0 / std::max(1e-9, 1.0 - per);
  return 8.0 * static_cast<double>(payload) / (toa * expected_tx);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "MAC studies",
                      "paper §7 research questions",
                      "Packet length, multi-hop, rendezvous and impairment "
                      "budgets"};

  // ------------------------------------------- [1] packet length tradeoff
  std::cout << "\n[1] Packet length vs goodput (SF8/BW125, stop-and-wait):\n";
  lora::LoraParams p{8, Hertz::from_kilohertz(125.0)};
  std::vector<std::vector<double>> rows;
  for (std::size_t len : {8ul, 16ul, 32ul, 64ul, 128ul, 255ul}) {
    std::vector<double> row{static_cast<double>(len)};
    for (double margin : {10.0, 2.5, 1.0}) {
      Dbm rssi = lora::sx1276_sensitivity(8, p.bandwidth) + margin;
      Rng rng{len};
      row.push_back(goodput(p, len, rssi, rng));
    }
    rows.push_back(row);
  }
  run.series("goodput_vs_payload", "Payload (B)",
             {"Goodput @+10dB (bps)", "@+2.5dB (bps)", "@+1dB (bps)"}, rows,
             0);
  std::cout << "  Reading: with margin, longer packets amortize the "
               "preamble and keep winning; near sensitivity the PER "
               "length-penalty flattens the curve (128 B -> 255 B buys "
               "~1%) — the §7 packet-length question has an RSSI-dependent "
               "answer, which is also why the OTA protocol stops at "
               "60 B.\n";

  // ------------------------------------------------------- [2] multi-hop
  std::cout << "\n[2] Multi-hop relaying (915 MHz, exponent 3.2, 20-byte "
               "payloads):\n";
  channel::PathLossModel model{Hertz::from_megahertz(915.0), 3.2};
  rows.clear();
  for (double dist : {500.0, 1000.0, 1500.0, 2000.0}) {
    testbed::MeshNetwork mesh{model, Dbm{14.0}};
    mesh.add_node({1, dist / 2.0});  // a relay at the midpoint
    mesh.add_node({2, dist});
    auto outcome = testbed::compare_direct_vs_relayed(mesh, 2, 20);
    double direct_ms = outcome.direct_possible
                           ? outcome.direct_airtime.milliseconds()
                           : -1.0;
    double relay_ms = outcome.relayed
                          ? outcome.relayed->total_airtime().milliseconds()
                          : -1.0;
    double hops = outcome.relayed
                      ? static_cast<double>(outcome.relayed->hop_count())
                      : 0.0;
    rows.push_back({dist, direct_ms, relay_ms, hops});
  }
  run.series(
      "multihop", "Distance (m)",
      {"Direct airtime (ms, -1=unreachable)", "Routed airtime (ms)", "Hops"},
      rows, 1);
  std::cout << "  Reading: once the direct link needs SF11/12, two SF7-9 "
               "hops through the midpoint relay deliver the same packet in "
               "a fraction of the airtime — and extend coverage past the "
               "direct-range cliff.\n";

  // ------------------------------------------------------ [3] rendezvous
  std::cout << "\n[3] OTA rendezvous listen interval (50 ms backbone "
               "windows):\n";
  rows.clear();
  for (double interval_s : {10.0, 60.0, 600.0, 3600.0}) {
    ota::ListenSchedule s;
    s.interval = Seconds{interval_s};
    rows.push_back({interval_s,
                    ota::idle_listen_power(s).microwatts(),
                    ota::average_rendezvous(s).value()});
  }
  run.series("rendezvous", "Interval (s)",
             {"Idle power (uW)", "Mean update latency (s)"}, rows, 1);
  std::cout << "  Reading: the paper's periodic-timer design spans a clean "
               "Pareto front; at 10-minute intervals the standing cost is "
               "microwatts while updates start within minutes.\n";

  // ----------------------------------------------------- [4] impairments
  std::cout << "\n[4] Front-end impairment budget (SF8/BW125 SER at "
               "-122 dBm, calibrated NF):\n";
  auto ser_with = [&](radio::RxImpairments imp) {
    lora::LoraParams cfg{8, Hertz::from_kilohertz(125.0)};
    lora::ChirpGenerator gen{cfg, cfg.bandwidth};
    radio::At86rf215Config rcfg;
    rcfg.sample_rate = cfg.bandwidth;
    radio::At86rf215 rx_radio{rcfg};
    rx_radio.wake();
    rx_radio.enter_rx();
    rx_radio.set_rx_impairments(imp);

    Rng rng{31};
    const std::size_t count = 300;
    std::vector<std::uint32_t> tx;
    dsp::Samples wave;
    for (std::size_t i = 0; i < count; ++i) {
      std::uint32_t v = rng.next_below(cfg.chips());
      tx.push_back(v);
      auto sym = gen.symbol(v, lora::ChirpDirection::kUp);
      wave.insert(wave.end(), sym.begin(), sym.end());
    }
    channel::AwgnChannel chan{cfg.bandwidth, phy::kLoraSystemNf, rng};
    auto noisy = chan.apply(wave, Dbm{-122.0});
    auto through = rx_radio.receive(noisy);
    lora::Demodulator demod{cfg, cfg.bandwidth};
    auto rx = demod.demodulate_aligned(through, 0, count);
    std::size_t errors = 0;
    for (std::size_t i = 0; i < rx.size(); ++i)
      if (rx[i] != tx[i]) ++errors;
    return 100.0 * static_cast<double>(errors) /
           static_cast<double>(rx.size());
  };

  TextTable table{{"Impairment", "SER (%)"}};
  auto impairment_row = [&](const std::string& label,
                            const std::string& scalar_name,
                            radio::RxImpairments imp) {
    double ser = ser_with(imp);
    table.add_row({label, TextTable::num(ser, 2)});
    run.scalar(scalar_name, ser);
  };
  impairment_row("none", "ser_clean_pct", {});
  radio::RxImpairments dc;
  dc.dc_offset = 0.1;
  impairment_row("DC offset -20 dB", "ser_dc_offset_pct", dc);
  radio::RxImpairments iq;
  iq.iq_gain_imbalance_db = 1.0;
  iq.iq_phase_skew_deg = 5.0;
  impairment_row("IQ 1 dB / 5 deg", "ser_iq_imbalance_pct", iq);
  radio::RxImpairments cfo;
  cfo.cfo_hz = 200.0;
  impairment_row("CFO 200 Hz", "ser_cfo_pct", cfo);
  radio::RxImpairments all;
  all.dc_offset = 0.1;
  all.iq_gain_imbalance_db = 1.0;
  all.iq_phase_skew_deg = 5.0;
  all.cfo_hz = 200.0;
  impairment_row("all of the above", "ser_all_pct", all);
  table.print(std::cout);
  std::cout << "  Reading: DC offset and IQ imbalance are immaterial to "
               "CSS (part of why a $5.5 radio chip reaches LoRa-chipset "
               "sensitivity); uncorrected CFO is the impairment that "
               "bites, which is exactly why the receiver estimates it "
               "from the preamble/SFD during synchronisation — the full "
               "receive path absorbs this 200 Hz without loss.\n";
  return 0;
}
