// Ablation: the CAD (channel activity detection) threshold. Sweeps the
// dechirp peak-to-mean threshold against measured false-alarm and missed-
// detection rates, justifying the 11 dB default — the operating point a
// listen-before-talk MAC on tinySDR would use (§7 / DeepSense [41]).
#include "bench_common.hpp"
#include "channel/noise.hpp"
#include "exec/seed.hpp"
#include "lora/demodulator.hpp"
#include "lora/modulator.hpp"

using namespace tinysdr;
using namespace tinysdr::lora;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Ablation: CAD threshold",
                      "carrier-sense primitive",
                      "False alarm vs missed detection, SF8/BW125, signal "
                      "at -120 dBm"};

  LoraParams p{8, Hertz::from_kilohertz(125.0)};
  Modulator mod{p, p.bandwidth};
  Demodulator demod{p, p.bandwidth};
  auto preamble = mod.preamble_waveform();
  const int trials = 400;
  const std::uint64_t base_seed = 2026;

  std::vector<std::vector<double>> rows;
  for (double threshold : {7.0, 9.0, 11.0, 13.0, 15.0}) {
    int false_alarms = 0, missed = 0;
    for (int t = 0; t < trials; ++t) {
      channel::AwgnChannel chan{
          p.bandwidth, 6.0,
          Rng{exec::stream_seed(base_seed, static_cast<std::uint64_t>(t))}};
      // Noise-only window.
      auto noise = chan.noise_only(p.chips() * 2, chan.floor());
      if (demod.channel_activity(noise, threshold)) ++false_alarms;
      // Weak-signal window (-120 dBm, 6 dB above the SF8/BW125 knee).
      auto busy = chan.apply(preamble, Dbm{-120.0});
      busy.resize(p.chips() * 2);
      if (!demod.channel_activity(busy, threshold)) ++missed;
    }
    rows.push_back({threshold,
                    100.0 * false_alarms / static_cast<double>(trials),
                    100.0 * missed / static_cast<double>(trials)});
  }
  run.series("cad_threshold", "Threshold (dB)",
             {"False alarm (%)", "Missed detection (%)"}, rows, 2);

  std::cout << "\nReading: below ~10 dB the noise peak-to-mean tail fires "
               "constantly (max over 256 bins concentrates near 7.4 dB); "
               "at 11 dB false alarms are rare while a -120 dBm preamble "
               "(23 dB post-FFT SNR) is still never missed — the default "
               "operating point.\n";
  return 0;
}
