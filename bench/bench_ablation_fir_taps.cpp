// Ablation: the demodulator front-end FIR length. The paper chose 14 taps;
// this sweep shows the SER-vs-RSSI penalty of shorter filters and the
// diminishing returns (plus LUT cost) of longer ones, at an oversampled
// front end where the filter actually has noise to remove.
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "lora/chirp.hpp"
#include "channel/noise.hpp"
#include "lora/demodulator.hpp"

using namespace tinysdr;
using namespace tinysdr::lora;

namespace {

double ser_with_taps(std::size_t taps, Dbm rssi, std::uint64_t seed) {
  LoraParams p{8, Hertz::from_kilohertz(125.0)};
  Hertz fs = Hertz::from_kilohertz(500.0);  // 4x oversampled front end
  ChirpGenerator gen{p, fs};
  Demodulator demod{p, fs, taps};
  Rng rng{seed};

  const std::size_t count = 300;
  std::vector<std::uint32_t> tx;
  dsp::Samples wave;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t v = rng.next_below(p.chips());
    tx.push_back(v);
    auto sym = gen.symbol(v, ChirpDirection::kUp);
    wave.insert(wave.end(), sym.begin(), sym.end());
  }
  tinysdr::channel::AwgnChannel chan{fs, bench::kLoraSystemNf, rng};
  auto noisy = chan.apply(wave, rssi);
  auto cond = demod.condition(noisy);
  auto rx = demod.demodulate_aligned(cond, 0, count);
  std::size_t errors = 0;
  std::size_t n = std::min(tx.size(), rx.size());
  for (std::size_t i = 0; i < n; ++i)
    if (tx[i] != rx[i]) ++errors;
  return 100.0 * static_cast<double>(errors) / static_cast<double>(n);
}

}  // namespace

int main() {
  bench::print_header("Ablation: FIR taps", "design choice, §3.2.2/§4.1",
                      "Demodulator SER vs front-end FIR length "
                      "(SF8/BW125 at a 4x oversampled front end)");

  std::vector<std::vector<double>> rows;
  for (double rssi : {-126.0, -123.0, -120.0}) {
    std::vector<double> row{rssi};
    for (std::size_t taps : {2ul, 6ul, 14ul, 30ul}) {
      row.push_back(ser_with_taps(taps, Dbm{rssi}, 42));
    }
    rows.push_back(row);
  }
  bench::print_series("RSSI (dBm)",
                      {"SER% 2 taps", "SER% 6 taps", "SER% 14 taps",
                       "SER% 30 taps"},
                      rows, 2);

  std::cout << "\nReading: very short filters leak adjacent-band noise into "
               "the decimated stream; beyond ~14 taps the gain is "
               "marginal while LUT cost grows linearly — the paper's 14-tap "
               "choice sits at the knee.\n";
  return 0;
}
