// Ablation: the demodulator front-end FIR length. The paper chose 14 taps;
// this sweep shows the SER-vs-RSSI penalty of shorter filters and the
// diminishing returns (plus LUT cost) of longer ones, at an oversampled
// front end where the filter actually has noise to remove.
#include "bench_common.hpp"
#include "phy/link_sim.hpp"
#include "phy/lora_phy.hpp"

using namespace tinysdr;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Ablation: FIR taps",
                      "design choice, §3.2.2/§4.1",
                      "Demodulator SER vs front-end FIR length "
                      "(SF8/BW125 at a 4x oversampled front end)"};
  auto policy = bench::thread_policy(argc, argv);
  run.config_threads(policy);

  phy::LoraPhyConfig base{.params = {8, Hertz::from_kilohertz(125.0)},
                          .sample_rate = Hertz::from_kilohertz(500.0)};
  phy::LoraSymbolTx tx{base};

  // 2 trials x 150 payload bytes = 300 chirp symbols per sweep point. Same
  // base seed everywhere, so every filter length sees the identical
  // symbols and noise and only the front end differs.
  phy::TrialPlan plan;
  plan.trials = 2;
  plan.payload_bytes = 150;
  plan.noise_figure_db = phy::kLoraSystemNf;
  plan.base_seed = 42;

  const std::vector<double> grid{-126.0, -123.0, -120.0};
  const std::vector<std::size_t> tap_counts{2, 6, 14, 30};

  std::vector<std::vector<double>> rows{{-126.0}, {-123.0}, {-120.0}};
  for (std::size_t taps : tap_counts) {
    phy::LoraPhyConfig cfg = base;
    cfg.fir_taps = taps;
    phy::LoraSymbolRx rx{cfg};
    auto results = phy::LinkSimulator{tx, rx, plan}.sweep_rssi(grid, policy);
    for (std::size_t i = 0; i < grid.size(); ++i)
      rows[i].push_back(results[i].ser() * 100.0);
  }
  run.series("ser_vs_taps", "RSSI (dBm)",
             {"SER% 2 taps", "SER% 6 taps", "SER% 14 taps", "SER% 30 taps"},
             rows, 2);

  std::cout << "\nReading: very short filters leak adjacent-band noise into "
               "the decimated stream; beyond ~14 taps the gain is "
               "marginal while LUT cost grows linearly — the paper's 14-tap "
               "choice sits at the knee.\n";
  return 0;
}
