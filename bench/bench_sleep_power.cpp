// Reproduces the §5.1 sleep-mode result: the 30 uW budget, its
// component-level breakdown, and the duty-cycling payoff (battery life vs
// duty cycle) that motivates the whole design.
#include "bench_common.hpp"
#include "power/ledger.hpp"

using namespace tinysdr;
using namespace tinysdr::power;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Sleep power", "paper §5.1 + Table 1 context",
                      "Sleep-mode power budget and duty-cycling payoff"};

  PlatformPowerModel model;
  const auto& sleep = model.sleep_budget();
  TextTable budget{{"Contributor", "Power (uW)"}};
  budget.add_row({"MCU LPM3 + RTC (via LDO)",
                  TextTable::num(model.mcu().lpm3_uw.microwatts(), 1)});
  budget.add_row({"I/Q radio deep sleep", TextTable::num(sleep.iq_radio_uw, 1)});
  budget.add_row({"Backbone radio sleep",
                  TextTable::num(sleep.backbone_radio_uw, 1)});
  budget.add_row({"PAs (2 x 1 uA)", TextTable::num(sleep.pas_uw, 1)});
  budget.add_row({"Flash deep power-down", TextTable::num(sleep.flash_uw, 1)});
  budget.add_row({"Regulator shutdown leakage (5x)",
                  TextTable::num(5 * 0.1 * 3.7, 1)});
  budget.add_row({"Board leakage (dividers, pull-ups)",
                  TextTable::num(sleep.board_leak_uw, 1)});
  budget.add_row({"Total", TextTable::num(model.sleep_power().microwatts(), 1)});
  budget.print(std::cout);
  std::cout << "Paper measurement: 30 uW. FPGA fully power-gated (0 uW).\n";

  // Duty-cycling payoff: average power and 1000 mAh battery life.
  BatteryCapacity battery{1000.0, 3.7};
  std::vector<std::vector<double>> rows;
  for (double duty : {1.0, 0.1, 0.01, 0.001, 0.0001}) {
    Milliwatts avg = model.duty_cycled_average(Activity::kLoraTransmit, duty,
                                               Dbm{14.0});
    double days = battery.lifetime_at(avg).value() / 86400.0;
    rows.push_back({duty * 100.0, avg.value(), days});
  }
  run.series("tx_duty_cycle", "TX duty cycle (%)",
                      {"Average power (mW)", "1000 mAh battery life (days)"},
                      rows, 3);

  std::cout << "\nKey comparison (paper): every other SDR's *sleep* power "
               "exceeds tinySDR's *transmit* power — duty cycling buys them "
               "nothing. bladeRF sleeps at 717 mW vs tinySDR TX at "
            << TextTable::num(
                   model.draw(Activity::kLoraTransmit, Dbm{14.0}).value(), 0)
            << " mW.\n";
  return 0;
}
