// Reproduces Fig. 13: the BLE beacon burst envelope — three transmissions
// on the advertising channels separated by the 220 us frequency-switch
// delay (an iPhone 8 needs 350 us between beacons).
#include "bench_common.hpp"
#include "ble/advertiser.hpp"

using namespace tinysdr;
using namespace tinysdr::ble;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Fig. 13", "paper Fig. 13",
                      "BLE beacon burst envelope across the three "
                      "advertising channels"};

  AdvPacket beacon;
  beacon.adv_address = {0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC};
  beacon.adv_data = {0x02, 0x01, 0x06};
  Advertiser adv{beacon};

  TextTable table{{"Beacon", "Channel", "Freq (MHz)", "Start (us)",
                   "Airtime (us)", "Gap to next (us)"}};
  auto schedule = adv.burst_schedule();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const auto& e = schedule[i];
    double gap = i + 1 < schedule.size()
                     ? schedule[i + 1].start_us - (e.start_us + e.duration_us)
                     : 0.0;
    table.add_row({std::to_string(i + 1), std::to_string(e.channel_index),
                   TextTable::num(kAdvChannels[i].freq_mhz, 0),
                   TextTable::num(e.start_us, 1),
                   TextTable::num(e.duration_us, 1),
                   i + 1 < schedule.size() ? TextTable::num(gap, 1) : "-"});
  }
  table.print(std::cout);

  // ASCII envelope (the oscilloscope trace of Fig. 13).
  auto envelope = adv.burst_envelope();
  const std::size_t cols = 100;
  std::string trace(cols, ' ');
  for (std::size_t c = 0; c < cols; ++c) {
    std::size_t begin = c * envelope.size() / cols;
    std::size_t end = (c + 1) * envelope.size() / cols;
    double peak = 0.0;
    for (std::size_t i = begin; i < end; ++i)
      peak = std::max(peak, envelope[i]);
    trace[c] = peak > 0.5 ? '#' : '_';
  }
  std::cout << "\nEnvelope (" << TextTable::num(
                   adv.burst_duration().microseconds(), 0)
            << " us total):\n  " << trace << "\n";
  std::cout << "\nHop gap: " << TextTable::num(adv.hop_gap().microseconds(), 0)
            << " us (paper: 220 us; iPhone 8: 350 us).\n";
  return 0;
}
