// Shared helpers for the reproduction benches (one binary per paper
// table/figure — see DESIGN.md's experiment index).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace tinysdr::bench {

/// Calibrated system noise figures used by the evaluation benches.
///
/// The CSS demodulator in this repo is near-ideal (perfect symbol
/// alignment in the SER path, float math); real chips lose several dB to
/// CFO, quantization, AGC settle and sync jitter. We therefore fold those
/// impairments into an effective receiver noise figure calibrated once so
/// the headline sensitivity knees land where the paper measured them:
///   - LoRa: 11.5 dB (4 dB front-end NF + 7.5 dB implementation margin)
///     -> SF8/BW125 chirp SER knee at about -126 dBm (Fig. 11).
///   - BLE: 4.0 dB -> BER 1e-3 at about -94 dBm into the CC2650 model
///     (Fig. 12).
/// The calibration constants and the measured knees are recorded in
/// EXPERIMENTS.md.
inline constexpr double kLoraSystemNf = 11.5;
inline constexpr double kBleSystemNf = 4.0;

inline void print_header(const std::string& experiment,
                         const std::string& paper_ref,
                         const std::string& description) {
  std::cout << "\n==================================================\n"
            << experiment << "  (" << paper_ref << ")\n"
            << description << "\n"
            << "==================================================\n";
}

/// Print an (x, y...) series the way the paper's figures plot them.
inline void print_series(const std::string& x_label,
                         const std::vector<std::string>& y_labels,
                         const std::vector<std::vector<double>>& rows,
                         int precision = 3) {
  std::vector<std::string> headers{x_label};
  headers.insert(headers.end(), y_labels.begin(), y_labels.end());
  TextTable table{headers};
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (double v : row) cells.push_back(TextTable::num(v, precision));
    table.add_row(std::move(cells));
  }
  table.print(std::cout);
}

}  // namespace tinysdr::bench
