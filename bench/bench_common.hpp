// Shared helpers for the reproduction benches (one binary per paper
// table/figure — see DESIGN.md's experiment index).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "exec/policy.hpp"
#include "obs/json.hpp"

namespace tinysdr::bench {

/// Execution policy for campaign benches: `--threads N` on the command
/// line, else exec's defaults (TINYSDR_THREADS env var, then hardware
/// concurrency). Campaign output is byte-identical either way; threads
/// only change wall-clock time.
inline exec::ExecPolicy thread_policy(int argc, char* const argv[]) {
  exec::ExecPolicy policy;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view{argv[i]} == "--threads")
      policy.threads = static_cast<std::size_t>(
          std::strtoul(argv[i + 1], nullptr, 10));
  }
  return policy;
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_ref,
                         const std::string& description) {
  std::cout << "\n==================================================\n"
            << experiment << "  (" << paper_ref << ")\n"
            << description << "\n"
            << "==================================================\n";
}

/// Print an (x, y...) series the way the paper's figures plot them.
inline void print_series(const std::string& x_label,
                         const std::vector<std::string>& y_labels,
                         const std::vector<std::vector<double>>& rows,
                         int precision = 3) {
  std::vector<std::string> headers{x_label};
  headers.insert(headers.end(), y_labels.begin(), y_labels.end());
  TextTable table{headers};
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (double v : row) cells.push_back(TextTable::num(v, precision));
    table.add_row(std::move(cells));
  }
  table.print(std::cout);
}

/// One bench invocation with optional machine-readable output.
///
/// Construction prints the usual header; `series()` prints the table the
/// way `print_series` always has AND records it; `scalar()` records a
/// named headline number. If a JSON path was requested — `--json <path>`
/// on the command line, or the `TINYSDR_BENCH_JSON` environment variable
/// (the flag wins) — the destructor writes everything as a
/// `tinysdr-bench-v1` document:
///
///   {"schema":"tinysdr-bench-v1","experiment":...,"paper_ref":...,
///    "description":...,"config":{name:number,...},
///    "scalars":{name:number,...},
///    "series":{name:{"x_label":...,"y_labels":[...],"rows":[[...],...]}}}
///
/// `config` echoes how the bench was invoked (resolved thread count,
/// trial knobs); `scalars` holds what it measured. The perf gate only
/// compares scalars, so config entries can vary by machine freely.
///
/// The command line is validated strictly: every bench accepts
/// `--json <path>`, `--threads <n>` and `--help`; a bench with its own
/// flags declares them via `extra_flags` (each takes one value). Anything
/// else — unknown flags, positional arguments, a flag missing its value —
/// prints a usage message to stderr and exits with status 2, so a typo'd
/// invocation can never masquerade as a clean run in CI.
class BenchRun {
 public:
  BenchRun(int argc, char* const argv[], std::string experiment,
           std::string paper_ref, std::string description,
           std::vector<std::string> extra_flags = {})
      : experiment_(std::move(experiment)),
        paper_ref_(std::move(paper_ref)),
        description_(std::move(description)) {
    auto takes_value = [&extra_flags](std::string_view arg) {
      if (arg == "--json" || arg == "--threads") return true;
      for (const auto& f : extra_flags)
        if (arg == f) return true;
      return false;
    };
    auto usage = [&](std::ostream& out) {
      out << "usage: " << (argc > 0 ? argv[0] : "bench")
          << " [--json <path>] [--threads <n>]";
      for (const auto& f : extra_flags) out << " [" << f << " <value>]";
      out << "\n";
    };
    for (int i = 1; i < argc; ++i) {
      std::string_view arg{argv[i]};
      if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        std::exit(0);
      }
      if (takes_value(arg)) {
        if (i + 1 >= argc) {
          std::cerr << "bench: missing value for " << arg << "\n";
          usage(std::cerr);
          std::exit(2);
        }
        if (arg == "--json") json_path_ = argv[i + 1];
        ++i;
        continue;
      }
      std::cerr << "bench: unknown argument '" << arg << "'\n";
      usage(std::cerr);
      std::exit(2);
    }
    if (json_path_.empty()) {
      if (const char* env = std::getenv("TINYSDR_BENCH_JSON");
          env != nullptr && *env != '\0')
        json_path_ = env;
    }
    print_header(experiment_, paper_ref_, description_);
  }

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  ~BenchRun() {
    if (json_path_.empty()) return;
    std::ofstream out{json_path_};
    if (!out) {
      std::cerr << "bench: cannot open " << json_path_ << " for writing\n";
      return;
    }
    write_json(out);
    out << "\n";
  }

  void scalar(const std::string& name, double value) {
    scalars_[name] = value;
  }

  /// Record a run-configuration echo (thread count, trial knobs, ...).
  /// Config entries land in a separate `config` JSON block so they never
  /// mix with result scalars — the perf gate compares scalars against
  /// baselines recorded on a different machine, and "how the bench was
  /// invoked" must not trip "what the bench measured".
  void config(const std::string& name, double value) {
    config_[name] = value;
  }

  /// Record the resolved worker-thread count in the config block. Every
  /// campaign bench calls this so the JSON states the --threads value
  /// actually used (hardware concurrency when the flag is absent).
  void config_threads(const exec::ExecPolicy& policy) {
    config("threads",
           static_cast<double>(exec::resolved_threads(policy.threads)));
  }

  /// Print and record an (x, y...) series.
  void series(const std::string& name, const std::string& x_label,
              const std::vector<std::string>& y_labels,
              const std::vector<std::vector<double>>& rows,
              int precision = 3) {
    print_series(x_label, y_labels, rows, precision);
    series_.emplace_back(name, Series{x_label, y_labels, rows});
  }

  void write_json(std::ostream& out) const {
    using obs::json_number;
    using obs::json_quote;
    out << "{\"schema\":\"tinysdr-bench-v1\",\"experiment\":"
        << json_quote(experiment_)
        << ",\"paper_ref\":" << json_quote(paper_ref_)
        << ",\"description\":" << json_quote(description_) << ",\"config\":{";
    bool first = true;
    for (const auto& [name, value] : config_) {
      if (!first) out << ",";
      first = false;
      out << json_quote(name) << ":" << json_number(value);
    }
    out << "},\"scalars\":{";
    first = true;
    for (const auto& [name, value] : scalars_) {
      if (!first) out << ",";
      first = false;
      out << json_quote(name) << ":" << json_number(value);
    }
    out << "},\"series\":{";
    first = true;
    for (const auto& [name, s] : series_) {
      if (!first) out << ",";
      first = false;
      out << json_quote(name) << ":{\"x_label\":" << json_quote(s.x_label)
          << ",\"y_labels\":[";
      for (std::size_t i = 0; i < s.y_labels.size(); ++i) {
        if (i > 0) out << ",";
        out << json_quote(s.y_labels[i]);
      }
      out << "],\"rows\":[";
      for (std::size_t r = 0; r < s.rows.size(); ++r) {
        if (r > 0) out << ",";
        out << "[";
        for (std::size_t c = 0; c < s.rows[r].size(); ++c) {
          if (c > 0) out << ",";
          out << json_number(s.rows[r][c]);
        }
        out << "]";
      }
      out << "]}";
    }
    out << "}}";
  }

  [[nodiscard]] const std::string& json_path() const { return json_path_; }

 private:
  struct Series {
    std::string x_label;
    std::vector<std::string> y_labels;
    std::vector<std::vector<double>> rows;
  };

  std::string experiment_;
  std::string paper_ref_;
  std::string description_;
  std::string json_path_;
  std::map<std::string, double> config_;
  std::map<std::string, double> scalars_;
  std::vector<std::pair<std::string, Series>> series_;
};

}  // namespace tinysdr::bench
