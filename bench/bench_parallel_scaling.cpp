// Parallel campaign scaling: wall-clock speedup of the exec worker pool
// over the serial path for fleet OTA campaigns, across a nodes x threads
// grid, plus a byte-identity check of the sharded telemetry against the
// serial run at every point. Speedup tops out near the machine's core
// count; determinism must hold everywhere.
//
// `--pool-trace <path>` additionally runs one campaign at the default
// thread count with the worker pool's wall-clock trace sink installed
// and writes a Perfetto trace of region/chunk spans with flow arrows
// from each parallel_for region to the workers that ran its chunks.
#include <chrono>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "exec/policy.hpp"
#include "exec/pool_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testbed/campaign.hpp"

using namespace tinysdr;

namespace {

struct Sample {
  double seconds = 0.0;
  std::string metrics_json;
  std::string trace_json;
  std::size_t successes = 0;
};

Sample run_once(const testbed::Deployment& deployment,
                const fpga::FirmwareImage& image, std::size_t threads) {
  Sample sample;
  obs::Tracer tracer;
  obs::Registry registry;
  obs::TraceSession trace_session{tracer};
  obs::MetricsSession metrics_session{registry};

  testbed::FaultScenario bursty;
  bursty.name = "burst-loss";
  bursty.plan.burst = channel::GilbertElliottParams{0.05, 0.30, 0.0, 0.9};
  bursty.policy.max_retries = 200;

  Rng rng{424242};
  auto start = std::chrono::steady_clock::now();
  auto result = testbed::run_fault_campaign(
      deployment, image, ota::UpdateTarget::kMcu, {bursty}, rng,
      exec::ExecPolicy::with_threads(threads));
  auto stop = std::chrono::steady_clock::now();

  sample.seconds = std::chrono::duration<double>(stop - start).count();
  sample.metrics_json = registry.json();
  sample.trace_json = tracer.chrome_json();
  sample.successes = result.baseline.successes;
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run{argc,
                      argv,
                      "Parallel scaling",
                      "exec engine",
                      "Campaign wall-clock speedup vs serial, by fleet size "
                      "and thread count, with byte-identity checks",
                      {"--pool-trace"}};
  std::string pool_trace_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view{argv[i]} == "--pool-trace")
      pool_trace_path = argv[i + 1];
  }

  const std::size_t hw = exec::resolved_threads(0);
  std::cout << "Resolved default thread count: " << hw << "\n";
  run.scalar("resolved_default_threads", static_cast<double>(hw));

  Rng img_rng{7};
  auto image = fpga::generate_mcu_program("mcu_fw", 10 * 1024, img_rng);

  const std::vector<std::size_t> fleet_sizes{64, 256};
  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};

  std::vector<std::vector<double>> rows;
  bool all_identical = true;
  double best_speedup = 0.0;

  for (std::size_t nodes : fleet_sizes) {
    Rng deploy_rng{2024};
    auto deployment =
        testbed::Deployment::campus(deploy_rng, Dbm{14.0}, nodes);

    Sample serial = run_once(deployment, image, 1);
    std::cout << "\n" << nodes << " nodes serial: "
              << TextTable::num(serial.seconds, 3) << " s ("
              << serial.successes << "/" << nodes << " updated)\n";

    for (std::size_t threads : thread_counts) {
      Sample s = threads == 1 ? serial : run_once(deployment, image, threads);
      const bool identical = s.metrics_json == serial.metrics_json &&
                             s.trace_json == serial.trace_json;
      all_identical = all_identical && identical;
      const double speedup = s.seconds > 0.0 ? serial.seconds / s.seconds
                                             : 0.0;
      best_speedup = std::max(best_speedup, speedup);
      rows.push_back({static_cast<double>(threads),
                      static_cast<double>(nodes), s.seconds, speedup,
                      identical ? 1.0 : 0.0});
      const std::string key = "nodes" + std::to_string(nodes) + ".threads" +
                              std::to_string(threads);
      run.scalar(key + ".seconds", s.seconds);
      run.scalar(key + ".speedup", speedup);
      run.scalar(key + ".byte_identical", identical ? 1.0 : 0.0);
    }
  }

  run.series("scaling", "threads",
             {"nodes", "seconds", "speedup", "byte_identical"}, rows, 3);
  run.scalar("best_speedup", best_speedup);
  run.scalar("all_byte_identical", all_identical ? 1.0 : 0.0);

  std::cout << "\nBest speedup over serial: "
            << TextTable::num(best_speedup, 2) << "x; telemetry "
            << (all_identical ? "byte-identical at every grid point."
                              : "DIVERGED — determinism bug!")
            << "\n";

  if (!pool_trace_path.empty()) {
    // One demonstrative run outside the timed grid: the pool sink is
    // wall-clock and mutex-guarded, so it never touches the numbers or
    // the byte-identity verdict above.
    obs::Tracer pool_tracer{std::size_t{1} << 18};
    {
      exec::PoolTraceSession pool_session{pool_tracer};
      Rng deploy_rng{2024};
      auto deployment =
          testbed::Deployment::campus(deploy_rng, Dbm{14.0}, 64);
      run_once(deployment, image, hw);
    }
    std::ofstream out{pool_trace_path};
    if (!out) {
      std::cerr << "cannot write " << pool_trace_path << "\n";
      return 1;
    }
    pool_tracer.write_chrome_json(out);
    out << "\n";
    std::cout << "Wrote pool trace (" << pool_tracer.size()
              << " events) to " << pool_trace_path
              << " (open at ui.perfetto.dev)\n";
  }
  return all_identical ? 0 : 1;
}
