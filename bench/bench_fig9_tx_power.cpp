// Reproduces Fig. 9: whole-platform DC power (I/Q radio + FPGA + MCU +
// regulators) vs transmitter RF output power, for 900 MHz and 2.4 GHz.
#include "bench_common.hpp"
#include "power/platform_power.hpp"

using namespace tinysdr;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, 
      "Fig. 9", "paper Fig. 9",
      "Single-tone transmitter power consumption vs RF output power"};

  power::PlatformPowerModel model;
  std::vector<std::vector<double>> rows;
  for (int dbm = -14; dbm <= 14; dbm += 2) {
    double p900 =
        model.draw(power::Activity::kSingleTone900, Dbm{double(dbm)}).value();
    double p2400 =
        model.draw(power::Activity::kSingleTone2400, Dbm{double(dbm)}).value();
    rows.push_back({double(dbm), p900, p2400});
  }
  run.series("rf_output_dbm", "RF output (dBm)",
                      {"tinySDR 900 MHz (mW)", "tinySDR 2.4 GHz (mW)"}, rows,
                      1);

  double at0 = model.draw(power::Activity::kSingleTone900, Dbm{0.0}).value();
  double at14 = model.draw(power::Activity::kSingleTone900, Dbm{14.0}).value();
  std::cout << "\nAnchors: " << TextTable::num(at0, 0)
            << " mW at 0 dBm (paper: 231), " << TextTable::num(at14, 0)
            << " mW at 14 dBm (paper: 283).\n"
            << "USRP E310 comparison: 16x at 0 dBm -> "
            << TextTable::num(at0 * 16.0 / 1000.0, 2)
            << " W, 15x at 14 dBm -> "
            << TextTable::num(at14 * 15.0 / 1000.0, 2)
            << " W (the paper's measured E310 numbers).\n"
            << "Shape: flat below the 0 dBm knee, then rising linearly in "
               "linear output power — both reproduced.\n";
  return 0;
}
