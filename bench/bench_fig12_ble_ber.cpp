// Reproduces Fig. 12: BLE beacon BER vs RSSI. TinySDR transmits beacons
// (full baseband generation: PDU, CRC24, whitening, GFSK) and the CC2650
// receiver model reports BER, as in the paper's 100-packet measurement.
#include "bench_common.hpp"
#include "ble/cc2650.hpp"
#include "impair/impair.hpp"
#include "phy/ble_phy.hpp"
#include "phy/calibrated_rx.hpp"
#include "phy/link_sim.hpp"

using namespace tinysdr;
using namespace tinysdr::ble;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Fig. 12", "paper Fig. 12",
                      "BLE beacon BER vs RSSI into a CC2650-class receiver"};
  auto policy = bench::thread_policy(argc, argv);
  run.config_threads(policy);

  phy::BleBeaconTx tx;
  phy::BleBeaconRx rx;

  phy::TrialPlan plan;
  plan.trials = 150;
  // An iBeacon-style AdvData payload; the adapter wraps it in the full
  // ADV_NONCONN_IND air frame (preamble, AA, whitened PDU + CRC24).
  plan.fixed_payload = std::vector<std::uint8_t>{
      0x02, 0x01, 0x06, 0x0B, 0xFF, 0x4C, 0x00, 0x02, 0x15, 0xAA, 0xBB};
  plan.noise_figure_db = phy::kBleSystemNf;

  std::vector<double> grid;
  for (double rssi = -100.0; rssi <= -55.0; rssi += 3.0)
    grid.push_back(rssi);

  auto results = phy::LinkSimulator{tx, rx, plan}.sweep_rssi(grid, policy);

  std::vector<std::vector<double>> rows;
  double sensitivity_rssi = 0.0;
  bool found_knee = false;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    double ber = results[i].ber();
    rows.push_back({grid[i], ber});
    if (!found_knee && ber <= 1e-3) {
      sensitivity_rssi = grid[i];
      found_knee = true;
    }
  }
  run.series("ber_vs_rssi", "RSSI (dBm)", {"BER"}, rows, 5);
  run.scalar("sensitivity_dbm", sensitivity_rssi);
  run.scalar("cc2650_sensitivity_dbm", Cc2650Model::kSensitivityDbm);

  // Impairment ablation: the same beacon link under a drifting-crystal
  // front-end (5% CFO + IQ imbalance + DC offset), uncorrected vs
  // calibrated; the calibrated curve must rejoin the clean one.
  {
    phy::RxCalibration cal;  // BLE: lag-1 FM discriminator estimate
    cal.cfo_bias = phy::measure_cfo_bias(tx, cal);
    phy::CalibratedRx cal_rx{rx, cal};
    phy::TrialPlan ap = plan;
    ap.trials = 30;
    ap.base_seed = 12;
    const impair::CfoDrift cfo{0.05};
    const impair::IqImbalance iq{2.0, 10.0};
    const impair::DcOffset dc{{0.5f, -0.3f}};
    auto ablate = [&](const phy::PhyRx& rx_used, bool impaired) {
      phy::LinkSimulator sim{tx, rx_used, ap};
      if (impaired) {
        sim.add_impairment(cfo, impair::Stage::kRx);
        sim.add_impairment(iq, impair::Stage::kRx);
        sim.add_impairment(dc, impair::Stage::kRx);
      }
      return sim.sweep_rssi(grid, policy);
    };
    auto a_clean = ablate(rx, false);
    auto a_imp = ablate(rx, true);
    auto a_cor = ablate(cal_rx, true);
    std::vector<std::vector<double>> arows;
    for (std::size_t i = 0; i < grid.size(); ++i)
      arows.push_back({grid[i], a_clean[i].ber(), a_imp[i].ber(),
                       a_cor[i].ber()});
    run.series("impairment_ablation_ber", "RSSI (dBm)",
               {"clean BER", "impaired BER", "corrected BER"}, arows, 5);
  }

  std::cout << "\nMeasured sensitivity (BER <= 1e-3): "
            << TextTable::num(sensitivity_rssi, 0)
            << " dBm (paper: -94 dBm, within 2 dB of the CC2650's "
            << TextTable::num(Cc2650Model::kSensitivityDbm, 0)
            << " dBm datasheet sensitivity).\n";
  return 0;
}
