// Reproduces Fig. 12: BLE beacon BER vs RSSI. TinySDR transmits beacons
// (full baseband generation: PDU, CRC24, whitening, GFSK) and the CC2650
// receiver model reports BER, as in the paper's 100-packet measurement.
#include "bench_common.hpp"
#include "ble/advertiser.hpp"
#include "ble/cc2650.hpp"

using namespace tinysdr;
using namespace tinysdr::ble;

int main() {
  bench::print_header("Fig. 12", "paper Fig. 12",
                      "BLE beacon BER vs RSSI into a CC2650-class receiver");

  AdvPacket beacon;
  beacon.adv_address = {0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC};
  beacon.adv_data = {0x02, 0x01, 0x06, 0x0B, 0xFF,
                     0x4C, 0x00, 0x02, 0x15, 0xAA, 0xBB};
  Advertiser adv{beacon};
  GfskConfig cfg;
  auto wave = adv.waveform(37);
  auto reference = assemble_air_bits(beacon, 37);
  GfskDemodulator demod{cfg};

  const int packets = 150;
  std::vector<std::vector<double>> rows;
  double sensitivity_rssi = 0.0;
  bool found_knee = false;
  for (double rssi = -100.0; rssi <= -55.0; rssi += 3.0) {
    Rng rng{static_cast<std::uint64_t>(-rssi)};
    double errors = 0.0, bits_total = 0.0;
    for (int k = 0; k < packets; ++k) {
      channel::AwgnChannel chan{cfg.sample_rate(), bench::kBleSystemNf,
                                Rng{rng.next_u32(),
                                    static_cast<std::uint64_t>(k)}};
      auto noisy = chan.apply(wave, Dbm{rssi});
      auto bits = demod.demodulate(noisy, demod.estimate_timing(noisy));
      errors += aligned_ber(reference, bits) *
                static_cast<double>(reference.size());
      bits_total += static_cast<double>(reference.size());
    }
    double ber = errors / bits_total;
    rows.push_back({rssi, ber});
    if (!found_knee && ber <= 1e-3) {
      sensitivity_rssi = rssi;
      found_knee = true;
    }
  }
  bench::print_series("RSSI (dBm)", {"BER"}, rows, 5);

  std::cout << "\nMeasured sensitivity (BER <= 1e-3): "
            << TextTable::num(sensitivity_rssi, 0)
            << " dBm (paper: -94 dBm, within 2 dB of the CC2650's "
            << TextTable::num(Cc2650Model::kSensitivityDbm, 0)
            << " dBm datasheet sensitivity).\n";
  return 0;
}
