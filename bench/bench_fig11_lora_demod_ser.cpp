// Reproduces Fig. 11: LoRa demodulator evaluation — chirp symbol error rate
// vs RSSI for SF8 at BW 250/125 kHz. Random chirp symbols are recorded and
// run through the demodulator, exactly the paper's method ("the Semtech
// LoRa transceiver does not give access to symbol error rate but since we
// have access to I/Q samples, we can compute it on our platform").
#include "bench_common.hpp"
#include "core/concurrent.hpp"

using namespace tinysdr;
using namespace tinysdr::lora;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Fig. 11", "paper Fig. 11",
                      "LoRa demodulator chirp symbol error rate vs RSSI, "
                      "SF8, BW 250/125 kHz"};

  LoraParams p125{8, Hertz::from_kilohertz(125.0)};
  LoraParams p250{8, Hertz::from_kilohertz(250.0)};
  const std::size_t symbols = 600;

  std::vector<std::vector<double>> rows;
  for (double rssi = -134.0; rssi <= -114.0; rssi += 2.0) {
    Rng rng125{101}, rng250{202};
    double ser125 = core::run_single_trial(p125, Dbm{rssi}, symbols,
                                           p125.bandwidth, rng125,
                                           bench::kLoraSystemNf) * 100.0;
    double ser250 = core::run_single_trial(p250, Dbm{rssi}, symbols,
                                           p250.bandwidth, rng250,
                                           bench::kLoraSystemNf) * 100.0;
    rows.push_back({rssi, ser250, ser125});
  }
  run.series("ser_vs_rssi", "RSSI (dBm)",
             {"SF8/BW250 SER (%)", "SF8/BW125 SER (%)"}, rows, 2);
  run.scalar(
      "sensitivity_bw125_dbm",
      sx1276_sensitivity(8, Hertz::from_kilohertz(125.0)).value());
  run.scalar(
      "sensitivity_bw250_dbm",
      sx1276_sensitivity(8, Hertz::from_kilohertz(250.0)).value());

  std::cout
      << "\nReference lines (paper): SF8/BW125 sensitivity "
      << TextTable::num(
             sx1276_sensitivity(8, Hertz::from_kilohertz(125.0)).value(), 0)
      << " dBm, SF8/BW250 "
      << TextTable::num(
             sx1276_sensitivity(8, Hertz::from_kilohertz(250.0)).value(), 0)
      << " dBm.\nShape: both waterfalls hit their sensitivity lines, "
         "BW250 ~3 dB before BW125 (half the despreading time, double the "
         "noise bandwidth).\n";
  return 0;
}
