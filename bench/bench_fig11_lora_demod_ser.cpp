// Reproduces Fig. 11: LoRa demodulator evaluation — chirp symbol error rate
// vs RSSI for SF8 at BW 250/125 kHz. Random chirp symbols are recorded and
// run through the demodulator, exactly the paper's method ("the Semtech
// LoRa transceiver does not give access to symbol error rate but since we
// have access to I/Q samples, we can compute it on our platform").
#include "bench_common.hpp"
#include "impair/impair.hpp"
#include "lora/sx1276.hpp"
#include "phy/calibrated_rx.hpp"
#include "phy/link_sim.hpp"
#include "phy/lora_phy.hpp"

using namespace tinysdr;
using namespace tinysdr::lora;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Fig. 11", "paper Fig. 11",
                      "LoRa demodulator chirp symbol error rate vs RSSI, "
                      "SF8, BW 250/125 kHz"};
  auto policy = bench::thread_policy(argc, argv);
  run.config_threads(policy);

  phy::LoraPhyConfig cfg125{.params = {8, Hertz::from_kilohertz(125.0)}};
  phy::LoraPhyConfig cfg250{.params = {8, Hertz::from_kilohertz(250.0)}};

  // 4 trials x 150 payload bytes = 600 chirp symbols per sweep point.
  phy::TrialPlan plan;
  plan.trials = 4;
  plan.payload_bytes = 150;
  plan.noise_figure_db = phy::kLoraSystemNf;

  std::vector<double> grid;
  for (double rssi = -134.0; rssi <= -114.0; rssi += 2.0)
    grid.push_back(rssi);

  auto sweep = [&](const phy::LoraPhyConfig& cfg, std::uint64_t seed) {
    phy::LoraSymbolTx tx{cfg};
    phy::LoraSymbolRx rx{cfg};
    phy::TrialPlan p = plan;
    p.base_seed = seed;
    return phy::LinkSimulator{tx, rx, p}.sweep_rssi(grid, policy);
  };
  auto r125 = sweep(cfg125, 101);
  auto r250 = sweep(cfg250, 202);

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < grid.size(); ++i)
    rows.push_back({grid[i], r250[i].ser() * 100.0, r125[i].ser() * 100.0});
  run.series("ser_vs_rssi", "RSSI (dBm)",
             {"SF8/BW250 SER (%)", "SF8/BW125 SER (%)"}, rows, 2);
  run.scalar(
      "sensitivity_bw125_dbm",
      sx1276_sensitivity(8, Hertz::from_kilohertz(125.0)).value());
  run.scalar(
      "sensitivity_bw250_dbm",
      sx1276_sensitivity(8, Hertz::from_kilohertz(250.0)).value());

  // Impairment ablation on the BW125 demodulator: symbol error rate under
  // an IQ-imbalanced, DC-offset front-end, uncorrected vs calibrated.
  // (No CFO leg here: the symbol-level stream is random chirps with no
  // repeated preamble, so there is nothing data-free for a blind CFO
  // estimate to lock onto — packet-level CFO calibration is fig10's and
  // bench_impairments' job.)
  {
    phy::LoraSymbolTx atx{cfg125};
    phy::LoraSymbolRx arx{cfg125};
    phy::RxCalibration cal;
    cal.cfo_correct = false;  // DC notch + IQ correction only
    phy::CalibratedRx cal_rx{arx, cal};
    phy::TrialPlan ap = plan;
    ap.trials = 2;
    ap.base_seed = 303;
    const impair::IqImbalance iq{2.0, 10.0};
    const impair::DcOffset dc{{1.0f, 0.5f}};
    auto ablate = [&](const phy::PhyRx& rx_used, bool impaired) {
      phy::LinkSimulator sim{atx, rx_used, ap};
      if (impaired) {
        sim.add_impairment(iq, impair::Stage::kRx);
        sim.add_impairment(dc, impair::Stage::kRx);
      }
      return sim.sweep_rssi(grid, policy);
    };
    auto a_clean = ablate(arx, false);
    auto a_imp = ablate(arx, true);
    auto a_cor = ablate(cal_rx, true);
    std::vector<std::vector<double>> arows;
    for (std::size_t i = 0; i < grid.size(); ++i)
      arows.push_back({grid[i], a_clean[i].ser() * 100.0,
                       a_imp[i].ser() * 100.0, a_cor[i].ser() * 100.0});
    run.series("impairment_ablation_ser", "RSSI (dBm)",
               {"clean SER(%)", "impaired SER(%)", "corrected SER(%)"},
               arows, 2);
  }

  std::cout
      << "\nReference lines (paper): SF8/BW125 sensitivity "
      << TextTable::num(
             sx1276_sensitivity(8, Hertz::from_kilohertz(125.0)).value(), 0)
      << " dBm, SF8/BW250 "
      << TextTable::num(
             sx1276_sensitivity(8, Hertz::from_kilohertz(250.0)).value(), 0)
      << " dBm.\nShape: both waterfalls hit their sensitivity lines, "
         "BW250 ~3 dB before BW125 (half the despreading time, double the "
         "noise bandwidth).\n";
  return 0;
}
