// Micro-benchmarks (google-benchmark) for the hot DSP and codec paths,
// with the real-time claims they back:
//   - the LoRa demodulator must keep up with 4 MHz I/Q ("both the LoRa
//     modulator and demodulator run in real-time", §5.2)
//   - miniLZO-class decompression must finish a full image in <= 450 ms
//     (§5.3) at the modeled MCU throughput.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "lora/chirp.hpp"
#include "lora/demodulator.hpp"
#include "lora/modulator.hpp"
#include "ota/lzo.hpp"

using namespace tinysdr;

static void BM_FftForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::FftPlan plan{n};
  Rng rng{1};
  dsp::Samples x(n);
  for (auto& v : x)
    v = dsp::Complex{static_cast<float>(rng.next_gaussian()),
                     static_cast<float>(rng.next_gaussian())};
  for (auto _ : state) {
    dsp::Samples copy = x;
    plan.forward(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FftForward)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

static void BM_Fir14Tap(benchmark::State& state) {
  dsp::FirFilter fir{dsp::design_lowpass(14, 0.125)};
  Rng rng{2};
  dsp::Samples block(4096);
  for (auto& v : block)
    v = dsp::Complex{static_cast<float>(rng.next_gaussian()), 0.0f};
  for (auto _ : state) {
    auto out = fir.filter(block);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Fir14Tap);

static void BM_ChirpGenerate(benchmark::State& state) {
  lora::LoraParams p{static_cast<int>(state.range(0)),
                     Hertz::from_kilohertz(125.0)};
  lora::ChirpGenerator gen{p, p.bandwidth};
  std::uint32_t value = 0;
  for (auto _ : state) {
    auto sym = gen.symbol(value++ & (p.chips() - 1),
                          lora::ChirpDirection::kUp);
    benchmark::DoNotOptimize(sym.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(p.chips()));
}
BENCHMARK(BM_ChirpGenerate)->Arg(8)->Arg(12);

static void BM_LoraSymbolDemod(benchmark::State& state) {
  // Real-time requirement: one symbol (2^SF samples at the bandwidth rate)
  // must demodulate faster than its airtime.
  lora::LoraParams p{static_cast<int>(state.range(0)),
                     Hertz::from_kilohertz(125.0)};
  lora::Demodulator demod{p, p.bandwidth};
  lora::ChirpGenerator gen{p, p.bandwidth};
  auto sym = gen.symbol(p.chips() / 3, lora::ChirpDirection::kUp);
  for (auto _ : state) {
    auto v = demod.demodulate_symbol(sym);
    benchmark::DoNotOptimize(v);
  }
  // items/s >= BW / 2^SF means real time.
  state.SetItemsProcessed(state.iterations());
  state.counters["required_sym_per_s"] =
      p.bandwidth.value() / static_cast<double>(p.chips());
}
BENCHMARK(BM_LoraSymbolDemod)->Arg(7)->Arg(8)->Arg(10)->Arg(12);

static void BM_LoraPacketModulate(benchmark::State& state) {
  lora::LoraParams p{8, Hertz::from_kilohertz(125.0)};
  lora::Modulator mod{p, p.bandwidth};
  std::vector<std::uint8_t> payload(20, 0xA5);
  for (auto _ : state) {
    auto wave = mod.modulate(payload);
    benchmark::DoNotOptimize(wave.data());
  }
}
BENCHMARK(BM_LoraPacketModulate);

static void BM_LzoCompressBitstreamLike(benchmark::State& state) {
  Rng rng{3};
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  // Bitstream-like: 15% random, rest zeros.
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = (i % 7 == 0) ? rng.next_byte() : 0;
  for (auto _ : state) {
    auto out = ota::lzo_compress(data);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LzoCompressBitstreamLike)->Arg(30 * 1024)->Arg(579 * 1024);

static void BM_LzoDecompress(benchmark::State& state) {
  Rng rng{4};
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = (i % 7 == 0) ? rng.next_byte() : 0;
  auto compressed = ota::lzo_compress(data);
  for (auto _ : state) {
    auto out = ota::lzo_decompress(compressed, data.size());
    benchmark::DoNotOptimize(out->data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LzoDecompress)->Arg(30 * 1024)->Arg(579 * 1024);

// Same machine-readable interface as the table/figure benches: `--json
// <path>` (or TINYSDR_BENCH_JSON) maps onto google-benchmark's native
// JSON reporter.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--json" && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  if (json_path.empty()) {
    if (const char* env = std::getenv("TINYSDR_BENCH_JSON");
        env != nullptr && *env != '\0')
      json_path = env;
  }
  std::string out_flag;
  std::string format_flag{"--benchmark_out_format=json"};
  if (!json_path.empty()) {
    out_flag = "--benchmark_out=" + json_path;
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
