// Micro-benchmarks (google-benchmark) for the hot DSP and codec paths,
// with the real-time claims they back:
//   - the LoRa demodulator must keep up with 4 MHz I/Q ("both the LoRa
//     modulator and demodulator run in real-time", §5.2)
//   - miniLZO-class decompression must finish a full image in <= 450 ms
//     (§5.3) at the modeled MCU throughput.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "lora/chirp.hpp"
#include "lora/demodulator.hpp"
#include "lora/modulator.hpp"
#include "ota/lzo.hpp"

using namespace tinysdr;

static void BM_FftForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dsp::FftPlan plan{n};
  Rng rng{1};
  dsp::Samples x(n);
  for (auto& v : x)
    v = dsp::Complex{static_cast<float>(rng.next_gaussian()),
                     static_cast<float>(rng.next_gaussian())};
  for (auto _ : state) {
    dsp::Samples copy = x;
    plan.forward(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FftForward)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

static void BM_Fir14Tap(benchmark::State& state) {
  dsp::FirFilter fir{dsp::design_lowpass(14, 0.125)};
  Rng rng{2};
  dsp::Samples block(4096);
  for (auto& v : block)
    v = dsp::Complex{static_cast<float>(rng.next_gaussian()), 0.0f};
  for (auto _ : state) {
    auto out = fir.filter(block);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Fir14Tap);

static void BM_ChirpGenerate(benchmark::State& state) {
  lora::LoraParams p{static_cast<int>(state.range(0)),
                     Hertz::from_kilohertz(125.0)};
  lora::ChirpGenerator gen{p, p.bandwidth};
  std::uint32_t value = 0;
  for (auto _ : state) {
    auto sym = gen.symbol(value++ & (p.chips() - 1),
                          lora::ChirpDirection::kUp);
    benchmark::DoNotOptimize(sym.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(p.chips()));
}
BENCHMARK(BM_ChirpGenerate)->Arg(8)->Arg(12);

static void BM_LoraSymbolDemod(benchmark::State& state) {
  // Real-time requirement: one symbol (2^SF samples at the bandwidth rate)
  // must demodulate faster than its airtime.
  lora::LoraParams p{static_cast<int>(state.range(0)),
                     Hertz::from_kilohertz(125.0)};
  lora::Demodulator demod{p, p.bandwidth};
  lora::ChirpGenerator gen{p, p.bandwidth};
  auto sym = gen.symbol(p.chips() / 3, lora::ChirpDirection::kUp);
  for (auto _ : state) {
    auto v = demod.demodulate_symbol(sym);
    benchmark::DoNotOptimize(v);
  }
  // items/s >= BW / 2^SF means real time.
  state.SetItemsProcessed(state.iterations());
  state.counters["required_sym_per_s"] =
      p.bandwidth.value() / static_cast<double>(p.chips());
}
BENCHMARK(BM_LoraSymbolDemod)->Arg(7)->Arg(8)->Arg(10)->Arg(12);

static void BM_LoraPacketModulate(benchmark::State& state) {
  lora::LoraParams p{8, Hertz::from_kilohertz(125.0)};
  lora::Modulator mod{p, p.bandwidth};
  std::vector<std::uint8_t> payload(20, 0xA5);
  for (auto _ : state) {
    auto wave = mod.modulate(payload);
    benchmark::DoNotOptimize(wave.data());
  }
}
BENCHMARK(BM_LoraPacketModulate);

static void BM_LzoCompressBitstreamLike(benchmark::State& state) {
  Rng rng{3};
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  // Bitstream-like: 15% random, rest zeros.
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = (i % 7 == 0) ? rng.next_byte() : 0;
  for (auto _ : state) {
    auto out = ota::lzo_compress(data);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LzoCompressBitstreamLike)->Arg(30 * 1024)->Arg(579 * 1024);

static void BM_LzoDecompress(benchmark::State& state) {
  Rng rng{4};
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = (i % 7 == 0) ? rng.next_byte() : 0;
  auto compressed = ota::lzo_compress(data);
  for (auto _ : state) {
    auto out = ota::lzo_decompress(compressed, data.size());
    benchmark::DoNotOptimize(out->data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LzoDecompress)->Arg(30 * 1024)->Arg(579 * 1024);

namespace {

/// Console output stays google-benchmark's; this reporter additionally
/// funnels every per-iteration run into a flat scalar map —
///   <name>.real_ns_per_iter, <name>.cpu_ns_per_iter, <name>.<counter>
/// — so the bench emits the same `tinysdr-bench-v1` document as every
/// table/figure bench and the perf gate can diff it against a baseline.
/// Aggregate rows (mean/median/stddev under --benchmark_repetitions) are
/// skipped; repeated runs of one benchmark merge noise-aware: min for
/// times, max for rates.
class TinysdrReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      const std::string name = r.benchmark_name();
      const double iters =
          r.iterations > 0 ? static_cast<double>(r.iterations) : 1.0;
      record_min(name + ".real_ns_per_iter",
                 r.real_accumulated_time / iters * 1e9);
      record_min(name + ".cpu_ns_per_iter",
                 r.cpu_accumulated_time / iters * 1e9);
      for (const auto& [counter, value] : r.counters) {
        // Rate counters (items/bytes per second) are already finalized;
        // a higher rate is the cleaner measurement.
        if (counter.find("per_second") != std::string::npos ||
            counter.find("per_s") != std::string::npos)
          record_max(name + "." + counter, value);
        else
          record_min(name + "." + counter, value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::map<std::string, double>& scalars() const {
    return scalars_;
  }

 private:
  void record_min(const std::string& key, double value) {
    auto [it, inserted] = scalars_.emplace(key, value);
    if (!inserted && value < it->second) it->second = value;
  }
  void record_max(const std::string& key, double value) {
    auto [it, inserted] = scalars_.emplace(key, value);
    if (!inserted && value > it->second) it->second = value;
  }

  std::map<std::string, double> scalars_;
};

}  // namespace

// Same machine-readable interface as the table/figure benches: `--json
// <path>` (or TINYSDR_BENCH_JSON) writes a tinysdr-bench-v1 document.
// google-benchmark consumes its own --benchmark_* flags first; whatever
// remains must satisfy the strict shared bench interface, so unknown
// flags still exit non-zero with a usage message.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bench::BenchRun run{argc, argv, "Micro DSP", "paper §5.2-5.3",
                      "google-benchmark micro-benchmarks for the hot DSP "
                      "and codec paths"};
  TinysdrReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  for (const auto& [name, value] : reporter.scalars())
    run.scalar(name, value);
  return 0;
}
