// Reproduces Fig. 15a: concurrent orthogonal LoRa demodulation with both
// transmissions at the same received power — SER vs RSSI for SF8/BW125 and
// SF8/BW250 decoded simultaneously, with the single-transmission curves for
// the concurrency penalty.
#include "bench_common.hpp"
#include "bench_fig15_common.hpp"
#include "core/concurrent.hpp"

using namespace tinysdr;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Fig. 15a", "paper Fig. 15a",
                      "Concurrent orthogonal LoRa, equal received power: "
                      "SER vs RSSI"};
  auto policy = bench::thread_policy(argc, argv);
  run.config_threads(policy);

  bench::Fig15Setup rig;
  phy::TrialPlan plan = rig.plan();

  std::vector<double> grid;
  std::vector<phy::SweepPoint> equal_power;
  for (double rssi = -130.0; rssi <= -108.0; rssi += 2.0) {
    grid.push_back(rssi);
    equal_power.push_back({Dbm{rssi}, Dbm{rssi}});
  }

  auto concurrent = [&](const phy::PhyTx& tx, const phy::PhyRx& rx,
                        const phy::PhyTx& other, std::uint64_t seed) {
    phy::TrialPlan p = plan;
    p.base_seed = seed;
    phy::LinkSimulator sim{tx, rx, p};
    sim.set_interferer(other);
    return sim.sweep(equal_power, policy);
  };
  auto single = [&](const phy::PhyTx& tx, const phy::PhyRx& rx,
                    std::uint64_t seed) {
    phy::TrialPlan p = plan;
    p.base_seed = seed;
    return phy::LinkSimulator{tx, rx, p}.sweep_rssi(grid, policy);
  };
  auto conc125 = concurrent(rig.tx125, rig.rx125, rig.tx250, 55);
  auto conc250 = concurrent(rig.tx250, rig.rx250, rig.tx125, 56);
  auto single125 = single(rig.tx125, rig.rx125, 57);
  auto single250 = single(rig.tx250, rig.rx250, 58);

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < grid.size(); ++i)
    rows.push_back({grid[i], conc125[i].ser() * 100.0,
                    conc250[i].ser() * 100.0, single125[i].ser() * 100.0,
                    single250[i].ser() * 100.0});
  run.series(
      "ser_vs_rssi", "RSSI (dBm)",
      {"conc BW125 SER(%)", "conc BW250 SER(%)", "single BW125 SER(%)",
       "single BW250 SER(%)"},
      rows, 2);

  core::ConcurrentReceiver receiver{{rig.cfg125.params, rig.cfg250.params},
                                    rig.fs};
  run.scalar("receiver_luts", static_cast<double>(receiver.design().total_luts()));
  run.scalar("platform_power_mw", receiver.platform_power().value());

  std::cout
      << "\nShape (paper): ~2 dB sensitivity loss for BW125 and ~0.5 dB for "
         "BW250 under concurrency — the chirps are orthogonal in theory but "
         "discrete frequency steps leave residual cross-energy.\n"
      << "Concurrent receiver: " << receiver.design().total_luts()
      << " LUTs, platform power "
      << TextTable::num(receiver.platform_power().value(), 0)
      << " mW (paper: 17% of fabric, 207 mW).\n";
  return 0;
}
