// Reproduces Fig. 15a: concurrent orthogonal LoRa demodulation with both
// transmissions at the same received power — SER vs RSSI for SF8/BW125 and
// SF8/BW250 decoded simultaneously, with the single-transmission curves for
// the concurrency penalty.
#include "bench_common.hpp"
#include "core/concurrent.hpp"

using namespace tinysdr;
using namespace tinysdr::lora;

int main() {
  bench::print_header(
      "Fig. 15a", "paper Fig. 15a",
      "Concurrent orthogonal LoRa, equal received power: SER vs RSSI");

  LoraParams p125{8, Hertz::from_kilohertz(125.0)};
  LoraParams p250{8, Hertz::from_kilohertz(250.0)};
  Hertz fs = Hertz::from_kilohertz(500.0);
  const std::size_t symbols = 250;

  std::vector<std::vector<double>> rows;
  for (double rssi = -130.0; rssi <= -108.0; rssi += 2.0) {
    Rng rng{55};
    auto conc = core::run_concurrent_trial(p125, p250, Dbm{rssi}, Dbm{rssi},
                                           symbols, fs, rng,
                                           bench::kLoraSystemNf);
    Rng rng125{56}, rng250{57};
    double single125 =
        core::run_single_trial(p125, Dbm{rssi}, symbols, fs, rng125,
                               bench::kLoraSystemNf);
    double single250 =
        core::run_single_trial(p250, Dbm{rssi}, symbols, fs, rng250,
                               bench::kLoraSystemNf);
    rows.push_back({rssi, conc.ser_a * 100.0, conc.ser_b * 100.0,
                    single125 * 100.0, single250 * 100.0});
  }
  bench::print_series(
      "RSSI (dBm)",
      {"conc BW125 SER(%)", "conc BW250 SER(%)", "single BW125 SER(%)",
       "single BW250 SER(%)"},
      rows, 2);

  std::cout
      << "\nShape (paper): ~2 dB sensitivity loss for BW125 and ~0.5 dB for "
         "BW250 under concurrency — the chirps are orthogonal in theory but "
         "discrete frequency steps leave residual cross-energy.\n"
      << "Concurrent receiver: "
      << core::ConcurrentReceiver{{p125, p250}, fs}.design().total_luts()
      << " LUTs, platform power "
      << TextTable::num(
             core::ConcurrentReceiver{{p125, p250}, fs}.platform_power()
                 .value(),
             0)
      << " mW (paper: 17% of fabric, 207 mW).\n";
  return 0;
}
