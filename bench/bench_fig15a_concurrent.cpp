// Reproduces Fig. 15a: concurrent orthogonal LoRa demodulation with both
// transmissions at the same received power — SER vs RSSI for SF8/BW125 and
// SF8/BW250 decoded simultaneously, with the single-transmission curves for
// the concurrency penalty.
#include "bench_common.hpp"
#include "core/concurrent.hpp"
#include "phy/link_sim.hpp"
#include "phy/lora_phy.hpp"

using namespace tinysdr;
using namespace tinysdr::lora;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Fig. 15a", "paper Fig. 15a",
                      "Concurrent orthogonal LoRa, equal received power: "
                      "SER vs RSSI"};
  auto policy = bench::thread_policy(argc, argv);

  LoraParams p125{8, Hertz::from_kilohertz(125.0)};
  LoraParams p250{8, Hertz::from_kilohertz(250.0)};
  Hertz fs = Hertz::from_kilohertz(500.0);
  phy::LoraPhyConfig cfg125{.params = p125, .sample_rate = fs};
  phy::LoraPhyConfig cfg250{.params = p250, .sample_rate = fs};

  phy::LoraSymbolTx tx125{cfg125}, tx250{cfg250};
  phy::LoraSymbolRx rx125{cfg125}, rx250{cfg250};

  // 2 trials x 125 payload bytes = 250 chirp symbols per sweep point.
  phy::TrialPlan plan;
  plan.trials = 2;
  plan.payload_bytes = 125;
  plan.noise_figure_db = phy::kLoraSystemNf;

  std::vector<double> grid;
  std::vector<phy::SweepPoint> equal_power;
  for (double rssi = -130.0; rssi <= -108.0; rssi += 2.0) {
    grid.push_back(rssi);
    equal_power.push_back({Dbm{rssi}, Dbm{rssi}});
  }

  auto concurrent = [&](const phy::PhyTx& tx, const phy::PhyRx& rx,
                        const phy::PhyTx& other, std::uint64_t seed) {
    phy::TrialPlan p = plan;
    p.base_seed = seed;
    phy::LinkSimulator sim{tx, rx, p};
    sim.set_interferer(other);
    return sim.sweep(equal_power, policy);
  };
  auto single = [&](const phy::PhyTx& tx, const phy::PhyRx& rx,
                    std::uint64_t seed) {
    phy::TrialPlan p = plan;
    p.base_seed = seed;
    return phy::LinkSimulator{tx, rx, p}.sweep_rssi(grid, policy);
  };
  auto conc125 = concurrent(tx125, rx125, tx250, 55);
  auto conc250 = concurrent(tx250, rx250, tx125, 56);
  auto single125 = single(tx125, rx125, 57);
  auto single250 = single(tx250, rx250, 58);

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < grid.size(); ++i)
    rows.push_back({grid[i], conc125[i].ser() * 100.0,
                    conc250[i].ser() * 100.0, single125[i].ser() * 100.0,
                    single250[i].ser() * 100.0});
  run.series(
      "ser_vs_rssi", "RSSI (dBm)",
      {"conc BW125 SER(%)", "conc BW250 SER(%)", "single BW125 SER(%)",
       "single BW250 SER(%)"},
      rows, 2);

  core::ConcurrentReceiver receiver{{p125, p250}, fs};
  run.scalar("receiver_luts", static_cast<double>(receiver.design().total_luts()));
  run.scalar("platform_power_mw", receiver.platform_power().value());

  std::cout
      << "\nShape (paper): ~2 dB sensitivity loss for BW125 and ~0.5 dB for "
         "BW250 under concurrency — the chirps are orthogonal in theory but "
         "discrete frequency steps leave residual cross-energy.\n"
      << "Concurrent receiver: " << receiver.design().total_luts()
      << " LUTs, platform power "
      << TextTable::num(receiver.platform_power().value(), 0)
      << " mW (paper: 17% of fabric, 207 mW).\n";
  return 0;
}
