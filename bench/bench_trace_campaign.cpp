// End-to-end telemetry demo: run a multi-node OTA fault campaign with the
// tracer and metrics registry installed, then export
//   - a Chrome/Perfetto trace (load at https://ui.perfetto.dev): one track
//     per node, transfer/associate/sack-poll/backoff spans, packet-loss
//     and fault instants, and the node-energy counter, plus
//   - a metrics snapshot (tinysdr-metrics-v1 JSON) of every counter and
//     histogram the run touched, plus
//   - a flight-recorder dump (tinysdr-flight-v1 JSON): the structured
//     post-mortem log of every fault, reboot, resume and failure, dumped
//     automatically by the campaign engine because the scenarios inject
//     faults.
//
// Flags: --trace <path> (default tinysdr_trace.json), --metrics <path>
// (default tinysdr_metrics.json), --flight <path> (default
// tinysdr_flight.json), and the standard --json <path> for the bench's
// own headline numbers.
#include <fstream>
#include <string_view>

#include "bench_common.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testbed/campaign.hpp"

using namespace tinysdr;

int main(int argc, char** argv) {
  bench::BenchRun run{argc,
                      argv,
                      "Trace campaign",
                      "telemetry demo",
                      "Perfetto trace + metrics snapshot + flight recorder "
                      "of a 6-node OTA fault campaign",
                      {"--trace", "--metrics", "--flight"}};
  std::string trace_path{"tinysdr_trace.json"};
  std::string metrics_path{"tinysdr_metrics.json"};
  std::string flight_path{"tinysdr_flight.json"};
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view{argv[i]} == "--trace") trace_path = argv[i + 1];
    if (std::string_view{argv[i]} == "--metrics") metrics_path = argv[i + 1];
    if (std::string_view{argv[i]} == "--flight") flight_path = argv[i + 1];
  }

  obs::Tracer tracer{std::size_t{1} << 18};
  obs::Registry registry;
  obs::FlightRecorder flight;
  flight.set_dump_path(flight_path);
  obs::TraceSession trace_session{tracer};
  obs::MetricsSession metrics_session{registry};
  obs::FlightSession flight_session{flight};

  // A small fleet and a small image keep the run fast while still crossing
  // every instrumented layer: protocol, link, flash, faults, power.
  Rng deploy_rng{2024};
  auto deployment = testbed::Deployment::campus(deploy_rng, Dbm{14.0}, 6);
  deployment.export_metrics(registry);
  Rng img_rng{7};
  auto image = fpga::generate_mcu_program("mcu_fw", 24 * 1024, img_rng);

  std::vector<testbed::FaultScenario> scenarios;
  {
    testbed::FaultScenario s;
    s.name = "burst-loss";
    s.plan.burst = channel::GilbertElliottParams{0.05, 0.30, 0.0, 0.9};
    s.policy.max_retries = 200;
    scenarios.push_back(s);
  }
  {
    testbed::FaultScenario s;
    // Partway through the *compressed* stream (a 24 kB MCU program
    // compresses to a few kB), so the brownout actually fires mid-transfer
    // and the trace shows reboot -> boot -> session-resume.
    s.name = "brownout@2kB";
    s.plan.brownout_at_byte = 2 * 1024;
    scenarios.push_back(s);
  }
  {
    testbed::FaultScenario s;
    s.name = "corrupt-2%";
    s.plan.corrupt_rate = 0.02;
    s.plan.duplicate_rate = 0.01;
    scenarios.push_back(s);
  }

  Rng campaign_rng{99};
  auto result = testbed::run_fault_campaign(
      deployment, image, ota::UpdateTarget::kMcu, scenarios, campaign_rng);

  std::cout << "Scenarios (6 nodes each):\n";
  TextTable table{{"scenario", "success", "reboots", "resumes", "retx"}};
  auto add = [&](const testbed::FaultCampaignEntry& e) {
    table.add_row({e.name,
                   TextTable::num(static_cast<double>(e.successes), 0) + "/" +
                       TextTable::num(static_cast<double>(e.nodes), 0),
                   TextTable::num(static_cast<double>(e.total_reboots), 0),
                   TextTable::num(static_cast<double>(e.total_resumes), 0),
                   TextTable::num(
                       static_cast<double>(e.total_retransmissions), 0)});
  };
  add(result.baseline);
  for (const auto& s : result.scenarios) add(s);
  table.print(std::cout);

  const char* categories[] = {"ota", "radio", "power", "faults", "testbed"};
  std::cout << "\nTrace: " << tracer.size() << " events ("
            << tracer.dropped() << " dropped)";
  for (const char* cat : categories) {
    std::cout << ", " << cat << "=" << tracer.count_category(cat);
    run.scalar(std::string("trace.events.") + cat,
               static_cast<double>(tracer.count_category(cat)));
  }
  std::cout << "\n";
  run.scalar("trace.events.total", static_cast<double>(tracer.size()));
  run.scalar("trace.events.dropped", static_cast<double>(tracer.dropped()));
  run.scalar("baseline.successes",
             static_cast<double>(result.baseline.successes));
  run.scalar("flight.records", static_cast<double>(flight.size()));
  run.scalar("flight.warn_or_worse",
             static_cast<double>(
                 flight.count_at_least(obs::FlightLevel::kWarn)));
  std::cout << "Flight recorder: " << flight.size() << " records ("
            << flight.count_at_least(obs::FlightLevel::kWarn)
            << " warn+), dumped to " << flight_path << "\n";

  {
    std::ofstream out{trace_path};
    if (!out) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
    tracer.write_chrome_json(out);
    out << "\n";
  }
  {
    std::ofstream out{metrics_path};
    if (!out) {
      std::cerr << "cannot write " << metrics_path << "\n";
      return 1;
    }
    registry.write_json(out);
    out << "\n";
  }
  std::cout << "Wrote " << trace_path << " (open at ui.perfetto.dev) and "
            << metrics_path << ".\n";
  return 0;
}
