// Protocol coverage demonstration: Table 1 claims tinySDR's 4 MHz / dual
// band front end covers "most IoT protocols including Bluetooth, Zigbee,
// LoRa, Sigfox, NB-IoT and LTE-M". This bench runs an actual packet
// through each implemented PHY end to end and prints the comparative
// numbers the introduction quotes (bandwidths from 200 Hz to 2 MHz).
#include "bench_common.hpp"
#include "ble/advertiser.hpp"
#include "ble/cc2650.hpp"
#include "channel/noise.hpp"
#include "lora/demodulator.hpp"
#include "lora/airtime.hpp"
#include "lora/modulator.hpp"
#include "nbiot/uplink.hpp"
#include "radio/builtin_modem.hpp"
#include "sigfox/unb.hpp"
#include "zigbee/oqpsk.hpp"

using namespace tinysdr;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Protocol coverage", "paper Table 1 / §1",
                      "One payload through every implemented IoT PHY"};

  const std::vector<std::uint8_t> payload{0x54, 0x69, 0x6E, 0x79};  // "Tiny"
  TextTable table{{"Protocol", "Band", "Bandwidth", "Bit rate",
                   "Airtime (4 B)", "Loopback"}};

  // LoRa SF8/BW125.
  {
    lora::LoraParams p{8, Hertz::from_kilohertz(125.0)};
    lora::Modulator mod{p, p.bandwidth};
    lora::Demodulator demod{p, p.bandwidth};
    auto wave = mod.modulate(payload);
    dsp::Samples padded(300, dsp::Complex{0, 0});
    padded.insert(padded.end(), wave.begin(), wave.end());
    padded.insert(padded.end(), 300, dsp::Complex{0, 0});
    auto rx = demod.receive(padded);
    bool ok = rx && rx->packet.crc_valid && rx->packet.payload == payload;
    table.add_row({"LoRa (CSS, SF8)", "915 MHz", "125 kHz",
                   TextTable::num(p.coded_rate_bps() / 1000.0, 2) + " kbps",
                   TextTable::num(
                       lora::time_on_air(p, payload.size()).milliseconds(),
                       1) + " ms",
                   ok ? "ok" : "FAIL"});
  }

  // BLE beacon.
  {
    ble::AdvPacket beacon;
    beacon.adv_address = {1, 2, 3, 4, 5, 6};
    beacon.adv_data = payload;
    ble::Advertiser adv{beacon};
    auto wave = adv.waveform(37);
    auto bits = ble::assemble_air_bits(beacon, 37);
    ble::GfskDemodulator demod{ble::GfskConfig{}};
    auto rx_bits = demod.demodulate(wave, demod.estimate_timing(wave));
    auto parsed = ble::parse_air_bits(rx_bits, 37);
    bool ok = parsed && parsed->packet.adv_data == payload;
    table.add_row({"BLE beacon (GFSK)", "2.4 GHz", "2 MHz", "1 Mbps",
                   TextTable::num(ble::airtime_us(beacon), 0) + " us",
                   ok ? "ok" : "FAIL"});
  }

  // Zigbee / 802.15.4 O-QPSK.
  {
    zigbee::OqpskModem modem;
    auto rx = modem.demodulate(modem.modulate(payload));
    bool ok = rx && *rx == payload;
    table.add_row({"Zigbee (O-QPSK DSSS)", "2.4 GHz", "2 MHz", "250 kbps",
                   TextTable::num(
                       modem.airtime(payload.size()).microseconds(), 0) +
                       " us",
                   ok ? "ok" : "FAIL"});
  }

  // Sigfox-style UNB.
  {
    sigfox::UnbModem modem;
    auto rx = modem.demodulate(modem.modulate(payload));
    bool ok = rx && *rx == payload;
    table.add_row({"Sigfox-style (UNB DBPSK)", "915 MHz", "200 Hz",
                   "100 bps",
                   TextTable::num(modem.airtime(payload.size()).value(), 2) +
                       " s",
                   ok ? "ok" : "FAIL"});
  }

  // NB-IoT-style single-tone pi/2-BPSK.
  {
    nbiot::SingleToneModem modem;
    auto rx = modem.demodulate(modem.modulate(payload));
    bool ok = rx && *rx == payload;
    table.add_row({"NB-IoT-style (pi/2-BPSK)", "915 MHz", "3.75 kHz",
                   "3.75 kbps",
                   TextTable::num(
                       modem.airtime(payload.size()).milliseconds(), 1) +
                       " ms",
                   ok ? "ok" : "FAIL"});
  }

  // 802.15.4g MR-FSK (the radio's built-in modem, FPGA bypassed).
  {
    radio::BuiltinFskModem modem;
    auto rx = modem.demodulate(modem.modulate(payload));
    bool ok = rx && *rx == payload;
    table.add_row({"MR-FSK (radio built-in)", "915 MHz", "400 kHz",
                   "50 kbps",
                   TextTable::num(
                       modem.airtime(payload.size()).milliseconds(), 2) +
                       " ms",
                   ok ? "ok" : "FAIL"});
  }

  table.print(std::cout);
  std::cout << "\nEvery protocol fits the AT86RF215's 4 MHz I/Q bandwidth "
               "and band plan — the Table 1 argument that gateway-class "
               "30+ MHz SDR front ends are wasted on IoT endpoints.\n";

  // Sensitivity-class comparison from the noise-floor arithmetic.
  std::cout << "\nNoise-floor (NF 6 dB) by protocol bandwidth:\n";
  for (auto [name, bw] :
       {std::pair<const char*, double>{"Sigfox 200 Hz", 200.0},
        {"LoRa 125 kHz", 125e3},
        {"MR-FSK 400 kHz", 400e3},
        {"BLE/Zigbee 2 MHz", 2e6}}) {
    std::cout << "  " << name << ": "
              << TextTable::num(channel::noise_floor(Hertz{bw}).value(), 0)
              << " dBm floor\n";
  }
  std::cout << "The 40+ dB spread of floors is why LPWAN rates are so low "
               "— and why 4 MHz of front-end bandwidth suffices for all of "
               "them.\n";
  return 0;
}
