// Zero-copy streaming runtime throughput: the same NCO -> 14-tap FIR ->
// decimate-by-4 -> sink chain run three ways —
//
//   copy:     a faithful replica of the original copy-based Ring engine
//             (vector push/pop staging, per-chunk allocation, whole-vector
//             FirFilter::filter) as shipped before the SPSC rewrite;
//   spsc:     the zero-copy FlowGraph on lock-free SPSC rings, blocks
//             writing through acquired span views (FirFilter::filter_into
//             straight into ring memory, no staging vectors);
//   threaded: the same graph with every block pinned to its own worker.
//
// Headline scalars: Msamples/s per path and speedup_spsc_vs_copy (the
// acceptance bar is >= 5x). `deterministic_match` checks the threaded
// sink output is byte-identical to the single-thread schedule, and
// `copy_match_max_err` bounds the numeric difference against the copy
// engine's output.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "dsp/fir.hpp"
#include "dsp/nco.hpp"
#include "flow/blocks.hpp"
#include "flow/graph.hpp"

using namespace tinysdr;

namespace {

constexpr std::size_t kInputSamples = std::size_t{1} << 22;
constexpr std::size_t kFirTaps = 14;
constexpr double kCutoff = 0.125;
constexpr std::size_t kDecim = 4;
constexpr double kCycles = 0.02;
constexpr int kReps = 5;

// ------------------------------------------------------------------ copy
// Replica of the pre-rewrite engine (see git history of src/flow/): a
// bounded FIFO backed by a std::vector with amortized compaction, blocks
// staging every chunk through freshly grown vectors.
class CopyRing {
 public:
  explicit CopyRing(std::size_t capacity = std::size_t{1} << 14)
      : capacity_(capacity) {}

  [[nodiscard]] std::size_t size() const { return data_.size() - head_; }
  [[nodiscard]] std::size_t space() const { return capacity_ - size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }

  std::size_t push(std::span<const dsp::Complex> in) {
    std::size_t n = std::min(in.size(), space());
    data_.insert(data_.end(), in.begin(),
                 in.begin() + static_cast<std::ptrdiff_t>(n));
    return n;
  }

  std::size_t pop(std::size_t max, dsp::Samples& out) {
    std::size_t n = std::min(max, data_.size() - head_);
    out.insert(out.end(), data_.begin() + static_cast<std::ptrdiff_t>(head_),
               data_.begin() + static_cast<std::ptrdiff_t>(head_ + n));
    head_ += n;
    if (head_ > data_.size() / 2 && head_ > 1024) {
      data_.erase(data_.begin(),
                  data_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    return n;
  }

 private:
  std::size_t capacity_;
  std::vector<dsp::Complex> data_;
  std::size_t head_ = 0;
};

constexpr std::size_t kCopyChunk = 1024;

dsp::Samples run_copy_engine() {
  dsp::Nco nco;
  nco.set_frequency(kCycles);
  dsp::FirFilter fir{dsp::design_lowpass(kFirTaps, kCutoff)};
  CopyRing src_fir, fir_dec;
  dsp::Samples sink;
  sink.reserve(kInputSamples / kDecim + 1);

  std::size_t emitted = 0;
  std::size_t phase = 0;
  for (;;) {
    bool progress = false;
    // NCO source: stage a chunk, push what fits.
    if (emitted < kInputSamples) {
      std::size_t n =
          std::min({kCopyChunk, kInputSamples - emitted, src_fir.space()});
      if (n > 0) {
        dsp::Samples chunk;
        chunk.reserve(n);
        for (std::size_t i = 0; i < n; ++i) chunk.push_back(nco.next());
        emitted += src_fir.push(chunk);
        progress = true;
      }
    }
    // FIR: pop a chunk, filter into a fresh vector, push. The seed's
    // FirFilter::filter was a per-sample process() loop over a circular
    // delay line (see git history of src/dsp/fir.cpp); replicate that
    // here so the baseline measures the engine as it shipped rather
    // than inheriting the block kernel this rewrite introduced.
    {
      std::size_t n = std::min(src_fir.size(), fir_dec.space());
      if (n > 0) {
        dsp::Samples chunk;
        src_fir.pop(std::min(n, kCopyChunk), chunk);
        dsp::Samples filtered;
        filtered.reserve(chunk.size());
        for (dsp::Complex s : chunk) filtered.push_back(fir.process(s));
        fir_dec.push(filtered);
        progress = true;
      }
    }
    // Decimator straight into the sink (unbounded, like VectorSink).
    if (!fir_dec.empty()) {
      dsp::Samples chunk;
      fir_dec.pop(kCopyChunk, chunk);
      for (const auto& s : chunk) {
        if (phase == 0) sink.push_back(s);
        phase = (phase + 1) % kDecim;
      }
      progress = true;
    }
    if (!progress) break;
  }
  return sink;
}

// ------------------------------------------------------------------ spsc
dsp::Samples run_spsc_engine(bool threaded) {
  flow::FlowGraph graph;
  auto* src = graph.add_block<flow::NcoSource>(kCycles, kInputSamples);
  auto* fir =
      graph.add_block<flow::FirBlock>(dsp::design_lowpass(kFirTaps, kCutoff));
  auto* dec = graph.add_block<flow::DecimatorBlock>(kDecim);
  auto* sink = graph.add_block<flow::VectorSink>();
  graph.connect(src, fir);
  graph.connect(fir, dec);
  graph.connect(dec, sink);
  auto report = threaded ? graph.run_threaded() : graph.run();
  if (!report) {
    std::cerr << "flow graph did not drain: " << to_string(report.state)
              << "\n";
    std::exit(1);
  }
  return sink->data();
}

template <typename F>
double best_seconds(F&& body, dsp::Samples& out) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    out = body();
    auto stop = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(stop - start).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Flow streaming throughput",
                      "streaming runtime",
                      "Zero-copy SPSC flowgraph vs the copy-based ring "
                      "engine on an NCO -> FIR -> decimate chain"};
  run.config("input_samples", static_cast<double>(kInputSamples));
  run.config("fir_taps", static_cast<double>(kFirTaps));
  run.config("reps", static_cast<double>(kReps));

  dsp::Samples copy_out, spsc_out, threaded_out;
  const double copy_s = best_seconds(run_copy_engine, copy_out);
  const double spsc_s =
      best_seconds([] { return run_spsc_engine(false); }, spsc_out);
  const double thr_s =
      best_seconds([] { return run_spsc_engine(true); }, threaded_out);

  const double msps = static_cast<double>(kInputSamples) / 1e6;
  const double copy_rate = msps / copy_s;
  const double spsc_rate = msps / spsc_s;
  const double thr_rate = msps / thr_s;
  const double speedup = copy_s / spsc_s;

  // Correctness before speed: same chain, same outputs.
  bool identical = spsc_out.size() == threaded_out.size();
  for (std::size_t i = 0; identical && i < spsc_out.size(); ++i)
    identical = std::memcmp(&spsc_out[i], &threaded_out[i],
                            sizeof(spsc_out[i])) == 0;
  double max_err = copy_out.size() == spsc_out.size() ? 0.0 : 1e300;
  for (std::size_t i = 0; i < copy_out.size() && max_err < 1e300; ++i)
    max_err = std::max<double>(max_err, std::abs(copy_out[i] - spsc_out[i]));

  run.series("throughput", "path", {"Msamples_per_s", "seconds"},
             {{0, copy_rate, copy_s},
              {1, spsc_rate, spsc_s},
              {2, thr_rate, thr_s}},
             3);
  std::cout << "  (path 0 = copy engine, 1 = spsc, 2 = spsc threaded)\n";

  run.scalar("copy_msamples_per_s", copy_rate);
  run.scalar("spsc_msamples_per_s", spsc_rate);
  run.scalar("threaded_msamples_per_s", thr_rate);
  run.scalar("speedup_spsc_vs_copy", speedup);
  run.scalar("speedup_threaded_vs_copy", copy_s / thr_s);
  run.scalar("speedup_best_vs_copy", copy_s / std::min(spsc_s, thr_s));
  run.scalar("deterministic_match", identical ? 1.0 : 0.0);
  // Boolean, not the raw error: the FIR kernel's FMA dispatch makes the
  // last ulp machine-dependent, so the exact max_err cannot be gated
  // against a baseline recorded elsewhere.
  run.scalar("copy_match_ok", max_err < 1e-5 ? 1.0 : 0.0);
  run.scalar("sink_samples", static_cast<double>(spsc_out.size()));

  std::cout << "\nZero-copy speedup over the copy engine: "
            << TextTable::num(speedup, 2) << "x; threaded sink "
            << (identical ? "byte-identical to single-thread."
                          : "DIVERGED — determinism bug!")
            << " (copy-path max err " << max_err << ")\n";
  return identical && max_err < 1e-5 ? 0 : 1;
}
