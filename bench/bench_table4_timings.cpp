// Reproduces Table 4: operation timings, exercising the device facade
// (wakeup) and radio state machine (switches) rather than printing
// constants blindly.
#include "bench_common.hpp"
#include "core/device.hpp"
#include "lora/mac.hpp"

using namespace tinysdr;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Table 4", "paper Table 4",
                      "Operation timings for tinySDR"};

  // Measure through the device/radio models.
  core::TinySdrDevice dev{1};
  Rng rng{1};
  auto image = fpga::generate_bitstream(fpga::lora_rx_design(8),
                                        fpga::DeviceSpec{}, rng);
  dev.store_design(image);
  Seconds wakeup = dev.wake();
  (void)dev.load_design(image.name);

  radio::At86rf215 radio;
  radio.wake();
  radio.enter_tx();
  Seconds tx_to_rx = radio.enter_rx();
  Seconds rx_to_tx = radio.enter_tx();
  Seconds freq_switch = radio.retune(Hertz::from_megahertz(2402.0));
  radio::TimingModel timing;

  TextTable table{{"Operation", "Measured (ms)", "Paper (ms)"}};
  table.add_row({"Sleep to radio operation",
                 TextTable::num(wakeup.milliseconds(), 3), "22"});
  table.add_row({"Radio setup",
                 TextTable::num(timing.radio_setup.milliseconds(), 3), "1.2"});
  table.add_row({"TX to RX", TextTable::num(tx_to_rx.milliseconds(), 3),
                 "0.045"});
  table.add_row({"RX to TX", TextTable::num(rx_to_tx.milliseconds(), 3),
                 "0.011"});
  table.add_row({"Frequency switch",
                 TextTable::num(freq_switch.milliseconds(), 3), "0.220"});
  table.print(std::cout);

  std::cout << "\nContext: SmartSense commercial sensor wakes in ~"
            << TextTable::num(radio::kSmartSenseWakeupMs, 1)
            << " ms; tinySDR's " << TextTable::num(wakeup.milliseconds(), 0)
            << " ms is ~4x that despite reprogramming an FPGA (paper §5.1).\n";
  std::cout << "LoRaWAN class-A receive windows feasible: "
            << (lora::ReceiveWindows{}.feasible(timing) ? "yes" : "no")
            << " (turnaround "
            << TextTable::num(
                   (timing.tx_to_rx + timing.frequency_switch).microseconds(),
                   0)
            << " us << 1 s RX1 delay)\n";
  return 0;
}
