// Reproduces Table 1: comparison between SDR platforms, and verifies the
// abstract's headline "10,000x lower [sleep power] than existing SDR
// platforms" from the modeled tinySDR sleep budget.
#include "bench_common.hpp"
#include "core/platform_db.hpp"
#include "power/platform_power.hpp"

using namespace tinysdr;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Table 1", "paper Table 1",
                      "SDR platform comparison (sleep power, standalone, "
                      "OTA, cost, bandwidth, ADC, spectrum, size)"};

  TextTable table{{"Platform", "Sleep (mW)", "Standalone", "OTA", "Cost ($)",
                   "Max BW (MHz)", "ADC (bits)", "Spectrum", "Size (cm^2)"}};
  for (const auto& p : core::sdr_platforms()) {
    table.add_row({p.name,
                   p.sleep_power ? TextTable::num(p.sleep_power->value(), 2)
                                 : "N/A",
                   p.standalone ? "yes" : "no", p.ota_programming ? "yes" : "no",
                   TextTable::num(p.cost_usd, 0),
                   TextTable::num(p.max_bandwidth_mhz, 2),
                   std::to_string(p.adc_bits), p.spectrum,
                   TextTable::num(p.size_cm2, 1)});
  }
  table.print(std::cout);

  // The tinySDR sleep figure is not a datasheet copy: derive it from the
  // component-level power model and compare.
  power::PlatformPowerModel model;
  double modeled_uw = model.sleep_power().microwatts();
  std::cout << "\nModeled tinySDR sleep power: " << TextTable::num(modeled_uw, 1)
            << " uW (paper: 30 uW)\n";
  double best_other = 1e12;
  for (const auto& p : core::sdr_platforms())
    if (p.sleep_power && p.name != "TinySDR")
      best_other = std::min(best_other, p.sleep_power->value());
  std::cout << "Sleep-power advantage vs best standalone SDR: "
            << TextTable::num(best_other / (modeled_uw * 1e-3), 0)
            << "x (paper claims 10,000x)\n";
  return 0;
}
