// Reproduces Fig. 2: radio-module power consumption per platform (TX at the
// annotated output power, and RX), with tinySDR's numbers produced by the
// radio model rather than copied.
#include "bench_common.hpp"
#include "core/platform_db.hpp"
#include "power/platform_power.hpp"

using namespace tinysdr;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Fig. 2", "paper Fig. 2",
                      "Radio module power consumption for each platform"};

  power::PlatformPowerModel model;
  TextTable table{{"Platform", "TX power (mW)", "TX output (dBm)",
                   "RX power (mW)"}};
  for (const auto& p : core::sdr_platforms()) {
    double tx_mw = p.radio_tx_power.value();
    double rx_mw = p.radio_rx_power.value();
    if (p.name == "TinySDR") {
      // Live model values: radio-module draw at 14 dBm, and RX with LVDS.
      tx_mw = model.radio_tx_draw(radio::Band::kSubGhz900, Dbm{14.0}).value();
      rx_mw = model.radio_rx_draw().value();
    }
    table.add_row({p.name,
                   p.name == "GalioT" ? "no TX" : TextTable::num(tx_mw, 0),
                   TextTable::num(p.tx_output.value(), 0),
                   TextTable::num(rx_mw, 0)});
  }
  table.print(std::cout);

  double tinysdr_tx =
      model.radio_tx_draw(radio::Band::kSubGhz900, Dbm{14.0}).value();
  std::cout << "\nShape check: every gateway SDR radio draws >= "
            << TextTable::num(860.0 / tinysdr_tx, 1)
            << "x tinySDR's radio when transmitting (paper: ~5x-7x radio "
               "only, 15-16x end to end).\n";
  return 0;
}
