// Ablations for the OTA design choices the paper calls out (§3.4, §5.3):
//   1. compression block size — the 30 kB choice vs the MCU's SRAM budget
//      and the compression ratio it costs;
//   2. data packet size — "we would ideally minimize the preamble length
//      and maximize packet length ... however long packets with short
//      preambles lead to higher PER"; sweep payload size vs total transfer
//      time at good and marginal links;
//   3. compression on/off — what miniLZO buys in network downtime.
#include "bench_common.hpp"
#include "fpga/bitstream.hpp"
#include "mcu/msp432.hpp"
#include "ota/protocol.hpp"
#include "ota/lzo.hpp"

using namespace tinysdr;
using namespace tinysdr::ota;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Ablation: OTA parameters", "design choices §3.4/§5.3",
                      "Block size, packet size and compression trade-offs"};

  Rng img_rng{42};
  auto image = fpga::generate_bitstream(fpga::lora_rx_design(8),
                                        fpga::DeviceSpec{}, img_rng);

  // 1. Block size sweep.
  std::cout << "\n[1] Compression block size (MCU SRAM budget: "
            << mcu::baseline_firmware().max_block_buffer() / 1024
            << " kB free):\n";
  std::vector<std::vector<double>> rows;
  for (std::size_t kb : {4ul, 10ul, 30ul, 60ul, 579ul}) {
    auto blocks = compress_blocks(image.data, kb * 1024);
    double ratio = static_cast<double>(compressed_size(blocks)) /
                   static_cast<double>(image.size());
    bool fits = kb * 1024 <= mcu::baseline_firmware().max_block_buffer();
    rows.push_back({static_cast<double>(kb), ratio * 100.0,
                    fits ? 1.0 : 0.0});
  }
  run.series("block_kb", "Block (kB)", {"Compressed (% of orig)",
                                     "Fits MCU SRAM (1=yes)"},
                      rows, 2);
  std::cout << "Reading: larger blocks compress marginally better, but "
               "anything above ~30 kB no longer fits the MSP432's SRAM "
               "alongside the firmware — the paper's 30 kB is the largest "
               "feasible block.\n";

  // 2. Packet size sweep at two link qualities.
  std::cout << "\n[2] Data packet size vs transfer time (100 kB payload):\n";
  std::vector<std::uint8_t> payload(100 * 1024, 0xAB);
  rows.clear();
  for (std::size_t packet_bytes : {20ul, 60ul, 120ul, 200ul}) {
    std::vector<double> row{static_cast<double>(packet_bytes)};
    for (double rssi : {-95.0, -117.5}) {
      Rng rng{7};
      OtaLink link{ota_link_params(), Dbm{rssi}, rng};
      // Inline stop-and-wait transfer with this packet size.
      Seconds total{0.0};
      std::size_t sent = 0, retx = 0;
      for (std::size_t off = 0; off < payload.size();
           off += packet_bytes) {
        std::size_t chunk = std::min(packet_bytes, payload.size() - off);
        bool delivered = false;
        std::size_t attempts = 0;
        while (!delivered && attempts < 50) {
          ++attempts;
          total += link.airtime(chunk + 7) +
                   link.airtime(7);  // data + ack airtime
          if (link.deliver(chunk + 7) && link.deliver(7)) {
            delivered = true;
          } else {
            total += Seconds::from_milliseconds(20.0);
            ++retx;
          }
        }
        ++sent;
      }
      row.push_back(total.value());
    }
    rows.push_back(row);
  }
  run.series("packet_b", "Packet (B)",
                      {"Time @ -95 dBm (s)", "Time @ -117.5 dBm (s)"}, rows,
                      1);
  std::cout << "Reading: big packets win on a clean link (less preamble/ACK "
               "overhead) but lose near sensitivity where whole-packet "
               "retransmissions dominate — the paper lands on 60 B as the "
               "balance.\n";

  // 3. Compression benefit.
  auto blocks30 = compress_blocks(image.data);
  double ratio = static_cast<double>(compressed_size(blocks30)) /
                 static_cast<double>(image.size());
  Rng rng_c{9}, rng_u{9};
  OtaLink lc{ota_link_params(), Dbm{-95.0}, rng_c};
  OtaLink lu{ota_link_params(), Dbm{-95.0}, rng_u};
  AccessPoint ap;
  std::vector<std::uint8_t> compressed_stream(compressed_size(blocks30), 1);
  std::vector<std::uint8_t> raw_stream(image.size(), 1);
  auto with = ap.transfer(compressed_stream, 1, lc);
  auto without = ap.transfer(raw_stream, 1, lu);
  std::cout << "\n[3] miniLZO benefit on the LoRa FPGA image: "
            << TextTable::num(ratio * 100.0, 0) << "% of original -> "
            << TextTable::num(with.total_time.value(), 0) << " s vs "
            << TextTable::num(without.total_time.value(), 0)
            << " s uncompressed ("
            << TextTable::num(without.total_time.value() /
                                  with.total_time.value(),
                              1)
            << "x less network downtime).\n";
  return 0;
}
