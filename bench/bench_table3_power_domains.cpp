// Reproduces Table 3: the power-domain plan (component -> voltage ->
// domain) and demonstrates the PMU's domain gating.
#include "bench_common.hpp"
#include "power/domains.hpp"

using namespace tinysdr;
using namespace tinysdr::power;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Table 3", "paper Table 3",
                      "Power domains in tinySDR"};

  PowerManagementUnit pmu;
  TextTable table{{"Component", "Domain", "Voltage (V)", "Regulator"}};
  const Component components[] = {
      Component::kMcu,       Component::kFpgaCore, Component::kFpgaAux,
      Component::kFpgaPll,   Component::kFpgaIo,   Component::kIqRadio,
      Component::kBackboneRadio, Component::kSubGhzPa, Component::k24GhzPa,
      Component::kFlash,     Component::kMicroSd};
  for (Component c : components) {
    Domain d = domain_of(c);
    const auto& reg = pmu.regulator(d);
    table.add_row({component_name(c), domain_name(d),
                   TextTable::num(reg.output_volts(), 1) +
                       (reg.spec().adjustable ? " (adj 1.8-3.6)" : ""),
                   reg.spec().part});
  }
  table.print(std::cout);

  // Gating demo: battery draw with a representative RX-mode load set, then
  // with everything but V1 shut down.
  std::map<Domain, Milliwatts> rx_loads{
      {Domain::kV1, Milliwatts{12.0}},  {Domain::kV2, Milliwatts{50.0}},
      {Domain::kV3, Milliwatts{18.0}},  {Domain::kV4, Milliwatts{8.0}},
      {Domain::kV5, Milliwatts{70.0}}};
  std::cout << "\nBattery draw, RX-mode loads, all domains on: "
            << TextTable::num(pmu.battery_draw(rx_loads).value(), 1)
            << " mW (regulator overhead "
            << TextTable::num(pmu.overhead(rx_loads).value(), 1) << " mW)\n";
  for (Domain d : PowerManagementUnit::all_domains())
    if (d != Domain::kV1) pmu.set_domain_enabled(d, false);
  std::cout << "Battery draw after gating V2-V7 off (sleep prep): "
            << TextTable::num(pmu.battery_draw({}).microwatts(), 2)
            << " uW of regulator quiescent/leakage\n";
  return 0;
}
