// Reproduces the §5.3 OTA numbers: compressed image sizes, node-side
// energy per update (paper: 6144 mJ LoRa FPGA / 2342 mJ BLE FPGA), update
// counts on a 1000 mAh battery (2100 / 5600), and the amortized power of
// daily reprogramming (71 uW / 27 uW).
#include "bench_common.hpp"
#include "ota/update.hpp"

using namespace tinysdr;
using namespace tinysdr::ota;

namespace {

UpdateReport run_update(const fpga::FirmwareImage& image, UpdateTarget target,
                        Dbm rssi, std::uint64_t seed) {
  Rng rng{seed};
  OtaLink link{ota_link_params(), rssi, rng};
  FlashModel flash;
  mcu::Msp432 mcu = mcu::baseline_firmware();
  UpdatePlanner planner;
  return planner.run(image, target, 1, link, flash, mcu);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "OTA energy", "paper §5.3",
                      "Per-update compressed sizes, node energy, battery "
                      "budget, amortized power"};

  Rng img_rng{42};
  auto lora_fpga = fpga::generate_bitstream(fpga::lora_rx_design(8),
                                            fpga::DeviceSpec{}, img_rng);
  auto ble_fpga = fpga::generate_bitstream(fpga::ble_tx_design(),
                                           fpga::DeviceSpec{}, img_rng);
  auto mcu_prog = fpga::generate_mcu_program("mcu_fw", 78 * 1024, img_rng);

  const Dbm rssi{-100.0};  // mid-testbed link
  auto lora_report = run_update(lora_fpga, UpdateTarget::kFpga, rssi, 1);
  auto ble_report = run_update(ble_fpga, UpdateTarget::kFpga, rssi, 2);
  auto mcu_report = run_update(mcu_prog, UpdateTarget::kMcu, rssi, 3);

  BatteryCapacity battery{1000.0, 3.7};
  TextTable table{{"Update", "Original (kB)", "Compressed (kB)",
                   "Airtime (s)", "Total time (s)", "Node energy (mJ)",
                   "Updates / 1000 mAh", "Daily avg (uW)"}};
  struct Row {
    const char* label;
    const UpdateReport* r;
    double paper_energy;
  } entries[] = {{"FPGA: LoRa (paper 6144 mJ, 2100x, 71 uW)", &lora_report,
                  6144.0},
                 {"FPGA: BLE (paper 2342 mJ, 5600x, 27 uW)", &ble_report,
                  2342.0},
                 {"MCU program", &mcu_report, 0.0}};
  for (const auto& e : entries) {
    double updates = battery.energy().value() / e.r->total_energy.value();
    double daily_uw =
        amortized_update_power(*e.r, Seconds{86400.0}).microwatts();
    table.add_row(
        {e.label,
         TextTable::num(static_cast<double>(e.r->original_bytes) / 1024, 0),
         TextTable::num(static_cast<double>(e.r->compressed_bytes) / 1024, 0),
         TextTable::num(e.r->transfer.airtime.value(), 1),
         TextTable::num(e.r->total_time.value(), 1),
         TextTable::num(e.r->total_energy.value(), 0),
         TextTable::num(updates, 0), TextTable::num(daily_uw, 0)});
  }
  table.print(std::cout);

  std::cout << "\nPaper anchors: LoRa FPGA 579->99 kB, BLE 579->40 kB, MCU "
               "78->24 kB; decompress <= 450 ms (measured "
            << TextTable::num(lora_report.decompress_time.milliseconds(), 0)
            << " ms); FPGA reprogram "
            << TextTable::num(lora_report.reprogram_time.milliseconds(), 0)
            << " ms.\n";
  return 0;
}
