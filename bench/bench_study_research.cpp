// Research-opportunity studies (paper §7): quantifies each of the
// directions the conclusion sketches, using the platform models.
//   [1] rate adaptation over the campus deployment
//   [2] broadcast vs sequential OTA programming
//   [3] FPGA path vs the radio's built-in MR-FSK modem (power/resources)
//   [4] phase-based ranging accuracy from I/Q access
//   [5] backscatter reader operating region
#include "bench_common.hpp"
#include "core/backscatter.hpp"
#include "core/localization.hpp"
#include "lora/rate_adapt.hpp"
#include "ota/broadcast.hpp"
#include "power/platform_power.hpp"
#include "radio/builtin_modem.hpp"
#include "testbed/deployment.hpp"

using namespace tinysdr;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Research studies", "paper §7",
                      "Quantifying the research directions the paper's "
                      "conclusion proposes"};

  // ---------------------------------------------------- [1] rate adaptation
  std::cout << "\n[1] Rate adaptation (ADR ladder SF7..SF12, 20-byte "
               "packets) across the campus deployment:\n";
  Rng rng{11};
  auto deployment = testbed::Deployment::campus(rng);
  double fixed_total = 0.0, adaptive_total = 0.0;
  int adapted_nodes = 0;
  for (const auto& node : deployment.nodes()) {
    auto outcome = lora::evaluate_rate_adaptation(node.rssi, 20);
    if (!outcome) continue;
    ++adapted_nodes;
    fixed_total += outcome->fixed_airtime.value();
    adaptive_total += outcome->adaptive_airtime.value();
  }
  std::cout << "  " << adapted_nodes << "/20 nodes reachable; network "
            << "airtime per round: fixed SF12 "
            << TextTable::num(fixed_total, 2) << " s vs adaptive "
            << TextTable::num(adaptive_total, 2) << " s -> "
            << TextTable::num(fixed_total / adaptive_total, 1)
            << "x airtime saving (and the same factor in TX energy).\n";

  // ------------------------------------------------------ [2] broadcast OTA
  std::cout << "\n[2] Broadcast vs sequential OTA (100 kB compressed image, "
               "-100 dBm links):\n";
  std::vector<std::uint8_t> image(100 * 1024, 0xA5);
  std::vector<std::vector<double>> rows;
  for (int nodes : {1, 5, 10, 20}) {
    std::vector<ota::OtaLink> links;
    for (int i = 0; i < nodes; ++i)
      links.emplace_back(ota::ota_link_params(), Dbm{-100.0},
                         Rng{static_cast<std::uint64_t>(500 + i)});
    ota::BroadcastUpdater updater;
    auto b = updater.broadcast(image, links);

    ota::AccessPoint ap;
    Seconds sequential{0.0};
    for (int i = 0; i < nodes; ++i) {
      ota::OtaLink link{ota::ota_link_params(), Dbm{-100.0},
                        Rng{static_cast<std::uint64_t>(600 + i)}};
      sequential += ap.transfer(image, static_cast<std::uint16_t>(i), link)
                        .total_time;
    }
    rows.push_back({static_cast<double>(nodes), sequential.value(),
                    b.total_time.value(), b.speedup_vs(sequential)});
  }
  run.series("nodes", "Nodes",
                      {"Sequential (s)", "Broadcast (s)", "Speedup"}, rows,
                      1);
  std::cout << "  Reading: sequential time grows linearly with fleet size; "
               "broadcast pays once plus repairs — the §7 'simultaneously "
               "broadcast the updates' win.\n";

  // ------------------------------------------------ [3] built-in modem path
  std::cout << "\n[3] FPGA PHY vs the AT86RF215's built-in MR-FSK modem "
               "(FPGA power-gated):\n";
  power::PlatformPowerModel model;
  double fpga_path =
      model.draw(power::Activity::kLoraTransmit, Dbm{14.0}).value();
  double bypass =
      (model.radio_tx_draw(radio::Band::kSubGhz900, Dbm{14.0}) +
       model.mcu().active + Milliwatts{10.0})
          .value();
  radio::BuiltinFskModem fsk;
  std::cout << "  TX platform power @14 dBm: FPGA LoRa path "
            << TextTable::num(fpga_path, 0) << " mW vs built-in FSK "
            << TextTable::num(bypass, 0) << " mW ("
            << TextTable::num(fpga_path - bypass, 0)
            << " mW saved by bypassing the FPGA), 0 LUTs used, 20-byte "
               "frame airtime "
            << TextTable::num(fsk.airtime(20).milliseconds(), 1) << " ms.\n";

  // ------------------------------------------------------- [4] localization
  std::cout << "\n[4] Phase-based ranging (10 tones, 902-920 MHz, "
               "I/Q phase access):\n";
  rows.clear();
  for (double noise_deg : {0.0, 5.0, 20.0, 45.0}) {
    Rng lr{13};
    core::RangingConfig cfg;
    double err_sum = 0.0;
    const int trials = 25;
    for (int t = 0; t < trials; ++t) {
      double d = 5.0 + 135.0 * lr.next_double();
      auto sweep = core::simulate_phase_sweep(
          cfg, d, noise_deg * 3.14159 / 180.0, lr);
      auto est = core::estimate_range(cfg, sweep);
      err_sum += std::abs(est.distance_m - d);
    }
    rows.push_back({noise_deg, err_sum / trials});
  }
  run.series("phase_noise_deg", "Phase noise (deg)", {"Mean ranging error (m)"}, rows,
                      3);

  // -------------------------------------------------------- [5] backscatter
  std::cout << "\n[5] Backscatter reader (tinySDR tone + envelope decoder, "
               "tag at -20 dB reflection, 10 kbps):\n";
  rows.clear();
  for (double snr : {20.0, 8.0, 2.0, -2.0, -6.0}) {
    Rng br{17};
    core::BackscatterConfig cfg;
    rows.push_back({snr, core::backscatter_ber(cfg, 400, snr, br)});
  }
  run.series("carrier_snr_db", "Carrier SNR (dB)", {"Tag BER"}, rows, 4);
  std::cout << "  Reading: the per-bit integrator's ~26 dB of processing "
               "gain buys back most of the -20 dB tag reflection; the "
               "reader needs roughly 15 dB of carrier SNR, i.e. it works "
               "wherever the bare tone is comfortably receivable.\n";
  return 0;
}
