// Reproduces Table 5: the tinySDR bill of materials for 1000 units.
#include "bench_common.hpp"
#include "core/platform_db.hpp"

using namespace tinysdr;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Table 5", "paper Table 5",
                      "TinySDR cost breakdown for 1000 units"};

  TextTable table{{"Category", "Component", "Price ($)"}};
  std::string last_category;
  double category_sum = 0.0;
  for (const auto& line : core::bom_lines()) {
    table.add_row({line.category == last_category ? "" : line.category,
                   line.component, TextTable::num(line.price_usd, 2)});
    last_category = line.category;
    category_sum += line.price_usd;
  }
  table.add_row({"Total", "", TextTable::num(core::bom_total_usd(), 2)});
  table.print(std::cout);

  std::cout << "\nPaper total: $54.53; sale-price comparison point: the "
               "next cheapest standalone SDR (GalioT) is $60 and cannot "
               "transmit.\n";
  return 0;
}
