// Multi-PHY testbed campaign: the paper's programmability argument made
// concrete. The 20-node campus deployment is split round-robin across all
// five registered PHYs (LoRa, BLE, Zigbee, Sigfox, NB-IoT) and every node
// runs a LinkSimulator trial batch at its deployed RSSI — the fleet-wide
// link health a testbed operator would check after reprogramming nodes to
// a new protocol mix.
#include "bench_common.hpp"
#include "phy/registry.hpp"
#include "testbed/phy_campaign.hpp"

using namespace tinysdr;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Multi-PHY campaign", "paper §5/§7",
                      "All five PHYs across the 20-node campus testbed, "
                      "one LinkSimulator trial batch per node"};
  auto policy = bench::thread_policy(argc, argv);
  run.config_threads(policy);

  Rng rng{7};
  auto deployment = testbed::Deployment::campus(rng);
  const auto& registry = phy::Registry::builtin();

  testbed::PhyCampaignConfig config;
  config.trials_per_node = 20;
  config.base_seed = 2026;

  auto result =
      testbed::run_phy_campaign(deployment, registry, config, policy);

  std::vector<std::vector<double>> node_rows;
  for (const auto& node : result.per_node)
    node_rows.push_back({static_cast<double>(node.node_id), node.rssi_dbm,
                         static_cast<double>(
                             static_cast<int>(node.protocol)),
                         node.link.per() * 100.0});
  run.series("per_node", "Node id",
             {"RSSI (dBm)", "Protocol id", "PER (%)"}, node_rows, 1);

  TextTable table{{"Protocol", "Nodes", "Frames", "Errors", "PER (%)"}};
  for (const auto& s : result.by_protocol(registry)) {
    table.add_row({std::string(phy::protocol_name(s.protocol)),
                   std::to_string(s.nodes), std::to_string(s.frames),
                   std::to_string(s.frame_errors),
                   TextTable::num(s.per() * 100.0, 1)});
    run.scalar("per_" + std::string(phy::protocol_name(s.protocol)) + "_pct",
               s.per() * 100.0);
  }
  std::cout << "\nPer-protocol fleet summary:\n";
  table.print(std::cout);

  auto cdf = result.delivery_cdf();
  std::vector<std::vector<double>> cdf_rows;
  for (const auto& point : cdf)
    cdf_rows.push_back({point.value, point.probability});
  run.series("delivery_cdf", "Delivery rate", {"P(X <= x)"}, cdf_rows, 3);

  std::cout << "\nReading: strong courtyard links deliver everything on "
               "any PHY; the far-corner nodes are where protocol choice "
               "matters — exactly the experiment an over-the-air "
               "programmable testbed exists to run.\n";
  return 0;
}
