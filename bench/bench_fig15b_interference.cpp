// Reproduces Fig. 15b: concurrent LoRa with asymmetric power — the
// SF8/BW125 transmission is fixed near its sensitivity while the
// SF8/BW250 transmission's power sweeps. SER on the weak link is flat
// while noise dominates, then climbs once the quasi-orthogonal interferer
// dominates the noise (the paper's argument for power control).
#include "bench_common.hpp"
#include "core/concurrent.hpp"

using namespace tinysdr;
using namespace tinysdr::lora;

int main() {
  bench::print_header(
      "Fig. 15b", "paper Fig. 15b",
      "Concurrent LoRa, interferer power sweep (BW125 fixed near "
      "sensitivity)");

  LoraParams p125{8, Hertz::from_kilohertz(125.0)};
  LoraParams p250{8, Hertz::from_kilohertz(250.0)};
  Hertz fs = Hertz::from_kilohertz(500.0);
  const std::size_t symbols = 250;
  // Paper: the BW125 signal is fixed at -123 dBm, near its sensitivity.
  const Dbm fixed_a{-123.0};

  std::vector<std::vector<double>> rows;
  for (double interferer = -130.0; interferer <= -104.0; interferer += 2.0) {
    Rng rng{77};
    auto r = core::run_concurrent_trial(p125, p250, fixed_a, Dbm{interferer},
                                        symbols, fs, rng,
                                        bench::kLoraSystemNf);
    rows.push_back({interferer, r.ser_a * 100.0});
  }
  bench::print_series("Interferer power (dBm)", {"SF8/BW125 SER (%)"}, rows,
                      2);

  std::cout
      << "\nShape (paper): flat noise-dominated region, ~3 dB degradation "
         "where interferer power crosses the noise power (around -116 dBm), "
         "then interferer-dominated growth — demonstrating the need for "
         "power control when IoT endpoints decode concurrent "
         "transmissions.\n";
  return 0;
}
