// Reproduces Fig. 15b: concurrent LoRa with asymmetric power — the
// SF8/BW125 transmission is fixed near its sensitivity while the
// SF8/BW250 transmission's power sweeps. SER on the weak link is flat
// while noise dominates, then climbs once the quasi-orthogonal interferer
// dominates the noise (the paper's argument for power control).
#include "bench_common.hpp"
#include "bench_fig15_common.hpp"

using namespace tinysdr;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Fig. 15b", "paper Fig. 15b",
                      "Concurrent LoRa, interferer power sweep (BW125 fixed "
                      "near sensitivity)"};
  auto policy = bench::thread_policy(argc, argv);
  run.config_threads(policy);

  bench::Fig15Setup rig;

  // 2 trials x 125 payload bytes = 250 chirp symbols per sweep point. The
  // signal RSSI is fixed, so every point reuses the same symbols and noise
  // realization — a controlled sweep where only the interferer level moves.
  phy::TrialPlan plan = rig.plan();
  plan.base_seed = 77;

  // Paper: the BW125 signal is fixed at -123 dBm, near its sensitivity.
  const Dbm fixed_a{-123.0};
  std::vector<phy::SweepPoint> points;
  for (double interferer = -130.0; interferer <= -104.0; interferer += 2.0)
    points.push_back({fixed_a, Dbm{interferer}});

  phy::LinkSimulator sim{rig.tx125, rig.rx125, plan};
  sim.set_interferer(rig.tx250);
  auto results = sim.sweep(points, policy);

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < points.size(); ++i)
    rows.push_back(
        {points[i].interferer_rssi->value(), results[i].ser() * 100.0});
  run.series("ser_vs_interferer", "Interferer power (dBm)",
             {"SF8/BW125 SER (%)"}, rows, 2);

  std::cout
      << "\nShape (paper): flat noise-dominated region, ~3 dB degradation "
         "where interferer power crosses the noise power (around -116 dBm), "
         "then interferer-dominated growth — demonstrating the need for "
         "power control when IoT endpoints decode concurrent "
         "transmissions.\n";
  return 0;
}
