// Shared rig for the Fig. 15 concurrent-LoRa benches and the adversary
// jammer sweeps built on the same machinery: the paper's SF8/BW125 and
// SF8/BW250 pair sampled at a common 500 kHz, plus the common trial plan.
#pragma once

#include "phy/link_sim.hpp"
#include "phy/lora_phy.hpp"

namespace tinysdr::bench {

/// The concurrent pair from Fig. 15: both spreading-factor-8 links live in
/// one 500 kHz capture, decoded by per-bandwidth symbol demodulators.
struct Fig15Setup {
  Hertz fs = Hertz::from_kilohertz(500.0);
  phy::LoraPhyConfig cfg125{.params = {8, Hertz::from_kilohertz(125.0)},
                            .sample_rate = fs};
  phy::LoraPhyConfig cfg250{.params = {8, Hertz::from_kilohertz(250.0)},
                            .sample_rate = fs};
  phy::LoraSymbolTx tx125{cfg125};
  phy::LoraSymbolTx tx250{cfg250};
  phy::LoraSymbolRx rx125{cfg125};
  phy::LoraSymbolRx rx250{cfg250};

  /// 2 trials x 125 payload bytes = 250 chirp symbols per sweep point.
  [[nodiscard]] phy::TrialPlan plan() const {
    phy::TrialPlan p;
    p.trials = 2;
    p.payload_bytes = 125;
    p.noise_figure_db = phy::kLoraSystemNf;
    return p;
  }
};

}  // namespace tinysdr::bench
