// Reproduces Table 2: off-the-shelf I/Q radio modules, plus the §3.1.1
// selection argument (only the AT86RF215 covers both bands under $10).
#include "bench_common.hpp"
#include "core/platform_db.hpp"

using namespace tinysdr;

int main(int argc, char** argv) {
  bench::BenchRun run{argc, argv, "Table 2", "paper Table 2",
                      "Existing off-the-shelf I/Q radio modules"};

  TextTable table{{"I/Q Radio", "Frequency", "RX power (mW)", "Cost ($)",
                   "900 MHz", "2.4 GHz", "<$10"}};
  for (const auto& m : core::iq_radio_modules()) {
    table.add_row({m.name, m.frequency_range,
                   TextTable::num(m.rx_power.value(), 0),
                   TextTable::num(m.cost_usd, 1),
                   m.covers_900mhz ? "yes" : "no",
                   m.covers_2400mhz ? "yes" : "no",
                   m.cost_usd < 10.0 ? "yes" : "no"});
  }
  table.print(std::cout);

  std::cout << "\nSelection: the only module meeting all requirements "
               "(both ISM bands, low cost, lowest RX power) is the "
               "AT86RF215 — the paper's choice.\n";
  return 0;
}
