#include "radio/timing.hpp"

#include <gtest/gtest.h>

namespace tinysdr::radio {
namespace {

TEST(TimingModel, Table4Defaults) {
  TimingModel t;
  EXPECT_NEAR(t.sleep_to_radio.milliseconds(), 22.0, 1e-12);
  EXPECT_NEAR(t.radio_setup.milliseconds(), 1.2, 1e-12);
  EXPECT_NEAR(t.tx_to_rx.microseconds(), 45.0, 1e-9);
  EXPECT_NEAR(t.rx_to_tx.microseconds(), 11.0, 1e-9);
  EXPECT_NEAR(t.frequency_switch.microseconds(), 220.0, 1e-9);
}

TEST(TimingModel, WakeupIsParallelMax) {
  // §5.1: "we can perform the I/Q radio setup in parallel with booting the
  // FPGA [so] the total wakeup time ... is 22 ms" — the max, not the sum.
  TimingModel t;
  EXPECT_NEAR(t.wakeup_total().milliseconds(), 22.0, 1e-12);

  TimingModel slow_radio = t;
  slow_radio.radio_setup = Seconds::from_milliseconds(30.0);
  EXPECT_NEAR(slow_radio.wakeup_total().milliseconds(), 30.0, 1e-12);
}

TEST(TimingModel, RxToTxFasterThanTxToRx) {
  // The measured asymmetry (11 vs 45 us) matters for ACK turnarounds.
  TimingModel t;
  EXPECT_LT(t.rx_to_tx.value(), t.tx_to_rx.value());
}

TEST(TimingModel, FourXSmartSenseComparison) {
  // §5.1: tinySDR wakes ~4x slower than the SmartSense commercial sensor.
  TimingModel t;
  double ratio = t.wakeup_total().milliseconds() / kSmartSenseWakeupMs;
  EXPECT_NEAR(ratio, 4.0, 0.2);
}

TEST(TimingModel, BleHopBudget) {
  // Frequency switch (220 us) must beat the iPhone 8's 350 us beacon gap.
  TimingModel t;
  EXPECT_LT(t.frequency_switch.microseconds(), 350.0);
}

}  // namespace
}  // namespace tinysdr::radio
