#include "radio/lvds.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tinysdr::radio {
namespace {

TEST(Sample13, EncodeDecodeRoundTrip) {
  for (std::int32_t v : {-4096, -1, 0, 1, 2047, 4095}) {
    EXPECT_EQ(decode_sample13(encode_sample13(v)), v);
  }
}

TEST(Sample13, RejectsOutOfRange) {
  EXPECT_THROW(encode_sample13(4096), std::out_of_range);
  EXPECT_THROW(encode_sample13(-4097), std::out_of_range);
}

TEST(LvdsSerializer, WordIs32Bits) {
  LvdsSerializer ser;
  ser.push(IqWord{100, -200, false, true});
  EXPECT_EQ(ser.bits().size(), 32u);
  EXPECT_EQ(ser.word_count(), 1u);
}

TEST(LvdsSerializer, SyncPatternsAtFieldBoundaries) {
  LvdsSerializer ser;
  ser.push(IqWord{0, 0, false, false});
  const auto& bits = ser.bits();
  // I_SYNC = 10 at bits 0..1; Q_SYNC = 01 at bits 16..17.
  EXPECT_TRUE(bits[0]);
  EXPECT_FALSE(bits[1]);
  EXPECT_FALSE(bits[16]);
  EXPECT_TRUE(bits[17]);
}

TEST(LvdsRoundTrip, PreservesSamplesAndControlBits) {
  LvdsSerializer ser;
  ser.push(IqWord{1234, -987, true, false});
  ser.push(IqWord{-4096, 4095, false, true});
  LvdsDeserializer des;
  des.feed(ser.bits());
  auto words = des.take_words();
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0].i, 1234);
  EXPECT_EQ(words[0].q, -987);
  EXPECT_TRUE(words[0].i_ctrl);
  EXPECT_FALSE(words[0].q_ctrl);
  EXPECT_EQ(words[1].i, -4096);
  EXPECT_EQ(words[1].q, 4095);
  EXPECT_TRUE(words[1].q_ctrl);
}

TEST(LvdsDeserializer, ResyncsAfterPartialWord) {
  // Simulate joining the stream mid-word: drop the first 11 bits.
  LvdsSerializer ser;
  Rng rng{3};
  std::vector<IqQuantizer::CodePair> codes;
  for (int i = 0; i < 20; ++i)
    codes.push_back({static_cast<std::int32_t>(rng.next_below(8191)) - 4095,
                     static_cast<std::int32_t>(rng.next_below(8191)) - 4095});
  ser.push_samples(codes);

  std::vector<bool> bits(ser.bits().begin() + 11, ser.bits().end());
  LvdsDeserializer des;
  des.feed(bits);
  auto words = des.take_words();
  // First word lost; the hunt may consume a couple more before locking.
  ASSERT_GE(words.size(), 17u);
  // The recovered tail must match the original tail exactly.
  std::size_t skipped = codes.size() - words.size();
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(words[i].i, codes[skipped + i].i);
    EXPECT_EQ(words[i].q, codes[skipped + i].q);
  }
  EXPECT_GT(des.slipped_bits(), 0u);
}

TEST(LvdsRoundTrip, BulkRandomSamples) {
  Rng rng{17};
  std::vector<IqQuantizer::CodePair> codes;
  for (int i = 0; i < 500; ++i)
    codes.push_back({static_cast<std::int32_t>(rng.next_below(8192)) - 4096,
                     static_cast<std::int32_t>(rng.next_below(8192)) - 4096});
  auto words = lvds_roundtrip(codes);
  ASSERT_EQ(words.size(), codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(words[i].i, codes[i].i);
    EXPECT_EQ(words[i].q, codes[i].q);
  }
}

TEST(LvdsThroughput, MatchesPaperNumbers) {
  // 4 Mwords/s * 32 bits = 128 Mbps over the 64 MHz DDR clock.
  EXPECT_DOUBLE_EQ(LvdsSerializer::throughput_bps(4e6), 128e6);
}

}  // namespace
}  // namespace tinysdr::radio
