#include "radio/builtin_modem.hpp"

#include <gtest/gtest.h>

#include "channel/noise.hpp"
#include "common/rng.hpp"

namespace tinysdr::radio {
namespace {

std::vector<std::uint8_t> payload_bytes() {
  return {0x11, 0x22, 0x33, 0x44, 0x55, 0x66};
}

TEST(BuiltinFskModem, FrameStructure) {
  BuiltinFskModem modem;
  auto bits = modem.frame_bits(payload_bytes());
  // preamble(4B) + SFD(2B) + PHR(2B) + payload(6B) + FCS(2B) = 16 B.
  EXPECT_EQ(bits.size(), 16u * 8u);
}

TEST(BuiltinFskModem, RejectsOversizePayload) {
  BuiltinFskModem modem;
  EXPECT_THROW(modem.frame_bits(std::vector<std::uint8_t>(2048, 0)),
               std::invalid_argument);
}

TEST(BuiltinFskModem, ConstantEnvelopeModulation) {
  BuiltinFskModem modem;
  auto iq = modem.modulate(payload_bytes());
  for (const auto& s : iq) EXPECT_NEAR(std::abs(s), 1.0f, 2e-3);
}

TEST(BuiltinFskModem, CleanLoopback) {
  BuiltinFskModem modem;
  auto iq = modem.modulate(payload_bytes());
  auto rx = modem.demodulate(iq);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, payload_bytes());
}

TEST(BuiltinFskModem, LoopbackWithNoise) {
  BuiltinFskModem modem;
  MrFskConfig cfg;
  auto iq = modem.modulate(payload_bytes());
  Rng rng{9};
  channel::AwgnChannel chan{cfg.sample_rate(), 6.0, rng};
  // MR-FSK at 50 kb/s: noise floor over 400 kHz ~ -112 dBm; -95 dBm is
  // a comfortable 17 dB of SNR.
  auto noisy = chan.apply(iq, Dbm{-95.0});
  auto rx = modem.demodulate(noisy);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, payload_bytes());
}

TEST(BuiltinFskModem, FailsInHeavyNoise) {
  BuiltinFskModem modem;
  MrFskConfig cfg;
  auto iq = modem.modulate(payload_bytes());
  Rng rng{10};
  channel::AwgnChannel chan{cfg.sample_rate(), 6.0, rng};
  auto noisy = chan.apply(iq, Dbm{-125.0});  // far below the FSK floor
  auto rx = modem.demodulate(noisy);
  if (rx) EXPECT_NE(*rx, payload_bytes());
}

TEST(BuiltinFskModem, CorruptedFcsRejected) {
  BuiltinFskModem modem;
  auto iq = modem.modulate(payload_bytes());
  // Invert a chunk of samples mid-payload: flips bits, FCS must catch it.
  for (std::size_t i = iq.size() / 2; i < iq.size() / 2 + 64; ++i)
    iq[i] = std::conj(iq[i]);
  auto rx = modem.demodulate(iq);
  if (rx) EXPECT_NE(*rx, payload_bytes());
}

TEST(BuiltinFskModem, AirtimeAt50kbps) {
  BuiltinFskModem modem;
  // 16 bytes at 50 kb/s = 2.56 ms.
  EXPECT_NEAR(modem.airtime(6).milliseconds(), 2.56, 1e-9);
}

TEST(BuiltinFskModem, EmptyPayloadRoundTrip) {
  BuiltinFskModem modem;
  std::vector<std::uint8_t> empty;
  auto rx = modem.demodulate(modem.modulate(empty));
  ASSERT_TRUE(rx.has_value());
  EXPECT_TRUE(rx->empty());
}

class FskPayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FskPayloadSweep, RoundTripAcrossSizes) {
  BuiltinFskModem modem;
  Rng rng{GetParam()};
  std::vector<std::uint8_t> payload(GetParam());
  for (auto& b : payload) b = rng.next_byte();
  auto rx = modem.demodulate(modem.modulate(payload));
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FskPayloadSweep,
                         ::testing::Values(1, 16, 64, 127, 255));

}  // namespace
}  // namespace tinysdr::radio
