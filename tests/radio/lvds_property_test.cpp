// Property and regression tests for the hardened LVDS word codec:
// truncated final words are rejected (held pending, never emitted),
// invalid sync fields — including both sync bits set — parse to nullopt,
// and the serializer/deserializer pair round-trips under misalignment
// with every fed bit accounted for.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "radio/lvds.hpp"
#include "testkit/gen.hpp"
#include "testkit/property.hpp"

namespace tinysdr::radio {
namespace {

using testkit::check;
namespace gen = testkit::gen;

testkit::Gen<IqWord> iq_word() {
  return gen::tuple_of(gen::int_in(-4096, 4095), gen::int_in(-4096, 4095),
                       gen::boolean(), gen::boolean())
      .map([](const std::tuple<std::int64_t, std::int64_t, bool, bool>& t) {
        return IqWord{static_cast<std::int32_t>(std::get<0>(t)),
                      static_cast<std::int32_t>(std::get<1>(t)),
                      std::get<2>(t), std::get<3>(t)};
      });
}

bool same(const IqWord& a, const IqWord& b) {
  return a.i == b.i && a.q == b.q && a.i_ctrl == b.i_ctrl &&
         a.q_ctrl == b.q_ctrl;
}

// ------------------------------------------------- satellite regression

TEST(LvdsDeframer, TruncatedFinalWordIsRejectedNotEmitted) {
  Framer framer;
  std::vector<IqWord> sent{{100, -200, false, true},
                           {4095, -4096, true, false},
                           {-1, 1, false, false}};
  for (const auto& w : sent) framer.push(w);
  std::vector<bool> bits = framer.bits();
  ASSERT_EQ(bits.size(), 96u);

  // Cut the final word short by 16 bits: the first two words decode, the
  // ragged tail stays pending — never a garbage third word, never UB.
  bits.resize(80);
  Deframer des;
  des.feed(bits);
  auto words = des.take_words();
  ASSERT_EQ(words.size(), 2u);
  EXPECT_TRUE(same(words[0], sent[0]));
  EXPECT_TRUE(same(words[1], sent[1]));
  EXPECT_EQ(des.pending_bits(), 16u);
  EXPECT_EQ(des.slipped_bits(), 0u);
}

TEST(LvdsDeframer, StreamShorterThanOneWordStaysPending) {
  Deframer des;
  for (int b = 0; b < 31; ++b) des.feed(true);
  EXPECT_TRUE(des.take_words().empty());
  EXPECT_EQ(des.pending_bits(), 31u);
}

TEST(LvdsUnpack, RejectsBothSyncBitsSetAndSwappedFields) {
  const std::uint32_t valid = pack_word({100, -100, false, false});
  ASSERT_TRUE(unpack_word(valid).has_value());

  // I_SYNC 0b11 (both bits set) and Q_SYNC 0b11 must both reject.
  // Valid words carry I_SYNC=0b10 in bits 31:30 and Q_SYNC=0b01 in bits
  // 15:14, so the corrupting bits are 30 and 15 respectively.
  EXPECT_FALSE(unpack_word(valid | (1u << 30)).has_value());
  EXPECT_FALSE(unpack_word(valid | (1u << 15)).has_value());
  // Swapped sync fields (I gets 0b01, Q gets 0b10).
  const std::uint32_t swapped =
      (valid & ~((3u << 30) | (3u << 14))) | (1u << 30) | (2u << 14);
  EXPECT_FALSE(unpack_word(swapped).has_value());
  // Idle zeros.
  EXPECT_FALSE(unpack_word(0).has_value());
}

TEST(LvdsPack, OutOfRangeSampleThrows) {
  EXPECT_THROW(pack_word({4096, 0, false, false}), std::out_of_range);
  EXPECT_THROW(pack_word({0, -4097, false, false}), std::out_of_range);
}

// ------------------------------------------------------------ properties

TEST(LvdsProperty, PackUnpackRoundTripsEveryWord) {
  auto result = check(iq_word(), [](const IqWord& w) {
    auto back = unpack_word(pack_word(w));
    return back.has_value() && same(*back, w);
  });
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(LvdsProperty, AnySingleBitFlipIsRejectedOrChangesTheWord) {
  auto g = gen::pair_of(iq_word(), gen::uint_below(32));
  auto result = check(g, [](const std::pair<IqWord, std::uint32_t>& c) {
    const auto& [w, bit] = c;
    auto flipped = unpack_word(pack_word(w) ^ (1u << bit));
    // Sync-field flips reject; data/ctrl flips decode a different word.
    return !flipped.has_value() || !same(*flipped, w);
  });
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(LvdsProperty, CleanStreamsRoundTripWithFullBitAccounting) {
  auto g = gen::vector_of(iq_word(), 2, 0);  // >= 2 words so lock engages
  auto result = check(g, [](const std::vector<IqWord>& sent) {
    Framer framer;
    for (const auto& w : sent) framer.push(w);
    Deframer des;
    des.feed(framer.bits());
    auto words = des.take_words();
    if (words.size() != sent.size()) return false;
    for (std::size_t i = 0; i < words.size(); ++i)
      if (!same(words[i], sent[i])) return false;
    return des.slipped_bits() == 0 && des.pending_bits() == 0;
  });
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(LvdsProperty, AllOnesPrefixSlipsExactlyThenRecoversEveryWord) {
  // A run of idle-high bits before the frame can never alias a sync pair
  // (I_SYNC needs a 0 in its second bit), so the deframer must slip
  // exactly the prefix length and then decode every word.
  auto g = gen::pair_of(gen::uint_below(40),
                        gen::vector_of(iq_word(), 2, 0));
  auto result = check(
      g, [](const std::pair<std::uint32_t, std::vector<IqWord>>& c) {
        const auto& [prefix, sent] = c;
        Framer framer;
        for (const auto& w : sent) framer.push(w);
        std::vector<bool> bits(prefix + 1, true);  // >= 1 junk bit
        bits.insert(bits.end(), framer.bits().begin(), framer.bits().end());

        Deframer des;
        des.feed(bits);
        auto words = des.take_words();
        if (des.slipped_bits() != prefix + 1) return false;
        if (words.size() != sent.size()) return false;
        for (std::size_t i = 0; i < words.size(); ++i)
          if (!same(words[i], sent[i])) return false;
        return des.pending_bits() == 0;
      });
  EXPECT_TRUE(result.ok) << result.message();
}

}  // namespace
}  // namespace tinysdr::radio
