#include "radio/at86rf215.hpp"

#include <gtest/gtest.h>

#include "dsp/nco.hpp"

namespace tinysdr::radio {
namespace {

TEST(BandOf, CoversDatasheetBands) {
  EXPECT_EQ(band_of(Hertz::from_megahertz(433.0)), Band::kSubGhz400);
  EXPECT_EQ(band_of(Hertz::from_megahertz(915.0)), Band::kSubGhz900);
  EXPECT_EQ(band_of(Hertz::from_megahertz(2440.0)), Band::kIsm2400);
  EXPECT_FALSE(band_of(Hertz::from_megahertz(600.0)).has_value());
  EXPECT_FALSE(band_of(Hertz::from_megahertz(5800.0)).has_value());
}

TEST(BandOf, EdgeFrequencies) {
  EXPECT_TRUE(band_of(Hertz::from_megahertz(389.5)).has_value());
  EXPECT_TRUE(band_of(Hertz::from_megahertz(510.0)).has_value());
  EXPECT_TRUE(band_of(Hertz::from_megahertz(779.0)).has_value());
  EXPECT_TRUE(band_of(Hertz::from_megahertz(1020.0)).has_value());
  EXPECT_TRUE(band_of(Hertz::from_megahertz(2400.0)).has_value());
  EXPECT_FALSE(band_of(Hertz::from_megahertz(2484.0)).has_value());
}

TEST(At86rf215, RejectsOutOfBandTuning) {
  At86rf215 radio;
  EXPECT_THROW(radio.set_frequency(Hertz::from_megahertz(1500.0)),
               std::invalid_argument);
}

TEST(At86rf215, RejectsOutOfRangeTxPower) {
  At86rf215 radio;
  EXPECT_THROW(radio.set_tx_power(Dbm{20.0}), std::invalid_argument);
  EXPECT_THROW(radio.set_tx_power(Dbm{-30.0}), std::invalid_argument);
  EXPECT_NO_THROW(radio.set_tx_power(Dbm{14.0}));
}

TEST(At86rf215, StateMachineTransitions) {
  At86rf215 radio;
  EXPECT_EQ(radio.state(), RadioState::kSleep);
  EXPECT_THROW(radio.enter_tx(), std::logic_error);

  Seconds wake = radio.wake();
  EXPECT_NEAR(wake.milliseconds(), 1.2, 1e-9);  // radio setup (Table 4)
  EXPECT_EQ(radio.state(), RadioState::kTrxOff);

  radio.enter_tx();
  EXPECT_EQ(radio.state(), RadioState::kTx);
  Seconds tx_to_rx = radio.enter_rx();
  EXPECT_NEAR(tx_to_rx.microseconds(), 45.0, 1e-6);
  Seconds rx_to_tx = radio.enter_tx();
  EXPECT_NEAR(rx_to_tx.microseconds(), 11.0, 1e-6);
}

TEST(At86rf215, FrequencySwitchTiming) {
  At86rf215 radio;
  radio.wake();
  radio.enter_tx();
  Seconds t = radio.retune(Hertz::from_megahertz(2402.0));
  EXPECT_NEAR(t.microseconds(), 220.0, 1e-6);
  EXPECT_EQ(radio.band(), Band::kIsm2400);
}

TEST(At86rf215, TransitionTimeAccrues) {
  At86rf215 radio;
  radio.wake();
  radio.enter_rx();
  radio.enter_tx();
  radio.retune(Hertz::from_megahertz(916.0));
  EXPECT_GT(radio.transition_time().value(), 0.0012);
}

TEST(At86rf215, SleepPowerIsMicrowatts) {
  At86rf215 radio;
  EXPECT_LT(radio.dc_power().microwatts(), 1.0);
}

TEST(At86rf215, RxPowerMatchesMeasurement) {
  At86rf215 radio;
  radio.wake();
  radio.enter_rx();
  EXPECT_NEAR(radio.dc_power().value(), 59.0, 1e-9);  // §5.2
}

TEST(At86rf215, TxPowerCurveIsMonotone) {
  At86rf215 radio;
  radio.wake();
  radio.enter_tx();
  double prev = 0.0;
  for (double p = -14.0; p <= 14.0; p += 2.0) {
    radio.set_tx_power(Dbm{p});
    double draw = radio.dc_power().value();
    EXPECT_GE(draw, prev);
    prev = draw;
  }
}

TEST(At86rf215, TxFlatBelowKnee) {
  // Paper Fig. 9: "DC power is constant at low RF power".
  At86rf215 radio;
  radio.wake();
  radio.enter_tx();
  radio.set_tx_power(Dbm{-14.0});
  double low = radio.dc_power().value();
  radio.set_tx_power(Dbm{-2.0});
  EXPECT_DOUBLE_EQ(radio.dc_power().value(), low);
}

TEST(At86rf215, TransmitRequiresTxState) {
  At86rf215 radio;
  radio.wake();
  dsp::Samples tone = dsp::generate_tone(0.01, 64);
  EXPECT_THROW((void)radio.transmit(tone), std::logic_error);
  radio.enter_tx();
  EXPECT_NO_THROW((void)radio.transmit(tone));
}

TEST(At86rf215, ReceiveQuantizesButPreservesSignal) {
  At86rf215 radio;
  radio.wake();
  radio.enter_rx();
  auto tone = dsp::generate_tone(0.05, 1024);
  auto rx = radio.receive(tone);
  ASSERT_EQ(rx.size(), tone.size());
  double err = 0.0, sig = 0.0;
  for (std::size_t i = 0; i < tone.size(); ++i) {
    err += std::norm(rx[i] - tone[i]);
    sig += std::norm(tone[i]);
  }
  EXPECT_GT(10.0 * std::log10(sig / err), 55.0);
}

TEST(At86rf215, AgcHandlesWeakSignals) {
  // A signal 60 dB below full scale must survive the ADC thanks to AGC.
  At86rf215 radio;
  radio.wake();
  radio.enter_rx();
  auto tone = dsp::generate_tone(0.05, 1024);
  for (auto& s : tone) s *= 1e-3f;  // -60 dB
  auto rx = radio.receive(tone);
  double err = 0.0, sig = 0.0;
  for (std::size_t i = 0; i < tone.size(); ++i) {
    err += std::norm(rx[i] - tone[i]);
    sig += std::norm(tone[i]);
  }
  EXPECT_GT(10.0 * std::log10(sig / err), 40.0);
}

}  // namespace
}  // namespace tinysdr::radio
