#include "radio/frontend.hpp"

#include <gtest/gtest.h>

namespace tinysdr::radio {
namespace {

TEST(FrontendSpecs, PaperLimits) {
  EXPECT_NEAR(se2435l_spec().max_output.value(), 30.0, 1e-9);
  EXPECT_NEAR(sky66112_spec().max_output.value(), 27.0, 1e-9);
  EXPECT_DOUBLE_EQ(se2435l_spec().sleep_current_ua, 1.0);
  EXPECT_DOUBLE_EQ(sky66112_spec().bypass_current_ua, 280.0);
}

TEST(Frontend, BypassPassesSignalUnchanged) {
  Frontend fe{se2435l_spec()};
  fe.set_mode(FrontendMode::kBypass);
  EXPECT_NEAR(fe.output_power(Dbm{10.0}).value(), 10.0, 1e-9);
}

TEST(Frontend, PaAmplifiesUpToSaturation) {
  Frontend fe{se2435l_spec()};
  fe.set_mode(FrontendMode::kTransmit);
  // 14 dBm radio output + 16 dB gain = 30 dBm = max.
  EXPECT_NEAR(fe.output_power(Dbm{14.0}).value(), 30.0, 1e-9);
  // Beyond saturation it clips at the rated maximum.
  EXPECT_NEAR(fe.output_power(Dbm{20.0}).value(), 30.0, 1e-9);
}

TEST(Frontend, LnaGainOnlyInReceiveMode) {
  Frontend fe{sky66112_spec()};
  fe.set_mode(FrontendMode::kReceive);
  EXPECT_GT(fe.receive_gain_db(), 0.0);
  fe.set_mode(FrontendMode::kBypass);
  EXPECT_DOUBLE_EQ(fe.receive_gain_db(), 0.0);
  fe.set_mode(FrontendMode::kTransmit);
  EXPECT_THROW(fe.receive_gain_db(), std::logic_error);
}

TEST(Frontend, SleepModeRejectsSignal) {
  Frontend fe{se2435l_spec()};
  EXPECT_THROW(fe.output_power(Dbm{0.0}), std::logic_error);
}

TEST(Frontend, SleepPowerIsMicrowatts) {
  Frontend fe{se2435l_spec()};
  fe.set_mode(FrontendMode::kSleep);
  EXPECT_LT(fe.dc_power().microwatts(), 5.0);
}

TEST(Frontend, BypassPowerBelowMilliwatt) {
  Frontend fe{se2435l_spec()};
  fe.set_mode(FrontendMode::kBypass);
  EXPECT_LT(fe.dc_power().value(), 1.0);  // 280 uA * 3.5 V = 0.98 mW
  EXPECT_GT(fe.dc_power().microwatts(), 100.0);
}

TEST(Frontend, TransmitPowerScalesWithOutput) {
  Frontend fe{se2435l_spec()};
  fe.set_mode(FrontendMode::kTransmit);
  double at20 = fe.dc_power(Dbm{20.0}).value();
  double at30 = fe.dc_power(Dbm{30.0}).value();
  EXPECT_GT(at30, at20 * 2.0);  // 10 dB more RF is 10x the RF power
}

TEST(RfSwitch, PathSelection) {
  RfSwitch sw;
  EXPECT_EQ(sw.selected(), RfPath::kIqRadio900);
  sw.select(RfPath::kBackboneTx);
  EXPECT_EQ(sw.selected(), RfPath::kBackboneTx);
  EXPECT_GT(RfSwitch::insertion_loss_db(), 0.0);
  EXPECT_LT(RfSwitch::insertion_loss_db(), 2.0);
}

}  // namespace
}  // namespace tinysdr::radio
