#include "radio/quantizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dsp/nco.hpp"

namespace tinysdr::radio {
namespace {

TEST(IqQuantizer, RejectsBadConfig) {
  EXPECT_THROW(IqQuantizer(1, 1.0f), std::invalid_argument);
  EXPECT_THROW(IqQuantizer(25, 1.0f), std::invalid_argument);
  EXPECT_THROW(IqQuantizer(13, 0.0f), std::invalid_argument);
}

TEST(IqQuantizer, ThirteenBitCodeRange) {
  IqQuantizer q{13, 1.0f};
  EXPECT_EQ(q.max_code(), 4095);
  EXPECT_EQ(q.quantize(1.0f), 4095);
  EXPECT_EQ(q.quantize(-1.0f), -4095);
  EXPECT_EQ(q.quantize(0.0f), 0);
}

TEST(IqQuantizer, SaturatesBeyondFullScale) {
  IqQuantizer q{13, 1.0f};
  EXPECT_EQ(q.quantize(2.0f), 4095);
  EXPECT_EQ(q.quantize(-2.0f), -4096);
}

TEST(IqQuantizer, RoundTripErrorBounded) {
  IqQuantizer q{13, 1.0f};
  Rng rng{5};
  float step = 1.0f / 4095.0f;
  for (int i = 0; i < 1000; ++i) {
    float v = static_cast<float>(rng.next_double() * 2.0 - 1.0);
    float r = q.dequantize(q.quantize(v));
    EXPECT_LE(std::abs(r - v), step / 2.0f + 1e-7f);
  }
}

TEST(IqQuantizer, ComplexPairRoundTrip) {
  IqQuantizer q{13, 1.0f};
  dsp::Complex s{0.5f, -0.25f};
  auto codes = q.quantize(s);
  dsp::Complex r = q.dequantize(codes);
  EXPECT_NEAR(r.real(), 0.5f, 1e-3);
  EXPECT_NEAR(r.imag(), -0.25f, 1e-3);
}

TEST(IqQuantizer, IdealSnrFormula) {
  IqQuantizer q{13, 1.0f};
  EXPECT_NEAR(q.ideal_snr_db(), 6.02 * 13 + 1.76, 1e-9);
}

TEST(IqQuantizer, MeasuredSnrNearIdealForSine) {
  // Quantize a full-scale tone and measure the SNR; it should approach the
  // 6.02*13+1.76 = 80 dB theoretical value.
  IqQuantizer q{13, 1.0f};
  auto tone = tinysdr::dsp::generate_tone(0.01, 8192);
  auto quantized = q.roundtrip(tone);
  double sig = 0.0, err = 0.0;
  for (std::size_t i = 0; i < tone.size(); ++i) {
    sig += std::norm(tone[i]);
    err += std::norm(quantized[i] - tone[i]);
  }
  double snr_db = 10.0 * std::log10(sig / err);
  EXPECT_GT(snr_db, 70.0);
  EXPECT_LT(snr_db, 90.0);
}

class BitDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitDepthSweep, SnrScalesWithBits) {
  int bits = GetParam();
  IqQuantizer q{bits, 1.0f};
  auto tone = tinysdr::dsp::generate_tone(0.013, 4096);
  auto quantized = q.roundtrip(tone);
  double sig = 0.0, err = 0.0;
  for (std::size_t i = 0; i < tone.size(); ++i) {
    sig += std::norm(tone[i]);
    err += std::norm(quantized[i] - tone[i]);
  }
  double snr_db = 10.0 * std::log10(sig / err);
  // Within ~12 dB of ideal (LUT spurs / rounding asymmetry allowed), and
  // monotone with bit depth by construction of the bound below.
  EXPECT_GT(snr_db, q.ideal_snr_db() - 12.0);
}

INSTANTIATE_TEST_SUITE_P(Depths, BitDepthSweep,
                         ::testing::Values(8, 10, 12, 13, 14));

}  // namespace
}  // namespace tinysdr::radio
