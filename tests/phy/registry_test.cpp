// The protocol registry: all five reproduced PHYs are reachable through
// it, each entry's factories build a matching TX/RX pair, and the
// registration rules hold.
#include "phy/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tinysdr::phy {
namespace {

TEST(Registry, BuiltinCarriesAllFiveProtocols) {
  const Registry& r = Registry::builtin();
  ASSERT_EQ(r.size(), kProtocolCount);
  for (Protocol p : {Protocol::kLora, Protocol::kBle, Protocol::kZigbee,
                     Protocol::kSigfox, Protocol::kNbiot}) {
    const RegisteredPhy* e = r.find(p);
    ASSERT_NE(e, nullptr) << protocol_name(p);
    EXPECT_EQ(e->name, protocol_name(p));
    EXPECT_GT(e->max_payload, 0u);
    EXPECT_GT(e->system_noise_figure_db, 0.0);
  }
}

TEST(Registry, FactoriesBuildMatchingPairs) {
  for (const auto& entry : Registry::builtin().entries()) {
    auto tx = entry.make_tx();
    auto rx = entry.make_rx();
    ASSERT_NE(tx, nullptr);
    ASSERT_NE(rx, nullptr);
    EXPECT_EQ(tx->protocol(), entry.id);
    EXPECT_EQ(rx->protocol(), entry.id);
    EXPECT_EQ(tx->max_payload(), entry.max_payload);
    EXPECT_EQ(tx->sample_rate().value(), rx->sample_rate().value());
    EXPECT_GT(tx->sample_rate().value(), 0.0);
  }
}

TEST(Registry, NoiselessLoopbackDeliversEveryProtocol) {
  const std::vector<std::uint8_t> payload{0x54, 0x69, 0x6E, 0x79};
  for (const auto& entry : Registry::builtin().entries()) {
    auto tx = entry.make_tx();
    auto rx = entry.make_rx();
    dsp::Samples wave(entry.pad_samples, dsp::Complex{0.0f, 0.0f});
    tx->modulate(payload, wave);
    wave.insert(wave.end(), entry.pad_samples, dsp::Complex{0.0f, 0.0f});
    FrameResult r = rx->demodulate(wave, payload);
    EXPECT_TRUE(r.frame_ok) << entry.name;
    EXPECT_EQ(r.bit_errors, 0u) << entry.name;
  }
}

TEST(Registry, DuplicateIdThrows) {
  Registry r;
  const auto& lora = Registry::builtin().at(Protocol::kLora);
  r.add(lora);
  EXPECT_THROW(r.add(lora), std::invalid_argument);
  EXPECT_THROW(r.at(Protocol::kBle), std::out_of_range);
  EXPECT_EQ(r.find(Protocol::kBle), nullptr);
}

}  // namespace
}  // namespace tinysdr::phy
