// Golden modulate->AWGN->demodulate vectors for every registered PHY, and
// pinned points from the LinkSimulator-backed figure benches. These pin
// the exact error counts at fixed seeds: any change to a modulator,
// demodulator, channel model, seed derivation or the trial loop shows up
// here as a changed number, not as a silently shifted curve.
#include <gtest/gtest.h>

#include <vector>

#include "phy/ble_phy.hpp"
#include "phy/link_sim.hpp"
#include "phy/lora_phy.hpp"
#include "phy/registry.hpp"

namespace tinysdr::phy {
namespace {

/// One point of the shared engine at the registry defaults.
PointResult golden_point(Protocol protocol, double rssi_dbm,
                         std::uint64_t seed, std::size_t trials,
                         std::size_t payload_bytes) {
  const auto& entry = Registry::builtin().at(protocol);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  TrialPlan plan;
  plan.trials = trials;
  plan.payload_bytes = payload_bytes;
  plan.pad_samples = entry.pad_samples;
  plan.noise_figure_db = entry.system_noise_figure_db;
  plan.base_seed = seed;
  return LinkSimulator{*tx, *rx, plan}.run_point(
      {Dbm{rssi_dbm}, std::nullopt});
}

TEST(GoldenVectors, LoraPacketsNearTheKnee) {
  auto r = golden_point(Protocol::kLora, -122.0, 42, 10, 3);
  EXPECT_EQ(r.frames, 10u);
  EXPECT_EQ(r.frame_errors, 2u);
  EXPECT_EQ(r.bits, 240u);
  EXPECT_EQ(r.bit_errors, 48u);
}

TEST(GoldenVectors, BleBeaconsNearSensitivity) {
  auto r = golden_point(Protocol::kBle, -96.0, 42, 10, 8);
  EXPECT_EQ(r.frames, 10u);
  EXPECT_EQ(r.frame_errors, 7u);
  EXPECT_EQ(r.bits, 1920u);
  EXPECT_EQ(r.bit_errors, 12u);
}

TEST(GoldenVectors, ZigbeeNearTheKnee) {
  auto r = golden_point(Protocol::kZigbee, -98.0, 42, 10, 8);
  EXPECT_EQ(r.frames, 10u);
  EXPECT_EQ(r.frame_errors, 5u);
  EXPECT_EQ(r.bit_errors, 320u);
}

TEST(GoldenVectors, SigfoxNearTheKnee) {
  auto r = golden_point(Protocol::kSigfox, -137.5, 42, 10, 8);
  EXPECT_EQ(r.frames, 10u);
  EXPECT_EQ(r.frame_errors, 4u);
  EXPECT_EQ(r.bit_errors, 256u);
}

TEST(GoldenVectors, NbiotNearTheKnee) {
  auto r = golden_point(Protocol::kNbiot, -127.0, 42, 10, 8);
  EXPECT_EQ(r.frames, 10u);
  EXPECT_EQ(r.frame_errors, 2u);
  EXPECT_EQ(r.bit_errors, 128u);
}

// ------------------------------------------------- bench curve pins
// Each pin replicates the exact TrialPlan of its figure bench at one
// sweep point, so the published curves cannot drift unnoticed.

TEST(BenchCurvePins, Fig10TinySdrBw125) {
  LoraPhyConfig cfg{.params = {8, Hertz::from_kilohertz(125.0)}};
  LoraPacketTx tx{cfg};
  LoraPacketRx rx{cfg};
  TrialPlan plan;
  plan.trials = 60;
  plan.fixed_payload = std::vector<std::uint8_t>{0xA5, 0x5A, 0x3C};
  plan.pad_samples = 300;
  plan.noise_figure_db = kLoraSystemNf;
  plan.base_seed = 2;  // the bench's tinySDR/BW125 sweep seed
  auto r = LinkSimulator{tx, rx, plan}.run_point({Dbm{-122.0}, std::nullopt});
  EXPECT_EQ(r.frame_errors, 26u);
}

TEST(BenchCurvePins, Fig11Bw125SymbolErrors) {
  LoraPhyConfig cfg{.params = {8, Hertz::from_kilohertz(125.0)}};
  LoraSymbolTx tx{cfg};
  LoraSymbolRx rx{cfg};
  TrialPlan plan;
  plan.trials = 4;
  plan.payload_bytes = 150;
  plan.noise_figure_db = kLoraSystemNf;
  plan.base_seed = 101;  // the bench's BW125 sweep seed
  auto r = LinkSimulator{tx, rx, plan}.run_point({Dbm{-126.0}, std::nullopt});
  EXPECT_EQ(r.symbols, 600u);
  EXPECT_EQ(r.symbol_errors, 136u);
}

TEST(BenchCurvePins, Fig12BleBitErrors) {
  BleBeaconTx tx;
  BleBeaconRx rx;
  TrialPlan plan;
  plan.trials = 150;
  plan.fixed_payload = std::vector<std::uint8_t>{
      0x02, 0x01, 0x06, 0x0B, 0xFF, 0x4C, 0x00, 0x02, 0x15, 0xAA, 0xBB};
  plan.noise_figure_db = kBleSystemNf;
  plan.base_seed = 1;
  auto r = LinkSimulator{tx, rx, plan}.run_point({Dbm{-94.0}, std::nullopt});
  EXPECT_EQ(r.bits, 32400u);
  EXPECT_EQ(r.bit_errors, 22u);
}

TEST(BenchCurvePins, Fig15aConcurrentBw125) {
  Hertz fs = Hertz::from_kilohertz(500.0);
  LoraPhyConfig cfg125{.params = {8, Hertz::from_kilohertz(125.0)},
                       .sample_rate = fs};
  LoraPhyConfig cfg250{.params = {8, Hertz::from_kilohertz(250.0)},
                       .sample_rate = fs};
  LoraSymbolTx tx125{cfg125}, tx250{cfg250};
  LoraSymbolRx rx125{cfg125};
  TrialPlan plan;
  plan.trials = 2;
  plan.payload_bytes = 125;
  plan.noise_figure_db = kLoraSystemNf;
  plan.base_seed = 55;  // the bench's concurrent-BW125 sweep seed
  LinkSimulator sim{tx125, rx125, plan};
  sim.set_interferer(tx250);
  auto r = sim.run_point({Dbm{-124.0}, Dbm{-124.0}});
  EXPECT_EQ(r.symbols, 250u);
  EXPECT_EQ(r.symbol_errors, 129u);
}

TEST(BenchCurvePins, Fig15bInterferenceSweepPoint) {
  Hertz fs = Hertz::from_kilohertz(500.0);
  LoraPhyConfig cfg125{.params = {8, Hertz::from_kilohertz(125.0)},
                       .sample_rate = fs};
  LoraPhyConfig cfg250{.params = {8, Hertz::from_kilohertz(250.0)},
                       .sample_rate = fs};
  LoraSymbolTx tx125{cfg125}, tx250{cfg250};
  LoraSymbolRx rx125{cfg125};
  TrialPlan plan;
  plan.trials = 2;
  plan.payload_bytes = 125;
  plan.noise_figure_db = kLoraSystemNf;
  plan.base_seed = 77;  // the bench's sweep seed
  LinkSimulator sim{tx125, rx125, plan};
  sim.set_interferer(tx250);
  auto r = sim.run_point({Dbm{-123.0}, Dbm{-110.0}});
  EXPECT_EQ(r.symbol_errors, 106u);
}

}  // namespace
}  // namespace tinysdr::phy
