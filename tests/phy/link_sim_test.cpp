// LinkSimulator determinism contract: results are byte-identical across
// thread counts, a point's trials are independent of the sweep grid, and
// the deterministic telemetry counters agree with the results.
#include "phy/link_sim.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "phy/lora_phy.hpp"
#include "phy/registry.hpp"

namespace tinysdr::phy {
namespace {

TrialPlan symbol_plan(std::uint64_t seed) {
  TrialPlan plan;
  plan.trials = 2;
  plan.payload_bytes = 40;
  plan.noise_figure_db = kLoraSystemNf;
  plan.base_seed = seed;
  return plan;
}

TEST(LinkSimulator, ByteIdenticalAcrossThreadCounts) {
  LoraPhyConfig cfg;
  LoraSymbolTx tx{cfg};
  LoraSymbolRx rx{cfg};
  LinkSimulator sim{tx, rx, symbol_plan(9)};

  std::vector<double> grid;
  for (double rssi = -132.0; rssi <= -118.0; rssi += 2.0)
    grid.push_back(rssi);

  auto run = [&](const exec::ExecPolicy& policy) {
    obs::Registry registry;
    obs::MetricsSession session{registry};
    auto results = sim.sweep_rssi(grid, policy);
    return std::pair{results,
                     registry.counter("phy.lora.symbol_errors").value()};
  };

  auto [serial, serial_errors] = run(exec::ExecPolicy::serial());
  ASSERT_EQ(serial.size(), grid.size());
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    auto [parallel, parallel_errors] =
        run(exec::ExecPolicy::with_threads(threads));
    EXPECT_EQ(parallel, serial) << "results diverged at threads=" << threads;
    EXPECT_EQ(parallel_errors, serial_errors)
        << "telemetry diverged at threads=" << threads;
  }
}

TEST(LinkSimulator, PointIndependentOfSweepGrid) {
  LoraPhyConfig cfg;
  LoraSymbolTx tx{cfg};
  LoraSymbolRx rx{cfg};
  LinkSimulator sim{tx, rx, symbol_plan(11)};

  const std::vector<double> narrow{-124.0};
  const std::vector<double> wide{-130.0, -127.0, -124.0, -121.0};
  auto alone = sim.sweep_rssi(narrow);
  auto in_grid = sim.sweep_rssi(wide);
  ASSERT_EQ(alone.size(), 1u);
  ASSERT_EQ(in_grid.size(), 4u);
  EXPECT_EQ(alone[0], in_grid[2])
      << "a point's trials must not depend on its neighbours";
}

TEST(LinkSimulator, PointSeedIsPureInBaseAndRssi) {
  EXPECT_EQ(LinkSimulator::point_seed(1, -124.0),
            LinkSimulator::point_seed(1, -124.0));
  EXPECT_NE(LinkSimulator::point_seed(1, -124.0),
            LinkSimulator::point_seed(2, -124.0));
  EXPECT_NE(LinkSimulator::point_seed(1, -124.0),
            LinkSimulator::point_seed(1, -122.0));
}

TEST(LinkSimulator, CountersMatchResults) {
  const auto& entry = Registry::builtin().at(Protocol::kBle);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  TrialPlan plan;
  plan.trials = 5;
  plan.payload_bytes = 8;
  plan.noise_figure_db = entry.system_noise_figure_db;
  plan.base_seed = 3;
  LinkSimulator sim{*tx, *rx, plan};

  obs::Registry registry;
  obs::MetricsSession session{registry};
  auto result = sim.run_point({Dbm{-96.0}, std::nullopt});
  EXPECT_EQ(result.frames, plan.trials);
  EXPECT_EQ(registry.counter("phy.ble.trials").value(),
            static_cast<double>(result.frames));
  EXPECT_EQ(registry.counter("phy.ble.frame_errors").value(),
            static_cast<double>(result.frame_errors));
  EXPECT_EQ(registry.counter("phy.ble.bit_errors").value(),
            static_cast<double>(result.bit_errors));
}

// Regression: growing the impairment-chain slot must not perturb the
// engine when the chain is empty. These PointResults were captured on the
// tree *before* the chain existed; any drift here means run_point() is no
// longer byte-identical to its pre-impairment self.
TEST(LinkSimulator, EmptyImpairmentChainPreservesHistoricResults) {
  struct Golden {
    const char* phy;
    double rssi_dbm;
    std::uint64_t frames, frame_errors, bits, bit_errors, symbols,
        symbol_errors;
  };
  constexpr Golden kGolden[] = {
      {"lora", -120.0, 6u, 1u, 576u, 96u, 0u, 0u},
      {"ble", -95.0, 6u, 1u, 1344u, 1u, 0u, 0u},
      {"zigbee", -94.0, 6u, 0u, 576u, 0u, 0u, 0u},
      {"sigfox", -130.0, 6u, 0u, 576u, 0u, 0u, 0u},
      {"nbiot", -128.0, 6u, 5u, 576u, 480u, 0u, 0u},
  };
  for (const auto& g : kGolden) {
    const RegisteredPhy* entry = Registry::builtin().find_by_name(g.phy);
    ASSERT_NE(entry, nullptr) << g.phy;
    auto tx = entry->make_tx();
    auto rx = entry->make_rx();
    TrialPlan plan;
    plan.trials = 6;
    plan.payload_bytes = 12;
    plan.pad_samples = entry->pad_samples;
    plan.noise_figure_db = entry->system_noise_figure_db;
    plan.base_seed = 0xF00D;
    LinkSimulator sim{*tx, *rx, plan};
    EXPECT_TRUE(sim.impairments().empty()) << g.phy;
    const PointResult r = sim.run_point({Dbm{g.rssi_dbm}, std::nullopt});
    EXPECT_EQ(r.frames, g.frames) << g.phy;
    EXPECT_EQ(r.frame_errors, g.frame_errors) << g.phy;
    EXPECT_EQ(r.bits, g.bits) << g.phy;
    EXPECT_EQ(r.bit_errors, g.bit_errors) << g.phy;
    EXPECT_EQ(r.symbols, g.symbols) << g.phy;
    EXPECT_EQ(r.symbol_errors, g.symbol_errors) << g.phy;
  }
}

TEST(LinkSimulator, InterfererDegradesTheWeakLink) {
  Hertz fs = Hertz::from_kilohertz(500.0);
  LoraPhyConfig cfg125{.params = {8, Hertz::from_kilohertz(125.0)},
                       .sample_rate = fs};
  LoraPhyConfig cfg250{.params = {8, Hertz::from_kilohertz(250.0)},
                       .sample_rate = fs};
  LoraSymbolTx tx125{cfg125}, tx250{cfg250};
  LoraSymbolRx rx125{cfg125};

  TrialPlan plan = symbol_plan(13);
  plan.trials = 4;
  LinkSimulator sim{tx125, rx125, plan};
  sim.set_interferer(tx250);

  // Same signal point with a negligible vs a dominant interferer: the
  // shared point seed means identical symbols and noise, so any SER gap
  // is the interferer's doing.
  auto quiet = sim.run_point({Dbm{-122.0}, Dbm{-160.0}});
  auto loud = sim.run_point({Dbm{-122.0}, Dbm{-100.0}});
  EXPECT_GT(loud.symbol_errors, quiet.symbol_errors);
}

}  // namespace
}  // namespace tinysdr::phy
