// Metamorphic properties over every PHY in Registry::builtin():
// clean-channel payload round-trip, pad-invariance for synchronising
// receivers, point-seed purity, and serial-vs-threaded byte identity of
// both sweep results and merged telemetry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "exec/seed.hpp"
#include "obs/metrics.hpp"
#include "phy/link_sim.hpp"
#include "phy/registry.hpp"
#include "testkit/gen.hpp"
#include "testkit/property.hpp"

namespace tinysdr::phy {
namespace {

using testkit::check;
using testkit::PropertyConfig;
namespace gen = testkit::gen;

const RegisteredPhy& entry_at(std::uint32_t index) {
  const auto& entries = Registry::builtin().entries();
  return entries[index % entries.size()];
}

// Clamp a generated payload to the entry's limits, never empty.
std::vector<std::uint8_t> clamp_payload(std::vector<std::uint8_t> payload,
                                        const RegisteredPhy& entry) {
  if (payload.empty()) payload.push_back(0x7E);
  if (payload.size() > entry.max_payload) payload.resize(entry.max_payload);
  return payload;
}

TEST(PhyProperty, EveryPhyRoundTripsEveryPayloadOnACleanChannel) {
  auto g = gen::pair_of(gen::uint_below(kProtocolCount), gen::bytes(1, 16));
  PropertyConfig cfg = PropertyConfig::from_env();
  cfg.cases = 60;  // each case modulates + demodulates a full frame
  auto result = check(
      g,
      [](const std::pair<std::uint32_t, std::vector<std::uint8_t>>& c) {
        const RegisteredPhy& entry = entry_at(c.first);
        auto payload = clamp_payload(c.second, entry);
        auto tx = entry.make_tx();
        auto rx = entry.make_rx();
        dsp::Samples wave(entry.pad_samples, dsp::Complex{0.0f, 0.0f});
        tx->modulate(payload, wave);
        wave.insert(wave.end(), entry.pad_samples, dsp::Complex{0.0f, 0.0f});
        FrameResult r = rx->demodulate(wave, payload);
        return r.frame_ok && r.bit_errors == 0;
      },
      cfg);
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(PhyProperty, SynchronisingReceiversArePadInvariant) {
  // Extra zero padding around the frame must not change the decode for
  // any PHY that hunts for its preamble (pad_samples > 0).
  std::vector<const RegisteredPhy*> hunting;
  for (const auto& entry : Registry::builtin().entries())
    if (entry.pad_samples > 0) hunting.push_back(&entry);
  ASSERT_FALSE(hunting.empty());  // LoRa at minimum

  auto g = gen::tuple_of(gen::uint_below(64), gen::uint_below(200),
                         gen::bytes(1, 8));
  PropertyConfig cfg = PropertyConfig::from_env();
  cfg.cases = 20;
  for (const RegisteredPhy* entry : hunting) {
    auto result = check(
        g,
        [entry](const std::tuple<std::uint32_t, std::uint32_t,
                                 std::vector<std::uint8_t>>& c) {
          const auto& [idx, extra, raw] = c;
          (void)idx;
          auto payload = clamp_payload(raw, *entry);
          auto tx = entry->make_tx();
          auto rx = entry->make_rx();
          dsp::Samples wave(entry->pad_samples + extra,
                            dsp::Complex{0.0f, 0.0f});
          tx->modulate(payload, wave);
          wave.insert(wave.end(), entry->pad_samples + extra,
                      dsp::Complex{0.0f, 0.0f});
          FrameResult r = rx->demodulate(wave, payload);
          return r.frame_ok && r.bit_errors == 0;
        },
        cfg, entry->name + " pad invariance");
    EXPECT_TRUE(result.ok) << result.message();
  }
}

TEST(PhyProperty, PointSeedIsPureInBaseAndRssiAlone) {
  auto g = gen::pair_of(gen::uint_below(1u << 30),
                        gen::int_in(-150, -40));
  auto result = check(
      g, [](const std::pair<std::uint32_t, std::int64_t>& c) {
        const double rssi = static_cast<double>(c.second);
        auto a = LinkSimulator::point_seed(c.first, rssi);
        auto b = LinkSimulator::point_seed(c.first, rssi);
        // Pure, and sensitive to both arguments.
        return a == b &&
               a != LinkSimulator::point_seed(c.first + 1, rssi) &&
               a != LinkSimulator::point_seed(c.first, rssi + 0.5);
      });
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(PhyProperty, SweepIsByteIdenticalAcrossThreadCountsWithTelemetry) {
  const RegisteredPhy& entry = Registry::builtin().at(Protocol::kBle);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  TrialPlan plan;
  plan.trials = 6;
  plan.payload_bytes = 8;
  plan.noise_figure_db = entry.system_noise_figure_db;
  plan.base_seed = 77;
  LinkSimulator sim{*tx, *rx, plan};

  std::vector<SweepPoint> points;
  for (double rssi = -104.0; rssi <= -88.0; rssi += 4.0)
    points.push_back({Dbm{rssi}, std::nullopt});

  auto run = [&](std::size_t threads) {
    obs::Registry registry;
    obs::MetricsSession session{registry};
    auto results = sim.sweep(points, exec::ExecPolicy::with_threads(threads));
    auto snapshot = registry.snapshot();
    // Timing histograms ("*.demod_us" from LinkSimulator, "prof.*.us"
    // from the demodulators) are wall-clock and excluded from the
    // identity contract.
    for (auto it = snapshot.histograms.begin();
         it != snapshot.histograms.end();) {
      if (it->first.ends_with("_us") || it->first.ends_with(".us"))
        it = snapshot.histograms.erase(it);
      else
        ++it;
    }
    return std::make_pair(std::move(results), std::move(snapshot));
  };

  auto [serial_results, serial_metrics] = run(1);
  for (std::size_t threads : {2u, 4u}) {
    auto [threaded_results, threaded_metrics] = run(threads);
    EXPECT_EQ(threaded_results, serial_results)
        << "results diverged at --threads " << threads;
    EXPECT_EQ(threaded_metrics, serial_metrics)
        << "telemetry diverged at --threads " << threads;
    EXPECT_EQ(threaded_metrics.json(), serial_metrics.json())
        << "telemetry JSON not byte-identical at --threads " << threads;
  }
}

TEST(PhyProperty, SweepPointResultsAreGridIndependent) {
  const RegisteredPhy& entry = Registry::builtin().at(Protocol::kZigbee);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  TrialPlan plan;
  plan.trials = 4;
  plan.payload_bytes = 6;
  plan.base_seed = 5;
  LinkSimulator sim{*tx, *rx, plan};

  std::vector<SweepPoint> grid{{Dbm{-97.0}, std::nullopt},
                               {Dbm{-94.0}, std::nullopt},
                               {Dbm{-91.0}, std::nullopt}};
  auto full = sim.sweep(grid, exec::ExecPolicy::serial());

  // The same point alone, or in a reordered grid, yields identical
  // results — a point's trials depend on (base seed, rssi) only.
  std::vector<SweepPoint> reversed{grid.rbegin(), grid.rend()};
  auto rev = sim.sweep(reversed, exec::ExecPolicy::serial());
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_EQ(full[i], rev[grid.size() - 1 - i]) << "point " << i;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::vector<SweepPoint> solo{grid[i]};
    auto one = sim.sweep(solo, exec::ExecPolicy::serial());
    EXPECT_EQ(one[0], full[i]) << "point " << i;
  }
}

}  // namespace
}  // namespace tinysdr::phy
