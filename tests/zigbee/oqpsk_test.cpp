#include "zigbee/oqpsk.hpp"

#include <gtest/gtest.h>

#include "channel/noise.hpp"
#include "common/rng.hpp"

namespace tinysdr::zigbee {
namespace {

std::vector<std::uint8_t> psdu_bytes() {
  return {0x41, 0x88, 0x01, 0x22, 0x00, 0xFF, 0xFF, 0x42};
}

TEST(ChipTable, SixteenUniqueSequences) {
  const auto& table = chip_table();
  for (std::size_t a = 0; a < 16; ++a)
    for (std::size_t b = a + 1; b < 16; ++b)
      EXPECT_NE(table[a], table[b]) << a << " vs " << b;
}

TEST(ChipTable, Symbol0IsStandardBaseSequence) {
  EXPECT_EQ(chip_table()[0], 0x744AC39Bu);
}

TEST(ChipTable, QuasiOrthogonalDistances) {
  // The standard family's pairwise Hamming distances are large (>= 12),
  // which is what gives the DSSS processing gain.
  const auto& table = chip_table();
  for (std::size_t a = 0; a < 16; ++a)
    for (std::size_t b = a + 1; b < 16; ++b) {
      int d = __builtin_popcount(table[a] ^ table[b]);
      EXPECT_GE(d, 12) << a << " vs " << b;
    }
}

TEST(ChipTable, ChipsForRoundTrip) {
  for (std::uint8_t s = 0; s < 16; ++s) {
    auto chips = chips_for(s);
    auto [decided, dist] = nearest_symbol(chips);
    EXPECT_EQ(decided, s);
    EXPECT_EQ(dist, 0);
  }
  EXPECT_THROW(chips_for(16), std::invalid_argument);
}

TEST(ChipTable, SingleChipErrorsCorrected) {
  // Distance >= 12 means up to 5 chip errors always decode correctly.
  Rng rng{3};
  for (int trial = 0; trial < 50; ++trial) {
    auto s = static_cast<std::uint8_t>(rng.next_below(16));
    auto chips = chips_for(s);
    for (int e = 0; e < 5; ++e)
      chips[rng.next_below(kChipsPerSymbol)] ^= true;
    // (duplicate flips can cancel; decision must still be correct)
    EXPECT_EQ(nearest_symbol(chips).first, s);
  }
}

TEST(Fcs16, KnownVector) {
  // ITU CRC-16 (KERMIT family, init 0): "123456789" -> 0x6F91 with this
  // reflected form? Compute a self-consistency + linearity check instead:
  // appending the FCS little-endian and re-running must give 0x0000 after
  // the standard magic check — verify via explicit recompute.
  std::vector<std::uint8_t> data{'1', '2', '3'};
  std::uint16_t fcs = fcs16(data);
  auto with = data;
  with.push_back(static_cast<std::uint8_t>(fcs & 0xFF));
  with.push_back(static_cast<std::uint8_t>(fcs >> 8));
  EXPECT_EQ(fcs16(with), 0x0000);
}

TEST(Fcs16, DetectsBitFlips) {
  auto psdu = psdu_bytes();
  std::uint16_t good = fcs16(psdu);
  for (std::size_t i = 0; i < psdu.size(); ++i) {
    auto bad = psdu;
    bad[i] ^= 0x10;
    EXPECT_NE(fcs16(bad), good);
  }
}

TEST(OqpskModem, FrameSymbolLayout) {
  OqpskModem modem;
  auto symbols = modem.frame_symbols(psdu_bytes());
  // (4 preamble + 1 SFD + 1 PHR + 8 PSDU + 2 FCS) * 2 nibbles.
  EXPECT_EQ(symbols.size(), 32u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(symbols[static_cast<std::size_t>(i)], 0x0);
  EXPECT_EQ(symbols[8], 0x7);  // SFD low nibble first
  EXPECT_EQ(symbols[9], 0xA);
}

TEST(OqpskModem, RejectsOversizePsdu) {
  OqpskModem modem;
  EXPECT_THROW(modem.frame_symbols(std::vector<std::uint8_t>(126, 0)),
               std::invalid_argument);
}

TEST(OqpskModem, WaveformNearConstantEnvelope) {
  // Half-sine O-QPSK is MSK-like: envelope ripple stays small.
  OqpskModem modem;
  auto iq = modem.modulate(psdu_bytes());
  double min_mag = 1e9, max_mag = 0.0;
  // Skip the ramp-in/out where only one rail is active.
  for (std::size_t i = 8; i + 8 < iq.size(); ++i) {
    double m = std::abs(iq[i]);
    min_mag = std::min(min_mag, m);
    max_mag = std::max(max_mag, m);
  }
  EXPECT_GT(min_mag, 0.6);
  EXPECT_LT(max_mag, 1.5);
}

TEST(OqpskModem, CleanLoopback) {
  OqpskModem modem;
  auto iq = modem.modulate(psdu_bytes());
  auto rx = modem.demodulate(iq);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, psdu_bytes());
}

TEST(OqpskModem, LoopbackWithArbitraryPadding) {
  OqpskModem modem;
  auto iq = modem.modulate(psdu_bytes());
  for (std::size_t pad : {1ul, 3ul, 7ul, 10ul}) {
    dsp::Samples padded(pad, dsp::Complex{0, 0});
    padded.insert(padded.end(), iq.begin(), iq.end());
    padded.insert(padded.end(), 16, dsp::Complex{0, 0});
    auto rx = modem.demodulate(padded);
    ASSERT_TRUE(rx.has_value()) << "pad " << pad;
    EXPECT_EQ(*rx, psdu_bytes()) << "pad " << pad;
  }
}

TEST(OqpskModem, LoopbackUnderNoise) {
  // DSSS processing gain: decodes comfortably at moderate RSSI. Noise
  // floor over 4 MHz ~ -102 dBm; 802.15.4 sensitivity spec is -85 dBm.
  OqpskModem modem;
  OqpskConfig cfg;
  auto iq = modem.modulate(psdu_bytes());
  Rng rng{7};
  channel::AwgnChannel chan{cfg.sample_rate(), 6.0, rng};
  auto noisy = chan.apply(iq, Dbm{-85.0});
  auto rx = modem.demodulate(noisy);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, psdu_bytes());
}

TEST(OqpskModem, FailsDeepBelowSensitivity) {
  OqpskModem modem;
  OqpskConfig cfg;
  auto iq = modem.modulate(psdu_bytes());
  Rng rng{8};
  channel::AwgnChannel chan{cfg.sample_rate(), 6.0, rng};
  auto noisy = chan.apply(iq, Dbm{-110.0});
  auto rx = modem.demodulate(noisy);
  if (rx) EXPECT_NE(*rx, psdu_bytes());
}

TEST(OqpskModem, AirtimeAt250kbps) {
  OqpskModem modem;
  // 16-byte PPDU = 32 symbols / 62.5k = 512 us.
  EXPECT_NEAR(modem.airtime(8).microseconds(), 512.0, 1e-6);
}

TEST(OqpskModem, RunsAtRadioSampleRate) {
  // 2 samples/chip at 2 Mchip/s = the AT86RF215's 4 MHz I/Q rate.
  OqpskConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.sample_rate().value(), 4e6);
}

class PsduSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PsduSweep, RoundTripSizes) {
  OqpskModem modem;
  Rng rng{GetParam()};
  std::vector<std::uint8_t> psdu(GetParam());
  for (auto& b : psdu) b = rng.next_byte();
  auto rx = modem.demodulate(modem.modulate(psdu));
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, psdu);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PsduSweep,
                         ::testing::Values(0, 1, 20, 64, 123));

}  // namespace
}  // namespace tinysdr::zigbee
