// Adversarial scenario pack: RF jammers plugged into the link simulator,
// scripted OTA-protocol attackers, the anti-rollback ratchet, the
// coexistence matrix, and the determinism contract of attacked campaigns.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "adversary/coexistence.hpp"
#include "adversary/jammer.hpp"
#include "adversary/ota_attacker.hpp"
#include "exec/policy.hpp"
#include "obs/metrics.hpp"
#include "phy/link_sim.hpp"
#include "phy/lora_phy.hpp"
#include "phy/registry.hpp"
#include "testbed/campaign.hpp"

namespace tinysdr::adversary {
namespace {

// ------------------------------------------------------------ jammers

phy::LoraPhyConfig test_lora_config() {
  return {.params = {7, Hertz::from_kilohertz(125.0)},
          .sample_rate = Hertz::from_kilohertz(125.0)};
}

phy::TrialPlan small_plan(std::uint64_t seed) {
  phy::TrialPlan plan;
  plan.trials = 4;
  plan.payload_bytes = 8;
  plan.noise_figure_db = phy::kLoraSystemNf;
  plan.base_seed = seed;
  return plan;
}

TEST(Jammer, ReactiveTriggersOnSignalAndStaysQuietOnSilence) {
  ReactiveJammer jammer{{}};
  Rng rng{1, 2};
  dsp::Samples out;

  // Silence: never triggers, emits nothing.
  dsp::Samples silence(512, dsp::Complex{0.0f, 0.0f});
  jammer.emit(silence, out, rng);
  EXPECT_TRUE(out.empty());

  // A unit-power burst: triggers, and the burst starts only after the
  // detection window plus the reaction latency (zeros before that).
  dsp::Samples signal(1024, dsp::Complex{1.0f, 0.0f});
  jammer.emit(signal, out, rng);
  ASSERT_EQ(out.size(), signal.size());
  const std::size_t quiet =
      jammer.config().detect_window + jammer.config().reaction_latency;
  for (std::size_t n = 0; n < quiet; ++n)
    EXPECT_EQ(std::norm(out[n]), 0.0f) << "sample " << n;
  // Past the reaction point the jammer is loud.
  double energy = 0.0;
  for (std::size_t n = quiet; n < out.size(); ++n) energy += std::norm(out[n]);
  EXPECT_GT(energy / static_cast<double>(out.size() - quiet), 0.1);
}

TEST(Jammer, ReactiveHonoursBurstLength) {
  ReactiveJammerConfig cfg;
  cfg.burst_samples = 100;
  ReactiveJammer jammer{cfg};
  Rng rng{3, 4};
  dsp::Samples signal(2048, dsp::Complex{1.0f, 0.0f});
  dsp::Samples out;
  jammer.emit(signal, out, rng);
  const std::size_t start = cfg.detect_window + cfg.reaction_latency;
  ASSERT_EQ(out.size(), start + cfg.burst_samples);
  EXPECT_GT(std::norm(out.back()), 0.0f);
}

TEST(Jammer, EmissionsAreSeedDeterministic) {
  dsp::Samples signal(600, dsp::Complex{1.0f, 0.0f});
  for (auto make : {0, 1, 2}) {
    dsp::Samples a, b;
    Rng ra{77, 5}, rb{77, 5};
    if (make == 0) {
      ReactiveJammer j{{}};
      j.emit(signal, a, ra);
      j.emit(signal, b, rb);
    } else if (make == 1) {
      SweepJammer j{{}};
      j.emit(signal, a, ra);
      j.emit(signal, b, rb);
    } else {
      PulsedJammer j{{}};
      j.emit(signal, a, ra);
      j.emit(signal, b, rb);
    }
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t n = 0; n < a.size(); ++n) EXPECT_EQ(a[n], b[n]);
  }
}

TEST(Jammer, PulsedRespectsDutyCycle) {
  PulsedJammerConfig cfg;
  cfg.period_samples = 100;
  cfg.duty = 0.25;
  PulsedJammer jammer{cfg};
  Rng rng{9, 1};
  dsp::Samples signal(10000, dsp::Complex{1.0f, 0.0f});
  dsp::Samples out;
  jammer.emit(signal, out, rng);
  ASSERT_EQ(out.size(), signal.size());
  std::size_t active = 0;
  for (const auto& s : out)
    if (std::norm(s) > 0.0f) ++active;
  // 25% duty over 100 periods.
  EXPECT_NEAR(static_cast<double>(active) / 10000.0, 0.25, 0.02);
}

TEST(Jammer, SweepEmitsUnitPowerChirp) {
  SweepJammer jammer{{}};
  Rng rng{4, 2};
  dsp::Samples signal(4096, dsp::Complex{1.0f, 0.0f});
  dsp::Samples out;
  jammer.emit(signal, out, rng);
  ASSERT_EQ(out.size(), signal.size());
  for (std::size_t n = 0; n < out.size(); n += 512)
    EXPECT_NEAR(std::norm(out[n]), 1.0f, 1e-4);
}

TEST(Jammer, SyncJammerHitsOnlyThePreambleWindow) {
  SyncJammerConfig cfg;
  cfg.preamble_samples = 256;
  cfg.reaction_latency = 16;
  SyncJammer jammer{cfg};
  Rng rng{8, 3};

  // Silence: never keys up.
  dsp::Samples out;
  dsp::Samples silence(512, dsp::Complex{0.0f, 0.0f});
  jammer.emit(silence, out, rng);
  EXPECT_TRUE(out.empty());

  // A frame with a 500-sample silent pad: the jam burst covers exactly
  // the sync window [onset + latency, onset + preamble_samples) and the
  // payload region after it is untouched (emission ends early — the
  // simulator pads missing tail samples with silence).
  dsp::Samples signal(500, dsp::Complex{0.0f, 0.0f});
  signal.resize(4096, dsp::Complex{1.0f, 0.0f});
  jammer.emit(signal, out, rng);
  const std::size_t onset = 500;
  ASSERT_EQ(out.size(), onset + cfg.preamble_samples);
  for (std::size_t n = 0; n < onset + cfg.reaction_latency; ++n)
    ASSERT_EQ(std::norm(out[n]), 0.0f) << "sample " << n;
  double energy = 0.0;
  for (std::size_t n = onset + cfg.reaction_latency; n < out.size(); ++n)
    energy += std::norm(out[n]);
  EXPECT_GT(energy / static_cast<double>(cfg.preamble_samples -
                                         cfg.reaction_latency),
            0.1);

  // Same seed, same burst — byte-determinism like every other jammer.
  dsp::Samples a, b;
  Rng ra{77, 5}, rb{77, 5};
  jammer.emit(signal, a, ra);
  jammer.emit(signal, b, rb);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t n = 0; n < a.size(); ++n) EXPECT_EQ(a[n], b[n]);
}

TEST(Jammer, SyncJammerDegradesLinkWithTinyDutyCycle) {
  // Preamble-only jamming at +10 dB breaks the LoRa link even though the
  // jammer is on for a small fraction of the frame, and the jam-sample
  // counter proves the low duty cycle.
  auto cfg = test_lora_config();
  phy::LoraSymbolTx tx{cfg};
  phy::LoraSymbolRx rx{cfg};

  SyncJammerConfig jam_cfg;
  jam_cfg.preamble_samples = 2048;  // covers the sync region at SF7
  SyncJammer jammer{jam_cfg};

  obs::Registry registry;
  obs::MetricsSession session{registry};
  phy::LinkSimulator clean{tx, rx, small_plan(0xC1EA)};
  auto clean_result = clean.run_point({Dbm{-110.0}, std::nullopt});
  EXPECT_EQ(clean_result.frame_errors, 0u);

  phy::LinkSimulator attacked{tx, rx, small_plan(0xC1EA)};
  attacked.add_interferer(jammer, Dbm{-100.0});
  auto jammed = attacked.run_point({Dbm{-110.0}, std::nullopt});
  EXPECT_GT(jammed.frame_errors + jammed.symbol_errors, 0u);

  const std::string json = registry.json();
  EXPECT_NE(json.find("adversary.sync_triggers"), std::string::npos);
  EXPECT_NE(json.find("adversary.jam_samples"), std::string::npos);
}

// ------------------------------------------- link simulator integration

TEST(JammerLink, StrongJammerDegradesLinkDeterministically) {
  auto cfg = test_lora_config();
  phy::LoraSymbolTx tx{cfg};
  phy::LoraSymbolRx rx{cfg};

  // A comfortable RSSI where the clean link is error-free.
  const double rssi = -110.0;
  auto run = [&](const phy::Interferer* jammer, std::optional<Dbm> power) {
    phy::LinkSimulator sim{tx, rx, small_plan(0x1AA5)};
    if (jammer != nullptr) sim.add_interferer(*jammer, power);
    return sim.run_point({Dbm{rssi}, std::nullopt});
  };

  auto clean = run(nullptr, std::nullopt);
  EXPECT_EQ(clean.symbol_errors, 0u);

  // Jammer 10 dB above the signal: the link must degrade.
  PulsedJammerConfig cfg_pulsed;
  cfg_pulsed.duty = 1.0;
  PulsedJammer jammer{cfg_pulsed};
  auto jammed = run(&jammer, Dbm{rssi + 10.0});
  EXPECT_GT(jammed.symbol_errors, 0u);

  // And identically on replay.
  auto replay = run(&jammer, Dbm{rssi + 10.0});
  EXPECT_EQ(jammed, replay);
}

TEST(JammerLink, FixedPowerSlotIsSilentWithoutPowerOrPoint) {
  auto cfg = test_lora_config();
  phy::LoraSymbolTx tx{cfg};
  phy::LoraSymbolRx rx{cfg};
  PulsedJammer jammer{{}};

  // No fixed power and no interferer_rssi at the point: slot stays silent,
  // results match the clean link exactly.
  phy::LinkSimulator clean{tx, rx, small_plan(123)};
  phy::LinkSimulator armed{tx, rx, small_plan(123)};
  armed.add_interferer(jammer);  // power comes from the point... which has none
  EXPECT_EQ(armed.interferer_count(), 1u);
  EXPECT_EQ(clean.run_point({Dbm{-112.0}, std::nullopt}),
            armed.run_point({Dbm{-112.0}, std::nullopt}));
}

TEST(JammerLink, SetInterfererWrapperMatchesExplicitFirstSlot) {
  // set_interferer(tx) must be exactly add_interferer(PhyTxInterferer)
  // in slot 0 — the byte-compat contract for the legacy Fig. 15 path.
  auto cfg = test_lora_config();
  phy::LoraSymbolTx tx{cfg}, itx{cfg};
  phy::LoraSymbolRx rx{cfg};

  phy::LinkSimulator legacy{tx, rx, small_plan(55)};
  legacy.set_interferer(itx);

  phy::LinkSimulator explicit_slot{tx, rx, small_plan(55)};
  phy::PhyTxInterferer adapter{itx, explicit_slot.plan().payload_bytes};
  explicit_slot.add_interferer(adapter);

  const phy::SweepPoint point{Dbm{-112.0}, Dbm{-112.0}};
  EXPECT_EQ(legacy.run_point(point), explicit_slot.run_point(point));
}

/// An interferer that never keys up (empty emission).
struct SilentInterferer final : phy::Interferer {
  void emit(std::span<const dsp::Complex>, dsp::Samples&, Rng&) const
      override {}
};

TEST(JammerLink, AddingSecondInterfererKeepsFirstSlotStream) {
  // Slot 0 keeps the historical RNG stream: attaching a second interferer
  // that emits nothing must not perturb the single-interferer result.
  auto cfg = test_lora_config();
  phy::LoraSymbolTx tx{cfg}, itx{cfg};
  phy::LoraSymbolRx rx{cfg};
  SilentInterferer silent;

  phy::LinkSimulator one{tx, rx, small_plan(56)};
  one.set_interferer(itx);

  phy::LinkSimulator two{tx, rx, small_plan(56)};
  two.set_interferer(itx);
  two.add_interferer(silent);  // empty emission: must change nothing

  const phy::SweepPoint point{Dbm{-112.0}, Dbm{-112.0}};
  EXPECT_EQ(one.run_point(point), two.run_point(point));
}

// ------------------------------------------------------ OTA attackers

TEST(OtaAttack, ScriptedAttackerIsSeedDeterministic) {
  OtaAttackPlan plan;
  plan.jam_rate = 0.3;
  plan.forge_ack_rate = 0.2;
  ScriptedAttacker a{plan}, b{plan};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.jam_packet(ota::OtaPacketType::kData, 70),
              b.jam_packet(ota::OtaPacketType::kData, 70));
    EXPECT_EQ(a.forge_ack(ota::OtaPacketType::kSack),
              b.forge_ack(ota::OtaPacketType::kSack));
  }
  EXPECT_EQ(a.counters().jams, b.counters().jams);
  EXPECT_GT(a.counters().jams, 0u);
  EXPECT_GT(a.counters().forged_acks, 0u);
}

TEST(OtaAttack, TransferSurvivesEveryAttackDimension) {
  // One attacker running all four attack dimensions at once against a
  // strong link: the transfer must still succeed, and the outcome counters
  // must agree exactly with what the attacker launched.
  OtaAttackPlan plan;
  plan.seed = 0x5EED;
  plan.jam_rate = 0.05;
  plan.forge_ack_rate = 0.03;
  plan.truncate_rate = 0.03;
  plan.replay_rate = 0.08;
  ScriptedAttacker attacker{plan};

  std::vector<std::uint8_t> image(6000);
  std::iota(image.begin(), image.end(), 0);
  ota::OtaLink link{ota::ota_link_params(), Dbm{-60.0}, std::uint64_t{42}};
  ota::FlashModel flash;
  ota::NodeAgent node{5, flash};
  ota::TransferPolicy policy;
  policy.max_retries = 200;
  ota::AccessPoint ap;
  auto outcome =
      ap.transfer(image, 5, link, policy, &node, nullptr, &attacker);

  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.failure, ota::UpdateFailure::kNone);
  // Every attack the attacker launched was detected and survived.
  EXPECT_EQ(outcome.jammed_packets, attacker.counters().jams);
  EXPECT_EQ(outcome.forged_acks_discarded, attacker.counters().forged_acks);
  EXPECT_EQ(outcome.truncated_dropped, attacker.counters().truncations);
  EXPECT_EQ(outcome.replays_dropped, attacker.counters().replays);
  EXPECT_GT(attacker.counters().total(), 0u);
  // The staged stream is untouched by the attacks.
  EXPECT_EQ(flash.read(ota::NodeAgent::kStagingBase, image.size()), image);
}

TEST(OtaAttack, JamOnlyAttackCostsRetransmissions) {
  std::vector<std::uint8_t> image(3000, 0xAB);
  auto run = [&](double jam_rate) {
    OtaAttackPlan plan;
    plan.jam_rate = jam_rate;
    ScriptedAttacker attacker{plan};
    ota::OtaLink link{ota::ota_link_params(), Dbm{-60.0}, std::uint64_t{7}};
    ota::TransferPolicy policy;
    policy.max_retries = 200;
    ota::AccessPoint ap;
    return ap.transfer(image, 2, link, policy, nullptr, nullptr, &attacker);
  };
  auto clean = run(0.0);
  auto jammed = run(0.25);
  EXPECT_TRUE(clean.success);
  EXPECT_TRUE(jammed.success);
  EXPECT_EQ(clean.jammed_packets, 0u);
  EXPECT_GT(jammed.jammed_packets, 0u);
  EXPECT_GT(jammed.retransmissions, clean.retransmissions);
  EXPECT_GT(jammed.airtime.value(), clean.airtime.value());
}

TEST(OtaAttack, RecoveryHistogramRecordsTimeToRecovery) {
  obs::Registry registry;
  obs::MetricsSession session{registry};

  OtaAttackPlan plan;
  plan.jam_rate = 0.15;
  ScriptedAttacker attacker{plan};
  std::vector<std::uint8_t> image(3000, 0x11);
  ota::OtaLink link{ota::ota_link_params(), Dbm{-60.0}, std::uint64_t{9}};
  ota::TransferPolicy policy;
  policy.max_retries = 200;
  ota::AccessPoint ap;
  auto outcome = ap.transfer(image, 2, link, policy, nullptr, nullptr,
                             &attacker);
  ASSERT_TRUE(outcome.success);
  ASSERT_GT(outcome.jammed_packets, 0u);

  const std::string json = registry.json();
  // Detection counters and the recovery histogram both flowed through obs.
  EXPECT_NE(json.find("adversary.ota.jammed_packet"), std::string::npos);
  EXPECT_NE(json.find("adversary.ota.recovery_s"), std::string::npos);
}

// -------------------------------------------------------- anti-rollback

TEST(Rollback, FirmwareStoreRefusesOlderVersions) {
  ota::FlashModel flash;
  ota::FirmwareStore store{flash};
  std::vector<std::uint8_t> v5(1024, 0x55), v3(1024, 0x33);

  ASSERT_TRUE(store.write_slot(ota::Slot::kA, v5, 5));
  ASSERT_TRUE(store.activate(ota::Slot::kA));
  EXPECT_EQ(store.min_version(), 5u);

  // An older (valid!) image lands in the standby slot; activation refuses.
  ASSERT_TRUE(store.write_slot(ota::Slot::kB, v3, 3));
  EXPECT_FALSE(store.activate(ota::Slot::kB));
  EXPECT_EQ(store.active_slot(), ota::Slot::kA);
  EXPECT_EQ(store.rollback_rejections(), 1u);
  EXPECT_EQ(store.min_version(), 5u);

  // Equal or newer versions activate and ratchet.
  ASSERT_TRUE(store.write_slot(ota::Slot::kB, v3, 5));
  EXPECT_TRUE(store.activate(ota::Slot::kB));
  ASSERT_TRUE(store.write_slot(ota::Slot::kA, v5, 9));
  EXPECT_TRUE(store.activate(ota::Slot::kA));
  EXPECT_EQ(store.min_version(), 9u);
}

TEST(Rollback, GoldenRecoveryBypassesTheRatchet) {
  // The ratchet guards *updates*; disaster recovery to golden must still
  // work even though golden is older than the floor.
  ota::FlashModel flash;
  ota::FirmwareStore store{flash};
  std::vector<std::uint8_t> golden(512, 0x60);
  std::vector<std::uint8_t> v7(512, 0x77);
  ASSERT_TRUE(store.install_golden(golden, 1));
  ASSERT_TRUE(store.write_slot(ota::Slot::kA, v7, 7));
  ASSERT_TRUE(store.activate(ota::Slot::kA));
  EXPECT_TRUE(store.rollback_to_golden());
  EXPECT_EQ(store.active_slot(), ota::Slot::kGolden);
  EXPECT_EQ(store.rollback_count(), 1u);
}

TEST(Rollback, UpdatePlannerReportsRejectedRollback) {
  // Full pipeline: the node runs v5, the AP pushes a v1 image. The
  // transfer itself succeeds; activation is refused and the report says
  // kRejectedRollback with the node still on its old image.
  Rng img_rng{3};
  auto image = fpga::generate_mcu_program("fw", 8 * 1024, img_rng);
  ota::FlashModel flash;
  ota::FirmwareStore store{flash};
  std::vector<std::uint8_t> current(2048, 0xCC);
  ASSERT_TRUE(store.install_golden(current, 5));
  ASSERT_TRUE(store.activate(ota::Slot::kGolden));

  ota::OtaLink link{ota::ota_link_params(), Dbm{-60.0}, std::uint64_t{11}};
  mcu::Msp432 mcu;
  ota::UpdateOptions options;
  options.store = &store;
  options.image_version = 1;  // older than the fleet's v5
  ota::UpdatePlanner planner;
  auto report = planner.run(image, ota::UpdateTarget::kMcu, 4, link, flash,
                            mcu, options);

  EXPECT_FALSE(report.success);
  EXPECT_EQ(report.failure, ota::UpdateFailure::kRejectedRollback);
  EXPECT_TRUE(report.transfer.success);  // the radio phase was fine
  EXPECT_EQ(store.active_slot(), ota::Slot::kGolden);
  EXPECT_EQ(store.rollback_rejections(), 1u);
}

// --------------------------------------------------------- coexistence

TEST(Coexistence, MatrixShapeAndCleanReferences) {
  CoexistenceConfig cfg;
  cfg.trials = 2;
  cfg.payload_bytes = 8;
  auto matrix = run_coexistence_matrix(cfg, exec::ExecPolicy::serial());

  const auto& registry = phy::Registry::builtin();
  const std::size_t n = registry.size();
  ASSERT_EQ(matrix.protocols.size(), n);
  ASSERT_EQ(matrix.cells.size(), n * (n + 1));

  for (const auto& entry : registry.entries()) {
    // Every victim has a clean reference cell, error-free at -85 dBm.
    const auto* clean = matrix.find(entry.id, std::nullopt);
    ASSERT_NE(clean, nullptr) << entry.name;
    EXPECT_GT(clean->frames, 0u);
    EXPECT_EQ(clean->frame_errors, 0u) << entry.name;
    // And one cell against every interferer.
    for (const auto& other : registry.entries())
      EXPECT_NE(matrix.find(entry.id, other.id), nullptr);
  }

  // Equal-power co-channel interference hurts someone: the matrix is not
  // trivially all-zero.
  double worst = 0.0;
  for (const auto& v : registry.entries())
    for (const auto& i : registry.entries())
      worst = std::max(worst, matrix.per_penalty(v.id, i.id));
  EXPECT_GT(worst, 0.0);
}

TEST(Coexistence, SerialAndParallelRunsMatchByteForByte) {
  CoexistenceConfig cfg;
  cfg.trials = 2;
  cfg.payload_bytes = 8;

  // Compare the deterministic counter section of the metrics JSON; the
  // registry also carries wall-clock profiling histograms (demod_us,
  // prof.*) whose values are timing, not simulation state.
  auto counters_of = [](const std::string& json) {
    const auto begin = json.find("\"counters\":");
    const auto end = json.find(",\"gauges\":");
    EXPECT_NE(begin, std::string::npos);
    EXPECT_NE(end, std::string::npos);
    return json.substr(begin, end - begin);
  };

  auto run = [&](const exec::ExecPolicy& policy) {
    obs::Registry registry;
    obs::MetricsSession session{registry};
    auto matrix = run_coexistence_matrix(cfg, policy);
    return std::pair{registry.json(), std::move(matrix)};
  };
  auto [serial_json, serial] = run(exec::ExecPolicy::serial());
  auto [parallel_json, parallel] = run(exec::ExecPolicy::with_threads(8));

  EXPECT_EQ(counters_of(serial_json), counters_of(parallel_json));
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i)
    EXPECT_EQ(serial.cells[i].result, parallel.cells[i].result) << "cell " << i;
}

// ------------------------------------------- attacked fleet campaigns

TEST(AttackCampaign, FleetSurvivesAndCountsAttacks) {
  Rng deploy_rng{2024};
  auto deployment = testbed::Deployment::campus(deploy_rng, Dbm{14.0}, 8);
  Rng img_rng{7};
  auto image = fpga::generate_mcu_program("fw", 8 * 1024, img_rng);

  OtaAttackPlan plan;
  plan.jam_rate = 0.08;
  plan.replay_rate = 0.08;
  testbed::FaultScenario attacked;
  attacked.name = "attacked";
  attacked.policy.max_retries = 200;
  attacked.make_attacker = attacker_factory(plan);

  testbed::FaultScenario rollback;
  rollback.name = "rollback-push";
  rollback.image_version = 1;
  rollback.fleet_version = 5;

  Rng rng{99};
  auto result = testbed::run_fault_campaign(
      deployment, image, ota::UpdateTarget::kMcu, {attacked, rollback}, rng,
      exec::ExecPolicy::serial());

  ASSERT_EQ(result.scenarios.size(), 2u);
  const auto& a = result.scenarios[0];
  EXPECT_EQ(a.successes, a.nodes);  // attacks survived fleet-wide
  EXPECT_GT(a.total_jammed_packets + a.total_replays_dropped, 0u);

  const auto& r = result.scenarios[1];
  EXPECT_EQ(r.successes, 0u);  // rollback push refused everywhere...
  EXPECT_EQ(r.rollback_rejections, r.nodes);
  for (const auto& report : r.per_node) {
    EXPECT_EQ(report.failure, ota::UpdateFailure::kRejectedRollback);
    EXPECT_FALSE(report.rolled_back);  // ...without disturbing the node
  }
}

TEST(AttackCampaign, AttackedCampaignByteIdenticalAcrossThreadCounts) {
  Rng deploy_rng{31};
  auto deployment = testbed::Deployment::campus(deploy_rng, Dbm{14.0}, 12);
  Rng img_rng{5};
  auto image = fpga::generate_mcu_program("fw", 6 * 1024, img_rng);

  OtaAttackPlan plan;
  plan.jam_rate = 0.05;
  plan.forge_ack_rate = 0.02;
  plan.truncate_rate = 0.02;
  plan.replay_rate = 0.05;
  testbed::FaultScenario scenario;
  scenario.name = "combined-attack";
  scenario.policy.max_retries = 200;
  scenario.make_attacker = attacker_factory(plan);

  auto run = [&](const exec::ExecPolicy& policy) {
    obs::Registry registry;
    obs::MetricsSession session{registry};
    Rng rng{77};
    auto result = testbed::run_fault_campaign(
        deployment, image, ota::UpdateTarget::kMcu, {scenario}, rng, policy);
    return std::pair{registry.json(), std::move(result)};
  };

  auto [serial_json, serial] = run(exec::ExecPolicy::serial());
  auto [parallel_json, parallel] = run(exec::ExecPolicy::with_threads(8));

  EXPECT_EQ(serial_json, parallel_json);
  ASSERT_EQ(serial.scenarios.size(), 1u);
  ASSERT_EQ(parallel.scenarios.size(), 1u);
  const auto& ss = serial.scenarios[0];
  const auto& ps = parallel.scenarios[0];
  EXPECT_EQ(ss.total_jammed_packets, ps.total_jammed_packets);
  EXPECT_EQ(ss.total_forged_acks, ps.total_forged_acks);
  EXPECT_EQ(ss.total_truncated_dropped, ps.total_truncated_dropped);
  EXPECT_EQ(ss.total_replays_dropped, ps.total_replays_dropped);
  ASSERT_EQ(ss.per_node.size(), ps.per_node.size());
  for (std::size_t i = 0; i < ss.per_node.size(); ++i) {
    EXPECT_EQ(ss.per_node[i].transfer.link_seed,
              ps.per_node[i].transfer.link_seed);
    EXPECT_EQ(ss.per_node[i].transfer.jammed_packets,
              ps.per_node[i].transfer.jammed_packets);
    EXPECT_EQ(ss.per_node[i].total_time.value(),
              ps.per_node[i].total_time.value());
  }
}

}  // namespace
}  // namespace tinysdr::adversary
