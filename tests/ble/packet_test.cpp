#include "ble/packet.hpp"

#include <gtest/gtest.h>

namespace tinysdr::ble {
namespace {

AdvPacket beacon() {
  AdvPacket p;
  p.adv_address = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06};
  p.adv_data = {0x02, 0x01, 0x06, 0x03, 0xFF, 0xAB, 0xCD};
  return p;
}

TEST(AdvPacket, PduLayout) {
  auto pdu = beacon().pdu();
  ASSERT_EQ(pdu.size(), 2u + 6u + 7u);
  EXPECT_EQ(pdu[0], 0x02);  // ADV_NONCONN_IND
  EXPECT_EQ(pdu[1], 13);    // 6 + 7
  EXPECT_EQ(pdu[2], 0x01);  // AdvA LSB first
}

TEST(AdvPacket, RejectsOversizeData) {
  AdvPacket p;
  p.adv_data.resize(32);
  EXPECT_THROW(p.pdu(), std::invalid_argument);
}

TEST(AdvPacket, AirSizeForEmptyData) {
  AdvPacket p;
  // 1 + 4 + 2 + 6 + 0 + 3 = 16 bytes -> 128 us at 1 Mbps.
  EXPECT_EQ(air_bytes(p), 16u);
  EXPECT_NEAR(airtime_us(p), 128.0, 1e-9);
}

TEST(Whitener, SelfInverse) {
  std::vector<std::uint8_t> data{0x00, 0xFF, 0x42, 0xA5};
  Whitener w1{37};
  auto whitened = w1.apply(data);
  Whitener w2{37};
  EXPECT_EQ(w2.apply(whitened), data);
}

TEST(Whitener, ChannelDependentSequence) {
  std::vector<std::uint8_t> data(8, 0x00);
  Whitener a{37}, b{38};
  EXPECT_NE(a.apply(data), b.apply(data));
}

TEST(Whitener, Period127) {
  // Maximal-length 7-bit LFSR: sequence repeats every 127 bits.
  Whitener w{37};
  std::vector<bool> seq;
  for (int i = 0; i < 254; ++i) seq.push_back(w.next_bit());
  for (int i = 0; i < 127; ++i) EXPECT_EQ(seq[i], seq[i + 127]);
}

TEST(Whitener, RejectsBadChannel) {
  EXPECT_THROW(Whitener{-1}, std::invalid_argument);
  EXPECT_THROW(Whitener{40}, std::invalid_argument);
}

TEST(AirBits, StartsWithPreambleAndAccessAddress) {
  auto bits = assemble_air_bits(beacon(), 37);
  // Preamble 0xAA LSB-first: 0,1,0,1,...
  for (int i = 0; i < 8; ++i) EXPECT_EQ(bits[static_cast<std::size_t>(i)], i % 2 == 1);
  // Access address LSB-first.
  std::uint32_t aa = 0;
  for (int i = 0; i < 32; ++i)
    aa |= static_cast<std::uint32_t>(bits[8 + static_cast<std::size_t>(i)] ? 1u : 0u) << i;
  EXPECT_EQ(aa, kAccessAddress);
}

TEST(AirBits, LengthMatchesAirBytes) {
  auto p = beacon();
  EXPECT_EQ(assemble_air_bits(p, 38).size(), air_bytes(p) * 8);
}

class ChannelSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChannelSweep, AssembleParseRoundTrip) {
  int channel = GetParam();
  auto p = beacon();
  auto bits = assemble_air_bits(p, channel);
  auto parsed = parse_air_bits(bits, channel);
  ASSERT_TRUE(parsed.has_value()) << "channel " << channel;
  EXPECT_EQ(parsed->packet.adv_address, p.adv_address);
  EXPECT_EQ(parsed->packet.adv_data, p.adv_data);
  EXPECT_EQ(parsed->packet.type, PduType::kAdvNonconnInd);
}

INSTANTIATE_TEST_SUITE_P(AdvChannels, ChannelSweep,
                         ::testing::Values(37, 38, 39));

TEST(ParseAirBits, WrongChannelWhiteningFailsCrc) {
  auto bits = assemble_air_bits(beacon(), 37);
  EXPECT_FALSE(parse_air_bits(bits, 38).has_value());
}

TEST(ParseAirBits, CorruptedPayloadFailsCrc) {
  auto bits = assemble_air_bits(beacon(), 37);
  bits[8 + 32 + 20] = !bits[8 + 32 + 20];  // flip a PDU bit
  EXPECT_FALSE(parse_air_bits(bits, 37).has_value());
}

TEST(ParseAirBits, ToleratesLeadingGarbage) {
  auto bits = assemble_air_bits(beacon(), 39);
  std::vector<bool> padded(13, false);
  padded.insert(padded.end(), bits.begin(), bits.end());
  auto parsed = parse_air_bits(padded, 39);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->packet.adv_data, beacon().adv_data);
}

TEST(ParseAirBits, RejectsTooShort) {
  std::vector<bool> tiny(30, false);
  EXPECT_FALSE(parse_air_bits(tiny, 37).has_value());
}

TEST(AdvChannels, PaperFrequencies) {
  EXPECT_EQ(kAdvChannels[0].index, 37);
  EXPECT_DOUBLE_EQ(kAdvChannels[0].freq_mhz, 2402.0);
  EXPECT_DOUBLE_EQ(kAdvChannels[1].freq_mhz, 2426.0);
  EXPECT_DOUBLE_EQ(kAdvChannels[2].freq_mhz, 2480.0);
}

}  // namespace
}  // namespace tinysdr::ble
