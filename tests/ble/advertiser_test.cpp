#include "ble/advertiser.hpp"

#include <gtest/gtest.h>

#include "ble/cc2650.hpp"

namespace tinysdr::ble {
namespace {

AdvPacket beacon() {
  AdvPacket p;
  p.adv_address = {0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF};
  p.adv_data = {0x02, 0x01, 0x06};
  return p;
}

TEST(Advertiser, BurstCoversThreeChannelsInOrder) {
  Advertiser adv{beacon()};
  auto schedule = adv.burst_schedule();
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0].channel_index, 37);
  EXPECT_EQ(schedule[1].channel_index, 38);
  EXPECT_EQ(schedule[2].channel_index, 39);
  EXPECT_LT(schedule[0].start_us, schedule[1].start_us);
  EXPECT_LT(schedule[1].start_us, schedule[2].start_us);
}

TEST(Advertiser, HopGapIs220Microseconds) {
  // Fig. 13: "our system can transmit packets with as little as 220 us
  // delay between beacons" (an iPhone 8 needs 350 us).
  Advertiser adv{beacon()};
  EXPECT_NEAR(adv.hop_gap().microseconds(), 220.0, 1e-9);
  EXPECT_LT(adv.hop_gap().microseconds(), 350.0);
  auto schedule = adv.burst_schedule();
  double gap = schedule[1].start_us -
               (schedule[0].start_us + schedule[0].duration_us);
  EXPECT_NEAR(gap, 220.0, 1e-9);
}

TEST(Advertiser, BurstDurationConsistent) {
  Advertiser adv{beacon()};
  auto schedule = adv.burst_schedule();
  double expected_us =
      schedule.back().start_us + schedule.back().duration_us;
  EXPECT_NEAR(adv.burst_duration().microseconds(), expected_us, 1e-6);
}

TEST(Advertiser, WaveformLengthMatchesAirtime) {
  Advertiser adv{beacon()};
  GfskConfig cfg;
  auto wave = adv.waveform(37);
  double expected_samples = airtime_us(beacon()) * 1e-6 *
                            cfg.sample_rate().value();
  // Gaussian filter adds span-symbols of tail.
  EXPECT_NEAR(static_cast<double>(wave.size()), expected_samples, 64.0);
}

TEST(Advertiser, EnvelopeShowsThreeBursts) {
  // Fig. 13's envelope-detector view: three active regions separated by
  // quiet hop gaps.
  Advertiser adv{beacon()};
  auto envelope = adv.burst_envelope();
  // Segment into active/idle runs.
  int transitions = 0;
  bool active = false;
  for (double v : envelope) {
    bool now = v > 0.5;
    if (now != active) {
      ++transitions;
      active = now;
    }
  }
  // on/off for three bursts = 6 transitions (last burst may end at array
  // end without an off transition).
  EXPECT_GE(transitions, 5);
  EXPECT_LE(transitions, 7);
}

TEST(Advertiser, EndToEndReceptionOnEveryChannel) {
  Advertiser adv{beacon()};
  Cc2650Model rx;
  for (const auto& chan : kAdvChannels) {
    auto wave = adv.waveform(chan.index);
    auto bits = assemble_air_bits(beacon(), chan.index);
    Rng rng{static_cast<std::uint64_t>(chan.index)};
    auto result = rx.receive(wave, bits, chan.index, Dbm{-70.0}, rng);
    ASSERT_TRUE(result.has_value()) << "channel " << chan.index;
    EXPECT_EQ(result->adv.packet.adv_data, beacon().adv_data);
    EXPECT_LT(result->ber, 1e-3);
  }
}

TEST(Cc2650, FailsFarBelowSensitivity) {
  Advertiser adv{beacon()};
  Cc2650Model rx;
  auto wave = adv.waveform(37);
  auto bits = assemble_air_bits(beacon(), 37);
  Rng rng{5};
  // -110 dBm is 13 dB below the chip's sensitivity.
  auto result = rx.receive(wave, bits, 37, Dbm{-110.0}, rng);
  EXPECT_FALSE(result.has_value());
}

TEST(Cc2650, BerMeasurementMonotone) {
  Advertiser adv{beacon()};
  Cc2650Model rx;
  auto wave = adv.waveform(37);
  auto bits = assemble_air_bits(beacon(), 37);
  Rng rng1{6}, rng2{6};
  double strong = rx.measure_ber(wave, bits, Dbm{-60.0}, rng1);
  double weak = rx.measure_ber(wave, bits, Dbm{-102.0}, rng2);
  EXPECT_LE(strong, weak);
  EXPECT_GT(weak, 0.0);
}

}  // namespace
}  // namespace tinysdr::ble
