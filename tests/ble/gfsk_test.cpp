#include "ble/gfsk.hpp"

#include <gtest/gtest.h>

#include "channel/noise.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"

namespace tinysdr::ble {
namespace {

std::vector<bool> random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = rng.next_bool(0.5);
  return bits;
}

TEST(GfskConfig, BleDefaults) {
  GfskConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.bitrate, 1e6);
  EXPECT_DOUBLE_EQ(cfg.deviation_hz(), 250e3);  // h=0.5 at 1 Mbps
  EXPECT_DOUBLE_EQ(cfg.sample_rate().value(), 4e6);
}

TEST(GfskModulator, ConstantEnvelope) {
  GfskModulator mod;
  auto iq = mod.modulate(random_bits(64, 1));
  for (const auto& s : iq) EXPECT_NEAR(std::abs(s), 1.0f, 2e-3);
}

TEST(GfskModulator, AlternatingBitsGiveToneAtHalfBitrate) {
  // 1010... FSK alternation concentrates energy near +-250 kHz after
  // shaping; mean frequency stays near 0.
  GfskModulator mod;
  std::vector<bool> bits;
  for (int i = 0; i < 128; ++i) bits.push_back(i % 2);
  auto iq = mod.modulate(bits);
  double mean_freq = 0.0;
  for (std::size_t i = 1; i < iq.size(); ++i)
    mean_freq += std::arg(iq[i] * std::conj(iq[i - 1]));
  EXPECT_NEAR(mean_freq / static_cast<double>(iq.size() - 1), 0.0, 0.05);
}

TEST(GfskModulator, AllOnesRampsPhaseAtDeviation) {
  GfskConfig cfg;
  GfskModulator mod{cfg};
  auto iq = mod.modulate(std::vector<bool>(64, true));
  // Steady-state per-sample phase step = 2*pi*dev/fs.
  double expected = 2.0 * 3.14159265358979 * cfg.deviation_hz() /
                    cfg.sample_rate().value();
  // Skip the Gaussian ramp-in.
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 60; i < iq.size() - 10; ++i) {
    acc += std::arg(iq[i] * std::conj(iq[i - 1]));
    ++count;
  }
  EXPECT_NEAR(acc / static_cast<double>(count), expected, expected * 0.02);
}

TEST(GfskLoopback, CleanChannelBitExact) {
  GfskModulator mod;
  GfskDemodulator demod;
  auto bits = random_bits(256, 7);
  auto iq = mod.modulate(bits);
  std::size_t timing = demod.estimate_timing(iq);
  auto rx = demod.demodulate(iq, timing);
  ASSERT_GE(rx.size(), bits.size() - 4);
  EXPECT_DOUBLE_EQ(aligned_ber(bits, rx), 0.0);
}

TEST(GfskLoopback, HighSnrLowBer) {
  GfskModulator mod;
  GfskDemodulator demod;
  GfskConfig cfg;
  Rng rng{42};
  channel::AwgnChannel chan{cfg.sample_rate(), 5.5, rng};
  auto bits = random_bits(2000, 13);
  auto iq = mod.modulate(bits);
  auto noisy = chan.apply(iq, Dbm{-70.0});  // strong signal
  auto rx = demod.demodulate(noisy, demod.estimate_timing(noisy));
  EXPECT_LT(aligned_ber(bits, rx), 1e-3);
}

TEST(GfskLoopback, BerDegradesGracefullyWithRssi) {
  GfskModulator mod;
  GfskDemodulator demod;
  GfskConfig cfg;
  auto bits = random_bits(3000, 17);
  auto iq = mod.modulate(bits);

  auto ber_at = [&](double rssi) {
    Rng rng{99};
    channel::AwgnChannel chan{cfg.sample_rate(), 5.5, rng};
    auto noisy = chan.apply(iq, Dbm{rssi});
    auto rx = demod.demodulate(noisy, demod.estimate_timing(noisy));
    return aligned_ber(bits, rx);
  };
  double strong = ber_at(-80.0);
  double weak = ber_at(-97.0);
  double very_weak = ber_at(-104.0);
  EXPECT_LE(strong, weak);
  EXPECT_LT(weak, very_weak);
  EXPECT_GT(very_weak, 0.01);
}

TEST(CountBitErrors, ComparesShorterLength) {
  std::vector<bool> a{true, false, true, true};
  std::vector<bool> b{true, true, true};
  EXPECT_EQ(count_bit_errors(a, b), 1u);
}

}  // namespace
}  // namespace tinysdr::ble
