// tinysdr-job-v1 / tinysdr-result-v1 schema: parsing, validation errors,
// canonicalisation (defaults materialised, stable bytes).
#include <gtest/gtest.h>

#include <string>

#include "phy/registry.hpp"
#include "serve/job.hpp"

namespace tinysdr::serve {
namespace {

JobSpec parse_ok(const std::string& json) {
  std::string error;
  auto job = parse_job(json, error);
  EXPECT_TRUE(job) << error;
  return job.value_or(JobSpec{});
}

std::string parse_fail(const std::string& json) {
  std::string error;
  auto job = parse_job(json, error);
  EXPECT_FALSE(job) << "unexpectedly parsed: " << json;
  EXPECT_FALSE(error.empty());
  return error;
}

TEST(JobSchema, ParsesMinimalSweepJob) {
  auto job = parse_ok(
      R"({"schema":"tinysdr-job-v1","sweeps":[{"phy":"lora","rssi":[-120,-118]}]})");
  ASSERT_EQ(job.sweeps.size(), 1u);
  EXPECT_EQ(job.sweeps[0].phy, phy::Protocol::kLora);
  EXPECT_EQ(job.sweeps[0].rssi_dbm, (std::vector<double>{-120.0, -118.0}));
  // Defaults applied and registry-calibrated knobs resolved at parse time.
  EXPECT_EQ(job.sweeps[0].trials, 50u);
  EXPECT_EQ(job.sweeps[0].payload_bytes, 16u);
  ASSERT_TRUE(job.sweeps[0].pad_samples.has_value());
  ASSERT_TRUE(job.sweeps[0].noise_figure_db.has_value());
  const auto& entry =
      phy::Registry::builtin().at(phy::Protocol::kLora);
  EXPECT_EQ(*job.sweeps[0].pad_samples, entry.pad_samples);
  EXPECT_EQ(*job.sweeps[0].noise_figure_db, entry.system_noise_figure_db);
}

TEST(JobSchema, ParsesFleetJobWithPinnedPhy) {
  auto job = parse_ok(
      R"({"schema":"tinysdr-job-v1","name":"fleet","priority":3,
          "fleets":[{"nodes":8,"trials_per_node":4,"phy":"zigbee"}]})");
  EXPECT_EQ(job.name, "fleet");
  EXPECT_EQ(job.priority, 3);
  ASSERT_EQ(job.fleets.size(), 1u);
  EXPECT_EQ(job.fleets[0].nodes, 8u);
  ASSERT_TRUE(job.fleets[0].phy.has_value());
  EXPECT_EQ(*job.fleets[0].phy, phy::Protocol::kZigbee);
}

TEST(JobSchema, RejectsBadDocuments) {
  parse_fail("not json at all");
  parse_fail(R"({"schema":"tinysdr-bench-v1","sweeps":[]})");
  parse_fail(R"({"schema":"tinysdr-job-v1"})");  // no sweeps, no fleets
  parse_fail(R"({"schema":"tinysdr-job-v1","sweeps":[],"fleets":[]})");
  parse_fail(
      R"({"schema":"tinysdr-job-v1","sweeps":[{"phy":"wimax","rssi":[-100]}]})");
  parse_fail(
      R"({"schema":"tinysdr-job-v1","sweeps":[{"phy":"lora","rssi":[]}]})");
  parse_fail(
      R"({"schema":"tinysdr-job-v1","sweeps":[{"phy":"lora","rssi":["x"]}]})");
  parse_fail(
      R"({"schema":"tinysdr-job-v1",
          "sweeps":[{"phy":"lora","rssi":[-100],"trials":0}]})");
  // Non-integral and out-of-range seeds.
  parse_fail(
      R"({"schema":"tinysdr-job-v1",
          "sweeps":[{"phy":"lora","rssi":[-100],"base_seed":1.5}]})");
  parse_fail(
      R"({"schema":"tinysdr-job-v1",
          "sweeps":[{"phy":"lora","rssi":[-100],"base_seed":-3}]})");
  parse_fail(
      R"({"schema":"tinysdr-job-v1",
          "sweeps":[{"phy":"lora","rssi":[-100],"base_seed":1e17}]})");
}

TEST(JobSchema, RejectsPayloadBeyondPhyMax) {
  const auto& ble = phy::Registry::builtin().at(phy::Protocol::kBle);
  const std::string too_big = std::to_string(ble.max_payload + 1);
  const auto error = parse_fail(
      R"({"schema":"tinysdr-job-v1",
          "sweeps":[{"phy":"ble","rssi":[-90],"payload_bytes":)" +
      too_big + "}]}");
  EXPECT_NE(error.find("payload"), std::string::npos) << error;
}

TEST(JobSchema, CanonicalJsonRoundTripsAndIsStable) {
  // Two spellings of the same job — one terse, one with the defaults
  // written out — canonicalise to the same bytes and the same spec.
  auto terse = parse_ok(
      R"({"schema":"tinysdr-job-v1","sweeps":[{"phy":"ble","rssi":[-95]}]})");
  auto spelled = parse_ok(
      R"({"schema":"tinysdr-job-v1","name":"job","priority":0,
          "sweeps":[{"phy":"ble","rssi":[-95],"trials":50,
                     "payload_bytes":16,"base_seed":1,"pad_samples":0}]})");
  EXPECT_EQ(terse, spelled);
  EXPECT_EQ(terse.canonical_json(), spelled.canonical_json());

  // parse(canonical(x)) == x, and canonical is a fixed point.
  auto reparsed = parse_ok(terse.canonical_json());
  EXPECT_EQ(reparsed, terse);
  EXPECT_EQ(reparsed.canonical_json(), terse.canonical_json());
}

TEST(JobSchema, DeadlineAndPrioritySurviveCanonicalisation) {
  auto job = parse_ok(
      R"({"schema":"tinysdr-job-v1","name":"rush","priority":7,
          "deadline_s":12.5,
          "sweeps":[{"phy":"sigfox","rssi":[-130,-128],
                     "payload_bytes":8}]})");
  ASSERT_TRUE(job.deadline_s.has_value());
  EXPECT_EQ(*job.deadline_s, 12.5);
  auto reparsed = parse_ok(job.canonical_json());
  EXPECT_EQ(reparsed, job);
}

TEST(JobSchema, ResultJsonEmbedsJobAndPoints) {
  JobSpec job;
  job.name = "tiny";
  SweepSpec sweep;
  sweep.phy = phy::Protocol::kLora;
  sweep.rssi_dbm = {-120.0};
  sweep.trials = 2;
  sweep.pad_samples = 300;
  sweep.noise_figure_db = 11.5;
  job.sweeps.push_back(sweep);

  JobResult result;
  result.job = job;
  SweepResult sr;
  phy::PointResult p{};
  p.rssi_dbm = -120.0;
  p.frames = 2;
  p.bits = 128;
  sr.points.push_back(p);
  result.sweeps.push_back(sr);

  const std::string json = result.json();
  EXPECT_NE(json.find("\"schema\":\"tinysdr-result-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"tinysdr-job-v1\""), std::string::npos);
  EXPECT_NE(json.find("[-120,2,0,128,0,0,0]"), std::string::npos) << json;
}

}  // namespace
}  // namespace tinysdr::serve
