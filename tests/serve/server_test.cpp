// The NDJSON protocol (handle_line, no sockets) and the full daemon
// transport (Unix socket server on a thread, raw POSIX client) — including
// the tentpole contract: bytes fetched through the daemon are identical to
// the in-process engine's result document.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

#include "obs/json.hpp"
#include "phy/registry.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace tinysdr::serve {
namespace {

constexpr std::string_view kSmallJob =
    R"({"schema":"tinysdr-job-v1","name":"wire",
        "sweeps":[{"phy":"ble","rssi":[-95,-92],"trials":4,
                   "payload_bytes":8,"base_seed":3}]})";

std::string submit_line(std::string_view job) {
  std::string line{R"({"type":"submit","job":)"};
  for (char c : job) line += (c == '\n' ? ' ' : c);
  line += "}";
  return line;
}

TEST(Protocol, RejectsJunkWithoutCrashing) {
  Engine engine{phy::Registry::builtin(), {}};
  for (const char* junk :
       {"", "not json", "[1,2,3]", "{\"type\":\"explode\"}",
        R"({"type":"submit"})", R"({"type":"submit","job":{}})",
        R"({"type":"status"})", R"({"type":"status","id":999})",
        R"({"type":"result","id":42})"}) {
    Response r = handle_line(engine, junk);
    ASSERT_EQ(r.lines.size(), 1u) << junk;
    EXPECT_NE(r.lines[0].find("\"ok\":false"), std::string::npos) << junk;
    EXPECT_FALSE(r.shutdown);
  }
}

TEST(Protocol, SubmitStatusResultLifecycle) {
  Engine engine{phy::Registry::builtin(), {}};
  Response submitted = handle_line(engine, submit_line(kSmallJob));
  ASSERT_EQ(submitted.lines.size(), 1u);
  EXPECT_TRUE(submitted.submitted);
  EXPECT_NE(submitted.lines[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(submitted.lines[0].find("\"id\":1"), std::string::npos);

  // Result before execution: a polite not-ready error carrying the state.
  Response early = handle_line(engine, R"({"type":"result","id":1})");
  ASSERT_EQ(early.lines.size(), 1u);
  EXPECT_NE(early.lines[0].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(early.lines[0].find("queued"), std::string::npos);

  engine.run_all();

  Response status = handle_line(engine, R"({"type":"status","id":1})");
  ASSERT_EQ(status.lines.size(), 1u);
  EXPECT_NE(status.lines[0].find("\"state\":\"done\""), std::string::npos);

  // The result response is a header line plus the raw document line —
  // verbatim engine bytes, so daemon clients inherit byte-identity.
  Response result = handle_line(engine, R"({"type":"result","id":1})");
  ASSERT_EQ(result.lines.size(), 2u);
  EXPECT_NE(result.lines[0].find("\"lines\":1"), std::string::npos);
  EXPECT_EQ(result.lines[1], engine.result_json(1).value_or(""));

  Response stats = handle_line(engine, R"({"type":"stats"})");
  ASSERT_EQ(stats.lines.size(), 1u);
  EXPECT_NE(stats.lines[0].find("serve.cache.misses"), std::string::npos);

  Response bye = handle_line(engine, R"({"type":"shutdown"})");
  EXPECT_TRUE(bye.shutdown);
}

/// Minimal blocking NDJSON client for the socket test.
class TestClient {
 public:
  explicit TestClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  bool send_line(const std::string& line) {
    const std::string framed = line + "\n";
    return ::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(framed.size());
  }

  bool read_line(std::string& line) {
    for (;;) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

TEST(Server, DaemonResultBytesMatchInProcessEngine) {
  // Reference: the same job through a plain in-process engine.
  Engine reference{phy::Registry::builtin(), {}};
  std::string error;
  auto ref_id = reference.submit_json(kSmallJob, error);
  ASSERT_TRUE(ref_id.has_value()) << error;
  reference.run_all();
  const std::string reference_bytes =
      reference.result_json(*ref_id).value_or("");
  ASSERT_FALSE(reference_bytes.empty());

  const std::string socket_path = testing::TempDir() + "serve_test.sock";
  Engine engine{phy::Registry::builtin(), {}};
  ServerConfig config;
  config.unix_socket = socket_path;
  Server server{engine, config};
  ASSERT_TRUE(server.start(error)) << error;
  std::thread accept_thread{[&server] { server.serve_forever(); }};

  {
    TestClient client{socket_path};
    ASSERT_TRUE(client.connected());
    std::string reply;

    ASSERT_TRUE(client.send_line(R"({"type":"ping"})"));
    ASSERT_TRUE(client.read_line(reply));
    EXPECT_NE(reply.find("\"pong\":true"), std::string::npos);

    ASSERT_TRUE(client.send_line(submit_line(kSmallJob)));
    ASSERT_TRUE(client.read_line(reply));
    ASSERT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;

    // Poll until the runner thread finishes the job.
    for (;;) {
      ASSERT_TRUE(client.send_line(R"({"type":"status","id":1})"));
      ASSERT_TRUE(client.read_line(reply));
      if (reply.find("\"state\":\"done\"") != std::string::npos) break;
      ASSERT_EQ(reply.find("\"state\":\"failed\""), std::string::npos)
          << reply;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    std::string header;
    std::string body;
    ASSERT_TRUE(client.send_line(R"({"type":"result","id":1})"));
    ASSERT_TRUE(client.read_line(header));
    ASSERT_TRUE(client.read_line(body));
    EXPECT_NE(header.find("\"ok\":true"), std::string::npos);
    // The tentpole contract, over the wire.
    EXPECT_EQ(body, reference_bytes);

    ASSERT_TRUE(client.send_line(R"({"type":"shutdown"})"));
    ASSERT_TRUE(client.read_line(reply));
    EXPECT_NE(reply.find("\"stopping\":true"), std::string::npos);
  }

  accept_thread.join();
  ::unlink(socket_path.c_str());
}

TEST(Server, StartFailsCleanlyWithoutTransport) {
  Engine engine{phy::Registry::builtin(), {}};
  Server server{engine, {}};  // neither socket nor TCP chosen
  std::string error;
  EXPECT_FALSE(server.start(error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace tinysdr::serve
