// SweepCache: content-addressed keys, LRU byte budget, journal
// persistence, and corrupt-entry tolerance.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "phy/link_sim.hpp"
#include "serve/cache.hpp"

namespace tinysdr::serve {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "serve_cache_" + name;
}

phy::PointResult make_point(double rssi, std::uint64_t frames) {
  phy::PointResult p{};
  p.rssi_dbm = rssi;
  p.frames = frames;
  p.bits = frames * 64;
  p.bit_errors = frames / 2;
  p.symbols = frames * 8;
  p.symbol_errors = frames / 3;
  return p;
}

TEST(SweepCache, KeyIsGridIndependentAndParameterSensitive) {
  // The same (phy, base_seed, rssi) names the same key no matter which
  // grid the point sits in: point_seed is a pure function of
  // (base_seed, rssi), so two different campaigns share cache entries.
  const std::uint64_t seed_a =
      phy::LinkSimulator::point_seed(42, -118.0);  // from grid {-120,-118}
  const std::uint64_t seed_b =
      phy::LinkSimulator::point_seed(42, -118.0);  // from grid {-118,-110}
  EXPECT_EQ(seed_a, seed_b);
  const auto key_a = point_cache_key("lora", seed_a, 50, 16, 300, 11.5);
  const auto key_b = point_cache_key("lora", seed_b, 50, 16, 300, 11.5);
  EXPECT_EQ(key_a, key_b);

  // Any parameter that changes the physics changes the key.
  EXPECT_NE(key_a, point_cache_key("ble", seed_a, 50, 16, 300, 11.5));
  EXPECT_NE(key_a, point_cache_key("lora", seed_a + 1, 50, 16, 300, 11.5));
  EXPECT_NE(key_a, point_cache_key("lora", seed_a, 51, 16, 300, 11.5));
  EXPECT_NE(key_a, point_cache_key("lora", seed_a, 50, 17, 300, 11.5));
  EXPECT_NE(key_a, point_cache_key("lora", seed_a, 50, 16, 301, 11.5));
  EXPECT_NE(key_a, point_cache_key("lora", seed_a, 50, 16, 300, 11.6));
}

TEST(SweepCache, LookupInsertRoundTripsExactly) {
  SweepCache cache;
  const auto key = point_cache_key("lora", 7, 10, 8, 300, 11.5);
  EXPECT_FALSE(cache.lookup(key).has_value());

  const auto point = make_point(-117.25, 10);
  cache.insert(key, point);
  auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, point);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(SweepCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  SweepCache cache{512};  // room for only a few entries
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(point_cache_key("lora", static_cast<std::uint64_t>(i),
                                   10, 8, 300, 11.5));
    cache.insert(keys.back(), make_point(-100.0 - i, 10));
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 512u);
  // The newest entry survived; the oldest was evicted.
  EXPECT_TRUE(cache.lookup(keys.back()).has_value());
  EXPECT_FALSE(cache.lookup(keys.front()).has_value());
}

TEST(SweepCache, ZeroBudgetDisablesCaching) {
  SweepCache cache{0};
  const auto key = point_cache_key("ble", 1, 10, 8, 0, 4.0);
  cache.insert(key, make_point(-90.0, 10));
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(SweepCache, JournalRoundTripsAcrossProcessRestart) {
  const std::string path = temp_path("journal.ndjson");
  std::remove(path.c_str());
  const auto key_a = point_cache_key("lora", 11, 10, 8, 300, 11.5);
  const auto key_b = point_cache_key("nbiot", 12, 20, 12, 0, 5.0);
  const auto point_a = make_point(-117.5, 10);
  const auto point_b = make_point(-131.125, 20);
  {
    SweepCache cache;
    ASSERT_EQ(cache.attach_journal(path), 0u);  // fresh file
    cache.insert(key_a, point_a);
    cache.insert(key_b, point_b);
  }  // "process" dies; journal holds both inserts

  SweepCache reborn;
  EXPECT_EQ(reborn.attach_journal(path), 2u);
  auto a = reborn.lookup(key_a);
  auto b = reborn.lookup(key_b);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // Bit-exact round trip through the journal's JSON doubles.
  EXPECT_EQ(*a, point_a);
  EXPECT_EQ(*b, point_b);
  std::remove(path.c_str());
}

TEST(SweepCache, CorruptJournalLinesAreCountedAndSkipped) {
  const std::string path = temp_path("corrupt.ndjson");
  std::remove(path.c_str());
  const auto key = point_cache_key("lora", 21, 10, 8, 300, 11.5);
  const auto point = make_point(-119.0, 10);
  {
    SweepCache cache;
    cache.attach_journal(path);
    cache.insert(key, point);
  }
  {
    // A hostile mix of damage: garbage, wrong shape, non-integer counts,
    // negative counts, a truncated line.
    std::ofstream out{path, std::ios::app};
    out << "not json\n"
        << "{\"k\":\"x\"}\n"
        << "{\"k\":\"y\",\"r\":[1,2,3]}\n"
        << "{\"k\":\"z\",\"r\":[-100,1.5,0,0,0,0,0]}\n"
        << "{\"k\":\"w\",\"r\":[-100,-4,0,0,0,0,0]}\n"
        << "{\"k\":\"t\",\"r\":[-100,";
  }

  obs::Registry registry;
  obs::MetricsSession session{registry};
  SweepCache reborn;
  EXPECT_EQ(reborn.attach_journal(path), 1u);  // only the good line
  EXPECT_EQ(reborn.stats().corrupt, 6u);
  auto hit = reborn.lookup(key);
  ASSERT_TRUE(hit.has_value());  // the valid entry still loads
  EXPECT_EQ(*hit, point);
  // The damage is observable through the metrics registry.
  EXPECT_NE(registry.json().find("serve.cache.corrupt"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tinysdr::serve
