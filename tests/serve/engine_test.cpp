// serve::Engine end-to-end: byte-identical results across every execution
// strategy (serial / sharded / cached / restarted), priority ordering,
// deadline checkpointing, and journal-driven resume.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "exec/policy.hpp"
#include "phy/registry.hpp"
#include "serve/engine.hpp"

namespace tinysdr::serve {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "serve_engine_" + name;
}

/// A small but multi-PHY campaign: two sweeps and one fleet.
JobSpec small_campaign() {
  JobSpec job;
  job.name = "campaign";
  SweepSpec lora;
  lora.phy = phy::Protocol::kLora;
  lora.rssi_dbm = {-122.0, -120.0, -118.0};
  lora.trials = 6;
  lora.payload_bytes = 8;
  lora.base_seed = 9;
  lora.pad_samples = 300;
  lora.noise_figure_db = 11.5;
  job.sweeps.push_back(lora);
  SweepSpec ble;
  ble.phy = phy::Protocol::kBle;
  ble.rssi_dbm = {-96.0, -92.0};
  ble.trials = 6;
  ble.payload_bytes = 8;
  ble.base_seed = 9;
  ble.pad_samples = 0;
  ble.noise_figure_db = 4.0;
  job.sweeps.push_back(ble);
  FleetSpec fleet;
  fleet.nodes = 6;
  fleet.trials_per_node = 3;
  fleet.payload_bytes = 8;
  fleet.base_seed = 5;
  fleet.deployment_seed = 2024;
  job.fleets.push_back(fleet);
  return job;
}

std::string run_once(const EngineConfig& config, const JobSpec& job) {
  Engine engine{phy::Registry::builtin(), config};
  const auto id = engine.submit(job);
  engine.run_all();
  auto result = engine.result_json(id);
  EXPECT_TRUE(result.has_value());
  return result.value_or("");
}

TEST(Engine, SerialShardedAndCachedRunsAreByteIdentical) {
  const auto job = small_campaign();

  EngineConfig serial;
  serial.policy = exec::ExecPolicy::serial();
  const std::string serial_bytes = run_once(serial, job);
  ASSERT_FALSE(serial_bytes.empty());

  EngineConfig sharded;
  sharded.policy = exec::ExecPolicy::with_threads(8);
  EXPECT_EQ(run_once(sharded, job), serial_bytes);

  // Same engine, same job twice: the second run is all cache hits and
  // still the same bytes.
  Engine engine{phy::Registry::builtin(), sharded};
  const auto first = engine.submit(job);
  const auto second = engine.submit(job);
  engine.run_all();
  EXPECT_EQ(engine.result_json(first).value_or("a"),
            engine.result_json(second).value_or("b"));
  EXPECT_EQ(engine.result_json(first).value_or(""), serial_bytes);

  auto status = engine.status(second);
  ASSERT_TRUE(status.has_value());
  const auto points = status->cache_hits + status->cache_misses;
  ASSERT_GT(points, 0u);
  // >= 90% hit rate on resubmission (here: every sweep point hits).
  EXPECT_GE(status->cache_hits * 10, points * 9);
  EXPECT_EQ(status->cache_misses, 0u);
}

TEST(Engine, SubmitJsonValidatesAndPriorityOrdersExecution) {
  Engine engine{phy::Registry::builtin(), {}};
  std::string error;
  EXPECT_FALSE(engine.submit_json("{}", error).has_value());
  EXPECT_FALSE(error.empty());

  auto low = engine.submit_json(
      R"({"schema":"tinysdr-job-v1","name":"low","priority":1,
          "sweeps":[{"phy":"ble","rssi":[-90],"trials":2}]})",
      error);
  auto high = engine.submit_json(
      R"({"schema":"tinysdr-job-v1","name":"high","priority":5,
          "sweeps":[{"phy":"ble","rssi":[-91],"trials":2}]})",
      error);
  ASSERT_TRUE(low.has_value()) << error;
  ASSERT_TRUE(high.has_value()) << error;
  EXPECT_EQ(engine.queued(), 2u);

  // Higher priority runs first despite later submission.
  EXPECT_EQ(engine.run_next().value_or(0), *high);
  EXPECT_EQ(engine.run_next().value_or(0), *low);
  EXPECT_FALSE(engine.run_next().has_value());
}

TEST(Engine, DeadlinePartialJobIsCheckpointedAndRequeued) {
  // A deadline no machine can meet: the first attempt checkpoints any
  // finished points into the cache and the job goes back in the queue.
  EngineConfig config;
  config.policy = exec::ExecPolicy::serial();
  config.max_attempts = 2;
  Engine engine{phy::Registry::builtin(), config};

  JobSpec slow;
  slow.name = "deadline";
  SweepSpec sweep;
  sweep.phy = phy::Protocol::kLora;
  sweep.rssi_dbm = {-126.0, -124.0, -122.0, -120.0, -118.0, -116.0};
  sweep.trials = 200;
  sweep.payload_bytes = 16;
  sweep.base_seed = 77;
  sweep.pad_samples = 300;
  sweep.noise_figure_db = 11.5;
  slow.sweeps.push_back(sweep);
  slow.deadline_s = 1e-6;
  const auto id = engine.submit(slow);

  ASSERT_TRUE(engine.run_next().has_value());
  auto status = engine.status(id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kQueued);  // requeued, not failed
  EXPECT_EQ(status->attempts, 1u);
  EXPECT_EQ(engine.stats()["serve.jobs.requeued"], 1.0);

  // Second (final) attempt also blows the deadline: the job fails.
  ASSERT_TRUE(engine.run_next().has_value());
  status = engine.status(id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_FALSE(status->error.empty());
  EXPECT_FALSE(engine.result_json(id).has_value());
}

TEST(Engine, RestartedEngineResumesFromJournalsWithIdenticalBytes) {
  const std::string cache_path = temp_path("resume_cache.ndjson");
  const std::string job_path = temp_path("resume_jobs.ndjson");
  std::remove(cache_path.c_str());
  std::remove(job_path.c_str());

  const auto job = small_campaign();
  // Reference bytes from a journal-free engine.
  EngineConfig plain;
  plain.policy = exec::ExecPolicy::serial();
  const std::string reference = run_once(plain, job);

  EngineConfig journaled = plain;
  journaled.cache_journal = cache_path;
  journaled.job_journal = job_path;
  std::uint64_t finished_id = 0;
  {
    Engine engine{phy::Registry::builtin(), journaled};
    finished_id = engine.submit(job);
    engine.run_all();
    ASSERT_EQ(engine.result_json(finished_id).value_or(""), reference);
    // A second job is submitted but the "server dies" before running it.
    engine.submit(job);
  }

  Engine reborn{phy::Registry::builtin(), journaled};
  // The finished job is remembered (no bytes retained), the unfinished
  // one is back in the queue.
  auto done = reborn.status(finished_id);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::kDone);
  EXPECT_FALSE(done->result_retained);
  EXPECT_FALSE(reborn.result_json(finished_id).has_value());
  EXPECT_EQ(reborn.queued(), 1u);

  // Running the resumed job regenerates the reference bytes — entirely
  // from the journaled cache.
  const auto resumed_id = reborn.run_next();
  ASSERT_TRUE(resumed_id.has_value());
  EXPECT_EQ(reborn.result_json(*resumed_id).value_or(""), reference);
  auto status = reborn.status(*resumed_id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->cache_misses, 0u);
  EXPECT_GT(status->cache_hits, 0u);

  std::remove(cache_path.c_str());
  std::remove(job_path.c_str());
}

TEST(Engine, KilledMidJobRestartReusesCheckpointedPoints) {
  const std::string cache_path = temp_path("partial_cache.ndjson");
  const std::string job_path = temp_path("partial_jobs.ndjson");
  std::remove(cache_path.c_str());
  std::remove(job_path.c_str());

  JobSpec job;
  job.name = "partial";
  SweepSpec sweep;
  sweep.phy = phy::Protocol::kBle;
  sweep.rssi_dbm = {-97.0, -95.0, -93.0, -91.0};
  sweep.trials = 8;
  sweep.payload_bytes = 8;
  sweep.base_seed = 13;
  sweep.pad_samples = 0;
  sweep.noise_figure_db = 4.0;
  job.sweeps.push_back(sweep);

  EngineConfig plain;
  plain.policy = exec::ExecPolicy::serial();
  const std::string reference = run_once(plain, job);

  EngineConfig journaled = plain;
  journaled.cache_journal = cache_path;
  journaled.job_journal = job_path;
  {
    // The server computes half the grid (a separate job covering two of
    // the four points — exactly what a deadline checkpoint journals),
    // then "dies" with the full campaign still queued.
    Engine engine{phy::Registry::builtin(), journaled};
    auto half = job;
    half.sweeps[0].rssi_dbm = {-97.0, -95.0};
    engine.submit(half);
    engine.run_next();
    engine.submit(job);  // the full campaign never gets to run
  }

  // The reborn server replays both journals: the checkpointed points are
  // cache hits, only the other two compute, and the merged result is
  // byte-identical to the never-interrupted reference.
  Engine reborn{phy::Registry::builtin(), journaled};
  EXPECT_EQ(reborn.queued(), 1u);
  EXPECT_EQ(reborn.cache().stats().entries, 2u);
  const auto resumed = reborn.run_next();
  ASSERT_TRUE(resumed.has_value());
  auto result = reborn.result_json(*resumed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, reference);
  auto status = reborn.status(*resumed);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->cache_hits, 2u);
  EXPECT_EQ(status->cache_misses, 2u);

  std::remove(cache_path.c_str());
  std::remove(job_path.c_str());
}

TEST(Engine, StatsExposeServeCounters) {
  Engine engine{phy::Registry::builtin(), {}};
  std::string error;
  auto id = engine.submit_json(
      R"({"schema":"tinysdr-job-v1",
          "sweeps":[{"phy":"ble","rssi":[-90,-88],"trials":2}]})",
      error);
  ASSERT_TRUE(id.has_value()) << error;
  engine.run_all();
  auto stats = engine.stats();
  EXPECT_EQ(stats["serve.jobs.submitted"], 1.0);
  EXPECT_EQ(stats["serve.jobs.completed"], 1.0);
  EXPECT_EQ(stats["serve.cache.misses"], 2.0);
  EXPECT_EQ(stats["serve.cache.inserts"], 2.0);
  EXPECT_EQ(stats["serve.points.computed"], 2.0);
  EXPECT_EQ(stats["serve.jobs.queued"], 0.0);
}

}  // namespace
}  // namespace tinysdr::serve
