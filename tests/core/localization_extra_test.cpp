// Additional localization properties: residual as a quality signal, tone
// count scaling, and configuration edge cases.
#include <gtest/gtest.h>

#include "core/localization.hpp"

namespace tinysdr::core {
namespace {

TEST(PhaseRangingQuality, ResidualGrowsWithNoise) {
  RangingConfig cfg;
  Rng rng{8};
  auto clean = simulate_phase_sweep(cfg, 50.0, 0.0, rng);
  auto noisy = simulate_phase_sweep(cfg, 50.0, 0.3, rng);
  double r_clean = estimate_range(cfg, clean).residual_rad;
  double r_noisy = estimate_range(cfg, noisy).residual_rad;
  EXPECT_LT(r_clean, 0.01);
  EXPECT_GT(r_noisy, r_clean);
}

TEST(PhaseRangingQuality, MoreTonesReduceNoiseError) {
  RangingConfig few;
  few.tones = 4;
  RangingConfig many;
  many.tones = 16;
  double err_few = 0.0, err_many = 0.0;
  for (int t = 0; t < 10; ++t) {
    Rng rng_few{static_cast<std::uint64_t>(t)};
    Rng rng_many{static_cast<std::uint64_t>(t)};
    double d = 20.0 + 10.0 * t;
    auto s1 = simulate_phase_sweep(few, d, 0.25, rng_few);
    auto s2 = simulate_phase_sweep(many, d, 0.25, rng_many);
    err_few += std::abs(estimate_range(few, s1).distance_m - d);
    err_many += std::abs(estimate_range(many, s2).distance_m - d);
  }
  EXPECT_LT(err_many, err_few);
}

TEST(PhaseRangingQuality, ZeroDistanceIsRepresentable) {
  RangingConfig cfg;
  Rng rng{9};
  auto sweep = simulate_phase_sweep(cfg, 0.0, 0.0, rng);
  auto est = estimate_range(cfg, sweep);
  EXPECT_NEAR(est.distance_m, 0.0, 0.05);
}

TEST(PhaseRangingQuality, BadResolutionRejected) {
  RangingConfig cfg;
  Rng rng{10};
  auto sweep = simulate_phase_sweep(cfg, 10.0, 0.0, rng);
  EXPECT_THROW((void)estimate_range(cfg, sweep, 0.0), std::invalid_argument);
  EXPECT_THROW((void)estimate_range(cfg, sweep, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tinysdr::core
