// Device facade coverage of the additional PHY paths: Zigbee through the
// FPGA design and the radio's built-in MR-FSK modem (FPGA bypassed).
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "radio/builtin_modem.hpp"
#include "zigbee/oqpsk.hpp"

namespace tinysdr::core {
namespace {

TEST(DevicePhy, ZigbeeTransmitLoopback) {
  TinySdrDevice dev{1};
  dev.wake();
  std::vector<std::uint8_t> psdu{0x61, 0x88, 0x42, 0x11, 0x22};
  auto wave = dev.transmit_zigbee(psdu, Dbm{0.0});
  ASSERT_FALSE(wave.empty());
  EXPECT_EQ(dev.radio().band(), radio::Band::kIsm2400);

  zigbee::OqpskModem modem;
  auto rx = modem.demodulate(wave);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, psdu);
}

TEST(DevicePhy, ZigbeeRequiresWake) {
  TinySdrDevice dev{1};
  std::vector<std::uint8_t> psdu{1, 2, 3};
  EXPECT_THROW((void)dev.transmit_zigbee(psdu, Dbm{0.0}), std::logic_error);
}

TEST(DevicePhy, BuiltinFskLoopback) {
  TinySdrDevice dev{2};
  dev.wake();
  dev.radio().set_frequency(Hertz::from_megahertz(915.0));
  std::vector<std::uint8_t> payload{0xAA, 0xBB, 0xCC};
  auto wave = dev.transmit_fsk_builtin(payload, Dbm{10.0});
  radio::BuiltinFskModem modem;
  auto rx = modem.demodulate(wave);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, payload);
}

TEST(DevicePhy, BuiltinFskCheaperThanFpgaPath) {
  // The §3.1.1 power-saving claim, observed through the ledger: the same
  // airtime costs less when the FPGA is power-gated.
  TinySdrDevice via_fpga{3};
  TinySdrDevice via_builtin{4};
  via_fpga.wake();
  via_builtin.wake();
  via_fpga.radio().set_frequency(Hertz::from_megahertz(915.0));
  via_builtin.radio().set_frequency(Hertz::from_megahertz(915.0));

  std::vector<std::uint8_t> payload{1, 2, 3, 4, 5, 6, 7, 8};
  lora::LoraParams p{8, Hertz::from_kilohertz(500.0)};
  (void)via_fpga.transmit_lora(payload, p, Dbm{14.0});
  (void)via_builtin.transmit_fsk_builtin(payload, Dbm{14.0});

  auto draw_of = [](const TinySdrDevice& dev, const std::string& note) {
    for (const auto& e : dev.ledger().entries())
      if (e.note.find(note) != std::string::npos) return e.draw.value();
    return -1.0;
  };
  double fpga_draw = draw_of(via_fpga, "lora tx");
  double builtin_draw = draw_of(via_builtin, "builtin fsk");
  ASSERT_GT(fpga_draw, 0.0);
  ASSERT_GT(builtin_draw, 0.0);
  EXPECT_LT(builtin_draw, fpga_draw - 50.0);  // tens of mW saved
}

}  // namespace
}  // namespace tinysdr::core
