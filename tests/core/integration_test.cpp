// Cross-module integration tests: full OTA-update-then-operate scenarios
// exercising radio, FPGA, flash, MCU, power and both PHYs together.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "lora/mac.hpp"
#include "ota/update.hpp"
#include "testbed/campaign.hpp"

namespace tinysdr::core {
namespace {

TEST(Integration, OtaUpdateThenSwitchProtocolFromFlash) {
  // The §3.1.2 scenario: multiple images in flash allow protocol switching
  // without re-sending data over the air.
  TinySdrDevice dev{1};
  Rng rng{1};
  auto lora_img = fpga::generate_bitstream(fpga::lora_rx_design(8),
                                           fpga::DeviceSpec{}, rng);
  auto ble_img =
      fpga::generate_bitstream(fpga::ble_tx_design(), fpga::DeviceSpec{}, rng);
  dev.store_design(lora_img);
  dev.store_design(ble_img);
  dev.wake();

  Seconds t1 = dev.load_design(lora_img.name);
  Seconds t2 = dev.load_design(ble_img.name);
  // Both reprogram in ~22 ms — "minimal system down time".
  EXPECT_LT(t1.milliseconds(), 25.0);
  EXPECT_LT(t2.milliseconds(), 25.0);
  EXPECT_EQ(dev.loaded_design(), ble_img.name);
}

TEST(Integration, MacOverPhyEndToEnd) {
  // LoRaWAN-style frame over the actual CSS PHY between two devices.
  auto mac_dev = lora::MacDevice::abp(0x1234, lora::AppKey{});
  lora::MacNetwork network{lora::AppKey{}};

  TinySdrDevice node{1}, gateway{2};
  node.wake();
  gateway.wake();
  node.radio().set_frequency(Hertz::from_megahertz(915.0));
  gateway.radio().set_frequency(Hertz::from_megahertz(915.0));

  lora::LoraParams params{8, Hertz::from_kilohertz(500.0)};
  std::vector<std::uint8_t> sensor_data{0x17, 0x2A};
  auto frame = mac_dev.uplink(sensor_data);
  auto wave = node.transmit_lora(frame, params, Dbm{14.0});

  dsp::Samples padded(4096, dsp::Complex{0, 0});
  padded.insert(padded.end(), wave.begin(), wave.end());
  padded.insert(padded.end(), 4096, dsp::Complex{0, 0});
  auto rx = gateway.receive_lora(padded, params,
                                 Seconds::from_milliseconds(100.0));
  ASSERT_TRUE(rx.has_value());
  ASSERT_TRUE(rx->packet.crc_valid);

  auto mac_rx = network.handle_uplink(rx->packet.payload);
  ASSERT_TRUE(mac_rx.has_value());
  EXPECT_EQ(mac_rx->payload, sensor_data);
  EXPECT_EQ(mac_rx->dev_addr, 0x1234u);
}

TEST(Integration, FullOtaPipelineDeliversLoadableDesign) {
  // OTA-transfer a bitstream, then boot it on the device.
  Rng img_rng{2};
  auto image = fpga::generate_bitstream(fpga::lora_rx_design(9),
                                        fpga::DeviceSpec{}, img_rng);
  TinySdrDevice dev{7};
  Rng link_rng{3};
  ota::OtaLink link{ota::ota_link_params(), Dbm{-90.0}, link_rng};
  ota::UpdatePlanner planner;
  auto report = planner.run(image, ota::UpdateTarget::kFpga, dev.id(), link,
                            dev.flash(), dev.mcu());
  ASSERT_TRUE(report.success);

  // The boot region now holds the image; register it and load.
  dev.store_design(image);
  dev.wake();
  EXPECT_NO_THROW((void)dev.load_design(image.name));
}

TEST(Integration, DailyDutyCycleBudgetWithOta) {
  // One sensor uplink per 10 minutes + one OTA update per month, modeled
  // over a day: average power stays battery-friendly.
  power::PlatformPowerModel model;
  power::EnergyLedger day{model};
  lora::LoraParams p{9, Hertz::from_kilohertz(500.0)};
  Seconds packet_airtime = lora::time_on_air(p, 20);
  for (int i = 0; i < 144; ++i) {
    day.record(power::Activity::kLoraTransmit, packet_airtime, Dbm{14.0});
    day.record_draw(power::Activity::kLoraReceive,
                    Seconds::from_milliseconds(22.0),
                    model.draw(power::Activity::kLoraReceive), "wakeup");
  }
  double active_s = day.total_time().value();
  day.record(power::Activity::kSleep, Seconds{86400.0 - active_s});
  // One-thirtieth of an OTA LoRa update per day: 6144/30 mJ.
  Millijoules ota_share{6144.0 / 30.0};
  double avg_mw =
      (day.total_energy().value() + ota_share.value()) / 86400.0;
  // Sub-0.1 mW: multi-year battery life.
  EXPECT_LT(avg_mw, 0.1);
}

TEST(Integration, CampaignProducesFig14StyleSpread) {
  // Small image so the test stays fast; relative spread is what matters.
  Rng rng{4};
  auto deployment = testbed::Deployment::campus(rng);
  Rng img_rng{5};
  auto image = fpga::generate_mcu_program("fw", 24 * 1024, img_rng);
  Rng campaign_rng{6};
  auto result = testbed::run_campaign(deployment, image,
                                      ota::UpdateTarget::kMcu, campaign_rng);
  ASSERT_EQ(result.successes(), 20u);
  auto cdf = result.time_cdf_minutes();
  // Far nodes retransmit: the CDF must have real spread, not a step.
  EXPECT_GT(cdf.back().value, cdf.front().value);
}

}  // namespace
}  // namespace tinysdr::core
