#include "core/concurrent.hpp"

#include <gtest/gtest.h>

namespace tinysdr::core {
namespace {

lora::LoraParams bw125() {
  return lora::LoraParams{8, Hertz::from_kilohertz(125.0)};
}
lora::LoraParams bw250() {
  return lora::LoraParams{8, Hertz::from_kilohertz(250.0)};
}
Hertz fs500() { return Hertz::from_kilohertz(500.0); }

TEST(ConcurrentReceiver, RejectsNonOrthogonalBranches) {
  EXPECT_THROW(ConcurrentReceiver({bw125(), bw125()}, fs500()),
               std::invalid_argument);
  EXPECT_THROW(ConcurrentReceiver({bw125()}, fs500()), std::invalid_argument);
  EXPECT_NO_THROW(ConcurrentReceiver({bw125(), bw250()}, fs500()));
}

TEST(ConcurrentReceiver, DesignUsesSeventeenPercent) {
  ConcurrentReceiver rx{{bw125(), bw250()}, fs500()};
  fpga::DeviceSpec dev;
  EXPECT_NEAR(rx.design().utilization(dev) * 100.0, 17.0, 1.0);
}

TEST(ConcurrentReceiver, PlatformPowerMatches207mW) {
  ConcurrentReceiver rx{{bw125(), bw250()}, fs500()};
  EXPECT_NEAR(rx.platform_power().value(), 207.0, 6.0);
}

TEST(ConcurrentTrial, CleanDecodingAtStrongSignals) {
  Rng rng{1};
  auto result = run_concurrent_trial(bw125(), bw250(), Dbm{-95.0},
                                     Dbm{-95.0}, 60, fs500(), rng);
  EXPECT_LT(result.ser_a, 0.02);
  EXPECT_LT(result.ser_b, 0.02);
  EXPECT_GT(result.symbols_a, 50u);
  // BW250 symbols are half as long: roughly twice as many.
  EXPECT_GT(result.symbols_b, result.symbols_a * 3 / 2);
}

TEST(ConcurrentTrial, OrthogonalityHoldsWithoutNoise) {
  // With both signals strong (far above the noise floor) the slopes are
  // quasi-orthogonal: each branch decodes its own stream.
  Rng rng{2};
  auto result = run_concurrent_trial(bw125(), bw250(), Dbm{-80.0},
                                     Dbm{-80.0}, 40, fs500(), rng);
  EXPECT_LT(result.ser_a, 0.01);
  EXPECT_LT(result.ser_b, 0.01);
}

TEST(ConcurrentTrial, FailsFarBelowSensitivity) {
  Rng rng{3};
  auto result = run_concurrent_trial(bw125(), bw250(), Dbm{-135.0},
                                     Dbm{-135.0}, 40, fs500(), rng);
  EXPECT_GT(result.ser_a, 0.5);
  EXPECT_GT(result.ser_b, 0.5);
}

TEST(ConcurrentTrial, ConcurrencyPenaltyIsFewDb) {
  // Fig. 15a: concurrent demodulation loses ~2 dB (BW125) and ~0.5 dB
  // (BW250) relative to single-signal sensitivity. Check the penalty is
  // present but bounded: at a level where single-TX decodes ~cleanly, the
  // concurrent case is degraded but not destroyed.
  Rng rng1{4}, rng2{4};
  Dbm level{-121.0};  // ~5 dB above BW125 single sensitivity knee
  double single = run_single_trial(bw125(), level, 150, fs500(), rng1);
  auto conc =
      run_concurrent_trial(bw125(), bw250(), level, level, 150, fs500(), rng2);
  EXPECT_LE(single, conc.ser_a + 0.05);
  EXPECT_LT(conc.ser_a, 0.5);
}

TEST(ConcurrentTrial, InterferencePowerSweepShowsCrossover) {
  // Fig. 15b: fix A near sensitivity, raise B. Error rate on A stays flat
  // while noise dominates, then climbs once B becomes the dominant
  // interferer.
  Rng rng{5};
  Dbm a_level{-120.0};
  double ser_weak_interferer = 0.0, ser_strong_interferer = 0.0;
  {
    Rng r{6};
    ser_weak_interferer =
        run_concurrent_trial(bw125(), bw250(), a_level, Dbm{-125.0}, 120,
                             fs500(), r)
            .ser_a;
  }
  {
    Rng r{7};
    ser_strong_interferer =
        run_concurrent_trial(bw125(), bw250(), a_level, Dbm{-100.0}, 120,
                             fs500(), r)
            .ser_a;
  }
  EXPECT_GT(ser_strong_interferer, ser_weak_interferer + 0.1);
}

TEST(SingleTrial, WaterfallAroundSensitivity) {
  Rng strong_rng{8}, weak_rng{9};
  double strong = run_single_trial(bw125(), Dbm{-115.0}, 100,
                                   Hertz::from_kilohertz(125.0), strong_rng);
  double weak = run_single_trial(bw125(), Dbm{-136.0}, 100,
                                 Hertz::from_kilohertz(125.0), weak_rng);
  EXPECT_LT(strong, 0.02);
  EXPECT_GT(weak, 0.3);
}

}  // namespace
}  // namespace tinysdr::core
