#include "core/device.hpp"

#include <gtest/gtest.h>

#include "core/platform_db.hpp"

namespace tinysdr::core {
namespace {

TEST(TinySdrDevice, StartsAsleepAtMicrowatts) {
  TinySdrDevice dev{1};
  EXPECT_EQ(dev.state(), DeviceState::kSleep);
  EXPECT_NEAR(dev.current_draw().microwatts(), 30.0, 3.0);
}

TEST(TinySdrDevice, OperationsRequireWake) {
  TinySdrDevice dev{1};
  lora::LoraParams p{8, Hertz::from_kilohertz(500.0)};
  std::vector<std::uint8_t> payload{1, 2, 3};
  EXPECT_THROW((void)dev.transmit_lora(payload, p, Dbm{14.0}),
               std::logic_error);
  EXPECT_THROW((void)dev.load_design("x"), std::logic_error);
}

TEST(TinySdrDevice, WakeupLatencyIs22ms) {
  TinySdrDevice dev{1};
  Seconds latency = dev.wake();
  EXPECT_NEAR(latency.milliseconds(), 22.0, 0.5);
  EXPECT_EQ(dev.state(), DeviceState::kActive);
  // Second wake is a no-op.
  EXPECT_DOUBLE_EQ(dev.wake().value(), 0.0);
}

TEST(TinySdrDevice, DesignStoreAndLoad) {
  TinySdrDevice dev{1};
  Rng rng{1};
  auto image = fpga::generate_bitstream(fpga::lora_rx_design(8),
                                        fpga::DeviceSpec{}, rng);
  dev.store_design(image);
  EXPECT_EQ(dev.stored_designs(), 1u);
  dev.wake();
  Seconds t = dev.load_design(image.name);
  EXPECT_NEAR(t.milliseconds(), 22.0, 2.0);
  EXPECT_EQ(dev.loaded_design(), image.name);
  EXPECT_THROW((void)dev.load_design("unknown"), std::logic_error);
}

TEST(TinySdrDevice, LoraTransmitProducesWaveformAndEnergy) {
  TinySdrDevice dev{1};
  dev.wake();
  dev.radio().set_frequency(Hertz::from_megahertz(915.0));
  lora::LoraParams p{8, Hertz::from_kilohertz(500.0)};
  std::vector<std::uint8_t> payload{0xCA, 0xFE};
  double energy_before = dev.ledger().total_energy().value();
  auto wave = dev.transmit_lora(payload, p, Dbm{14.0});
  EXPECT_FALSE(wave.empty());
  EXPECT_GT(dev.ledger().total_energy().value(), energy_before);
}

TEST(TinySdrDevice, LoraLoopbackThroughRadioPath) {
  // TX on one device, RX on another, through the AGC/ADC chain.
  TinySdrDevice tx{1}, rx{2};
  tx.wake();
  rx.wake();
  tx.radio().set_frequency(Hertz::from_megahertz(915.0));
  rx.radio().set_frequency(Hertz::from_megahertz(915.0));
  lora::LoraParams p{8, Hertz::from_kilohertz(500.0)};
  std::vector<std::uint8_t> payload{0x10, 0x20, 0x30};
  auto wave = tx.transmit_lora(payload, p, Dbm{0.0});

  // Pad as a capture window.
  dsp::Samples padded(4096, dsp::Complex{0, 0});
  padded.insert(padded.end(), wave.begin(), wave.end());
  padded.insert(padded.end(), 4096, dsp::Complex{0, 0});
  auto result = rx.receive_lora(padded, p, Seconds::from_milliseconds(50.0));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->packet.crc_valid);
  EXPECT_EQ(result->packet.payload, payload);
}

TEST(TinySdrDevice, BleBurstAcrossChannels) {
  TinySdrDevice dev{1};
  dev.wake();
  ble::AdvPacket beacon;
  beacon.adv_address = {1, 2, 3, 4, 5, 6};
  beacon.adv_data = {0x02, 0x01, 0x06};
  auto waves = dev.transmit_ble_burst(beacon, Dbm{0.0});
  EXPECT_EQ(waves.size(), 3u);
  for (const auto& w : waves) EXPECT_FALSE(w.empty());
  // Radio ends on the last advertising channel.
  EXPECT_EQ(dev.radio().band(), radio::Band::kIsm2400);
}

TEST(TinySdrDevice, SleepAccountsPlannedInterval) {
  TinySdrDevice dev{1};
  dev.wake();
  dev.sleep(Seconds{100.0});
  EXPECT_EQ(dev.state(), DeviceState::kSleep);
  // 100 s at ~30 uW = ~3 mJ of sleep energy recorded.
  bool found = false;
  for (const auto& e : dev.ledger().entries()) {
    if (e.note == "sleep") {
      EXPECT_NEAR(e.energy.value(), 3.0, 0.5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TinySdrDevice, DutyCycleEnergyBudget) {
  // A day of 0.1% duty cycling stays in the microamp-hour class.
  TinySdrDevice dev{1};
  dev.wake();
  dev.radio().set_frequency(Hertz::from_megahertz(915.0));
  lora::LoraParams p{8, Hertz::from_kilohertz(500.0)};
  std::vector<std::uint8_t> payload{1, 2, 3, 4};
  (void)dev.transmit_lora(payload, p, Dbm{14.0});
  dev.sleep(Seconds{86400.0 * 0.999});
  BatteryCapacity battery{1000.0, 3.7};
  double days = battery.energy().value() /
                dev.ledger().total_energy().value();
  EXPECT_GT(days, 1000.0);  // years of life
}

TEST(PlatformDb, Table1Invariants) {
  const auto& platforms = sdr_platforms();
  ASSERT_EQ(platforms.size(), 8u);
  const auto& tinysdr = platforms.back();
  EXPECT_EQ(tinysdr.name, "TinySDR");
  EXPECT_TRUE(tinysdr.ota_programming);
  // TinySDR is the only OTA-programmable platform.
  for (std::size_t i = 0; i + 1 < platforms.size(); ++i)
    EXPECT_FALSE(platforms[i].ota_programming) << platforms[i].name;
  // 10,000x sleep-power claim vs every platform with a sleep figure.
  for (const auto& p : platforms) {
    if (p.name == "TinySDR" || !p.sleep_power) continue;
    EXPECT_GE(p.sleep_power->value() / tinysdr.sleep_power->value(), 10000.0)
        << p.name;
  }
  // Cheapest and smallest in the table.
  for (const auto& p : platforms) {
    if (p.name == "TinySDR") continue;
    EXPECT_GT(p.cost_usd, tinysdr.cost_usd) << p.name;
    EXPECT_GT(p.size_cm2, tinysdr.size_cm2) << p.name;
  }
}

TEST(PlatformDb, Table2OnlyAt86rf215FitsAllRequirements) {
  // §3.1.1: "only the AT86RF215 supports all of our requirements":
  // both bands and under $10.
  const auto& modules = iq_radio_modules();
  int qualifying = 0;
  std::string winner;
  for (const auto& m : modules) {
    if (m.covers_900mhz && m.covers_2400mhz && m.cost_usd < 10.0) {
      ++qualifying;
      winner = m.name;
    }
  }
  EXPECT_EQ(qualifying, 1);
  EXPECT_EQ(winner, "AT86RF215");
}

TEST(PlatformDb, Table5TotalMatchesPaper) {
  EXPECT_NEAR(bom_total_usd(), 54.53, 0.01);
}

}  // namespace
}  // namespace tinysdr::core
