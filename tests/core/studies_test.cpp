// Tests for the §7 research-opportunity studies: phase-based localization,
// backscatter, rate adaptation, and the broadcast OTA MAC.
#include <gtest/gtest.h>

#include "core/backscatter.hpp"
#include "core/localization.hpp"
#include "lora/rate_adapt.hpp"
#include "ota/broadcast.hpp"

namespace tinysdr {
namespace {

// ----------------------------------------------------------- localization

TEST(PhaseRanging, ExactRecoveryWithoutNoise) {
  core::RangingConfig cfg;
  Rng rng{1};
  for (double d : {0.5, 3.0, 27.5, 80.0, 140.0}) {
    auto sweep = core::simulate_phase_sweep(cfg, d, 0.0, rng);
    auto est = core::estimate_range(cfg, sweep);
    EXPECT_NEAR(est.distance_m, d, 0.02) << "distance " << d;
    EXPECT_LT(est.residual_rad, 0.01);
  }
}

TEST(PhaseRanging, UnambiguousRangeFromStep) {
  core::RangingConfig cfg;  // 2 MHz step
  EXPECT_NEAR(cfg.unambiguous_range_m(), 149.9, 0.1);
}

TEST(PhaseRanging, ToleratesPhaseNoise) {
  core::RangingConfig cfg;
  Rng rng{2};
  auto sweep = core::simulate_phase_sweep(cfg, 42.0, 0.2, rng);
  auto est = core::estimate_range(cfg, sweep);
  EXPECT_NEAR(est.distance_m, 42.0, 2.0);
}

TEST(PhaseRanging, AliasesBeyondUnambiguousRange) {
  // A target past c/step folds back — the fundamental ambiguity.
  core::RangingConfig cfg;
  Rng rng{3};
  double d = cfg.unambiguous_range_m() + 10.0;
  auto sweep = core::simulate_phase_sweep(cfg, d, 0.0, rng);
  auto est = core::estimate_range(cfg, sweep);
  EXPECT_NEAR(est.distance_m, 10.0, 1.0);
}

TEST(PhaseRanging, FinerStepExtendsRange) {
  core::RangingConfig coarse;  // 2 MHz
  core::RangingConfig fine;
  fine.step = Hertz::from_megahertz(0.5);
  EXPECT_GT(fine.unambiguous_range_m(), coarse.unambiguous_range_m() * 3.9);
}

TEST(PhaseRanging, InputValidation) {
  core::RangingConfig cfg;
  Rng rng{4};
  EXPECT_THROW(core::simulate_phase_sweep(cfg, -1.0, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(core::estimate_range(cfg, {}), std::invalid_argument);
}

// ------------------------------------------------------------ backscatter

TEST(Backscatter, CleanDecoding) {
  core::BackscatterConfig cfg;
  core::BackscatterLink link{cfg};
  std::vector<bool> bits{false, true, true, false, true, false, false, true};
  auto rf = link.tag_modulate(bits);
  auto rx = link.decode(rf, bits.size());
  EXPECT_EQ(rx, bits);
}

TEST(Backscatter, ReflectionIsWeak) {
  // The reflected path must be ~20 dB below the carrier, or it isn't
  // backscatter.
  core::BackscatterConfig cfg;
  core::BackscatterLink link{cfg};
  auto on = link.tag_modulate(std::vector<bool>(4, true));
  auto off = link.tag_modulate(std::vector<bool>(4, false));
  double p_on = dsp::mean_power(on);
  double p_off = dsp::mean_power(off);
  EXPECT_GT(p_on, p_off);
  EXPECT_LT((p_on - p_off) / p_off, 0.5);  // small perturbation
}

TEST(Backscatter, BerLowAtHighCarrierSnr) {
  core::BackscatterConfig cfg;
  Rng rng{5};
  double ber = core::backscatter_ber(cfg, 200, 45.0, rng);
  EXPECT_LT(ber, 0.01);
}

TEST(Backscatter, BerDegradesWithSnr) {
  core::BackscatterConfig cfg;
  // The per-bit integrator has ~26 dB of processing gain over the 400
  // samples per bit, so errors only appear near 0 dB carrier SNR.
  Rng rng1{6}, rng2{6};
  double good = core::backscatter_ber(cfg, 200, 45.0, rng1);
  double bad = core::backscatter_ber(cfg, 200, -2.0, rng2);
  EXPECT_LE(good, bad);
  EXPECT_GT(bad, 0.05);
}

// -------------------------------------------------------- rate adaptation

TEST(RateAdapt, LadderOrderedFastToSlow) {
  auto ladder = lora::adr_ladder();
  ASSERT_EQ(ladder.size(), 6u);
  for (std::size_t i = 1; i < ladder.size(); ++i)
    EXPECT_GT(ladder[i].sf, ladder[i - 1].sf);
}

TEST(RateAdapt, StrongLinkGetsFastestRate) {
  auto chosen = lora::select_rate(Dbm{-60.0});
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->sf, 7);
}

TEST(RateAdapt, WeakLinkGetsSlowRate) {
  auto chosen = lora::select_rate(Dbm{-131.0});
  ASSERT_TRUE(chosen.has_value());
  EXPECT_GE(chosen->sf, 11);
}

TEST(RateAdapt, DeadLinkGetsNothing) {
  EXPECT_FALSE(lora::select_rate(Dbm{-140.0}).has_value());
}

TEST(RateAdapt, MarginShiftsChoice) {
  Dbm rssi{-120.5};
  auto tight = lora::select_rate(rssi, 0.0);
  auto safe = lora::select_rate(rssi, 6.0);
  ASSERT_TRUE(tight && safe);
  EXPECT_LT(tight->sf, safe->sf);
}

TEST(RateAdapt, AdaptationSavesAirtimeOnGoodLinks) {
  auto outcome = lora::evaluate_rate_adaptation(Dbm{-80.0}, 20);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->adaptive_sf, 7);
  // SF7 vs SF12: >= 20x airtime saving.
  EXPECT_GT(outcome->airtime_saving(), 0.9);
}

TEST(RateAdapt, NoSavingAtTheEdge) {
  auto outcome = lora::evaluate_rate_adaptation(Dbm{-132.0}, 20);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->adaptive_sf, 12);
  EXPECT_NEAR(outcome->airtime_saving(), 0.0, 1e-9);
}

// ---------------------------------------------------------- broadcast OTA

TEST(BroadcastOta, PerfectLinksSinglePass) {
  std::vector<std::uint8_t> image(6000, 0xAB);
  std::vector<ota::OtaLink> links;
  for (int i = 0; i < 10; ++i)
    links.emplace_back(ota::ota_link_params(), Dbm{-60.0},
                       Rng{static_cast<std::uint64_t>(i)});
  ota::BroadcastUpdater updater;
  auto outcome = updater.broadcast(image, links);
  EXPECT_EQ(outcome.nodes_complete, 10u);
  EXPECT_EQ(outcome.repair_rounds, 1u);
  EXPECT_EQ(outcome.packets_broadcast, (image.size() + 59) / 60);
}

TEST(BroadcastOta, LossyLinksRepairAndComplete) {
  std::vector<std::uint8_t> image(12000, 0x77);
  std::vector<ota::OtaLink> links;
  Dbm marginal =
      lora::sx1276_sensitivity(8, Hertz::from_kilohertz(500.0)) + 3.0;
  for (int i = 0; i < 10; ++i)
    links.emplace_back(ota::ota_link_params(), marginal,
                       Rng{static_cast<std::uint64_t>(100 + i)});
  ota::BroadcastUpdater updater;
  auto outcome = updater.broadcast(image, links);
  EXPECT_EQ(outcome.nodes_complete, 10u);
  EXPECT_GT(outcome.repair_rounds, 1u);
  EXPECT_GT(outcome.packets_broadcast, (image.size() + 59) / 60);
}

TEST(BroadcastOta, BeatsSequentialForManyNodes) {
  // The §7 claim: broadcasting amortizes airtime across nodes.
  std::vector<std::uint8_t> image(20000, 0x33);
  const int nodes = 20;
  Dbm rssi{-100.0};

  std::vector<ota::OtaLink> links;
  for (int i = 0; i < nodes; ++i)
    links.emplace_back(ota::ota_link_params(), rssi,
                       Rng{static_cast<std::uint64_t>(200 + i)});
  ota::BroadcastUpdater updater;
  auto broadcast = updater.broadcast(image, links);
  ASSERT_EQ(broadcast.nodes_complete, static_cast<std::size_t>(nodes));

  ota::AccessPoint ap;
  Seconds sequential{0.0};
  for (int i = 0; i < nodes; ++i) {
    ota::OtaLink link{ota::ota_link_params(), rssi,
                      Rng{static_cast<std::uint64_t>(300 + i)}};
    auto r = ap.transfer(image, static_cast<std::uint16_t>(i), link);
    ASSERT_TRUE(r.success);
    sequential += r.total_time;
  }
  EXPECT_GT(broadcast.speedup_vs(sequential), 5.0);
}

}  // namespace
}  // namespace tinysdr
