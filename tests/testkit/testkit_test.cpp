// The testkit's own contract: generators respect their bounds, failures
// report a (seed, index) pair that replays to the identical shrunk
// counterexample, and the fuzz driver's generated inputs are pure
// functions of (seed, index).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "testkit/bytes.hpp"
#include "testkit/gen.hpp"
#include "testkit/harness.hpp"
#include "testkit/property.hpp"

namespace tinysdr::testkit {
namespace {

PropertyConfig quiet_config() {
  PropertyConfig cfg;  // deliberately NOT from_env: tests must be hermetic
  cfg.cases = 100;
  return cfg;
}

// ------------------------------------------------------------- ByteSource

TEST(ByteSource, ExhaustedSourceAnswersZerosForever) {
  ByteSource src{{}};
  EXPECT_TRUE(src.exhausted());
  EXPECT_EQ(src.u8(), 0u);
  EXPECT_EQ(src.u64(), 0u);
  EXPECT_FALSE(src.boolean());
  EXPECT_EQ(src.uint_below(17), 0u);
  EXPECT_EQ(src.int_in(-5, 9), -5);
  EXPECT_EQ(src.unit(), 0.0);
  EXPECT_TRUE(src.take(8).empty());
}

TEST(ByteSource, LittleEndianCompositionAndBounds) {
  const std::vector<std::uint8_t> data{0x01, 0x02, 0x03, 0x04, 0xFF};
  ByteSource src{data};
  EXPECT_EQ(src.u32(), 0x04030201u);
  EXPECT_EQ(src.remaining(), 1u);
  auto tail = src.take(10);  // truncates, never pads
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0], 0xFFu);
  EXPECT_TRUE(src.exhausted());
}

TEST(ByteSource, BoundedDrawsStayInRange) {
  std::vector<std::uint8_t> data(64);
  std::iota(data.begin(), data.end(), std::uint8_t{0x39});
  ByteSource src{data};
  for (int i = 0; i < 8; ++i) {
    auto v = src.int_in(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
  EXPECT_LT(src.uint_below(7), 7u);
  double u = src.unit();
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
}

// ------------------------------------------------------------- generators

TEST(Gen, IntInStaysInRangeAndShrinksTowardZero) {
  auto g = gen::int_in(-20, 500);
  Rng rng{1};
  for (int i = 0; i < 200; ++i) {
    auto v = g(rng, 16);
    EXPECT_GE(v, -20);
    EXPECT_LE(v, 500);
    for (auto c : g.shrink(v)) {
      EXPECT_GE(c, -20);
      EXPECT_LE(c, 500);
    }
  }
  auto cands = g.shrink(400);
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands.front(), 0);  // simplest candidate first

  // A range excluding zero shrinks toward its boundary, never past it.
  auto positive = gen::int_in(3, 9);
  auto pc = positive.shrink(9);
  ASSERT_FALSE(pc.empty());
  EXPECT_EQ(pc.front(), 3);
}

TEST(Gen, VectorOfRespectsMinLenUnderGenerationAndShrinking) {
  auto g = gen::vector_of(gen::byte(), 2, 10);
  Rng rng{7};
  for (int i = 0; i < 100; ++i) {
    auto v = g(rng, 64);
    EXPECT_GE(v.size(), 2u);
    EXPECT_LE(v.size(), 10u);
    for (const auto& c : g.shrink(v)) EXPECT_GE(c.size(), 2u);
  }
}

TEST(Gen, FilterHoldsForDrawsAndShrinkCandidates) {
  auto even = gen::int_in(0, 1000).filter(
      [](std::int64_t v) { return v % 2 == 0; });
  Rng rng{11};
  for (int i = 0; i < 100; ++i) {
    auto v = even(rng, 8);
    EXPECT_EQ(v % 2, 0);
    for (auto c : even.shrink(v)) EXPECT_EQ(c % 2, 0);
  }
}

// ------------------------------------------------------- property runner

TEST(Property, PassingPropertyRunsEveryCase) {
  auto result = check(
      gen::int_in(0, 100), [](std::int64_t v) { return v >= 0; },
      quiet_config(), "non-negative");
  EXPECT_TRUE(result.ok) << result.message();
  EXPECT_EQ(result.cases_run, 100u);
  EXPECT_TRUE(result.message().empty());
}

TEST(Property, FailureShrinksToTheBoundaryCounterexample) {
  // Fails for v >= 50; the minimal counterexample is exactly 50.
  auto result = check(
      gen::int_in(0, 1000), [](std::int64_t v) { return v < 50; },
      quiet_config(), "below-fifty");
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.counterexample, "50");
  EXPECT_NE(result.message().find("TINYSDR_PROP_SEED="), std::string::npos);
  EXPECT_NE(result.message().find("TINYSDR_PROP_INDEX="), std::string::npos);
}

TEST(Property, ReportedSeedIndexReplaysTheSameCounterexample) {
  auto prop = [](std::int64_t v) { return v < 50; };
  auto first = check(gen::int_in(0, 1000), prop, quiet_config());
  ASSERT_FALSE(first.ok);

  // Replay exactly as the failure message instructs: same seed, pinned
  // index. One case runs and it lands on the identical counterexample.
  PropertyConfig replay = quiet_config();
  replay.seed = first.seed;
  replay.only_index = first.index;
  auto second = check(gen::int_in(0, 1000), prop, replay);
  ASSERT_FALSE(second.ok);
  EXPECT_EQ(second.cases_run, 1u);
  EXPECT_EQ(second.index, first.index);
  EXPECT_EQ(second.counterexample, first.counterexample);
  EXPECT_EQ(second.error, first.error);
}

TEST(Property, ThrowingPropertiesFailWithTheExceptionText) {
  auto result = check(
      gen::int_in(0, 10),
      [](std::int64_t v) {
        if (v > 3) throw std::runtime_error("boom at " + std::to_string(v));
      },
      quiet_config());
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.counterexample, "4");  // shrunk to the boundary
  EXPECT_NE(result.error.find("boom"), std::string::npos);
}

TEST(Property, FromEnvOverlaysReplayVariables) {
  ::setenv("TINYSDR_PROP_SEED", "12345", 1);
  ::setenv("TINYSDR_PROP_INDEX", "7", 1);
  ::setenv("TINYSDR_PROP_CASES", "9", 1);
  auto cfg = PropertyConfig::from_env();
  ::unsetenv("TINYSDR_PROP_SEED");
  ::unsetenv("TINYSDR_PROP_INDEX");
  ::unsetenv("TINYSDR_PROP_CASES");
  EXPECT_EQ(cfg.seed, 12345u);
  ASSERT_TRUE(cfg.only_index.has_value());
  EXPECT_EQ(*cfg.only_index, 7u);
  EXPECT_EQ(cfg.cases, 9u);
}

// ----------------------------------------------------------- fuzz driver

TEST(FuzzDriver, GeneratedInputsArePureInSeedAndIndex) {
  Harness h{"testkit.pure", [](std::span<const std::uint8_t>) {}, 128};
  for (std::uint64_t i : {std::uint64_t{0}, std::uint64_t{3},
                          std::uint64_t{250}}) {
    EXPECT_EQ(fuzz_input(h, 9, i), fuzz_input(h, 9, i));
  }
  EXPECT_NE(fuzz_input(h, 9, 5), fuzz_input(h, 10, 5));
}

TEST(FuzzDriver, FailureShrinksAndReplaysFromSeedIndex) {
  // Fails iff the input contains the byte 0x42 — a needle the byte-level
  // shrinker must preserve while dropping everything else.
  Harness h{"testkit.needle",
            [](std::span<const std::uint8_t> data) {
              for (auto b : data)
                if (b == 0x42) throw std::runtime_error("needle found");
            },
            64};
  FuzzRunConfig cfg;
  cfg.iterations = 2000;  // plenty to generate a 0x42 somewhere
  FuzzReport report = run_fuzz(h, cfg);
  ASSERT_FALSE(report.ok());
  const FuzzFailure& f = *report.failure;
  ASSERT_TRUE(f.index.has_value());

  // Replay: the recorded (seed, index) regenerates the failing input.
  EXPECT_EQ(fuzz_input(h, f.seed, *f.index), f.input);

  // The shrunk input still fails, is no larger, and kept the needle.
  EXPECT_LE(f.shrunk.size(), f.input.size());
  EXPECT_THROW(h.run(f.shrunk), std::runtime_error);
  bool has_needle = false;
  for (auto b : f.shrunk) has_needle |= (b == 0x42);
  EXPECT_TRUE(has_needle);
  EXPECT_NE(report.message().find("--replay-index"), std::string::npos);
}

TEST(FuzzDriver, CorpusEntriesRunBeforeGeneratedInputs) {
  std::size_t calls = 0;
  Harness h{"testkit.count",
            [&calls](std::span<const std::uint8_t>) { ++calls; }, 32};
  FuzzRunConfig cfg;
  cfg.iterations = 10;
  FuzzReport report = run_fuzz(h, cfg);  // no corpus dir: generated only
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.iterations_run, 10u);
  EXPECT_EQ(report.corpus_inputs, 0u);
  EXPECT_EQ(calls, 10u);
}

TEST(FuzzDriver, RegistryRejectsDuplicateNames) {
  HarnessRegistry reg;
  reg.add({"dup", [](std::span<const std::uint8_t>) {}, 16});
  EXPECT_THROW(reg.add({"dup", [](std::span<const std::uint8_t>) {}, 16}),
               std::invalid_argument);
  EXPECT_NE(reg.find("dup"), nullptr);
  EXPECT_EQ(reg.find("missing"), nullptr);
}

}  // namespace
}  // namespace tinysdr::testkit
