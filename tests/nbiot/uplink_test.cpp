#include "nbiot/uplink.hpp"

#include <gtest/gtest.h>

#include "channel/noise.hpp"
#include "common/rng.hpp"

namespace tinysdr::nbiot {
namespace {

std::vector<std::uint8_t> payload_bytes() { return {0xDE, 0xAD, 0x10, 0x01}; }

TEST(SingleToneConfig, NarrowestCellularUplink) {
  SingleToneConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.occupied_bandwidth().value(), 3750.0);
  EXPECT_DOUBLE_EQ(cfg.sample_rate().value(), 30000.0);
}

TEST(SingleToneModem, PilotSequenceFixedAndBalanced) {
  const auto& pilots = SingleToneModem::pilot_bits();
  ASSERT_EQ(pilots.size(), kPilotSymbols);
  int ones = 0;
  for (bool b : pilots) ones += b ? 1 : 0;
  EXPECT_GT(ones, 4);
  EXPECT_LT(ones, 12);
  // Deterministic across calls.
  EXPECT_EQ(SingleToneModem::pilot_bits(), pilots);
}

TEST(SingleToneModem, Pi2BpskConstantEnvelope) {
  SingleToneModem modem;
  auto iq = modem.modulate(payload_bytes());
  for (const auto& s : iq) EXPECT_NEAR(std::abs(s), 1.0f, 1e-5);
}

TEST(SingleToneModem, Pi2RotationBoundsPhaseSteps) {
  // pi/2-BPSK never transits through the origin: consecutive symbols
  // differ by at most 135 degrees of phase.
  SingleToneModem modem;
  SingleToneConfig cfg;
  auto iq = modem.modulate(payload_bytes());
  for (std::size_t k = cfg.samples_per_symbol; k < iq.size();
       k += cfg.samples_per_symbol) {
    auto rot = iq[k] * std::conj(iq[k - 1]);
    EXPECT_GT(std::abs(rot), 0.1f);  // no zero crossing
  }
}

TEST(SingleToneModem, CleanLoopback) {
  SingleToneModem modem;
  auto rx = modem.demodulate(modem.modulate(payload_bytes()));
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, payload_bytes());
}

TEST(SingleToneModem, LoopbackWithPaddingAndPhase) {
  SingleToneModem modem;
  auto iq = modem.modulate(payload_bytes());
  dsp::Complex rot{0.7071f, 0.7071f};
  for (auto& s : iq) s *= rot;  // unknown channel phase
  dsp::Samples padded(13, dsp::Complex{0, 0});
  padded.insert(padded.end(), iq.begin(), iq.end());
  padded.insert(padded.end(), 21, dsp::Complex{0, 0});
  auto rx = modem.demodulate(padded);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, payload_bytes());
}

TEST(SingleToneModem, LoopbackUnderNoise) {
  // 30 kHz sampling: floor -174+45+6 = -123 dBm; NB-IoT-class links decode
  // deep below LoRa's 125 kHz floor. Test at -115 dBm.
  SingleToneModem modem;
  SingleToneConfig cfg;
  auto iq = modem.modulate(payload_bytes());
  Rng rng{3};
  channel::AwgnChannel chan{cfg.sample_rate(), 6.0, rng};
  auto noisy = chan.apply(iq, Dbm{-115.0});
  auto rx = modem.demodulate(noisy);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, payload_bytes());
}

TEST(SingleToneModem, FailsDeepBelowFloor) {
  SingleToneModem modem;
  SingleToneConfig cfg;
  auto iq = modem.modulate(payload_bytes());
  Rng rng{4};
  channel::AwgnChannel chan{cfg.sample_rate(), 6.0, rng};
  auto noisy = chan.apply(iq, Dbm{-135.0});
  auto rx = modem.demodulate(noisy);
  if (rx) EXPECT_NE(*rx, payload_bytes());
}

TEST(SingleToneModem, RejectsOversizePayload) {
  SingleToneModem modem;
  EXPECT_THROW(modem.frame_bits(std::vector<std::uint8_t>(126, 0)),
               std::invalid_argument);
}

TEST(SingleToneModem, AirtimeScales) {
  SingleToneModem modem;
  // 4-byte payload: 16+8+32+16 = 72 symbols / 3750 = 19.2 ms.
  EXPECT_NEAR(modem.airtime(4).milliseconds(), 19.2, 1e-6);
  EXPECT_GT(modem.airtime(100).value(), modem.airtime(4).value());
}

class NbiotPayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NbiotPayloadSweep, RoundTrip) {
  SingleToneModem modem;
  Rng rng{GetParam() + 31};
  std::vector<std::uint8_t> payload(GetParam());
  for (auto& b : payload) b = rng.next_byte();
  auto rx = modem.demodulate(modem.modulate(payload));
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NbiotPayloadSweep,
                         ::testing::Values(0, 1, 16, 64, 125));

}  // namespace
}  // namespace tinysdr::nbiot
