#include "flow/blocks.hpp"
#include "flow/graph.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsp/fft.hpp"

namespace tinysdr::flow {
namespace {

dsp::Samples random_samples(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  dsp::Samples out(n);
  for (auto& s : out)
    s = dsp::Complex{static_cast<float>(rng.next_gaussian()),
                     static_cast<float>(rng.next_gaussian())};
  return out;
}

TEST(FlowGraph, SourceToSinkPassthrough) {
  FlowGraph graph;
  auto data = random_samples(5000, 1);
  graph.add<VectorSource>(data);
  auto* sink = graph.add<VectorSink>();
  auto report = graph.run();
  ASSERT_TRUE(report);
  EXPECT_EQ(report.state, RunState::kDrained);
  ASSERT_EQ(sink->data().size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(sink->data()[i], data[i]);
}

TEST(FlowGraph, EmptyGraphRunsTrivially) {
  FlowGraph graph;
  EXPECT_TRUE(graph.run());
}

TEST(FlowGraph, NcoSourceToneThroughProbe) {
  FlowGraph graph;
  graph.add<NcoSource>(0.1, 10000);
  auto* probe = graph.add<PowerProbe>();
  ASSERT_TRUE(graph.run());
  EXPECT_EQ(probe->samples(), 10000u);
  EXPECT_NEAR(probe->mean_power(), 1.0, 0.01);
  EXPECT_NEAR(probe->peak(), 1.0, 0.01);
}

TEST(FlowGraph, FirBlockMatchesDirectFilter) {
  auto taps = dsp::design_lowpass(14, 0.2);
  auto data = random_samples(4096, 2);

  FlowGraph graph;
  graph.add<VectorSource>(data);
  graph.add<FirBlock>(taps);
  auto* sink = graph.add<VectorSink>();
  ASSERT_TRUE(graph.run());

  dsp::FirFilter direct{taps};
  auto expected = direct.filter(data);
  ASSERT_EQ(sink->data().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(sink->data()[i].real(), expected[i].real(), 1e-6) << i;
    EXPECT_NEAR(sink->data()[i].imag(), expected[i].imag(), 1e-6) << i;
  }
}

TEST(FlowGraph, DecimatorKeepsEveryNth) {
  dsp::Samples ramp;
  for (int i = 0; i < 100; ++i)
    ramp.push_back(dsp::Complex{static_cast<float>(i), 0});
  FlowGraph graph;
  graph.add<VectorSource>(ramp);
  graph.add<DecimatorBlock>(4);
  auto* sink = graph.add<VectorSink>();
  ASSERT_TRUE(graph.run());
  ASSERT_EQ(sink->data().size(), 25u);
  for (std::size_t i = 0; i < 25; ++i)
    EXPECT_EQ(sink->data()[i].real(), static_cast<float>(i * 4));
}

TEST(FlowGraph, DecimatorRejectsZeroFactor) {
  EXPECT_THROW(DecimatorBlock{0}, std::invalid_argument);
}

TEST(FlowGraph, QuantizerBlockBoundsError) {
  auto data = random_samples(2000, 3);
  for (auto& s : data) s *= 0.1f;  // stay inside full scale
  FlowGraph graph;
  graph.add<VectorSource>(data);
  graph.add<QuantizerBlock>(13);
  auto* sink = graph.add<VectorSink>();
  ASSERT_TRUE(graph.run());
  ASSERT_EQ(sink->data().size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(std::abs(sink->data()[i] - data[i]), 0.0, 1.0 / 4095.0);
}

TEST(FlowGraph, MapBlockAppliesFunction) {
  dsp::Samples ones(10, dsp::Complex{1, 1});
  FlowGraph graph;
  graph.add<VectorSource>(ones);
  graph.add<MapBlock>([](dsp::Complex s) { return s * 2.0f; });
  auto* sink = graph.add<VectorSink>();
  ASSERT_TRUE(graph.run());
  for (const auto& s : sink->data()) EXPECT_EQ(s.real(), 2.0f);
}

TEST(FlowGraph, RadioRxFrontEndAsGraph) {
  // The paper's Fig. 6b front end sketched as a flowgraph: 4x-oversampled
  // tone -> 14-tap FIR -> decimate-by-4 -> quantize -> sink; the tone must
  // survive to critical rate with its frequency intact.
  const double cycles = 0.02;  // at 4x rate
  FlowGraph graph;
  graph.add<NcoSource>(cycles, 16384);
  graph.add<FirBlock>(dsp::design_lowpass(14, 0.125));
  graph.add<DecimatorBlock>(4);
  graph.add<QuantizerBlock>(13);
  auto* sink = graph.add<VectorSink>();
  ASSERT_TRUE(graph.run());
  ASSERT_EQ(sink->data().size(), 16384u / 4u);

  // Tone now at 4*cycles per sample: check via FFT peak.
  dsp::Samples window(sink->data().begin(), sink->data().begin() + 4096);
  dsp::FftPlan fft{4096};
  fft.forward(window);
  auto bin = dsp::peak_bin(window);
  EXPECT_NEAR(static_cast<double>(bin), 4.0 * cycles * 4096.0, 1.5);
}

TEST(FlowGraph, StallReportNamesTheBlockedBlock) {
  // A graph ending in a transform (no sink) offers the FIR readable input
  // that it can never move: run() must report the stall and name the fir,
  // not spin forever or blame the (backpressured, blameless) source.
  FlowGraph graph;
  graph.add<NcoSource>(0.1, 1 << 20);
  graph.add<FirBlock>(dsp::design_lowpass(4, 0.25));
  auto report = graph.run(10000);
  EXPECT_FALSE(report);
  EXPECT_EQ(report.state, RunState::kStalled);
  EXPECT_EQ(report.stalled_block, "fir");
}

TEST(FlowGraph, BudgetExhaustedReportedAsSuch) {
  FlowGraph graph;
  graph.add<NcoSource>(0.1, 1 << 22);
  graph.add<FirBlock>(dsp::design_lowpass(4, 0.25));
  graph.add<VectorSink>();
  auto report = graph.run(3);  // healthy graph, absurdly small budget
  EXPECT_FALSE(report);
  EXPECT_EQ(report.state, RunState::kBudgetExhausted);
  EXPECT_TRUE(report.stalled_block.empty());
  EXPECT_EQ(report.iterations, 3u);
}

TEST(FlowGraph, ReportCountsSamplesAcrossEdges) {
  FlowGraph graph;
  auto data = random_samples(1000, 11);
  graph.add<VectorSource>(data);
  graph.add<MapBlock>([](dsp::Complex s) { return s; });
  graph.add<VectorSink>();
  auto report = graph.run();
  ASSERT_TRUE(report);
  EXPECT_EQ(report.samples_streamed, 2000u);  // two edges, 1000 each
}

TEST(FlowGraph, TapReceivesExactCopyOfPrimaryStream) {
  FlowGraph graph;
  auto data = random_samples(3000, 4);
  auto* src = graph.add_block<VectorSource>(data);
  auto* fir = graph.add_block<FirBlock>(dsp::design_lowpass(8, 0.2));
  auto* sink = graph.add_block<VectorSink>();
  auto* tap = graph.add_block<VectorSink>();
  graph.connect(src, fir);
  graph.connect(fir, sink);
  graph.connect_tap(fir, tap);
  ASSERT_TRUE(graph.run());
  ASSERT_EQ(tap->data().size(), sink->data().size());
  for (std::size_t i = 0; i < sink->data().size(); ++i)
    EXPECT_EQ(tap->data()[i], sink->data()[i]) << i;
}

TEST(FlowGraph, TapFeedsAnIndependentChain) {
  // Fan-out: the same FIR output drives a decimating chain and a power
  // probe, GNU-Radio style.
  FlowGraph graph;
  auto* src = graph.add_block<NcoSource>(0.05, 8192);
  auto* fir = graph.add_block<FirBlock>(dsp::design_lowpass(14, 0.125));
  auto* dec = graph.add_block<DecimatorBlock>(4);
  auto* sink = graph.add_block<VectorSink>();
  auto* probe = graph.add_block<PowerProbe>();
  graph.connect(src, fir);
  graph.connect(fir, dec);
  graph.connect(dec, sink);
  graph.connect_tap(fir, probe);
  ASSERT_TRUE(graph.run());
  EXPECT_EQ(sink->data().size(), 8192u / 4u);
  EXPECT_EQ(probe->samples(), 8192u);
  // The probe taps the FIR output: in-band tone minus passband droop.
  EXPECT_NEAR(probe->mean_power(), 1.0, 0.25);
}

TEST(FlowGraph, ConnectRejectsDuplicateAndSelfEdges) {
  FlowGraph graph;
  auto* a = graph.add_block<NcoSource>(0.1, 16);
  auto* b = graph.add_block<VectorSink>();
  auto* c = graph.add_block<VectorSink>();
  graph.connect(a, b);
  EXPECT_THROW(graph.connect(a, c), std::invalid_argument);  // dup output
  EXPECT_THROW(graph.connect(c, b), std::invalid_argument);  // dup input
  EXPECT_THROW(graph.connect_tap(c, c), std::invalid_argument);  // self loop
}

TEST(FlowGraph, TimedTxGateFiresBurstAtSample) {
  // litex-style timed TX: the burst leaves exactly at sample 100 on the
  // edge's monotonic counter, silence before and after, stream ends at
  // exactly total_samples.
  auto burst = random_samples(64, 9);
  FlowGraph graph;
  graph.add<VectorSource>(burst);
  graph.add<TimedTxGate>(100, std::optional<std::uint64_t>{300});
  auto* sink = graph.add<VectorSink>();
  ASSERT_TRUE(graph.run());
  ASSERT_EQ(sink->data().size(), 300u);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(sink->data()[i], (dsp::Complex{0.0f, 0.0f})) << i;
  for (std::size_t i = 0; i < burst.size(); ++i)
    EXPECT_EQ(sink->data()[100 + i], burst[i]) << i;
  for (std::size_t i = 100 + burst.size(); i < 300; ++i)
    EXPECT_EQ(sink->data()[i], (dsp::Complex{0.0f, 0.0f})) << i;
}

TEST(FlowGraph, TimedTxGateWithoutTotalEndsAfterBurst) {
  auto burst = random_samples(32, 10);
  FlowGraph graph;
  graph.add<VectorSource>(burst);
  graph.add<TimedTxGate>(50);
  auto* sink = graph.add<VectorSink>();
  ASSERT_TRUE(graph.run());
  ASSERT_EQ(sink->data().size(), 50u + burst.size());
  for (std::size_t i = 0; i < burst.size(); ++i)
    EXPECT_EQ(sink->data()[50 + i], burst[i]) << i;
}

TEST(FlowGraph, TimedTxGateRejectsTotalBeforeFire) {
  EXPECT_THROW(TimedTxGate(100, std::optional<std::uint64_t>{50}),
               std::invalid_argument);
}

TEST(FlowGraph, CappedSinkDropsOverflowAndKeepsDraining) {
  // A capped sink must keep consuming past its cap (count, don't stall):
  // the graph still drains and the drop count is exact.
  auto data = random_samples(2500, 6);
  FlowGraph graph;
  graph.add<VectorSource>(data);
  auto* sink = graph.add<VectorSink>(1000);
  auto report = graph.run();
  ASSERT_TRUE(report);
  EXPECT_EQ(sink->data().size(), 1000u);
  EXPECT_EQ(sink->dropped(), 1500u);
  for (std::size_t i = 0; i < 1000; ++i)
    EXPECT_EQ(sink->data()[i], data[i]);
}

}  // namespace
}  // namespace tinysdr::flow
