#include "flow/blocks.hpp"
#include "flow/graph.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsp/fft.hpp"

namespace tinysdr::flow {
namespace {

dsp::Samples random_samples(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  dsp::Samples out(n);
  for (auto& s : out)
    s = dsp::Complex{static_cast<float>(rng.next_gaussian()),
                     static_cast<float>(rng.next_gaussian())};
  return out;
}

TEST(Ring, PushPopFifoOrder) {
  Ring ring{8};
  dsp::Samples in{{1, 0}, {2, 0}, {3, 0}};
  EXPECT_EQ(ring.push(in), 3u);
  EXPECT_EQ(ring.size(), 3u);
  dsp::Samples out;
  EXPECT_EQ(ring.pop(2, out), 2u);
  EXPECT_EQ(out[0].real(), 1.0f);
  EXPECT_EQ(out[1].real(), 2.0f);
  EXPECT_EQ(ring.size(), 1u);
}

TEST(Ring, RespectsCapacity) {
  Ring ring{4};
  dsp::Samples in(10, dsp::Complex{1, 1});
  EXPECT_EQ(ring.push(in), 4u);
  EXPECT_EQ(ring.space(), 0u);
  dsp::Samples out;
  ring.pop(2, out);
  EXPECT_EQ(ring.space(), 2u);
}

TEST(Ring, CompactionPreservesStream) {
  Ring ring{1 << 16};
  Rng rng{5};
  dsp::Samples reference;
  dsp::Samples drained;
  for (int round = 0; round < 50; ++round) {
    auto chunk = random_samples(500 + rng.next_below(1000), round);
    reference.insert(reference.end(), chunk.begin(), chunk.end());
    ring.push(chunk);
    ring.pop(300 + rng.next_below(900), drained);
  }
  ring.pop(ring.size(), drained);
  ASSERT_EQ(drained.size(), reference.size());
  for (std::size_t i = 0; i < drained.size(); ++i)
    EXPECT_EQ(drained[i], reference[i]) << i;
}

TEST(FlowGraph, SourceToSinkPassthrough) {
  FlowGraph graph;
  auto data = random_samples(5000, 1);
  graph.add<VectorSource>(data);
  auto* sink = graph.add<VectorSink>();
  ASSERT_TRUE(graph.run());
  ASSERT_EQ(sink->data().size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(sink->data()[i], data[i]);
}

TEST(FlowGraph, EmptyGraphRunsTrivially) {
  FlowGraph graph;
  EXPECT_TRUE(graph.run());
}

TEST(FlowGraph, NcoSourceToneThroughProbe) {
  FlowGraph graph;
  graph.add<NcoSource>(0.1, 10000);
  auto* probe = graph.add<PowerProbe>();
  ASSERT_TRUE(graph.run());
  EXPECT_EQ(probe->samples(), 10000u);
  EXPECT_NEAR(probe->mean_power(), 1.0, 0.01);
  EXPECT_NEAR(probe->peak(), 1.0, 0.01);
}

TEST(FlowGraph, FirBlockMatchesDirectFilter) {
  auto taps = dsp::design_lowpass(14, 0.2);
  auto data = random_samples(4096, 2);

  FlowGraph graph;
  graph.add<VectorSource>(data);
  graph.add<FirBlock>(taps);
  auto* sink = graph.add<VectorSink>();
  ASSERT_TRUE(graph.run());

  dsp::FirFilter direct{taps};
  auto expected = direct.filter(data);
  ASSERT_EQ(sink->data().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(sink->data()[i].real(), expected[i].real(), 1e-6) << i;
    EXPECT_NEAR(sink->data()[i].imag(), expected[i].imag(), 1e-6) << i;
  }
}

TEST(FlowGraph, DecimatorKeepsEveryNth) {
  dsp::Samples ramp;
  for (int i = 0; i < 100; ++i)
    ramp.push_back(dsp::Complex{static_cast<float>(i), 0});
  FlowGraph graph;
  graph.add<VectorSource>(ramp);
  graph.add<DecimatorBlock>(4);
  auto* sink = graph.add<VectorSink>();
  ASSERT_TRUE(graph.run());
  ASSERT_EQ(sink->data().size(), 25u);
  for (std::size_t i = 0; i < 25; ++i)
    EXPECT_EQ(sink->data()[i].real(), static_cast<float>(i * 4));
}

TEST(FlowGraph, DecimatorRejectsZeroFactor) {
  EXPECT_THROW(DecimatorBlock{0}, std::invalid_argument);
}

TEST(FlowGraph, QuantizerBlockBoundsError) {
  auto data = random_samples(2000, 3);
  for (auto& s : data) s *= 0.1f;  // stay inside full scale
  FlowGraph graph;
  graph.add<VectorSource>(data);
  graph.add<QuantizerBlock>(13);
  auto* sink = graph.add<VectorSink>();
  ASSERT_TRUE(graph.run());
  ASSERT_EQ(sink->data().size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(std::abs(sink->data()[i] - data[i]), 0.0, 1.0 / 4095.0);
}

TEST(FlowGraph, MapBlockAppliesFunction) {
  dsp::Samples ones(10, dsp::Complex{1, 1});
  FlowGraph graph;
  graph.add<VectorSource>(ones);
  graph.add<MapBlock>([](dsp::Complex s) { return s * 2.0f; });
  auto* sink = graph.add<VectorSink>();
  ASSERT_TRUE(graph.run());
  for (const auto& s : sink->data()) EXPECT_EQ(s.real(), 2.0f);
}

TEST(FlowGraph, RadioRxFrontEndAsGraph) {
  // The paper's Fig. 6b front end sketched as a flowgraph: 4x-oversampled
  // tone -> 14-tap FIR -> decimate-by-4 -> quantize -> sink; the tone must
  // survive to critical rate with its frequency intact.
  const double cycles = 0.02;  // at 4x rate
  FlowGraph graph;
  graph.add<NcoSource>(cycles, 16384);
  graph.add<FirBlock>(dsp::design_lowpass(14, 0.125));
  graph.add<DecimatorBlock>(4);
  graph.add<QuantizerBlock>(13);
  auto* sink = graph.add<VectorSink>();
  ASSERT_TRUE(graph.run());
  ASSERT_EQ(sink->data().size(), 16384u / 4u);

  // Tone now at 4*cycles per sample: check via FFT peak.
  dsp::Samples window(sink->data().begin(), sink->data().begin() + 4096);
  dsp::FftPlan fft{4096};
  fft.forward(window);
  auto bin = dsp::peak_bin(window);
  EXPECT_NEAR(static_cast<double>(bin), 4.0 * cycles * 4096.0, 1.5);
}

TEST(FlowGraph, StallDetectedWhenSinkMissing) {
  // A graph ending in a transform (no sink) fills its last ring and cannot
  // drain: run() must report the stall instead of spinning forever.
  FlowGraph graph;
  graph.add<NcoSource>(0.1, 1 << 20);
  graph.add<FirBlock>(dsp::design_lowpass(4, 0.25));
  EXPECT_FALSE(graph.run(10000));
}

}  // namespace
}  // namespace tinysdr::flow
