// PhyTxSource/PhyRxSink: a unified-PHY frame survives a flowgraph — the
// GNU-Radio-shaped integration the paper sketches in §7, with the PHY
// layer as the head and tail blocks.
#include <gtest/gtest.h>

#include "flow/blocks.hpp"
#include "flow/graph.hpp"
#include "phy/registry.hpp"

namespace tinysdr::flow {
namespace {

TEST(PhyBlocks, LoopbackThroughEveryRegisteredPhy) {
  const std::vector<std::uint8_t> payload{0xDE, 0xAD, 0xBE, 0xEF};
  for (const auto& entry : phy::Registry::builtin().entries()) {
    auto tx = entry.make_tx();
    auto rx = entry.make_rx();
    FlowGraph graph;
    graph.add<PhyTxSource>(*tx, payload, entry.pad_samples);
    auto* sink = graph.add<PhyRxSink>(*rx, payload);
    ASSERT_TRUE(graph.run()) << entry.name;
    auto result = sink->result();
    EXPECT_TRUE(result.frame_ok) << entry.name;
    EXPECT_EQ(result.bit_errors, 0u) << entry.name;
  }
}

TEST(PhyBlocks, RxSinkSeesTheExactWaveform) {
  const auto& entry = phy::Registry::builtin().at(phy::Protocol::kZigbee);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  const std::vector<std::uint8_t> payload{1, 2, 3};

  dsp::Samples direct;
  tx->modulate(payload, direct);

  FlowGraph graph;
  graph.add<PhyTxSource>(*tx, payload);
  auto* sink = graph.add<PhyRxSink>(*rx, payload);
  ASSERT_TRUE(graph.run());
  ASSERT_EQ(sink->data().size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_EQ(sink->data()[i], direct[i]) << i;
}

TEST(PhyBlocks, QuantizerBetweenPhyEndpointsStillDelivers) {
  // The tinySDR receive path as a flowgraph: PHY TX -> 13-bit ADC
  // quantization -> PHY RX. Quantization alone must not cost a frame.
  const auto& entry = phy::Registry::builtin().at(phy::Protocol::kBle);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  const std::vector<std::uint8_t> payload{0x10, 0x20};

  FlowGraph graph;
  graph.add<PhyTxSource>(*tx, payload);
  graph.add<QuantizerBlock>(13);
  auto* sink = graph.add<PhyRxSink>(*rx, payload);
  ASSERT_TRUE(graph.run());
  EXPECT_TRUE(sink->result().frame_ok);
}

}  // namespace
}  // namespace tinysdr::flow
