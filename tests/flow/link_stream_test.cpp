// Continuous-waveform LinkSimulator mode: frames streamed back-to-back
// through a flowgraph must reproduce the per-trial engine's PointResult
// byte for byte — same seeds, same floats, same verdicts — in both the
// single-thread and threaded (FlowThreaded* in TSan CI) schedules.
#include "flow/link_stream.hpp"

#include <gtest/gtest.h>

#include "phy/registry.hpp"

namespace tinysdr::flow {
namespace {

phy::TrialPlan small_plan() {
  phy::TrialPlan plan;
  plan.trials = 5;
  plan.payload_bytes = 8;
  plan.pad_samples = 24;
  plan.base_seed = 77;
  return plan;
}

TEST(LinkStream, MatchesRunPointExactly) {
  const auto& entry = phy::Registry::builtin().at(phy::Protocol::kZigbee);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  auto plan = small_plan();

  // A mid-curve RSSI so errors are plausible: identical verdicts matter
  // most where the link is marginal.
  const phy::SweepPoint point{Dbm{-97.0}, std::nullopt};
  phy::LinkSimulator classic{*tx, *rx, plan};
  auto expected = classic.run_point(point);

  StreamingLink stream{*tx, *rx, StreamPlan{plan, /*gap_samples=*/0}};
  auto got = stream.run(point);
  EXPECT_TRUE(got.report.drained());
  EXPECT_EQ(got.point, expected);
}

TEST(LinkStream, GapsBetweenFramesDoNotChangeVerdicts) {
  const auto& entry = phy::Registry::builtin().at(phy::Protocol::kBle);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  auto plan = small_plan();
  const phy::SweepPoint point{Dbm{-90.0}, std::nullopt};

  phy::LinkSimulator classic{*tx, *rx, plan};
  auto expected = classic.run_point(point);

  StreamingLink stream{*tx, *rx, StreamPlan{plan, /*gap_samples=*/173}};
  auto got = stream.run(point);
  EXPECT_TRUE(got.report.drained());
  EXPECT_EQ(got.point, expected);
  // Gaps flowed through the graph: more samples streamed than the frames
  // alone account for.
  EXPECT_GT(got.report.samples_streamed, expected.frames * 2);
}

TEST(LinkStream, InterfererSuperpositionMatchesRunPoint) {
  const auto& entry = phy::Registry::builtin().at(phy::Protocol::kZigbee);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  const auto& ble = phy::Registry::builtin().at(phy::Protocol::kBle);
  auto jam_tx = ble.make_tx();
  auto plan = small_plan();

  phy::PhyTxInterferer jammer{*jam_tx, plan.payload_bytes};
  const phy::SweepPoint point{Dbm{-94.0}, Dbm{-96.0}};

  phy::LinkSimulator classic{*tx, *rx, plan};
  classic.add_interferer(jammer);
  auto expected = classic.run_point(point);

  StreamingLink stream{*tx, *rx, StreamPlan{plan, /*gap_samples=*/31}};
  stream.add_interferer(jammer);
  auto got = stream.run(point);
  EXPECT_TRUE(got.report.drained());
  EXPECT_EQ(got.point, expected);
}

TEST(FlowThreadedLinkStream, ThreadedRunIsByteIdenticalToo) {
  const auto& entry = phy::Registry::builtin().at(phy::Protocol::kBle);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  auto plan = small_plan();
  const phy::SweepPoint point{Dbm{-92.0}, std::nullopt};

  phy::LinkSimulator classic{*tx, *rx, plan};
  auto expected = classic.run_point(point);

  StreamPlan splan{plan, /*gap_samples=*/64, /*ring_capacity=*/1 << 10};
  StreamingLink stream{*tx, *rx, splan};
  auto got = stream.run(point, /*threaded=*/true);
  EXPECT_TRUE(got.report.drained());
  EXPECT_EQ(got.point, expected);
}

}  // namespace
}  // namespace tinysdr::flow
