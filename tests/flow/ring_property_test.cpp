// Property tests for the SPSC ring protocol: any single-threaded
// interleaving of acquire/commit/close obeys the view-size, counter and
// FIFO invariants, checked against a simple model queue.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "flow/ring.hpp"
#include "testkit/gen.hpp"
#include "testkit/property.hpp"

namespace tinysdr::flow {
namespace {

using testkit::check;
namespace gen = testkit::gen;

dsp::Complex tag(std::uint64_t i) {
  return {static_cast<float>(i & 0xFFF), static_cast<float>(i >> 12)};
}

// An op is (kind % 3, amount): 0 = produce, 1 = consume, 2 = partial
// produce (commit less than acquired).
using Ops = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

testkit::Gen<Ops> ops() {
  return gen::vector_of(gen::pair_of(gen::uint_below(3), gen::uint_below(96)),
                        0, 0);
}

TEST(SpscRingProperty, ViewsNeverExceedCapacityAndFifoHolds) {
  auto result = check(ops(), [](const Ops& script) {
    SpscRing ring{64};
    const std::size_t cap = ring.capacity();
    std::deque<std::uint64_t> model;
    std::uint64_t next_in = 0;
    std::uint64_t next_out = 0;
    for (const auto& [kind, amount] : script) {
      if (kind == 1) {
        auto r = ring.acquire_read(amount);
        if (r.size() > model.size()) return false;          // over-read
        if (r.size() > cap) return false;                   // over-view
        if (r.stream_pos() != next_out) return false;       // clock skew
        for (std::size_t i = 0; i < r.size(); ++i)
          if (r[i] != tag(model[i])) return false;          // FIFO broken
        for (std::size_t i = 0; i < r.size(); ++i) model.pop_front();
        ring.commit_read(r.size());
        next_out += r.size();
      } else {
        auto w = ring.acquire_write(amount);
        if (w.size() > cap - model.size()) return false;    // over-acquire
        if (w.stream_pos() != next_in) return false;
        std::size_t n = kind == 2 ? w.size() / 2 : w.size();
        for (std::size_t i = 0; i < n; ++i) {
          w[i] = tag(next_in + i);
          model.push_back(next_in + i);
        }
        ring.commit_write(n);
        next_in += n;
      }
      // The free-running counters must always agree with the model.
      if (ring.total_produced() != next_in) return false;
      if (ring.total_consumed() != next_out) return false;
      if (ring.size() != model.size()) return false;
    }
    return true;
  });
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(SpscRingProperty, CommitBeyondAcquiredAlwaysThrows) {
  auto g = gen::pair_of(gen::uint_below(64), gen::uint_below(64));
  auto result = check(g, [](const std::pair<std::uint32_t, std::uint32_t>& c) {
    SpscRing ring{64};
    auto w = ring.acquire_write(c.first);
    bool threw = false;
    try {
      ring.commit_write(w.size() + 1 + c.second);
    } catch (const std::logic_error&) {
      threw = true;
    }
    if (!threw) return false;
    // The failed commit must not have corrupted the protocol state.
    ring.commit_write(w.size());
    return ring.readable() == w.size();
  });
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(SpscRingProperty, SampleClockIsMonotonicAcrossAnySchedule) {
  auto result = check(ops(), [](const Ops& script) {
    SpscRing ring{32};
    std::uint64_t last_wpos = 0;
    std::uint64_t last_rpos = 0;
    for (const auto& [kind, amount] : script) {
      if (kind == 1) {
        auto r = ring.acquire_read(amount);
        if (r.stream_pos() < last_rpos) return false;
        last_rpos = r.stream_pos();
        ring.commit_read(r.size());
      } else {
        auto w = ring.acquire_write(amount);
        if (w.stream_pos() < last_wpos) return false;
        last_wpos = w.stream_pos();
        for (std::size_t i = 0; i < w.size(); ++i)
          w[i] = dsp::Complex{0.0f, 0.0f};
        ring.commit_write(w.size());
      }
      if (ring.total_consumed() > ring.total_produced()) return false;
    }
    return true;
  });
  EXPECT_TRUE(result.ok) << result.message();
}

}  // namespace
}  // namespace tinysdr::flow
