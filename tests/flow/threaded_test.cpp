// Threaded scheduler: every block pinned to its own worker, parking on
// ring credit — and the sink output byte-identical to the deterministic
// single-thread schedule. (The FlowThreaded suite runs under TSan in CI.)
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "flow/blocks.hpp"
#include "flow/graph.hpp"
#include "obs/metrics.hpp"

namespace tinysdr::flow {
namespace {

dsp::Samples random_samples(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  dsp::Samples out(n);
  for (auto& s : out)
    s = dsp::Complex{static_cast<float>(rng.next_gaussian()),
                     static_cast<float>(rng.next_gaussian())};
  return out;
}

dsp::Samples run_front_end(bool threaded, std::size_t ring_capacity) {
  FlowGraph graph;
  auto* src = graph.add_block<NcoSource>(0.02, 1 << 16);
  auto* fir = graph.add_block<FirBlock>(dsp::design_lowpass(14, 0.125));
  auto* dec = graph.add_block<DecimatorBlock>(4);
  auto* quant = graph.add_block<QuantizerBlock>(13);
  auto* sink = graph.add_block<VectorSink>();
  graph.connect(src, fir, ring_capacity);
  graph.connect(fir, dec, ring_capacity);
  graph.connect(dec, quant, ring_capacity);
  graph.connect(quant, sink, ring_capacity);
  auto report = threaded ? graph.run_threaded() : graph.run();
  EXPECT_TRUE(report) << to_string(report.state);
  return sink->data();
}

TEST(FlowThreaded, ByteIdenticalToSingleThreadSchedule) {
  // Small rings force many small, racy chunks through the threaded run;
  // blocks are pure stream functions, so the output must not care.
  auto single = run_front_end(false, 1 << 14);
  auto threaded = run_front_end(true, 1 << 8);
  ASSERT_EQ(single.size(), threaded.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    ASSERT_EQ(std::memcmp(&single[i], &threaded[i], sizeof(single[i])), 0)
        << "sample " << i;
  }
}

TEST(FlowThreaded, PassthroughDeliversEverySample) {
  auto data = random_samples(100000, 21);
  FlowGraph graph;
  auto* src = graph.add_block<VectorSource>(data);
  auto* map = graph.add_block<MapBlock>([](dsp::Complex s) { return s; });
  auto* sink = graph.add_block<VectorSink>();
  graph.connect(src, map, 1 << 9);
  graph.connect(map, sink, 1 << 9);
  auto report = graph.run_threaded();
  ASSERT_TRUE(report);
  ASSERT_EQ(sink->data().size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    ASSERT_EQ(sink->data()[i], data[i]) << i;
}

TEST(FlowThreaded, TapsMirrorPrimaryUnderConcurrency) {
  FlowGraph graph;
  auto* src = graph.add_block<NcoSource>(0.01, 1 << 15);
  auto* fir = graph.add_block<FirBlock>(dsp::design_lowpass(8, 0.2));
  auto* sink = graph.add_block<VectorSink>();
  auto* tap = graph.add_block<VectorSink>();
  graph.connect(src, fir, 1 << 9);
  graph.connect(fir, sink, 1 << 9);
  graph.connect_tap(fir, tap, 1 << 9);
  ASSERT_TRUE(graph.run_threaded());
  ASSERT_EQ(tap->data().size(), sink->data().size());
  for (std::size_t i = 0; i < sink->data().size(); ++i)
    ASSERT_EQ(tap->data()[i], sink->data()[i]) << i;
}

TEST(FlowThreaded, StallIsDetectedNotDeadlocked) {
  // No sink: the FIR can never move its input. The threaded scheduler
  // must detect the logic stall, poison the rings, and return.
  FlowGraph graph;
  auto* src = graph.add_block<NcoSource>(0.1, 1 << 20);
  auto* fir = graph.add_block<FirBlock>(dsp::design_lowpass(4, 0.25));
  graph.connect(src, fir, 1 << 10);
  auto report = graph.run_threaded();
  EXPECT_FALSE(report);
  EXPECT_EQ(report.state, RunState::kStalled);
  EXPECT_EQ(report.stalled_block, "fir");
}

TEST(FlowThreaded, BackpressureCountersSurfaceInMetrics) {
  obs::Registry registry;
  obs::MetricsSession session{registry};
  FlowGraph graph;
  auto* src = graph.add_block<NcoSource>(0.02, 1 << 16);
  auto* fir = graph.add_block<FirBlock>(dsp::design_lowpass(14, 0.125));
  auto* sink = graph.add_block<VectorSink>();
  graph.connect(src, fir, 1 << 6);  // tiny ring: plenty of parking
  graph.connect(fir, sink, 1 << 6);
  ASSERT_TRUE(graph.run_threaded());
  EXPECT_EQ(sink->data().size(), std::size_t{1} << 16);
  // The run must at least report the flow counters (values are schedule
  // dependent, existence is not).
  EXPECT_GT(registry.counter("flow.graph_runs").value(), 0.0);
  EXPECT_GT(registry.counter("flow.samples_streamed").value(), 0.0);
}

}  // namespace
}  // namespace tinysdr::flow
