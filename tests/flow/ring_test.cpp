// SpscRing: the zero-copy protocol (acquire/commit span views), the
// monotonic sample clock, and the two-thread contract under load (the
// SpscRing* suites run under TSan in CI).
#include "flow/ring.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace tinysdr::flow {
namespace {

dsp::Complex tag(std::uint64_t i) {
  // Encode a stream index exactly in a float pair (24-bit mantissa each).
  return {static_cast<float>(i & 0xFFF), static_cast<float>(i >> 12)};
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing{10}.capacity(), 16u);
  EXPECT_EQ(SpscRing{16}.capacity(), 16u);
  EXPECT_EQ(SpscRing{1}.capacity(), 1u);
  EXPECT_THROW(SpscRing{0}, std::invalid_argument);
}

TEST(SpscRing, AcquireCommitRoundTripsInOrder) {
  SpscRing ring{8};
  auto w = ring.acquire_write(3);
  ASSERT_EQ(w.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) w[i] = tag(i);
  ring.commit_write(3);
  EXPECT_EQ(ring.readable(), 3u);

  auto r = ring.acquire_read();
  ASSERT_EQ(r.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(r[i], tag(i));
  ring.commit_read(2);
  EXPECT_EQ(ring.readable(), 1u);
  EXPECT_EQ(ring.writable(), 7u);
}

TEST(SpscRing, ViewsWrapViaSecondSpan) {
  SpscRing ring{8};
  ring.commit_write(ring.acquire_write(6).size() == 6 ? 6 : 0);
  ring.commit_read(ring.acquire_read(6).size() == 6 ? 6 : 0);
  // head = tail = 6; acquiring 4 free slots must wrap 6,7 -> 0,1.
  auto w = ring.acquire_write(4);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.first().size(), 2u);
  EXPECT_EQ(w.second().size(), 2u);
  for (std::size_t i = 0; i < 4; ++i) w[i] = tag(100 + i);
  ring.commit_write(4);

  auto r = ring.acquire_read();
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r.first().size(), 2u);
  EXPECT_EQ(r.second().size(), 2u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(r[i], tag(100 + i));
  // chunk() never crosses the wrap seam.
  EXPECT_EQ(r.chunk(0, 4).size(), 2u);
  EXPECT_EQ(r.chunk(2, 4).size(), 2u);
}

TEST(SpscRing, CommitBeyondAcquiredThrows) {
  SpscRing ring{8};
  (void)ring.acquire_write(4);
  EXPECT_THROW(ring.commit_write(5), std::logic_error);
  ring.commit_write(4);
  (void)ring.acquire_read(2);
  EXPECT_THROW(ring.commit_read(3), std::logic_error);
}

TEST(SpscRing, StreamPosIsTheMonotonicSampleClock) {
  SpscRing ring{8};
  std::uint64_t expected_write = 0;
  std::uint64_t expected_read = 0;
  for (int round = 0; round < 10; ++round) {
    auto w = ring.acquire_write(5);
    EXPECT_EQ(w.stream_pos(), expected_write);
    ring.commit_write(w.size());
    expected_write += w.size();
    auto r = ring.acquire_read();
    EXPECT_EQ(r.stream_pos(), expected_read);
    ring.commit_read(r.size());
    expected_read += r.size();
  }
  EXPECT_EQ(ring.total_produced(), expected_write);
  EXPECT_EQ(ring.total_consumed(), expected_read);
}

TEST(SpscRing, DoneOnlyWhenClosedAndFullyVisible) {
  SpscRing ring{8};
  auto w = ring.acquire_write(3);
  (void)w;
  ring.commit_write(3);
  EXPECT_FALSE(ring.acquire_read().done());  // not closed yet
  ring.close();
  auto r = ring.acquire_read();
  EXPECT_TRUE(r.done());  // closed and this view covers everything
  ring.commit_read(r.size());
  auto empty = ring.acquire_read();
  EXPECT_TRUE(empty.done());
  EXPECT_TRUE(empty.empty());
}

TEST(SpscRing, WaitReadableReturnsZeroWhenClosedAndDrained) {
  SpscRing ring{8};
  ring.set_blocking(true);
  ring.close();
  EXPECT_EQ(ring.wait_readable(), 0u);
  EXPECT_EQ(ring.wait_writable(), 8u);
}

// ------------------------------------------------------- two-thread load

TEST(SpscRingStress, ContendedStreamKeepsOrderAndCounts) {
  constexpr std::uint64_t kTotal = 1 << 20;
  SpscRing ring{1 << 10};
  ring.set_blocking(true);

  std::thread producer([&] {
    Rng rng{42};
    std::uint64_t sent = 0;
    while (sent < kTotal) {
      std::size_t want = 1 + rng.next_below(700);
      (void)ring.wait_writable();
      auto w = ring.acquire_write(want);
      std::size_t n =
          std::min<std::uint64_t>(w.size(), kTotal - sent);
      for (std::size_t i = 0; i < n; ++i) w[i] = tag(sent + i);
      ring.commit_write(n);
      sent += n;
    }
    ring.close();
  });

  Rng rng{43};
  std::uint64_t got = 0;
  bool ordered = true;
  for (;;) {
    std::size_t avail = ring.wait_readable();
    if (avail == 0) break;
    auto r = ring.acquire_read(1 + rng.next_below(900));
    EXPECT_EQ(r.stream_pos(), got);
    for (std::size_t i = 0; i < r.size(); ++i)
      ordered &= r[i] == tag(got + i);
    got += r.size();
    ring.commit_read(r.size());
  }
  producer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(got, kTotal);
  EXPECT_EQ(ring.total_produced(), kTotal);
  EXPECT_EQ(ring.total_consumed(), kTotal);
}

TEST(SpscRingStress, CloseMidStreamWakesTheConsumer) {
  SpscRing ring{64};
  ring.set_blocking(true);
  std::thread producer([&] {
    auto w = ring.acquire_write(10);
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = tag(i);
    ring.commit_write(w.size());
    ring.close();
  });
  std::uint64_t got = 0;
  for (;;) {
    std::size_t avail = ring.wait_readable();
    if (avail == 0) break;
    auto r = ring.acquire_read();
    got += r.size();
    ring.commit_read(r.size());
  }
  producer.join();
  EXPECT_EQ(got, 10u);
}

}  // namespace
}  // namespace tinysdr::flow
