// Shard-merge edge cases: Tracer::absorb event ordering and
// Registry::merge_from over journaled histogram shards — the two
// operations the parallel campaign's byte-identity guarantee stands on.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tinysdr::obs {
namespace {

// ------------------------------------------------------- Tracer::absorb

TEST(TracerAbsorb, PreservesShardOrderOldestFirst) {
  Tracer shard = Tracer::unbounded();
  for (int i = 0; i < 5; ++i) {
    shard.set_time(Seconds{static_cast<double>(i)});
    shard.instant("t", "e" + std::to_string(i));
  }
  Tracer campaign;
  campaign.absorb(shard);
  auto events = campaign.events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(events[static_cast<std::size_t>(i)].name,
              "e" + std::to_string(i));
}

TEST(TracerAbsorb, ShardsLandInAbsorptionOrderWithShiftedBases) {
  auto shard = [](const char* name, double t) {
    Tracer s = Tracer::unbounded();
    s.set_time(Seconds{t});
    s.instant("t", name);
    return s;
  };
  // Absorb in the campaign's node-index order; each shard's events land
  // after the previous shard's timeline regardless of recording times.
  Tracer a = shard("a", 3.0);
  Tracer b = shard("b", 1.0);
  Tracer campaign;
  campaign.absorb(a);
  campaign.shift_base(Seconds{5.0});
  campaign.absorb(b);
  auto events = campaign.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_DOUBLE_EQ(events[0].ts_us, 3e6);
  EXPECT_EQ(events[1].name, "b");
  EXPECT_DOUBLE_EQ(events[1].ts_us, 6e6);  // 5 s base + 1 s relative
}

TEST(TracerAbsorb, EmptyShardIsANoop) {
  Tracer campaign;
  campaign.instant("t", "before");
  Tracer empty = Tracer::unbounded();
  std::string before = campaign.chrome_json();
  campaign.absorb(empty);
  EXPECT_EQ(campaign.chrome_json(), before);
}

TEST(TracerAbsorb, MergesTrackNamesAndDropCounts) {
  Tracer overflowing{1};
  overflowing.name_track(7, "node-7");
  overflowing.instant("t", "kept?");
  overflowing.instant("t", "kept");
  EXPECT_EQ(overflowing.dropped(), 1u);

  Tracer campaign;
  campaign.absorb(overflowing);
  EXPECT_EQ(campaign.dropped(), 1u);
  // Track metadata travels with the shard: the merged export names the
  // shard's track.
  EXPECT_NE(campaign.chrome_json().find("node-7"), std::string::npos);
}

// ------------------------------------------- Registry::merge_from (journal)

TEST(RegistryMerge, EmptyJournaledShardIsANoop) {
  Registry campaign;
  campaign.counter("c").add(2.0);
  campaign.histogram("h", HistogramSpec::linear(0.0, 10.0, 5)).observe(3.0);
  std::string before = campaign.json();

  Registry shard;
  shard.enable_journal();
  campaign.merge_from(shard);
  EXPECT_EQ(campaign.json(), before);
}

TEST(RegistryMerge, JournaledHistogramShardsReplayBitExact) {
  // The journal replays float accumulation op by op, so a sharded run
  // must produce the exact accumulator state of the serial run — not
  // just the same bucket counts.
  const HistogramSpec spec = HistogramSpec::log_scale(1e-3, 1e3, 12);
  const double xs[] = {0.1, 0.7, 1e-4, 5.0, 999.0, 2e3, 0.25};

  Registry serial;
  for (double x : xs) serial.histogram("h", spec).observe(x);

  Registry merged;
  Registry shard_a, shard_b;
  shard_a.enable_journal();
  shard_b.enable_journal();
  for (int i = 0; i < 4; ++i) shard_a.histogram("h", spec).observe(xs[i]);
  for (int i = 4; i < 7; ++i) shard_b.histogram("h", spec).observe(xs[i]);
  merged.merge_from(shard_a);
  merged.merge_from(shard_b);

  EXPECT_EQ(merged.snapshot(), serial.snapshot());
  EXPECT_EQ(merged.json(), serial.json());
}

TEST(RegistryMerge, DuplicateMetricNamesAccumulateAcrossShards) {
  Registry campaign;
  Registry shard_a, shard_b;
  shard_a.enable_journal();
  shard_b.enable_journal();
  // Both shards touch the *same* counter and histogram names — the
  // normal case, since every node runs the same instrumented code.
  shard_a.counter("ota.transfers").add(3.0);
  shard_b.counter("ota.transfers").add(4.0);
  const HistogramSpec spec = HistogramSpec::linear(0.0, 10.0, 10);
  shard_a.histogram("h", spec).observe(1.0);
  shard_b.histogram("h", spec).observe(9.0);

  campaign.merge_from(shard_a);
  campaign.merge_from(shard_b);
  EXPECT_DOUBLE_EQ(campaign.counters().at("ota.transfers").value(), 7.0);
  EXPECT_EQ(campaign.histograms().at("h").count(), 2u);
  EXPECT_DOUBLE_EQ(campaign.histograms().at("h").min(), 1.0);
  EXPECT_DOUBLE_EQ(campaign.histograms().at("h").max(), 9.0);
}

TEST(RegistryMerge, MergeThenSnapshotIsDeterministic) {
  auto build = [] {
    Registry campaign;
    for (int shard_idx = 0; shard_idx < 3; ++shard_idx) {
      Registry shard;
      shard.enable_journal();
      shard.counter("n").add(static_cast<double>(shard_idx) + 0.5);
      shard.histogram("h", HistogramSpec::log_scale(0.1, 100.0, 8))
          .observe(static_cast<double>(shard_idx) * 1.1 + 0.2);
      campaign.merge_from(shard);
    }
    return campaign.json();
  };
  std::string a = build();
  std::string b = build();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tinysdr::obs
