#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "exec/cancel.hpp"
#include "exec/parallel_for.hpp"
#include "obs/json.hpp"

namespace tinysdr::obs {
namespace {

TEST(FlightRecorder, NullSinkByDefault) {
  EXPECT_EQ(flight(), nullptr);
  // dump_flight against the null sink is a no-op, not a crash.
  EXPECT_TRUE(dump_flight("nothing installed").empty());
}

TEST(FlightRecorder, SessionInstallsAndRestores) {
  FlightRecorder a, b;
  EXPECT_EQ(flight(), nullptr);
  {
    FlightSession sa{a};
    EXPECT_EQ(flight(), &a);
    {
      FlightSession sb{b};
      EXPECT_EQ(flight(), &b);
    }
    EXPECT_EQ(flight(), &a);
  }
  EXPECT_EQ(flight(), nullptr);
}

TEST(FlightRecorder, RecordsWithSimTimestampsNodeAndLevel) {
  FlightRecorder r;
  r.set_node(37);
  r.set_time(Seconds{0.002});
  r.record(FlightLevel::kWarn, "power", "brownout-reboot",
           {TraceArg::num("bytes_received", 2048.0)});
  r.set_time(Seconds{0.004});
  r.record(FlightLevel::kInfo, "ota", "session-resume");
  auto records = r.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].ts_us, 2000.0);
  EXPECT_EQ(records[0].level, FlightLevel::kWarn);
  EXPECT_EQ(records[0].node, 37u);
  EXPECT_STREQ(records[0].component, "power");
  EXPECT_EQ(records[0].message, "brownout-reboot");
  ASSERT_EQ(records[0].args.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].args[0].number, 2048.0);
  EXPECT_DOUBLE_EQ(records[1].ts_us, 4000.0);
}

TEST(FlightRecorder, RingDropsOldest) {
  FlightRecorder r{4};
  for (int i = 0; i < 7; ++i)
    r.record(FlightLevel::kInfo, "test", "m" + std::to_string(i));
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.capacity(), 4u);
  EXPECT_EQ(r.dropped(), 3u);
  auto records = r.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].message, "m3");
  EXPECT_EQ(records[3].message, "m6");
}

TEST(FlightRecorder, CountComponentAndLevelFloor) {
  FlightRecorder r;
  r.record(FlightLevel::kDebug, "a", "d");
  r.record(FlightLevel::kInfo, "a", "i");
  r.record(FlightLevel::kWarn, "b", "w");
  r.record(FlightLevel::kError, "b", "e");
  EXPECT_EQ(r.count_component("a"), 2u);
  EXPECT_EQ(r.count_component("b"), 2u);
  EXPECT_EQ(r.count_at_least(FlightLevel::kDebug), 4u);
  EXPECT_EQ(r.count_at_least(FlightLevel::kWarn), 2u);
  EXPECT_EQ(r.count_at_least(FlightLevel::kError), 1u);
}

TEST(FlightRecorder, AbsorbOffsetsShardTimestamps) {
  // Two shards recorded against base 0, merged in node order with the
  // campaign pattern: absorb, then shift_base by the shard's duration.
  auto shard = [](std::uint32_t node, const char* msg) {
    FlightRecorder s = FlightRecorder::unbounded();
    s.set_node(node);
    s.set_time(Seconds{1.0});
    s.record(FlightLevel::kInfo, "ota", msg);
    return s;
  };
  FlightRecorder a = shard(1, "first");
  FlightRecorder b = shard(2, "second");

  FlightRecorder campaign;
  campaign.absorb(a);
  campaign.shift_base(Seconds{10.0});
  campaign.absorb(b);
  campaign.shift_base(Seconds{10.0});

  auto records = campaign.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].ts_us, 1e6);
  EXPECT_EQ(records[0].node, 1u);
  EXPECT_DOUBLE_EQ(records[1].ts_us, 11e6);  // laid after the first shard
  EXPECT_EQ(records[1].node, 2u);
}

TEST(FlightRecorder, AbsorbIntoBoundedRingAppliesSerialDropSemantics) {
  FlightRecorder shard = FlightRecorder::unbounded();
  for (int i = 0; i < 6; ++i)
    shard.record(FlightLevel::kInfo, "t", "m" + std::to_string(i));
  EXPECT_EQ(shard.dropped(), 0u);

  FlightRecorder campaign{4};
  campaign.absorb(shard);
  EXPECT_EQ(campaign.size(), 4u);
  EXPECT_EQ(campaign.dropped(), 2u);
  EXPECT_EQ(campaign.records()[0].message, "m2");
}

TEST(FlightRecorder, JsonIsSchemaValidAndDeterministic) {
  auto build = [] {
    FlightRecorder r;
    r.set_node(3);
    r.set_time(Seconds{0.5});
    r.record(FlightLevel::kError, "ota", "update-failed: retry-budget",
             {TraceArg::num("retransmissions", 9.0),
              TraceArg::str("note", "quo\"te\n")});
    return r.json("campaign: 1 node(s) failed");
  };
  std::string a = build();
  EXPECT_EQ(a, build());  // byte-identical across identical runs

  auto doc = JsonValue::parse(a);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->text, "tinysdr-flight-v1");
  EXPECT_EQ(doc->find("reason")->text, "campaign: 1 node(s) failed");
  const JsonValue* records = doc->find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->items.size(), 1u);
  const JsonValue& rec = records->items[0];
  EXPECT_EQ(rec.find("level")->text, "error");
  EXPECT_DOUBLE_EQ(rec.find("node")->number, 3.0);
  EXPECT_EQ(rec.find("component")->text, "ota");
  EXPECT_EQ(rec.find("message")->text, "update-failed: retry-budget");
  EXPECT_DOUBLE_EQ(rec.find("args")->find("retransmissions")->number, 9.0);
}

TEST(FlightRecorder, DumpFlightWritesConfiguredPath) {
  std::string path =
      testing::TempDir() + "tinysdr_flight_dump_test.json";
  std::remove(path.c_str());
  FlightRecorder r;
  r.set_dump_path(path);
  r.record(FlightLevel::kWarn, "sim", "fault-fired");
  {
    FlightSession session{r};
    EXPECT_EQ(dump_flight("test reason"), path);
  }
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = JsonValue::parse(buf.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("reason")->text, "test reason");
  EXPECT_EQ(doc->find("records")->items.size(), 1u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, DumpFlightNoopWithoutPath) {
  FlightRecorder r;
  r.record(FlightLevel::kError, "t", "boom");
  FlightSession session{r};
  // No dump path configured and (in this test) no env override: nowhere
  // to write, so nothing is written.
  if (std::getenv("TINYSDR_FLIGHT_DUMP") == nullptr) {
    EXPECT_TRUE(dump_flight("no sink").empty());
  }
}

TEST(FlightRecorder, CancelledExecRegionLeavesAWarnRecord) {
  FlightRecorder r;
  FlightSession session{r};
  exec::CancellationSource source;
  source.cancel();  // pre-cancelled: the region stops before any item
  exec::ExecPolicy policy = exec::ExecPolicy::serial();
  policy.cancel = source.token();
  auto status = exec::parallel_for(64, policy, [](std::size_t, std::size_t) {});
  EXPECT_FALSE(status.complete());
  EXPECT_EQ(r.count_component("exec"), 1u);
  EXPECT_EQ(r.count_at_least(FlightLevel::kWarn), 1u);
  EXPECT_EQ(r.records()[0].message, "cancelled");
}

TEST(FlightRecorder, CompleteExecRegionStaysSilent) {
  FlightRecorder r;
  FlightSession session{r};
  auto status = exec::parallel_for(64, exec::ExecPolicy::serial(),
                                   [](std::size_t, std::size_t) {});
  EXPECT_TRUE(status.complete());
  EXPECT_EQ(r.size(), 0u);
}

TEST(FlightRecorder, ClearResetsEverything) {
  FlightRecorder r{2};
  r.set_node(5);
  r.set_time(Seconds{1.0});
  for (int i = 0; i < 4; ++i) r.record(FlightLevel::kInfo, "t", "m");
  r.clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.dropped(), 0u);
  EXPECT_EQ(r.node(), 0u);
  EXPECT_DOUBLE_EQ(r.now().value(), 0.0);
}

}  // namespace
}  // namespace tinysdr::obs
