#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include "obs/json.hpp"

namespace tinysdr::obs {
namespace {

TEST(Tracer, NullSinkByDefault) {
  EXPECT_EQ(tracer(), nullptr);
  // TraceSpan against the null sink is a no-op, not a crash.
  TraceSpan span{"test", "noop"};
  span.arg("x", 1.0);
}

TEST(Tracer, SessionInstallsAndRestores) {
  Tracer a, b;
  EXPECT_EQ(tracer(), nullptr);
  {
    TraceSession sa{a};
    EXPECT_EQ(tracer(), &a);
    {
      TraceSession sb{b};
      EXPECT_EQ(tracer(), &b);
    }
    EXPECT_EQ(tracer(), &a);
  }
  EXPECT_EQ(tracer(), nullptr);
}

TEST(Tracer, ClockArithmetic) {
  Tracer t;
  EXPECT_DOUBLE_EQ(t.now().value(), 0.0);
  t.set_time(Seconds{1.5});
  EXPECT_DOUBLE_EQ(t.now().value(), 1.5);
  t.shift_base(Seconds{2.0});
  // Base moved, relative clock restarted.
  EXPECT_DOUBLE_EQ(t.now().value(), 2.0);
  t.set_time(Seconds{0.25});
  EXPECT_DOUBLE_EQ(t.now().value(), 2.25);
  t.reset_clock();
  EXPECT_DOUBLE_EQ(t.now().value(), 0.0);
}

TEST(Tracer, RecordsEventsWithSimTimestamps) {
  Tracer t;
  TraceSession session{t};
  t.set_time(Seconds{0.001});
  t.instant("cat", "first");
  t.set_time(Seconds{0.002});
  t.counter("cat", "level", 42.0);
  auto events = t.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].ts_us, 1000.0);
  EXPECT_EQ(events[0].name, "first");
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_DOUBLE_EQ(events[1].ts_us, 2000.0);
  EXPECT_EQ(events[1].phase, 'C');
}

TEST(Tracer, RingDropsOldest) {
  Tracer t{4};
  TraceSession session{t};
  for (int i = 0; i < 7; ++i)
    t.instant("cat", "e" + std::to_string(i));
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.capacity(), 4u);
  EXPECT_EQ(t.dropped(), 3u);
  auto events = t.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest three were overwritten; survivors are in order.
  EXPECT_EQ(events[0].name, "e3");
  EXPECT_EQ(events[3].name, "e6");
}

TEST(Tracer, SpanEmitsCompleteEventWithArgs) {
  Tracer t;
  TraceSession session{t};
  t.set_time(Seconds{1.0});
  {
    TraceSpan span{"cat", "work"};
    span.arg("items", 3.0);
    span.arg("mode", std::string{"fast"});
    t.set_time(Seconds{3.0});
  }
  auto events = t.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_DOUBLE_EQ(events[0].ts_us, 1e6);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 2e6);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].key, "items");
  EXPECT_DOUBLE_EQ(events[0].args[0].number, 3.0);
  EXPECT_EQ(events[0].args[1].text, "fast");
}

TEST(Tracer, CountCategory) {
  Tracer t;
  TraceSession session{t};
  t.instant("a", "x");
  t.instant("b", "y");
  t.instant("a", "z");
  EXPECT_EQ(t.count_category("a"), 2u);
  EXPECT_EQ(t.count_category("b"), 1u);
  EXPECT_EQ(t.count_category("c"), 0u);
}

TEST(Tracer, ChromeJsonIsValidAndDeterministic) {
  auto build = [] {
    Tracer t{8};
    TraceSession session{t};
    t.name_track(0, "main");
    t.set_time(Seconds{0.5});
    t.instant("ota", "go", {TraceArg::str("why", "be\"cause\n")});
    t.counter("power", "mj", 0.1);
    t.complete("ota", "span", Seconds{0.5}, Seconds{0.125});
    return t.chrome_json();
  };
  std::string a = build();
  std::string b = build();
  EXPECT_EQ(a, b);  // byte-identical across identical runs

  auto doc = JsonValue::parse(a);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 1 thread_name metadata record + 3 events.
  EXPECT_EQ(events->items.size(), 4u);
  EXPECT_EQ(events->items[0].find("ph")->text, "M");
  EXPECT_EQ(events->items[1].find("cat")->text, "ota");
}

TEST(Tracer, UntracedRunRecordsNothing) {
  Tracer t;
  // No session installed: direct calls still work (the tracer API is
  // usable standalone), but instrumented code guarded on tracer() != null
  // never reaches it. Verify the guard path by checking the global stays
  // null and a span built against it records nothing.
  ASSERT_EQ(tracer(), nullptr);
  { TraceSpan span{"cat", "ghost"}; }
  EXPECT_EQ(t.size(), 0u);
}

}  // namespace
}  // namespace tinysdr::obs
