// Metrics edge cases and merge algebra: log-scale histograms fed zero and
// negative samples, merges over disjoint and colliding instrument sets,
// CSV export of empty registries, and the associativity property that
// makes sharded telemetry thread-count invariant.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <tuple>
#include <vector>

#include "obs/metrics.hpp"
#include "testkit/gen.hpp"
#include "testkit/property.hpp"

namespace tinysdr::obs {
namespace {

using testkit::check;
namespace gen = testkit::gen;

// --------------------------------------------------- histogram edge cases

TEST(MetricsEdge, LogHistogramRoutesZeroAndNegativeToUnderflow) {
  Registry r;
  Histogram& h = r.histogram("h", HistogramSpec::log_scale(0.01, 1e4, 12));
  h.observe(0.0);
  h.observe(-123.5);
  h.observe(1.0);  // one in-range sample
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), -123.5);
  // Quantiles stay total: ranks in the underflow bucket clamp to min.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), -123.5);
  EXPECT_GE(h.quantile(1.0), 1.0);
}

TEST(MetricsEdge, DegenerateRangeHistogramNeverCrashes) {
  Registry r;
  Histogram& h = r.histogram("h", HistogramSpec::linear(1.0, 1.0, 1));
  h.observe(0.5);
  h.observe(1.0);
  h.observe(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.underflow() + h.overflow() + h.bucket_count(0), 3u);
}

// ------------------------------------------------------------ merge edges

TEST(MetricsEdge, MergeDisjointKeysIsAUnion) {
  Registry a, b;
  a.enable_journal();
  b.enable_journal();
  a.counter("only.a").add(2.0);
  a.gauge("gauge.a").set(1.5);
  b.counter("only.b").add(3.0);
  b.histogram("hist.b").observe(0.25);

  Registry merged;
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_DOUBLE_EQ(merged.counters().at("only.a").value(), 2.0);
  EXPECT_DOUBLE_EQ(merged.counters().at("only.b").value(), 3.0);
  EXPECT_DOUBLE_EQ(merged.gauges().at("gauge.a").value(), 1.5);
  EXPECT_EQ(merged.histograms().at("hist.b").count(), 1u);
}

TEST(MetricsEdge, MergeCollidingKeysMatchesSerialExecution) {
  Registry serial;
  serial.counter("c").add(1.0);
  serial.counter("c").add(0.1);
  serial.histogram("h").observe(0.5);
  serial.histogram("h").observe(0.7);

  Registry s1, s2;
  s1.enable_journal();
  s2.enable_journal();
  s1.counter("c").add(1.0);
  s1.histogram("h").observe(0.5);
  s2.counter("c").add(0.1);
  s2.histogram("h").observe(0.7);

  Registry merged;
  merged.merge_from(s1);
  merged.merge_from(s2);
  EXPECT_EQ(merged.snapshot(), serial.snapshot());
}

TEST(MetricsEdge, EmptyRegistryExportsAreTotal) {
  Registry empty;
  std::ostringstream csv;
  empty.write_csv(csv);
  auto snapshot = empty.snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.gauges.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
  auto parsed = MetricsSnapshot::from_json(empty.json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, snapshot);

  // Merging an empty shard (journaled or not) is a no-op.
  Registry target;
  target.counter("c").add(1.0);
  Registry shard;
  shard.enable_journal();
  target.merge_from(shard);
  target.merge_from(empty);
  EXPECT_DOUBLE_EQ(target.counters().at("c").value(), 1.0);
}

// --------------------------------------------------- associativity property

struct Op {
  std::uint32_t kind = 0;   // 0 counter, 1 gauge, 2 histogram
  std::uint32_t name = 0;
  double value = 0.0;
};

void apply(Registry& r, const Op& op) {
  const std::string name = "m" + std::to_string(op.name % 3);
  switch (op.kind % 3) {
    case 0: r.counter("c." + name).add(op.value); break;
    case 1: r.gauge("g." + name).set(op.value); break;
    default:
      r.histogram("h." + name, HistogramSpec::log_scale(0.1, 100.0, 6))
          .observe(op.value);
      break;
  }
}

TEST(MetricsProperty, ShardedMergeIsAssociativeAndBitExact) {
  auto op = gen::tuple_of(gen::uint_below(3), gen::uint_below(3),
                          gen::element_of<double>(
                              {0.0, -2.0, 0.3, 1e9, 1e-11, 7.25}))
                .map([](const std::tuple<std::uint32_t, std::uint32_t,
                                         double>& t) {
                  return Op{std::get<0>(t), std::get<1>(t), std::get<2>(t)};
                });
  auto g = gen::pair_of(gen::vector_of(op), gen::uint_below(1u << 16));
  auto result = check(
      g, [](const std::pair<std::vector<Op>, std::uint32_t>& c) {
        const auto& [ops, split_seed] = c;

        Registry serial;
        for (const auto& o : ops) apply(serial, o);

        // Contiguous partition into 3 journaled shards.
        const std::size_t a = ops.size() * (split_seed % 100) / 100;
        const std::size_t b =
            a + (ops.size() - a) * ((split_seed / 100) % 100) / 100;
        std::vector<std::unique_ptr<Registry>> shards;
        const std::size_t bounds[4] = {0, a, b, ops.size()};
        for (int s = 0; s < 3; ++s) {
          auto shard = std::make_unique<Registry>();
          shard->enable_journal();
          for (std::size_t i = bounds[s]; i < bounds[s + 1]; ++i)
            apply(*shard, ops[i]);
          shards.push_back(std::move(shard));
        }

        Registry flat;
        for (const auto& s : shards) flat.merge_from(*s);
        if (flat.snapshot() != serial.snapshot()) return false;
        if (flat.json() != serial.json()) return false;

        // (s0 + s1) + s2 through a journaled intermediate.
        Registry left;
        left.enable_journal();
        left.merge_from(*shards[0]);
        left.merge_from(*shards[1]);
        Registry grouped;
        grouped.merge_from(left);
        grouped.merge_from(*shards[2]);
        return grouped.snapshot() == serial.snapshot();
      });
  EXPECT_TRUE(result.ok) << result.message();
}

}  // namespace
}  // namespace tinysdr::obs
