// Cross-layer telemetry guarantees:
//   - the null sink is bit-identical: a transfer with tracing/metrics
//     installed produces exactly the same UpdateOutcome as one without;
//   - traces are deterministic: same seed => byte-identical Chrome JSON;
//   - an instrumented fault campaign emits events in every expected
//     category (ota, radio, power, faults, testbed).
#include <gtest/gtest.h>

#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "ota/protocol.hpp"
#include "sim/faults.hpp"
#include "testbed/campaign.hpp"

namespace tinysdr {
namespace {

ota::UpdateOutcome run_transfer(bool traced, obs::Tracer* tracer,
                                obs::Registry* registry,
                                obs::FlightRecorder* flight = nullptr) {
  std::optional<obs::TraceSession> trace_session;
  std::optional<obs::MetricsSession> metrics_session;
  std::optional<obs::FlightSession> flight_session;
  if (traced) {
    trace_session.emplace(*tracer);
    metrics_session.emplace(*registry);
    if (flight != nullptr) flight_session.emplace(*flight);
  }
  std::vector<std::uint8_t> stream(8 * 1024, 0x5A);
  ota::OtaLink link{ota::ota_link_params(), Dbm{-118.0},
                    std::uint64_t{0xFEED}};
  sim::FaultPlan plan;
  plan.corrupt_rate = 0.02;
  plan.brownout_at_byte = 4 * 1024;
  sim::FaultInjector faults{plan};
  ota::TransferPolicy policy;
  policy.max_retries = 100;
  ota::AccessPoint ap;
  return ap.transfer(stream, 7, link, policy, nullptr, &faults);
}

void expect_same_outcome(const ota::UpdateOutcome& a,
                         const ota::UpdateOutcome& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.link_seed, b.link_seed);
  EXPECT_DOUBLE_EQ(a.total_time.value(), b.total_time.value());
  EXPECT_DOUBLE_EQ(a.airtime.value(), b.airtime.value());
  EXPECT_EQ(a.data_packets, b.data_packets);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.ack_packets, b.ack_packets);
  EXPECT_EQ(a.duplicates_dropped, b.duplicates_dropped);
  EXPECT_EQ(a.corrupted_dropped, b.corrupted_dropped);
  EXPECT_EQ(a.backoff_events, b.backoff_events);
  EXPECT_EQ(a.node_reboots, b.node_reboots);
  EXPECT_EQ(a.session_resumes, b.session_resumes);
  EXPECT_EQ(a.reassociations, b.reassociations);
  EXPECT_EQ(a.repair_rounds, b.repair_rounds);
  EXPECT_EQ(a.flash_write_errors, b.flash_write_errors);
  EXPECT_DOUBLE_EQ(a.node_energy.value(), b.node_energy.value());
  EXPECT_EQ(a.sends_per_chunk, b.sends_per_chunk);
}

TEST(Telemetry, NullSinkHasZeroObservableEffect) {
  // Untraced baseline, traced run, untraced again: all three outcomes
  // must match field for field — the instrumentation may not perturb a
  // single RNG draw or accounting step.
  auto baseline = run_transfer(false, nullptr, nullptr);
  obs::Tracer tracer;
  obs::Registry registry;
  obs::FlightRecorder flight;
  auto traced = run_transfer(true, &tracer, &registry, &flight);
  auto again = run_transfer(false, nullptr, nullptr);
  expect_same_outcome(baseline, traced);
  expect_same_outcome(baseline, again);
  // And the traced run actually recorded something.
  EXPECT_GT(tracer.size(), 0u);
  EXPECT_GT(registry.counters().size(), 0u);
  // The flight recorder saw the injected brownout without perturbing the
  // outcome either.
  EXPECT_GT(flight.count_component("power"), 0u);
  EXPECT_GT(flight.count_at_least(obs::FlightLevel::kWarn), 0u);
}

TEST(Telemetry, FlightLogIsDeterministicForFixedSeed) {
  auto run_logged = [] {
    obs::Tracer tracer;
    obs::Registry registry;
    obs::FlightRecorder flight;
    run_transfer(true, &tracer, &registry, &flight);
    return flight.json("determinism check");
  };
  EXPECT_EQ(run_logged(), run_logged());
}

TEST(Telemetry, TraceIsDeterministicForFixedSeed) {
  auto run_traced = [] {
    obs::Tracer tracer;
    obs::Registry registry;
    run_transfer(true, &tracer, &registry);
    return std::pair{tracer.chrome_json(), registry.snapshot()};
  };
  auto [json_a, snap_a] = run_traced();
  auto [json_b, snap_b] = run_traced();
  EXPECT_EQ(json_a, json_b);  // byte-identical trace export
  EXPECT_EQ(snap_a, snap_b);
  EXPECT_EQ(snap_a.json(), snap_b.json());
}

TEST(Telemetry, FaultCampaignCoversAllCategories) {
  obs::Tracer tracer{std::size_t{1} << 17};
  obs::Registry registry;
  obs::TraceSession trace_session{tracer};
  obs::MetricsSession metrics_session{registry};

  Rng deploy_rng{2024};
  auto deployment = testbed::Deployment::campus(deploy_rng, Dbm{14.0}, 4);
  Rng img_rng{7};
  auto image = fpga::generate_mcu_program("fw", 12 * 1024, img_rng);

  std::vector<testbed::FaultScenario> scenarios;
  testbed::FaultScenario s;
  s.name = "mixed";
  // Burst loss guarantees link drops (the "radio" category) even on the
  // strong links of a small deployment.
  s.plan.burst = channel::GilbertElliottParams{0.05, 0.30, 0.0, 0.9};
  s.plan.corrupt_rate = 0.05;
  s.plan.brownout_at_byte = 1024;
  s.policy.max_retries = 200;
  scenarios.push_back(s);

  Rng rng{99};
  auto result = testbed::run_fault_campaign(
      deployment, image, ota::UpdateTarget::kMcu, scenarios, rng);
  ASSERT_EQ(result.scenarios.size(), 1u);

  for (const char* cat : {"ota", "radio", "power", "faults", "testbed"}) {
    EXPECT_GT(tracer.count_category(cat), 0u) << cat;
  }
  // The campaign-level metrics fed by the instrumented layers.
  EXPECT_GT(registry.counters().at("ota.transfers").value(), 0.0);
  EXPECT_GT(registry.counters().at("testbed.nodes_attempted").value(), 0.0);

  // The trace parses as a JSON document with per-node thread tracks.
  auto doc = obs::JsonValue::parse(tracer.chrome_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->find("traceEvents")->is_array());
}

TEST(Telemetry, DeploymentMetricsExport) {
  Rng rng{11};
  auto deployment = testbed::Deployment::campus(rng, Dbm{14.0}, 8);
  obs::Registry registry;
  deployment.export_metrics(registry);
  EXPECT_DOUBLE_EQ(registry.gauges().at("testbed.nodes").value(), 8.0);
  EXPECT_EQ(registry.histograms().at("testbed.node_rssi_dbm").count(), 8u);
  std::size_t visited = 0;
  deployment.for_each_node([&](const testbed::Node&) { ++visited; });
  EXPECT_EQ(visited, 8u);
}

TEST(Telemetry, EmpiricalCdfOverloads) {
  std::vector<double> samples{3.0, 1.0, 2.0};
  auto by_ref = testbed::empirical_cdf(samples);
  ASSERT_EQ(by_ref.size(), 3u);
  EXPECT_DOUBLE_EQ(by_ref[0].value, 1.0);
  EXPECT_DOUBLE_EQ(by_ref[2].probability, 1.0);
  // The const& overload must leave the caller's vector untouched.
  EXPECT_EQ(samples, (std::vector<double>{3.0, 1.0, 2.0}));
  auto by_move = testbed::empirical_cdf(std::move(samples));
  ASSERT_EQ(by_move.size(), 3u);
  EXPECT_DOUBLE_EQ(by_move[1].value, 2.0);
}

}  // namespace
}  // namespace tinysdr
