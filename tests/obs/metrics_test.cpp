#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.hpp"

namespace tinysdr::obs {
namespace {

TEST(Metrics, NullSinkByDefault) { EXPECT_EQ(metrics(), nullptr); }

TEST(Metrics, SessionInstallsAndRestores) {
  Registry r;
  {
    MetricsSession session{r};
    EXPECT_EQ(metrics(), &r);
    metrics()->counter("hits").add();
  }
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_DOUBLE_EQ(r.counters().at("hits").value(), 1.0);
}

TEST(Metrics, CounterAndGauge) {
  Registry r;
  r.counter("n").add();
  r.counter("n").add(2.5);
  r.gauge("level").set(7.0);
  r.gauge("level").set(3.0);  // last write wins
  EXPECT_DOUBLE_EQ(r.counters().at("n").value(), 3.5);
  EXPECT_DOUBLE_EQ(r.gauges().at("level").value(), 3.0);
}

TEST(Histogram, LinearBucketPlacement) {
  Histogram h{HistogramSpec::linear(0.0, 10.0, 10)};
  h.observe(0.5);   // bucket 0
  h.observe(5.5);   // bucket 5
  h.observe(9.99);  // bucket 9
  h.observe(-1.0);  // underflow
  h.observe(10.0);  // hi is exclusive -> overflow
  h.observe(25.0);  // overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(5), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 25.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(5), 6.0);
}

TEST(Histogram, GeometricBucketPlacement) {
  // 6 equal-ratio buckets spanning [1, 64): edges at powers of 2.
  Histogram h{HistogramSpec::log_scale(1.0, 64.0, 6)};
  h.observe(1.5);   // [1, 2)
  h.observe(3.0);   // [2, 4)
  h.observe(33.0);  // [32, 64)
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(5), 1u);
  EXPECT_NEAR(h.bucket_lower(5), 32.0, 1e-9);
  EXPECT_NEAR(h.bucket_upper(5), 64.0, 1e-9);
}

TEST(Histogram, QuantileInterpolation) {
  Histogram h{HistogramSpec::linear(0.0, 100.0, 100)};
  for (int i = 0; i < 100; ++i) h.observe(static_cast<double>(i) + 0.5);
  // Uniform fill: quantiles track the value range linearly, within a
  // bucket's width.
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);  // clamps to observed min
}

TEST(Histogram, QuantileEmptyAndDegenerate) {
  Histogram empty{HistogramSpec::linear(0.0, 1.0, 4)};
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  Histogram h{HistogramSpec::linear(0.0, 1.0, 4)};
  h.observe(10.0);  // single overflow sample
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
}

TEST(Registry, HistogramSpecAppliesOnFirstCreationOnly) {
  Registry r;
  auto& h1 = r.histogram("lat", HistogramSpec::linear(0.0, 10.0, 5));
  auto& h2 = r.histogram("lat", HistogramSpec::linear(0.0, 99.0, 7));
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.spec().buckets, 5u);
  EXPECT_DOUBLE_EQ(h2.spec().hi, 10.0);
}

TEST(Snapshot, JsonRoundTripsExactly) {
  Registry r;
  r.counter("a.count").add(3.0);
  r.counter("weird").add(0.1);  // classic binary-unrepresentable decimal
  r.gauge("g").set(-1e-9);
  auto& h = r.histogram("h.log", HistogramSpec::log_scale(0.01, 1e7, 12));
  h.observe(0.5);
  h.observe(123.456);
  h.observe(1e9);    // overflow
  h.observe(0.001);  // underflow
  auto& lin = r.histogram("h.lin", HistogramSpec::linear(-5.0, 5.0, 4));
  lin.observe(0.0);

  MetricsSnapshot snap = r.snapshot();
  std::string json = snap.json();
  auto parsed = MetricsSnapshot::from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, snap);
  // And the re-serialization is byte-identical (deterministic export).
  EXPECT_EQ(parsed->json(), json);
}

TEST(Snapshot, FromJsonRejectsGarbage) {
  EXPECT_FALSE(MetricsSnapshot::from_json("not json").has_value());
  EXPECT_FALSE(MetricsSnapshot::from_json("{}").has_value());
  EXPECT_FALSE(
      MetricsSnapshot::from_json(
          R"({"counters":{},"gauges":{},"histograms":{"h":{"counts":0}}})")
          .has_value());
}

TEST(Snapshot, SnapshotIsStableAcrossIdenticalSequences) {
  auto build = [] {
    Registry r;
    r.counter("x").add(2.0);
    r.histogram("y", HistogramSpec::linear(0.0, 1.0, 4)).observe(0.3);
    return r.snapshot();
  };
  EXPECT_EQ(build(), build());
  EXPECT_EQ(build().json(), build().json());
}

TEST(Registry, CsvExport) {
  Registry r;
  r.counter("c").add(2.0);
  r.gauge("g").set(1.5);
  r.histogram("h", HistogramSpec::linear(0.0, 10.0, 10)).observe(5.0);
  std::ostringstream out;
  r.write_csv(out);
  std::string csv = out.str();
  EXPECT_NE(csv.find("kind,name,value,count,sum,min,max,p50,p90,p99"),
            std::string::npos);
  EXPECT_NE(csv.find("counter,c,2"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,1.5"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,"), std::string::npos);
}

TEST(Json, NumberFormattingRoundTrips) {
  for (double v : {0.0, 1.0, -3.5, 0.1, 1e-9, 1e15, 12345.6789,
                   2.2250738585072014e-308}) {
    std::string s = json_number(v);
    auto parsed = JsonValue::parse(s);
    ASSERT_TRUE(parsed.has_value()) << s;
    EXPECT_EQ(parsed->number, v) << s;
  }
  // Integral doubles print without an exponent or decimal point.
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
}

TEST(Json, QuoteEscapes) {
  EXPECT_EQ(json_quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  auto parsed = JsonValue::parse(json_quote("tab\there"));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->text, "tab\there");
}

TEST(Json, ParserHandlesNestedStructures) {
  auto doc = JsonValue::parse(
      R"({"a":[1,2,{"b":true,"c":null}],"d":"xA"})");
  ASSERT_TRUE(doc.has_value());
  const JsonValue* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_DOUBLE_EQ(a->items[1].number, 2.0);
  EXPECT_TRUE(a->items[2].find("b")->boolean);
  EXPECT_EQ(doc->find("d")->text, "xA");
  EXPECT_FALSE(JsonValue::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(JsonValue::parse("[1,2] trailing").has_value());
}

}  // namespace
}  // namespace tinysdr::obs
