#include "dsp/gaussian.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace tinysdr::dsp {
namespace {

TEST(DesignGaussian, RejectsBadArguments) {
  EXPECT_THROW(design_gaussian(0.0, 8), std::invalid_argument);
  EXPECT_THROW(design_gaussian(0.5, 0), std::invalid_argument);
  EXPECT_THROW(design_gaussian(0.5, 8, 0), std::invalid_argument);
}

TEST(DesignGaussian, UnitSum) {
  auto h = design_gaussian(0.5, 8, 3);
  double sum = std::accumulate(h.begin(), h.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DesignGaussian, SymmetricAndPeakedAtCenter) {
  auto h = design_gaussian(0.5, 8, 3);
  ASSERT_EQ(h.size(), 25u);
  for (std::size_t i = 0; i < h.size() / 2; ++i)
    EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-12);
  auto peak = std::max_element(h.begin(), h.end());
  EXPECT_EQ(std::distance(h.begin(), peak), 12);
}

TEST(DesignGaussian, SmallerBtIsWider) {
  // Lower BT = more smoothing = fatter impulse response tails.
  auto narrow = design_gaussian(1.0, 8, 3);
  auto wide = design_gaussian(0.3, 8, 3);
  // Compare tail mass (outside the central symbol).
  auto tail_mass = [](const std::vector<double>& h) {
    double m = 0.0;
    for (std::size_t i = 0; i < h.size(); ++i) {
      auto d = std::abs(static_cast<long>(i) -
                        static_cast<long>(h.size() / 2));
      if (d > 4) m += h[i];
    }
    return m;
  };
  EXPECT_GT(tail_mass(wide), tail_mass(narrow));
}

TEST(Convolve, IdentityKernel) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> delta{1.0};
  EXPECT_EQ(convolve(x, delta), x);
}

TEST(Convolve, KnownResult) {
  std::vector<double> x{1.0, 1.0};
  std::vector<double> h{1.0, 1.0};
  auto y = convolve(x, h);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 1.0);
}

TEST(Convolve, EmptyInputs) {
  EXPECT_TRUE(convolve({}, {1.0}).empty());
  EXPECT_TRUE(convolve({1.0}, {}).empty());
}

TEST(GfskShaping, SmoothsSquareWave) {
  // A +1/-1 alternating frequency sequence filtered by the BLE Gaussian
  // (BT=0.5) must have bounded sample-to-sample steps — the whole point of
  // GFSK spectral shaping.
  const std::size_t sps = 8;
  auto h = design_gaussian(0.5, sps, 3);
  std::vector<double> freq;
  for (int bit = 0; bit < 16; ++bit)
    for (std::size_t s = 0; s < sps; ++s) freq.push_back(bit % 2 ? 1.0 : -1.0);
  auto shaped = convolve(freq, h);
  double max_step = 0.0;
  for (std::size_t i = 1; i < shaped.size(); ++i)
    max_step = std::max(max_step, std::abs(shaped[i] - shaped[i - 1]));
  // Unfiltered step would be 2.0; Gaussian shaping keeps it far smaller.
  EXPECT_LT(max_step, 0.6);
}

}  // namespace
}  // namespace tinysdr::dsp
