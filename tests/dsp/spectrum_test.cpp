#include "dsp/spectrum.hpp"

#include <gtest/gtest.h>

#include "dsp/nco.hpp"

namespace tinysdr::dsp {
namespace {

SpectrumConfig fig8_config() {
  SpectrumConfig cfg;
  cfg.fft_size = 4096;
  cfg.sample_rate_hz = 4e6;
  cfg.center_frequency_hz = 915e6;
  cfg.full_scale_dbm = -40.0;
  return cfg;
}

TEST(Spectrum, PeakAtToneFrequency) {
  auto cfg = fig8_config();
  // Tone at +500 kHz offset -> 915.5 MHz.
  auto tone = generate_tone(0.5e6 / 4e6, 32768);
  auto spec = estimate_spectrum(tone, cfg);
  auto peak = spectrum_peak(spec);
  EXPECT_NEAR(peak.frequency_hz, 915.5e6, 2e3);
  EXPECT_NEAR(peak.power_dbm, -40.0, 0.5);
}

TEST(Spectrum, NegativeOffsetTone) {
  auto cfg = fig8_config();
  auto tone = generate_tone(-1.0e6 / 4e6, 32768);
  auto spec = estimate_spectrum(tone, cfg);
  auto peak = spectrum_peak(spec);
  EXPECT_NEAR(peak.frequency_hz, 914.0e6, 2e3);
}

TEST(Spectrum, SortedByFrequency) {
  auto cfg = fig8_config();
  auto tone = generate_tone(0.1, 16384);
  auto spec = estimate_spectrum(tone, cfg);
  for (std::size_t i = 1; i < spec.size(); ++i)
    EXPECT_LT(spec[i - 1].frequency_hz, spec[i].frequency_hz);
}

TEST(Spectrum, CleanToneHasHighSpuriousFreeRange) {
  // Fig. 8's claim: "no unexpected harmonics introduced by the modulator".
  auto cfg = fig8_config();
  auto tone = generate_tone(0.125, 65536);
  auto spec = estimate_spectrum(tone, cfg);
  EXPECT_GT(spurious_free_range_db(spec, 8), 40.0);
}

TEST(Spectrum, RejectsShortInput) {
  auto cfg = fig8_config();
  Samples tiny(100);
  EXPECT_THROW(estimate_spectrum(tiny, cfg), std::invalid_argument);
}

TEST(Spectrum, RejectsNonPow2Fft) {
  auto cfg = fig8_config();
  cfg.fft_size = 1000;
  auto tone = generate_tone(0.1, 4096);
  EXPECT_THROW(estimate_spectrum(tone, cfg), std::invalid_argument);
}

TEST(Spectrum, PowerScalesWithAmplitude) {
  auto cfg = fig8_config();
  auto tone = generate_tone(0.2, 32768);
  Samples half = tone;
  for (auto& s : half) s *= 0.5f;  // -6 dB
  auto p_full = spectrum_peak(estimate_spectrum(tone, cfg)).power_dbm;
  auto p_half = spectrum_peak(estimate_spectrum(half, cfg)).power_dbm;
  EXPECT_NEAR(p_full - p_half, 6.02, 0.2);
}

}  // namespace
}  // namespace tinysdr::dsp
