#include "dsp/nco.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.hpp"

namespace tinysdr::dsp {
namespace {

TEST(SinCosLut, UnitMagnitude) {
  const auto& lut = SinCosLut::instance();
  for (std::uint32_t phase : {0u, 0x40000000u, 0x80000000u, 0xC0000000u,
                              0x12345678u, 0xDEADBEEFu}) {
    Complex v = lut.lookup(phase);
    EXPECT_NEAR(std::abs(v), 1.0f, 1e-3);
  }
}

TEST(SinCosLut, CardinalPhases) {
  const auto& lut = SinCosLut::instance();
  Complex zero = lut.lookup(0);
  EXPECT_NEAR(zero.real(), 1.0f, 1e-3);
  EXPECT_NEAR(zero.imag(), 0.0f, 1e-3);
  Complex quarter = lut.lookup(0x40000000);  // 90 degrees
  EXPECT_NEAR(quarter.real(), 0.0f, 2e-3);
  EXPECT_NEAR(quarter.imag(), 1.0f, 1e-3);
  Complex half = lut.lookup(0x80000000);  // 180 degrees
  EXPECT_NEAR(half.real(), -1.0f, 1e-3);
}

TEST(Nco, StepQuantization) {
  // 0.25 cycles/sample is exactly representable.
  EXPECT_EQ(Nco::to_step(0.25), 0x40000000u);
  // Negative frequencies wrap onto the upper half of the circle.
  EXPECT_EQ(Nco::to_step(-0.25), 0xC0000000u);
}

TEST(Nco, ToneFrequencyIsAccurate) {
  const std::size_t n = 4096;
  const double freq = 100.0 / static_cast<double>(n);
  auto tone = generate_tone(freq, n);
  FftPlan plan{n};
  plan.forward(tone);
  EXPECT_EQ(peak_bin(tone), 100u);
}

TEST(Nco, NegativeFrequencyTone) {
  const std::size_t n = 1024;
  const double freq = -32.0 / static_cast<double>(n);
  auto tone = generate_tone(freq, n);
  FftPlan plan{n};
  plan.forward(tone);
  EXPECT_EQ(peak_bin(tone), n - 32);
}

TEST(Nco, SpectralPurityAboveAdcFloor) {
  // DDS spurs must sit below the 13-bit quantization floor of the radio
  // (~80 dB), so the LUT is not the limiting quantizer.
  const std::size_t n = 4096;
  auto tone = generate_tone(512.0 / static_cast<double>(n), n);
  FftPlan plan{n};
  plan.forward(tone);
  double peak = 0.0;
  std::size_t pk = peak_bin(tone);
  peak = std::abs(tone[pk]);
  double worst_spur = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == pk || i == pk - 1 || i == pk + 1) continue;
    worst_spur = std::max(worst_spur, static_cast<double>(std::abs(tone[i])));
  }
  double sfdr_db = 20.0 * std::log10(peak / worst_spur);
  EXPECT_GT(sfdr_db, 60.0);
}

TEST(Nco, PhaseContinuityAcrossCalls) {
  Nco nco;
  nco.set_frequency(0.1);
  Complex a = nco.next();
  std::uint32_t p1 = nco.phase();
  Complex b = nco.next();
  (void)a;
  (void)b;
  EXPECT_EQ(nco.phase() - p1, Nco::to_step(0.1));
}

TEST(GenerateTone, InitialPhaseRespected) {
  auto t0 = generate_tone(0.01, 4, 0);
  auto t90 = generate_tone(0.01, 4, 0x40000000);
  EXPECT_NEAR(t0[0].real(), 1.0f, 1e-3);
  EXPECT_NEAR(t90[0].imag(), 1.0f, 1e-3);
}

}  // namespace
}  // namespace tinysdr::dsp
