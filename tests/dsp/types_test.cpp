#include "dsp/types.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tinysdr::dsp {
namespace {

TEST(MeanPower, EmptyBlockIsZero) {
  Samples empty;
  EXPECT_DOUBLE_EQ(mean_power(empty), 0.0);
}

TEST(MeanPower, UnitToneIsOne) {
  Samples ones(100, Complex{1.0f, 0.0f});
  EXPECT_NEAR(mean_power(ones), 1.0, 1e-9);
}

TEST(MeanPower, ComplexMagnitudes) {
  Samples x{{3.0f, 4.0f}};  // |x|^2 = 25
  EXPECT_NEAR(mean_power(x), 25.0, 1e-6);
}

TEST(NormalizePower, HitsTarget) {
  Rng rng{1};
  Samples x(1000);
  for (auto& s : x)
    s = Complex{static_cast<float>(rng.next_gaussian() * 3.0),
                static_cast<float>(rng.next_gaussian() * 3.0)};
  normalize_power(x, 1.0);
  EXPECT_NEAR(mean_power(x), 1.0, 1e-4);
  normalize_power(x, 0.25);
  EXPECT_NEAR(mean_power(x), 0.25, 1e-4);
}

TEST(NormalizePower, ZeroBlockUntouched) {
  Samples zeros(10, Complex{0, 0});
  normalize_power(zeros, 1.0);
  for (const auto& s : zeros) EXPECT_EQ(s, (Complex{0, 0}));
}

}  // namespace
}  // namespace tinysdr::dsp
