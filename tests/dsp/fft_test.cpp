#include "dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace tinysdr::dsp {
namespace {

TEST(FftPlan, RejectsNonPowerOfTwo) {
  EXPECT_THROW(FftPlan{0}, std::invalid_argument);
  EXPECT_THROW(FftPlan{1}, std::invalid_argument);
  EXPECT_THROW(FftPlan{3}, std::invalid_argument);
  EXPECT_THROW(FftPlan{100}, std::invalid_argument);
  EXPECT_NO_THROW(FftPlan{256});
}

TEST(FftPlan, ImpulseGivesFlatSpectrum) {
  FftPlan plan{64};
  Samples x(64, Complex{0, 0});
  x[0] = Complex{1, 0};
  plan.forward(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-5);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-5);
  }
}

TEST(FftPlan, ToneLandsInCorrectBin) {
  const std::size_t n = 256;
  FftPlan plan{n};
  for (std::size_t bin : {1ul, 7ul, 128ul, 255ul}) {
    Samples x(n);
    for (std::size_t i = 0; i < n; ++i) {
      double angle = 2.0 * std::numbers::pi * static_cast<double>(bin * i) /
                     static_cast<double>(n);
      x[i] = Complex{static_cast<float>(std::cos(angle)),
                     static_cast<float>(std::sin(angle))};
    }
    plan.forward(x);
    EXPECT_EQ(peak_bin(x), bin);
    EXPECT_NEAR(std::abs(x[bin]), static_cast<float>(n), 0.01f * n);
  }
}

TEST(FftPlan, ForwardInverseRoundTrip) {
  const std::size_t n = 512;
  FftPlan plan{n};
  Rng rng{17};
  Samples x(n);
  for (auto& v : x)
    v = Complex{static_cast<float>(rng.next_gaussian()),
                static_cast<float>(rng.next_gaussian())};
  Samples y = x;
  plan.forward(y);
  plan.inverse(y);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-3);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-3);
  }
}

TEST(FftPlan, ParsevalEnergyConservation) {
  const std::size_t n = 128;
  FftPlan plan{n};
  Rng rng{3};
  Samples x(n);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = Complex{static_cast<float>(rng.next_gaussian()),
                static_cast<float>(rng.next_gaussian())};
    time_energy += std::norm(v);
  }
  plan.forward(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              time_energy * 1e-4);
}

TEST(FftPlan, LinearityProperty) {
  const std::size_t n = 64;
  FftPlan plan{n};
  Rng rng{23};
  Samples a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = Complex{static_cast<float>(rng.next_gaussian()), 0};
    b[i] = Complex{0, static_cast<float>(rng.next_gaussian())};
    sum[i] = a[i] + b[i];
  }
  auto fa = plan.forward_copy(a);
  auto fb = plan.forward_copy(b);
  plan.forward(sum);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sum[i].real(), fa[i].real() + fb[i].real(), 1e-3);
    EXPECT_NEAR(sum[i].imag(), fa[i].imag() + fb[i].imag(), 1e-3);
  }
}

TEST(FftPlan, SizeMismatchThrows) {
  FftPlan plan{64};
  Samples x(32);
  EXPECT_THROW(plan.forward(x), std::invalid_argument);
}

class FftSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeSweep, ToneRecoveryAtEverySize) {
  const std::size_t n = GetParam();
  FftPlan plan{n};
  const std::size_t bin = n / 3;
  Samples x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double angle = 2.0 * std::numbers::pi * static_cast<double>(bin * i) /
                   static_cast<double>(n);
    x[i] = Complex{static_cast<float>(std::cos(angle)),
                   static_cast<float>(std::sin(angle))};
  }
  plan.forward(x);
  EXPECT_EQ(peak_bin(x), bin);
}

// Covers every LoRa FFT size (2^6 .. 2^12) plus the spectrum size.
INSTANTIATE_TEST_SUITE_P(LoraSizes, FftSizeSweep,
                         ::testing::Values(64, 128, 256, 512, 1024, 2048,
                                           4096));

}  // namespace
}  // namespace tinysdr::dsp
