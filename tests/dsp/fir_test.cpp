#include "dsp/fir.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace tinysdr::dsp {
namespace {

TEST(DesignLowpass, RejectsBadArguments) {
  EXPECT_THROW(design_lowpass(0, 0.25), std::invalid_argument);
  EXPECT_THROW(design_lowpass(14, 0.0), std::invalid_argument);
  EXPECT_THROW(design_lowpass(14, 0.6), std::invalid_argument);
}

TEST(DesignLowpass, UnityDcGain) {
  for (std::size_t taps : {7u, 14u, 31u}) {
    auto h = design_lowpass(taps, 0.2);
    double sum = 0.0;
    for (float t : h) sum += t;
    EXPECT_NEAR(sum, 1.0, 1e-6) << taps << " taps";
  }
}

TEST(DesignLowpass, SymmetricLinearPhase) {
  auto h = design_lowpass(14, 0.25);
  for (std::size_t i = 0; i < h.size() / 2; ++i)
    EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-7);
}

double tone_gain(FirFilter& f, double freq) {
  // Measure steady-state gain at a normalized frequency.
  f.reset();
  const int n = 4096;
  double in_power = 0.0, out_power = 0.0;
  for (int i = 0; i < n; ++i) {
    double angle = 2.0 * std::numbers::pi * freq * i;
    Complex x{static_cast<float>(std::cos(angle)),
              static_cast<float>(std::sin(angle))};
    Complex y = f.process(x);
    if (i > 200) {  // skip transient
      in_power += std::norm(x);
      out_power += std::norm(y);
    }
  }
  return std::sqrt(out_power / in_power);
}

TEST(FirFilter, PassbandAndStopband) {
  // 64-tap filter with cutoff 0.125: passband tone passes, far stopband
  // tone is strongly attenuated.
  FirFilter f{design_lowpass(64, 0.125)};
  EXPECT_NEAR(tone_gain(f, 0.01), 1.0, 0.05);
  EXPECT_LT(tone_gain(f, 0.4), 0.01);
}

TEST(FirFilter, FourteenTapPaperFilterAttenuatesHighFreq) {
  // The paper's 14-tap front-end: modest but real high-frequency rejection.
  FirFilter f{design_lowpass(14, 0.125)};
  double pass = tone_gain(f, 0.02);
  double stop = tone_gain(f, 0.45);
  EXPECT_GT(pass, 0.9);
  EXPECT_LT(stop, 0.2);
}

TEST(FirFilter, ImpulseResponseEqualsTaps) {
  std::vector<float> taps{0.1f, 0.2f, 0.4f, 0.2f, 0.1f};
  FirFilter f{taps};
  Samples in(taps.size() + 3, Complex{0, 0});
  in[0] = Complex{1, 0};
  auto out = f.filter(in);
  for (std::size_t i = 0; i < taps.size(); ++i)
    EXPECT_NEAR(out[i].real(), taps[i], 1e-6);
  for (std::size_t i = taps.size(); i < out.size(); ++i)
    EXPECT_NEAR(out[i].real(), 0.0, 1e-6);
}

TEST(FirFilter, EmptyTapsThrow) {
  EXPECT_THROW(FirFilter{std::vector<float>{}}, std::invalid_argument);
}

TEST(FirFilter, ResetClearsState) {
  FirFilter f{design_lowpass(14, 0.25)};
  (void)f.process(Complex{1.0f, -1.0f});
  f.reset();
  // After reset, an impulse must reproduce the first tap exactly.
  Complex y = f.process(Complex{1.0f, 0.0f});
  EXPECT_NEAR(y.real(), f.taps()[0], 1e-7);
}

TEST(FirFilter, LinearityOverBlocks) {
  FirFilter f1{design_lowpass(14, 0.2)};
  FirFilter f2{design_lowpass(14, 0.2)};
  Samples a{{1, 0}, {0, 1}, {-1, 0}, {0.5, 0.5}};
  Samples b{{0, -1}, {2, 0}, {1, 1}, {-0.5, 0}};
  Samples ab(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) ab[i] = a[i] + b[i];

  auto ya = f1.filter(a);
  f1.reset();
  auto yb = f1.filter(b);
  auto yab = f2.filter(ab);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(yab[i].real(), ya[i].real() + yb[i].real(), 1e-5);
    EXPECT_NEAR(yab[i].imag(), ya[i].imag() + yb[i].imag(), 1e-5);
  }
}

}  // namespace
}  // namespace tinysdr::dsp
