#include "mcu/msp432.hpp"

#include <gtest/gtest.h>

namespace tinysdr::mcu {
namespace {

TEST(Msp432, SpecMatchesDatasheet) {
  Msp432 m;
  EXPECT_EQ(m.spec().sram_bytes, 64u * 1024u);
  EXPECT_EQ(m.spec().flash_bytes, 256u * 1024u);
}

TEST(Msp432, SramBudgetEnforced) {
  Msp432 m;
  m.allocate_sram("big", 60 * 1024);
  EXPECT_THROW(m.allocate_sram("too_much", 8 * 1024), std::logic_error);
  EXPECT_EQ(m.sram_used(), 60u * 1024u);
}

TEST(Msp432, DuplicateAllocationRejected) {
  Msp432 m;
  m.allocate_sram("buf", 1024);
  EXPECT_THROW(m.allocate_sram("buf", 1024), std::logic_error);
}

TEST(Msp432, FreeReturnsBudget) {
  Msp432 m;
  m.allocate_sram("buf", 30 * 1024);
  m.free_sram("buf");
  EXPECT_EQ(m.sram_used(), 0u);
  EXPECT_THROW(m.free_sram("buf"), std::logic_error);
}

TEST(Msp432, BaselineFirmwareIs18Percent) {
  // §5.2: "TTN protocol together with control for the I/Q radio, backbone
  // radio, FPGA, PMU and decompression algorithm for OTA take only 18% of
  // MCU resources."
  Msp432 m = baseline_firmware();
  EXPECT_NEAR(m.utilization() * 100.0, 18.0, 1.0);
}

TEST(Msp432, ThirtyKbOtaBlockFitsBaseline) {
  // §3.4: blocks of 30 kB "that will fit in the MCU memory" alongside the
  // baseline firmware's SRAM needs.
  Msp432 m = baseline_firmware();
  EXPECT_GE(m.max_block_buffer(), 30u * 1024u);
  EXPECT_NO_THROW(m.allocate_sram("ota_block", 30 * 1024));
}

TEST(Msp432, FullBitstreamBufferDoesNotFit) {
  // §3.4: "a maximum memory allocation of 579 kB which we cannot afford".
  Msp432 m;
  EXPECT_THROW(m.allocate_sram("whole_bitstream", 579 * 1024),
               std::logic_error);
}

TEST(Msp432, WakeupTimerValidation) {
  Msp432 m;
  m.set_wakeup_interval(Seconds{300.0});
  EXPECT_DOUBLE_EQ(m.wakeup_interval().value(), 300.0);
  EXPECT_THROW(m.set_wakeup_interval(Seconds{0.0}), std::invalid_argument);
}

TEST(Msp432, ModeTransitions) {
  Msp432 m;
  EXPECT_EQ(m.mode(), McuMode::kActive);
  m.set_mode(McuMode::kLpm3);
  EXPECT_EQ(m.mode(), McuMode::kLpm3);
}

TEST(Msp432, ResetRestoresBootImageAndDropsTransients) {
  Msp432 m = baseline_firmware();
  std::uint32_t boot_used = m.sram_used();
  m.allocate_sram("ota_block", 30 * 1024);
  EXPECT_GT(m.sram_used(), boot_used);
  m.set_mode(McuMode::kLpm3);
  m.reset(ResetCause::kBrownout);
  EXPECT_EQ(m.sram_used(), boot_used);
  EXPECT_FALSE(m.sram_map().contains("ota_block"));
  EXPECT_EQ(m.mode(), McuMode::kActive);
  EXPECT_EQ(m.reset_count(), 1u);
  EXPECT_EQ(m.last_reset_cause(), ResetCause::kBrownout);
}

TEST(Msp432, WatchdogFiresWithoutKicks) {
  Msp432 m;
  m.capture_boot_image();
  m.arm_watchdog(Seconds{1.0});
  EXPECT_FALSE(m.advance_time(Seconds{0.5}));
  m.kick_watchdog();
  EXPECT_FALSE(m.advance_time(Seconds{0.9}));  // kick restarted the clock
  EXPECT_TRUE(m.advance_time(Seconds{0.2}));   // no kick: expires
  EXPECT_EQ(m.last_reset_cause(), ResetCause::kWatchdog);
  // Reset disarms the watchdog until firmware re-arms it.
  EXPECT_FALSE(m.watchdog_armed());
  EXPECT_FALSE(m.advance_time(Seconds{10.0}));
}

TEST(Msp432, ResetHookRuns) {
  Msp432 m;
  m.capture_boot_image();
  ResetCause seen = ResetCause::kPowerOn;
  int calls = 0;
  m.set_reset_hook([&](ResetCause cause) {
    seen = cause;
    ++calls;
  });
  m.reset(ResetCause::kBrownout);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, ResetCause::kBrownout);
}

}  // namespace
}  // namespace tinysdr::mcu
