#include "power/domains.hpp"

#include <gtest/gtest.h>

namespace tinysdr::power {
namespace {

TEST(DomainMap, Table3Assignments) {
  EXPECT_EQ(domain_of(Component::kMcu), Domain::kV1);
  EXPECT_EQ(domain_of(Component::kFpgaCore), Domain::kV2);
  EXPECT_EQ(domain_of(Component::kFlash), Domain::kV3);
  EXPECT_EQ(domain_of(Component::kFpgaPll), Domain::kV4);
  EXPECT_EQ(domain_of(Component::kIqRadio), Domain::kV5);
  EXPECT_EQ(domain_of(Component::kBackboneRadio), Domain::kV5);
  EXPECT_EQ(domain_of(Component::kFpgaIo), Domain::kV5);
  EXPECT_EQ(domain_of(Component::kSubGhzPa), Domain::kV6);
  EXPECT_EQ(domain_of(Component::k24GhzPa), Domain::kV7);
  EXPECT_EQ(domain_of(Component::kMicroSd), Domain::kV7);
}

TEST(Pmu, V1CannotBeDisabled) {
  PowerManagementUnit pmu;
  EXPECT_THROW(pmu.set_domain_enabled(Domain::kV1, false), std::logic_error);
}

TEST(Pmu, DomainsToggleIndependently) {
  PowerManagementUnit pmu;
  pmu.set_domain_enabled(Domain::kV2, false);
  EXPECT_FALSE(pmu.domain_enabled(Domain::kV2));
  EXPECT_TRUE(pmu.domain_enabled(Domain::kV3));
  pmu.set_domain_enabled(Domain::kV2, true);
  EXPECT_TRUE(pmu.domain_enabled(Domain::kV2));
}

TEST(Pmu, V5IsAdjustable) {
  PowerManagementUnit pmu;
  EXPECT_TRUE(pmu.regulator(Domain::kV5).spec().adjustable);
  EXPECT_NO_THROW(pmu.regulator(Domain::kV5).set_output_volts(3.3));
}

TEST(Pmu, BatteryDrawSumsAllDomains) {
  PowerManagementUnit pmu;
  std::map<Domain, Milliwatts> loads{{Domain::kV1, Milliwatts{10.0}},
                                     {Domain::kV2, Milliwatts{45.0}}};
  Milliwatts total = pmu.battery_draw(loads);
  // LDO on V1 at 1.8 V burns extra; buck at 90%: >= 10/0.49 + 45/0.9 rough.
  EXPECT_GT(total.value(), 55.0);
  EXPECT_LT(total.value(), 90.0);
}

TEST(Pmu, OverheadIsPositiveAndSmallUnderLoad) {
  PowerManagementUnit pmu;
  std::map<Domain, Milliwatts> loads{{Domain::kV2, Milliwatts{50.0}},
                                     {Domain::kV3, Milliwatts{20.0}},
                                     {Domain::kV5, Milliwatts{60.0}}};
  double oh = pmu.overhead(loads).value();
  EXPECT_GT(oh, 0.0);
  EXPECT_LT(oh, 30.0);
}

TEST(Pmu, DisablingDomainsCutsDraw) {
  PowerManagementUnit pmu;
  std::map<Domain, Milliwatts> loads{{Domain::kV2, Milliwatts{50.0}}};
  double active = pmu.battery_draw(loads).value();
  pmu.set_domain_enabled(Domain::kV2, false);
  double off = pmu.battery_draw(loads).value();
  EXPECT_LT(off, active / 10.0);
}

TEST(Pmu, AllRegsShutdownApproachesMicrowatts) {
  PowerManagementUnit pmu;
  for (Domain d : PowerManagementUnit::all_domains())
    if (d != Domain::kV1) pmu.set_domain_enabled(d, false);
  double uw = pmu.battery_draw({}).microwatts();
  // Shutdown leakages + V1 quiescent: a few microwatts total.
  EXPECT_LT(uw, 10.0);
}

TEST(Names, HumanReadable) {
  EXPECT_EQ(domain_name(Domain::kV5), "V5");
  EXPECT_EQ(component_name(Component::kIqRadio), "I/Q radio");
}

}  // namespace
}  // namespace tinysdr::power
