#include "power/platform_power.hpp"

#include <gtest/gtest.h>

namespace tinysdr::power {
namespace {

TEST(PlatformPower, SleepIs30Microwatts) {
  PlatformPowerModel model;
  EXPECT_NEAR(model.sleep_power().microwatts(), 30.0, 2.0);
}

TEST(PlatformPower, SleepIs10000xBelowOtherSdrs) {
  // Table 1: bladeRF 717 mW, USRP E310 2820 mW sleep; tinySDR 0.03 mW.
  PlatformPowerModel model;
  double sleep_mw = model.sleep_power().value();
  EXPECT_LT(sleep_mw * 10000.0, 2820.0 + 1.0);
  EXPECT_GT(717.0 / sleep_mw, 10000.0);
}

TEST(PlatformPower, Fig9SingleTone900MHz) {
  PlatformPowerModel model;
  // 231 mW at 0 dBm, 283 mW at 14 dBm.
  EXPECT_NEAR(model.draw(Activity::kSingleTone900, Dbm{0.0}).value(), 231.0,
              6.0);
  EXPECT_NEAR(model.draw(Activity::kSingleTone900, Dbm{14.0}).value(), 283.0,
              8.0);
}

TEST(PlatformPower, Fig9FlatBelowKnee) {
  PlatformPowerModel model;
  double a = model.draw(Activity::kSingleTone900, Dbm{-14.0}).value();
  double b = model.draw(Activity::kSingleTone900, Dbm{-4.0}).value();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(PlatformPower, Fig9BothBandsWithinFewMilliwatts) {
  PlatformPowerModel model;
  for (double p : {-10.0, 0.0, 8.0, 14.0}) {
    double d900 = model.draw(Activity::kSingleTone900, Dbm{p}).value();
    double d2400 = model.draw(Activity::kSingleTone2400, Dbm{p}).value();
    EXPECT_NEAR(d900, d2400, 10.0) << "at " << p << " dBm";
  }
}

TEST(PlatformPower, LoraPacketNumbers) {
  PlatformPowerModel model;
  // §5.2: TX 287 mW at 14 dBm, RX 186 mW, concurrent RX 207 mW.
  EXPECT_NEAR(model.draw(Activity::kLoraTransmit, Dbm{14.0}).value(), 287.0,
              8.0);
  EXPECT_NEAR(model.draw(Activity::kLoraReceive).value(), 186.0, 5.0);
  EXPECT_NEAR(model.draw(Activity::kConcurrentReceive).value(), 207.0, 6.0);
}

TEST(PlatformPower, ConcurrentCostsMoreThanSingle) {
  PlatformPowerModel model;
  EXPECT_GT(model.draw(Activity::kConcurrentReceive).value(),
            model.draw(Activity::kLoraReceive).value());
}

TEST(PlatformPower, UsrpE310ComparisonFactor) {
  // Paper: USRP E310 is 15-16x tinySDR when transmitting.
  PlatformPowerModel model;
  double tinysdr_0dbm = model.draw(Activity::kSingleTone900, Dbm{0.0}).value();
  double usrp_e310_tx_mw = 3700.0;  // ~3.7 W end-to-end
  double factor = usrp_e310_tx_mw / tinysdr_0dbm;
  EXPECT_GT(factor, 14.0);
  EXPECT_LT(factor, 18.0);
}

TEST(PlatformPower, DutyCycledAverageInterpolates) {
  PlatformPowerModel model;
  Milliwatts always_on = model.duty_cycled_average(Activity::kLoraTransmit,
                                                   1.0, Dbm{14.0});
  Milliwatts never_on =
      model.duty_cycled_average(Activity::kLoraTransmit, 0.0, Dbm{14.0});
  EXPECT_NEAR(always_on.value(),
              model.draw(Activity::kLoraTransmit, Dbm{14.0}).value(), 1e-9);
  EXPECT_NEAR(never_on.value(), model.sleep_power().value(), 1e-12);

  // A 0.1% duty cycle (typical IoT sensor) lands in the sub-mW regime —
  // the headline enabled by the 30 uW sleep mode.
  Milliwatts duty =
      model.duty_cycled_average(Activity::kLoraTransmit, 0.001, Dbm{14.0});
  EXPECT_LT(duty.value(), 0.5);
  EXPECT_GT(duty.value(), model.sleep_power().value());
}

TEST(PlatformPower, DutyCycleRejectsBadFraction) {
  PlatformPowerModel model;
  EXPECT_THROW(model.duty_cycled_average(Activity::kSleep, 1.5),
               std::invalid_argument);
  EXPECT_THROW(model.duty_cycled_average(Activity::kSleep, -0.1),
               std::invalid_argument);
}

TEST(PlatformPower, YearsOfBatteryLifeAtLowDutyCycle) {
  // BLE beacon claim (§5.2): "over 2 years on a 1000 mAh battery when
  // transmitting once per second". Three ~200 us ADV_NONCONN_IND beacons
  // per second = 0.06% duty at the BLE TX operating point.
  PlatformPowerModel model;
  Milliwatts avg =
      model.duty_cycled_average(Activity::kBleTransmit, 0.0006, Dbm{0.0});
  BatteryCapacity battery{1000.0, 3.7};
  double years =
      battery.lifetime_at(avg).value() / (365.25 * 86400.0);
  EXPECT_GT(years, 2.0);
}

TEST(PlatformPower, OtaReceiveCheaperThanIqReceive) {
  PlatformPowerModel model;
  EXPECT_LT(model.draw(Activity::kOtaReceive).value(),
            model.draw(Activity::kLoraReceive).value());
}

}  // namespace
}  // namespace tinysdr::power
