#include "power/regulators.hpp"

#include <gtest/gtest.h>

namespace tinysdr::power {
namespace {

TEST(Regulator, LdoInputCurrentEqualsOutputCurrent) {
  // TPS78218: 1.8 V out from 3.7 V battery. 10 mA load:
  // output 18 mW, input = 10 mA * 3.7 V = 37 mW (plus tiny quiescent).
  Regulator ldo{tps78218_spec(), 1.8, 3.7};
  Milliwatts in = ldo.input_power(Milliwatts{18.0});
  EXPECT_NEAR(in.value(), 37.0, 0.1);
}

TEST(Regulator, BuckDividesByEfficiency) {
  Regulator buck{tps62240_spec(), 1.8, 3.7};
  Milliwatts in = buck.input_power(Milliwatts{90.0});
  EXPECT_NEAR(in.value(), 100.0, 0.5);  // 90 / 0.9 + quiescent
}

TEST(Regulator, ShutdownLeakageOnly) {
  Regulator buck{tps62240_spec(), 1.8, 3.7};
  buck.set_enabled(false);
  // 0.1 uA * 3.7 V = 0.37 uW regardless of "load".
  EXPECT_NEAR(buck.input_power(Milliwatts{100.0}).microwatts(), 0.37, 0.01);
}

TEST(Regulator, AdjustableVoltageWithinRange) {
  Regulator sc195{sc195_spec(), 1.8, 3.7};
  EXPECT_NO_THROW(sc195.set_output_volts(3.3));
  EXPECT_NO_THROW(sc195.set_output_volts(3.6));
  EXPECT_THROW(sc195.set_output_volts(1.0), std::invalid_argument);
  EXPECT_THROW(sc195.set_output_volts(4.0), std::invalid_argument);
}

TEST(Regulator, FixedRegulatorRejectsAdjustment) {
  Regulator ldo{tps78218_spec(), 1.8, 3.7};
  EXPECT_THROW(ldo.set_output_volts(2.5), std::logic_error);
}

TEST(Regulator, ConstructionValidatesVoltage) {
  EXPECT_THROW((Regulator{tps78218_spec(), 3.3, 3.7}), std::invalid_argument);
}

TEST(Regulator, QuiescentDominatesAtZeroLoad) {
  Regulator buck{tps62240_spec(), 1.8, 3.7};
  double uw = buck.input_power(Milliwatts{0.0}).microwatts();
  EXPECT_NEAR(uw, 15.0 * 3.7, 1.0);
}

}  // namespace
}  // namespace tinysdr::power
