#include "power/ledger.hpp"

#include <gtest/gtest.h>

namespace tinysdr::power {
namespace {

TEST(EnergyLedger, AccumulatesEnergyAndTime) {
  PlatformPowerModel model;
  EnergyLedger ledger{model};
  ledger.record(Activity::kLoraTransmit, Seconds{1.0}, Dbm{14.0});
  ledger.record(Activity::kSleep, Seconds{9.0});
  EXPECT_NEAR(ledger.total_time().value(), 10.0, 1e-12);
  // TX second dominates: ~287 mJ + ~0.27 mJ sleep.
  EXPECT_NEAR(ledger.total_energy().value(), 287.0, 10.0);
}

TEST(EnergyLedger, AveragePowerIsEnergyOverTime) {
  PlatformPowerModel model;
  EnergyLedger ledger{model};
  ledger.record_draw(Activity::kSleep, Seconds{2.0}, Milliwatts{5.0});
  ledger.record_draw(Activity::kSleep, Seconds{2.0}, Milliwatts{15.0});
  EXPECT_NEAR(ledger.average_power().value(), 10.0, 1e-9);
}

TEST(EnergyLedger, EmptyLedgerZeroAverage) {
  PlatformPowerModel model;
  EnergyLedger ledger{model};
  EXPECT_DOUBLE_EQ(ledger.average_power().value(), 0.0);
}

TEST(EnergyLedger, RunsOnBattery) {
  PlatformPowerModel model;
  EnergyLedger ledger{model};
  ledger.record_draw(Activity::kOtaReceive, Seconds{100.0}, Milliwatts{61.44});
  // 6144 mJ per OTA LoRa update -> ~2168 updates on 1000 mAh (paper: 2100).
  double runs = ledger.runs_on(BatteryCapacity{1000.0, 3.7});
  EXPECT_NEAR(runs, 2168.0, 20.0);
}

TEST(EnergyLedger, EntriesCarryNotes) {
  PlatformPowerModel model;
  EnergyLedger ledger{model};
  ledger.record(Activity::kDecompress, Seconds{0.45}, Dbm{0.0}, "lzo block");
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_EQ(ledger.entries()[0].note, "lzo block");
}

TEST(EnergyLedger, ResetClearsEverything) {
  PlatformPowerModel model;
  EnergyLedger ledger{model};
  ledger.record(Activity::kSleep, Seconds{5.0});
  ledger.reset();
  EXPECT_TRUE(ledger.entries().empty());
  EXPECT_DOUBLE_EQ(ledger.total_energy().value(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.total_time().value(), 0.0);
}

}  // namespace
}  // namespace tinysdr::power
