#include "channel/link_budget.hpp"

#include <gtest/gtest.h>

namespace tinysdr::channel {
namespace {

TEST(PathLossModel, FreeSpaceReferenceAt915MHz) {
  // FSPL at 1 m, 915 MHz = 20 log10(4*pi*1*915e6/3e8) ~ 31.7 dB.
  PathLossModel m{Hertz::from_megahertz(915.0), 2.0};
  EXPECT_NEAR(m.reference_loss_db(), 31.7, 0.2);
}

TEST(PathLossModel, FreeSpace100m) {
  PathLossModel m{Hertz::from_megahertz(915.0), 2.0};
  // FSPL(100 m) = 31.7 + 40 = 71.7 dB.
  EXPECT_NEAR(m.loss_db(100.0), 71.7, 0.3);
}

TEST(PathLossModel, HigherFrequencyHigherLoss) {
  PathLossModel sub{Hertz::from_megahertz(915.0), 2.0};
  PathLossModel ism{Hertz::from_megahertz(2440.0), 2.0};
  // 2.44 GHz vs 915 MHz: 20 log10(2440/915) ~ 8.5 dB more loss.
  EXPECT_NEAR(ism.loss_db(100.0) - sub.loss_db(100.0), 8.5, 0.2);
}

TEST(PathLossModel, ExponentControlsDecay) {
  PathLossModel free{Hertz::from_megahertz(915.0), 2.0};
  PathLossModel campus{Hertz::from_megahertz(915.0), 2.9};
  double d = 500.0;
  EXPECT_GT(campus.loss_db(d), free.loss_db(d));
  // Per-decade slopes: 20 dB vs 29 dB.
  EXPECT_NEAR(campus.loss_db(1000.0) - campus.loss_db(100.0), 29.0, 0.01);
}

TEST(PathLossModel, ClampsBelowOneMeter) {
  PathLossModel m{Hertz::from_megahertz(915.0), 2.0};
  EXPECT_DOUBLE_EQ(m.loss_db(0.1), m.loss_db(1.0));
}

TEST(PathLossModel, RangeInvertsReceivedPower) {
  PathLossModel m{Hertz::from_megahertz(915.0), 2.9};
  Dbm tx{14.0};
  double d = 750.0;
  Dbm rx = m.received_power(tx, d);
  EXPECT_NEAR(m.range_meters(tx, rx), d, 1.0);
}

TEST(PathLossModel, LoRaKilometerRangeClaim) {
  // Sanity-check the paper's premise: LoRa at 14 dBm reaching -126 dBm
  // sensitivity spans kilometers even with campus-grade path loss.
  PathLossModel m{Hertz::from_megahertz(915.0), 2.9};
  double range = m.range_meters(Dbm{14.0}, Dbm{-126.0});
  EXPECT_GT(range, 1000.0);
}

TEST(Link, RssiIncludesGainsAndShadowing) {
  PathLossModel m{Hertz::from_megahertz(915.0), 2.0};
  Link link;
  link.tx_power = Dbm{14.0};
  link.distance_meters = 100.0;
  link.tx_antenna_gain_db = 2.0;
  link.rx_antenna_gain_db = 3.0;
  link.shadowing_db = 5.0;
  Dbm base = m.received_power(Dbm{14.0}, 100.0);
  EXPECT_NEAR(link.rssi(m).value(), base.value() + 2.0 + 3.0 - 5.0, 1e-9);
}

}  // namespace
}  // namespace tinysdr::channel
