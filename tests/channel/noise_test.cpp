#include "channel/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tinysdr::channel {
namespace {

TEST(NoiseFloor, MatchesTextbookFormula) {
  // -174 + 10log10(125k) + 6 = -117.03 dBm.
  Dbm floor = noise_floor(Hertz::from_kilohertz(125.0), 6.0);
  EXPECT_NEAR(floor.value(), -117.03, 0.05);
}

TEST(NoiseFloor, DoublingBandwidthAddsThreeDb) {
  Dbm f125 = noise_floor(Hertz::from_kilohertz(125.0));
  Dbm f250 = noise_floor(Hertz::from_kilohertz(250.0));
  EXPECT_NEAR(f250 - f125, 3.01, 0.02);
}

TEST(AwgnChannel, SnrMatchesRequested) {
  Rng rng{42};
  AwgnChannel chan{Hertz::from_kilohertz(125.0), 6.0, rng};
  // Unit-power signal of ones.
  dsp::Samples signal(50000, dsp::Complex{1.0f, 0.0f});
  double snr_db = 10.0;
  auto noisy = chan.apply_snr(signal, snr_db);

  // Measure noise power as deviation from the known signal.
  double noise_power = 0.0;
  for (std::size_t i = 0; i < noisy.size(); ++i)
    noise_power += std::norm(noisy[i] - signal[i]);
  noise_power /= static_cast<double>(noisy.size());
  EXPECT_NEAR(10.0 * std::log10(1.0 / noise_power), snr_db, 0.2);
}

TEST(AwgnChannel, RssiMapping) {
  Rng rng{7};
  AwgnChannel chan{Hertz::from_kilohertz(125.0), 6.0, rng};
  // RSSI at the floor => 0 dB SNR.
  EXPECT_NEAR(chan.snr_db(chan.floor()), 0.0, 1e-9);
  EXPECT_NEAR(chan.snr_db(chan.floor() + 10.0), 10.0, 1e-9);
}

TEST(AwgnChannel, NoiseOnlyPowerCalibrated) {
  Rng rng{19};
  AwgnChannel chan{Hertz::from_kilohertz(125.0), 6.0, rng};
  Dbm ref = chan.floor() + 6.0;  // signal would be 6 dB above floor
  auto noise = chan.noise_only(100000, ref);
  double p = dsp::mean_power(noise);
  // Noise power relative to unit signal = 10^(-6/10).
  EXPECT_NEAR(10.0 * std::log10(p), -6.0, 0.2);
}

TEST(Superpose, RelativePowerScaling) {
  dsp::Samples a(1000, dsp::Complex{1.0f, 0.0f});
  dsp::Samples b(1000, dsp::Complex{1.0f, 0.0f});
  auto combined = superpose(a, b, -20.0);
  // b is 20 dB below a: amplitude contribution 0.1.
  EXPECT_NEAR(combined[0].real(), 1.1f, 1e-4);
}

TEST(Superpose, OffsetPlacement) {
  dsp::Samples a(10, dsp::Complex{0.0f, 0.0f});
  dsp::Samples b(3, dsp::Complex{1.0f, 0.0f});
  auto combined = superpose(a, b, 0.0, 5);
  EXPECT_NEAR(combined[4].real(), 0.0f, 1e-6);
  EXPECT_NEAR(combined[5].real(), 1.0f, 1e-6);
  EXPECT_NEAR(combined[7].real(), 1.0f, 1e-6);
  EXPECT_NEAR(combined[8].real(), 0.0f, 1e-6);
}

TEST(Superpose, TruncatesAtEnd) {
  dsp::Samples a(4, dsp::Complex{0.0f, 0.0f});
  dsp::Samples b(10, dsp::Complex{1.0f, 0.0f});
  auto combined = superpose(a, b, 0.0, 2);
  EXPECT_EQ(combined.size(), 4u);
  EXPECT_NEAR(combined[3].real(), 1.0f, 1e-6);
}

TEST(ApplyCfo, ShiftsToneFrequency) {
  // A DC block with CFO applied becomes a tone at the CFO frequency.
  dsp::Samples dc(1000, dsp::Complex{1.0f, 0.0f});
  auto shifted = apply_cfo(dc, 0.1);
  // Check the rotation rate between consecutive samples: 0.1 cycles.
  for (std::size_t i = 1; i < 10; ++i) {
    auto rot = shifted[i] * std::conj(shifted[i - 1]);
    double angle = std::arg(rot) / (2.0 * 3.14159265358979);
    EXPECT_NEAR(angle, 0.1, 1e-3);
  }
}

TEST(ApplyCfo, ZeroCfoIsIdentity) {
  dsp::Samples x{{1, 2}, {3, -4}, {0.5, 0.25}};
  auto y = apply_cfo(x, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-6);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-6);
  }
}

}  // namespace
}  // namespace tinysdr::channel
