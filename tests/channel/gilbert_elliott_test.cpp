#include "channel/gilbert_elliott.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tinysdr::channel {
namespace {

TEST(GilbertElliott, SteadyStateMatchesTransitionRates) {
  GilbertElliottParams p{0.1, 0.4, 0.0, 1.0};
  EXPECT_NEAR(p.steady_bad(), 0.2, 1e-12);
  EXPECT_NEAR(p.mean_loss(), 0.2, 1e-12);
  EXPECT_NEAR(p.mean_burst_length(), 2.5, 1e-12);
}

TEST(GilbertElliott, BernoulliDegenerateHasNoBurstStructure) {
  auto p = GilbertElliottParams::bernoulli(0.3);
  EXPECT_NEAR(p.mean_loss(), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(p.loss_good, p.loss_bad);
}

TEST(GilbertElliott, ObservedLossConvergesToMeanLoss) {
  GilbertElliottParams p{0.05, 0.30, 0.0, 0.9};
  GilbertElliottChannel chain{p, Rng{42, 1}};
  for (int i = 0; i < 200000; ++i) (void)chain.lose_packet();
  EXPECT_NEAR(chain.observed_loss(), p.mean_loss(), 0.01);
  EXPECT_GT(chain.bad_entries(), 0u);
}

TEST(GilbertElliott, LossesClusterIntoBursts) {
  // With slow transitions and deterministic per-state loss, losses come in
  // runs whose mean length matches 1/p_exit_bad — unlike i.i.d. loss.
  GilbertElliottParams p{0.02, 0.10, 0.0, 1.0};
  GilbertElliottChannel chain{p, Rng{7, 2}};
  std::vector<int> run_lengths;
  int run = 0;
  for (int i = 0; i < 100000; ++i) {
    if (chain.lose_packet()) {
      ++run;
    } else if (run > 0) {
      run_lengths.push_back(run);
      run = 0;
    }
  }
  ASSERT_FALSE(run_lengths.empty());
  double mean = 0.0;
  for (int r : run_lengths) mean += r;
  mean /= static_cast<double>(run_lengths.size());
  EXPECT_NEAR(mean, p.mean_burst_length(), 1.0);
}

TEST(GilbertElliott, SameSeedReplaysExactly) {
  GilbertElliottParams p{0.05, 0.30, 0.05, 0.9};
  GilbertElliottChannel a{p, Rng{123, 9}};
  GilbertElliottChannel b{p, Rng{123, 9}};
  for (int i = 0; i < 5000; ++i) EXPECT_EQ(a.lose_packet(), b.lose_packet());
}

}  // namespace
}  // namespace tinysdr::channel
