// Channel activity detection and RF front-end impairment tolerance.
#include <gtest/gtest.h>

#include "channel/noise.hpp"
#include "lora/demodulator.hpp"
#include "lora/modulator.hpp"
#include "radio/at86rf215.hpp"

namespace tinysdr::lora {
namespace {

LoraParams sf8() { return LoraParams{8, Hertz::from_kilohertz(125.0)}; }
Hertz bw125() { return Hertz::from_kilohertz(125.0); }

TEST(Cad, DetectsPreambleQuickly) {
  Modulator mod{sf8(), bw125()};
  Demodulator demod{sf8(), bw125()};
  auto wave = mod.preamble_waveform();
  EXPECT_TRUE(demod.channel_activity(wave));
}

TEST(Cad, QuietOnNoise) {
  Demodulator demod{sf8(), bw125()};
  Rng rng{3};
  channel::AwgnChannel chan{bw125(), 6.0, rng};
  auto noise = chan.noise_only(1024, chan.floor());
  EXPECT_FALSE(demod.channel_activity(noise));
}

TEST(Cad, DetectsNearSensitivity) {
  Modulator mod{sf8(), bw125()};
  Demodulator demod{sf8(), bw125()};
  Rng rng{5};
  channel::AwgnChannel chan{bw125(), 6.0, rng};
  auto noisy = chan.apply(mod.preamble_waveform(), Dbm{-120.0});
  EXPECT_TRUE(demod.channel_activity(noisy));
}

TEST(Cad, ShortInputHandled) {
  Demodulator demod{sf8(), bw125()};
  dsp::Samples tiny(10, dsp::Complex{1, 0});
  EXPECT_FALSE(demod.channel_activity(tiny));
}

TEST(Cad, MissesMidPacketDownchirps) {
  // CAD correlates with the upchirp; an SFD window doesn't fire it.
  Demodulator demod{sf8(), bw125()};
  ChirpGenerator gen{sf8(), bw125()};
  auto down = gen.symbol(0, ChirpDirection::kDown);
  dsp::Samples two;
  two.insert(two.end(), down.begin(), down.end());
  two.insert(two.end(), down.begin(), down.end());
  EXPECT_FALSE(demod.channel_activity(two));
}

// ------------------------------------------------------------- impairments

dsp::Samples through_radio(const dsp::Samples& wave,
                           radio::RxImpairments imp) {
  radio::At86rf215Config cfg;
  cfg.sample_rate = Hertz::from_kilohertz(125.0);
  radio::At86rf215 radio{cfg};
  radio.wake();
  radio.enter_rx();
  radio.set_rx_impairments(imp);
  return radio.receive(wave);
}

TEST(Impairments, CleanDefaultsAreTransparent) {
  radio::At86rf215 radio;
  EXPECT_FALSE(radio.rx_impairments().any());
}

TEST(Impairments, SmallDcOffsetTolerated) {
  Modulator mod{sf8(), bw125()};
  Demodulator demod{sf8(), bw125()};
  std::vector<std::uint8_t> payload{0xAB, 0xCD};
  auto wave = mod.modulate(payload);
  dsp::Samples padded(300, dsp::Complex{0, 0});
  padded.insert(padded.end(), wave.begin(), wave.end());
  padded.insert(padded.end(), 300, dsp::Complex{0, 0});

  radio::RxImpairments imp;
  imp.dc_offset = 0.05;  // -26 dB DC leak
  auto rx = through_radio(padded, imp);
  auto result = demod.receive(rx);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->packet.payload, payload);
}

TEST(Impairments, ModerateIqImbalanceTolerated) {
  // CSS is famously robust to quadrature errors; 1 dB / 5 deg must pass.
  Modulator mod{sf8(), bw125()};
  Demodulator demod{sf8(), bw125()};
  std::vector<std::uint8_t> payload{0x42, 0x24, 0x11};
  auto wave = mod.modulate(payload);
  dsp::Samples padded(300, dsp::Complex{0, 0});
  padded.insert(padded.end(), wave.begin(), wave.end());
  padded.insert(padded.end(), 300, dsp::Complex{0, 0});

  radio::RxImpairments imp;
  imp.iq_gain_imbalance_db = 1.0;
  imp.iq_phase_skew_deg = 5.0;
  auto rx = through_radio(padded, imp);
  auto result = demod.receive(rx);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->packet.payload, payload);
}

TEST(Impairments, SmallCfoToleratedThroughRadio) {
  Modulator mod{sf8(), bw125()};
  Demodulator demod{sf8(), bw125()};
  std::vector<std::uint8_t> payload{0x77};
  auto wave = mod.modulate(payload);
  dsp::Samples padded(300, dsp::Complex{0, 0});
  padded.insert(padded.end(), wave.begin(), wave.end());
  padded.insert(padded.end(), 300, dsp::Complex{0, 0});

  radio::RxImpairments imp;
  imp.cfo_hz = 150.0;  // ~0.3 bin at SF8/BW125
  auto rx = through_radio(padded, imp);
  auto result = demod.receive(rx);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->packet.payload, payload);
}

TEST(Impairments, GrossImbalanceDistortsButCssStillDecodes) {
  // Sanity that the impairment model really modifies the waveform (huge
  // EVM) — and a CSS robustness highlight: even with the DC term dwarfing
  // the signal and the Q rail nearly dead, the noise-free dechirp+FFT
  // still finds the peak. (The impairments cost real sensitivity; that
  // margin is what the AWGN benches price in.)
  Modulator mod{sf8(), bw125()};
  Demodulator demod{sf8(), bw125()};
  std::vector<std::uint8_t> payload{0x13, 0x37};
  auto wave = mod.modulate(payload);

  radio::RxImpairments imp;
  imp.dc_offset = 3.0;               // DC dwarfs the signal
  imp.iq_gain_imbalance_db = -30.0;  // Q rail nearly dead
  auto rx = through_radio(wave, imp);

  double evm = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < wave.size(); ++i) {
    evm += std::norm(rx[i] - wave[i]);
    ref += std::norm(wave[i]);
  }
  EXPECT_GT(evm / ref, 1.0);  // more distortion energy than signal

  auto result = demod.receive(rx);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->packet.payload, payload);
}

}  // namespace
}  // namespace tinysdr::lora
