#include "lora/coding.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tinysdr::lora {
namespace {

TEST(Whitening, SelfInverse) {
  std::vector<std::uint8_t> data{0x00, 0xFF, 0x42, 0xA5, 0x17};
  EXPECT_EQ(whiten(whiten(data)), data);
}

TEST(Whitening, BreaksUpZeroRuns) {
  std::vector<std::uint8_t> zeros(64, 0x00);
  auto w = whiten(zeros);
  int distinct = 0;
  bool seen[256] = {};
  for (auto b : w)
    if (!seen[b]) {
      seen[b] = true;
      ++distinct;
    }
  EXPECT_GT(distinct, 20);
}

TEST(Hamming, RoundTripAllNibblesAllRates) {
  for (auto cr : {CodingRate::kCr45, CodingRate::kCr46, CodingRate::kCr47,
                  CodingRate::kCr48}) {
    for (std::uint8_t nib = 0; nib < 16; ++nib) {
      bool err = false;
      EXPECT_EQ(hamming_decode(hamming_encode(nib, cr), cr, &err), nib);
      EXPECT_FALSE(err);
    }
  }
}

TEST(Hamming, Cr47CorrectsAnySingleBitError) {
  for (std::uint8_t nib = 0; nib < 16; ++nib) {
    std::uint8_t cw = hamming_encode(nib, CodingRate::kCr47);
    for (int bit = 0; bit < 7; ++bit) {
      std::uint8_t corrupted =
          static_cast<std::uint8_t>(cw ^ (1u << bit));
      bool err = false;
      EXPECT_EQ(hamming_decode(corrupted, CodingRate::kCr47, &err), nib)
          << "nibble " << int(nib) << " bit " << bit;
    }
  }
}

TEST(Hamming, Cr48CorrectsAnySingleBitError) {
  for (std::uint8_t nib = 0; nib < 16; ++nib) {
    std::uint8_t cw = hamming_encode(nib, CodingRate::kCr48);
    for (int bit = 0; bit < 8; ++bit) {
      std::uint8_t corrupted =
          static_cast<std::uint8_t>(cw ^ (1u << bit));
      EXPECT_EQ(hamming_decode(corrupted, CodingRate::kCr48), nib);
    }
  }
}

TEST(Hamming, Cr45DetectsSingleBitError) {
  for (std::uint8_t nib = 0; nib < 16; ++nib) {
    std::uint8_t cw = hamming_encode(nib, CodingRate::kCr45);
    for (int bit = 0; bit < 5; ++bit) {
      bool err = false;
      (void)hamming_decode(static_cast<std::uint8_t>(cw ^ (1u << bit)),
                           CodingRate::kCr45, &err);
      EXPECT_TRUE(err);
    }
  }
}

TEST(Hamming, RejectsNonNibble) {
  EXPECT_THROW(hamming_encode(0x10, CodingRate::kCr45),
               std::invalid_argument);
}

TEST(Interleaver, RoundTripAllRates) {
  Rng rng{31};
  for (auto cr : {CodingRate::kCr45, CodingRate::kCr46, CodingRate::kCr47,
                  CodingRate::kCr48}) {
    for (int rows : {4, 6, 7, 8, 10, 12}) {
      std::vector<std::uint8_t> cws;
      for (int i = 0; i < rows; ++i)
        cws.push_back(static_cast<std::uint8_t>(
            rng.next_below(1u << (4 + static_cast<int>(cr)))));
      auto symbols = interleave(cws, rows, cr);
      EXPECT_EQ(symbols.size(), 4u + static_cast<std::size_t>(cr));
      EXPECT_EQ(deinterleave(symbols, rows, cr), cws);
    }
  }
}

TEST(Interleaver, SymbolCorruptionSpreadsAcrossCodewords) {
  // The diagonal interleaver's purpose: one bad *symbol* flips at most one
  // bit in each codeword, which Hamming can then correct.
  const int rows = 8;
  const auto cr = CodingRate::kCr48;
  std::vector<std::uint8_t> cws;
  for (int i = 0; i < rows; ++i)
    cws.push_back(hamming_encode(static_cast<std::uint8_t>(i), cr));
  auto symbols = interleave(cws, rows, cr);
  symbols[3] ^= 0xFF;  // clobber one symbol completely
  auto back = deinterleave(symbols, rows, cr);
  for (int i = 0; i < rows; ++i) {
    EXPECT_EQ(hamming_decode(back[static_cast<std::size_t>(i)], cr),
              static_cast<std::uint8_t>(i));
  }
}

TEST(Interleaver, ValidatesDimensions) {
  std::vector<std::uint8_t> three(3, 0);
  EXPECT_THROW(interleave(three, 4, CodingRate::kCr45),
               std::invalid_argument);
  std::vector<std::uint32_t> syms(4, 0);
  EXPECT_THROW(deinterleave(syms, 4, CodingRate::kCr45),
               std::invalid_argument);
}

TEST(Gray, RoundTrip) {
  for (std::uint32_t v = 0; v < 4096; ++v)
    EXPECT_EQ(gray_decode(gray_encode(v)), v);
}

TEST(Gray, AdjacentValuesDifferInOneBit) {
  for (std::uint32_t v = 0; v < 1024; ++v) {
    std::uint32_t a = gray_encode(v);
    std::uint32_t b = gray_encode(v + 1);
    EXPECT_EQ(__builtin_popcount(a ^ b), 1);
  }
}

TEST(Nibbles, RoundTrip) {
  std::vector<std::uint8_t> bytes{0x12, 0xAB, 0xF0};
  auto nibbles = bytes_to_nibbles(bytes);
  ASSERT_EQ(nibbles.size(), 6u);
  EXPECT_EQ(nibbles[0], 0x2);  // low nibble first
  EXPECT_EQ(nibbles[1], 0x1);
  EXPECT_EQ(nibbles_to_bytes(nibbles), bytes);
}

TEST(Nibbles, OddCountPadsWithZero) {
  std::vector<std::uint8_t> nibbles{0x5, 0xA, 0x3};
  auto bytes = nibbles_to_bytes(nibbles);
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0xA5);
  EXPECT_EQ(bytes[1], 0x03);
}

}  // namespace
}  // namespace tinysdr::lora
