#include "lora/mac.hpp"

#include <gtest/gtest.h>

namespace tinysdr::lora {
namespace {

AppKey test_key() {
  AppKey k{};
  for (std::size_t i = 0; i < k.size(); ++i)
    k[i] = static_cast<std::uint8_t>(i * 7 + 1);
  return k;
}

TEST(MacFrame, SerializeParseRoundTrip) {
  MacFrame f;
  f.type = MacMessageType::kUnconfirmedUp;
  f.dev_addr = 0x01020304;
  f.fcnt = 4242;
  f.fport = 7;
  f.payload = {1, 2, 3};
  f.mic = 0xAABBCCDD;
  auto bytes = f.serialize();
  auto parsed = MacFrame::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dev_addr, f.dev_addr);
  EXPECT_EQ(parsed->fcnt, f.fcnt);
  EXPECT_EQ(parsed->fport, f.fport);
  EXPECT_EQ(parsed->payload, f.payload);
  EXPECT_EQ(parsed->mic, f.mic);
}

TEST(MacFrame, RejectsShortFrames) {
  std::vector<std::uint8_t> tiny(5, 0);
  EXPECT_FALSE(MacFrame::parse(tiny).has_value());
}

TEST(AbpDevice, JoinedImmediately) {
  // Paper: "in ABP we can hard-code the device address... the node skips
  // the join procedure".
  auto dev = MacDevice::abp(0x11223344, test_key());
  EXPECT_TRUE(dev.joined());
  EXPECT_EQ(dev.dev_addr(), 0x11223344u);
}

TEST(AbpDevice, UplinkAcceptedByNetwork) {
  auto dev = MacDevice::abp(0x11223344, test_key());
  MacNetwork net{test_key()};
  std::vector<std::uint8_t> data{0x10, 0x20};
  auto frame = dev.uplink(data);
  auto rx = net.handle_uplink(frame);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(rx->payload, data);
  EXPECT_EQ(rx->dev_addr, 0x11223344u);
}

TEST(OtaaDevice, FullJoinFlow) {
  auto dev = MacDevice::otaa(0xDEADBEEF12345678ULL, test_key());
  EXPECT_FALSE(dev.joined());
  EXPECT_THROW((void)dev.uplink(std::vector<std::uint8_t>{1}),
               std::logic_error);

  MacNetwork net{test_key()};
  auto accept = net.handle_join(dev.join_request());
  ASSERT_TRUE(accept.has_value());
  ASSERT_TRUE(dev.handle_join_accept(*accept));
  EXPECT_TRUE(dev.joined());
  EXPECT_NE(dev.dev_addr(), 0u);

  auto frame = dev.uplink(std::vector<std::uint8_t>{9, 8, 7});
  EXPECT_TRUE(net.handle_uplink(frame).has_value());
}

TEST(OtaaDevice, JoinAcceptWithWrongKeyRejected) {
  auto dev = MacDevice::otaa(1, test_key());
  AppKey wrong{};
  MacNetwork net{wrong};
  auto accept = net.handle_join(dev.join_request());
  // Network can't validate the request MIC with the wrong key.
  EXPECT_FALSE(accept.has_value());
}

TEST(MacNetwork, CorruptedMicRejected) {
  auto dev = MacDevice::abp(5, test_key());
  MacNetwork net{test_key()};
  auto frame = dev.uplink(std::vector<std::uint8_t>{1, 2, 3});
  frame[frame.size() - 1] ^= 0xFF;
  EXPECT_FALSE(net.handle_uplink(frame).has_value());
}

TEST(MacNetwork, ReplayRejected) {
  auto dev = MacDevice::abp(5, test_key());
  MacNetwork net{test_key()};
  auto f1 = dev.uplink(std::vector<std::uint8_t>{1});
  auto f2 = dev.uplink(std::vector<std::uint8_t>{2});
  EXPECT_TRUE(net.handle_uplink(f1).has_value());
  EXPECT_TRUE(net.handle_uplink(f2).has_value());
  EXPECT_FALSE(net.handle_uplink(f1).has_value());  // replayed
}

TEST(MacDevice, FrameCounterIncrements) {
  auto dev = MacDevice::abp(9, test_key());
  EXPECT_EQ(dev.uplink_counter(), 0u);
  (void)dev.uplink(std::vector<std::uint8_t>{1});
  (void)dev.uplink(std::vector<std::uint8_t>{2});
  EXPECT_EQ(dev.uplink_counter(), 2u);
}

TEST(MacDevice, DownlinkAddressFilter) {
  auto dev = MacDevice::abp(0xAAAA, test_key());
  MacFrame down;
  down.type = MacMessageType::kUnconfirmedDown;
  down.dev_addr = 0xBBBB;  // someone else
  auto body = down.serialize();
  std::vector<std::uint8_t> covered(body.begin(), body.end() - 4);
  down.mic = compute_mic(covered, test_key());
  EXPECT_FALSE(dev.handle_downlink(down.serialize()).has_value());

  down.dev_addr = 0xAAAA;
  body = down.serialize();
  covered.assign(body.begin(), body.end() - 4);
  down.mic = compute_mic(covered, test_key());
  EXPECT_TRUE(dev.handle_downlink(down.serialize()).has_value());
}

TEST(ReceiveWindows, FeasibleWithTable4Timings) {
  // The paper: "our timings are well within the requirements for LoRaWAN
  // specifications." TX->RX 45 us + retune 220 us << 1 s RX1 delay.
  ReceiveWindows windows;
  radio::TimingModel timing;
  EXPECT_TRUE(windows.feasible(timing));
}

TEST(ReceiveWindows, InfeasibleWithSlowRadio) {
  ReceiveWindows windows;
  radio::TimingModel slow;
  slow.tx_to_rx = Seconds{2.0};
  EXPECT_FALSE(windows.feasible(slow));
}

}  // namespace
}  // namespace tinysdr::lora
