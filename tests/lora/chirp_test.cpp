#include "lora/chirp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.hpp"

namespace tinysdr::lora {
namespace {

LoraParams sf8_125() { return LoraParams{8, Hertz::from_kilohertz(125.0)}; }

TEST(ChirpGenerator, RejectsNonIntegerOversampling) {
  EXPECT_THROW(ChirpGenerator(sf8_125(), Hertz::from_kilohertz(200.0)),
               std::invalid_argument);
}

TEST(ChirpGenerator, CriticalSamplingSymbolLength) {
  ChirpGenerator g{sf8_125(), Hertz::from_kilohertz(125.0)};
  EXPECT_EQ(g.oversampling(), 1u);
  EXPECT_EQ(g.samples_per_symbol(), 256u);
  EXPECT_EQ(g.symbol(0, ChirpDirection::kUp).size(), 256u);
}

TEST(ChirpGenerator, FourMhzRadioRateOversampling) {
  ChirpGenerator g{sf8_125(), Hertz::from_megahertz(4.0)};
  EXPECT_EQ(g.oversampling(), 32u);
  EXPECT_EQ(g.samples_per_symbol(), 256u * 32u);
}

TEST(ChirpGenerator, UnitEnvelope) {
  ChirpGenerator g{sf8_125(), Hertz::from_kilohertz(125.0)};
  auto sym = g.symbol(100, ChirpDirection::kUp);
  for (const auto& s : sym) EXPECT_NEAR(std::abs(s), 1.0f, 2e-3);
}

TEST(ChirpGenerator, RejectsOutOfRangeSymbol) {
  ChirpGenerator g{sf8_125(), Hertz::from_kilohertz(125.0)};
  EXPECT_THROW(g.symbol(256, ChirpDirection::kUp), std::invalid_argument);
}

TEST(ChirpGenerator, DechirpRecoversSymbolValue) {
  // The fundamental CSS property: multiply by conj(base upchirp), FFT,
  // peak lands exactly in bin = symbol value.
  ChirpGenerator g{sf8_125(), Hertz::from_kilohertz(125.0)};
  auto base = g.base_upchirp();
  dsp::FftPlan fft{256};
  for (std::uint32_t value : {0u, 1u, 8u, 100u, 128u, 200u, 255u}) {
    auto sym = g.symbol(value, ChirpDirection::kUp);
    dsp::Samples prod(256);
    for (std::size_t i = 0; i < 256; ++i)
      prod[i] = sym[i] * std::conj(base[i]);
    fft.forward(prod);
    EXPECT_EQ(dsp::peak_bin(prod), value) << "symbol " << value;
  }
}

TEST(ChirpGenerator, DownchirpIsConjugateOfUpchirp) {
  ChirpGenerator g{sf8_125(), Hertz::from_kilohertz(125.0)};
  auto up = g.symbol(37, ChirpDirection::kUp);
  auto down = g.symbol(37, ChirpDirection::kDown);
  for (std::size_t i = 0; i < up.size(); ++i) {
    EXPECT_NEAR(down[i].real(), up[i].real(), 1e-6);
    EXPECT_NEAR(down[i].imag(), -up[i].imag(), 1e-6);
  }
}

TEST(ChirpGenerator, UpAndDownChirpsQuasiOrthogonal) {
  // Dechirping a downchirp with the upchirp base spreads energy: peak must
  // be far below the matched case.
  ChirpGenerator g{sf8_125(), Hertz::from_kilohertz(125.0)};
  auto base = g.base_upchirp();
  dsp::FftPlan fft{256};

  auto peak_for = [&](const dsp::Samples& sym) {
    dsp::Samples prod(256);
    for (std::size_t i = 0; i < 256; ++i)
      prod[i] = sym[i] * std::conj(base[i]);
    fft.forward(prod);
    return dsp::peak_magnitude(prod);
  };
  double matched = peak_for(g.symbol(0, ChirpDirection::kUp));
  double crossed = peak_for(g.symbol(0, ChirpDirection::kDown));
  EXPECT_GT(matched / crossed, 8.0);
}

TEST(ChirpGenerator, CyclicShiftPropertySegmentWise) {
  // symbol(s) equals symbol(0) cyclically shifted by s samples within each
  // of the two frequency segments; the wrapped tail picks up a constant
  // (here exactly pi) phase from the discrete squared-phase accumulator.
  // The dechirp demodulator is insensitive to segment-constant phases, so
  // this is the correct invariant to pin down.
  ChirpGenerator g{sf8_125(), Hertz::from_kilohertz(125.0)};
  auto s0 = g.symbol(0, ChirpDirection::kUp);
  const std::uint32_t shift = 40;
  auto s40 = g.symbol(shift, ChirpDirection::kUp);
  const std::size_t n = 256;

  dsp::Complex head{0, 0}, tail{0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    dsp::Complex corr = s40[i] * std::conj(s0[(i + shift) % n]);
    if (i < n - shift)
      head += corr;
    else
      tail += corr;
  }
  EXPECT_NEAR(std::abs(head) / static_cast<double>(n - shift), 1.0, 0.01);
  EXPECT_NEAR(std::abs(tail) / static_cast<double>(shift), 1.0, 0.01);
  // And the documented anti-phase relation between the segments.
  double phase_diff = std::arg(head * std::conj(tail));
  EXPECT_NEAR(std::abs(phase_diff), 3.14159, 0.05);
}

TEST(ChirpGenerator, PartialSymbolLength) {
  ChirpGenerator g{sf8_125(), Hertz::from_kilohertz(125.0)};
  auto quarter = g.partial_symbol(0.25, ChirpDirection::kDown);
  EXPECT_EQ(quarter.size(), 64u);
  EXPECT_THROW(g.partial_symbol(0.0, ChirpDirection::kDown),
               std::invalid_argument);
  EXPECT_THROW(g.partial_symbol(1.5, ChirpDirection::kDown),
               std::invalid_argument);
}

class AllSfDechirp : public ::testing::TestWithParam<int> {};

TEST_P(AllSfDechirp, SymbolRecoveryAcrossSpreadingFactors) {
  // Paper: "the FPGA supports real-time modulation and demodulation of all
  // LoRa spreading factors from 6 to 12".
  int sf = GetParam();
  LoraParams p{sf, Hertz::from_kilohertz(125.0)};
  ChirpGenerator g{p, Hertz::from_kilohertz(125.0)};
  auto base = g.base_upchirp();
  const std::size_t n = p.chips();
  dsp::FftPlan fft{n};
  for (std::uint32_t value :
       {std::uint32_t{1}, static_cast<std::uint32_t>(n / 3),
        static_cast<std::uint32_t>(n - 1)}) {
    auto sym = g.symbol(value, ChirpDirection::kUp);
    dsp::Samples prod(n);
    for (std::size_t i = 0; i < n; ++i)
      prod[i] = sym[i] * std::conj(base[i]);
    fft.forward(prod);
    EXPECT_EQ(dsp::peak_bin(prod), value) << "SF" << sf;
  }
}

INSTANTIATE_TEST_SUITE_P(Sf6to12, AllSfDechirp, ::testing::Range(6, 13));

}  // namespace
}  // namespace tinysdr::lora
