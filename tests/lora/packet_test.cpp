#include "lora/packet.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tinysdr::lora {
namespace {

LoraParams sf8() { return LoraParams{8, Hertz::from_kilohertz(125.0)}; }

std::vector<std::uint8_t> random_payload(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::uint8_t> p(n);
  for (auto& b : p) b = rng.next_byte();
  return p;
}

TEST(PacketCodec, EncodeDecodeRoundTrip) {
  PacketCodec codec{sf8()};
  auto payload = random_payload(20, 1);
  auto encoded = codec.encode(payload);
  auto decoded = codec.decode(encoded.symbols);
  EXPECT_TRUE(decoded.header_valid);
  EXPECT_TRUE(decoded.crc_valid);
  EXPECT_EQ(decoded.payload, payload);
}

TEST(PacketCodec, ThreeBytePayloadFromPaperEvaluation) {
  // §5.2 evaluates "packets with three byte payloads using SF = 8".
  PacketCodec codec{sf8()};
  std::vector<std::uint8_t> payload{0xCA, 0xFE, 0x42};
  auto decoded = codec.decode(codec.encode(payload).symbols);
  EXPECT_TRUE(decoded.crc_valid);
  EXPECT_EQ(decoded.payload, payload);
}

TEST(PacketCodec, EmptyPayload) {
  PacketCodec codec{sf8()};
  std::vector<std::uint8_t> empty;
  auto decoded = codec.decode(codec.encode(empty).symbols);
  EXPECT_TRUE(decoded.header_valid);
  EXPECT_TRUE(decoded.crc_valid);
  EXPECT_TRUE(decoded.payload.empty());
}

TEST(PacketCodec, MaxPayload) {
  PacketCodec codec{sf8()};
  auto payload = random_payload(kMaxPayload, 2);
  auto decoded = codec.decode(codec.encode(payload).symbols);
  EXPECT_EQ(decoded.payload, payload);
  EXPECT_THROW(codec.encode(random_payload(256, 3)), std::invalid_argument);
}

TEST(PacketCodec, SymbolValuesWithinRange) {
  PacketCodec codec{sf8()};
  auto encoded = codec.encode(random_payload(64, 4));
  for (auto s : encoded.symbols) EXPECT_LT(s, 256u);
}

TEST(PacketCodec, SymbolCountPredictionMatches) {
  PacketCodec codec{sf8()};
  for (std::size_t n : {0ul, 1ul, 3ul, 17ul, 60ul, 255ul}) {
    auto encoded = codec.encode(random_payload(n, 5 + n));
    EXPECT_EQ(encoded.symbols.size(), codec.symbol_count(n)) << n << " bytes";
  }
}

TEST(PacketCodec, HeaderChecksumCatchesCorruption) {
  PacketCodec codec{sf8()};
  auto encoded = codec.encode(random_payload(10, 6));
  // Clobber the first (header-block) symbol hard.
  auto symbols = encoded.symbols;
  symbols[0] = (symbols[0] + 64) % 256;
  symbols[1] = (symbols[1] + 64) % 256;
  symbols[2] = (symbols[2] + 64) % 256;
  auto decoded = codec.decode(symbols);
  // Either the Hamming layer fixed it (ok) or the header must be flagged.
  if (!decoded.header_valid) SUCCEED();
  // Never silently mis-parse into a *valid* wrong packet: if header valid,
  // payload must still CRC-check.
  if (decoded.header_valid) EXPECT_TRUE(decoded.crc_valid);
}

TEST(PacketCodec, CrcCatchesPayloadCorruption) {
  PacketCodec codec{sf8()};
  auto encoded = codec.encode(random_payload(32, 7));
  auto symbols = encoded.symbols;
  // Corrupt a payload-region symbol by a large shift (beyond Hamming's
  // single-bit correction ability).
  symbols[10] = (symbols[10] + 100) % 256;
  symbols[11] = (symbols[11] + 100) % 256;
  auto decoded = codec.decode(symbols);
  if (decoded.header_valid) {
    EXPECT_FALSE(decoded.crc_valid);
  }
}

TEST(PacketCodec, PlusMinusOneBinErrorsCorrected) {
  // The Gray + Hamming design goal: a +-1 FFT bin error on any one symbol
  // per block decodes clean.
  LoraParams p = sf8();
  p.cr = CodingRate::kCr48;
  PacketCodec codec{p};
  auto payload = random_payload(24, 8);
  auto encoded = codec.encode(payload);
  for (std::size_t victim = 0; victim < encoded.symbols.size();
       victim += 9) {
    auto symbols = encoded.symbols;
    symbols[victim] = (symbols[victim] + 1) % 256;
    auto decoded = codec.decode(symbols);
    EXPECT_TRUE(decoded.crc_valid) << "victim symbol " << victim;
    EXPECT_EQ(decoded.payload, payload);
  }
}

TEST(PacketCodec, AllCodingRates) {
  for (auto cr : {CodingRate::kCr45, CodingRate::kCr46, CodingRate::kCr47,
                  CodingRate::kCr48}) {
    LoraParams p = sf8();
    p.cr = cr;
    PacketCodec codec{p};
    auto payload = random_payload(30, static_cast<std::uint64_t>(cr));
    auto decoded = codec.decode(codec.encode(payload).symbols);
    EXPECT_EQ(decoded.payload, payload);
    EXPECT_EQ(decoded.cr, cr);
  }
}

class SfSweep : public ::testing::TestWithParam<int> {};

TEST_P(SfSweep, RoundTripAcrossSpreadingFactors) {
  int sf = GetParam();
  LoraParams p{sf, Hertz::from_kilohertz(125.0)};
  if (sf == 6) p.explicit_header = false;
  PacketCodec codec{p};
  auto payload = random_payload(21, static_cast<std::uint64_t>(sf));
  auto encoded = codec.encode(payload);
  auto decoded = sf == 6 ? codec.decode(encoded.symbols, payload.size())
                         : codec.decode(encoded.symbols);
  EXPECT_TRUE(decoded.crc_valid) << "SF" << sf;
  EXPECT_EQ(decoded.payload, payload) << "SF" << sf;
}

INSTANTIATE_TEST_SUITE_P(AllSf, SfSweep, ::testing::Range(6, 13));

TEST(PacketCodec, LdroRoundTrip) {
  // SF12/BW125 has 32 ms symbols -> LDRO active -> reduced-rate blocks.
  LoraParams p{12, Hertz::from_kilohertz(125.0)};
  ASSERT_TRUE(p.low_data_rate_optimize());
  PacketCodec codec{p};
  auto payload = random_payload(40, 11);
  auto decoded = codec.decode(codec.encode(payload).symbols);
  EXPECT_EQ(decoded.payload, payload);
}

TEST(PacketCodec, Sf6RequiresImplicitHeader) {
  LoraParams p{6, Hertz::from_kilohertz(125.0)};
  EXPECT_THROW(PacketCodec{p}, std::invalid_argument);
}

TEST(PacketCodec, ImplicitModeNeedsLength) {
  LoraParams p = sf8();
  p.explicit_header = false;
  PacketCodec codec{p};
  auto encoded = codec.encode(random_payload(10, 12));
  EXPECT_THROW((void)codec.decode(encoded.symbols), std::invalid_argument);
  auto decoded = codec.decode(encoded.symbols, 10);
  EXPECT_TRUE(decoded.crc_valid);
}

TEST(PacketCodec, TruncatedSymbolsRejected) {
  PacketCodec codec{sf8()};
  auto encoded = codec.encode(random_payload(50, 13));
  std::vector<std::uint32_t> truncated(encoded.symbols.begin(),
                                       encoded.symbols.begin() + 12);
  auto decoded = codec.decode(truncated);
  EXPECT_FALSE(decoded.crc_valid && !decoded.payload.empty());
}

}  // namespace
}  // namespace tinysdr::lora
