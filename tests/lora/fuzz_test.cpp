// Property/fuzz tests over the LoRa stack: the full encode->modulate->
// demodulate->decode chain must round-trip for every legal configuration,
// payload and capture offset, and the codec must never crash or silently
// accept corrupted data as valid.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "lora/demodulator.hpp"
#include "lora/modulator.hpp"

namespace tinysdr::lora {
namespace {

struct FuzzCase {
  int sf;
  double bw_khz;
  CodingRate cr;
};

class ChainFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ChainFuzz, CleanRoundTripRandomPayloadsAndOffsets) {
  auto [sf, bw_khz, cr] = GetParam();
  LoraParams p{sf, Hertz::from_kilohertz(bw_khz), cr};
  if (sf == 6) p.explicit_header = false;
  Modulator mod{p, p.bandwidth};
  Demodulator demod{p, p.bandwidth};
  Rng rng{static_cast<std::uint64_t>(sf * 1000 + static_cast<int>(bw_khz))};

  for (int trial = 0; trial < 4; ++trial) {
    std::size_t len = 1 + rng.next_below(48);
    std::vector<std::uint8_t> payload(len);
    for (auto& b : payload) b = rng.next_byte();

    auto wave = mod.modulate(payload);
    std::size_t offset = rng.next_below(700);
    dsp::Samples padded(offset, dsp::Complex{0, 0});
    padded.insert(padded.end(), wave.begin(), wave.end());
    padded.insert(padded.end(), 400, dsp::Complex{0, 0});

    auto result = sf == 6 ? demod.receive(padded, len)
                          : demod.receive(padded);
    ASSERT_TRUE(result.has_value())
        << "SF" << sf << " BW" << bw_khz << " trial " << trial;
    EXPECT_TRUE(result->packet.crc_valid);
    EXPECT_EQ(result->packet.payload, payload);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ChainFuzz,
    ::testing::Values(FuzzCase{6, 125.0, CodingRate::kCr45},
                      FuzzCase{7, 125.0, CodingRate::kCr46},
                      FuzzCase{8, 125.0, CodingRate::kCr45},
                      FuzzCase{8, 250.0, CodingRate::kCr47},
                      FuzzCase{8, 500.0, CodingRate::kCr48},
                      FuzzCase{9, 500.0, CodingRate::kCr45},
                      FuzzCase{10, 250.0, CodingRate::kCr46},
                      FuzzCase{11, 500.0, CodingRate::kCr48},
                      FuzzCase{12, 500.0, CodingRate::kCr45}));

TEST(CodecFuzz, RandomSymbolStreamsNeverValidateAccidentally) {
  // Feeding garbage symbols must never produce a CRC-valid packet.
  LoraParams p{8, Hertz::from_kilohertz(125.0)};
  PacketCodec codec{p};
  Rng rng{99};
  int false_accepts = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint32_t> symbols(20 + rng.next_below(60));
    for (auto& s : symbols) s = rng.next_below(256);
    auto decoded = codec.decode(symbols);
    if (decoded.header_valid && decoded.crc_valid &&
        !decoded.payload.empty())
      ++false_accepts;
  }
  // Header checksum (8 bits) + CRC16: false accept odds ~2^-24 per trial.
  EXPECT_EQ(false_accepts, 0);
}

TEST(CodecFuzz, DecodeNeverThrowsOnGarbage) {
  LoraParams p{9, Hertz::from_kilohertz(125.0)};
  PacketCodec codec{p};
  Rng rng{7};
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint32_t> symbols(rng.next_below(90));
    for (auto& s : symbols) s = rng.next_below(512);
    EXPECT_NO_THROW((void)codec.decode(symbols));
  }
}

TEST(DemodFuzz, ReceiveNeverThrowsOnArbitrarySamples) {
  LoraParams p{8, Hertz::from_kilohertz(125.0)};
  Demodulator demod{p, p.bandwidth};
  Rng rng{13};
  for (int trial = 0; trial < 10; ++trial) {
    dsp::Samples junk(2048 + rng.next_below(4096));
    for (auto& s : junk)
      s = dsp::Complex{static_cast<float>(rng.next_gaussian() * 10.0),
                       static_cast<float>(rng.next_gaussian() * 10.0)};
    EXPECT_NO_THROW((void)demod.receive(junk));
  }
}

TEST(CodingFuzz, WhitenHammingInterleaveChainComposes) {
  // Random nibble blocks through whiten->encode->interleave and back, with
  // random single-symbol bin hits at CR4/8 always correcting.
  Rng rng{21};
  for (int trial = 0; trial < 100; ++trial) {
    int rows = 4 + static_cast<int>(rng.next_below(9));
    std::vector<std::uint8_t> cws;
    std::vector<std::uint8_t> nibbles;
    for (int i = 0; i < rows; ++i) {
      auto nib = static_cast<std::uint8_t>(rng.next_below(16));
      nibbles.push_back(nib);
      cws.push_back(hamming_encode(nib, CodingRate::kCr48));
    }
    auto symbols = interleave(cws, rows, CodingRate::kCr48);
    // Flip one random bit in one random symbol.
    std::size_t victim = rng.next_below(static_cast<std::uint32_t>(symbols.size()));
    symbols[victim] ^= 1u << rng.next_below(static_cast<std::uint32_t>(rows));
    auto back = deinterleave(symbols, rows, CodingRate::kCr48);
    for (int i = 0; i < rows; ++i) {
      EXPECT_EQ(hamming_decode(back[static_cast<std::size_t>(i)],
                               CodingRate::kCr48),
                nibbles[static_cast<std::size_t>(i)])
          << "trial " << trial << " row " << i;
    }
  }
}

}  // namespace
}  // namespace tinysdr::lora
