// Property tests over the LoRa stack on the testkit runner: the full
// encode->modulate->demodulate->decode chain round-trips for every legal
// configuration, payload and capture offset; the codec never crashes or
// silently validates garbage. Every failure reports a replayable
// (TINYSDR_PROP_SEED, TINYSDR_PROP_INDEX) pair and a shrunk
// counterexample. The cross-PHY generalisation of these properties runs
// through phy::Registry in tests/phy/phy_property_test.cpp and the
// tests/fuzz harnesses.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "lora/demodulator.hpp"
#include "lora/modulator.hpp"
#include "testkit/gen.hpp"
#include "testkit/property.hpp"

namespace tinysdr::lora {
namespace {

using testkit::check;
using testkit::PropertyConfig;
namespace gen = testkit::gen;

struct FuzzCase {
  int sf;
  double bw_khz;
  CodingRate cr;
};

class ChainFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ChainFuzz, CleanRoundTripRandomPayloadsAndOffsets) {
  auto [sf, bw_khz, cr] = GetParam();
  LoraParams p{sf, Hertz::from_kilohertz(bw_khz), cr};
  if (sf == 6) p.explicit_header = false;
  Modulator mod{p, p.bandwidth};
  Demodulator demod{p, p.bandwidth};

  PropertyConfig cfg = PropertyConfig::from_env();
  cfg.cases = 4;  // the suite spans 9 configs; keep per-config cost flat
  cfg.seed ^= static_cast<std::uint64_t>(sf * 1000 + static_cast<int>(bw_khz));

  auto g = gen::pair_of(gen::bytes(1, 48), gen::uint_below(700));
  auto result = check(
      g,
      [&](const std::pair<std::vector<std::uint8_t>, std::uint32_t>& c) {
        const auto& [payload, offset] = c;
        auto wave = mod.modulate(payload);
        dsp::Samples padded(offset, dsp::Complex{0, 0});
        padded.insert(padded.end(), wave.begin(), wave.end());
        padded.insert(padded.end(), 400, dsp::Complex{0, 0});

        auto received = sf == 6 ? demod.receive(padded, payload.size())
                                : demod.receive(padded);
        return received.has_value() && received->packet.crc_valid &&
               received->packet.payload == payload;
      },
      cfg, "lora chain round trip");
  EXPECT_TRUE(result.ok) << result.message();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ChainFuzz,
    ::testing::Values(FuzzCase{6, 125.0, CodingRate::kCr45},
                      FuzzCase{7, 125.0, CodingRate::kCr46},
                      FuzzCase{8, 125.0, CodingRate::kCr45},
                      FuzzCase{8, 250.0, CodingRate::kCr47},
                      FuzzCase{8, 500.0, CodingRate::kCr48},
                      FuzzCase{9, 500.0, CodingRate::kCr45},
                      FuzzCase{10, 250.0, CodingRate::kCr46},
                      FuzzCase{11, 500.0, CodingRate::kCr48},
                      FuzzCase{12, 500.0, CodingRate::kCr45}));

TEST(CodecFuzz, RandomSymbolStreamsNeverValidateAccidentally) {
  // Feeding garbage symbols must never produce a CRC-valid packet:
  // header checksum (8 bits) + CRC16 put false-accept odds ~2^-24/case.
  LoraParams p{8, Hertz::from_kilohertz(125.0)};
  PacketCodec codec{p};

  PropertyConfig cfg = PropertyConfig::from_env();
  cfg.cases = 300;
  auto symbols =
      gen::vector_of(gen::uint_below(256).map([](std::uint32_t v) {
        return v;
      }), 20, 80);
  auto result = check(
      symbols,
      [&](const std::vector<std::uint32_t>& s) {
        auto decoded = codec.decode(s);
        return !(decoded.header_valid && decoded.crc_valid &&
                 !decoded.payload.empty());
      },
      cfg, "no accidental validation");
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(CodecFuzz, DecodeNeverThrowsOnGarbage) {
  LoraParams p{9, Hertz::from_kilohertz(125.0)};
  PacketCodec codec{p};
  PropertyConfig cfg = PropertyConfig::from_env();
  cfg.cases = 200;
  auto result = check(
      gen::vector_of(gen::uint_below(512), 0, 90),
      [&](const std::vector<std::uint32_t>& s) { (void)codec.decode(s); },
      cfg, "decode is total");
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(DemodFuzz, ReceiveNeverThrowsOnArbitrarySamples) {
  LoraParams p{8, Hertz::from_kilohertz(125.0)};
  Demodulator demod{p, p.bandwidth};
  PropertyConfig cfg = PropertyConfig::from_env();
  cfg.cases = 10;
  auto junk = gen::pair_of(gen::uint_below(4096), gen::uint_below(1u << 30))
                  .map([](const std::pair<std::uint32_t, std::uint32_t>& c) {
                    Rng rng{c.second, 5};
                    dsp::Samples samples(2048 + c.first);
                    for (auto& s : samples)
                      s = dsp::Complex{
                          static_cast<float>(rng.next_gaussian() * 10.0),
                          static_cast<float>(rng.next_gaussian() * 10.0)};
                    return samples;
                  });
  auto result = check(
      junk, [&](const dsp::Samples& samples) { (void)demod.receive(samples); },
      cfg, "receive is total");
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(CodingFuzz, WhitenHammingInterleaveChainComposes) {
  // Random nibble rows through encode->interleave with one random
  // single-bit symbol hit at CR4/8 must always correct back.
  PropertyConfig cfg = PropertyConfig::from_env();
  cfg.cases = 100;
  auto g = gen::tuple_of(gen::vector_of(gen::uint_below(16), 4, 12),
                         gen::uint_below(1u << 30));
  auto result = check(
      g,
      [](const std::tuple<std::vector<std::uint32_t>, std::uint32_t>& c) {
        const auto& [nibs, hit_seed] = c;
        const int rows = static_cast<int>(nibs.size());
        std::vector<std::uint8_t> cws;
        for (auto nib : nibs)
          cws.push_back(hamming_encode(static_cast<std::uint8_t>(nib),
                                       CodingRate::kCr48));
        auto symbols = interleave(cws, rows, CodingRate::kCr48);

        Rng rng{hit_seed, 9};
        std::size_t victim =
            rng.next_below(static_cast<std::uint32_t>(symbols.size()));
        symbols[victim] ^=
            1u << rng.next_below(static_cast<std::uint32_t>(rows));

        auto back = deinterleave(symbols, rows, CodingRate::kCr48);
        for (int i = 0; i < rows; ++i) {
          if (hamming_decode(back[static_cast<std::size_t>(i)],
                             CodingRate::kCr48) !=
              static_cast<std::uint8_t>(nibs[static_cast<std::size_t>(i)]))
            return false;
        }
        return true;
      },
      cfg, "coding chain corrects single hits");
  EXPECT_TRUE(result.ok) << result.message();
}

}  // namespace
}  // namespace tinysdr::lora
