#include <gtest/gtest.h>

#include "channel/noise.hpp"
#include "common/rng.hpp"
#include "lora/demodulator.hpp"
#include "lora/modulator.hpp"
#include "lora/sx1276.hpp"

namespace tinysdr::lora {
namespace {

LoraParams sf8_125() { return LoraParams{8, Hertz::from_kilohertz(125.0)}; }
Hertz bw125() { return Hertz::from_kilohertz(125.0); }

std::vector<std::uint8_t> payload_bytes() { return {0xDE, 0xAD, 0x42}; }

TEST(Modulator, WaveformLengthMatchesPrediction) {
  Modulator mod{sf8_125(), bw125()};
  auto wave = mod.modulate(payload_bytes());
  EXPECT_EQ(wave.size(), mod.packet_samples(payload_bytes().size()));
}

TEST(Modulator, PreambleSectionLength) {
  Modulator mod{sf8_125(), bw125()};
  auto pre = mod.preamble_waveform();
  // 10 preamble + 2 sync + 2.25 SFD symbols of 256 samples.
  EXPECT_EQ(pre.size(), (10u + 2u) * 256u + 256u * 9u / 4u);
}

TEST(Modulator, UnitPowerWaveform) {
  Modulator mod{sf8_125(), bw125()};
  auto wave = mod.modulate(payload_bytes());
  EXPECT_NEAR(dsp::mean_power(wave), 1.0, 0.01);
}

TEST(Demodulator, CleanLoopback) {
  Modulator mod{sf8_125(), bw125()};
  Demodulator demod{sf8_125(), bw125()};
  auto wave = mod.modulate(payload_bytes());
  // Pad with silence on both sides as a real capture would have.
  dsp::Samples padded(512, dsp::Complex{0, 0});
  padded.insert(padded.end(), wave.begin(), wave.end());
  padded.insert(padded.end(), 512, dsp::Complex{0, 0});

  auto result = demod.receive(padded);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->packet.header_valid);
  EXPECT_TRUE(result->packet.crc_valid);
  EXPECT_EQ(result->packet.payload, payload_bytes());
}

TEST(Demodulator, LoopbackWithArbitraryOffset) {
  Modulator mod{sf8_125(), bw125()};
  Demodulator demod{sf8_125(), bw125()};
  auto wave = mod.modulate(payload_bytes());
  for (std::size_t offset : {1ul, 100ul, 255ul, 300ul}) {
    dsp::Samples padded(offset, dsp::Complex{0, 0});
    padded.insert(padded.end(), wave.begin(), wave.end());
    padded.insert(padded.end(), 300, dsp::Complex{0, 0});
    auto result = demod.receive(padded);
    ASSERT_TRUE(result.has_value()) << "offset " << offset;
    EXPECT_EQ(result->packet.payload, payload_bytes()) << "offset " << offset;
  }
}

TEST(Demodulator, OversampledPathWithFirFrontEnd) {
  // TX at 8x the bandwidth (radio-style oversampling); the demodulator's
  // FIR + decimation front end must recover the packet. CR4/8 so the
  // occasional +-1 bin error from FIR band-edge droop is corrected, as in
  // a real deployment.
  Hertz fs = Hertz::from_kilohertz(1000.0);
  LoraParams p = sf8_125();
  p.cr = CodingRate::kCr48;
  Modulator mod{p, fs};
  Demodulator demod{p, fs};
  auto wave = mod.modulate(payload_bytes());
  dsp::Samples padded(777, dsp::Complex{0, 0});
  padded.insert(padded.end(), wave.begin(), wave.end());
  padded.insert(padded.end(), 2048, dsp::Complex{0, 0});
  auto result = demod.receive(padded);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->packet.payload, payload_bytes());
}

TEST(Demodulator, NoPacketInPureNoise) {
  Demodulator demod{sf8_125(), bw125()};
  Rng rng{55};
  channel::AwgnChannel chan{bw125(), 6.0, rng};
  auto noise = chan.noise_only(20000, chan.floor() + 0.0);
  EXPECT_FALSE(demod.receive(noise).has_value());
}

TEST(Demodulator, DecodesAtModerateNoise) {
  Modulator mod{sf8_125(), bw125()};
  Demodulator demod{sf8_125(), bw125()};
  Rng rng{77};
  channel::AwgnChannel chan{bw125(), 6.0, rng};
  auto wave = mod.modulate(payload_bytes());
  dsp::Samples padded(400, dsp::Complex{0, 0});
  padded.insert(padded.end(), wave.begin(), wave.end());
  padded.insert(padded.end(), 400, dsp::Complex{0, 0});
  // -115 dBm is ~11 dB above the SF8/BW125 sensitivity: must decode.
  auto noisy = chan.apply(padded, Dbm{-115.0});
  auto result = demod.receive(noisy);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->packet.crc_valid);
  EXPECT_EQ(result->packet.payload, payload_bytes());
}

TEST(Demodulator, FailsFarBelowSensitivity) {
  Modulator mod{sf8_125(), bw125()};
  Demodulator demod{sf8_125(), bw125()};
  Rng rng{99};
  channel::AwgnChannel chan{bw125(), 6.0, rng};
  auto wave = mod.modulate(payload_bytes());
  auto noisy = chan.apply(wave, Dbm{-140.0});  // 14 dB below sensitivity
  auto result = demod.receive(noisy);
  if (result) EXPECT_FALSE(result->packet.crc_valid);
}

TEST(Demodulator, SmallCfoTolerated) {
  Modulator mod{sf8_125(), bw125()};
  Demodulator demod{sf8_125(), bw125()};
  auto wave = mod.modulate(payload_bytes());
  // CFO of half an FFT bin (0.5/256 cycles/sample at critical rate).
  auto shifted = channel::apply_cfo(wave, 0.4 / 256.0);
  dsp::Samples padded(300, dsp::Complex{0, 0});
  padded.insert(padded.end(), shifted.begin(), shifted.end());
  padded.insert(padded.end(), 300, dsp::Complex{0, 0});
  auto result = demod.receive(padded);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->packet.payload, payload_bytes());
}

TEST(Demodulator, DirectionDetectorMatchesPaper) {
  // §4.1: "we multiply each chirp symbol with both an upchirp and
  // downchirp and then compare the amplitudes of their FFT peaks".
  Demodulator demod{sf8_125(), bw125()};
  ChirpGenerator g{sf8_125(), bw125()};
  EXPECT_EQ(demod.detect_direction(g.symbol(13, ChirpDirection::kUp)),
            ChirpDirection::kUp);
  EXPECT_EQ(demod.detect_direction(g.symbol(0, ChirpDirection::kDown)),
            ChirpDirection::kDown);
}

TEST(Demodulator, AlignedSymbolDemodExact) {
  // Raw symbol pipeline used by the Fig. 11 evaluation.
  LoraParams p = sf8_125();
  Modulator mod{p, bw125()};
  Demodulator demod{p, bw125()};
  Rng rng{11};
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 50; ++i) symbols.push_back(rng.next_below(256));
  auto wave = mod.modulate_symbols(symbols);
  auto cond = demod.condition(wave);
  // Payload starts after preamble(10) + sync(2) + SFD(2.25) symbols, minus
  // the FIR group delay already handled by condition().
  std::size_t start = (12u * 256u) + (256u * 9u / 4u);
  auto rx = demod.demodulate_aligned(cond, start, symbols.size());
  ASSERT_EQ(rx.size(), symbols.size());
  EXPECT_EQ(rx, symbols);
}

TEST(Sx1276, BaselineRoundTrip) {
  Sx1276Model chip{sf8_125()};
  Rng rng{123};
  auto wave = chip.transmit(payload_bytes());
  auto rx = chip.receive(wave, Dbm{-110.0}, rng);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, payload_bytes());
}

TEST(Sx1276, SensitivityTableLookup) {
  Sx1276Model chip{sf8_125()};
  EXPECT_NEAR(chip.sensitivity().value(), -126.0, 0.3);
}

TEST(Sx1276, FailsWellBelowSensitivity) {
  Sx1276Model chip{sf8_125()};
  Rng rng{321};
  auto wave = chip.transmit(payload_bytes());
  EXPECT_FALSE(chip.receive(wave, Dbm{-138.0}, rng).has_value());
}

}  // namespace
}  // namespace tinysdr::lora
