#include "lora/params.hpp"

#include <gtest/gtest.h>

#include "lora/airtime.hpp"

namespace tinysdr::lora {
namespace {

TEST(LoraParams, ValidationRejectsBadSf) {
  EXPECT_THROW(LoraParams(5, Hertz::from_kilohertz(125.0)),
               std::invalid_argument);
  EXPECT_THROW(LoraParams(13, Hertz::from_kilohertz(125.0)),
               std::invalid_argument);
}

TEST(LoraParams, ValidationRejectsBadBandwidth) {
  EXPECT_THROW(LoraParams(8, Hertz::from_kilohertz(100.0)),
               std::invalid_argument);
}

TEST(LoraParams, SymbolTime) {
  LoraParams p{8, Hertz::from_kilohertz(125.0)};
  // 256 / 125 kHz = 2.048 ms.
  EXPECT_NEAR(p.symbol_time().milliseconds(), 2.048, 1e-9);
}

TEST(LoraParams, PhyRateFormula) {
  // Paper: rates of BW/2^SF * SF. The paper's headline config SF8/BW125:
  // 125000/256*8 = 3906 bps ~ "3.12 kbps" after CR4/5 coding.
  LoraParams p{8, Hertz::from_kilohertz(125.0)};
  EXPECT_NEAR(p.phy_rate_bps(), 3906.25, 0.01);
  EXPECT_NEAR(p.coded_rate_bps(), 3125.0, 0.01);
}

TEST(LoraParams, RateSpansPaperRange) {
  // "LoRa also supports a wide range of data rates from 11 bps to 37 kbps".
  LoraParams slowest{12, Hertz{7812.5}, CodingRate::kCr48};
  LoraParams fastest{6, Hertz::from_kilohertz(500.0)};
  EXPECT_LT(slowest.coded_rate_bps(), 12.0);
  EXPECT_GT(fastest.coded_rate_bps(), 37000.0);
}

TEST(LoraParams, ChirpSlopeOrthogonality) {
  // §6: slopes BW^2/2^SF differ => orthogonal.
  LoraParams a{8, Hertz::from_kilohertz(125.0)};
  LoraParams b{8, Hertz::from_kilohertz(250.0)};
  LoraParams c{8, Hertz::from_kilohertz(125.0)};
  EXPECT_TRUE(orthogonal(a, b));
  EXPECT_FALSE(orthogonal(a, c));
  // SF10/BW250 has the same slope as SF8/BW125: 250k^2/1024 = 125k^2/256.
  LoraParams d{10, Hertz::from_kilohertz(250.0)};
  EXPECT_FALSE(orthogonal(a, d));
}

TEST(LoraParams, LdroThreshold) {
  EXPECT_TRUE(LoraParams(12, Hertz::from_kilohertz(125.0))
                  .low_data_rate_optimize());
  EXPECT_FALSE(LoraParams(8, Hertz::from_kilohertz(125.0))
                   .low_data_rate_optimize());
}

TEST(Sensitivity, MatchesPaperNumbers) {
  // Paper/datasheet: SF8 BW125 -> -126 dBm (the headline claim).
  EXPECT_NEAR(sx1276_sensitivity(8, Hertz::from_kilohertz(125.0)).value(),
              -126.0, 0.3);
  EXPECT_NEAR(sx1276_sensitivity(8, Hertz::from_kilohertz(250.0)).value(),
              -123.0, 0.3);
  EXPECT_NEAR(sx1276_sensitivity(12, Hertz::from_kilohertz(125.0)).value(),
              -136.0, 0.4);
  EXPECT_NEAR(sx1276_sensitivity(7, Hertz::from_kilohertz(125.0)).value(),
              -123.5, 0.5);
}

TEST(Sensitivity, MonotoneInSf) {
  for (int sf = 7; sf <= 12; ++sf) {
    EXPECT_LT(sx1276_sensitivity(sf, Hertz::from_kilohertz(125.0)).value(),
              sx1276_sensitivity(sf - 1, Hertz::from_kilohertz(125.0)).value());
  }
}

TEST(Airtime, SemtechFormulaSpotChecks) {
  // Reference: Semtech LoRa calculator. SF8/BW125/CR4_5, 3-byte payload,
  // explicit header, CRC on, 10-symbol preamble.
  LoraParams p{8, Hertz::from_kilohertz(125.0), CodingRate::kCr45};
  p.preamble_symbols = 10;
  std::size_t syms = payload_symbols(p, 3);
  // 8 + ceil((24 - 32 + 28 + 16)/32) * (1+4) = 8 + 2*5 = 18.
  EXPECT_EQ(syms, 18u);
  Seconds t = time_on_air(p, 3);
  // (10 + 4.25 + 18) * 2.048 ms = 66.05 ms.
  EXPECT_NEAR(t.milliseconds(), 66.05, 0.5);
}

TEST(Airtime, ScalesWithPayload) {
  LoraParams p{8, Hertz::from_kilohertz(125.0)};
  EXPECT_LT(time_on_air(p, 10).value(), time_on_air(p, 100).value());
}

TEST(Airtime, Sf9Bw500PacketFromPaper) {
  // §5.2 measures LoRa packet power with SF9, BW500.
  LoraParams p{9, Hertz::from_kilohertz(500.0)};
  // Symbol time 1.024 ms; a 20-byte packet is a few tens of ms.
  Seconds t = time_on_air(p, 20);
  EXPECT_GT(t.milliseconds(), 20.0);
  EXPECT_LT(t.milliseconds(), 60.0);
}

TEST(Airtime, GoodputBelowCodedRate) {
  LoraParams p{8, Hertz::from_kilohertz(125.0)};
  EXPECT_LT(goodput_bps(p, 50), p.coded_rate_bps());
}

}  // namespace
}  // namespace tinysdr::lora
