#include "sigfox/unb.hpp"

#include <gtest/gtest.h>

#include "channel/noise.hpp"
#include "common/rng.hpp"

namespace tinysdr::sigfox {
namespace {

std::vector<std::uint8_t> payload_bytes() {
  return {0x01, 0x23, 0x45, 0x67, 0x89, 0xAB};
}

TEST(UnbConfig, UltraNarrowband) {
  UnbConfig cfg;
  // Occupied bandwidth ~200 Hz — the paper's Sigfox figure.
  EXPECT_NEAR(cfg.occupied_bandwidth().value(), 200.0, 1e-9);
  EXPECT_DOUBLE_EQ(cfg.sample_rate().value(), 800.0);
}

TEST(UnbModem, RejectsOversizePayload) {
  UnbModem modem;
  EXPECT_THROW(modem.frame_bits(std::vector<std::uint8_t>(13, 0)),
               std::invalid_argument);
}

TEST(UnbModem, FrameBitBudget) {
  UnbModem modem;
  // 20 + 16 + 4 + 6*8 + 16 = 104 bits.
  EXPECT_EQ(modem.frame_bits(payload_bytes()).size(), 104u);
}

TEST(UnbModem, ConstantEnvelopeOutsideTransitions) {
  UnbModem modem;
  auto iq = modem.modulate(payload_bytes());
  for (const auto& s : iq) EXPECT_NEAR(std::abs(s), 1.0f, 1e-3);
}

TEST(UnbModem, CleanLoopback) {
  UnbModem modem;
  auto iq = modem.modulate(payload_bytes());
  auto rx = modem.demodulate(iq);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, payload_bytes());
}

TEST(UnbModem, LoopbackWithPaddingAndPhaseRotation) {
  UnbModem modem;
  auto iq = modem.modulate(payload_bytes());
  // Differential detection must survive an arbitrary constant phase (no
  // carrier recovery needed) and arbitrary sample padding.
  dsp::Complex rot{0.2588f, 0.9659f};  // 75 degrees
  for (auto& s : iq) s *= rot;
  dsp::Samples padded(5, dsp::Complex{0, 0});
  padded.insert(padded.end(), iq.begin(), iq.end());
  padded.insert(padded.end(), 11, dsp::Complex{0, 0});
  auto rx = modem.demodulate(padded);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, payload_bytes());
}

TEST(UnbModem, LoopbackUnderNoise) {
  // 800 Hz noise bandwidth: floor = -174 + 29 + 6 = -139 dBm. Sigfox's
  // headline sensitivity (~-140 dBm class) comes exactly from this tiny
  // bandwidth. Decode at -130 dBm.
  UnbModem modem;
  UnbConfig cfg;
  auto iq = modem.modulate(payload_bytes());
  Rng rng{5};
  channel::AwgnChannel chan{cfg.sample_rate(), 6.0, rng};
  auto noisy = chan.apply(iq, Dbm{-130.0});
  auto rx = modem.demodulate(noisy);
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, payload_bytes());
}

TEST(UnbModem, FailsFarBelowFloor) {
  UnbModem modem;
  UnbConfig cfg;
  auto iq = modem.modulate(payload_bytes());
  Rng rng{6};
  channel::AwgnChannel chan{cfg.sample_rate(), 6.0, rng};
  auto noisy = chan.apply(iq, Dbm{-148.0});
  auto rx = modem.demodulate(noisy);
  if (rx) EXPECT_NE(*rx, payload_bytes());
}

TEST(UnbModem, AirtimeIsSeconds) {
  UnbModem modem;
  // 12-byte frame: 153 bits at 100 bps ~ 1.5 s (Sigfox frames really do
  // take seconds).
  EXPECT_NEAR(modem.airtime(12).value(), 1.53, 0.01);
}

TEST(UnbModem, EmptyPayloadRoundTrip) {
  UnbModem modem;
  std::vector<std::uint8_t> empty;
  auto rx = modem.demodulate(modem.modulate(empty));
  ASSERT_TRUE(rx.has_value());
  EXPECT_TRUE(rx->empty());
}

class SigfoxPayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SigfoxPayloadSweep, RoundTrip) {
  UnbModem modem;
  Rng rng{GetParam() + 77};
  std::vector<std::uint8_t> payload(GetParam());
  for (auto& b : payload) b = rng.next_byte();
  auto rx = modem.demodulate(modem.modulate(payload));
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SigfoxPayloadSweep,
                         ::testing::Values(1, 4, 8, 12));

}  // namespace
}  // namespace tinysdr::sigfox
