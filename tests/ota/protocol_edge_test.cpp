// OTA transfer edge cases (satellite of the fault-injection PR):
// degenerate image sizes, operation right at the PER waterfall, and
// budget-exhaustion failure reporting.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "ota/protocol.hpp"
#include "sim/faults.hpp"

namespace tinysdr::ota {
namespace {

TEST(OtaEdge, ZeroByteImageSucceedsWithNoDataPackets) {
  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{1}};
  AccessPoint ap;
  auto outcome = ap.transfer({}, 7, link);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.failure, UpdateFailure::kNone);
  EXPECT_EQ(outcome.data_packets, 0u);
  EXPECT_EQ(outcome.retransmissions, 0u);
  EXPECT_TRUE(outcome.sends_per_chunk.empty());
  // The control plane (request/ready + end handshake) still costs airtime.
  EXPECT_GT(outcome.airtime.value(), 0.0);
}

TEST(OtaEdge, ImageExactlyFillingLastPacket) {
  // 50 * 60 bytes: the final DATA packet carries a full 60 B payload.
  std::vector<std::uint8_t> image(50 * kDataPayload);
  std::iota(image.begin(), image.end(), 0);
  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{2}};
  FlashModel flash;
  NodeAgent node{9, flash};
  AccessPoint ap;
  auto outcome = ap.transfer(image, 9, link, TransferPolicy{}, &node);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.data_packets, 50u);
  // Node staged exactly the stream, byte for byte.
  EXPECT_EQ(flash.read(NodeAgent::kStagingBase, image.size()), image);
}

TEST(OtaEdge, OneBytePastPacketBoundary) {
  std::vector<std::uint8_t> image(kDataPayload + 1, 0x5A);
  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{3}};
  AccessPoint ap;
  auto outcome = ap.transfer(image, 9, link);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.data_packets, 2u);
  ASSERT_EQ(outcome.sends_per_chunk.size(), 2u);
  EXPECT_GE(outcome.sends_per_chunk[1], 1u);
}

TEST(OtaEdge, CompletesAtSensitivityWaterfall) {
  // RSSI right at the sensitivity threshold: PER ~ 0.5 per packet. The
  // selective-ACK engine must still converge (every chunk independently
  // survives eventually; only the budget is consumed faster).
  Dbm rssi = lora::sx1276_sensitivity(8, Hertz::from_kilohertz(500.0));
  OtaLink link{ota_link_params(), rssi, std::uint64_t{4}};
  double per = link.packet_error_rate(kDataPayload + 7);
  EXPECT_GT(per, 0.3);
  EXPECT_LT(per, 0.8);

  std::vector<std::uint8_t> image(3000, 0xC3);
  TransferPolicy policy;
  policy.max_retries = 200;
  AccessPoint ap;
  auto outcome = ap.transfer(image, 5, link, policy);
  EXPECT_TRUE(outcome.success);
  EXPECT_GT(outcome.retransmissions, 0u);
  EXPECT_EQ(outcome.data_packets, (image.size() + 59) / 60);
}

TEST(OtaEdge, RetryBudgetExhaustionReportsCauseAndCounters) {
  // A clean link but every DATA payload arrives corrupted: SACK polls
  // succeed yet never show progress, so the engine burns its retry and
  // re-association budgets and gives up with the right cause.
  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{5}};
  sim::FaultPlan plan;
  plan.seed = 77;
  plan.corrupt_rate = 1.0;
  sim::FaultInjector faults{plan};
  FlashModel flash;
  NodeAgent node{3, flash, &faults};
  TransferPolicy policy;
  policy.max_retries = 4;
  policy.max_reassociations = 1;
  std::vector<std::uint8_t> image(600, 0xEE);
  AccessPoint ap;
  auto outcome = ap.transfer(image, 3, link, policy, &node, &faults);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.failure, UpdateFailure::kRetryBudget);
  EXPECT_EQ(outcome.data_packets, 0u);       // nothing ever stored
  EXPECT_GT(outcome.corrupted_dropped, 0u);  // the reason why
  EXPECT_GT(outcome.backoff_events, 0u);
  EXPECT_EQ(outcome.reassociations, 1u);
  EXPECT_EQ(outcome.link_seed, 5u);
}

TEST(OtaEdge, AssociationFailureOnDeadLink) {
  OtaLink link{ota_link_params(), Dbm{-140.0}, std::uint64_t{6}};
  TransferPolicy policy;
  policy.max_retries = 5;
  AccessPoint ap;
  auto outcome = ap.transfer(std::vector<std::uint8_t>(500, 1), 2, link,
                             policy);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.failure, UpdateFailure::kAssociation);
  EXPECT_EQ(outcome.data_packets, 0u);
}

TEST(OtaEdge, DeadlineBudgetAborts) {
  // Moderate loss plus a deadline far smaller than the transfer needs.
  Dbm rssi = lora::sx1276_sensitivity(8, Hertz::from_kilohertz(500.0)) + 2.0;
  OtaLink link{ota_link_params(), rssi, std::uint64_t{7}};
  TransferPolicy policy;
  policy.deadline = Seconds::from_milliseconds(40.0);
  AccessPoint ap;
  auto outcome =
      ap.transfer(std::vector<std::uint8_t>(60000, 0x77), 2, link, policy);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.failure, UpdateFailure::kDeadline);
  EXPECT_LE(outcome.total_time.value(), 1.0);  // gave up promptly
}

TEST(OtaEdge, SeededRunsReplayExactly) {
  std::vector<std::uint8_t> image(5000, 0x42);
  Dbm rssi = lora::sx1276_sensitivity(8, Hertz::from_kilohertz(500.0)) + 2.5;
  AccessPoint ap;
  OtaLink a{ota_link_params(), rssi, std::uint64_t{0xABCD}};
  OtaLink b{ota_link_params(), rssi, std::uint64_t{0xABCD}};
  auto first = ap.transfer(image, 4, a);
  auto second = ap.transfer(image, 4, b);
  EXPECT_EQ(first.success, second.success);
  EXPECT_EQ(first.retransmissions, second.retransmissions);
  EXPECT_EQ(first.backoff_events, second.backoff_events);
  EXPECT_DOUBLE_EQ(first.airtime.value(), second.airtime.value());
  EXPECT_EQ(first.sends_per_chunk, second.sends_per_chunk);
}

// --------------------------------------------------- protocol attacks
// Deterministic (non-random) LinkAttacker implementations: each test
// scripts exactly one attack dimension and asserts the protocol detects,
// counts and survives it. Seeded probabilistic attackers live in
// adversary:: and are covered by tests/adversary/.

/// Forges the node's reply for the first `n` ACK-bearing exchanges.
struct ForgeFirstN final : LinkAttacker {
  explicit ForgeFirstN(std::size_t n) : remaining(n) {}
  std::size_t remaining;
  bool forge_ack(OtaPacketType) override {
    if (remaining == 0) return false;
    --remaining;
    return true;
  }
};

/// Truncates every DATA frame for one specific chunk, `n` times.
struct TruncateSeq final : LinkAttacker {
  TruncateSeq(std::uint16_t seq, std::size_t n) : target(seq), remaining(n) {}
  std::uint16_t target;
  std::size_t remaining;
  bool truncate_chunk(std::uint16_t seq) override {
    if (seq != target || remaining == 0) return false;
    --remaining;
    return true;
  }
};

/// Replays a captured copy of every successfully stored chunk.
struct ReplayEverything final : LinkAttacker {
  bool replay_chunk(std::uint16_t) override { return true; }
};

TEST(OtaAttackEdge, ForgedAcksAreDiscardedAndTransferStillCompletes) {
  std::vector<std::uint8_t> image(1800, 0x3C);
  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{21}};
  ForgeFirstN attacker{5};
  TransferPolicy policy;
  policy.mode = AckMode::kStopAndWait;  // every chunk has an ACK to forge
  policy.max_retries = 50;
  AccessPoint ap;
  auto outcome =
      ap.transfer(image, 4, link, policy, nullptr, nullptr, &attacker);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.forged_acks_discarded, 5u);
  EXPECT_EQ(attacker.remaining, 0u);
  // Each forged ACK burned an exchange: the data had to be re-sent.
  EXPECT_GE(outcome.retransmissions, 5u);
}

TEST(OtaAttackEdge, TruncatedChunksAreDroppedThenRecovered) {
  std::vector<std::uint8_t> image(1200, 0x7E);
  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{22}};
  TruncateSeq attacker{3, 4};  // chunk 3 arrives clipped four times
  FlashModel flash;
  NodeAgent node{6, flash};
  TransferPolicy policy;
  policy.max_retries = 50;
  AccessPoint ap;
  auto outcome =
      ap.transfer(image, 6, link, policy, &node, nullptr, &attacker);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.truncated_dropped, 4u);
  // The clipped payload never landed: the staged bytes are exact.
  EXPECT_EQ(flash.read(NodeAgent::kStagingBase, image.size()), image);
}

TEST(OtaAttackEdge, ReplayedChunksAreDedupedByTheBitmap) {
  std::vector<std::uint8_t> image(1500, 0x99);
  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{23}};
  ReplayEverything attacker;
  FlashModel flash;
  NodeAgent node{8, flash};
  AccessPoint ap;
  auto outcome = ap.transfer(image, 8, link, TransferPolicy{}, &node, nullptr,
                             &attacker);
  EXPECT_TRUE(outcome.success);
  // One replay per stored chunk, every one dropped as a duplicate.
  EXPECT_EQ(outcome.replays_dropped, outcome.data_packets);
  EXPECT_EQ(flash.read(NodeAgent::kStagingBase, image.size()), image);
}

TEST(OtaAttackEdge, NullAttackerHooksChangeNothing) {
  // The default LinkAttacker attacks nothing: outcomes must match a run
  // with no attacker at all, bit for bit.
  std::vector<std::uint8_t> image(2400, 0x42);
  Dbm rssi = lora::sx1276_sensitivity(8, Hertz::from_kilohertz(500.0)) + 2.5;
  AccessPoint ap;
  OtaLink a{ota_link_params(), rssi, std::uint64_t{0xFACE}};
  OtaLink b{ota_link_params(), rssi, std::uint64_t{0xFACE}};
  LinkAttacker noop;
  auto bare = ap.transfer(image, 4, a);
  auto hooked = ap.transfer(image, 4, b, TransferPolicy{}, nullptr, nullptr,
                            &noop);
  EXPECT_EQ(bare.success, hooked.success);
  EXPECT_EQ(bare.retransmissions, hooked.retransmissions);
  EXPECT_DOUBLE_EQ(bare.airtime.value(), hooked.airtime.value());
  EXPECT_EQ(bare.sends_per_chunk, hooked.sends_per_chunk);
  EXPECT_EQ(hooked.jammed_packets, 0u);
  EXPECT_EQ(hooked.forged_acks_discarded, 0u);
}

TEST(OtaEdge, StopAndWaitModeStillWorks) {
  std::vector<std::uint8_t> image(3000, 0x99);
  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{8}};
  TransferPolicy policy;
  policy.mode = AckMode::kStopAndWait;
  AccessPoint ap;
  auto outcome = ap.transfer(image, 6, link, policy);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.data_packets, (image.size() + 59) / 60);
  // Per-packet ACKs: one per chunk on a clean link.
  EXPECT_GE(outcome.ack_packets, outcome.data_packets);
}

}  // namespace
}  // namespace tinysdr::ota
