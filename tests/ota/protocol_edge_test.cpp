// OTA transfer edge cases (satellite of the fault-injection PR):
// degenerate image sizes, operation right at the PER waterfall, and
// budget-exhaustion failure reporting.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "ota/protocol.hpp"
#include "sim/faults.hpp"

namespace tinysdr::ota {
namespace {

TEST(OtaEdge, ZeroByteImageSucceedsWithNoDataPackets) {
  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{1}};
  AccessPoint ap;
  auto outcome = ap.transfer({}, 7, link);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.failure, UpdateFailure::kNone);
  EXPECT_EQ(outcome.data_packets, 0u);
  EXPECT_EQ(outcome.retransmissions, 0u);
  EXPECT_TRUE(outcome.sends_per_chunk.empty());
  // The control plane (request/ready + end handshake) still costs airtime.
  EXPECT_GT(outcome.airtime.value(), 0.0);
}

TEST(OtaEdge, ImageExactlyFillingLastPacket) {
  // 50 * 60 bytes: the final DATA packet carries a full 60 B payload.
  std::vector<std::uint8_t> image(50 * kDataPayload);
  std::iota(image.begin(), image.end(), 0);
  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{2}};
  FlashModel flash;
  NodeAgent node{9, flash};
  AccessPoint ap;
  auto outcome = ap.transfer(image, 9, link, TransferPolicy{}, &node);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.data_packets, 50u);
  // Node staged exactly the stream, byte for byte.
  EXPECT_EQ(flash.read(NodeAgent::kStagingBase, image.size()), image);
}

TEST(OtaEdge, OneBytePastPacketBoundary) {
  std::vector<std::uint8_t> image(kDataPayload + 1, 0x5A);
  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{3}};
  AccessPoint ap;
  auto outcome = ap.transfer(image, 9, link);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.data_packets, 2u);
  ASSERT_EQ(outcome.sends_per_chunk.size(), 2u);
  EXPECT_GE(outcome.sends_per_chunk[1], 1u);
}

TEST(OtaEdge, CompletesAtSensitivityWaterfall) {
  // RSSI right at the sensitivity threshold: PER ~ 0.5 per packet. The
  // selective-ACK engine must still converge (every chunk independently
  // survives eventually; only the budget is consumed faster).
  Dbm rssi = lora::sx1276_sensitivity(8, Hertz::from_kilohertz(500.0));
  OtaLink link{ota_link_params(), rssi, std::uint64_t{4}};
  double per = link.packet_error_rate(kDataPayload + 7);
  EXPECT_GT(per, 0.3);
  EXPECT_LT(per, 0.8);

  std::vector<std::uint8_t> image(3000, 0xC3);
  TransferPolicy policy;
  policy.max_retries = 200;
  AccessPoint ap;
  auto outcome = ap.transfer(image, 5, link, policy);
  EXPECT_TRUE(outcome.success);
  EXPECT_GT(outcome.retransmissions, 0u);
  EXPECT_EQ(outcome.data_packets, (image.size() + 59) / 60);
}

TEST(OtaEdge, RetryBudgetExhaustionReportsCauseAndCounters) {
  // A clean link but every DATA payload arrives corrupted: SACK polls
  // succeed yet never show progress, so the engine burns its retry and
  // re-association budgets and gives up with the right cause.
  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{5}};
  sim::FaultPlan plan;
  plan.seed = 77;
  plan.corrupt_rate = 1.0;
  sim::FaultInjector faults{plan};
  FlashModel flash;
  NodeAgent node{3, flash, &faults};
  TransferPolicy policy;
  policy.max_retries = 4;
  policy.max_reassociations = 1;
  std::vector<std::uint8_t> image(600, 0xEE);
  AccessPoint ap;
  auto outcome = ap.transfer(image, 3, link, policy, &node, &faults);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.failure, UpdateFailure::kRetryBudget);
  EXPECT_EQ(outcome.data_packets, 0u);       // nothing ever stored
  EXPECT_GT(outcome.corrupted_dropped, 0u);  // the reason why
  EXPECT_GT(outcome.backoff_events, 0u);
  EXPECT_EQ(outcome.reassociations, 1u);
  EXPECT_EQ(outcome.link_seed, 5u);
}

TEST(OtaEdge, AssociationFailureOnDeadLink) {
  OtaLink link{ota_link_params(), Dbm{-140.0}, std::uint64_t{6}};
  TransferPolicy policy;
  policy.max_retries = 5;
  AccessPoint ap;
  auto outcome = ap.transfer(std::vector<std::uint8_t>(500, 1), 2, link,
                             policy);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.failure, UpdateFailure::kAssociation);
  EXPECT_EQ(outcome.data_packets, 0u);
}

TEST(OtaEdge, DeadlineBudgetAborts) {
  // Moderate loss plus a deadline far smaller than the transfer needs.
  Dbm rssi = lora::sx1276_sensitivity(8, Hertz::from_kilohertz(500.0)) + 2.0;
  OtaLink link{ota_link_params(), rssi, std::uint64_t{7}};
  TransferPolicy policy;
  policy.deadline = Seconds::from_milliseconds(40.0);
  AccessPoint ap;
  auto outcome =
      ap.transfer(std::vector<std::uint8_t>(60000, 0x77), 2, link, policy);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.failure, UpdateFailure::kDeadline);
  EXPECT_LE(outcome.total_time.value(), 1.0);  // gave up promptly
}

TEST(OtaEdge, SeededRunsReplayExactly) {
  std::vector<std::uint8_t> image(5000, 0x42);
  Dbm rssi = lora::sx1276_sensitivity(8, Hertz::from_kilohertz(500.0)) + 2.5;
  AccessPoint ap;
  OtaLink a{ota_link_params(), rssi, std::uint64_t{0xABCD}};
  OtaLink b{ota_link_params(), rssi, std::uint64_t{0xABCD}};
  auto first = ap.transfer(image, 4, a);
  auto second = ap.transfer(image, 4, b);
  EXPECT_EQ(first.success, second.success);
  EXPECT_EQ(first.retransmissions, second.retransmissions);
  EXPECT_EQ(first.backoff_events, second.backoff_events);
  EXPECT_DOUBLE_EQ(first.airtime.value(), second.airtime.value());
  EXPECT_EQ(first.sends_per_chunk, second.sends_per_chunk);
}

TEST(OtaEdge, StopAndWaitModeStillWorks) {
  std::vector<std::uint8_t> image(3000, 0x99);
  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{8}};
  TransferPolicy policy;
  policy.mode = AckMode::kStopAndWait;
  AccessPoint ap;
  auto outcome = ap.transfer(image, 6, link, policy);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.data_packets, (image.size() + 59) / 60);
  // Per-packet ACKs: one per chunk on a clean link.
  EXPECT_GE(outcome.ack_packets, outcome.data_packets);
}

}  // namespace
}  // namespace tinysdr::ota
