// Property tests for the OTA protocol: the node-side chunk store against
// truncated/oversized/out-of-range deliveries (regression for the strict
// payload-length check), arbitrary delivery orders with duplicates, and
// the full transfer engine under randomized adversarial fault plans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <tuple>
#include <vector>

#include "common/crc.hpp"
#include "ota/flash.hpp"
#include "ota/protocol.hpp"
#include "sim/faults.hpp"
#include "testkit/gen.hpp"
#include "testkit/property.hpp"

namespace tinysdr::ota {
namespace {

using RxStatus = NodeAgent::RxStatus;
using testkit::check;
using testkit::PropertyConfig;
namespace gen = testkit::gen;

std::vector<std::uint8_t> chunk_of(const std::vector<std::uint8_t>& image,
                                   std::size_t seq) {
  std::size_t off = seq * kDataPayload;
  std::size_t len = std::min(kDataPayload, image.size() - off);
  return {image.begin() + static_cast<std::ptrdiff_t>(off),
          image.begin() + static_cast<std::ptrdiff_t>(off + len)};
}

// ------------------------------------------------- satellite regression

TEST(NodeAgentRegression, TruncatedAndOversizedPayloadsAreRejected) {
  FlashModel flash;
  NodeAgent node{1, flash};
  node.begin_session(0xAB, 150);  // 3 chunks: 60 + 60 + 30
  ASSERT_EQ(node.total_chunks(), 3u);

  std::vector<std::uint8_t> payload(29, 0x11);
  EXPECT_EQ(node.receive_chunk(2, payload), RxStatus::kCorrupt);
  payload.resize(31, 0x11);
  EXPECT_EQ(node.receive_chunk(2, payload), RxStatus::kCorrupt);
  EXPECT_EQ(node.chunks_received(), 0u);

  payload.resize(30, 0x11);
  EXPECT_EQ(node.receive_chunk(2, payload), RxStatus::kStored);
  EXPECT_EQ(node.receive_chunk(2, payload), RxStatus::kDuplicate);

  // Out-of-range seq is corrupt, not UB and not a session killer.
  std::vector<std::uint8_t> full(kDataPayload, 0x22);
  EXPECT_EQ(node.receive_chunk(3, full), RxStatus::kCorrupt);
  EXPECT_EQ(node.receive_chunk(999, full), RxStatus::kCorrupt);
  EXPECT_TRUE(node.has_session());
  EXPECT_EQ(node.chunks_received(), 1u);
}

// ------------------------------------------------------------ properties

TEST(OtaProperty, AnyDeliveryOrderWithDuplicatesCompletesTheStream) {
  auto g = gen::pair_of(gen::bytes(1, 400), gen::uint_below(1u << 30));
  auto result = check(
      g,
      [](const std::pair<std::vector<std::uint8_t>, std::uint32_t>& c) {
        const auto& [image, order_seed] = c;
        const std::size_t chunks =
            (image.size() + kDataPayload - 1) / kDataPayload;

        FlashModel flash;
        NodeAgent node{1, flash};
        node.begin_session(0xC0DE, image.size());

        // A shuffled delivery order with each chunk sent twice.
        std::vector<std::size_t> sends(2 * chunks);
        for (std::size_t i = 0; i < sends.size(); ++i) sends[i] = i % chunks;
        Rng shuffle{order_seed, 1};
        for (std::size_t i = sends.size(); i > 1; --i)
          std::swap(sends[i - 1],
                    sends[shuffle.next_below(static_cast<std::uint32_t>(i))]);

        std::size_t stored = 0, duplicates = 0;
        for (std::size_t seq : sends) {
          auto status = node.receive_chunk(static_cast<std::uint16_t>(seq),
                                           chunk_of(image, seq));
          if (status == RxStatus::kStored) ++stored;
          if (status == RxStatus::kDuplicate) ++duplicates;
        }
        if (stored != chunks || duplicates != chunks) return false;
        if (!node.complete()) return false;
        if (node.staged_stream() != image) return false;
        return node.verify_stream(
            crc32_ieee(std::span<const std::uint8_t>{image}));
      });
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(OtaProperty, TransferUnderAdversarialFaultsIsClassifiedAndExact) {
  auto g = gen::tuple_of(gen::bytes(1, 200),            // compressed image
                         gen::uint_below(1u << 30),     // link seed
                         gen::uint_below(1u << 30),     // fault seed
                         gen::boolean(),                // selective-ack?
                         gen::boolean());               // brownout?
  PropertyConfig cfg = PropertyConfig::from_env();
  cfg.cases = 40;  // each case is a whole transfer
  auto result = check(
      g,
      [](const std::tuple<std::vector<std::uint8_t>, std::uint32_t,
                          std::uint32_t, bool, bool>& c) {
        const auto& [image, link_seed, fault_seed, sack, brownout] = c;

        sim::FaultPlan plan;
        plan.seed = fault_seed;
        plan.corrupt_rate = 0.1;
        plan.duplicate_rate = 0.1;
        plan.reorder_rate = 0.05;
        plan.timeout_jitter = 0.1;
        if (brownout) plan.brownout_at_byte = image.size() / 2;
        sim::FaultInjector faults{plan};

        FlashModel flash;
        NodeAgent node{7, flash, &faults};
        TransferPolicy policy;
        policy.mode =
            sack ? AckMode::kSelectiveAck : AckMode::kStopAndWait;
        policy.window = 8;
        policy.max_retries = 12;
        OtaLink link{ota_link_params(), Dbm{-112.0}, link_seed};

        AccessPoint ap;
        UpdateOutcome out =
            ap.transfer(image, 7, link, policy, &node, &faults);

        if (out.success != (out.failure == UpdateFailure::kNone))
          return false;
        if (out.link_seed != link_seed) return false;
        if (out.total_time.value() < out.airtime.value()) return false;
        if (!out.success) return true;  // classified failure is fine

        const std::size_t chunks =
            (image.size() + kDataPayload - 1) / kDataPayload;
        if (out.sends_per_chunk.size() != chunks) return false;
        for (auto sends : out.sends_per_chunk)
          if (sends == 0) return false;
        auto staged = flash.read(NodeAgent::kStagingBase, image.size());
        return staged == image;
      },
      cfg);
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(OtaProperty, BrownoutWithCheckpointResumesWithoutLosingFlashData) {
  auto g = gen::pair_of(gen::bytes(61, 300), gen::uint_below(1u << 30));
  auto result = check(
      g,
      [](const std::pair<std::vector<std::uint8_t>, std::uint32_t>& c) {
        const auto& [image, seed] = c;
        const std::size_t chunks =
            (image.size() + kDataPayload - 1) / kDataPayload;

        FlashModel flash;
        NodeAgent node{1, flash};
        node.begin_session(0xF00D, image.size());

        // Store a random prefix of chunks, checkpoint, then brown out.
        Rng rng{seed, 2};
        std::size_t keep = rng.next_below(
            static_cast<std::uint32_t>(chunks));
        for (std::size_t seq = 0; seq < keep; ++seq)
          if (node.receive_chunk(static_cast<std::uint16_t>(seq),
                                 chunk_of(image, seq)) != RxStatus::kStored)
            return false;
        node.persist_session();
        node.reboot();
        if (node.online()) return false;
        if (!node.poll_boot()) return false;

        // The resumed bitmap holds exactly the checkpointed chunks.
        if (node.chunks_received() != keep) return false;
        for (std::size_t seq = 0; seq < chunks; ++seq)
          if (node.has_chunk(seq) != (seq < keep)) return false;

        // Finishing the transfer from the gap yields the exact image.
        for (std::size_t seq = keep; seq < chunks; ++seq)
          if (node.receive_chunk(static_cast<std::uint16_t>(seq),
                                 chunk_of(image, seq)) != RxStatus::kStored)
            return false;
        return node.complete() && node.staged_stream() == image &&
               node.resume_count() == 1;
      });
  EXPECT_TRUE(result.ok) << result.message();
}

}  // namespace
}  // namespace tinysdr::ota
