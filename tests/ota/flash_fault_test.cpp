// NOR-semantics and fault-hook coverage for the flash model (satellite of
// the fault-injection PR): program-without-erase corruption, torn page
// programs, failed sector erases, and FirmwareStore integrity checks.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/crc.hpp"
#include "ota/flash.hpp"
#include "sim/faults.hpp"

namespace tinysdr::ota {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t start = 0) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

TEST(FlashNor, ProgramWithoutEraseCorrupts) {
  FlashModel flash;
  flash.erase_sector(0);
  std::vector<std::uint8_t> first(64, 0xAA);
  std::vector<std::uint8_t> second(64, 0x55);
  EXPECT_TRUE(flash.program(0, first));
  // Programming over unerased cells can only clear bits: AA & 55 = 00.
  EXPECT_TRUE(flash.program(0, second));
  auto back = flash.read(0, 64);
  for (auto b : back) EXPECT_EQ(b, 0x00);
}

TEST(FlashNor, ReprogramSameDataOverOnceErasedIsIdempotent) {
  // The self-healing property the OTA retransmission path relies on:
  // re-programming identical bytes over a region that was erased once
  // leaves the data intact (x & x == x).
  FlashModel flash;
  flash.erase_sector(0);
  auto data = pattern(256);
  EXPECT_TRUE(flash.program(0, data));
  EXPECT_TRUE(flash.program(0, data));
  EXPECT_EQ(flash.read(0, data.size()), data);
}

TEST(FlashNor, MidPagePowerLossLeavesPartialBits) {
  FlashModel flash;
  flash.erase_sector(0);
  // Deterministic hook: commit 100 bytes, tear the 101st with mask 0xF0.
  flash.set_page_program_hook(
      [](std::size_t, std::size_t) -> std::optional<PageProgramFault> {
        return PageProgramFault{100, 0xF0};
      });
  std::vector<std::uint8_t> data(256, 0x00);
  EXPECT_FALSE(flash.program(0, data));
  EXPECT_EQ(flash.program_failures(), 1u);
  auto back = flash.read(0, 256);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(back[i], 0x00);
  // Torn byte: high nibble refused to clear.
  EXPECT_EQ(back[100], 0xF0);
  // Beyond the tear nothing was programmed: still erased.
  for (std::size_t i = 101; i < 256; ++i) EXPECT_EQ(back[i], 0xFF);
}

TEST(FlashNor, TornPageHealsOnRetransmission) {
  FlashModel flash;
  flash.erase_sector(0);
  bool fail_once = true;
  flash.set_page_program_hook(
      [&](std::size_t, std::size_t) -> std::optional<PageProgramFault> {
        if (!fail_once) return std::nullopt;
        fail_once = false;
        return PageProgramFault{10, 0x0F};
      });
  auto data = pattern(60);
  EXPECT_FALSE(flash.program(0, data));
  EXPECT_NE(flash.read(0, data.size()), data);
  // Second program of the same bytes clears the remaining bits.
  EXPECT_TRUE(flash.program(0, data));
  EXPECT_EQ(flash.read(0, data.size()), data);
}

TEST(FlashNor, FailedSectorEraseLeavesStuckBits) {
  FlashModel flash;
  flash.erase_sector(0);
  std::vector<std::uint8_t> data(FlashModel::kSectorSize, 0x00);
  ASSERT_TRUE(flash.program(0, data));
  flash.set_sector_erase_hook([](std::size_t) { return true; });
  EXPECT_FALSE(flash.erase_sector(0));
  EXPECT_EQ(flash.erase_failures(), 1u);
  // First half blanked, second half still programmed.
  EXPECT_TRUE(flash.is_erased(0, FlashModel::kSectorSize / 2));
  EXPECT_FALSE(flash.is_erased(FlashModel::kSectorSize / 2,
                               FlashModel::kSectorSize / 2));
}

TEST(FlashFaults, InjectorDrivenProgramFaultsAreRegionScoped) {
  FlashModel flash;
  sim::FaultPlan plan;
  plan.seed = 21;
  plan.page_program_failure_rate = 1.0;
  plan.flash_fault_region =
      sim::FlashRegion{FirmwareStore::kSlotABase, 2 * 0x100000};
  sim::FaultInjector injector{plan};
  flash.set_page_program_hook(
      [&](std::size_t address,
          std::size_t length) -> std::optional<PageProgramFault> {
        auto f = injector.page_program_fault(address, length);
        if (!f) return std::nullopt;
        return PageProgramFault{f->committed, f->torn_keep_mask};
      });

  auto data = pattern(512);
  // Outside the fault region: clean.
  flash.erase_range(0, data.size());
  EXPECT_TRUE(flash.program(0, data));
  // Inside the region every page op faults.
  flash.erase_range(FirmwareStore::kSlotABase, data.size());
  EXPECT_FALSE(flash.program(FirmwareStore::kSlotABase, data));
  EXPECT_GT(injector.counters().page_program_failures, 0u);
}

TEST(FirmwareStore, LoadReturnsNulloptOnCorruptedImage) {
  FlashModel flash;
  FirmwareStore store{flash};
  auto image = pattern(4096);
  store.store("lora_fpga", image);
  ASSERT_TRUE(store.load("lora_fpga").has_value());
  // Corrupt the stored bytes behind the store's back (program clears bits).
  std::vector<std::uint8_t> zap(16, 0x00);
  flash.program(128, zap);
  EXPECT_FALSE(store.load("lora_fpga").has_value());
}

TEST(FirmwareStore, SlotWriteFailsVerifyUnderFaults) {
  FlashModel flash;
  sim::FaultPlan plan;
  plan.seed = 33;
  plan.page_program_failure_rate = 1.0;
  sim::FaultInjector injector{plan};
  FirmwareStore store{flash};
  auto image = pattern(2048);
  // Golden installed before the hooks go in (factory programming is clean).
  ASSERT_TRUE(store.install_golden(image));
  flash.set_page_program_hook(
      [&](std::size_t address,
          std::size_t length) -> std::optional<PageProgramFault> {
        auto f = injector.page_program_fault(address, length);
        if (!f) return std::nullopt;
        return PageProgramFault{f->committed, f->torn_keep_mask};
      });

  EXPECT_FALSE(store.write_slot(Slot::kA, image));
  EXPECT_FALSE(store.slot_valid(Slot::kA));
  EXPECT_FALSE(store.load_slot(Slot::kA).has_value());
  // Activation of a slot that never verified is refused.
  EXPECT_FALSE(store.activate(Slot::kA));
  EXPECT_EQ(store.active_slot(), Slot::kGolden);
}

TEST(FirmwareStore, BootFallsBackToGoldenWhenActiveCorrupts) {
  FlashModel flash;
  FirmwareStore store{flash};
  auto golden = pattern(1024, 1);
  auto update = pattern(1024, 2);
  ASSERT_TRUE(store.install_golden(golden));
  ASSERT_TRUE(store.write_slot(Slot::kA, update));
  ASSERT_TRUE(store.activate(Slot::kA));
  EXPECT_EQ(store.active_slot(), Slot::kA);
  // Cosmic-ray the active slot.
  std::vector<std::uint8_t> zap(8, 0x00);
  flash.program(FirmwareStore::kSlotABase + 100, zap);
  auto boot = store.boot_image();
  ASSERT_TRUE(boot.has_value());
  EXPECT_EQ(*boot, golden);
  EXPECT_EQ(store.active_slot(), Slot::kGolden);
  EXPECT_EQ(store.rollback_count(), 1u);
}

}  // namespace
}  // namespace tinysdr::ota
