#include "ota/flash.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tinysdr::ota {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = rng.next_byte();
  return v;
}

TEST(FlashModel, FreshDeviceIsErased) {
  FlashModel flash;
  EXPECT_TRUE(flash.is_erased(0, 1024));
  EXPECT_TRUE(flash.is_erased(FlashModel::kCapacity - 64, 64));
}

TEST(FlashModel, ProgramAndReadBack) {
  FlashModel flash;
  auto data = random_bytes(1000, 1);
  flash.program(0x1000, data);
  EXPECT_EQ(flash.read(0x1000, data.size()), data);
}

TEST(FlashModel, NorAndSemantics) {
  // Programming over unerased cells can only clear bits.
  FlashModel flash;
  flash.program(0, std::vector<std::uint8_t>{0xF0});
  flash.program(0, std::vector<std::uint8_t>{0x0F});
  EXPECT_EQ(flash.read(0, 1)[0], 0x00);  // 0xF0 & 0x0F
}

TEST(FlashModel, EraseRestoresFf) {
  FlashModel flash;
  flash.program(100, std::vector<std::uint8_t>(16, 0x00));
  flash.erase_sector(100);
  EXPECT_TRUE(flash.is_erased(0, FlashModel::kSectorSize));
}

TEST(FlashModel, EraseRangeSweepsSectors) {
  FlashModel flash;
  flash.program(0, std::vector<std::uint8_t>(20000, 0x00));
  flash.erase_range(0, 20000);
  EXPECT_TRUE(flash.is_erased(0, 20000));
  // 20000 bytes span 5 sectors of 4 KiB.
  EXPECT_EQ(flash.erase_count(), 5u);
}

TEST(FlashModel, OutOfRangeThrows) {
  FlashModel flash;
  EXPECT_THROW(flash.program(FlashModel::kCapacity - 1,
                             std::vector<std::uint8_t>(2, 0)),
               std::out_of_range);
  EXPECT_THROW((void)flash.read(FlashModel::kCapacity, 1), std::out_of_range);
  EXPECT_THROW(flash.erase_sector(FlashModel::kCapacity), std::out_of_range);
}

TEST(FlashModel, EightMegabytesStoresMultipleBitstreams) {
  // §3.1.2: "it allows tinySDR to store multiple FPGA bitstreams and MCU
  // programs". 8 MB / 579 kB > 13 images.
  EXPECT_GT(FlashModel::kCapacity / (579 * 1024), 13u);
}

TEST(FirmwareStore, StoreLoadRoundTrip) {
  FlashModel flash;
  FirmwareStore store{flash};
  auto lora = random_bytes(579 * 1024, 2);
  auto ble = random_bytes(579 * 1024, 3);
  store.store("lora", lora);
  store.store("ble", ble);
  EXPECT_EQ(store.stored_count(), 2u);
  EXPECT_EQ(store.load("lora"), lora);
  EXPECT_EQ(store.load("ble"), ble);
}

TEST(FirmwareStore, UnknownNameReturnsNullopt) {
  FlashModel flash;
  FirmwareStore store{flash};
  EXPECT_FALSE(store.load("nothing").has_value());
}

TEST(FirmwareStore, ReplaceInPlace) {
  FlashModel flash;
  FirmwareStore store{flash};
  store.store("img", random_bytes(10000, 4));
  auto v2 = random_bytes(9000, 5);
  store.store("img", v2);
  EXPECT_EQ(store.load("img"), v2);
  EXPECT_EQ(store.stored_count(), 1u);
}

TEST(FirmwareStore, DetectsFlashCorruption) {
  FlashModel flash;
  FirmwareStore store{flash};
  store.store("img", random_bytes(5000, 6));
  // Corrupt the stored bytes behind the store's back.
  flash.program(10, std::vector<std::uint8_t>{0x00, 0x00, 0x00});
  EXPECT_FALSE(store.load("img").has_value());
}

TEST(FirmwareStore, ExhaustsFlashEventually) {
  FlashModel flash;
  FirmwareStore store{flash};
  auto image = random_bytes(1024 * 1024, 7);
  for (int i = 0; i < 7; ++i)
    store.store("img" + std::to_string(i), image);
  EXPECT_THROW(store.store("one_too_many", image), std::length_error);
}

TEST(FlashTiming, ProgramTimeScalesWithPages) {
  Seconds small = FlashModel::program_time(256);
  Seconds large = FlashModel::program_time(256 * 100);
  EXPECT_NEAR(large.value() / small.value(), 100.0, 1.0);
}

}  // namespace
}  // namespace tinysdr::ota
