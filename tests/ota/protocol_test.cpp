#include "ota/protocol.hpp"

#include <gtest/gtest.h>

#include "ota/update.hpp"

namespace tinysdr::ota {
namespace {

TEST(OtaLinkParams, MatchPaperConfiguration) {
  // §5.3: SF = 8, BW = 500 kHz, CodingRate = 6, 8-chirp preamble.
  auto p = ota_link_params();
  EXPECT_EQ(p.sf, 8);
  EXPECT_NEAR(p.bandwidth.kilohertz(), 500.0, 1e-9);
  EXPECT_EQ(p.cr, lora::CodingRate::kCr46);
  EXPECT_EQ(p.preamble_symbols, kOtaPreambleSymbols);
}

TEST(OtaLink, PerNearZeroAtStrongRssi) {
  Rng rng{1};
  OtaLink link{ota_link_params(), Dbm{-80.0}, rng};
  EXPECT_LT(link.packet_error_rate(kDataPayload), 1e-6);
}

TEST(OtaLink, PerNearOneFarBelowSensitivity) {
  Rng rng{2};
  OtaLink link{ota_link_params(), Dbm{-135.0}, rng};
  EXPECT_GT(link.packet_error_rate(kDataPayload), 0.999);
}

TEST(OtaLink, PerWaterfallAroundSensitivity) {
  Rng rng{3};
  Dbm sensitivity =
      lora::sx1276_sensitivity(8, Hertz::from_kilohertz(500.0));
  OtaLink at{ota_link_params(), sensitivity, rng};
  double per = at.packet_error_rate(kDataPayload);
  EXPECT_GT(per, 0.2);
  EXPECT_LT(per, 0.95);
}

TEST(OtaLink, LongerPacketsSlightlyWorse) {
  Rng rng{4};
  Dbm rssi = lora::sx1276_sensitivity(8, Hertz::from_kilohertz(500.0)) + 1.0;
  OtaLink link{ota_link_params(), rssi, rng};
  EXPECT_GT(link.packet_error_rate(200), link.packet_error_rate(10));
}

TEST(OtaPacket, WireSizes) {
  OtaPacket data{OtaPacketType::kData, 1, 0, 0,
                 std::vector<std::uint8_t>(60, 0)};
  EXPECT_EQ(data.wire_size(), 67u);
  OtaPacket end{OtaPacketType::kEnd, 1, 0, 0xDEADBEEF, {}};
  EXPECT_EQ(end.wire_size(), 11u);
}

TEST(AccessPoint, PerfectLinkTransfersEverything) {
  Rng rng{5};
  OtaLink link{ota_link_params(), Dbm{-60.0}, rng};
  std::vector<std::uint8_t> image(10000, 0xAB);
  AccessPoint ap;
  auto outcome = ap.transfer(image, 7, link);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.data_packets, (image.size() + 59) / 60);
  EXPECT_EQ(outcome.retransmissions, 0u);
  EXPECT_GT(outcome.total_time.value(), 0.0);
  EXPECT_GT(outcome.node_energy.value(), 0.0);
}

TEST(AccessPoint, LossyLinkRetransmitsButSucceeds) {
  Rng rng{6};
  // ~3 dB above sensitivity: a few percent loss.
  Dbm rssi = lora::sx1276_sensitivity(8, Hertz::from_kilohertz(500.0)) + 3.5;
  OtaLink link{ota_link_params(), rssi, rng};
  std::vector<std::uint8_t> image(20000, 0x55);
  AccessPoint ap;
  auto outcome = ap.transfer(image, 7, link);
  EXPECT_TRUE(outcome.success);
  EXPECT_GT(outcome.retransmissions, 0u);
}

TEST(AccessPoint, HopelessLinkAborts) {
  Rng rng{7};
  OtaLink link{ota_link_params(), Dbm{-140.0}, rng};
  std::vector<std::uint8_t> image(5000, 0x11);
  AccessPoint ap;
  auto outcome = ap.transfer(image, 7, link, 5);
  EXPECT_FALSE(outcome.success);
}

TEST(AccessPoint, TimeScalesWithImageSize) {
  AccessPoint ap;
  Rng rng1{8}, rng2{8};
  OtaLink link1{ota_link_params(), Dbm{-60.0}, rng1};
  OtaLink link2{ota_link_params(), Dbm{-60.0}, rng2};
  auto small = ap.transfer(std::vector<std::uint8_t>(5000, 1), 1, link1);
  auto large = ap.transfer(std::vector<std::uint8_t>(50000, 1), 1, link2);
  EXPECT_GT(large.total_time.value(), small.total_time.value() * 5.0);
}

TEST(UpdatePipeline, FullLoraFpgaUpdate) {
  Rng image_rng{42};
  auto image = fpga::generate_bitstream(fpga::lora_rx_design(8),
                                        fpga::DeviceSpec{}, image_rng);
  Rng link_rng{9};
  OtaLink link{ota_link_params(), Dbm{-85.0}, link_rng};
  FlashModel flash;
  mcu::Msp432 mcu = mcu::baseline_firmware();
  UpdatePlanner planner;
  auto report = planner.run(image, UpdateTarget::kFpga, 3, link, flash, mcu);

  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.original_bytes, 579u * 1024u);
  // Compressed to roughly the paper's 99 kB.
  EXPECT_NEAR(static_cast<double>(report.compressed_bytes) / 1024.0, 99.0,
              15.0);
  // Decompression bounded by the paper's 450 ms.
  EXPECT_LT(report.decompress_time.milliseconds(), 460.0);
  // Reprogramming ~22 ms.
  EXPECT_NEAR(report.reprogram_time.milliseconds(), 22.0, 2.0);
  // The boot image in flash equals the original.
  EXPECT_EQ(flash.read(0, image.size()), image.data);
  // MCU block buffer was released.
  EXPECT_FALSE(mcu.sram_map().contains("ota_block"));
}

TEST(UpdatePipeline, EnergyInPaperBallpark) {
  // §5.3: ~6144 mJ for a LoRa FPGA update at a mid-range link.
  Rng image_rng{42};
  auto image = fpga::generate_bitstream(fpga::lora_rx_design(8),
                                        fpga::DeviceSpec{}, image_rng);
  Rng link_rng{10};
  OtaLink link{ota_link_params(), Dbm{-95.0}, link_rng};
  FlashModel flash;
  mcu::Msp432 mcu = mcu::baseline_firmware();
  UpdatePlanner planner;
  auto report = planner.run(image, UpdateTarget::kFpga, 3, link, flash, mcu);
  ASSERT_TRUE(report.success);
  EXPECT_GT(report.total_energy.value(), 2000.0);
  EXPECT_LT(report.total_energy.value(), 12000.0);
}

TEST(UpdatePipeline, McuTargetUsesSelfFlash) {
  Rng image_rng{11};
  auto image = fpga::generate_mcu_program("mcu_fw", 78 * 1024, image_rng);
  Rng link_rng{12};
  OtaLink link{ota_link_params(), Dbm{-80.0}, link_rng};
  FlashModel flash;
  mcu::Msp432 mcu = mcu::baseline_firmware();
  UpdatePlanner planner;
  auto report = planner.run(image, UpdateTarget::kMcu, 4, link, flash, mcu);
  ASSERT_TRUE(report.success);
  EXPECT_GT(report.reprogram_time.value(),
            fpga::ProgrammingModel{}.load_time(78 * 1024).value());
}

TEST(AmortizedPower, DailyUpdateMicrowatts) {
  // §5.3: daily OTA programming averages ~71 uW (LoRa) / ~27 uW (BLE).
  UpdateReport report;
  report.total_energy = Millijoules{6144.0};
  Milliwatts avg = amortized_update_power(report, Seconds{86400.0});
  EXPECT_NEAR(avg.microwatts(), 71.0, 1.0);
  EXPECT_THROW(amortized_update_power(report, Seconds{0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tinysdr::ota
