#include "ota/lzo.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fpga/bitstream.hpp"

namespace tinysdr::ota {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = rng.next_byte();
  return v;
}

TEST(Lzo, EmptyInput) {
  auto compressed = lzo_compress({});
  EXPECT_TRUE(compressed.empty());
  auto back = lzo_decompress(compressed, 0);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(Lzo, RoundTripRandomData) {
  auto data = random_bytes(10000, 1);
  auto compressed = lzo_compress(data);
  auto back = lzo_decompress(compressed, data.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
  // Random data: small expansion only.
  EXPECT_LE(compressed.size(), lzo_worst_case(data.size()));
}

TEST(Lzo, RoundTripZeros) {
  std::vector<std::uint8_t> zeros(100000, 0x00);
  auto compressed = lzo_compress(zeros);
  EXPECT_LT(compressed.size(), zeros.size() / 50);  // heavy compression
  auto back = lzo_decompress(compressed, zeros.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, zeros);
}

TEST(Lzo, RoundTripPeriodicData) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 5000; ++i)
    data.push_back(static_cast<std::uint8_t>(i % 23));
  auto compressed = lzo_compress(data);
  EXPECT_LT(compressed.size(), data.size() / 5);
  auto back = lzo_decompress(compressed, data.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Lzo, RoundTripShortInputs) {
  for (std::size_t n : {1ul, 2ul, 3ul, 4ul, 5ul, 31ul, 32ul, 33ul}) {
    auto data = random_bytes(n, n);
    auto back = lzo_decompress(lzo_compress(data), n);
    ASSERT_TRUE(back.has_value()) << n;
    EXPECT_EQ(*back, data) << n;
  }
}

TEST(Lzo, OverlappingMatchRle) {
  // "ababab..." exercises offset < length replication.
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 1000; ++i) data.push_back(i % 2 ? 0xAB : 0xCD);
  auto compressed = lzo_compress(data);
  EXPECT_LT(compressed.size(), 50u);
  auto back = lzo_decompress(compressed, data.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Lzo, DecompressRejectsCorruption) {
  auto data = random_bytes(5000, 3);
  // Mix in compressible structure so matches exist.
  for (std::size_t i = 1000; i < 3000; ++i) data[i] = data[i - 500];
  auto compressed = lzo_compress(data);
  // Truncated stream.
  std::vector<std::uint8_t> truncated(compressed.begin(),
                                      compressed.end() - 5);
  EXPECT_FALSE(lzo_decompress(truncated, data.size()).has_value());
  // Wrong expected size.
  EXPECT_FALSE(lzo_decompress(compressed, data.size() - 1).has_value());
  EXPECT_FALSE(lzo_decompress(compressed, data.size() + 1).has_value());
}

TEST(Lzo, DecompressRejectsBadOffset) {
  // Hand-craft a match pointing before the start of output.
  std::vector<std::uint8_t> bogus{0x00, 0x41,        // literal 'A'
                                  0x24, 0x05, 0x00}; // match len 8, offset 5
  EXPECT_FALSE(lzo_decompress(bogus, 9).has_value());
}

TEST(Lzo, PropertyFuzzRoundTrip) {
  // Mixed-entropy fuzz across seeds: every buffer must round-trip.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng{seed + 100};
    std::vector<std::uint8_t> data;
    std::size_t target = 500 + rng.next_below(20000);
    while (data.size() < target) {
      switch (rng.next_below(3)) {
        case 0: {  // random run
          std::size_t run = 1 + rng.next_below(50);
          for (std::size_t i = 0; i < run; ++i)
            data.push_back(rng.next_byte());
          break;
        }
        case 1: {  // constant run
          std::size_t run = 1 + rng.next_below(300);
          std::uint8_t b = rng.next_byte();
          for (std::size_t i = 0; i < run; ++i) data.push_back(b);
          break;
        }
        default: {  // copy from earlier (self-similarity)
          if (data.empty()) break;
          std::size_t back = 1 + rng.next_below(
              static_cast<std::uint32_t>(std::min<std::size_t>(data.size(), 5000)));
          std::size_t run = 1 + rng.next_below(200);
          std::size_t src = data.size() - back;
          for (std::size_t i = 0; i < run; ++i)
            data.push_back(data[src + i]);
          break;
        }
      }
    }
    auto back = lzo_decompress(lzo_compress(data), data.size());
    ASSERT_TRUE(back.has_value()) << "seed " << seed;
    EXPECT_EQ(*back, data) << "seed " << seed;
  }
}

TEST(LzoBlocks, RoundTripAcrossBlockBoundaries) {
  auto data = random_bytes(100 * 1024, 9);
  for (std::size_t i = 0; i < data.size(); i += 3) data[i] = 0;  // structure
  auto blocks = compress_blocks(data);
  EXPECT_EQ(blocks.size(), (data.size() + kOtaBlockSize - 1) / kOtaBlockSize);
  auto back = decompress_blocks(blocks);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(LzoBlocks, CrcDetectsBlockCorruption) {
  auto data = random_bytes(64 * 1024, 10);
  auto blocks = compress_blocks(data);
  blocks[1].data[10] ^= 0xFF;
  EXPECT_FALSE(decompress_blocks(blocks).has_value());
}

TEST(LzoBlocks, BlockSizeRespectsMcuBudget) {
  // Every block's decompressed size fits the paper's 30 kB SRAM buffer.
  auto data = random_bytes(200 * 1024, 11);
  auto blocks = compress_blocks(data);
  for (const auto& b : blocks) EXPECT_LE(b.original_size, kOtaBlockSize);
}

TEST(LzoCalibration, LoraBitstreamCompressesToRoughly99kB) {
  // §5.3: "our LoRa program compresses to 99 kB and BLE to 40 kB".
  Rng rng{42};
  auto lora = fpga::generate_bitstream(fpga::lora_rx_design(8),
                                       fpga::DeviceSpec{}, rng);
  auto blocks = compress_blocks(lora.data);
  double kb = static_cast<double>(compressed_size(blocks)) / 1024.0;
  EXPECT_NEAR(kb, 99.0, 15.0);
}

TEST(LzoCalibration, BleBitstreamCompressesToRoughly40kB) {
  Rng rng{43};
  auto ble = fpga::generate_bitstream(fpga::ble_tx_design(),
                                      fpga::DeviceSpec{}, rng);
  auto blocks = compress_blocks(ble.data);
  double kb = static_cast<double>(compressed_size(blocks)) / 1024.0;
  EXPECT_NEAR(kb, 40.0, 10.0);
}

TEST(LzoCalibration, McuProgramCompressesToRoughly24kB) {
  // §5.3: MCU programs ~78 kB compress to ~24 kB.
  Rng rng{44};
  auto mcu = fpga::generate_mcu_program("lora_mcu", 78 * 1024, rng);
  auto blocks = compress_blocks(mcu.data);
  double kb = static_cast<double>(compressed_size(blocks)) / 1024.0;
  EXPECT_NEAR(kb, 24.0, 8.0);
}

}  // namespace
}  // namespace tinysdr::ota
