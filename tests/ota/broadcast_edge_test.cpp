// Broadcast OTA edge cases beyond the §7 study tests.
#include <gtest/gtest.h>

#include "ota/broadcast.hpp"

namespace tinysdr::ota {
namespace {

TEST(BroadcastEdge, EmptyImageCompletesInstantly) {
  std::vector<std::uint8_t> empty;
  std::vector<OtaLink> links;
  links.emplace_back(ota_link_params(), Dbm{-70.0}, Rng{1});
  BroadcastUpdater updater;
  auto outcome = updater.broadcast(empty, links);
  EXPECT_EQ(outcome.nodes_complete, 1u);
  EXPECT_EQ(outcome.packets_broadcast, 0u);
}

TEST(BroadcastEdge, SingleNodeEquivalentToUnicastPacketCount) {
  std::vector<std::uint8_t> image(601, 0x42);  // 11 packets (60 B each)
  std::vector<OtaLink> links;
  links.emplace_back(ota_link_params(), Dbm{-70.0}, Rng{2});
  BroadcastUpdater updater;
  auto outcome = updater.broadcast(image, links);
  EXPECT_EQ(outcome.nodes_complete, 1u);
  EXPECT_EQ(outcome.packets_broadcast, 11u);
}

TEST(BroadcastEdge, RoundLimitBoundsHopelessLinks) {
  std::vector<std::uint8_t> image(3000, 0x11);
  std::vector<OtaLink> links;
  links.emplace_back(ota_link_params(), Dbm{-140.0}, Rng{3});  // dead link
  BroadcastUpdater updater;
  auto outcome = updater.broadcast(image, links, /*max_rounds=*/5);
  EXPECT_EQ(outcome.nodes_complete, 0u);
  EXPECT_EQ(outcome.repair_rounds, 5u);
  // Bounded work: at most rounds * packet_count broadcasts.
  EXPECT_LE(outcome.packets_broadcast, 5u * ((image.size() + 59) / 60));
}

TEST(BroadcastEdge, MixedFleetOnlyRepairsTheWeak) {
  // One perfect link, one marginal: repairs must not rebroadcast what the
  // strong node already has beyond the union of missing packets.
  std::vector<std::uint8_t> image(6000, 0x77);
  std::size_t base_packets = (image.size() + 59) / 60;
  std::vector<OtaLink> links;
  links.emplace_back(ota_link_params(), Dbm{-60.0}, Rng{4});
  Dbm marginal =
      lora::sx1276_sensitivity(8, Hertz::from_kilohertz(500.0)) + 2.0;
  links.emplace_back(ota_link_params(), marginal, Rng{5});
  BroadcastUpdater updater;
  auto outcome = updater.broadcast(image, links);
  EXPECT_EQ(outcome.nodes_complete, 2u);
  // Repairs happened but far fewer than a full second pass.
  EXPECT_GT(outcome.packets_broadcast, base_packets);
  EXPECT_LT(outcome.packets_broadcast, base_packets * 2);
}

TEST(BroadcastEdge, SpeedupHelperSane) {
  BroadcastOutcome outcome;
  outcome.total_time = Seconds{10.0};
  EXPECT_NEAR(outcome.speedup_vs(Seconds{100.0}), 10.0, 1e-12);
  BroadcastOutcome zero;
  EXPECT_DOUBLE_EQ(zero.speedup_vs(Seconds{100.0}), 0.0);
}

}  // namespace
}  // namespace tinysdr::ota
