#include "ota/scheduler.hpp"

#include <gtest/gtest.h>

namespace tinysdr::ota {
namespace {

TEST(ListenSchedule, NextWindowArithmetic) {
  ListenSchedule s;
  s.interval = Seconds{600.0};
  s.phase = Seconds{100.0};
  EXPECT_DOUBLE_EQ(s.next_window(Seconds{0.0}).value(), 100.0);
  EXPECT_DOUBLE_EQ(s.next_window(Seconds{100.0}).value(), 100.0);
  EXPECT_DOUBLE_EQ(s.next_window(Seconds{100.1}).value(), 700.0);
  EXPECT_DOUBLE_EQ(s.next_window(Seconds{699.0}).value(), 700.0);
}

TEST(ListenSchedule, RejectsBadInterval) {
  ListenSchedule s;
  s.interval = Seconds{0.0};
  EXPECT_THROW((void)s.next_window(Seconds{1.0}), std::invalid_argument);
}

TEST(ListenSchedule, DutyFraction) {
  ListenSchedule s;
  s.interval = Seconds{600.0};
  s.window = Seconds::from_milliseconds(50.0);
  EXPECT_NEAR(s.duty(), 0.05 / 600.0, 1e-12);
}

TEST(IdleListenPower, NearSleepForLongIntervals) {
  // 50 ms of backbone RX every 10 minutes adds single-digit microwatts to
  // the 30 uW sleep floor — the paper's design intent.
  ListenSchedule s;
  s.interval = Seconds{600.0};
  Milliwatts avg = idle_listen_power(s);
  EXPECT_LT(avg.microwatts(), 45.0);
  EXPECT_GT(avg.microwatts(), 29.0);
}

TEST(IdleListenPower, ShortIntervalsCostReal) {
  ListenSchedule rarely, often;
  rarely.interval = Seconds{3600.0};
  often.interval = Seconds{5.0};
  EXPECT_GT(idle_listen_power(often).value(),
            idle_listen_power(rarely).value() * 10.0);
}

TEST(Rendezvous, WorstAndAverage) {
  ListenSchedule s;
  s.interval = Seconds{600.0};
  EXPECT_DOUBLE_EQ(worst_case_rendezvous(s).value(), 600.0);
  EXPECT_DOUBLE_EQ(average_rendezvous(s).value(), 300.0);
}

TEST(FleetRendezvous, SortedWindowTimes) {
  std::vector<ListenSchedule> fleet;
  for (int i = 0; i < 10; ++i) {
    ListenSchedule s;
    s.interval = Seconds{600.0};
    s.phase = Seconds{static_cast<double>((i * 331) % 600)};
    fleet.push_back(s);
  }
  auto times = plan_fleet_rendezvous(fleet);
  ASSERT_EQ(times.size(), 10u);
  for (std::size_t i = 1; i < times.size(); ++i)
    EXPECT_LE(times[i - 1].value(), times[i].value());
  // All within one interval.
  EXPECT_LE(times.back().value(), 600.0);
}

}  // namespace
}  // namespace tinysdr::ota
