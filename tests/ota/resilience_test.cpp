// Acceptance tests for the hardened OTA pipeline: selective-ACK vs
// stop-and-wait under burst loss, brownout resume without re-sending
// acknowledged chunks, and golden-image rollback on a corrupted update.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/crc.hpp"
#include "ota/protocol.hpp"
#include "ota/update.hpp"
#include "sim/faults.hpp"

namespace tinysdr::ota {
namespace {

std::vector<std::uint8_t> make_image(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>(i * 131 + 7);
  return v;
}

// (a) Under Gilbert–Elliott burst loss at the same long-run PER, the
// windowed selective-ACK transfer completes in measurably less airtime
// than per-packet stop-and-wait.
TEST(OtaResilience, SelectiveAckBeatsStopAndWaitUnderBurstLoss) {
  channel::GilbertElliottParams burst{0.05, 0.30, 0.0, 0.9};
  auto image = make_image(12000);
  AccessPoint ap;

  TransferPolicy sack_policy;
  sack_policy.mode = AckMode::kSelectiveAck;
  sack_policy.max_retries = 200;
  TransferPolicy sw_policy;
  sw_policy.mode = AckMode::kStopAndWait;
  sw_policy.max_retries = 200;

  // Same strong RSSI (no waterfall loss) and the same seed: both runs see
  // an identically-parameterized burst process; only the ACK strategy
  // differs.
  OtaLink sack_link{ota_link_params(), Dbm{-60.0}, std::uint64_t{0xA11CE}};
  sack_link.set_burst(burst);
  OtaLink sw_link{ota_link_params(), Dbm{-60.0}, std::uint64_t{0xA11CE}};
  sw_link.set_burst(burst);

  auto sack = ap.transfer(image, 1, sack_link, sack_policy);
  auto sw = ap.transfer(image, 1, sw_link, sw_policy);

  ASSERT_TRUE(sack.success);
  ASSERT_TRUE(sw.success);
  EXPECT_EQ(sack.data_packets, sw.data_packets);
  // Measurably less: at least 10% airtime saved by batching ACKs.
  EXPECT_LT(sack.airtime.value(), 0.9 * sw.airtime.value());
}

// (b) A node that browns out at 50% of the transfer resumes from its
// flash checkpoint: the transfer still succeeds and already-acknowledged
// chunks are not re-sent.
TEST(OtaResilience, BrownoutAtHalfTransferResumesWithoutResending) {
  auto image = make_image(12000);
  const std::size_t chunks = (image.size() + kDataPayload - 1) / kDataPayload;

  sim::FaultPlan plan;
  plan.seed = 0xB0;
  plan.brownout_at_byte = image.size() / 2;
  sim::FaultInjector faults{plan};

  FlashModel flash;
  mcu::Msp432 mcu;
  mcu.capture_boot_image();
  NodeAgent node{4, flash, &faults, &mcu};
  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{0xB00}};
  TransferPolicy policy;
  AccessPoint ap;
  auto outcome = ap.transfer(image, 4, link, policy, &node, &faults);

  ASSERT_TRUE(outcome.success);
  EXPECT_EQ(outcome.node_reboots, 1u);
  EXPECT_GE(outcome.session_resumes, 1u);
  EXPECT_EQ(mcu.last_reset_cause(), mcu::ResetCause::kBrownout);
  EXPECT_EQ(outcome.data_packets, chunks);
  // The flash checkpoint covers everything the AP saw acknowledged, so at
  // most the in-flight window around the brownout is re-sent — never the
  // whole first half.
  std::size_t resent_chunks = 0;
  std::size_t total_sends = 0;
  for (auto sends : outcome.sends_per_chunk) {
    total_sends += sends;
    if (sends > 1) ++resent_chunks;
  }
  EXPECT_LE(resent_chunks, 2 * policy.window);
  EXPECT_LE(total_sends, chunks + 3 * policy.window);
  // And the staged stream is intact.
  EXPECT_EQ(flash.read(NodeAgent::kStagingBase, image.size()), image);
}

// (b continued) The persisted session must also survive a brownout right
// in the END phase, after the whole stream arrived.
TEST(OtaResilience, SessionPersistsAcrossExplicitReboot) {
  auto image = make_image(6000);
  FlashModel flash;
  NodeAgent node{2, flash};
  std::uint32_t session = crc32_ieee(image);
  ASSERT_FALSE(node.begin_session(session, image.size()));
  for (std::size_t seq = 0;
       seq * kDataPayload < image.size(); ++seq) {
    std::size_t len = std::min(kDataPayload, image.size() - seq * kDataPayload);
    auto status = node.receive_chunk(
        static_cast<std::uint16_t>(seq),
        std::span(image).subspan(seq * kDataPayload, len));
    ASSERT_EQ(status, NodeAgent::RxStatus::kStored);
  }
  node.persist_session();
  node.reboot();
  EXPECT_FALSE(node.online());
  EXPECT_TRUE(node.poll_boot());
  EXPECT_TRUE(node.has_session());
  EXPECT_TRUE(node.complete());
  EXPECT_EQ(node.resume_count(), 1u);
  EXPECT_TRUE(node.verify_stream(session));
}

// (c) When the final image fails verification, the update rolls back and
// the node still boots the golden image.
TEST(OtaResilience, CorruptedImageRollsBackToGolden) {
  auto image_bytes = make_image(40 * 1024);
  fpga::FirmwareImage image{"victim", image_bytes,
                            crc32_ieee(image_bytes)};
  auto golden = make_image(8 * 1024);

  // Flash faults confined to the A/B slot regions: the radio transfer and
  // staging stay healthy, but every slot write tears.
  sim::FaultPlan plan;
  plan.seed = 0xC0;
  plan.page_program_failure_rate = 1.0;
  plan.flash_fault_region =
      sim::FlashRegion{FirmwareStore::kSlotABase,
                       FirmwareStore::kGoldenBase - FirmwareStore::kSlotABase};
  sim::FaultInjector faults{plan};

  FlashModel flash;
  mcu::Msp432 mcu = mcu::baseline_firmware();
  FirmwareStore store{flash};
  ASSERT_TRUE(store.install_golden(golden));

  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{0xC00}};
  UpdateOptions options;
  options.faults = &faults;
  options.store = &store;
  UpdatePlanner planner;
  auto report =
      planner.run(image, UpdateTarget::kFpga, 8, link, flash, mcu, options);

  EXPECT_FALSE(report.success);
  EXPECT_EQ(report.failure, UpdateFailure::kImageVerify);
  EXPECT_TRUE(report.rolled_back);
  EXPECT_EQ(store.active_slot(), Slot::kGolden);
  auto boot = store.boot_image();
  ASSERT_TRUE(boot.has_value());
  EXPECT_EQ(*boot, golden);
}

// (c control) With healthy flash the same pipeline lands the image in a
// standby slot and activates it.
TEST(OtaResilience, HealthyUpdateActivatesStandbySlot) {
  auto image_bytes = make_image(40 * 1024);
  fpga::FirmwareImage image{"update", image_bytes,
                            crc32_ieee(image_bytes)};
  auto golden = make_image(8 * 1024);

  FlashModel flash;
  mcu::Msp432 mcu = mcu::baseline_firmware();
  FirmwareStore store{flash};
  ASSERT_TRUE(store.install_golden(golden));

  OtaLink link{ota_link_params(), Dbm{-60.0}, std::uint64_t{0xD00}};
  UpdateOptions options;
  options.store = &store;
  UpdatePlanner planner;
  auto report =
      planner.run(image, UpdateTarget::kFpga, 8, link, flash, mcu, options);

  ASSERT_TRUE(report.success);
  EXPECT_FALSE(report.rolled_back);
  ASSERT_TRUE(report.slot.has_value());
  EXPECT_EQ(*report.slot, Slot::kA);  // standby of golden-active is A
  EXPECT_EQ(store.active_slot(), Slot::kA);
  auto boot = store.boot_image();
  ASSERT_TRUE(boot.has_value());
  EXPECT_EQ(*boot, image_bytes);
}

}  // namespace
}  // namespace tinysdr::ota
