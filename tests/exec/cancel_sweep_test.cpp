// CancellationSource / deadline interaction with LinkSimulator sweeps:
// a cancelled or deadline-bounded sweep must return a well-formed partial
// RunStatus — every point either fully ran or never ran, merged telemetry
// covers exactly the completed points, and no metrics shard is leaked or
// double-counted.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "exec/cancel.hpp"
#include "exec/parallel_for.hpp"
#include "obs/metrics.hpp"
#include "phy/link_sim.hpp"
#include "phy/registry.hpp"

namespace tinysdr::phy {
namespace {

struct SweepFixture {
  const RegisteredPhy& entry = Registry::builtin().at(Protocol::kBle);
  std::unique_ptr<PhyTx> tx = entry.make_tx();
  std::unique_ptr<PhyRx> rx = entry.make_rx();
  TrialPlan plan;
  std::vector<SweepPoint> points;

  SweepFixture() {
    plan.trials = 4;
    plan.payload_bytes = 6;
    plan.base_seed = 33;
    for (double rssi = -106.0; rssi <= -85.0; rssi += 3.0)
      points.push_back({Dbm{rssi}, std::nullopt});
  }

  [[nodiscard]] LinkSimulator sim() const { return {*tx, *rx, plan}; }
};

void expect_well_formed(const SweepFixture& f,
                        const std::vector<PointResult>& results,
                        const exec::RunStatus& status) {
  ASSERT_EQ(results.size(), f.points.size());
  std::size_t completed = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    // All-or-nothing per point: a point either ran its full trial loop
    // or was never started (value-initialised, frames == 0).
    if (results[i].frames == 0) {
      EXPECT_EQ(results[i], PointResult{}) << "point " << i;
    } else {
      EXPECT_EQ(results[i].frames, f.plan.trials) << "point " << i;
      EXPECT_EQ(results[i].rssi_dbm, f.points[i].rssi.value());
      ++completed;
    }
  }
  EXPECT_EQ(completed, status.items_completed);
}

TEST(CancelSweep, PreCancelledTokenRunsNothing) {
  SweepFixture f;
  exec::CancellationSource source;
  source.cancel();
  exec::ExecPolicy policy;
  policy.cancel = source.token();

  obs::Registry registry;
  obs::MetricsSession session{registry};
  std::vector<PointResult> results;
  exec::RunStatus status = f.sim().sweep(f.points, results, policy);

  EXPECT_EQ(status.outcome, exec::RunOutcome::kCancelled);
  EXPECT_EQ(status.items_completed, 0u);
  expect_well_formed(f, results, status);
  // No shard ran, so no telemetry leaked into the parent registry.
  EXPECT_TRUE(registry.snapshot().counters.empty());
  EXPECT_TRUE(registry.snapshot().histograms.empty());
}

TEST(CancelSweep, ExpiredDeadlineReportsDeadlineExceeded) {
  SweepFixture f;
  exec::ExecPolicy policy;
  policy.threads = 2;
  policy.deadline = Seconds{0.0};  // already expired

  std::vector<PointResult> results;
  exec::RunStatus status = f.sim().sweep(f.points, results, policy);

  EXPECT_EQ(status.outcome, exec::RunOutcome::kDeadlineExceeded);
  expect_well_formed(f, results, status);
  EXPECT_LT(status.items_completed, f.points.size());
}

TEST(CancelSweep, MidSweepCancellationYieldsConsistentPartialTelemetry) {
  SweepFixture f;
  exec::CancellationSource source;
  exec::ExecPolicy policy;
  policy.threads = 2;
  policy.cancel = source.token();

  obs::Registry registry;
  obs::MetricsSession session{registry};
  std::vector<PointResult> results;

  // Cancel concurrently; whatever subset completes must be consistent.
  std::thread canceller([&source] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    source.cancel();
  });
  exec::RunStatus status = f.sim().sweep(f.points, results, policy);
  canceller.join();

  EXPECT_TRUE(status.outcome == exec::RunOutcome::kCancelled ||
              status.outcome == exec::RunOutcome::kCompleted);
  expect_well_formed(f, results, status);

  // Merged telemetry covers exactly the completed points: the trials
  // counter equals the frames actually accumulated — shards of skipped
  // points contribute nothing, completed shards contribute once.
  std::uint64_t frames = 0;
  for (const auto& r : results) frames += r.frames;
  auto snapshot = registry.snapshot();
  const std::string counter = "phy." + std::string(protocol_name(
                                           f.entry.id)) + ".trials";
  if (frames == 0) {
    EXPECT_EQ(snapshot.counters.count(counter), 0u);
  } else {
    ASSERT_EQ(snapshot.counters.count(counter), 1u);
    EXPECT_DOUBLE_EQ(snapshot.counters.at(counter),
                     static_cast<double>(frames));
  }
}

TEST(CancelSweep, PartialResultsMatchTheFullRunPointForPoint) {
  SweepFixture f;
  auto full = f.sim().sweep(f.points, exec::ExecPolicy::serial());

  // However the deadline truncates the sweep, every point that DID run
  // is byte-identical to the same point in an unbounded run.
  exec::ExecPolicy policy;
  policy.threads = 2;
  policy.deadline = Seconds{0.0};
  std::vector<PointResult> partial;
  (void)f.sim().sweep(f.points, partial, policy);
  for (std::size_t i = 0; i < partial.size(); ++i)
    if (partial[i].frames != 0)
      EXPECT_EQ(partial[i], full[i]) << "point " << i;
}

TEST(CancelSweep, LegacySweepStaysCompleteAndEquivalent) {
  SweepFixture f;
  auto legacy = f.sim().sweep(f.points, exec::ExecPolicy::serial());
  std::vector<PointResult> results;
  exec::RunStatus status =
      f.sim().sweep(f.points, results, exec::ExecPolicy::serial());
  EXPECT_EQ(status.outcome, exec::RunOutcome::kCompleted);
  EXPECT_EQ(status.items_completed, f.points.size());
  EXPECT_EQ(results, legacy);
}

}  // namespace
}  // namespace tinysdr::phy
