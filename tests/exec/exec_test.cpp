#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "exec/cancel.hpp"
#include "exec/parallel_for.hpp"
#include "exec/seed.hpp"
#include "exec/task_group.hpp"
#include "exec/worker_pool.hpp"

namespace tinysdr::exec {
namespace {

// ------------------------------------------------------------ seed streams

TEST(SeedStreams, SplitMix64MatchesReferenceVector) {
  // Published test vector for the SplitMix64 finalizer (seed 0 sequence).
  EXPECT_EQ(splitmix64(0), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(1), 0x910A2DEC89025CC1ULL);
}

TEST(SeedStreams, StreamSeedsArePinned) {
  // Frozen derivation: these exact values are part of the reproducibility
  // contract — campaigns recorded with one build must replay on another.
  const std::uint64_t base = 0x0123456789ABCDEFULL;
  EXPECT_EQ(stream_seed(base, 0), 0x157A3807A48FAA9DULL);
  EXPECT_EQ(stream_seed(base, 1), 0xD573529B34A1D093ULL);
  EXPECT_EQ(stream_seed(base, 2), 0x2F90B72E996DCCBEULL);
  EXPECT_EQ(stream_seed(base, 3), 0xA2D419334C4667ECULL);
}

TEST(SeedStreams, StreamSeedIsPureAndOrderFree) {
  const std::uint64_t base = 42;
  // Derive out of order, repeatedly: same answers.
  const std::uint64_t s7 = stream_seed(base, 7);
  const std::uint64_t s0 = stream_seed(base, 0);
  EXPECT_EQ(stream_seed(base, 7), s7);
  EXPECT_EQ(stream_seed(base, 0), s0);
  EXPECT_NE(s0, s7);
}

TEST(SeedStreams, NeighbouringStreamsDecorrelate) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(stream_seed(99, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(SeedStreams, DrawBaseSeedConsumesTwoDraws) {
  Rng a{123, 456};
  Rng b{123, 456};
  const std::uint64_t hi = b.next_u32();
  const std::uint64_t lo = b.next_u32();
  EXPECT_EQ(draw_base_seed(a), (hi << 32) | lo);
}

TEST(SeedStreams, StreamRngsAreIndependentOfEachOther) {
  Rng r0 = stream_rng(7, 0);
  Rng r1 = stream_rng(7, 1);
  EXPECT_NE(r0.next_u32(), r1.next_u32());
  // Re-deriving stream 0 replays it exactly.
  Rng r0b = stream_rng(7, 0);
  Rng r0c = stream_rng(7, 0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(r0b.next_u32(), r0c.next_u32());
}

// ------------------------------------------------------------ parallel_for

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    auto status = parallel_for(n, ExecPolicy::with_threads(threads),
                               [&](std::size_t i, std::size_t) {
                                 hits[i].fetch_add(1);
                               });
    EXPECT_TRUE(status.complete());
    EXPECT_EQ(status.items_completed, n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ParallelFor, ZeroItemsCompletesImmediately) {
  bool ran = false;
  auto status = parallel_for(0, ExecPolicy::with_threads(8),
                             [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_TRUE(status.complete());
  EXPECT_EQ(status.items_completed, 0u);
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SingleItemRunsInline) {
  std::size_t participant = 99;
  auto status = parallel_for(1, ExecPolicy::with_threads(8),
                             [&](std::size_t i, std::size_t p) {
                               EXPECT_EQ(i, 0u);
                               participant = p;
                             });
  EXPECT_TRUE(status.complete());
  EXPECT_EQ(status.items_completed, 1u);
  EXPECT_EQ(participant, 0u);  // the caller itself
}

TEST(ParallelFor, MoreThreadsThanItems) {
  const std::size_t n = 3;
  std::vector<std::atomic<int>> hits(n);
  auto status = parallel_for(n, ExecPolicy::with_threads(16),
                             [&](std::size_t i, std::size_t) {
                               hits[i].fetch_add(1);
                             });
  EXPECT_TRUE(status.complete());
  EXPECT_EQ(status.items_completed, n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ResultIndependentOfGrain) {
  const std::size_t n = 257;  // deliberately not a multiple of anything
  std::vector<std::uint64_t> expected(n);
  for (std::size_t i = 0; i < n; ++i) expected[i] = stream_seed(5, i);

  for (std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    std::vector<std::uint64_t> out(n, 0);
    ExecPolicy p = ExecPolicy::with_threads(4);
    p.grain = grain;
    auto status = parallel_for(n, p, [&](std::size_t i, std::size_t) {
      out[i] = stream_seed(5, i);
    });
    EXPECT_TRUE(status.complete());
    EXPECT_EQ(out, expected) << "grain=" << grain;
  }
}

TEST(ParallelFor, ParticipantIdsStayInRange) {
  const std::size_t threads = 4;
  std::mutex mu;
  std::set<std::size_t> seen;
  auto status = parallel_for(256, ExecPolicy::with_threads(threads),
                             [&](std::size_t, std::size_t p) {
                               std::lock_guard<std::mutex> lock(mu);
                               seen.insert(p);
                             });
  EXPECT_TRUE(status.complete());
  EXPECT_FALSE(seen.empty());
  EXPECT_LT(*seen.rbegin(), threads);
  // The caller (participant 0) usually joins in, but on a loaded machine
  // the workers may drain the whole index space first — participation is
  // not part of the contract, so only the id range is asserted.
}

TEST(ParallelFor, NestedRegionsDegradeToInlineSerial) {
  std::atomic<int> total{0};
  auto status = parallel_for(
      4, ExecPolicy::with_threads(4), [&](std::size_t, std::size_t) {
        // A nested region must not deadlock or respawn the pool; it runs
        // inline on the worker that entered it.
        auto inner = parallel_for(8, ExecPolicy::with_threads(4),
                                  [&](std::size_t, std::size_t p) {
                                    EXPECT_EQ(p, 0u);
                                    total.fetch_add(1);
                                  });
        EXPECT_TRUE(inner.complete());
      });
  EXPECT_TRUE(status.complete());
  EXPECT_EQ(total.load(), 32);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      {
        (void)parallel_for(100, ExecPolicy::with_threads(4),
                           [&](std::size_t i, std::size_t) {
                             if (i == 57) throw std::runtime_error("boom");
                           });
      },
      std::runtime_error);
}

TEST(ParallelFor, PreCancelledTokenRunsNothing) {
  CancellationSource source;
  source.cancel();
  ExecPolicy p = ExecPolicy::with_threads(4);
  p.cancel = source.token();
  std::atomic<int> ran{0};
  auto status = parallel_for(64, p, [&](std::size_t, std::size_t) {
    ran.fetch_add(1);
  });
  EXPECT_EQ(status.outcome, RunOutcome::kCancelled);
  EXPECT_FALSE(status.complete());
  EXPECT_EQ(status.items_completed, 0u);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelFor, MidRunCancellationStopsNewItems) {
  CancellationSource source;
  ExecPolicy p = ExecPolicy::serial();  // deterministic item order
  p.cancel = source.token();
  p.grain = 1;
  std::size_t ran = 0;
  auto status = parallel_for(100, p, [&](std::size_t, std::size_t) {
    ++ran;
    if (ran == 10) source.cancel();
  });
  EXPECT_EQ(status.outcome, RunOutcome::kCancelled);
  // Cancellation is cooperative: the in-flight item finished, nothing
  // after it started.
  EXPECT_EQ(ran, 10u);
  EXPECT_EQ(status.items_completed, 10u);
}

TEST(ParallelFor, ExpiredDeadlineStopsTheRegion) {
  ExecPolicy p = ExecPolicy::serial();
  p.deadline = Seconds{0.0};  // already expired when the region starts
  p.grain = 1;
  std::size_t ran = 0;
  auto status =
      parallel_for(100, p, [&](std::size_t, std::size_t) { ++ran; });
  EXPECT_EQ(status.outcome, RunOutcome::kDeadlineExceeded);
  EXPECT_FALSE(status.complete());
  EXPECT_EQ(ran, status.items_completed);
  EXPECT_LT(status.items_completed, 100u);
}

TEST(ParallelFor, GenerousDeadlineCompletes) {
  ExecPolicy p = ExecPolicy::with_threads(2);
  p.deadline = Seconds{3600.0};
  auto status = parallel_for(64, p, [](std::size_t, std::size_t) {});
  EXPECT_TRUE(status.complete());
  EXPECT_EQ(status.items_completed, 64u);
}

TEST(ParallelFor, RejectsAbsurdIndexSpace)
{
  EXPECT_THROW((void)parallel_for(std::size_t{1} << 33, ExecPolicy::serial(),
                                  [](std::size_t, std::size_t) {}),
               std::invalid_argument);
}

// ------------------------------------------------------------- TaskGroup

TEST(TaskGroup, RunsAllTasksAndClears) {
  TaskGroup group;
  std::vector<std::atomic<int>> hits(10);
  for (std::size_t i = 0; i < hits.size(); ++i)
    group.add([&hits, i] { hits[i].fetch_add(1); });
  EXPECT_EQ(group.size(), 10u);

  auto status = group.run(ExecPolicy::with_threads(4));
  EXPECT_TRUE(status.complete());
  EXPECT_EQ(status.items_completed, 10u);
  EXPECT_TRUE(group.empty());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskGroup, EmptyGroupCompletes) {
  TaskGroup group;
  auto status = group.run();
  EXPECT_TRUE(status.complete());
  EXPECT_EQ(status.items_completed, 0u);
}

// ------------------------------------------------------------ WorkerPool

TEST(WorkerPool, SerialPolicySpawnsNoWorkers) {
  WorkerPool pool;
  std::size_t sum = 0;
  auto status = pool.run(100, ExecPolicy::serial(),
                         [&](std::size_t i, std::size_t) { sum += i; });
  EXPECT_TRUE(status.complete());
  EXPECT_EQ(sum, 4950u);
  EXPECT_EQ(pool.spawned_workers(), 0u);
}

TEST(WorkerPool, ReusedAcrossRegions) {
  WorkerPool pool;
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    auto status = pool.run(1000, ExecPolicy::with_threads(4),
                           [&](std::size_t i, std::size_t) {
                             sum.fetch_add(i, std::memory_order_relaxed);
                           });
    EXPECT_TRUE(status.complete());
    EXPECT_EQ(sum.load(), 499500u);
  }
  // Workers persist between regions; the pool never shrinks mid-life.
  EXPECT_LE(pool.spawned_workers(), 3u);
}

TEST(WorkerPool, HonoursThreadCountsAboveHardwareConcurrency) {
  // The pool provisions requested threads even on small machines (tests
  // pin 8-way runs on single-core CI containers).
  WorkerPool pool;
  std::mutex mu;
  std::set<std::size_t> participants;
  auto status = pool.run(512, ExecPolicy::with_threads(8),
                         [&](std::size_t, std::size_t p) {
                           std::lock_guard<std::mutex> lock(mu);
                           participants.insert(p);
                         });
  EXPECT_TRUE(status.complete());
  EXPECT_LE(participants.size(), 8u);
  EXPECT_LT(*participants.rbegin(), 8u);
}

}  // namespace
}  // namespace tinysdr::exec
