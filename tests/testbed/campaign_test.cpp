#include "testbed/campaign.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tinysdr::testbed {
namespace {

fpga::FirmwareImage small_image(std::size_t kb, const std::string& name) {
  // Small synthetic image to keep the test fast; structure mixed.
  Rng rng{99};
  auto img = fpga::generate_mcu_program(name, kb * 1024, rng);
  return img;
}

TEST(Campaign, UpdatesEveryNode) {
  Rng rng{1};
  auto deployment = Deployment::campus(rng);
  auto image = small_image(30, "test_fw");
  Rng campaign_rng{2};
  auto result = run_campaign(deployment, image, ota::UpdateTarget::kMcu,
                             campaign_rng);
  EXPECT_EQ(result.per_node.size(), 20u);
  // The deployment is engineered to be reachable: all nodes succeed.
  EXPECT_EQ(result.successes(), 20u);
}

TEST(Campaign, FarNodesTakeLonger) {
  Rng rng{3};
  auto deployment = Deployment::campus(rng);
  auto image = small_image(30, "test_fw");
  Rng campaign_rng{4};
  auto result = run_campaign(deployment, image, ota::UpdateTarget::kMcu,
                             campaign_rng);

  // Compare mean time of the 5 nearest vs 5 farthest nodes.
  std::vector<std::pair<double, double>> dist_time;
  for (std::size_t i = 0; i < deployment.nodes().size(); ++i) {
    if (!result.per_node[i].success) continue;
    dist_time.emplace_back(deployment.nodes()[i].distance_m,
                           result.per_node[i].total_time.value());
  }
  std::sort(dist_time.begin(), dist_time.end());
  double near = 0.0, far = 0.0;
  for (int i = 0; i < 5; ++i) {
    near += dist_time[static_cast<std::size_t>(i)].second;
    far += dist_time[dist_time.size() - 1 - static_cast<std::size_t>(i)].second;
  }
  EXPECT_GE(far, near);
}

TEST(Campaign, CdfIsMonotone) {
  Rng rng{5};
  auto deployment = Deployment::campus(rng);
  auto image = small_image(20, "fw");
  Rng campaign_rng{6};
  auto result = run_campaign(deployment, image, ota::UpdateTarget::kMcu,
                             campaign_rng);
  auto cdf = result.time_cdf_minutes();
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].probability, cdf[i].probability);
  }
  EXPECT_NEAR(cdf.back().probability, 1.0, 1e-12);
}

TEST(Campaign, MeanStatsPositive) {
  Rng rng{7};
  auto deployment = Deployment::campus(rng);
  auto image = small_image(10, "fw");
  Rng campaign_rng{8};
  auto result = run_campaign(deployment, image, ota::UpdateTarget::kMcu,
                             campaign_rng);
  EXPECT_GT(result.mean_time().value(), 0.0);
  EXPECT_GT(result.mean_energy().value(), 0.0);
}

TEST(FaultCampaign, BurstLossCostsAirtimeButFleetStillUpdates) {
  Rng rng{11};
  auto deployment = Deployment::campus(rng);
  auto image = small_image(10, "fw");

  FaultScenario bursty;
  bursty.name = "burst-loss";
  bursty.plan.burst = channel::GilbertElliottParams{0.05, 0.30, 0.0, 0.9};
  bursty.policy.max_retries = 200;

  Rng campaign_rng{12};
  auto result =
      run_fault_campaign(deployment, image, ota::UpdateTarget::kMcu,
                         {bursty}, campaign_rng);

  EXPECT_EQ(result.baseline.nodes, 20u);
  EXPECT_EQ(result.baseline.success_rate(), 1.0);
  ASSERT_EQ(result.scenarios.size(), 1u);
  const auto& s = result.scenarios[0];
  EXPECT_EQ(s.name, "burst-loss");
  EXPECT_EQ(s.nodes, 20u);
  // The burst regime is survivable with selective-ACK, but not free.
  EXPECT_GE(s.success_rate(), 0.9);
  EXPECT_GT(s.total_retransmissions,
            result.baseline.total_retransmissions);
  EXPECT_GT(s.added_airtime.value(), 0.0);
  EXPECT_GT(s.added_energy.value(), 0.0);
}

TEST(FaultCampaign, BrownoutFleetRebootsAndResumes) {
  Rng rng{13};
  auto deployment = Deployment::campus(rng);
  auto image = small_image(10, "fw");

  FaultScenario brownouts;
  brownouts.name = "mid-transfer-brownout";
  // Well inside the compressed stream (a 10 kB MCU program compresses to
  // roughly 3 kB), so every node's brownout actually fires mid-transfer.
  brownouts.plan.brownout_at_byte = 1024;

  Rng campaign_rng{14};
  auto result =
      run_fault_campaign(deployment, image, ota::UpdateTarget::kMcu,
                         {brownouts}, campaign_rng);

  ASSERT_EQ(result.scenarios.size(), 1u);
  const auto& s = result.scenarios[0];
  // Every node browned out once and resumed from its flash checkpoint.
  EXPECT_EQ(s.total_reboots, 20u);
  EXPECT_GE(s.total_resumes, 20u);
  EXPECT_GE(s.success_rate(), 0.9);
  EXPECT_EQ(result.baseline.total_reboots, 0u);
}

TEST(FaultCampaign, PerNodeRunsReplayFromReportedSeed) {
  Rng rng{15};
  auto deployment = Deployment::campus(rng);
  auto image = small_image(10, "fw");

  FaultScenario scenario;
  scenario.name = "burst";
  scenario.plan.burst = channel::GilbertElliottParams{};

  Rng campaign_rng{16};
  auto result =
      run_fault_campaign(deployment, image, ota::UpdateTarget::kMcu,
                         {scenario}, campaign_rng);
  // Every node's outcome carries a distinct, nonzero replay seed.
  std::set<std::uint64_t> seeds;
  for (const auto& r : result.scenarios[0].per_node) {
    EXPECT_NE(r.transfer.link_seed, 0u);
    seeds.insert(r.transfer.link_seed);
  }
  EXPECT_EQ(seeds.size(), result.scenarios[0].per_node.size());
}

}  // namespace
}  // namespace tinysdr::testbed
