// Flight-recorder integration with the campaign runners: a fleet run
// that hits injected faults must leave a schema-valid post-mortem dump
// behind, a clean run must not, and the merged flight log must be
// byte-identical between serial and parallel execution.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "exec/policy.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "testbed/campaign.hpp"

namespace tinysdr::testbed {
namespace {

fpga::FirmwareImage small_image() {
  Rng rng{99};
  return fpga::generate_mcu_program("flight_fw", 10 * 1024, rng);
}

FaultScenario brownout_scenario() {
  FaultScenario s;
  s.name = "mid-transfer-brownout";
  s.plan.brownout_at_byte = 1024;  // inside the ~3 kB compressed stream
  return s;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(FlightCampaign, InjectedFaultProducesSchemaValidDump) {
  const std::string path =
      testing::TempDir() + "tinysdr_flight_campaign_dump.json";
  std::remove(path.c_str());

  Rng deploy_rng{21};
  auto deployment = Deployment::campus(deploy_rng, Dbm{14.0}, 4);
  auto image = small_image();

  obs::FlightRecorder flight = obs::FlightRecorder::unbounded();
  flight.set_dump_path(path);
  {
    obs::FlightSession session{flight};
    Rng rng{22};
    auto result = run_fault_campaign(deployment, image,
                                     ota::UpdateTarget::kMcu,
                                     {brownout_scenario()}, rng);
    // Every node browned out once, so the recorder holds fault records
    // and the campaign must have dumped on exit.
    ASSERT_EQ(result.scenarios.size(), 1u);
    EXPECT_EQ(result.scenarios[0].total_reboots, 4u);
  }

  std::string text = slurp(path);
  ASSERT_FALSE(text.empty()) << "campaign did not write a flight dump";
  auto doc = obs::JsonValue::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->text, "tinysdr-flight-v1");
  EXPECT_NE(doc->find("reason")->text.find("fault-campaign:flight_fw"),
            std::string::npos);

  const obs::JsonValue* records = doc->find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_FALSE(records->items.empty());
  std::set<double> nodes_seen;
  std::size_t brownouts = 0;
  for (const auto& rec : records->items) {
    nodes_seen.insert(rec.find("node")->number);
    if (rec.find("message")->text == "brownout-reboot") ++brownouts;
  }
  // One brownout per node in the fault pass, attributed to its node id.
  EXPECT_EQ(brownouts, 4u);
  EXPECT_EQ(nodes_seen.size(), 4u);
  std::remove(path.c_str());
}

TEST(FlightCampaign, CleanCampaignLeavesNoDump) {
  const std::string path =
      testing::TempDir() + "tinysdr_flight_campaign_clean.json";
  std::remove(path.c_str());

  Rng deploy_rng{23};
  auto deployment = Deployment::campus(deploy_rng, Dbm{14.0}, 4);
  auto image = small_image();

  obs::FlightRecorder flight = obs::FlightRecorder::unbounded();
  flight.set_dump_path(path);
  {
    obs::FlightSession session{flight};
    Rng rng{24};
    auto result =
        run_campaign(deployment, image, ota::UpdateTarget::kMcu, rng);
    ASSERT_EQ(result.successes(), 4u);
  }
  EXPECT_EQ(flight.count_at_least(obs::FlightLevel::kWarn), 0u);
  std::ifstream in{path};
  EXPECT_FALSE(in.good()) << "clean campaign wrote an unexpected dump";
}

TEST(FlightCampaign, SerialAndParallelFlightLogsAreByteIdentical) {
  Rng deploy_rng{25};
  auto deployment = Deployment::campus(deploy_rng, Dbm{14.0}, 8);
  auto image = small_image();

  auto run_with = [&](const exec::ExecPolicy& policy) {
    obs::FlightRecorder flight = obs::FlightRecorder::unbounded();
    obs::FlightSession session{flight};
    Rng rng{26};
    auto result =
        run_fault_campaign(deployment, image, ota::UpdateTarget::kMcu,
                           {brownout_scenario()}, rng, policy);
    EXPECT_EQ(result.scenarios[0].nodes, 8u);
    return flight.json("identity check");
  };

  std::string serial = run_with(exec::ExecPolicy::serial());
  std::string parallel = run_with(exec::ExecPolicy::with_threads(4));
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace tinysdr::testbed
