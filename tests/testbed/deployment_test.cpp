#include "testbed/deployment.hpp"

#include <gtest/gtest.h>

namespace tinysdr::testbed {
namespace {

TEST(Deployment, TwentyNodesByDefault) {
  Rng rng{1};
  auto d = Deployment::campus(rng);
  EXPECT_EQ(d.nodes().size(), 20u);
}

TEST(Deployment, UniqueIds) {
  Rng rng{2};
  auto d = Deployment::campus(rng);
  std::vector<bool> seen(64, false);
  for (const auto& n : d.nodes()) {
    ASSERT_LT(n.id, 64);
    EXPECT_FALSE(seen[n.id]) << "duplicate id " << n.id;
    seen[n.id] = true;
  }
}

TEST(Deployment, DistancesSpanCampusScale) {
  Rng rng{3};
  auto d = Deployment::campus(rng);
  double min_d = 1e9, max_d = 0.0;
  for (const auto& n : d.nodes()) {
    min_d = std::min(min_d, n.distance_m);
    max_d = std::max(max_d, n.distance_m);
  }
  EXPECT_LT(min_d, 100.0);
  EXPECT_GT(max_d, 500.0);
}

TEST(Deployment, RssiSpreadCoversLinkQualities) {
  Rng rng{4};
  auto d = Deployment::campus(rng);
  // Near nodes strong, far nodes near the SF8/BW500 sensitivity.
  EXPECT_GT(d.strongest_rssi().value(), -90.0);
  EXPECT_LT(d.weakest_rssi().value(), -100.0);
  // But everything must remain reachable (above ~-122 dBm).
  EXPECT_GT(d.weakest_rssi().value(), -125.0);
}

TEST(Deployment, RssiMonotoneWithDistanceModuloShadowing) {
  Rng rng{5};
  auto d = Deployment::campus(rng);
  // Correlation between log-distance and RSSI must be strongly negative.
  double sum_x = 0, sum_y = 0, sum_xy = 0, sum_xx = 0, sum_yy = 0;
  auto n = static_cast<double>(d.nodes().size());
  for (const auto& node : d.nodes()) {
    double x = std::log10(node.distance_m);
    double y = node.rssi.value();
    sum_x += x;
    sum_y += y;
    sum_xy += x * y;
    sum_xx += x * x;
    sum_yy += y * y;
  }
  double corr = (n * sum_xy - sum_x * sum_y) /
                std::sqrt((n * sum_xx - sum_x * sum_x) *
                          (n * sum_yy - sum_y * sum_y));
  EXPECT_LT(corr, -0.8);
}

TEST(Deployment, DifferentSeedsDifferentLayouts) {
  Rng rng1{6}, rng2{7};
  auto a = Deployment::campus(rng1);
  auto b = Deployment::campus(rng2);
  bool any_different = false;
  for (std::size_t i = 0; i < a.nodes().size(); ++i)
    if (std::abs(a.nodes()[i].distance_m - b.nodes()[i].distance_m) > 1e-9)
      any_different = true;
  EXPECT_TRUE(any_different);
}

TEST(EmpiricalCdf, SortedAndNormalized) {
  auto cdf = empirical_cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_NEAR(cdf[0].probability, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].probability, 1.0);
}

TEST(EmpiricalCdf, EmptyInput) {
  EXPECT_TRUE(empirical_cdf({}).empty());
}

}  // namespace
}  // namespace tinysdr::testbed
