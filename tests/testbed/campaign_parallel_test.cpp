// Determinism contract of the parallel campaign runners: for a fixed
// campaign seed, trace JSON, metrics JSON and per-node reports are
// byte-identical regardless of thread count (exec::ExecPolicy::serial()
// vs ::with_threads(8) vs anything in between).
#include "testbed/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exec/cancel.hpp"
#include "exec/seed.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tinysdr::testbed {
namespace {

fpga::FirmwareImage small_image(std::size_t kb, const std::string& name) {
  Rng rng{99};
  return fpga::generate_mcu_program(name, kb * 1024, rng);
}

Deployment sized_deployment(std::uint64_t seed, std::size_t nodes) {
  Rng rng{seed};
  return Deployment::campus(rng, Dbm{14.0}, nodes);
}

FaultScenario bursty_scenario() {
  FaultScenario s;
  s.name = "burst-loss";
  s.plan.burst = channel::GilbertElliottParams{0.05, 0.30, 0.0, 0.9};
  s.policy.max_retries = 200;
  return s;
}

/// Telemetry + results of one instrumented fault-campaign run.
struct CapturedRun {
  std::string trace_json;
  std::string metrics_json;
  FaultCampaignResult result;
};

CapturedRun run_instrumented(const Deployment& deployment,
                             const fpga::FirmwareImage& image,
                             std::uint64_t campaign_seed,
                             const exec::ExecPolicy& policy) {
  CapturedRun run;
  obs::Tracer tracer;
  obs::Registry registry;
  obs::TraceSession trace_session{tracer};
  obs::MetricsSession metrics_session{registry};
  Rng rng{campaign_seed};
  run.result = run_fault_campaign(deployment, image, ota::UpdateTarget::kMcu,
                                  {bursty_scenario()}, rng, policy);
  run.trace_json = tracer.chrome_json();
  run.metrics_json = registry.json();
  return run;
}

TEST(ParallelCampaign, FaultCampaignByteIdenticalAcrossThreadCounts) {
  auto deployment = sized_deployment(21, 32);
  auto image = small_image(10, "fw");

  auto serial =
      run_instrumented(deployment, image, 77, exec::ExecPolicy::serial());
  ASSERT_EQ(serial.result.baseline.nodes, 32u);
  ASSERT_EQ(serial.result.scenarios.size(), 1u);
  ASSERT_TRUE(serial.result.exec_status.complete());

  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    auto parallel = run_instrumented(deployment, image, 77,
                                     exec::ExecPolicy::with_threads(threads));
    EXPECT_EQ(parallel.trace_json, serial.trace_json)
        << "trace diverged at threads=" << threads;
    EXPECT_EQ(parallel.metrics_json, serial.metrics_json)
        << "metrics diverged at threads=" << threads;

    ASSERT_EQ(parallel.result.scenarios.size(), 1u);
    const auto& ps = parallel.result.scenarios[0].per_node;
    const auto& ss = serial.result.scenarios[0].per_node;
    ASSERT_EQ(ps.size(), ss.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
      EXPECT_EQ(ps[i].transfer.link_seed, ss[i].transfer.link_seed);
      EXPECT_EQ(ps[i].success, ss[i].success);
      EXPECT_EQ(ps[i].total_time.value(), ss[i].total_time.value());
      EXPECT_EQ(ps[i].total_energy.value(), ss[i].total_energy.value());
      EXPECT_EQ(ps[i].transfer.retransmissions, ss[i].transfer.retransmissions);
    }
  }
}

TEST(ParallelCampaign, LargeFleetByteIdenticalOnEightThreads) {
  // Acceptance-scale run: 256 nodes, serial vs 8 threads, full fault
  // campaign, byte-compared telemetry.
  auto deployment = sized_deployment(31, 256);
  auto image = small_image(5, "fw");

  auto serial =
      run_instrumented(deployment, image, 91, exec::ExecPolicy::serial());
  auto parallel =
      run_instrumented(deployment, image, 91, exec::ExecPolicy::with_threads(8));

  ASSERT_EQ(serial.result.baseline.nodes, 256u);
  EXPECT_TRUE(parallel.result.exec_status.complete());
  EXPECT_EQ(parallel.trace_json, serial.trace_json);
  EXPECT_EQ(parallel.metrics_json, serial.metrics_json);
}

TEST(ParallelCampaign, PlainCampaignMatchesSerial) {
  auto deployment = sized_deployment(22, 32);
  auto image = small_image(10, "fw");

  auto run_once = [&](const exec::ExecPolicy& policy) {
    obs::Registry registry;
    obs::MetricsSession session{registry};
    Rng rng{5};
    auto result =
        run_campaign(deployment, image, ota::UpdateTarget::kMcu, rng, policy);
    return std::pair{registry.json(), std::move(result)};
  };

  auto [serial_json, serial] = run_once(exec::ExecPolicy::serial());
  auto [parallel_json, parallel] = run_once(exec::ExecPolicy::with_threads(8));

  EXPECT_EQ(parallel_json, serial_json);
  ASSERT_EQ(parallel.per_node.size(), serial.per_node.size());
  for (std::size_t i = 0; i < serial.per_node.size(); ++i) {
    EXPECT_EQ(parallel.per_node[i].transfer.link_seed,
              serial.per_node[i].transfer.link_seed);
    EXPECT_EQ(parallel.per_node[i].total_time.value(),
              serial.per_node[i].total_time.value());
  }
}

TEST(ParallelCampaign, EmptyDeploymentCompletes) {
  auto deployment = sized_deployment(23, 0);
  auto image = small_image(5, "fw");
  Rng rng{1};
  auto result = run_campaign(deployment, image, ota::UpdateTarget::kMcu, rng,
                             exec::ExecPolicy::with_threads(8));
  EXPECT_TRUE(result.exec_status.complete());
  EXPECT_TRUE(result.per_node.empty());
  EXPECT_EQ(result.successes(), 0u);
  EXPECT_EQ(result.mean_time().value(), 0.0);
}

TEST(ParallelCampaign, SingleNodeFleet) {
  auto deployment = sized_deployment(24, 1);
  auto image = small_image(5, "fw");
  Rng rng{2};
  auto result = run_campaign(deployment, image, ota::UpdateTarget::kMcu, rng,
                             exec::ExecPolicy::with_threads(8));
  EXPECT_TRUE(result.exec_status.complete());
  ASSERT_EQ(result.per_node.size(), 1u);
  EXPECT_TRUE(result.per_node[0].success);
}

TEST(ParallelCampaign, MoreThreadsThanNodes) {
  auto deployment = sized_deployment(25, 4);
  auto image = small_image(5, "fw");

  auto run_once = [&](const exec::ExecPolicy& policy) {
    Rng rng{3};
    return run_campaign(deployment, image, ota::UpdateTarget::kMcu, rng,
                        policy);
  };
  auto serial = run_once(exec::ExecPolicy::serial());
  auto wide = run_once(exec::ExecPolicy::with_threads(16));
  EXPECT_TRUE(wide.exec_status.complete());
  ASSERT_EQ(wide.per_node.size(), serial.per_node.size());
  for (std::size_t i = 0; i < serial.per_node.size(); ++i)
    EXPECT_EQ(wide.per_node[i].transfer.link_seed,
              serial.per_node[i].transfer.link_seed);
}

TEST(ParallelCampaign, CancelledCampaignReportsPartialFleet) {
  auto deployment = sized_deployment(26, 8);
  auto image = small_image(5, "fw");

  exec::CancellationSource source;
  source.cancel();  // fires before any node starts
  exec::ExecPolicy policy = exec::ExecPolicy::with_threads(4);
  policy.cancel = source.token();

  Rng rng{4};
  auto result =
      run_campaign(deployment, image, ota::UpdateTarget::kMcu, rng, policy);
  EXPECT_EQ(result.exec_status.outcome, exec::RunOutcome::kCancelled);
  EXPECT_FALSE(result.exec_status.complete());
  // No node ran, so no report was fabricated.
  EXPECT_TRUE(result.per_node.empty());
}

TEST(ParallelCampaign, CancelledFaultCampaignSkipsRemainingScenarios) {
  auto deployment = sized_deployment(27, 8);
  auto image = small_image(5, "fw");

  exec::CancellationSource source;
  source.cancel();
  exec::ExecPolicy policy = exec::ExecPolicy::serial();
  policy.cancel = source.token();

  Rng rng{5};
  auto result =
      run_fault_campaign(deployment, image, ota::UpdateTarget::kMcu,
                         {bursty_scenario()}, rng, policy);
  EXPECT_EQ(result.exec_status.outcome, exec::RunOutcome::kCancelled);
  EXPECT_EQ(result.baseline.nodes, 0u);
  // The baseline pass was cancelled, so no scenario pass even starts.
  EXPECT_TRUE(result.scenarios.empty());
}

// ------------------------------------------------------- seed stability

TEST(ParallelCampaign, NodeLinkSeedDerivationIsPinned) {
  // Frozen values: this derivation is the replay contract for recorded
  // campaigns. If these change, old reports stop replaying — bump a
  // schema, don't silently rebase.
  const std::uint64_t base = 0x0123456789ABCDEFULL;
  EXPECT_EQ(node_link_seed(base, 0), 0x3807A48FAA9D0000ULL);
  EXPECT_EQ(node_link_seed(base, 1), 0x529B34A1D0930001ULL);
  EXPECT_EQ(node_link_seed(base, 7), 0x545F4F9EA6510007ULL);
  EXPECT_EQ(node_link_seed(base, 255), 0x194EEE358FF800FFULL);
  // The node id always sits in the low 16 bits (single-node replay).
  for (std::uint16_t id : {std::uint16_t{0}, std::uint16_t{1},
                           std::uint16_t{4095}})
    EXPECT_EQ(node_link_seed(base, id) & 0xFFFFULL, id);
}

TEST(ParallelCampaign, ReportedSeedsMatchUpfrontDerivation) {
  auto deployment = sized_deployment(28, 8);
  auto image = small_image(5, "fw");

  // The campaign's only sequential draw is the base seed; everything else
  // must be derivable from it without running the campaign.
  Rng probe{6};
  const std::uint64_t pass_base = exec::draw_base_seed(probe);

  Rng rng{6};
  auto result = run_campaign(deployment, image, ota::UpdateTarget::kMcu, rng,
                             exec::ExecPolicy::with_threads(4));
  ASSERT_EQ(result.per_node.size(), deployment.nodes().size());
  for (std::size_t i = 0; i < result.per_node.size(); ++i)
    EXPECT_EQ(result.per_node[i].transfer.link_seed,
              node_link_seed(pass_base, deployment.nodes()[i].id));
}

TEST(ParallelCampaign, FaultCampaignPassesUseDistinctSeedStreams) {
  auto deployment = sized_deployment(29, 8);
  auto image = small_image(5, "fw");

  Rng probe{8};
  const std::uint64_t campaign_base = exec::draw_base_seed(probe);

  Rng rng{8};
  auto result =
      run_fault_campaign(deployment, image, ota::UpdateTarget::kMcu,
                         {bursty_scenario()}, rng, exec::ExecPolicy::serial());
  ASSERT_EQ(result.scenarios.size(), 1u);

  // Baseline is stream 0 of the campaign base, scenario k is stream k+1;
  // the same node gets different (but replayable) seeds in each pass.
  for (std::size_t i = 0; i < deployment.nodes().size(); ++i) {
    const std::uint16_t id = deployment.nodes()[i].id;
    const std::uint64_t base_seed =
        node_link_seed(exec::stream_seed(campaign_base, 0), id);
    const std::uint64_t scen_seed =
        node_link_seed(exec::stream_seed(campaign_base, 1), id);
    EXPECT_EQ(result.baseline.per_node[i].transfer.link_seed, base_seed);
    EXPECT_EQ(result.scenarios[0].per_node[i].transfer.link_seed, scen_seed);
    EXPECT_NE(base_seed, scen_seed);
  }
}

}  // namespace
}  // namespace tinysdr::testbed
