#include "testbed/multihop.hpp"

#include <gtest/gtest.h>

namespace tinysdr::testbed {
namespace {

MeshNetwork make_mesh(double exponent = 3.2) {
  // Aggressive path loss so long links genuinely fail.
  channel::PathLossModel model{Hertz::from_megahertz(915.0), exponent};
  return MeshNetwork{model, Dbm{14.0}};
}

TEST(MeshNetwork, LinkRssiSymmetric) {
  auto mesh = make_mesh();
  EXPECT_NEAR(mesh.link_rssi(0.0, 500.0).value(),
              mesh.link_rssi(500.0, 0.0).value(), 1e-9);
}

TEST(MeshNetwork, ShortLinksConnected) {
  auto mesh = make_mesh();
  EXPECT_TRUE(mesh.connected(0.0, 100.0));
}

TEST(MeshNetwork, VeryLongLinksNot) {
  auto mesh = make_mesh();
  EXPECT_FALSE(mesh.connected(0.0, 50000.0));
}

TEST(MeshNetwork, DirectRouteWhenInRange) {
  auto mesh = make_mesh();
  mesh.add_node({1, 300.0});
  auto route = mesh.route_to(1, 20);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->hop_count(), 1u);
  EXPECT_EQ(route->hops[0].from, 0);
  EXPECT_EQ(route->hops[0].to, 1);
}

TEST(MeshNetwork, RelaysThroughIntermediate) {
  auto mesh = make_mesh();
  // Find a distance that is unreachable directly but reachable via a
  // midpoint relay.
  double far = 50.0;
  while (mesh.connected(0.0, far)) far *= 1.25;
  far *= 1.3;  // clearly out of direct range
  ASSERT_FALSE(mesh.connected(0.0, far));
  ASSERT_TRUE(mesh.connected(0.0, far / 2.0));

  mesh.add_node({1, far / 2.0});  // relay
  mesh.add_node({2, far});        // destination
  auto route = mesh.route_to(2, 20);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->hop_count(), 2u);
  EXPECT_EQ(route->hops[0].to, 1);
  EXPECT_EQ(route->hops[1].to, 2);
}

TEST(MeshNetwork, UnreachableWithoutRelays) {
  auto mesh = make_mesh();
  double far = 50.0;
  while (mesh.connected(0.0, far)) far *= 1.25;
  mesh.add_node({2, far * 2.0});
  EXPECT_FALSE(mesh.route_to(2, 20).has_value());
}

TEST(MeshNetwork, UnknownDestination) {
  auto mesh = make_mesh();
  EXPECT_FALSE(mesh.route_to(99, 20).has_value());
}

TEST(MeshNetwork, DirectPreferredWhenFastEnough) {
  // When the direct link already supports the fastest rate, relaying can
  // only add airtime, so the route is a single hop.
  auto mesh = make_mesh();
  mesh.add_node({1, 100.0});
  mesh.add_node({2, 200.0});
  mesh.add_node({3, 290.0});
  auto direct_rate = lora::select_rate(mesh.link_rssi(0.0, 290.0), 3.0);
  ASSERT_TRUE(direct_rate.has_value());
  if (direct_rate->sf == 7) {
    auto route = mesh.route_to(3, 20);
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->hop_count(), 1u);
  }
}

TEST(CompareDirectVsRelayed, RelayingCanBeatSlowDirectLink) {
  // §7's question: a marginal direct link forces SF12; two short hops run
  // at SF7 each and can still win on airtime.
  auto mesh = make_mesh();
  // Place the destination where direct needs a slow SF.
  double d = 50.0;
  while (true) {
    auto direct = lora::select_rate(mesh.link_rssi(0.0, d));
    if (!direct || direct->sf >= 12) break;
    d *= 1.15;
  }
  auto direct = lora::select_rate(mesh.link_rssi(0.0, d));
  if (!direct) d /= 1.15;  // step back inside coverage

  mesh.add_node({1, d / 2.0});
  mesh.add_node({2, d});
  auto outcome = compare_direct_vs_relayed(mesh, 2, 20);
  ASSERT_TRUE(outcome.direct_possible);
  ASSERT_TRUE(outcome.relayed.has_value());
  EXPECT_EQ(outcome.relayed->hop_count(), 2u);
  // Two fast hops beat one SF12 crawl.
  EXPECT_LT(outcome.relayed->total_airtime().value(),
            outcome.direct_airtime.value());
}

TEST(Route, AirtimeSumsHops) {
  auto mesh = make_mesh();
  mesh.add_node({1, 150.0});
  mesh.add_node({2, 300.0});
  auto route = mesh.route_to(2, 20);
  ASSERT_TRUE(route.has_value());
  Seconds sum{0.0};
  for (const auto& h : route->hops) sum += h.airtime;
  EXPECT_NEAR(route->total_airtime().value(), sum.value(), 1e-12);
}

}  // namespace
}  // namespace tinysdr::testbed
