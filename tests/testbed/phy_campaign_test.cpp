// Multi-PHY testbed campaign: protocol assignment, per-node determinism
// across thread counts, and the per-protocol aggregation.
#include "testbed/phy_campaign.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.hpp"

namespace tinysdr::testbed {
namespace {

Deployment small_deployment(std::uint64_t seed, std::size_t nodes) {
  Rng rng{seed};
  return Deployment::campus(rng, Dbm{14.0}, nodes);
}

PhyCampaignConfig quick_config() {
  PhyCampaignConfig config;
  config.trials_per_node = 3;
  config.payload_bytes = 8;
  config.base_seed = 5;
  return config;
}

TEST(PhyCampaign, AssignsProtocolsRoundRobin) {
  auto deployment = small_deployment(1, 10);
  const auto& registry = phy::Registry::builtin();
  auto result = run_phy_campaign(deployment, registry, quick_config(),
                                 exec::ExecPolicy::serial());
  ASSERT_EQ(result.per_node.size(), 10u);
  for (std::size_t i = 0; i < result.per_node.size(); ++i) {
    EXPECT_EQ(result.per_node[i].protocol,
              registry.entries()[i % registry.size()].id);
    EXPECT_EQ(result.per_node[i].link.frames, 3u);
  }
  auto summary = result.by_protocol(registry);
  ASSERT_EQ(summary.size(), registry.size());
  for (const auto& s : summary) EXPECT_EQ(s.nodes, 2u);
}

TEST(PhyCampaign, ByteIdenticalAcrossThreadCounts) {
  auto deployment = small_deployment(21, 10);
  const auto& registry = phy::Registry::builtin();
  auto config = quick_config();

  auto run = [&](const exec::ExecPolicy& policy) {
    obs::Registry metrics;
    obs::MetricsSession session{metrics};
    auto result = run_phy_campaign(deployment, registry, config, policy);
    return std::pair{result.per_node,
                     metrics.counter("phy.lora.trials").value()};
  };
  auto [serial, serial_trials] = run(exec::ExecPolicy::serial());
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    auto [parallel, parallel_trials] =
        run(exec::ExecPolicy::with_threads(threads));
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].node_id, serial[i].node_id);
      EXPECT_EQ(parallel[i].protocol, serial[i].protocol);
      EXPECT_EQ(parallel[i].link, serial[i].link)
          << "node " << serial[i].node_id << " diverged at threads="
          << threads;
    }
    EXPECT_EQ(parallel_trials, serial_trials);
  }
}

TEST(PhyCampaign, StrongLinksDeliver) {
  // Every campus deployment has courtyard nodes; the delivery CDF's top
  // end must reach 1.0 and the narrowband PHYs must not be the failures.
  auto deployment = small_deployment(7, 20);
  auto result = run_phy_campaign(deployment, phy::Registry::builtin(),
                                 quick_config(), exec::ExecPolicy::serial());
  auto cdf = result.delivery_cdf();
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().value, 1.0);
}

TEST(PhyCampaign, EmptyRegistryThrows) {
  auto deployment = small_deployment(1, 2);
  phy::Registry empty;
  EXPECT_THROW(run_phy_campaign(deployment, empty, quick_config(),
                                exec::ExecPolicy::serial()),
               std::invalid_argument);
}

}  // namespace
}  // namespace tinysdr::testbed
