// tinysdr_fuzz: deterministic fuzz driver over the shared harness table.
//
//   tinysdr_fuzz --list
//   tinysdr_fuzz [--harness NAME] [--iterations N] [--seed S]
//                [--corpus DIR] [--artifacts DIR]
//   tinysdr_fuzz --harness NAME --replay-index I [--seed S]
//   tinysdr_fuzz --harness NAME --replay FILE
//
// Default: every harness, 10000 generated inputs each on top of its seed
// corpus (CI's fuzz-smoke job). Exit code 1 on the first failure, after
// shrinking and writing the counterexample artifact.
//
// Compiled with TINYSDR_LIBFUZZER the same table becomes a libFuzzer
// target: LLVMFuzzerTestOneInput drives the harness named by the
// TINYSDR_FUZZ_HARNESS environment variable.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <vector>

#include "harnesses/harnesses.hpp"
#include "testkit/harness.hpp"

#ifndef TINYSDR_CORPUS_DIR
#define TINYSDR_CORPUS_DIR ""
#endif

#ifdef TINYSDR_LIBFUZZER

namespace {
const tinysdr::testkit::Harness* g_harness = nullptr;
}  // namespace

extern "C" int LLVMFuzzerInitialize(int* /*argc*/, char*** /*argv*/) {
  tinysdr::fuzz::register_builtin_harnesses();
  const char* name = std::getenv("TINYSDR_FUZZ_HARNESS");
  if (name == nullptr || *name == '\0') name = "lvds.deframer_bits";
  g_harness = tinysdr::testkit::HarnessRegistry::instance().find(name);
  if (g_harness == nullptr) {
    std::fprintf(stderr, "tinysdr_fuzz: unknown harness '%s'\n", name);
    std::fprintf(stderr, "set TINYSDR_FUZZ_HARNESS to one of:\n");
    for (const auto& h : tinysdr::testkit::HarnessRegistry::instance().all())
      std::fprintf(stderr, "  %s\n", h.name.c_str());
    std::abort();
  }
  return 0;
}

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // A property violation throws; libFuzzer treats the uncaught exception
  // as a crash and keeps the input.
  g_harness->run(std::span<const std::uint8_t>{data, size});
  return 0;
}

#else  // standalone CLI driver

namespace {

using tinysdr::testkit::FuzzReport;
using tinysdr::testkit::FuzzRunConfig;
using tinysdr::testkit::Harness;
using tinysdr::testkit::HarnessRegistry;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--list] [--harness NAME] [--iterations N] [--seed S]\n"
      "          [--corpus DIR] [--artifacts DIR]\n"
      "          [--replay FILE | --replay-index I]\n",
      argv0);
  return 2;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

int run_one_input(const Harness& h, const std::vector<std::uint8_t>& input,
                  const std::string& what) {
  try {
    h.run(input);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s FAILED: %s\n", h.name.c_str(), what.c_str(),
                 e.what());
    return 1;
  }
  std::printf("%s: %s ok (%zu bytes)\n", h.name.c_str(), what.c_str(),
              input.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tinysdr::fuzz::register_builtin_harnesses();
  auto& registry = HarnessRegistry::instance();

  std::string harness_name;
  std::string corpus_root = TINYSDR_CORPUS_DIR;
  std::string artifacts = "fuzz-artifacts";
  std::string replay_file;
  std::uint64_t seed = 0xF0220;
  std::uint64_t replay_index = 0;
  bool has_replay_index = false;
  std::size_t iterations = 10000;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      for (const auto& h : registry.all()) std::printf("%s\n", h.name.c_str());
      return 0;
    }
    if (arg == "--harness") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      harness_name = v;
    } else if (arg == "--iterations") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      iterations = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--corpus") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      corpus_root = v;
    } else if (arg == "--artifacts") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      artifacts = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      replay_file = v;
    } else if (arg == "--replay-index") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      replay_index = std::strtoull(v, nullptr, 10);
      has_replay_index = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<const Harness*> selected;
  if (harness_name.empty()) {
    for (const auto& h : registry.all()) selected.push_back(&h);
  } else {
    const Harness* h = registry.find(harness_name);
    if (h == nullptr) {
      std::fprintf(stderr, "unknown harness '%s' (try --list)\n",
                   harness_name.c_str());
      return 2;
    }
    selected.push_back(h);
  }

  if (!replay_file.empty() || has_replay_index) {
    if (selected.size() != 1) {
      std::fprintf(stderr, "--replay/--replay-index need --harness NAME\n");
      return 2;
    }
    const Harness& h = *selected.front();
    if (!replay_file.empty())
      return run_one_input(h, read_file(replay_file),
                           "replay of " + replay_file);
    auto corpus =
        tinysdr::testkit::load_corpus(corpus_root + "/" + h.name);
    auto input = tinysdr::testkit::fuzz_input(h, seed, replay_index, corpus);
    return run_one_input(h, input,
                         "replay of seed " + std::to_string(seed) +
                             " index " + std::to_string(replay_index));
  }

  int rc = 0;
  for (const Harness* h : selected) {
    FuzzRunConfig cfg;
    cfg.seed = seed;
    cfg.iterations = iterations;
    cfg.corpus_dir = corpus_root + "/" + h->name;
    cfg.artifact_dir = artifacts;
    FuzzReport report = tinysdr::testkit::run_fuzz(*h, cfg);
    std::printf("%s\n", report.message().c_str());
    if (!report.ok()) {
      rc = 1;
      break;
    }
  }
  return rc;
}

#endif  // TINYSDR_LIBFUZZER
