// The builtin fuzz-harness set.
//
// Each translation unit contributes one register_*() function that adds
// its harnesses to testkit::HarnessRegistry::instance(). Registration is
// explicit — NOT a static initializer — because the harness objects live
// in a static library and the linker is free to drop unreferenced
// initializers; an explicit call chain cannot silently lose a harness.
// Every driver (gtest smoke, tinysdr_fuzz CLI, libFuzzer entry) calls
// register_builtin_harnesses() once at startup and then runs the same
// table.
#pragma once

namespace tinysdr::fuzz {

void register_lvds_harnesses();
void register_ota_harnesses();
void register_phy_harnesses();
void register_obs_harnesses();
void register_adversary_harnesses();
void register_impair_harnesses();

/// Registers every builtin harness exactly once (idempotent).
void register_builtin_harnesses();

}  // namespace tinysdr::fuzz
