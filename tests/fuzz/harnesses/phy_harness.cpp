// Per-PHY harnesses, one per Registry::builtin() entry: a fuzzed payload
// must round-trip bit-exactly through the clean TX->RX chain, and a
// noisy pass through AwgnChannel must never crash or report impossible
// error counts — for all five reproduced PHYs through the same table the
// benches use.
#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "channel/noise.hpp"
#include "common/rng.hpp"
#include "dsp/types.hpp"
#include "harnesses.hpp"
#include "phy/registry.hpp"
#include "testkit/bytes.hpp"
#include "testkit/harness.hpp"

namespace tinysdr::fuzz {
namespace {

void require(bool cond, const std::string& what) {
  if (!cond) throw std::runtime_error(what);
}

// Shared body: the entry outlives the registry (builtin() is a static).
void phy_roundtrip(const phy::RegisteredPhy& entry,
                   std::span<const std::uint8_t> data) {
  testkit::ByteSource src{data};

  const std::size_t cap = std::min<std::size_t>(12, entry.max_payload);
  const std::size_t len = 1 + src.uint_below(static_cast<std::uint32_t>(cap));
  std::vector<std::uint8_t> payload = src.take(len);
  payload.resize(len, 0xA5);

  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  dsp::Samples wave(entry.pad_samples, dsp::Complex{0.0f, 0.0f});
  tx->modulate(payload, wave);
  wave.insert(wave.end(), entry.pad_samples, dsp::Complex{0.0f, 0.0f});

  if (!src.boolean()) {
    // Clean loopback: exact recovery, no exceptions tolerated.
    phy::FrameResult r = rx->demodulate(wave, payload);
    require(r.frame_ok, entry.name + std::string(": clean round trip failed"));
    require(r.bit_errors == 0,
            entry.name + std::string(": clean round trip has bit errors"));
  } else {
    // Noisy pass: any RSSI, including below sensitivity. The receiver
    // may fail the frame but must stay total and self-consistent.
    const double rssi = src.real_in(-140.0, -70.0);
    channel::AwgnChannel channel{rx->sample_rate(),
                                 entry.system_noise_figure_db,
                                 Rng{src.u64(), 3}};
    auto noisy = channel.apply(wave, Dbm{rssi});
    phy::FrameResult r = rx->demodulate(noisy, payload);
    require(r.bit_errors <= r.bits,
            entry.name + std::string(": more bit errors than bits"));
    require(r.symbol_errors <= r.symbols,
            entry.name + std::string(": more symbol errors than symbols"));
    if (r.frame_ok)
      require(r.bit_errors == 0,
              entry.name + std::string(": frame_ok with residual bit errors"));
  }
}

}  // namespace

void register_phy_harnesses() {
  auto& reg = testkit::HarnessRegistry::instance();
  for (const auto& entry : phy::Registry::builtin().entries()) {
    reg.add({"phy." + entry.name + ".roundtrip",
             [&entry](std::span<const std::uint8_t> data) {
               phy_roundtrip(entry, data);
             },
             /*max_len=*/64});
  }
}

}  // namespace tinysdr::fuzz
