// OTA harnesses: the node-side chunk store against a reference in-memory
// model, and the full AP->node transfer engine under adversarial fault
// schedules (drops, dups, reorders, corruption, brownouts, flash faults).
#include <cstdint>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "harnesses.hpp"
#include "ota/flash.hpp"
#include "ota/protocol.hpp"
#include "sim/faults.hpp"
#include "testkit/bytes.hpp"
#include "testkit/harness.hpp"

namespace tinysdr::fuzz {
namespace {

void require(bool cond, const std::string& what) {
  if (!cond) throw std::runtime_error(what);
}

// Differential oracle: NodeAgent::receive_chunk vs a trivial in-memory
// model of "a set of stored chunks". The adversarial sequence includes
// out-of-range seqs, truncated and oversized payloads, CRC-corrupt
// packets, duplicates, checkpoints and brownout/reboot cycles; after
// every op the agent must agree with the model on status, bitmap,
// counters and finally the staged flash contents.
void node_agent_model(std::span<const std::uint8_t> data) {
  using RxStatus = ota::NodeAgent::RxStatus;
  testkit::ByteSource src{data};

  ota::FlashModel flash;
  ota::NodeAgent node{1, flash};
  const std::size_t stream_bytes = 1 + src.uint_below(481);
  const std::size_t total =
      (stream_bytes + ota::kDataPayload - 1) / ota::kDataPayload;
  node.begin_session(0xC0FFEE01u, stream_bytes);

  // The stream image is fixed up front: like the real AP, every valid
  // delivery of chunk `seq` carries the same bytes. (Re-programming a
  // chunk with different bytes after a bitmap rollback would trip the
  // flash write verify — NOR programming only clears bits.)
  std::vector<std::uint8_t> image(stream_bytes);
  for (std::size_t i = 0; i < image.size(); ++i)
    image[i] = static_cast<std::uint8_t>(src.u8() ^ (i * 37));

  auto chunk_bytes = [&](std::size_t seq) {
    return std::min(ota::kDataPayload, stream_bytes - seq * ota::kDataPayload);
  };
  auto chunk_of = [&](std::size_t seq) {
    const std::size_t off = seq * ota::kDataPayload;
    return std::vector<std::uint8_t>(
        image.begin() + static_cast<std::ptrdiff_t>(off),
        image.begin() + static_cast<std::ptrdiff_t>(off + chunk_bytes(seq)));
  };

  std::set<std::size_t> ever_stored;        // ever programmed to staging
  std::set<std::size_t> marked;             // current RAM bitmap
  std::set<std::size_t> checkpointed;       // bitmap in the flash checkpoint
  // begin_session persists the (empty) fresh bitmap.

  const std::size_t ops = src.uint_below(48);
  for (std::size_t op = 0; op < ops; ++op) {
    const std::uint32_t kind = src.uint_below(16);
    if (kind == 0) {
      node.persist_session();
      checkpointed = marked;
      continue;
    }
    if (kind == 1) {
      node.reboot();
      require(!node.online(), "reboot must take the node offline");
      std::vector<std::uint8_t> probe(1, 0);
      require(node.receive_chunk(0, probe) == RxStatus::kNoSession,
              "offline node must answer kNoSession");
      require(node.poll_boot(), "poll_boot must bring the node back");
      // RAM state restores from the last checkpoint; staged data (flash)
      // survives untouched.
      marked = checkpointed;
      require(node.resume_count() > 0, "reboot with checkpoint must resume");
      continue;
    }

    const auto seq = static_cast<std::uint16_t>(
        src.uint_below(static_cast<std::uint32_t>(total) + 3));
    const bool in_range = seq < total;
    const std::size_t correct = in_range ? chunk_bytes(seq) : 0;
    std::size_t len =
        src.boolean() ? correct : src.uint_below(ota::kDataPayload + 4);
    std::vector<std::uint8_t> payload;
    if (in_range && len == correct) {
      payload = chunk_of(seq);
    } else {
      payload = src.take(len);
      payload.resize(len, static_cast<std::uint8_t>(0xA5u + seq));
    }
    const bool corrupted = src.uint_below(8) == 0;

    RxStatus status = node.receive_chunk(seq, payload, corrupted);
    RxStatus expected;
    if (corrupted || !in_range || len != correct) {
      expected = RxStatus::kCorrupt;
    } else if (marked.count(seq) != 0) {
      expected = RxStatus::kDuplicate;
    } else {
      expected = RxStatus::kStored;
    }
    require(status == expected,
            "receive_chunk status diverged from the model at seq " +
                std::to_string(seq));
    if (status == RxStatus::kStored) {
      marked.insert(seq);
      ever_stored.insert(seq);
    }
  }

  require(node.chunks_received() == marked.size(),
          "chunks_received diverged from the model");
  std::size_t bytes = 0;
  for (std::size_t seq : marked) bytes += chunk_bytes(seq);
  require(node.bytes_received() == bytes,
          "bytes_received diverged from the model");
  require(node.complete() == (marked.size() == total),
          "complete() diverged from the model");

  // kSack bitmap payloads agree with the model bit for bit.
  auto bitmap = node.window_bitmap(0, total);
  for (std::size_t seq = 0; seq < total; ++seq) {
    bool bit = (bitmap[seq / 8] >> (seq % 8)) & 1u;
    require(bit == (marked.count(seq) != 0),
            "window_bitmap diverged at seq " + std::to_string(seq));
  }

  // Every chunk ever stored is byte-identical in the staging region —
  // brownouts may drop bitmap marks, never staged flash data.
  auto staged = node.staged_stream();
  require(staged.size() == stream_bytes, "staged_stream length wrong");
  for (std::size_t seq : ever_stored) {
    const std::size_t off = seq * ota::kDataPayload;
    const auto expect = chunk_of(seq);
    for (std::size_t i = 0; i < expect.size(); ++i)
      require(staged[off + i] == expect[i],
              "staged flash diverged at chunk " + std::to_string(seq));
  }
}

// End-to-end transfer under an adversarial fault plan. The reference
// model is the image itself: whatever the link/fault schedule does, the
// engine either reports success with the staging region byte-identical
// to the image, or reports a classified failure — never a success with
// corrupt staged bytes, never an unclassified outcome.
void transfer_adversarial(std::span<const std::uint8_t> data) {
  testkit::ByteSource src{data};

  const std::size_t image_len = 1 + src.uint_below(300);
  std::vector<std::uint8_t> image = src.take(image_len);
  image.resize(image_len);
  for (std::size_t i = image.size(); i-- > 0;)
    image[i] = static_cast<std::uint8_t>(image[i] ^ (0x5Au + i));

  sim::FaultPlan plan;
  plan.seed = src.u64();
  plan.corrupt_rate = src.unit() * 0.3;
  plan.duplicate_rate = src.unit() * 0.3;
  plan.reorder_rate = src.unit() * 0.3;
  plan.timeout_jitter = src.unit() * 0.2;
  if (src.boolean()) plan.brownout_at_byte = src.uint_below(
      static_cast<std::uint32_t>(image_len) + 1);
  if (src.boolean()) {
    channel::GilbertElliottParams burst;
    burst.p_enter_bad = src.real_in(0.0, 0.3);
    burst.p_exit_bad = src.real_in(0.05, 0.9);
    burst.loss_bad = src.real_in(0.3, 1.0);
    plan.burst = burst;
  }
  plan.page_program_failure_rate = src.boolean() ? src.unit() * 0.05 : 0.0;
  sim::FaultInjector faults{plan};

  ota::FlashModel flash;
  ota::NodeAgent node{7, flash, &faults};

  ota::TransferPolicy policy;
  policy.mode =
      src.boolean() ? ota::AckMode::kSelectiveAck : ota::AckMode::kStopAndWait;
  policy.window = 1 + src.uint_below(24);
  policy.max_retries = 4 + src.uint_below(16);
  if (src.boolean())
    policy.deadline = Seconds{src.real_in(0.05, 5.0)};

  const std::uint64_t link_seed = src.u64();
  ota::OtaLink link{ota::ota_link_params(), Dbm{src.real_in(-131.0, -100.0)},
                    link_seed};
  if (plan.burst) link.set_burst(*plan.burst);

  ota::AccessPoint ap;
  ota::UpdateOutcome out =
      ap.transfer(image, 7, link, policy, &node, &faults);

  require(out.success == (out.failure == ota::UpdateFailure::kNone),
          "success flag and failure cause disagree");
  require(out.link_seed == link_seed, "outcome must record the link seed");
  require(out.total_time.value() >= out.airtime.value(),
          "wall-clock cannot be below airtime");
  require(out.airtime.value() >= 0.0, "negative airtime");
  require(out.node_energy.value() >= 0.0, "negative node energy");

  const std::size_t chunks =
      (image_len + ota::kDataPayload - 1) / ota::kDataPayload;
  if (out.success) {
    require(out.sends_per_chunk.size() == chunks,
            "sends_per_chunk must cover every chunk");
    for (std::size_t seq = 0; seq < chunks; ++seq)
      require(out.sends_per_chunk[seq] >= 1,
              "successful transfer with an unsent chunk");
    // Re-delivery after a brownout can re-store chunks, never fewer.
    require(out.data_packets >= chunks,
            "successful transfer stored fewer chunks than the image has");
    auto staged = flash.read(ota::NodeAgent::kStagingBase, image.size());
    require(staged == image, "staged stream differs from the image");
  }
}

}  // namespace

void register_ota_harnesses() {
  auto& reg = testkit::HarnessRegistry::instance();
  reg.add({"ota.node_agent", node_agent_model, /*max_len=*/512});
  reg.add({"ota.transfer", transfer_adversarial, /*max_len=*/256});
}

}  // namespace tinysdr::fuzz
