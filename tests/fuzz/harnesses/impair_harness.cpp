// Impairment-pipeline harnesses: a fuzzed chain of every impairment block
// over fuzzed magnitudes must stay total (no crash, no NaN/Inf) and
// chunk-independent, and the CFO estimator must return a finite,
// range-bounded value for any lag/power/bias over any capture — including
// degenerate ones (empty, shorter than the lag, all-zero).
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dsp/cfo.hpp"
#include "dsp/types.hpp"
#include "harnesses.hpp"
#include "impair/correct.hpp"
#include "impair/impair.hpp"
#include "testkit/bytes.hpp"
#include "testkit/harness.hpp"

namespace tinysdr::fuzz {
namespace {

void require(bool cond, const std::string& what) {
  if (!cond) throw std::runtime_error(what);
}

void require_finite(std::span<const dsp::Complex> x, const std::string& who) {
  for (auto s : x)
    require(std::isfinite(s.real()) && std::isfinite(s.imag()),
            who + ": non-finite sample");
}

std::vector<dsp::Complex> make_signal(std::size_t n, std::uint64_t seed,
                                      double amplitude) {
  std::vector<dsp::Complex> x(n);
  Rng rng{seed, 7};
  for (auto& s : x)
    s = dsp::Complex{static_cast<float>(amplitude * rng.next_gaussian()),
                     static_cast<float>(amplitude * rng.next_gaussian())};
  return x;
}

// Fuzzed magnitudes through the full block set, applied once whole and
// once in fuzz-chosen chunks with carried state: both runs must be
// bit-identical and finite.
void impairments_harness(std::span<const std::uint8_t> data) {
  testkit::ByteSource src{data};

  const std::size_t n = 1 + src.uint_below(384);
  const std::uint64_t seed = src.u64();
  auto whole = make_signal(n, seed, src.real_in(0.0, 4.0));
  auto split = whole;

  const impair::IqImbalance iq{src.real_in(-6.0, 6.0),
                               src.real_in(-30.0, 30.0)};
  const impair::DcOffset dc{
      {static_cast<float>(src.real_in(-2.0, 2.0)),
       static_cast<float>(src.real_in(-2.0, 2.0))}};
  const impair::CfoDrift cfo{src.real_in(-0.6, 0.6),
                             src.real_in(-1e-3, 1e-3)};
  const impair::PhaseNoise pn{src.real_in(0.0, 1.0)};
  const impair::PaClip clip{src.real_in(-1.0, 3.0), src.real_in(0.1, 6.0)};
  const impair::Impairment* blocks[] = {&clip, &iq, &cfo, &dc, &pn};

  const std::uint64_t state_seed = src.u64();
  const std::size_t chunk = 1 + src.uint_below(64);
  for (std::size_t k = 0; k < std::size(blocks); ++k) {
    impair::ImpairState st_whole{Rng{state_seed, 64 + k}};
    blocks[k]->apply(whole, st_whole);

    impair::ImpairState st{Rng{state_seed, 64 + k}};
    for (std::size_t off = 0; off < split.size(); off += chunk) {
      const std::size_t len = std::min(chunk, split.size() - off);
      blocks[k]->apply(std::span<dsp::Complex>{split.data() + off, len}, st);
    }
    require(st.pos == st_whole.pos, "impair: chunked pos diverged");
  }
  require_finite(whole, "impair.chain");
  const std::string name{"impair: chunked apply diverged from whole"};
  for (std::size_t i = 0; i < n; ++i) {
    require(whole[i].real() == split[i].real() &&
                whole[i].imag() == split[i].imag(),
            name);
  }
}

// Any capture, any config: the estimator must return a finite value inside
// its capture range (plus the configured bias), and never throw.
void cfo_estimator_harness(std::span<const std::uint8_t> data) {
  testkit::ByteSource src{data};

  const std::size_t n = src.uint_below(768);  // 0 and 1 are in range
  std::vector<dsp::Complex> x = make_signal(n, src.u64(),
                                            src.real_in(0.0, 100.0));
  if (!x.empty() && src.boolean()) {
    // Sometimes a tone with real CFO, sometimes noise, sometimes zeros.
    const double f = src.real_in(-0.5, 0.5);
    if (src.boolean()) {
      for (auto& s : x) s = dsp::Complex{1.0f, 0.0f};
    }
    dsp::mix_cfo(x, f);
    require_finite(x, "dsp.mix_cfo");
  }
  if (!x.empty() && src.boolean())
    x.assign(x.size(), dsp::Complex{0.0f, 0.0f});

  dsp::CfoEstimatorConfig cfg;
  cfg.lag = 1 + src.uint_below(2048);  // may exceed the capture length
  cfg.bias_cycles_per_sample = src.real_in(-0.1, 0.1);
  cfg.power = src.uint_below(4);  // invalid powers must degrade to 1
  const double est = dsp::estimate_cfo(x, cfg);
  require(std::isfinite(est), "dsp.cfo_estimator: non-finite estimate");
  require(std::abs(est) <=
              0.5 + std::abs(cfg.bias_cycles_per_sample) + 1e-9,
          "dsp.cfo_estimator: estimate outside capture range");

  if (!x.empty()) {
    dsp::mix_cfo(x, -est);
    require_finite(x, "dsp.cfo_estimator: correction output");
    impair::correct_iq_imbalance(x);
    require_finite(x, "impair.iq_correction");
  }
}

}  // namespace

void register_impair_harnesses() {
  auto& reg = testkit::HarnessRegistry::instance();
  reg.add({"phy.impairments", impairments_harness, /*max_len=*/96});
  reg.add({"dsp.cfo_estimator", cfo_estimator_harness, /*max_len=*/64});
}

}  // namespace tinysdr::fuzz
