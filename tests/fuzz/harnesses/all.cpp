#include "harnesses.hpp"

namespace tinysdr::fuzz {

void register_builtin_harnesses() {
  static const bool once = [] {
    register_lvds_harnesses();
    register_ota_harnesses();
    register_phy_harnesses();
    register_obs_harnesses();
    register_adversary_harnesses();
    register_impair_harnesses();
    return true;
  }();
  (void)once;
}

}  // namespace tinysdr::fuzz
