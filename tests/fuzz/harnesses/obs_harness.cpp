// obs::Registry merge harness: any op sequence, partitioned into any
// contiguous set of journaled shards and merged back in order — flat or
// through journaled intermediates — must be bit-identical to having run
// the ops serially. This is the exact mechanism the parallel campaign
// and sweep engines rely on for threads-invariant telemetry.
#include <cstdint>
#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harnesses.hpp"
#include "obs/metrics.hpp"
#include "testkit/bytes.hpp"
#include "testkit/harness.hpp"

namespace tinysdr::fuzz {
namespace {

void require(bool cond, const std::string& what) {
  if (!cond) throw std::runtime_error(what);
}

struct Op {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram } kind;
  std::uint32_t name;
  double value;
};

// Histogram spec keyed by name index — the spec only applies on first
// creation, so every registry must derive it the same way.
obs::HistogramSpec spec_for(std::uint32_t name) {
  switch (name % 3) {
    case 0:
      return obs::HistogramSpec::linear(-5.0, 5.0, 8);
    case 1:
      return obs::HistogramSpec::log_scale(0.01, 1e4, 12);
    default:
      // Degenerate range: everything lands in under/overflow.
      return obs::HistogramSpec::linear(1.0, 1.0, 1);
  }
}

void apply(obs::Registry& r, const Op& op) {
  const std::string name = "m" + std::to_string(op.name);
  switch (op.kind) {
    case Op::Kind::kCounter:
      r.counter("c." + name).add(op.value);
      break;
    case Op::Kind::kGauge:
      r.gauge("g." + name).set(op.value);
      break;
    case Op::Kind::kHistogram:
      r.histogram("h." + name, spec_for(op.name)).observe(op.value);
      break;
  }
}

void metrics_merge(std::span<const std::uint8_t> data) {
  testkit::ByteSource src{data};

  // Decode an op sequence with values deliberately hitting the edges:
  // zero and negative samples on log-scale histograms, huge magnitudes,
  // non-finite-adjacent tiny values.
  const std::size_t nops = src.uint_below(64);
  std::vector<Op> ops;
  ops.reserve(nops);
  for (std::size_t i = 0; i < nops; ++i) {
    Op op;
    switch (src.uint_below(3)) {
      case 0: op.kind = Op::Kind::kCounter; break;
      case 1: op.kind = Op::Kind::kGauge; break;
      default: op.kind = Op::Kind::kHistogram; break;
    }
    op.name = src.uint_below(4);
    switch (src.uint_below(6)) {
      case 0: op.value = 0.0; break;
      case 1: op.value = -1.5; break;
      case 2: op.value = 1e-12; break;
      case 3: op.value = 1e15; break;
      case 4: op.value = -static_cast<double>(src.uint_below(1000)); break;
      default: op.value = src.real_in(-10.0, 1e6); break;
    }
    ops.push_back(op);
  }

  // Serial reference.
  obs::Registry serial;
  for (const auto& op : ops) apply(serial, op);

  // Contiguous partition into 1..5 journaled shards, merged in order.
  const std::size_t nshards = 1 + src.uint_below(5);
  std::vector<std::unique_ptr<obs::Registry>> shards;
  std::size_t at = 0;
  for (std::size_t s = 0; s < nshards; ++s) {
    auto shard = std::make_unique<obs::Registry>();
    shard->enable_journal();
    std::size_t take = s + 1 == nshards
                           ? ops.size() - at
                           : src.uint_below(static_cast<std::uint32_t>(
                                 ops.size() - at + 1));
    for (std::size_t i = 0; i < take; ++i) apply(*shard, ops[at + i]);
    at += take;
    shards.push_back(std::move(shard));
  }

  obs::Registry flat;
  for (const auto& shard : shards) flat.merge_from(*shard);
  require(flat.snapshot() == serial.snapshot(),
          "flat shard merge diverged from the serial registry");
  require(flat.json() == serial.json(),
          "flat merge JSON not byte-identical to serial");

  // Associativity: group the shards into two journaled intermediates,
  // then merge those — same result again.
  obs::Registry left, right;
  left.enable_journal();
  right.enable_journal();
  const std::size_t split = src.uint_below(static_cast<std::uint32_t>(
      shards.size() + 1));
  for (std::size_t s = 0; s < shards.size(); ++s)
    (s < split ? left : right).merge_from(*shards[s]);
  obs::Registry grouped;
  grouped.merge_from(left);
  grouped.merge_from(right);
  require(grouped.snapshot() == serial.snapshot(),
          "two-level merge is not associative with the flat merge");

  // CSV export stays total (including on the empty registry).
  std::ostringstream csv;
  serial.write_csv(csv);
  obs::Registry empty;
  std::ostringstream empty_csv;
  empty.write_csv(empty_csv);
}

}  // namespace

void register_obs_harnesses() {
  testkit::HarnessRegistry::instance().add(
      {"obs.metrics_merge", metrics_merge, /*max_len=*/512});
}

}  // namespace tinysdr::fuzz
