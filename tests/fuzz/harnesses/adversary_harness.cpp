// Adversary harnesses: the OTA transfer engine under fuzz-chosen scripted
// protocol attacks, and the RF jammer models plugged into the link
// simulator. Both are differential/metamorphic: the attacked system must
// either survive (with detection counters agreeing exactly with what the
// attacker launched) or fail with a classified cause — and every run must
// replay bit-for-bit from its seeds.
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/jammer.hpp"
#include "adversary/ota_attacker.hpp"
#include "harnesses.hpp"
#include "ota/flash.hpp"
#include "ota/protocol.hpp"
#include "phy/link_sim.hpp"
#include "phy/lora_phy.hpp"
#include "testkit/bytes.hpp"
#include "testkit/harness.hpp"

namespace tinysdr::fuzz {
namespace {

void require(bool cond, const std::string& what) {
  if (!cond) throw std::runtime_error(what);
}

// The transfer engine against a fuzz-chosen ScriptedAttacker over a
// fuzz-chosen link. Invariants: success and failure cause stay coherent,
// the victim's detection counters agree exactly with the attacks the
// attacker actually launched, and a successful transfer stages the image
// byte-identically no matter what the attacker did.
void attacked_transfer(std::span<const std::uint8_t> data) {
  testkit::ByteSource src{data};

  const std::size_t image_len = 1 + src.uint_below(280);
  std::vector<std::uint8_t> image = src.take(image_len);
  image.resize(image_len);
  for (std::size_t i = image.size(); i-- > 0;)
    image[i] = static_cast<std::uint8_t>(image[i] ^ (0xC3u + i));

  adversary::OtaAttackPlan plan;
  plan.seed = src.u64();
  plan.jam_rate = src.unit() * 0.3;
  plan.forge_ack_rate = src.unit() * 0.2;
  plan.truncate_rate = src.unit() * 0.2;
  plan.replay_rate = src.unit() * 0.3;
  adversary::ScriptedAttacker attacker{plan};

  ota::TransferPolicy policy;
  policy.mode =
      src.boolean() ? ota::AckMode::kSelectiveAck : ota::AckMode::kStopAndWait;
  policy.window = 1 + src.uint_below(24);
  policy.max_retries = 4 + src.uint_below(32);

  const std::uint64_t link_seed = src.u64();
  ota::OtaLink link{ota::ota_link_params(), Dbm{src.real_in(-125.0, -60.0)},
                    link_seed};
  ota::FlashModel flash;
  ota::NodeAgent node{3, flash};
  ota::AccessPoint ap;
  ota::UpdateOutcome out =
      ap.transfer(image, 3, link, policy, &node, nullptr, &attacker);

  require(out.success == (out.failure == ota::UpdateFailure::kNone),
          "success flag and failure cause disagree");
  require(out.link_seed == link_seed, "outcome must record the link seed");

  // Victim-side detections tally exactly the attacks launched.
  const auto& launched = attacker.counters();
  require(out.jammed_packets == launched.jams,
          "jam detections diverged from the attacker's tally");
  require(out.forged_acks_discarded == launched.forged_acks,
          "forged-ACK detections diverged from the attacker's tally");
  require(out.truncated_dropped == launched.truncations,
          "truncation detections diverged from the attacker's tally");
  require(out.replays_dropped == launched.replays,
          "replay detections diverged from the attacker's tally");

  if (out.success) {
    auto staged = flash.read(ota::NodeAgent::kStagingBase, image.size());
    require(staged == image,
            "attacked-but-successful transfer staged corrupt bytes");
  }

  // Replay: an identical attacker/link pair reproduces the run exactly.
  adversary::ScriptedAttacker attacker2{plan};
  ota::OtaLink link2{ota::ota_link_params(), link.rssi(), link_seed};
  ota::FlashModel flash2;
  ota::NodeAgent node2{3, flash2};
  ota::UpdateOutcome out2 =
      ap.transfer(image, 3, link2, policy, &node2, nullptr, &attacker2);
  require(out.success == out2.success && out.failure == out2.failure &&
              out.retransmissions == out2.retransmissions &&
              out.jammed_packets == out2.jammed_packets &&
              out.replays_dropped == out2.replays_dropped &&
              out.airtime.value() == out2.airtime.value(),
          "attacked transfer did not replay bit-for-bit");
}

// Jammer models inside the link simulator: fuzz-chosen jammer type,
// configuration and received power on a tiny LoRa link. Invariants:
// emissions have the documented shape, and run_point replays exactly.
void jammed_link(std::span<const std::uint8_t> data) {
  testkit::ByteSource src{data};

  phy::LoraPhyConfig cfg{.params = {7, Hertz::from_kilohertz(125.0)},
                         .sample_rate = Hertz::from_kilohertz(125.0)};
  phy::LoraSymbolTx tx{cfg};
  phy::LoraSymbolRx rx{cfg};

  const std::uint32_t kind = src.uint_below(3);
  adversary::ReactiveJammerConfig rcfg;
  rcfg.detect_threshold = src.real_in(0.0, 1.5);
  rcfg.detect_window = 1 + src.uint_below(128);
  rcfg.reaction_latency = src.uint_below(256);
  rcfg.burst_samples = src.boolean() ? src.uint_below(512) : 0;
  adversary::SweepJammerConfig scfg;
  scfg.period_samples = 1 + src.uint_below(4096);
  adversary::PulsedJammerConfig pcfg;
  pcfg.period_samples = 1 + src.uint_below(2048);
  pcfg.duty = src.unit();
  adversary::ReactiveJammer reactive{rcfg};
  adversary::SweepJammer sweeper{scfg};
  adversary::PulsedJammer pulsed{pcfg};
  const phy::Interferer* jammer =
      kind == 0 ? static_cast<const phy::Interferer*>(&reactive)
      : kind == 1 ? static_cast<const phy::Interferer*>(&sweeper)
                  : static_cast<const phy::Interferer*>(&pulsed);

  // Direct emission shape: output never outruns the victim frame, and the
  // same RNG state reproduces the same waveform.
  const std::size_t frame = 64 + src.uint_below(1024);
  dsp::Samples signal(frame, dsp::Complex{1.0f, 0.0f});
  const std::uint64_t eseed = src.u64();
  dsp::Samples wave_a, wave_b;
  Rng rng_a{eseed, 9}, rng_b{eseed, 9};
  jammer->emit(signal, wave_a, rng_a);
  jammer->emit(signal, wave_b, rng_b);
  require(wave_a.size() <= signal.size(), "jammer emitted past the frame");
  require(wave_a.size() == wave_b.size(), "emission length not deterministic");
  for (std::size_t n = 0; n < wave_a.size(); ++n)
    require(wave_a[n] == wave_b[n], "emission samples not deterministic");

  // Inside the simulator: sane aggregates, exact replay.
  phy::TrialPlan plan;
  plan.trials = 1 + src.uint_below(3);
  plan.payload_bytes = 1 + src.uint_below(8);
  plan.base_seed = src.u64();
  const phy::SweepPoint point{Dbm{src.real_in(-130.0, -100.0)}, std::nullopt};
  const Dbm jam_power{src.real_in(-130.0, -95.0)};

  auto run = [&] {
    phy::LinkSimulator sim{tx, rx, plan};
    sim.add_interferer(*jammer, jam_power);
    return sim.run_point(point);
  };
  phy::PointResult first = run();
  require(first.frames == plan.trials, "trial count diverged");
  require(first.frame_errors <= first.frames, "PER above 1");
  require(first.symbol_errors <= first.symbols, "SER above 1");
  require(first == run(), "jammed run_point did not replay exactly");
}

}  // namespace

void register_adversary_harnesses() {
  auto& reg = testkit::HarnessRegistry::instance();
  reg.add({"ota.attacker", attacked_transfer, /*max_len=*/256});
  reg.add({"phy.jammer", jammed_link, /*max_len=*/96});
}

}  // namespace tinysdr::fuzz
