// LVDS deframer harnesses: the Fig. 4 word codec against raw bit garbage
// and against framed streams with injected bit flips / truncation.
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "harnesses.hpp"
#include "radio/lvds.hpp"
#include "testkit/bytes.hpp"
#include "testkit/harness.hpp"

namespace tinysdr::fuzz {
namespace {

void require(bool cond, const std::string& what) {
  if (!cond) throw std::runtime_error(what);
}

void check_range(const radio::IqWord& w) {
  require(w.i >= -4096 && w.i <= 4095, "I sample outside 13-bit range");
  require(w.q >= -4096 && w.q <= 4095, "Q sample outside 13-bit range");
}

// Raw input bytes as a bit stream straight into the Deframer. Whatever
// the bits are — garbage, half-words, valid frames — every decoded
// sample must be in 13-bit range and every fed bit must be accounted
// for: 32 * words + slipped_bits + pending_bits == bits fed.
void deframer_bits(std::span<const std::uint8_t> data) {
  radio::Deframer des;
  std::size_t fed = 0;
  for (std::uint8_t byte : data) {
    for (int b = 7; b >= 0; --b) {
      des.feed(((byte >> b) & 1u) != 0);
      ++fed;
    }
  }
  auto words = des.take_words();
  for (const auto& w : words) check_range(w);
  require(32 * words.size() + des.slipped_bits() + des.pending_bits() == fed,
          "bit conservation violated: " + std::to_string(words.size()) +
              " words, " + std::to_string(des.slipped_bits()) + " slipped, " +
              std::to_string(des.pending_bits()) + " pending, " +
              std::to_string(fed) + " fed");
  require(des.take_words().empty(), "take_words() must consume the words");
}

// Frame random words, then corrupt the serial stream (bit flips and/or a
// truncated tail) and deframe. Differential oracle: with no corruption
// the decoded words are exactly the sent words; with only a truncated
// final word the prefix survives and the tail is *rejected* (held
// pending, never emitted as garbage); with flips nothing worse than
// resync (range + conservation) may happen.
void roundtrip_flip(std::span<const std::uint8_t> data) {
  testkit::ByteSource src{data};

  const std::size_t n = 1 + src.uint_below(40);
  radio::Framer framer;
  std::vector<radio::IqWord> sent;
  sent.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    radio::IqWord w;
    w.i = static_cast<std::int32_t>(src.int_in(-4096, 4095));
    w.q = static_cast<std::int32_t>(src.int_in(-4096, 4095));
    w.i_ctrl = src.boolean();
    w.q_ctrl = src.boolean();
    framer.push(w);
    sent.push_back(w);
  }
  std::vector<bool> bits = framer.bits();
  require(bits.size() == 32 * n, "framer must emit 32 bits per word");

  const std::size_t flips = src.uint_below(5);
  for (std::size_t f = 0; f < flips; ++f) {
    std::size_t at = src.uint_below(static_cast<std::uint32_t>(bits.size()));
    bits[at] = !bits[at];
  }
  // Truncate 0..31 bits off the final word (only meaningful flip-free).
  const std::size_t cut = src.boolean() ? src.uint_below(32) : 0;
  bits.resize(bits.size() - cut);

  radio::Deframer des;
  des.feed(bits);
  auto words = des.take_words();
  for (const auto& w : words) check_range(w);
  require(32 * words.size() + des.slipped_bits() + des.pending_bits() ==
              bits.size(),
          "bit conservation violated after corruption");

  auto same = [](const radio::IqWord& a, const radio::IqWord& b) {
    return a.i == b.i && a.q == b.q && a.i_ctrl == b.i_ctrl &&
           a.q_ctrl == b.q_ctrl;
  };
  if (flips == 0) {
    // Lock needs two back-to-back words, so a single (possibly truncated)
    // word stays pending — that is the documented hunt behaviour.
    const std::size_t whole = n - (cut > 0 ? 1 : 0);
    const std::size_t expect = whole >= 2 ? whole : 0;
    require(words.size() == expect,
            "clean stream: expected " + std::to_string(expect) +
                " words, got " + std::to_string(words.size()));
    for (std::size_t k = 0; k < words.size(); ++k)
      require(same(words[k], sent[k]),
              "clean stream: word " + std::to_string(k) + " mismatched");
    require(des.slipped_bits() == 0, "clean stream must not slip bits");
  }
}

}  // namespace

void register_lvds_harnesses() {
  auto& reg = testkit::HarnessRegistry::instance();
  reg.add({"lvds.deframer_bits", deframer_bits, /*max_len=*/256});
  reg.add({"lvds.roundtrip_flip", roundtrip_flip, /*max_len=*/128});
}

}  // namespace tinysdr::fuzz
