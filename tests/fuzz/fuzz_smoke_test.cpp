// ctest-facing fuzz smoke: every registered harness runs its seed corpus
// plus a fixed count of generated inputs and must come back clean. The
// iteration count is modest by default (this runs in every ctest
// invocation) and overridable via TINYSDR_FUZZ_ITERS — CI's fuzz-smoke
// job drives the same harness table through tinysdr_fuzz at 10k+.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "harnesses/harnesses.hpp"
#include "testkit/harness.hpp"

#ifndef TINYSDR_CORPUS_DIR
#define TINYSDR_CORPUS_DIR ""
#endif

namespace tinysdr::fuzz {
namespace {

std::size_t env_iters(std::size_t fallback) {
  const char* v = std::getenv("TINYSDR_FUZZ_ITERS");
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

TEST(FuzzSmoke, EveryHarnessRunsCleanOverCorpusAndSeedStream) {
  register_builtin_harnesses();
  const auto& harnesses = testkit::HarnessRegistry::instance().all();
  // 2 LVDS + 2 OTA + 5 PHY + 1 obs.
  ASSERT_GE(harnesses.size(), 10u);
  for (const auto& h : harnesses) {
    testkit::FuzzRunConfig cfg;
    cfg.iterations = env_iters(40);
    cfg.corpus_dir = std::string(TINYSDR_CORPUS_DIR) + "/" + h.name;
    cfg.artifact_dir = "fuzz-artifacts";
    testkit::FuzzReport report = testkit::run_fuzz(h, cfg);
    EXPECT_TRUE(report.ok()) << report.message();
  }
}

TEST(FuzzSmoke, GeneratedInputsReplayFromSeedAndIndexAlone) {
  register_builtin_harnesses();
  const auto* h =
      testkit::HarnessRegistry::instance().find("lvds.deframer_bits");
  ASSERT_NE(h, nullptr);
  for (std::uint64_t index : {std::uint64_t{0}, std::uint64_t{1},
                              std::uint64_t{17}, std::uint64_t{999}}) {
    EXPECT_EQ(testkit::fuzz_input(*h, 42, index),
              testkit::fuzz_input(*h, 42, index));
  }
  EXPECT_NE(testkit::fuzz_input(*h, 42, 1), testkit::fuzz_input(*h, 43, 1));
}

TEST(FuzzSmoke, CorpusDirectoriesExistForEveryHarness) {
  register_builtin_harnesses();
  for (const auto& h : testkit::HarnessRegistry::instance().all()) {
    auto corpus =
        testkit::load_corpus(std::string(TINYSDR_CORPUS_DIR) + "/" + h.name);
    EXPECT_FALSE(corpus.empty()) << "no seed corpus for " << h.name;
  }
}

}  // namespace
}  // namespace tinysdr::fuzz
