// Impairment-block contracts: pinned golden vectors at fixed seed/params,
// bit-exact zero-magnitude passthrough with no RNG draws, and
// chunk-independence (any split of a region with carried state is
// byte-identical to one whole-region call) — the property both trial
// engines' byte-identity rests on.
#include "impair/impair.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "impair/correct.hpp"

namespace tinysdr::impair {
namespace {

std::vector<dsp::Complex> golden_input(std::size_t n = 16) {
  std::vector<dsp::Complex> x(n);
  Rng rng{0xBEEF, 7};
  for (auto& s : x)
    s = dsp::Complex{static_cast<float>(rng.next_gaussian()),
                     static_cast<float>(rng.next_gaussian())};
  return x;
}

ImpairState golden_state() { return ImpairState{Rng{0x1234, 64}}; }

void expect_golden(const Impairment& imp,
                   const std::vector<dsp::Complex>& want) {
  auto x = golden_input();
  ImpairState st = golden_state();
  imp.apply(x, st);
  ASSERT_LE(want.size(), x.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(x[i].real(), want[i].real(), 1e-6) << "sample " << i;
    EXPECT_NEAR(x[i].imag(), want[i].imag(), 1e-6) << "sample " << i;
  }
  EXPECT_EQ(st.pos, x.size());
}

TEST(ImpairGolden, IqImbalance) {
  expect_golden(IqImbalance{1.0, 5.0},
                {{0.67395997f, -1.11017454f},
                 {0.307206273f, 2.91535997f},
                 {-0.104664706f, -0.21081695f},
                 {-0.526915669f, 0.0585451722f},
                 {-0.451275527f, -0.549143016f},
                 {-1.58939362f, -0.503316879f},
                 {-0.175116837f, -0.575594962f},
                 {-3.11091661f, -0.777058363f}});
}

TEST(ImpairGolden, DcOffset) {
  expect_golden(DcOffset{{0.25f, -0.125f}},
                {{0.92395997f, -1.17718744f},
                 {0.557206273f, 2.45636535f},
                 {0.145335287f, -0.304451525f},
                 {-0.276915669f, -0.0265230983f},
                 {-0.201275527f, -0.576812267f},
                 {-1.33939362f, -0.436241239f},
                 {0.074883163f, -0.624638438f},
                 {-2.86091661f, -0.548029542f}});
}

TEST(ImpairGolden, CfoDrift) {
  expect_golden(CfoDrift{0.01, 1e-6},
                {{0.67395997f, -1.05218744f},
                 {0.144506633f, 2.59556174f},
                 {-0.0813457519f, -0.191155478f},
                 {-0.53603518f, -0.00201670825f},
                 {-0.324709117f, -0.549861729f},
                 {-1.41536236f, -0.787268817f},
                 {0.0211694986f, -0.529014468f},
                 {-2.63446164f, -1.70773804f}});
}

TEST(ImpairGolden, PhaseNoise) {
  expect_golden(PhaseNoise{0.05},
                {{0.649921477f, -1.06720304f},
                 {0.553515553f, 2.53996897f},
                 {-0.0985462144f, -0.182883009f},
                 {-0.525431871f, 0.106109172f},
                 {-0.42671442f, -0.475077569f},
                 {-1.59782934f, -0.26454553f},
                 {-0.215747654f, -0.483484626f},
                 {-3.13392687f, -0.187770456f}});
}

TEST(ImpairGolden, PaClip) {
  expect_golden(PaClip{0.8, 2.0},
                {{0.415063888f, -0.647998452f},
                 {0.0943294317f, 0.792622924f},
                 {-0.104546055f, -0.179248095f},
                 {-0.503273249f, 0.0940582976f},
                 {-0.414426327f, -0.414919198f},
                 {-0.77382046f, -0.151532531f},
                 {-0.167600378f, -0.478192657f},
                 {-0.79187125f, -0.107680455f}});
}

// Zero magnitude must be a bit-exact passthrough that draws no randomness
// and still advances the position (downstream slots depend on it).
void expect_passthrough(const Impairment& imp) {
  auto x = golden_input();
  const auto original = x;
  ImpairState st = golden_state();
  imp.apply(x, st);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i].real(), original[i].real()) << imp.name() << " @" << i;
    EXPECT_EQ(x[i].imag(), original[i].imag()) << imp.name() << " @" << i;
  }
  EXPECT_EQ(st.pos, x.size()) << imp.name();
  Rng fresh{0x1234, 64};
  EXPECT_EQ(st.rng.next_gaussian(), fresh.next_gaussian())
      << imp.name() << " consumed randomness while disabled";
}

TEST(ImpairPassthrough, ZeroMagnitudeIsExact) {
  expect_passthrough(IqImbalance{0.0, 0.0});
  expect_passthrough(DcOffset{{0.0f, 0.0f}});
  expect_passthrough(CfoDrift{0.0});
  expect_passthrough(PhaseNoise{0.0});
  expect_passthrough(PaClip{0.0});
  expect_passthrough(PaClip{-1.0});
}

// Chunk-independence: processing a region in arbitrary consecutive splits
// with one carried ImpairState is byte-identical to a single whole-region
// apply — for every block, including the stateful random-walk one.
void expect_chunk_independent(const Impairment& imp) {
  auto whole = golden_input(257);
  ImpairState st_whole = golden_state();
  imp.apply(whole, st_whole);

  for (std::size_t chunk : {std::size_t{1}, std::size_t{5}, std::size_t{64}}) {
    auto split = golden_input(257);
    ImpairState st = golden_state();
    for (std::size_t off = 0; off < split.size(); off += chunk) {
      const std::size_t n = std::min(chunk, split.size() - off);
      imp.apply(std::span<dsp::Complex>{split.data() + off, n}, st);
    }
    for (std::size_t i = 0; i < split.size(); ++i) {
      ASSERT_EQ(split[i].real(), whole[i].real())
          << imp.name() << " chunk=" << chunk << " @" << i;
      ASSERT_EQ(split[i].imag(), whole[i].imag())
          << imp.name() << " chunk=" << chunk << " @" << i;
    }
    EXPECT_EQ(st.pos, st_whole.pos);
  }
}

TEST(ImpairChunking, EveryBlockIsChunkIndependent) {
  expect_chunk_independent(IqImbalance{1.5, 8.0});
  expect_chunk_independent(DcOffset{{0.3f, -0.2f}});
  expect_chunk_independent(CfoDrift{0.013, 2e-7});
  expect_chunk_independent(PhaseNoise{0.07});
  expect_chunk_independent(PaClip{0.7, 3.0});
}

TEST(ImpairChain, ApplyStageFiltersByStageAndKeepsSlotStreams) {
  IqImbalance iq{1.0, 5.0};
  DcOffset dc{{0.25f, -0.125f}};
  Chain chain{{&iq, Stage::kTx}, {&dc, Stage::kRx}};

  auto tx_only = golden_input();
  apply_stage(chain, Stage::kTx, tx_only, 0x1234, 64);
  auto want_tx = golden_input();
  ImpairState st{Rng{0x1234, 64}};  // slot 0 -> stream base + 0
  iq.apply(want_tx, st);
  EXPECT_EQ(tx_only, want_tx);

  auto rx_only = golden_input();
  apply_stage(chain, Stage::kRx, rx_only, 0x1234, 64);
  auto want_rx = golden_input();
  ImpairState st2{Rng{0x1234, 65}};  // slot 1 -> stream base + 1
  dc.apply(want_rx, st2);
  EXPECT_EQ(rx_only, want_rx);
}

TEST(ImpairChain, StageNames) {
  EXPECT_EQ(stage_name(Stage::kTx), "tx");
  EXPECT_EQ(stage_name(Stage::kRx), "rx");
}

}  // namespace
}  // namespace tinysdr::impair
