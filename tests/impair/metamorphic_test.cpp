// Metamorphic proof of the impairment/calibration pair, per PHY:
//
//   1. PER(clean) == 0 at the pinned high-SNR point;
//   2. PER(impaired, uncorrected) >= PER(clean) — and the pinned
//      magnitudes are chosen to actually break the demod (>= 0.5);
//   3. PER(impaired + matching correction) ~= PER(clean) within a stated
//      tolerance — CalibratedRx undoes what the chain injected;
//   4. a zero-magnitude chain is byte-identical to no chain at all.
//
// The impairment stack per trial is the physical front-end order: crystal
// CFO, then mixer IQ imbalance, then ADC DC offset; CalibratedRx inverts
// in reverse (DC -> IQ -> CFO). Magnitudes sit inside each estimator's
// capture range (see EXPERIMENTS.md for the per-PHY ranges).
#include <gtest/gtest.h>

#include <memory>

#include "impair/impair.hpp"
#include "phy/calibrated_rx.hpp"
#include "phy/link_sim.hpp"
#include "phy/registry.hpp"

namespace tinysdr::phy {
namespace {

struct MetamorphicCase {
  const char* phy;
  double rssi_dbm;
  double cfo_cps;  ///< RX carrier offset, cycles/sample
  dsp::Complex dc;
  double iq_gain_db;
  double iq_phase_deg;
};

// Tuned so the clean link is error-free, the impaired one badly broken,
// and every magnitude within the PHY's calibration capture range.
constexpr MetamorphicCase kCases[] = {
    {"lora", -110.0, 0.0018, {1.0f, 0.5f}, 2.0, 10.0},
    {"ble", -85.0, 0.05, {0.5f, -0.3f}, 2.0, 10.0},
    {"zigbee", -88.0, 0.005, {0.3f, -0.2f}, 1.5, 8.0},
    {"sigfox", -120.0, 0.03, {0.5f, -0.3f}, 2.0, 10.0},
    {"nbiot", -110.0, 0.004, {0.3f, -0.2f}, 1.5, 8.0},
};

TrialPlan plan_for(const RegisteredPhy& entry) {
  TrialPlan plan;
  plan.trials = 20;
  plan.payload_bytes = 12;
  plan.pad_samples = entry.pad_samples;
  plan.noise_figure_db = entry.system_noise_figure_db;
  plan.base_seed = 0xCA1;
  return plan;
}

class ImpairMetamorphic : public ::testing::TestWithParam<MetamorphicCase> {};

TEST_P(ImpairMetamorphic, CorrectionRestoresTheCleanLink) {
  const MetamorphicCase& c = GetParam();
  const RegisteredPhy* entry = Registry::builtin().find_by_name(c.phy);
  ASSERT_NE(entry, nullptr);
  auto tx = entry->make_tx();
  auto rx = entry->make_rx();
  const TrialPlan plan = plan_for(*entry);
  const SweepPoint point{Dbm{c.rssi_dbm}, std::nullopt};

  LinkSimulator clean{*tx, *rx, plan};
  const PointResult r_clean = clean.run_point(point);
  EXPECT_EQ(r_clean.frame_errors, 0u)
      << c.phy << ": pinned point must be clean";

  const impair::CfoDrift cfo{c.cfo_cps};
  const impair::IqImbalance iq{c.iq_gain_db, c.iq_phase_deg};
  const impair::DcOffset dc{c.dc};

  LinkSimulator impaired{*tx, *rx, plan};
  impaired.add_impairment(cfo, impair::Stage::kRx);
  impaired.add_impairment(iq, impair::Stage::kRx);
  impaired.add_impairment(dc, impair::Stage::kRx);
  const PointResult r_impaired = impaired.run_point(point);
  EXPECT_GE(r_impaired.per(), r_clean.per())
      << c.phy << ": impairments may never improve the link";
  EXPECT_GE(r_impaired.per(), 0.5)
      << c.phy << ": pinned magnitudes should badly break the demod";

  auto cal_rx = make_calibrated_rx(*entry);
  LinkSimulator corrected{*tx, *cal_rx, plan};
  corrected.add_impairment(cfo, impair::Stage::kRx);
  corrected.add_impairment(iq, impair::Stage::kRx);
  corrected.add_impairment(dc, impair::Stage::kRx);
  const PointResult r_corrected = corrected.run_point(point);
  EXPECT_LE(r_corrected.per(), r_clean.per() + 0.15)
      << c.phy << ": calibration must restore the clean PER";
}

TEST_P(ImpairMetamorphic, ZeroMagnitudeChainIsByteIdentical) {
  const MetamorphicCase& c = GetParam();
  const RegisteredPhy* entry = Registry::builtin().find_by_name(c.phy);
  ASSERT_NE(entry, nullptr);
  auto tx = entry->make_tx();
  auto rx = entry->make_rx();
  const TrialPlan plan = plan_for(*entry);
  const SweepPoint point{Dbm{c.rssi_dbm}, std::nullopt};

  LinkSimulator bare{*tx, *rx, plan};
  const PointResult r_bare = bare.run_point(point);

  const impair::CfoDrift cfo{0.0};
  const impair::IqImbalance iq{0.0, 0.0};
  const impair::DcOffset dc{{0.0f, 0.0f}};
  const impair::PhaseNoise pn{0.0};
  const impair::PaClip clip{0.0};
  LinkSimulator zeroed{*tx, *rx, plan};
  zeroed.add_impairment(clip, impair::Stage::kTx);
  zeroed.add_impairment(cfo, impair::Stage::kRx);
  zeroed.add_impairment(iq, impair::Stage::kRx);
  zeroed.add_impairment(dc, impair::Stage::kRx);
  zeroed.add_impairment(pn, impair::Stage::kRx);
  const PointResult r_zeroed = zeroed.run_point(point);
  EXPECT_EQ(r_zeroed, r_bare);
}

INSTANTIATE_TEST_SUITE_P(AllPhys, ImpairMetamorphic,
                         ::testing::ValuesIn(kCases),
                         [](const auto& info) {
                           return std::string(info.param.phy);
                         });

TEST(CalibratedRxConfig, DefaultCalibrationMatchesRegistry) {
  for (const auto& entry : Registry::builtin().entries()) {
    const RxCalibration cal = default_calibration(entry);
    EXPECT_EQ(cal.cfo_lag, entry.cfo_lag) << entry.name;
    EXPECT_EQ(cal.cfo_power, entry.cfo_power) << entry.name;
    EXPECT_EQ(cal.cfo_window, entry.cfo_window) << entry.name;
    EXPECT_TRUE(std::isfinite(cal.cfo_bias)) << entry.name;
    // The bias is the estimator's zero-CFO reading: small by construction.
    EXPECT_LT(std::abs(cal.cfo_bias), 0.1) << entry.name;
  }
}

TEST(CalibratedRxConfig, AllStagesOffIsTheInnerReceiver) {
  const auto& entry = Registry::builtin().at(Protocol::kBle);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  RxCalibration off;
  off.dc_notch = off.iq_correct = off.cfo_correct = false;
  CalibratedRx cal{*rx, off};

  TrialPlan plan = plan_for(entry);
  plan.trials = 5;
  const SweepPoint point{Dbm{-88.0}, std::nullopt};
  LinkSimulator a{*tx, *rx, plan};
  LinkSimulator b{*tx, cal, plan};
  EXPECT_EQ(a.run_point(point), b.run_point(point));
}

}  // namespace
}  // namespace tinysdr::phy
