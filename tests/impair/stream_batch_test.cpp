// Differential suite: the impairment chain must behave byte-identically
// whether it runs batch-side inside LinkSimulator::run_point() or as
// zero-copy ImpairStreamBlocks in the streaming flowgraph — across ring
// sizes, with inter-frame gaps, under the threaded scheduler, and with an
// interferer in the mix.
#include <gtest/gtest.h>

#include "flow/link_stream.hpp"
#include "impair/impair.hpp"
#include "phy/link_sim.hpp"
#include "phy/registry.hpp"

namespace tinysdr::flow {
namespace {

phy::TrialPlan small_plan() {
  phy::TrialPlan plan;
  plan.trials = 5;
  plan.payload_bytes = 8;
  plan.pad_samples = 24;
  plan.base_seed = 0x5EED;
  return plan;
}

// A full-stack chain touching both stages and every state flavour:
// memoryless (clip, iq, dc), position-dependent (cfo) and random-walk
// (phase noise).
struct FullChain {
  impair::PaClip clip{0.9, 2.0};
  impair::IqImbalance iq{0.8, 4.0};
  impair::CfoDrift cfo{0.002, 1e-8};
  impair::DcOffset dc{{0.1f, -0.05f}};
  impair::PhaseNoise pn{0.02};

  void attach(phy::LinkSimulator& sim) const {
    sim.add_impairment(clip, impair::Stage::kTx);
    sim.add_impairment(iq, impair::Stage::kTx);
    sim.add_impairment(cfo, impair::Stage::kRx);
    sim.add_impairment(dc, impair::Stage::kRx);
    sim.add_impairment(pn, impair::Stage::kRx);
  }
  void attach(StreamingLink& stream) const {
    stream.add_impairment(clip, impair::Stage::kTx);
    stream.add_impairment(iq, impair::Stage::kTx);
    stream.add_impairment(cfo, impair::Stage::kRx);
    stream.add_impairment(dc, impair::Stage::kRx);
    stream.add_impairment(pn, impair::Stage::kRx);
  }
};

TEST(ImpairStreamBatch, ByteIdenticalAcrossRingSizes) {
  const auto& entry = phy::Registry::builtin().at(phy::Protocol::kZigbee);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  const auto plan = small_plan();
  const phy::SweepPoint point{Dbm{-95.0}, std::nullopt};
  const FullChain chain;

  phy::LinkSimulator classic{*tx, *rx, plan};
  chain.attach(classic);
  const auto expected = classic.run_point(point);

  for (std::size_t ring : {std::size_t{64}, std::size_t{256},
                           std::size_t{1024}}) {
    StreamingLink stream{*tx, *rx, StreamPlan{plan, /*gap_samples=*/0, ring}};
    chain.attach(stream);
    auto got = stream.run(point);
    EXPECT_TRUE(got.report.drained()) << "ring=" << ring;
    EXPECT_EQ(got.point, expected) << "ring=" << ring;
  }
}

TEST(ImpairStreamBatch, GapsDoNotPerturbTheChain) {
  const auto& entry = phy::Registry::builtin().at(phy::Protocol::kBle);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  const auto plan = small_plan();
  const phy::SweepPoint point{Dbm{-90.0}, std::nullopt};
  const FullChain chain;

  phy::LinkSimulator classic{*tx, *rx, plan};
  chain.attach(classic);
  const auto expected = classic.run_point(point);

  StreamingLink stream{*tx, *rx, StreamPlan{plan, /*gap_samples=*/173}};
  chain.attach(stream);
  auto got = stream.run(point);
  EXPECT_TRUE(got.report.drained());
  EXPECT_EQ(got.point, expected);
}

TEST(ImpairStreamBatch, InterfererPlusChainStillMatches) {
  const auto& entry = phy::Registry::builtin().at(phy::Protocol::kZigbee);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  const auto& ble = phy::Registry::builtin().at(phy::Protocol::kBle);
  auto jam_tx = ble.make_tx();
  const auto plan = small_plan();
  phy::PhyTxInterferer jammer{*jam_tx, plan.payload_bytes};
  const phy::SweepPoint point{Dbm{-94.0}, Dbm{-96.0}};
  const FullChain chain;

  phy::LinkSimulator classic{*tx, *rx, plan};
  classic.add_interferer(jammer);
  chain.attach(classic);
  const auto expected = classic.run_point(point);

  StreamingLink stream{*tx, *rx, StreamPlan{plan, /*gap_samples=*/31}};
  stream.add_interferer(jammer);
  chain.attach(stream);
  auto got = stream.run(point);
  EXPECT_TRUE(got.report.drained());
  EXPECT_EQ(got.point, expected);
}

TEST(FlowThreadedImpairStream, ThreadedScheduleIsByteIdenticalToo) {
  const auto& entry = phy::Registry::builtin().at(phy::Protocol::kBle);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  const auto plan = small_plan();
  const phy::SweepPoint point{Dbm{-92.0}, std::nullopt};
  const FullChain chain;

  phy::LinkSimulator classic{*tx, *rx, plan};
  chain.attach(classic);
  const auto expected = classic.run_point(point);

  StreamingLink stream{*tx, *rx,
                       StreamPlan{plan, /*gap_samples=*/64,
                                  /*ring_capacity=*/1 << 10}};
  chain.attach(stream);
  auto got = stream.run(point, /*threaded=*/true);
  EXPECT_TRUE(got.report.drained());
  EXPECT_EQ(got.point, expected);
}

TEST(ImpairStreamBatch, TxOnlyAndRxOnlyChainsMatch) {
  const auto& entry = phy::Registry::builtin().at(phy::Protocol::kZigbee);
  auto tx = entry.make_tx();
  auto rx = entry.make_rx();
  const auto plan = small_plan();
  const phy::SweepPoint point{Dbm{-96.0}, std::nullopt};

  const impair::PaClip clip{0.9, 2.0};
  const impair::CfoDrift cfo{0.001};

  {
    phy::LinkSimulator classic{*tx, *rx, plan};
    classic.add_impairment(clip, impair::Stage::kTx);
    const auto expected = classic.run_point(point);
    StreamingLink stream{*tx, *rx, StreamPlan{plan, 0}};
    stream.add_impairment(clip, impair::Stage::kTx);
    EXPECT_EQ(stream.run(point).point, expected);
  }
  {
    phy::LinkSimulator classic{*tx, *rx, plan};
    classic.add_impairment(cfo, impair::Stage::kRx);
    const auto expected = classic.run_point(point);
    StreamingLink stream{*tx, *rx, StreamPlan{plan, 0}};
    stream.add_impairment(cfo, impair::Stage::kRx);
    EXPECT_EQ(stream.run(point).point, expected);
  }
}

}  // namespace
}  // namespace tinysdr::flow
