// Calibration blocks: DC removal (batch mean and streaming notch),
// blind Moseley–Slump IQ-imbalance estimation, and the autocorrelation
// CFO estimator — each proven to invert the matching impairment block.
#include "impair/correct.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "dsp/cfo.hpp"
#include "impair/impair.hpp"

namespace tinysdr::impair {
namespace {

std::vector<dsp::Complex> circular_signal(std::size_t n, std::uint64_t seed) {
  std::vector<dsp::Complex> x(n);
  Rng rng{seed, 3};
  for (auto& s : x)
    s = dsp::Complex{static_cast<float>(rng.next_gaussian()),
                     static_cast<float>(rng.next_gaussian())};
  return x;
}

TEST(RemoveDc, SubtractsTheMean) {
  auto x = circular_signal(4096, 11);
  DcOffset imp{{0.4f, -0.3f}};
  ImpairState st{Rng{1, 64}};
  imp.apply(x, st);

  const dsp::Complex removed = remove_dc(x);
  EXPECT_NEAR(removed.real(), 0.4f, 0.05);
  EXPECT_NEAR(removed.imag(), -0.3f, 0.05);

  double re = 0.0, im = 0.0;
  for (auto s : x) {
    re += s.real();
    im += s.imag();
  }
  EXPECT_NEAR(re / static_cast<double>(x.size()), 0.0, 1e-6);
  EXPECT_NEAR(im / static_cast<double>(x.size()), 0.0, 1e-6);
}

TEST(RemoveDc, EmptyCaptureIsSafe) {
  std::vector<dsp::Complex> empty;
  EXPECT_EQ(remove_dc(empty), (dsp::Complex{0.0f, 0.0f}));
}

TEST(DcNotch, ConvergesOntoTheOffset) {
  auto x = circular_signal(16384, 12);
  DcOffset imp{{0.5f, 0.25f}};
  ImpairState st{Rng{2, 64}};
  imp.apply(x, st);

  DcNotch notch;
  notch.process(x);
  EXPECT_NEAR(notch.dc().real(), 0.5f, 0.1);
  EXPECT_NEAR(notch.dc().imag(), 0.25f, 0.1);

  // Steady-state tail is centred again.
  double re = 0.0, im = 0.0;
  const std::size_t tail = 4096;
  for (std::size_t i = x.size() - tail; i < x.size(); ++i) {
    re += x[i].real();
    im += x[i].imag();
  }
  EXPECT_NEAR(re / tail, 0.0, 0.1);
  EXPECT_NEAR(im / tail, 0.0, 0.1);
}

TEST(DcNotch, ChunkedProcessingMatchesWhole) {
  auto whole = circular_signal(1000, 13);
  auto split = whole;
  DcNotch a, b;
  a.process(whole);
  for (std::size_t off = 0; off < split.size(); off += 37) {
    const std::size_t n = std::min<std::size_t>(37, split.size() - off);
    b.process(std::span<dsp::Complex>{split.data() + off, n});
  }
  EXPECT_EQ(whole, split);
}

TEST(IqImbalanceCorrection, RecoversTheInjectedParameters) {
  auto x = circular_signal(8192, 14);
  IqImbalance imp{1.5, 8.0};
  ImpairState st{Rng{3, 64}};
  imp.apply(x, st);

  const IqEstimate est = estimate_iq_imbalance(x);
  EXPECT_NEAR(est.gain_db(), 1.5, 0.2);
  // Blind second-order statistics over 8k gaussian samples: the phase
  // reading carries ~1.5 degrees of estimation noise at this length.
  EXPECT_NEAR(est.phase_deg(), 8.0, 2.0);
}

TEST(IqImbalanceCorrection, RoundTripsToTheCleanSignal) {
  const auto clean = circular_signal(8192, 15);
  auto x = clean;
  IqImbalance imp{2.0, 10.0};
  ImpairState st{Rng{4, 64}};
  imp.apply(x, st);
  correct_iq_imbalance(x);
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    worst = std::max<double>(worst, std::abs(x[i] - clean[i]));
  // Blind statistics over 8k samples: a few percent residual, far below
  // the injected distortion.
  EXPECT_LT(worst, 0.2);
  EXPECT_EQ(x[0].real(), clean[0].real());  // I rail untouched by model
}

TEST(IqImbalanceCorrection, DegenerateCaptureIsANoOp) {
  std::vector<dsp::Complex> x(64, dsp::Complex{0.0f, 0.0f});
  const auto est = estimate_iq_imbalance(x);
  correct_iq_imbalance(x, est);
  for (auto s : x) EXPECT_EQ(s, (dsp::Complex{0.0f, 0.0f}));
}

TEST(CfoEstimator, ReadsAPureToneExactly) {
  std::vector<dsp::Complex> x(2048, dsp::Complex{1.0f, 0.0f});
  dsp::mix_cfo(x, 0.01);
  EXPECT_NEAR(dsp::estimate_cfo(x), 0.01, 1e-4);
}

TEST(CfoEstimator, LagExtendsPrecisionNotRange) {
  std::vector<dsp::Complex> x(2048, dsp::Complex{1.0f, 0.0f});
  dsp::mix_cfo(x, 0.001);
  EXPECT_NEAR(dsp::estimate_cfo(x, {.lag = 64}), 0.001, 1e-6);
  // Beyond +-1/(2L) the long-lag estimate aliases; the short lag still
  // captures it.
  std::vector<dsp::Complex> fast(2048, dsp::Complex{1.0f, 0.0f});
  dsp::mix_cfo(fast, 0.02);
  EXPECT_NEAR(dsp::estimate_cfo(fast, {.lag = 1}), 0.02, 1e-4);
  EXPECT_GT(std::abs(dsp::estimate_cfo(fast, {.lag = 64}) - 0.02), 1e-3);
}

TEST(CfoEstimator, SquaringStripsBpskFlips) {
  // BPSK-looking stream: random pi flips every 8 samples, plus a real CFO.
  std::vector<dsp::Complex> x(4096);
  Rng rng{99, 1};
  float sign = 1.0f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (i % 8 == 0) sign = (rng.next_byte() & 1) != 0 ? 1.0f : -1.0f;
    x[i] = dsp::Complex{sign, 0.0f};
  }
  dsp::mix_cfo(x, 0.004);
  EXPECT_NEAR(dsp::estimate_cfo(x, {.lag = 16, .power = 2}), 0.004, 1e-4);
}

TEST(CfoEstimator, EdgeCasesAreFiniteZero) {
  std::vector<dsp::Complex> empty;
  EXPECT_EQ(dsp::estimate_cfo(empty), 0.0);
  std::vector<dsp::Complex> one(1, dsp::Complex{1.0f, 0.0f});
  EXPECT_EQ(dsp::estimate_cfo(one), 0.0);
  std::vector<dsp::Complex> zeros(128, dsp::Complex{0.0f, 0.0f});
  EXPECT_EQ(dsp::estimate_cfo(zeros), 0.0);
}

TEST(CfoCorrection, MixThenUnmixRoundTrips) {
  const auto clean = circular_signal(1024, 16);
  auto x = clean;
  dsp::mix_cfo(x, 0.0123);
  dsp::mix_cfo(x, -0.0123);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(x[i] - clean[i]), 0.0, 1e-4);
}

TEST(CfoCorrection, ImpairmentThenEstimateCorrectCancels) {
  std::vector<dsp::Complex> x(2048, dsp::Complex{1.0f, 0.0f});
  CfoDrift imp{0.007};
  ImpairState st{Rng{5, 64}};
  imp.apply(x, st);
  const double est = dsp::estimate_cfo(x);
  EXPECT_NEAR(est, 0.007, 1e-4);
  dsp::mix_cfo(x, -est);
  EXPECT_NEAR(std::abs(dsp::estimate_cfo(x)), 0.0, 1e-5);
}

}  // namespace
}  // namespace tinysdr::impair
