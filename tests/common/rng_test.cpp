#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tinysdr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng{11};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng{13};
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.next_below(8)];
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Rng rng{99};
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.next_gaussian();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, BoolProbability) {
  Rng rng{5};
  int trues = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.next_bool(0.25)) ++trues;
  EXPECT_NEAR(static_cast<double>(trues) / n, 0.25, 0.01);
}

}  // namespace
}  // namespace tinysdr
