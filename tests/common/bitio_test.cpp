#include "common/bitio.hpp"

#include <gtest/gtest.h>

namespace tinysdr {
namespace {

TEST(BitWriter, MsbFirstOrder) {
  BitWriter w;
  w.push_bits_msb_first(0b101, 3);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_TRUE(w.bits()[0]);
  EXPECT_FALSE(w.bits()[1]);
  EXPECT_TRUE(w.bits()[2]);
}

TEST(BitWriter, LsbFirstOrder) {
  BitWriter w;
  w.push_bits_lsb_first(0b101, 3);
  EXPECT_TRUE(w.bits()[0]);
  EXPECT_FALSE(w.bits()[1]);
  EXPECT_TRUE(w.bits()[2]);
  // For the palindrome 101 both orders agree; use asymmetric value too.
  BitWriter w2;
  w2.push_bits_lsb_first(0b001, 3);
  EXPECT_TRUE(w2.bits()[0]);
  EXPECT_FALSE(w2.bits()[1]);
  EXPECT_FALSE(w2.bits()[2]);
}

TEST(BitWriter, RejectsBadCounts) {
  BitWriter w;
  EXPECT_THROW(w.push_bits_msb_first(0, -1), std::invalid_argument);
  EXPECT_THROW(w.push_bits_lsb_first(0, 65), std::invalid_argument);
}

TEST(BitReader, RoundTripMsb) {
  BitWriter w;
  w.push_bits_msb_first(0xDEAD, 16);
  BitReader r{w.bits()};
  EXPECT_EQ(r.read_bits_msb_first(16), 0xDEADu);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitReader, RoundTripLsb) {
  BitWriter w;
  w.push_bits_lsb_first(0xBEEF, 16);
  BitReader r{w.bits()};
  EXPECT_EQ(r.read_bits_lsb_first(16), 0xBEEFu);
}

TEST(BitReader, ThrowsPastEnd) {
  BitWriter w;
  w.push_bit(true);
  BitReader r{w.bits()};
  r.read_bit();
  EXPECT_THROW(r.read_bit(), std::out_of_range);
  EXPECT_THROW(r.skip(1), std::out_of_range);
}

TEST(BytesBits, RoundTrip) {
  std::vector<std::uint8_t> bytes{0x00, 0xFF, 0xA5, 0x3C};
  auto bits = bytes_to_bits_lsb_first(bytes);
  ASSERT_EQ(bits.size(), 32u);
  EXPECT_EQ(bits_to_bytes_lsb_first(bits), bytes);
}

TEST(BytesBits, RaggedBitsThrow) {
  std::vector<bool> bits(9, false);
  EXPECT_THROW(bits_to_bytes_lsb_first(bits), std::invalid_argument);
}

TEST(BitWriter, PackLsbFirstPadsFinalByte) {
  BitWriter w;
  w.push_bits_lsb_first(0b111, 3);
  auto bytes = w.to_bytes_lsb_first();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x07);
}

}  // namespace
}  // namespace tinysdr
