#include "common/crc.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace tinysdr {
namespace {

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
  std::vector<std::uint8_t> data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(data), 0x29B1);
}

TEST(Crc16, EmptyIsInit) {
  EXPECT_EQ(crc16_ccitt(std::span<const std::uint8_t>{}), 0xFFFF);
}

TEST(Crc16, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data{0xDE, 0xAD, 0xBE, 0xEF};
  std::uint16_t good = crc16_ccitt(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = data;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc16_ccitt(corrupted), good)
          << "undetected flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926.
  std::vector<std::uint8_t> data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32_ieee(data), 0xCBF43926u);
}

TEST(BleCrc24, InitialState) {
  BleCrc24 crc;
  EXPECT_EQ(crc.value(), 0x555555u);
}

TEST(BleCrc24, ZeroBitsShiftState) {
  // Feeding zeros only shifts/feedbacks; state must stay within 24 bits.
  BleCrc24 crc;
  for (int i = 0; i < 100; ++i) crc.feed_bit(false);
  EXPECT_LE(crc.value(), 0xFFFFFFu);
}

TEST(BleCrc24, DetectsBitFlipInPdu) {
  std::vector<std::uint8_t> pdu{0x42, 0x10, 0x01, 0x02, 0x03};
  std::uint32_t good = ble_crc24(pdu);
  for (std::size_t byte = 0; byte < pdu.size(); ++byte) {
    auto corrupted = pdu;
    corrupted[byte] ^= 0x01;
    EXPECT_NE(ble_crc24(corrupted), good);
  }
}

TEST(BleCrc24, LinearityProperty) {
  // CRC of x ^ e equals CRC of x ^ CRC0(e) ^ CRC0(0) for LFSR CRCs with the
  // same length input — verify the weaker property that equal PDUs give
  // equal CRCs and order matters.
  std::vector<std::uint8_t> a{0x01, 0x02};
  std::vector<std::uint8_t> b{0x02, 0x01};
  EXPECT_EQ(ble_crc24(a), ble_crc24(a));
  EXPECT_NE(ble_crc24(a), ble_crc24(b));
}

TEST(BleCrc24, DifferentInitDifferentResult) {
  std::vector<std::uint8_t> pdu{0xAA, 0xBB};
  EXPECT_NE(ble_crc24(pdu, 0x555555), ble_crc24(pdu, 0x000000));
}

}  // namespace
}  // namespace tinysdr
