#include "common/units.hpp"

#include <gtest/gtest.h>

namespace tinysdr {
namespace {

TEST(Dbm, LinearConversionRoundTrip) {
  Dbm p{14.0};
  EXPECT_NEAR(p.milliwatts(), 25.1188, 1e-3);
  EXPECT_NEAR(Dbm::from_milliwatts(p.milliwatts()).value(), 14.0, 1e-9);
}

TEST(Dbm, ZeroDbmIsOneMilliwatt) {
  EXPECT_NEAR(Dbm{0.0}.milliwatts(), 1.0, 1e-12);
}

TEST(Dbm, FromNonPositiveThrows) {
  EXPECT_THROW(Dbm::from_milliwatts(0.0), std::domain_error);
  EXPECT_THROW(Dbm::from_milliwatts(-1.0), std::domain_error);
}

TEST(Dbm, DbOffsetArithmetic) {
  Dbm p{10.0};
  EXPECT_DOUBLE_EQ((p + 3.0).value(), 13.0);
  EXPECT_DOUBLE_EQ((p - 20.0).value(), -10.0);
  EXPECT_DOUBLE_EQ(Dbm{14.0} - Dbm{-126.0}, 140.0);
}

TEST(Milliwatts, MicrowattConversions) {
  auto p = Milliwatts::from_microwatts(30.0);
  EXPECT_NEAR(p.value(), 0.03, 1e-12);
  EXPECT_NEAR(p.microwatts(), 30.0, 1e-9);
}

TEST(Milliwatts, VoltsTimesMilliamps) {
  auto p = Milliwatts::from_volts_milliamps(3.7, 10.0);
  EXPECT_NEAR(p.value(), 37.0, 1e-12);
}

TEST(Hertz, Conversions) {
  auto f = Hertz::from_megahertz(915.0);
  EXPECT_NEAR(f.value(), 915e6, 1.0);
  EXPECT_NEAR(f.kilohertz(), 915000.0, 1e-6);
  EXPECT_NEAR(Hertz::from_kilohertz(125.0).value(), 125000.0, 1e-9);
}

TEST(Seconds, Conversions) {
  auto t = Seconds::from_microseconds(220.0);
  EXPECT_NEAR(t.milliseconds(), 0.22, 1e-12);
  EXPECT_NEAR(Seconds::from_milliseconds(22.0).value(), 0.022, 1e-15);
}

TEST(Energy, PowerTimesTime) {
  Millijoules e = Milliwatts{287.0} * Seconds{2.0};
  EXPECT_NEAR(e.value(), 574.0, 1e-9);
  EXPECT_NEAR((Seconds{2.0} * Milliwatts{287.0}).value(), 574.0, 1e-9);
}

TEST(Battery, EnergyAndLifetime) {
  BatteryCapacity battery{1000.0, 3.7};
  // 1000 mAh * 3.7 V = 3.7 Wh = 13320 J.
  EXPECT_NEAR(battery.energy().joules(), 13320.0, 1.0);
  // At the paper's 30 uW sleep power the battery lasts > 14 years.
  Seconds life = battery.lifetime_at(Milliwatts::from_microwatts(30.0));
  EXPECT_GT(life.value() / 86400.0 / 365.0, 14.0);
}

TEST(Battery, LifetimeRejectsNonPositiveDraw) {
  BatteryCapacity battery{1000.0, 3.7};
  EXPECT_THROW(battery.lifetime_at(Milliwatts{0.0}), std::domain_error);
}

}  // namespace
}  // namespace tinysdr
