#include "fpga/fifo.hpp"

#include <gtest/gtest.h>

namespace tinysdr::fpga {
namespace {

TEST(SampleFifo, CapacityFromBramBudget) {
  SampleFifo fifo;  // default 126 kB
  EXPECT_EQ(fifo.capacity(), 126u * 1024u / 4u);
}

TEST(SampleFifo, FifoOrder) {
  SampleFifo fifo{64};
  fifo.push(radio::IqWord{1, 2, false, false});
  fifo.push(radio::IqWord{3, 4, false, false});
  auto a = fifo.pop();
  auto b = fifo.pop();
  EXPECT_EQ(a.i, 1);
  EXPECT_EQ(b.i, 3);
  EXPECT_TRUE(fifo.empty());
}

TEST(SampleFifo, UnderflowThrows) {
  SampleFifo fifo{64};
  EXPECT_THROW(fifo.pop(), std::underflow_error);
}

TEST(SampleFifo, OverflowDropsAndCounts) {
  SampleFifo fifo{8};  // 2 entries
  fifo.push(radio::IqWord{1, 0, false, false});
  fifo.push(radio::IqWord{2, 0, false, false});
  EXPECT_TRUE(fifo.full());
  fifo.push(radio::IqWord{3, 0, false, false});
  EXPECT_EQ(fifo.overflow_count(), 1u);
  EXPECT_EQ(fifo.size(), 2u);
  // Data already queued is intact.
  EXPECT_EQ(fifo.pop().i, 1);
}

TEST(SampleFifo, BufferSecondsAt4MHz) {
  SampleFifo fifo;
  // 32256 entries at 4 MHz ~ 8 ms of signal.
  EXPECT_NEAR(fifo.buffer_seconds(4e6) * 1e3, 8.06, 0.1);
}

TEST(SampleFifo, BufferHoldsMultipleLoraSymbols) {
  // An SF12 symbol at critical sampling is 4096 samples; the FIFO must
  // buffer several (needed by the demodulator pipeline).
  SampleFifo fifo;
  EXPECT_GT(fifo.capacity(), 4096u * 4u);
}

TEST(SampleFifo, ZeroCapacityRejected) {
  EXPECT_THROW(SampleFifo{0}, std::invalid_argument);
}

TEST(SampleFifo, ClearEmptiesWithoutTouchingOverflowCount) {
  SampleFifo fifo{4};  // 1 entry
  fifo.push(radio::IqWord{1, 0, false, false});
  fifo.push(radio::IqWord{2, 0, false, false});
  EXPECT_EQ(fifo.overflow_count(), 1u);
  fifo.clear();
  EXPECT_TRUE(fifo.empty());
  EXPECT_EQ(fifo.overflow_count(), 1u);
}

}  // namespace
}  // namespace tinysdr::fpga
