#include "fpga/bitstream.hpp"

#include <gtest/gtest.h>

#include "common/crc.hpp"
#include "fpga/programming.hpp"

namespace tinysdr::fpga {
namespace {

TEST(Bitstream, SizeIs579kB) {
  Rng rng{1};
  auto img = generate_bitstream(lora_rx_design(8), DeviceSpec{}, rng);
  EXPECT_EQ(img.size(), 579u * 1024u);
}

TEST(Bitstream, CrcMatchesContent) {
  Rng rng{2};
  auto img = generate_bitstream(ble_tx_design(), DeviceSpec{}, rng);
  EXPECT_EQ(img.crc32, crc32_ieee(img.data));
}

TEST(Bitstream, DensityScalesWithUtilization) {
  Rng rng1{3}, rng2{3};
  auto lora = generate_bitstream(lora_rx_design(8), DeviceSpec{}, rng1);
  auto ble = generate_bitstream(ble_tx_design(), DeviceSpec{}, rng2);
  auto nonzero = [](const FirmwareImage& img) {
    std::size_t n = 0;
    for (auto b : img.data)
      if (b != 0) ++n;
    return n;
  };
  EXPECT_GT(nonzero(lora), nonzero(ble));
}

TEST(McuProgram, RequestedSize) {
  Rng rng{4};
  auto img = generate_mcu_program("lora_mcu", 78 * 1024, rng);
  EXPECT_EQ(img.size(), 78u * 1024u);
  EXPECT_EQ(img.name, "lora_mcu");
}

TEST(McuProgram, MixedEntropy) {
  // Program images must be neither all-zero nor fully random: check both
  // zero runs and byte diversity exist.
  Rng rng{5};
  auto img = generate_mcu_program("x", 32 * 1024, rng);
  std::size_t zeros = 0;
  bool diverse[256] = {};
  std::size_t distinct = 0;
  for (auto b : img.data) {
    if (b == 0) ++zeros;
    if (!diverse[b]) {
      diverse[b] = true;
      ++distinct;
    }
  }
  EXPECT_GT(zeros, img.size() / 20);
  EXPECT_LT(zeros, img.size() / 2);
  EXPECT_GT(distinct, 100u);
}

TEST(Programming, LoadTimeMatches22ms) {
  // 579 kB over quad-SPI at 62 MHz + overhead = ~22 ms (Table 4 / §3.4).
  ProgrammingModel prog;
  Seconds t = prog.load_time(579 * 1024);
  EXPECT_NEAR(t.milliseconds(), 22.0, 1.0);
}

TEST(Programming, LinkRateIsQuadSpi) {
  ProgrammingModel prog;
  EXPECT_NEAR(prog.link_bps(), 248e6, 1e3);
}

TEST(Programming, SmallerImageLoadsFaster) {
  ProgrammingModel prog;
  EXPECT_LT(prog.load_time(100 * 1024).value(),
            prog.load_time(579 * 1024).value());
}

}  // namespace
}  // namespace tinysdr::fpga
