#include "fpga/microsd.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tinysdr::fpga {
namespace {

std::vector<radio::IqWord> random_words(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<radio::IqWord> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back({static_cast<std::int32_t>(rng.next_below(8192)) - 4096,
                   static_cast<std::int32_t>(rng.next_below(8192)) - 4096,
                   false, false});
  return out;
}

TEST(Iq26Packing, RoundTrip) {
  auto words = random_words(100, 1);
  auto packed = pack_iq26(words);
  auto back = unpack_iq26(packed, words.size());
  ASSERT_EQ(back.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(back[i].i, words[i].i) << i;
    EXPECT_EQ(back[i].q, words[i].q) << i;
  }
}

TEST(Iq26Packing, PackedSizeIs26BitsPerSample) {
  auto words = random_words(157, 2);
  auto packed = pack_iq26(words);
  EXPECT_EQ(packed.size(), (157 * 26 + 7) / 8);
}

TEST(Iq26Packing, UnpackRejectsShortBuffer) {
  std::vector<std::uint8_t> tiny(3, 0);
  EXPECT_THROW(unpack_iq26(tiny, 2), std::invalid_argument);
}

TEST(RecordingRate, MatchesPaper104Mbps) {
  // §3.2.2: SPI mode "supports the 104 Mbps data rate which we need to
  // write data in real time" — 4 Msps x 26 bits.
  EXPECT_DOUBLE_EQ(recording_rate_bps(4e6), 104e6);
}

TEST(MicroSdCard, BlockWritesAndReads) {
  MicroSdCard card;
  std::vector<std::uint8_t> block(512, 0xAB);
  card.write_block(block);
  EXPECT_EQ(card.bytes_written(), 512u);
  EXPECT_EQ(card.read(0, 512), block);
}

TEST(MicroSdCard, PartialBlockPadded) {
  MicroSdCard card;
  card.write_block(std::vector<std::uint8_t>(100, 0xFF));
  EXPECT_EQ(card.bytes_written(), 512u);
  EXPECT_EQ(card.read(100, 1)[0], 0x00);
}

TEST(MicroSdCard, OversizeBlockRejected) {
  MicroSdCard card;
  EXPECT_THROW(card.write_block(std::vector<std::uint8_t>(513, 0)),
               std::invalid_argument);
}

TEST(MicroSdCard, CapacityInMinutesAt4Msps) {
  MicroSdCard card;  // 2 GB
  double seconds = card.capacity_seconds(4e6);
  // 2 GB at 13 MB/s ~ 165 s of raw I/Q.
  EXPECT_GT(seconds, 120.0);
  EXPECT_LT(seconds, 300.0);
}

TEST(SampleRecorder, RealtimeFeasibleAt4Msps) {
  MicroSdCard card;
  SampleRecorder rec{card, Hertz::from_megahertz(4.0)};
  EXPECT_TRUE(rec.realtime_feasible());
  // FIFO rides out a worst-case block program latency many times over.
  EXPECT_GT(rec.stall_margin(), 10.0);
}

TEST(SampleRecorder, NotFeasibleBeyondSpiRate) {
  MicroSdSpec slow;
  slow.write_bps = 50e6;
  MicroSdCard card{slow};
  SampleRecorder rec{card, Hertz::from_megahertz(4.0)};
  EXPECT_FALSE(rec.realtime_feasible());
}

TEST(SampleRecorder, RecordsAndRecoversStream) {
  MicroSdCard card;
  SampleRecorder rec{card, Hertz::from_megahertz(4.0)};
  auto words = random_words(1000, 3);
  std::size_t dropped = rec.record(words);
  rec.flush();
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(rec.samples_recorded(), 1000u);

  // Read back the first full block's worth and compare.
  const std::size_t per_block = 512 * 8 / kBitsPerSample;
  auto bytes = card.read(0, (per_block * kBitsPerSample + 7) / 8);
  auto back = unpack_iq26(bytes, per_block);
  for (std::size_t i = 0; i < per_block; ++i) {
    EXPECT_EQ(back[i].i, words[i].i) << i;
    EXPECT_EQ(back[i].q, words[i].q) << i;
  }
}

TEST(SampleRecorder, MultipleRecordCallsAreContinuous) {
  MicroSdCard card;
  SampleRecorder rec{card, Hertz::from_megahertz(4.0)};
  auto words = random_words(400, 4);
  std::span<const radio::IqWord> span{words};
  rec.record(span.subspan(0, 150));
  rec.record(span.subspan(150, 150));
  rec.record(span.subspan(300));
  rec.flush();
  EXPECT_EQ(rec.samples_recorded(), 400u);
}

}  // namespace
}  // namespace tinysdr::fpga
