#include "fpga/resources.hpp"

#include <gtest/gtest.h>

namespace tinysdr::fpga {
namespace {

TEST(Table6, LoraTxIs976LutsForEverySf) {
  // Table 6: the modulator cost does not depend on SF.
  Design d = lora_tx_design();
  EXPECT_EQ(d.total_luts(), 976u);
  DeviceSpec dev;
  EXPECT_NEAR(d.utilization(dev), 0.0407, 0.001);  // "4%"
}

class Table6RxSweep
    : public ::testing::TestWithParam<std::pair<int, std::uint32_t>> {};

TEST_P(Table6RxSweep, DemodulatorLutsMatchTable6) {
  auto [sf, expected] = GetParam();
  EXPECT_EQ(lora_rx_design(sf).total_luts(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllSf, Table6RxSweep,
    ::testing::Values(std::pair{6, 2656u}, std::pair{7, 2670u},
                      std::pair{8, 2700u}, std::pair{9, 2742u},
                      std::pair{10, 2786u}, std::pair{11, 2794u},
                      std::pair{12, 2818u}));

TEST(Table6, RxUtilizationPercentages) {
  DeviceSpec dev;
  // Paper quotes 10-11%; with the 24k-LUT denominator the exact counts
  // land at 11.07-11.74%.
  EXPECT_NEAR(lora_rx_design(6).utilization(dev) * 100.0, 11.0, 0.8);
  EXPECT_NEAR(lora_rx_design(8).utilization(dev) * 100.0, 11.25, 0.5);
  EXPECT_NEAR(lora_rx_design(12).utilization(dev) * 100.0, 11.74, 0.8);
}

TEST(BleDesign, ThreePercentUtilization) {
  DeviceSpec dev;
  EXPECT_NEAR(ble_tx_design().utilization(dev) * 100.0, 3.0, 0.2);
}

TEST(ConcurrentDesign, SeventeenPercentForDualSf8) {
  DeviceSpec dev;
  double util = concurrent_rx_design({8, 8}).utilization(dev) * 100.0;
  EXPECT_NEAR(util, 17.0, 1.0);
}

TEST(ConcurrentDesign, SharedFrontEndCheaperThanTwoFullDemods) {
  std::uint32_t dual = concurrent_rx_design({8, 8}).total_luts();
  std::uint32_t two_full = 2 * lora_rx_design(8).total_luts();
  EXPECT_LT(dual, two_full);
}

TEST(Design, EverythingFitsTogether) {
  // The paper: "sufficient resources to support multiple configurations of
  // LoRa and still leave space for other custom operations."
  DeviceSpec dev;
  Design combo{"combo"};
  combo.add(Block::kIqDeserializer)
      .add(Block::kIqSerializer)
      .add(Block::kFir14)
      .add(Block::kChirpGenerator)
      .add(Block::kLoraPacketGen);
  for (int sf = 6; sf <= 12; ++sf) combo.add_fft(sf);
  EXPECT_TRUE(combo.fits(dev));
  EXPECT_LT(combo.utilization(dev), 0.5);
}

TEST(Design, FftRejectsBadSf) {
  EXPECT_THROW(fft_luts(5), std::invalid_argument);
  EXPECT_THROW(fft_luts(13), std::invalid_argument);
  Design d{"x"};
  EXPECT_THROW(d.add_fft(13), std::invalid_argument);
}

TEST(Design, BramAccountingAndOverflow) {
  DeviceSpec dev;
  Design d{"hog"};
  d.add_bram_bytes(dev.bram_bytes + 1);
  EXPECT_FALSE(d.fits(dev));
}

TEST(Design, BreakdownSumsToTotal) {
  Design d = lora_rx_design(9);
  std::uint32_t sum = 0;
  for (const auto& [name, luts] : d.breakdown()) {
    EXPECT_FALSE(name.empty());
    sum += luts;
  }
  EXPECT_EQ(sum, d.total_luts());
}

TEST(Design, AddRejectsNonPositiveCount) {
  Design d{"x"};
  EXPECT_THROW(d.add(Block::kFir14, 0), std::invalid_argument);
  EXPECT_THROW(d.add_fft(8, -1), std::invalid_argument);
}

}  // namespace
}  // namespace tinysdr::fpga
