#include "sim/faults.hpp"

#include <gtest/gtest.h>

namespace tinysdr::sim {
namespace {

TEST(FaultPlan, NoneIsInert) {
  auto plan = FaultPlan::none();
  EXPECT_FALSE(plan.any());
  FaultInjector inj{plan};
  EXPECT_FALSE(inj.corrupt_packet());
  EXPECT_FALSE(inj.duplicate_packet());
  EXPECT_FALSE(inj.reorder_packet());
  EXPECT_FALSE(inj.brownout_due(1 << 20));
  EXPECT_FALSE(inj.page_program_fault(0, 256).has_value());
  EXPECT_FALSE(inj.sector_erase_fault(0));
  EXPECT_EQ(inj.jitter(Seconds{1.0}).value(), 1.0);
}

TEST(FaultPlan, AnyDetectsEachDimension) {
  FaultPlan p;
  p.corrupt_rate = 0.1;
  EXPECT_TRUE(p.any());
  p = FaultPlan::none();
  p.burst = channel::GilbertElliottParams{};
  EXPECT_TRUE(p.any());
  p = FaultPlan::none();
  p.brownout_at_byte = 100;
  EXPECT_TRUE(p.any());
  p = FaultPlan::none();
  p.page_program_failure_rate = 0.5;
  EXPECT_TRUE(p.any());
}

TEST(FaultInjector, RatesConvergeAndCount) {
  FaultPlan plan;
  plan.seed = 99;
  plan.corrupt_rate = 0.25;
  FaultInjector inj{plan};
  int fired = 0;
  for (int i = 0; i < 20000; ++i) fired += inj.corrupt_packet() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(fired) / 20000.0, 0.25, 0.02);
  EXPECT_EQ(inj.counters().corrupted, static_cast<std::size_t>(fired));
}

TEST(FaultInjector, BrownoutFiresExactlyOnceAtCrossing) {
  FaultPlan plan;
  plan.brownout_at_byte = 1000;
  FaultInjector inj{plan};
  EXPECT_FALSE(inj.brownout_due(999));
  EXPECT_TRUE(inj.brownout_due(1000));
  EXPECT_FALSE(inj.brownout_due(2000));  // one-shot
  EXPECT_EQ(inj.counters().brownouts, 1u);
}

TEST(FaultInjector, FlashFaultsRespectRegion) {
  FaultPlan plan;
  plan.seed = 5;
  plan.page_program_failure_rate = 1.0;
  plan.sector_erase_failure_rate = 1.0;
  plan.flash_fault_region = FlashRegion{0x1000, 0x1000};
  FaultInjector inj{plan};
  EXPECT_FALSE(inj.page_program_fault(0x0FFF, 256).has_value());
  EXPECT_TRUE(inj.page_program_fault(0x1000, 256).has_value());
  EXPECT_FALSE(inj.page_program_fault(0x2000, 256).has_value());
  EXPECT_TRUE(inj.sector_erase_fault(0x1800));
  EXPECT_FALSE(inj.sector_erase_fault(0x3000));
}

TEST(FaultInjector, PageFaultCommitsAPrefixWithTornByte) {
  FaultPlan plan;
  plan.seed = 11;
  plan.page_program_failure_rate = 1.0;
  FaultInjector inj{plan};
  auto fault = inj.page_program_fault(0, 256);
  ASSERT_TRUE(fault.has_value());
  EXPECT_LT(fault->committed, 256u);
  EXPECT_NE(fault->torn_keep_mask, 0);  // a torn byte keeps some bits stuck
}

TEST(FaultInjector, JitterStaysWithinBand) {
  FaultPlan plan;
  plan.seed = 3;
  plan.timeout_jitter = 0.5;
  FaultInjector inj{plan};
  for (int i = 0; i < 1000; ++i) {
    double v = inj.jitter(Seconds{1.0}).value();
    EXPECT_GE(v, 0.5);
    EXPECT_LE(v, 1.5);
  }
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultPlan plan;
  plan.seed = 0xDEAD;
  plan.corrupt_rate = 0.3;
  plan.duplicate_rate = 0.2;
  plan.reorder_rate = 0.1;
  FaultInjector a{plan};
  FaultInjector b{plan};
  for (int i = 0; i < 3000; ++i) {
    EXPECT_EQ(a.corrupt_packet(), b.corrupt_packet());
    EXPECT_EQ(a.duplicate_packet(), b.duplicate_packet());
    EXPECT_EQ(a.reorder_packet(), b.reorder_packet());
  }
}

}  // namespace
}  // namespace tinysdr::sim
