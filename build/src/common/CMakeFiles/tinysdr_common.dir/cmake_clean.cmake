file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_common.dir/aes.cpp.o"
  "CMakeFiles/tinysdr_common.dir/aes.cpp.o.d"
  "libtinysdr_common.a"
  "libtinysdr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
