file(REMOVE_RECURSE
  "libtinysdr_common.a"
)
