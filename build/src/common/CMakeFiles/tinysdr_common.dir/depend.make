# Empty dependencies file for tinysdr_common.
# This may be replaced when dependencies are built.
