# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("dsp")
subdirs("channel")
subdirs("radio")
subdirs("fpga")
subdirs("power")
subdirs("mcu")
subdirs("lora")
subdirs("ble")
subdirs("zigbee")
subdirs("sigfox")
subdirs("nbiot")
subdirs("ota")
subdirs("testbed")
subdirs("flow")
subdirs("core")
