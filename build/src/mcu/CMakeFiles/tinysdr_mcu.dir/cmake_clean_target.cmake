file(REMOVE_RECURSE
  "libtinysdr_mcu.a"
)
