# Empty compiler generated dependencies file for tinysdr_mcu.
# This may be replaced when dependencies are built.
