file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_mcu.dir/msp432.cpp.o"
  "CMakeFiles/tinysdr_mcu.dir/msp432.cpp.o.d"
  "libtinysdr_mcu.a"
  "libtinysdr_mcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_mcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
