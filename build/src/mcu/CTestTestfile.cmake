# CMake generated Testfile for 
# Source directory: /root/repo/src/mcu
# Build directory: /root/repo/build/src/mcu
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
