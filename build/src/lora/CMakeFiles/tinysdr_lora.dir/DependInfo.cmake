
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lora/chirp.cpp" "src/lora/CMakeFiles/tinysdr_lora.dir/chirp.cpp.o" "gcc" "src/lora/CMakeFiles/tinysdr_lora.dir/chirp.cpp.o.d"
  "/root/repo/src/lora/coding.cpp" "src/lora/CMakeFiles/tinysdr_lora.dir/coding.cpp.o" "gcc" "src/lora/CMakeFiles/tinysdr_lora.dir/coding.cpp.o.d"
  "/root/repo/src/lora/demodulator.cpp" "src/lora/CMakeFiles/tinysdr_lora.dir/demodulator.cpp.o" "gcc" "src/lora/CMakeFiles/tinysdr_lora.dir/demodulator.cpp.o.d"
  "/root/repo/src/lora/mac.cpp" "src/lora/CMakeFiles/tinysdr_lora.dir/mac.cpp.o" "gcc" "src/lora/CMakeFiles/tinysdr_lora.dir/mac.cpp.o.d"
  "/root/repo/src/lora/modulator.cpp" "src/lora/CMakeFiles/tinysdr_lora.dir/modulator.cpp.o" "gcc" "src/lora/CMakeFiles/tinysdr_lora.dir/modulator.cpp.o.d"
  "/root/repo/src/lora/packet.cpp" "src/lora/CMakeFiles/tinysdr_lora.dir/packet.cpp.o" "gcc" "src/lora/CMakeFiles/tinysdr_lora.dir/packet.cpp.o.d"
  "/root/repo/src/lora/params.cpp" "src/lora/CMakeFiles/tinysdr_lora.dir/params.cpp.o" "gcc" "src/lora/CMakeFiles/tinysdr_lora.dir/params.cpp.o.d"
  "/root/repo/src/lora/rate_adapt.cpp" "src/lora/CMakeFiles/tinysdr_lora.dir/rate_adapt.cpp.o" "gcc" "src/lora/CMakeFiles/tinysdr_lora.dir/rate_adapt.cpp.o.d"
  "/root/repo/src/lora/sx1276.cpp" "src/lora/CMakeFiles/tinysdr_lora.dir/sx1276.cpp.o" "gcc" "src/lora/CMakeFiles/tinysdr_lora.dir/sx1276.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tinysdr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/tinysdr_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/tinysdr_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/tinysdr_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
