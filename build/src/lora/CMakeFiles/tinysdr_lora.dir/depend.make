# Empty dependencies file for tinysdr_lora.
# This may be replaced when dependencies are built.
