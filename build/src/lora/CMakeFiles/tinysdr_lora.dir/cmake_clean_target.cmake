file(REMOVE_RECURSE
  "libtinysdr_lora.a"
)
