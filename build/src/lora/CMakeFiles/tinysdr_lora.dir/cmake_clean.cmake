file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_lora.dir/chirp.cpp.o"
  "CMakeFiles/tinysdr_lora.dir/chirp.cpp.o.d"
  "CMakeFiles/tinysdr_lora.dir/coding.cpp.o"
  "CMakeFiles/tinysdr_lora.dir/coding.cpp.o.d"
  "CMakeFiles/tinysdr_lora.dir/demodulator.cpp.o"
  "CMakeFiles/tinysdr_lora.dir/demodulator.cpp.o.d"
  "CMakeFiles/tinysdr_lora.dir/mac.cpp.o"
  "CMakeFiles/tinysdr_lora.dir/mac.cpp.o.d"
  "CMakeFiles/tinysdr_lora.dir/modulator.cpp.o"
  "CMakeFiles/tinysdr_lora.dir/modulator.cpp.o.d"
  "CMakeFiles/tinysdr_lora.dir/packet.cpp.o"
  "CMakeFiles/tinysdr_lora.dir/packet.cpp.o.d"
  "CMakeFiles/tinysdr_lora.dir/params.cpp.o"
  "CMakeFiles/tinysdr_lora.dir/params.cpp.o.d"
  "CMakeFiles/tinysdr_lora.dir/rate_adapt.cpp.o"
  "CMakeFiles/tinysdr_lora.dir/rate_adapt.cpp.o.d"
  "CMakeFiles/tinysdr_lora.dir/sx1276.cpp.o"
  "CMakeFiles/tinysdr_lora.dir/sx1276.cpp.o.d"
  "libtinysdr_lora.a"
  "libtinysdr_lora.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_lora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
