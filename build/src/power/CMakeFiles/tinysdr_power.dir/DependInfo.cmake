
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/domains.cpp" "src/power/CMakeFiles/tinysdr_power.dir/domains.cpp.o" "gcc" "src/power/CMakeFiles/tinysdr_power.dir/domains.cpp.o.d"
  "/root/repo/src/power/ledger.cpp" "src/power/CMakeFiles/tinysdr_power.dir/ledger.cpp.o" "gcc" "src/power/CMakeFiles/tinysdr_power.dir/ledger.cpp.o.d"
  "/root/repo/src/power/platform_power.cpp" "src/power/CMakeFiles/tinysdr_power.dir/platform_power.cpp.o" "gcc" "src/power/CMakeFiles/tinysdr_power.dir/platform_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tinysdr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/tinysdr_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/tinysdr_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/tinysdr_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
