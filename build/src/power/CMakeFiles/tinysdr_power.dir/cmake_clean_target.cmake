file(REMOVE_RECURSE
  "libtinysdr_power.a"
)
