# Empty dependencies file for tinysdr_power.
# This may be replaced when dependencies are built.
