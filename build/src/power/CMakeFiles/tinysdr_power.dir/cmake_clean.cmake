file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_power.dir/domains.cpp.o"
  "CMakeFiles/tinysdr_power.dir/domains.cpp.o.d"
  "CMakeFiles/tinysdr_power.dir/ledger.cpp.o"
  "CMakeFiles/tinysdr_power.dir/ledger.cpp.o.d"
  "CMakeFiles/tinysdr_power.dir/platform_power.cpp.o"
  "CMakeFiles/tinysdr_power.dir/platform_power.cpp.o.d"
  "libtinysdr_power.a"
  "libtinysdr_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
