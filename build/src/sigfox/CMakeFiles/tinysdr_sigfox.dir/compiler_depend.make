# Empty compiler generated dependencies file for tinysdr_sigfox.
# This may be replaced when dependencies are built.
