file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_sigfox.dir/unb.cpp.o"
  "CMakeFiles/tinysdr_sigfox.dir/unb.cpp.o.d"
  "libtinysdr_sigfox.a"
  "libtinysdr_sigfox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_sigfox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
