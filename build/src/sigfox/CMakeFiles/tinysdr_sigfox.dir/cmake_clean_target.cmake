file(REMOVE_RECURSE
  "libtinysdr_sigfox.a"
)
