file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_radio.dir/at86rf215.cpp.o"
  "CMakeFiles/tinysdr_radio.dir/at86rf215.cpp.o.d"
  "CMakeFiles/tinysdr_radio.dir/builtin_modem.cpp.o"
  "CMakeFiles/tinysdr_radio.dir/builtin_modem.cpp.o.d"
  "CMakeFiles/tinysdr_radio.dir/frontend.cpp.o"
  "CMakeFiles/tinysdr_radio.dir/frontend.cpp.o.d"
  "CMakeFiles/tinysdr_radio.dir/lvds.cpp.o"
  "CMakeFiles/tinysdr_radio.dir/lvds.cpp.o.d"
  "CMakeFiles/tinysdr_radio.dir/quantizer.cpp.o"
  "CMakeFiles/tinysdr_radio.dir/quantizer.cpp.o.d"
  "libtinysdr_radio.a"
  "libtinysdr_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
