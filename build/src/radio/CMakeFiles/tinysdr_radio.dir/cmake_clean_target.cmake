file(REMOVE_RECURSE
  "libtinysdr_radio.a"
)
