
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/at86rf215.cpp" "src/radio/CMakeFiles/tinysdr_radio.dir/at86rf215.cpp.o" "gcc" "src/radio/CMakeFiles/tinysdr_radio.dir/at86rf215.cpp.o.d"
  "/root/repo/src/radio/builtin_modem.cpp" "src/radio/CMakeFiles/tinysdr_radio.dir/builtin_modem.cpp.o" "gcc" "src/radio/CMakeFiles/tinysdr_radio.dir/builtin_modem.cpp.o.d"
  "/root/repo/src/radio/frontend.cpp" "src/radio/CMakeFiles/tinysdr_radio.dir/frontend.cpp.o" "gcc" "src/radio/CMakeFiles/tinysdr_radio.dir/frontend.cpp.o.d"
  "/root/repo/src/radio/lvds.cpp" "src/radio/CMakeFiles/tinysdr_radio.dir/lvds.cpp.o" "gcc" "src/radio/CMakeFiles/tinysdr_radio.dir/lvds.cpp.o.d"
  "/root/repo/src/radio/quantizer.cpp" "src/radio/CMakeFiles/tinysdr_radio.dir/quantizer.cpp.o" "gcc" "src/radio/CMakeFiles/tinysdr_radio.dir/quantizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tinysdr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/tinysdr_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
