# Empty dependencies file for tinysdr_radio.
# This may be replaced when dependencies are built.
