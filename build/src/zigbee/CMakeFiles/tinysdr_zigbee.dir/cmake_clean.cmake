file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_zigbee.dir/oqpsk.cpp.o"
  "CMakeFiles/tinysdr_zigbee.dir/oqpsk.cpp.o.d"
  "libtinysdr_zigbee.a"
  "libtinysdr_zigbee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_zigbee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
