file(REMOVE_RECURSE
  "libtinysdr_zigbee.a"
)
