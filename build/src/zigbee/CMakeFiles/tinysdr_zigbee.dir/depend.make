# Empty dependencies file for tinysdr_zigbee.
# This may be replaced when dependencies are built.
