file(REMOVE_RECURSE
  "libtinysdr_flow.a"
)
