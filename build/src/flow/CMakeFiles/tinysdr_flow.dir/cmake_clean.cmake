file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_flow.dir/graph.cpp.o"
  "CMakeFiles/tinysdr_flow.dir/graph.cpp.o.d"
  "libtinysdr_flow.a"
  "libtinysdr_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
