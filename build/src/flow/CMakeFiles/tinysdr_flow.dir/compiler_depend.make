# Empty compiler generated dependencies file for tinysdr_flow.
# This may be replaced when dependencies are built.
