
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/graph.cpp" "src/flow/CMakeFiles/tinysdr_flow.dir/graph.cpp.o" "gcc" "src/flow/CMakeFiles/tinysdr_flow.dir/graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tinysdr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/tinysdr_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/tinysdr_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
