file(REMOVE_RECURSE
  "libtinysdr_fpga.a"
)
