
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/bitstream.cpp" "src/fpga/CMakeFiles/tinysdr_fpga.dir/bitstream.cpp.o" "gcc" "src/fpga/CMakeFiles/tinysdr_fpga.dir/bitstream.cpp.o.d"
  "/root/repo/src/fpga/microsd.cpp" "src/fpga/CMakeFiles/tinysdr_fpga.dir/microsd.cpp.o" "gcc" "src/fpga/CMakeFiles/tinysdr_fpga.dir/microsd.cpp.o.d"
  "/root/repo/src/fpga/resources.cpp" "src/fpga/CMakeFiles/tinysdr_fpga.dir/resources.cpp.o" "gcc" "src/fpga/CMakeFiles/tinysdr_fpga.dir/resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tinysdr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/tinysdr_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/tinysdr_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
