file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_fpga.dir/bitstream.cpp.o"
  "CMakeFiles/tinysdr_fpga.dir/bitstream.cpp.o.d"
  "CMakeFiles/tinysdr_fpga.dir/microsd.cpp.o"
  "CMakeFiles/tinysdr_fpga.dir/microsd.cpp.o.d"
  "CMakeFiles/tinysdr_fpga.dir/resources.cpp.o"
  "CMakeFiles/tinysdr_fpga.dir/resources.cpp.o.d"
  "libtinysdr_fpga.a"
  "libtinysdr_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
