# Empty dependencies file for tinysdr_fpga.
# This may be replaced when dependencies are built.
