file(REMOVE_RECURSE
  "libtinysdr_core.a"
)
