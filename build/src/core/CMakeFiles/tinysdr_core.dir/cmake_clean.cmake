file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_core.dir/backscatter.cpp.o"
  "CMakeFiles/tinysdr_core.dir/backscatter.cpp.o.d"
  "CMakeFiles/tinysdr_core.dir/concurrent.cpp.o"
  "CMakeFiles/tinysdr_core.dir/concurrent.cpp.o.d"
  "CMakeFiles/tinysdr_core.dir/device.cpp.o"
  "CMakeFiles/tinysdr_core.dir/device.cpp.o.d"
  "CMakeFiles/tinysdr_core.dir/localization.cpp.o"
  "CMakeFiles/tinysdr_core.dir/localization.cpp.o.d"
  "CMakeFiles/tinysdr_core.dir/platform_db.cpp.o"
  "CMakeFiles/tinysdr_core.dir/platform_db.cpp.o.d"
  "libtinysdr_core.a"
  "libtinysdr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
