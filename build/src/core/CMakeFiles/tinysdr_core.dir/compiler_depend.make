# Empty compiler generated dependencies file for tinysdr_core.
# This may be replaced when dependencies are built.
