# Empty dependencies file for tinysdr_nbiot.
# This may be replaced when dependencies are built.
