file(REMOVE_RECURSE
  "libtinysdr_nbiot.a"
)
