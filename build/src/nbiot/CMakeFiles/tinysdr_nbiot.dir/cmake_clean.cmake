file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_nbiot.dir/uplink.cpp.o"
  "CMakeFiles/tinysdr_nbiot.dir/uplink.cpp.o.d"
  "libtinysdr_nbiot.a"
  "libtinysdr_nbiot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_nbiot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
