file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_channel.dir/link_budget.cpp.o"
  "CMakeFiles/tinysdr_channel.dir/link_budget.cpp.o.d"
  "CMakeFiles/tinysdr_channel.dir/noise.cpp.o"
  "CMakeFiles/tinysdr_channel.dir/noise.cpp.o.d"
  "libtinysdr_channel.a"
  "libtinysdr_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
