# Empty dependencies file for tinysdr_channel.
# This may be replaced when dependencies are built.
