file(REMOVE_RECURSE
  "libtinysdr_channel.a"
)
