# Empty compiler generated dependencies file for tinysdr_ota.
# This may be replaced when dependencies are built.
