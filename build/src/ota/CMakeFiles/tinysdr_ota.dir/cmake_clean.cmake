file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_ota.dir/broadcast.cpp.o"
  "CMakeFiles/tinysdr_ota.dir/broadcast.cpp.o.d"
  "CMakeFiles/tinysdr_ota.dir/flash.cpp.o"
  "CMakeFiles/tinysdr_ota.dir/flash.cpp.o.d"
  "CMakeFiles/tinysdr_ota.dir/lzo.cpp.o"
  "CMakeFiles/tinysdr_ota.dir/lzo.cpp.o.d"
  "CMakeFiles/tinysdr_ota.dir/protocol.cpp.o"
  "CMakeFiles/tinysdr_ota.dir/protocol.cpp.o.d"
  "CMakeFiles/tinysdr_ota.dir/scheduler.cpp.o"
  "CMakeFiles/tinysdr_ota.dir/scheduler.cpp.o.d"
  "CMakeFiles/tinysdr_ota.dir/update.cpp.o"
  "CMakeFiles/tinysdr_ota.dir/update.cpp.o.d"
  "libtinysdr_ota.a"
  "libtinysdr_ota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_ota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
