file(REMOVE_RECURSE
  "libtinysdr_ota.a"
)
