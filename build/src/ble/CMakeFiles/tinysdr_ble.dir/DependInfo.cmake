
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ble/advertiser.cpp" "src/ble/CMakeFiles/tinysdr_ble.dir/advertiser.cpp.o" "gcc" "src/ble/CMakeFiles/tinysdr_ble.dir/advertiser.cpp.o.d"
  "/root/repo/src/ble/cc2650.cpp" "src/ble/CMakeFiles/tinysdr_ble.dir/cc2650.cpp.o" "gcc" "src/ble/CMakeFiles/tinysdr_ble.dir/cc2650.cpp.o.d"
  "/root/repo/src/ble/gfsk.cpp" "src/ble/CMakeFiles/tinysdr_ble.dir/gfsk.cpp.o" "gcc" "src/ble/CMakeFiles/tinysdr_ble.dir/gfsk.cpp.o.d"
  "/root/repo/src/ble/packet.cpp" "src/ble/CMakeFiles/tinysdr_ble.dir/packet.cpp.o" "gcc" "src/ble/CMakeFiles/tinysdr_ble.dir/packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tinysdr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/tinysdr_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/tinysdr_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/tinysdr_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
