file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_ble.dir/advertiser.cpp.o"
  "CMakeFiles/tinysdr_ble.dir/advertiser.cpp.o.d"
  "CMakeFiles/tinysdr_ble.dir/cc2650.cpp.o"
  "CMakeFiles/tinysdr_ble.dir/cc2650.cpp.o.d"
  "CMakeFiles/tinysdr_ble.dir/gfsk.cpp.o"
  "CMakeFiles/tinysdr_ble.dir/gfsk.cpp.o.d"
  "CMakeFiles/tinysdr_ble.dir/packet.cpp.o"
  "CMakeFiles/tinysdr_ble.dir/packet.cpp.o.d"
  "libtinysdr_ble.a"
  "libtinysdr_ble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_ble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
