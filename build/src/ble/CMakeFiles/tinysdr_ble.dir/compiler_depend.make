# Empty compiler generated dependencies file for tinysdr_ble.
# This may be replaced when dependencies are built.
