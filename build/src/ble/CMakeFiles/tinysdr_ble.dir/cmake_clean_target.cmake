file(REMOVE_RECURSE
  "libtinysdr_ble.a"
)
