file(REMOVE_RECURSE
  "libtinysdr_dsp.a"
)
