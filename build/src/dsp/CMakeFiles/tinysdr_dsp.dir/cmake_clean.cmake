file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_dsp.dir/fft.cpp.o"
  "CMakeFiles/tinysdr_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/tinysdr_dsp.dir/fir.cpp.o"
  "CMakeFiles/tinysdr_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/tinysdr_dsp.dir/gaussian.cpp.o"
  "CMakeFiles/tinysdr_dsp.dir/gaussian.cpp.o.d"
  "CMakeFiles/tinysdr_dsp.dir/nco.cpp.o"
  "CMakeFiles/tinysdr_dsp.dir/nco.cpp.o.d"
  "CMakeFiles/tinysdr_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/tinysdr_dsp.dir/spectrum.cpp.o.d"
  "libtinysdr_dsp.a"
  "libtinysdr_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
