# Empty dependencies file for tinysdr_dsp.
# This may be replaced when dependencies are built.
