file(REMOVE_RECURSE
  "CMakeFiles/tinysdr_testbed.dir/campaign.cpp.o"
  "CMakeFiles/tinysdr_testbed.dir/campaign.cpp.o.d"
  "CMakeFiles/tinysdr_testbed.dir/deployment.cpp.o"
  "CMakeFiles/tinysdr_testbed.dir/deployment.cpp.o.d"
  "CMakeFiles/tinysdr_testbed.dir/multihop.cpp.o"
  "CMakeFiles/tinysdr_testbed.dir/multihop.cpp.o.d"
  "libtinysdr_testbed.a"
  "libtinysdr_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinysdr_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
