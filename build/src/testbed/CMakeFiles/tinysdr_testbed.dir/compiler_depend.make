# Empty compiler generated dependencies file for tinysdr_testbed.
# This may be replaced when dependencies are built.
