file(REMOVE_RECURSE
  "libtinysdr_testbed.a"
)
