file(REMOVE_RECURSE
  "CMakeFiles/ota_testbed.dir/ota_testbed.cpp.o"
  "CMakeFiles/ota_testbed.dir/ota_testbed.cpp.o.d"
  "ota_testbed"
  "ota_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ota_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
