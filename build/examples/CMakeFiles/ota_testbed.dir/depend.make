# Empty dependencies file for ota_testbed.
# This may be replaced when dependencies are built.
