file(REMOVE_RECURSE
  "CMakeFiles/ble_beacon.dir/ble_beacon.cpp.o"
  "CMakeFiles/ble_beacon.dir/ble_beacon.cpp.o.d"
  "ble_beacon"
  "ble_beacon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ble_beacon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
