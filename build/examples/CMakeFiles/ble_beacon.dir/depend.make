# Empty dependencies file for ble_beacon.
# This may be replaced when dependencies are built.
