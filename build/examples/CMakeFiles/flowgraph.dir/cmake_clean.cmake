file(REMOVE_RECURSE
  "CMakeFiles/flowgraph.dir/flowgraph.cpp.o"
  "CMakeFiles/flowgraph.dir/flowgraph.cpp.o.d"
  "flowgraph"
  "flowgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
