# Empty compiler generated dependencies file for flowgraph.
# This may be replaced when dependencies are built.
