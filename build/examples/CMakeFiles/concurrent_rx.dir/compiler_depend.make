# Empty compiler generated dependencies file for concurrent_rx.
# This may be replaced when dependencies are built.
