file(REMOVE_RECURSE
  "CMakeFiles/concurrent_rx.dir/concurrent_rx.cpp.o"
  "CMakeFiles/concurrent_rx.dir/concurrent_rx.cpp.o.d"
  "concurrent_rx"
  "concurrent_rx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_rx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
