file(REMOVE_RECURSE
  "CMakeFiles/channel_scanner.dir/channel_scanner.cpp.o"
  "CMakeFiles/channel_scanner.dir/channel_scanner.cpp.o.d"
  "channel_scanner"
  "channel_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
