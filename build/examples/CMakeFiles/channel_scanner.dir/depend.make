# Empty dependencies file for channel_scanner.
# This may be replaced when dependencies are built.
