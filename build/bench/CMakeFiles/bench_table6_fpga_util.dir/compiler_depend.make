# Empty compiler generated dependencies file for bench_table6_fpga_util.
# This may be replaced when dependencies are built.
