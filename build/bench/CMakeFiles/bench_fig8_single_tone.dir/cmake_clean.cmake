file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_single_tone.dir/bench_fig8_single_tone.cpp.o"
  "CMakeFiles/bench_fig8_single_tone.dir/bench_fig8_single_tone.cpp.o.d"
  "bench_fig8_single_tone"
  "bench_fig8_single_tone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_single_tone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
