file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15a_concurrent.dir/bench_fig15a_concurrent.cpp.o"
  "CMakeFiles/bench_fig15a_concurrent.dir/bench_fig15a_concurrent.cpp.o.d"
  "bench_fig15a_concurrent"
  "bench_fig15a_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15a_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
