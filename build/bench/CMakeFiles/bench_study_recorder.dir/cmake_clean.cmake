file(REMOVE_RECURSE
  "CMakeFiles/bench_study_recorder.dir/bench_study_recorder.cpp.o"
  "CMakeFiles/bench_study_recorder.dir/bench_study_recorder.cpp.o.d"
  "bench_study_recorder"
  "bench_study_recorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_study_recorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
