# Empty compiler generated dependencies file for bench_study_recorder.
# This may be replaced when dependencies are built.
