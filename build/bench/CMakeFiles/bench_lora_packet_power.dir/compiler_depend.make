# Empty compiler generated dependencies file for bench_lora_packet_power.
# This may be replaced when dependencies are built.
