file(REMOVE_RECURSE
  "CMakeFiles/bench_lora_packet_power.dir/bench_lora_packet_power.cpp.o"
  "CMakeFiles/bench_lora_packet_power.dir/bench_lora_packet_power.cpp.o.d"
  "bench_lora_packet_power"
  "bench_lora_packet_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lora_packet_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
