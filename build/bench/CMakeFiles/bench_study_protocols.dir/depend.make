# Empty dependencies file for bench_study_protocols.
# This may be replaced when dependencies are built.
