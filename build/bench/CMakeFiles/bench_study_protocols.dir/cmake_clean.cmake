file(REMOVE_RECURSE
  "CMakeFiles/bench_study_protocols.dir/bench_study_protocols.cpp.o"
  "CMakeFiles/bench_study_protocols.dir/bench_study_protocols.cpp.o.d"
  "bench_study_protocols"
  "bench_study_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_study_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
