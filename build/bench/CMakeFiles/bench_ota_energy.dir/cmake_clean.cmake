file(REMOVE_RECURSE
  "CMakeFiles/bench_ota_energy.dir/bench_ota_energy.cpp.o"
  "CMakeFiles/bench_ota_energy.dir/bench_ota_energy.cpp.o.d"
  "bench_ota_energy"
  "bench_ota_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ota_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
