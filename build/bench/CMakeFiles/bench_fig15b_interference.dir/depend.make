# Empty dependencies file for bench_fig15b_interference.
# This may be replaced when dependencies are built.
