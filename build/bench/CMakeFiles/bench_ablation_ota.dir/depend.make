# Empty dependencies file for bench_ablation_ota.
# This may be replaced when dependencies are built.
