file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ota.dir/bench_ablation_ota.cpp.o"
  "CMakeFiles/bench_ablation_ota.dir/bench_ablation_ota.cpp.o.d"
  "bench_ablation_ota"
  "bench_ablation_ota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
