file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_iq_radios.dir/bench_table2_iq_radios.cpp.o"
  "CMakeFiles/bench_table2_iq_radios.dir/bench_table2_iq_radios.cpp.o.d"
  "bench_table2_iq_radios"
  "bench_table2_iq_radios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_iq_radios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
