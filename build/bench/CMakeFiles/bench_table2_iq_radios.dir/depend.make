# Empty dependencies file for bench_table2_iq_radios.
# This may be replaced when dependencies are built.
