# Empty compiler generated dependencies file for bench_fig13_ble_hop.
# This may be replaced when dependencies are built.
