file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_ble_hop.dir/bench_fig13_ble_hop.cpp.o"
  "CMakeFiles/bench_fig13_ble_hop.dir/bench_fig13_ble_hop.cpp.o.d"
  "bench_fig13_ble_hop"
  "bench_fig13_ble_hop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_ble_hop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
