# Empty dependencies file for bench_ablation_fir_taps.
# This may be replaced when dependencies are built.
