file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fir_taps.dir/bench_ablation_fir_taps.cpp.o"
  "CMakeFiles/bench_ablation_fir_taps.dir/bench_ablation_fir_taps.cpp.o.d"
  "bench_ablation_fir_taps"
  "bench_ablation_fir_taps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fir_taps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
