# Empty compiler generated dependencies file for bench_fig9_tx_power.
# This may be replaced when dependencies are built.
