
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_study_research.cpp" "bench/CMakeFiles/bench_study_research.dir/bench_study_research.cpp.o" "gcc" "bench/CMakeFiles/bench_study_research.dir/bench_study_research.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tinysdr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/tinysdr_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/ota/CMakeFiles/tinysdr_ota.dir/DependInfo.cmake"
  "/root/repo/build/src/ble/CMakeFiles/tinysdr_ble.dir/DependInfo.cmake"
  "/root/repo/build/src/zigbee/CMakeFiles/tinysdr_zigbee.dir/DependInfo.cmake"
  "/root/repo/build/src/sigfox/CMakeFiles/tinysdr_sigfox.dir/DependInfo.cmake"
  "/root/repo/build/src/nbiot/CMakeFiles/tinysdr_nbiot.dir/DependInfo.cmake"
  "/root/repo/build/src/lora/CMakeFiles/tinysdr_lora.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/tinysdr_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tinysdr_power.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/tinysdr_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/tinysdr_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/tinysdr_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/tinysdr_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tinysdr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
