# Empty compiler generated dependencies file for bench_study_research.
# This may be replaced when dependencies are built.
