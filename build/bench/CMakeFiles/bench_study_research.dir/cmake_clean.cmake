file(REMOVE_RECURSE
  "CMakeFiles/bench_study_research.dir/bench_study_research.cpp.o"
  "CMakeFiles/bench_study_research.dir/bench_study_research.cpp.o.d"
  "bench_study_research"
  "bench_study_research.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_study_research.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
