# Empty compiler generated dependencies file for bench_table3_power_domains.
# This may be replaced when dependencies are built.
