# Empty compiler generated dependencies file for bench_fig11_lora_demod_ser.
# This may be replaced when dependencies are built.
