file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_lora_demod_ser.dir/bench_fig11_lora_demod_ser.cpp.o"
  "CMakeFiles/bench_fig11_lora_demod_ser.dir/bench_fig11_lora_demod_ser.cpp.o.d"
  "bench_fig11_lora_demod_ser"
  "bench_fig11_lora_demod_ser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_lora_demod_ser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
