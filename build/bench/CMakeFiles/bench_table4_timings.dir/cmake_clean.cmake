file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_timings.dir/bench_table4_timings.cpp.o"
  "CMakeFiles/bench_table4_timings.dir/bench_table4_timings.cpp.o.d"
  "bench_table4_timings"
  "bench_table4_timings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_timings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
