# Empty dependencies file for bench_table4_timings.
# This may be replaced when dependencies are built.
