file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cad.dir/bench_ablation_cad.cpp.o"
  "CMakeFiles/bench_ablation_cad.dir/bench_ablation_cad.cpp.o.d"
  "bench_ablation_cad"
  "bench_ablation_cad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
