# Empty compiler generated dependencies file for bench_ablation_cad.
# This may be replaced when dependencies are built.
