# Empty compiler generated dependencies file for bench_fig10_lora_mod_per.
# This may be replaced when dependencies are built.
