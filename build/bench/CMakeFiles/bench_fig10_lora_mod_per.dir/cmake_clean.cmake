file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_lora_mod_per.dir/bench_fig10_lora_mod_per.cpp.o"
  "CMakeFiles/bench_fig10_lora_mod_per.dir/bench_fig10_lora_mod_per.cpp.o.d"
  "bench_fig10_lora_mod_per"
  "bench_fig10_lora_mod_per.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_lora_mod_per.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
