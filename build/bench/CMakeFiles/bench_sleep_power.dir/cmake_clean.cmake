file(REMOVE_RECURSE
  "CMakeFiles/bench_sleep_power.dir/bench_sleep_power.cpp.o"
  "CMakeFiles/bench_sleep_power.dir/bench_sleep_power.cpp.o.d"
  "bench_sleep_power"
  "bench_sleep_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sleep_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
