# Empty dependencies file for bench_fig12_ble_ber.
# This may be replaced when dependencies are built.
