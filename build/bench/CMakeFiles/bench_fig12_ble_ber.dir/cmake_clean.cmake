file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_ble_ber.dir/bench_fig12_ble_ber.cpp.o"
  "CMakeFiles/bench_fig12_ble_ber.dir/bench_fig12_ble_ber.cpp.o.d"
  "bench_fig12_ble_ber"
  "bench_fig12_ble_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ble_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
