file(REMOVE_RECURSE
  "CMakeFiles/bench_study_mac.dir/bench_study_mac.cpp.o"
  "CMakeFiles/bench_study_mac.dir/bench_study_mac.cpp.o.d"
  "bench_study_mac"
  "bench_study_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_study_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
