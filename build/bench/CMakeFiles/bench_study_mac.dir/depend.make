# Empty dependencies file for bench_study_mac.
# This may be replaced when dependencies are built.
