file(REMOVE_RECURSE
  "CMakeFiles/test_radio.dir/radio/at86rf215_test.cpp.o"
  "CMakeFiles/test_radio.dir/radio/at86rf215_test.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/builtin_modem_test.cpp.o"
  "CMakeFiles/test_radio.dir/radio/builtin_modem_test.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/frontend_test.cpp.o"
  "CMakeFiles/test_radio.dir/radio/frontend_test.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/lvds_test.cpp.o"
  "CMakeFiles/test_radio.dir/radio/lvds_test.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/quantizer_test.cpp.o"
  "CMakeFiles/test_radio.dir/radio/quantizer_test.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/timing_test.cpp.o"
  "CMakeFiles/test_radio.dir/radio/timing_test.cpp.o.d"
  "test_radio"
  "test_radio.pdb"
  "test_radio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
