file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/concurrent_test.cpp.o"
  "CMakeFiles/test_core.dir/core/concurrent_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/device_phy_test.cpp.o"
  "CMakeFiles/test_core.dir/core/device_phy_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/device_test.cpp.o"
  "CMakeFiles/test_core.dir/core/device_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/integration_test.cpp.o"
  "CMakeFiles/test_core.dir/core/integration_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/localization_extra_test.cpp.o"
  "CMakeFiles/test_core.dir/core/localization_extra_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/studies_test.cpp.o"
  "CMakeFiles/test_core.dir/core/studies_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
