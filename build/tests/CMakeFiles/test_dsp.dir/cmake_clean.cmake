file(REMOVE_RECURSE
  "CMakeFiles/test_dsp.dir/dsp/fft_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/fft_test.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/fir_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/fir_test.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/gaussian_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/gaussian_test.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/nco_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/nco_test.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/spectrum_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/spectrum_test.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/types_test.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/types_test.cpp.o.d"
  "test_dsp"
  "test_dsp.pdb"
  "test_dsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
