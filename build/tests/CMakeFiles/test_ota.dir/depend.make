# Empty dependencies file for test_ota.
# This may be replaced when dependencies are built.
