file(REMOVE_RECURSE
  "CMakeFiles/test_ota.dir/ota/broadcast_edge_test.cpp.o"
  "CMakeFiles/test_ota.dir/ota/broadcast_edge_test.cpp.o.d"
  "CMakeFiles/test_ota.dir/ota/flash_test.cpp.o"
  "CMakeFiles/test_ota.dir/ota/flash_test.cpp.o.d"
  "CMakeFiles/test_ota.dir/ota/lzo_test.cpp.o"
  "CMakeFiles/test_ota.dir/ota/lzo_test.cpp.o.d"
  "CMakeFiles/test_ota.dir/ota/protocol_test.cpp.o"
  "CMakeFiles/test_ota.dir/ota/protocol_test.cpp.o.d"
  "CMakeFiles/test_ota.dir/ota/scheduler_test.cpp.o"
  "CMakeFiles/test_ota.dir/ota/scheduler_test.cpp.o.d"
  "test_ota"
  "test_ota.pdb"
  "test_ota[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
