# Empty dependencies file for test_sigfox.
# This may be replaced when dependencies are built.
