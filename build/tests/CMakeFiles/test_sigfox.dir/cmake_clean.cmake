file(REMOVE_RECURSE
  "CMakeFiles/test_sigfox.dir/sigfox/unb_test.cpp.o"
  "CMakeFiles/test_sigfox.dir/sigfox/unb_test.cpp.o.d"
  "test_sigfox"
  "test_sigfox.pdb"
  "test_sigfox[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sigfox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
