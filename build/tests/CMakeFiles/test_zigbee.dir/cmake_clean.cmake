file(REMOVE_RECURSE
  "CMakeFiles/test_zigbee.dir/zigbee/oqpsk_test.cpp.o"
  "CMakeFiles/test_zigbee.dir/zigbee/oqpsk_test.cpp.o.d"
  "test_zigbee"
  "test_zigbee.pdb"
  "test_zigbee[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zigbee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
