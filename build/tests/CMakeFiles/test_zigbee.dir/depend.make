# Empty dependencies file for test_zigbee.
# This may be replaced when dependencies are built.
