file(REMOVE_RECURSE
  "CMakeFiles/test_ble.dir/ble/advertiser_test.cpp.o"
  "CMakeFiles/test_ble.dir/ble/advertiser_test.cpp.o.d"
  "CMakeFiles/test_ble.dir/ble/gfsk_test.cpp.o"
  "CMakeFiles/test_ble.dir/ble/gfsk_test.cpp.o.d"
  "CMakeFiles/test_ble.dir/ble/packet_test.cpp.o"
  "CMakeFiles/test_ble.dir/ble/packet_test.cpp.o.d"
  "test_ble"
  "test_ble.pdb"
  "test_ble[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
