# Empty dependencies file for test_lora.
# This may be replaced when dependencies are built.
