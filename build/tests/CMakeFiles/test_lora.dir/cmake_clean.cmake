file(REMOVE_RECURSE
  "CMakeFiles/test_lora.dir/lora/cad_impairments_test.cpp.o"
  "CMakeFiles/test_lora.dir/lora/cad_impairments_test.cpp.o.d"
  "CMakeFiles/test_lora.dir/lora/chirp_test.cpp.o"
  "CMakeFiles/test_lora.dir/lora/chirp_test.cpp.o.d"
  "CMakeFiles/test_lora.dir/lora/coding_test.cpp.o"
  "CMakeFiles/test_lora.dir/lora/coding_test.cpp.o.d"
  "CMakeFiles/test_lora.dir/lora/fuzz_test.cpp.o"
  "CMakeFiles/test_lora.dir/lora/fuzz_test.cpp.o.d"
  "CMakeFiles/test_lora.dir/lora/mac_test.cpp.o"
  "CMakeFiles/test_lora.dir/lora/mac_test.cpp.o.d"
  "CMakeFiles/test_lora.dir/lora/modem_test.cpp.o"
  "CMakeFiles/test_lora.dir/lora/modem_test.cpp.o.d"
  "CMakeFiles/test_lora.dir/lora/packet_test.cpp.o"
  "CMakeFiles/test_lora.dir/lora/packet_test.cpp.o.d"
  "CMakeFiles/test_lora.dir/lora/params_test.cpp.o"
  "CMakeFiles/test_lora.dir/lora/params_test.cpp.o.d"
  "test_lora"
  "test_lora.pdb"
  "test_lora[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
