
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lora/cad_impairments_test.cpp" "tests/CMakeFiles/test_lora.dir/lora/cad_impairments_test.cpp.o" "gcc" "tests/CMakeFiles/test_lora.dir/lora/cad_impairments_test.cpp.o.d"
  "/root/repo/tests/lora/chirp_test.cpp" "tests/CMakeFiles/test_lora.dir/lora/chirp_test.cpp.o" "gcc" "tests/CMakeFiles/test_lora.dir/lora/chirp_test.cpp.o.d"
  "/root/repo/tests/lora/coding_test.cpp" "tests/CMakeFiles/test_lora.dir/lora/coding_test.cpp.o" "gcc" "tests/CMakeFiles/test_lora.dir/lora/coding_test.cpp.o.d"
  "/root/repo/tests/lora/fuzz_test.cpp" "tests/CMakeFiles/test_lora.dir/lora/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_lora.dir/lora/fuzz_test.cpp.o.d"
  "/root/repo/tests/lora/mac_test.cpp" "tests/CMakeFiles/test_lora.dir/lora/mac_test.cpp.o" "gcc" "tests/CMakeFiles/test_lora.dir/lora/mac_test.cpp.o.d"
  "/root/repo/tests/lora/modem_test.cpp" "tests/CMakeFiles/test_lora.dir/lora/modem_test.cpp.o" "gcc" "tests/CMakeFiles/test_lora.dir/lora/modem_test.cpp.o.d"
  "/root/repo/tests/lora/packet_test.cpp" "tests/CMakeFiles/test_lora.dir/lora/packet_test.cpp.o" "gcc" "tests/CMakeFiles/test_lora.dir/lora/packet_test.cpp.o.d"
  "/root/repo/tests/lora/params_test.cpp" "tests/CMakeFiles/test_lora.dir/lora/params_test.cpp.o" "gcc" "tests/CMakeFiles/test_lora.dir/lora/params_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tinysdr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/tinysdr_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/tinysdr_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/tinysdr_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/tinysdr_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tinysdr_power.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/tinysdr_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/lora/CMakeFiles/tinysdr_lora.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
