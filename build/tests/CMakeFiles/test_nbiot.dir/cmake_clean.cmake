file(REMOVE_RECURSE
  "CMakeFiles/test_nbiot.dir/nbiot/uplink_test.cpp.o"
  "CMakeFiles/test_nbiot.dir/nbiot/uplink_test.cpp.o.d"
  "test_nbiot"
  "test_nbiot.pdb"
  "test_nbiot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nbiot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
