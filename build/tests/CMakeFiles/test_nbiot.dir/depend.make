# Empty dependencies file for test_nbiot.
# This may be replaced when dependencies are built.
