file(REMOVE_RECURSE
  "CMakeFiles/test_mcu.dir/mcu/msp432_test.cpp.o"
  "CMakeFiles/test_mcu.dir/mcu/msp432_test.cpp.o.d"
  "test_mcu"
  "test_mcu.pdb"
  "test_mcu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
