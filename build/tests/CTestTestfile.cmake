# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_radio[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_mcu[1]_include.cmake")
include("/root/repo/build/tests/test_lora[1]_include.cmake")
include("/root/repo/build/tests/test_ble[1]_include.cmake")
include("/root/repo/build/tests/test_ota[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_zigbee[1]_include.cmake")
include("/root/repo/build/tests/test_sigfox[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_nbiot[1]_include.cmake")
