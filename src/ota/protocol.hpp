// Over-the-air programming protocol (paper §3.4, hardened).
//
// A LoRa access point updates tinySDR nodes sequentially: it announces a
// programming request naming device IDs and a wake time; an addressed node
// answers READY; the AP streams the compressed firmware as numbered DATA
// packets (60 B payloads, 8-chirp preambles — the paper's chosen balance of
// overhead vs range); a final END packet carries the image fingerprint and
// tells the node to reprogram itself.
//
// Beyond the paper's per-packet stop-and-wait, the transfer engine
// supports a windowed selective-ACK mode: the AP streams a window of DATA
// packets, then polls the node for a received-chunk bitmap and retransmits
// only the gaps. Retries use exponential backoff under a retry/deadline
// budget, the node checkpoints its transfer state to flash so a brownout
// mid-transfer resumes instead of restarting, and every outcome records
// the RNG seed plus failure-cause/recovery counters so a failed run can be
// replayed bit-for-bit.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "channel/gilbert_elliott.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "lora/airtime.hpp"
#include "lora/params.hpp"
#include "mcu/msp432.hpp"
#include "ota/flash.hpp"
#include "sim/faults.hpp"

namespace tinysdr::ota {

/// Paper §5.3: 60-byte data packets, 8-chirp preamble.
inline constexpr std::size_t kDataPayload = 60;
inline constexpr int kOtaPreambleSymbols = 8;

/// The backbone link configuration used in the testbed evaluation:
/// SF8, BW 500 kHz, CR 4/6, 14 dBm.
[[nodiscard]] lora::LoraParams ota_link_params();

enum class OtaPacketType : std::uint8_t {
  kProgrammingRequest,
  kReady,
  kData,
  kDataAck,
  kSackQuery,  ///< AP asks for the window bitmap
  kSack,       ///< node's received-chunk bitmap for the window
  kEnd,
  kEndAck,
};

struct OtaPacket {
  OtaPacketType type = OtaPacketType::kData;
  std::uint16_t device_id = 0;
  std::uint16_t seq = 0;
  std::uint32_t image_crc32 = 0;          ///< END only
  std::vector<std::uint8_t> payload;      ///< DATA / SACK bitmap

  /// PHY payload size for airtime computation.
  [[nodiscard]] std::size_t wire_size() const;
};

/// Simulated LoRa link with RSSI-dependent packet loss.
///
/// Loss model: a packet is lost if its (analytic) packet error probability
/// fires. PER follows a logistic curve around the configuration's
/// sensitivity, with slope matching the measured LoRa waterfall (a few dB
/// from 10% to 90%). A Gilbert–Elliott burst process can be layered on
/// top for fault-injection campaigns. Exactly one loss draw is made per
/// delivery attempt (retransmissions redraw), so outcomes are reproducible
/// from the recorded seed.
class OtaLink {
 public:
  OtaLink(lora::LoraParams params, Dbm rssi, Rng rng)
      : params_(params), rssi_(rssi), rng_(rng) {}

  /// Seeded constructor; the seed is reported in UpdateOutcome so failed
  /// runs can be replayed.
  OtaLink(lora::LoraParams params, Dbm rssi, std::uint64_t seed)
      : params_(params), rssi_(rssi), rng_(seed), seed_(seed) {}

  [[nodiscard]] Dbm rssi() const { return rssi_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] double packet_error_rate(std::size_t payload_bytes) const;
  /// Long-run loss rate including the burst process (if attached).
  [[nodiscard]] double mean_error_rate(std::size_t payload_bytes) const;
  [[nodiscard]] Seconds airtime(std::size_t payload_bytes) const;

  /// Layer a Gilbert–Elliott burst-loss chain on top of the RSSI loss.
  void set_burst(const channel::GilbertElliottParams& params);
  [[nodiscard]] bool has_burst() const { return burst_.has_value(); }

  /// Attempt a delivery; returns true if the packet arrives intact.
  /// One loss draw per call — per delivery attempt.
  [[nodiscard]] bool deliver(std::size_t payload_bytes);

 private:
  lora::LoraParams params_;
  Dbm rssi_;
  Rng rng_;
  std::uint64_t seed_ = 0;
  std::optional<channel::GilbertElliottChannel> burst_;
};

/// Acknowledgement strategy for the data plane.
enum class AckMode : std::uint8_t {
  kStopAndWait,   ///< paper §3.4: per-packet ACK
  kSelectiveAck,  ///< windowed transfer with a received-chunk bitmap
};

/// Knobs of the transfer engine.
struct TransferPolicy {
  AckMode mode = AckMode::kSelectiveAck;
  /// DATA packets streamed between bitmap polls (selective-ACK mode).
  std::size_t window = 16;
  /// Consecutive-failure budget per phase (association, data, end).
  std::size_t max_retries = 25;
  /// Base retransmission timeout; grows exponentially under failures.
  Seconds ack_timeout = Seconds::from_milliseconds(20.0);
  double backoff_factor = 2.0;
  Seconds max_backoff = Seconds{2.0};
  /// Whole-transfer wall-clock budget; 0 disables the deadline.
  Seconds deadline{0.0};
  /// Re-association attempts after the data phase stalls (e.g. node
  /// rebooted and lost its session).
  std::size_t max_reassociations = 2;
};

/// Protocol-level adversary hooks, queried by the transfer engine once per
/// matching protocol event. The default implementation attacks nothing;
/// concrete seeded attackers live in adversary:: (this interface sits in
/// ota so the protocol layer carries no dependency on the attack models).
///
/// The hardened protocol is expected to *survive* every hook: forged
/// replies fail session authentication and are discarded, truncated
/// payloads fail the length/CRC check, replays hit the bitmap dedup, and
/// rollback images are refused by the FirmwareStore version ratchet. Each
/// detection increments an UpdateOutcome counter plus an `adversary.ota.*`
/// metric, so campaigns can tell a survived attack from a benign failure.
class LinkAttacker {
 public:
  virtual ~LinkAttacker() = default;
  /// Jam this delivery: the packet was transmitted (airtime is spent) but
  /// never arrives. Queried once per packet that would have arrived.
  [[nodiscard]] virtual bool jam_packet(OtaPacketType /*type*/,
                                        std::size_t /*wire_bytes*/) {
    return false;
  }
  /// Race a forged ACK/SACK/END-ACK ahead of the node's reply. The AP
  /// authenticates replies against the session, so the forgery is
  /// detected and discarded — but the exchange is spent.
  [[nodiscard]] virtual bool forge_ack(OtaPacketType /*type*/) {
    return false;
  }
  /// The DATA payload for `seq` arrives truncated (fails the node's
  /// length check and is dropped).
  [[nodiscard]] virtual bool truncate_chunk(std::uint16_t /*seq*/) {
    return false;
  }
  /// Replay a captured copy of the DATA packet for `seq` at the node
  /// (dropped by the received-chunk bitmap dedup).
  [[nodiscard]] virtual bool replay_chunk(std::uint16_t /*seq*/) {
    return false;
  }
};

/// Why a transfer (or the wider update) failed.
enum class UpdateFailure : std::uint8_t {
  kNone,
  kAssociation,    ///< request/ready never completed
  kRetryBudget,    ///< consecutive-failure budget exhausted in data phase
  kDeadline,       ///< transfer deadline exceeded
  kEndHandshake,   ///< END/END-ACK never completed
  kStreamCorrupt,  ///< staged stream failed the END fingerprint check
  kDecodeFailed,   ///< block decompression failed
  kImageVerify,    ///< slot write/fingerprint verification failed
  kRejectedRollback,  ///< node refused a version-rollback image (survived)
};

[[nodiscard]] const char* to_string(UpdateFailure failure);

/// Result of updating a single node.
struct UpdateOutcome {
  bool success = false;
  UpdateFailure failure = UpdateFailure::kNone;
  std::uint64_t link_seed = 0;     ///< replay handle for this run
  Seconds total_time{0.0};         ///< request to reprogram-complete
  Seconds airtime{0.0};            ///< RF on-air time
  std::size_t data_packets = 0;    ///< unique chunks delivered
  std::size_t retransmissions = 0;
  std::size_t ack_packets = 0;     ///< ACK/SACK exchanges completed
  std::size_t duplicates_dropped = 0;
  std::size_t corrupted_dropped = 0;
  std::size_t backoff_events = 0;
  std::size_t node_reboots = 0;    ///< brownouts/watchdog resets survived
  std::size_t session_resumes = 0; ///< resumed from flash-persisted state
  std::size_t reassociations = 0;
  std::size_t repair_rounds = 0;   ///< END-verify failures repaired by rescan
  std::size_t flash_write_errors = 0;  ///< chunk programs that failed verify
  // Detected-and-survived attack events (see LinkAttacker).
  std::size_t jammed_packets = 0;        ///< deliveries destroyed by a jammer
  std::size_t forged_acks_discarded = 0; ///< forged replies failing auth
  std::size_t truncated_dropped = 0;     ///< truncated DATA failing length/CRC
  std::size_t replays_dropped = 0;       ///< replayed DATA deduped by bitmap
  Millijoules node_energy{0.0};    ///< backbone radio + MCU at the node
  /// Per-chunk transmission counts (sim instrumentation; index = seq).
  std::vector<std::uint16_t> sends_per_chunk;
};

/// The node half of the OTA protocol: receives chunks into the staging
/// region of the flash as they arrive (the paper writes straight to flash
/// because the LoRa radio outdraws the MCU), keeps the received-chunk
/// bitmap, checkpoints the session to flash so a brownout resumes instead
/// of restarting, and verifies the staged stream fingerprint at END.
class NodeAgent {
 public:
  static constexpr std::size_t kStagingBase = 0x400000;
  static constexpr std::size_t kStagingCapacity = 0x100000;
  static constexpr std::size_t kSessionSector =
      FlashModel::kCapacity - FlashModel::kSectorSize;

  NodeAgent(std::uint16_t device_id, FlashModel& flash,
            sim::FaultInjector* faults = nullptr,
            mcu::Msp432* mcu = nullptr,
            Seconds watchdog_timeout = Seconds{30.0});

  /// Handle a programming request. Starts a fresh session (erasing the
  /// staging region) or resumes a matching persisted one. Returns true if
  /// the session was resumed from flash.
  bool begin_session(std::uint32_t session_id, std::size_t stream_bytes);

  enum class RxStatus : std::uint8_t {
    kStored,     ///< chunk programmed and verified
    kDuplicate,  ///< already had it (bitmap dedup)
    kCorrupt,    ///< payload CRC failed; dropped
    kFlashError, ///< program/read-back verify failed; not marked received
    kNoSession,  ///< node has no active session (e.g. lost state)
  };
  RxStatus receive_chunk(std::uint16_t seq,
                         std::span<const std::uint8_t> payload,
                         bool corrupted = false);

  [[nodiscard]] bool has_session() const { return session_active_; }
  [[nodiscard]] bool has_chunk(std::size_t seq) const;
  [[nodiscard]] std::size_t chunks_received() const { return received_; }
  [[nodiscard]] std::size_t total_chunks() const { return total_chunks_; }
  [[nodiscard]] bool complete() const {
    return session_active_ && received_ == total_chunks_;
  }
  [[nodiscard]] std::size_t bytes_received() const { return bytes_received_; }

  /// Received-chunk bitmap for seqs [base, base + count), packed LSB-first
  /// — the payload of a kSack packet.
  [[nodiscard]] std::vector<std::uint8_t> window_bitmap(
      std::size_t base, std::size_t count) const;

  /// Checkpoint the session (bitmap) to the session sector in flash.
  void persist_session();
  /// Drop the session record (after a successful update).
  void clear_session();

  /// Brownout: RAM state is lost, flash survives. The node goes offline
  /// until `poll_boot` brings it back up.
  void reboot();
  /// Boot completes: restore the session from the flash checkpoint if one
  /// matches. Returns true if the node is (now) online.
  bool poll_boot();
  [[nodiscard]] bool online() const { return online_; }
  [[nodiscard]] std::size_t reboot_count() const { return reboots_; }
  [[nodiscard]] std::size_t resume_count() const { return resumes_; }
  [[nodiscard]] std::size_t flash_write_errors() const {
    return flash_write_errors_;
  }

  /// Advance simulated time at the node (drives the watchdog).
  void advance_time(Seconds elapsed);

  /// END check: read the staged stream back and compare fingerprints.
  [[nodiscard]] bool verify_stream(std::uint32_t crc32) const;
  [[nodiscard]] std::vector<std::uint8_t> staged_stream() const;

  [[nodiscard]] FlashModel& flash() { return *flash_; }
  [[nodiscard]] sim::FaultInjector* faults() const { return faults_; }

 private:
  void install_flash_hooks();
  void mark_chunk(std::size_t seq);
  [[nodiscard]] std::size_t chunk_bytes(std::size_t seq) const;

  std::uint16_t device_id_;
  FlashModel* flash_;
  sim::FaultInjector* faults_;
  mcu::Msp432* mcu_;
  Seconds watchdog_timeout_;

  bool online_ = true;
  bool session_active_ = false;
  std::uint32_t session_id_ = 0;
  std::size_t stream_bytes_ = 0;
  std::size_t total_chunks_ = 0;
  std::size_t received_ = 0;
  std::size_t bytes_received_ = 0;
  std::vector<std::uint8_t> bitmap_;  ///< 1 bit per chunk, LSB-first

  std::size_t reboots_ = 0;
  std::size_t resumes_ = 0;
  std::size_t flash_write_errors_ = 0;
};

/// The AP side: drives one node through a full firmware transfer.
class AccessPoint {
 public:
  explicit AccessPoint(lora::LoraParams params = ota_link_params())
      : params_(params) {}

  /// Transfer `compressed_image` to device `device_id` over `link`.
  /// When `node` is null an internal ideal node (no flash, no faults) is
  /// simulated; pass a NodeAgent to exercise flash writes, brownout
  /// resume and injected faults. An optional LinkAttacker subjects the
  /// exchange to protocol-level attacks the engine must survive.
  [[nodiscard]] UpdateOutcome transfer(
      const std::vector<std::uint8_t>& compressed_image,
      std::uint16_t device_id, OtaLink& link,
      const TransferPolicy& policy = {}, NodeAgent* node = nullptr,
      sim::FaultInjector* faults = nullptr,
      LinkAttacker* attacker = nullptr) const;

  /// Back-compat shim: per-packet retransmission budget only.
  [[nodiscard]] UpdateOutcome transfer(
      const std::vector<std::uint8_t>& compressed_image,
      std::uint16_t device_id, OtaLink& link, std::size_t max_retries) const {
    TransferPolicy policy;
    policy.max_retries = max_retries;
    return transfer(compressed_image, device_id, link, policy);
  }

  [[nodiscard]] const lora::LoraParams& params() const { return params_; }

 private:
  lora::LoraParams params_;
};

}  // namespace tinysdr::ota
