// Over-the-air programming protocol (paper §3.4).
//
// A LoRa access point updates tinySDR nodes sequentially: it announces a
// programming request naming device IDs and a wake time; an addressed node
// answers READY; the AP streams the compressed firmware as numbered DATA
// packets (60 B payloads, 8-chirp preambles — the paper's chosen balance of
// overhead vs range); the node checks sequence + CRC and ACKs each packet;
// missing ACKs trigger retransmission after a timeout; a final END packet
// carries the image fingerprint and tells the node to reprogram itself.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "lora/airtime.hpp"
#include "lora/params.hpp"

namespace tinysdr::ota {

/// Paper §5.3: 60-byte data packets, 8-chirp preamble.
inline constexpr std::size_t kDataPayload = 60;
inline constexpr int kOtaPreambleSymbols = 8;

/// The backbone link configuration used in the testbed evaluation:
/// SF8, BW 500 kHz, CR 4/6, 14 dBm.
[[nodiscard]] lora::LoraParams ota_link_params();

enum class OtaPacketType : std::uint8_t {
  kProgrammingRequest,
  kReady,
  kData,
  kDataAck,
  kEnd,
  kEndAck,
};

struct OtaPacket {
  OtaPacketType type = OtaPacketType::kData;
  std::uint16_t device_id = 0;
  std::uint16_t seq = 0;
  std::uint32_t image_crc32 = 0;          ///< END only
  std::vector<std::uint8_t> payload;      ///< DATA only

  /// PHY payload size for airtime computation.
  [[nodiscard]] std::size_t wire_size() const;
};

/// Simulated LoRa link with RSSI-dependent packet loss.
///
/// Loss model: a packet is lost if its (analytic) packet error probability
/// fires. PER follows a logistic curve around the configuration's
/// sensitivity, with slope matching the measured LoRa waterfall (a few dB
/// from 10% to 90%).
class OtaLink {
 public:
  OtaLink(lora::LoraParams params, Dbm rssi, Rng rng)
      : params_(params), rssi_(rssi), rng_(rng) {}

  [[nodiscard]] Dbm rssi() const { return rssi_; }
  [[nodiscard]] double packet_error_rate(std::size_t payload_bytes) const;
  [[nodiscard]] Seconds airtime(std::size_t payload_bytes) const;

  /// Attempt a delivery; returns true if the packet arrives intact.
  [[nodiscard]] bool deliver(std::size_t payload_bytes);

 private:
  lora::LoraParams params_;
  Dbm rssi_;
  Rng rng_;
};

/// Result of updating a single node.
struct UpdateOutcome {
  bool success = false;
  Seconds total_time{0.0};         ///< request to reprogram-complete
  Seconds airtime{0.0};            ///< RF on-air time
  std::size_t data_packets = 0;    ///< unique packets
  std::size_t retransmissions = 0;
  Millijoules node_energy{0.0};    ///< backbone radio + MCU at the node
};

/// The AP side: drives one node through a full firmware transfer.
class AccessPoint {
 public:
  explicit AccessPoint(lora::LoraParams params = ota_link_params())
      : params_(params) {}

  /// Transfer `compressed_image` to device `device_id` over `link`.
  /// @param max_retries  per-packet retransmission budget before aborting
  [[nodiscard]] UpdateOutcome transfer(
      const std::vector<std::uint8_t>& compressed_image,
      std::uint16_t device_id, OtaLink& link, std::size_t max_retries = 25)
      const;

  [[nodiscard]] const lora::LoraParams& params() const { return params_; }

 private:
  lora::LoraParams params_;
};

}  // namespace tinysdr::ota
