// End-to-end OTA update pipeline (paper §3.4 + §5.3).
//
// AP side: split the firmware image into 30 kB blocks, compress each with
// the LZO-class codec, stream over the backbone link. Node side: write
// compressed data to the dedicated flash as it arrives ("considering the
// LoRa radio takes more power than the MCU, we immediately write the data
// to flash"), then with the radio off, decompress block by block through a
// 30 kB SRAM buffer, write the boot image back to flash, and reprogram the
// FPGA (22 ms quad-SPI load) or MCU.
#pragma once

#include <optional>
#include <string>

#include "fpga/bitstream.hpp"
#include "fpga/programming.hpp"
#include "mcu/msp432.hpp"
#include "ota/flash.hpp"
#include "ota/lzo.hpp"
#include "ota/protocol.hpp"
#include "power/ledger.hpp"
#include "sim/faults.hpp"

namespace tinysdr::ota {

enum class UpdateTarget { kFpga, kMcu };

struct UpdateReport {
  bool success = false;
  UpdateFailure failure = UpdateFailure::kNone;
  UpdateTarget target = UpdateTarget::kFpga;
  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;
  UpdateOutcome transfer;          ///< radio-phase stats
  Seconds decompress_time{0.0};
  Seconds flash_time{0.0};
  Seconds reprogram_time{0.0};     ///< FPGA load / MCU self-flash
  Millijoules total_energy{0.0};   ///< node-side, whole update
  Seconds total_time{0.0};
  bool rolled_back = false;        ///< reverted to the golden image
  std::optional<Slot> slot;        ///< A/B slot the new image landed in

  [[nodiscard]] double compression_ratio() const {
    return original_bytes == 0
               ? 0.0
               : static_cast<double>(compressed_bytes) /
                     static_cast<double>(original_bytes);
  }
};

/// Optional hardening knobs for an update run. Defaults reproduce the
/// paper's pipeline (ideal node, legacy single-image flash layout).
struct UpdateOptions {
  TransferPolicy policy{};
  /// Fault injector wired into both the link-level transfer and the
  /// node's flash hooks.
  sim::FaultInjector* faults = nullptr;
  /// When set, the decoded image is written to the standby A/B slot with
  /// fingerprint verification, and a failed verify (or decode) rolls the
  /// node back to the golden image. When null, the image is written to
  /// offset 0 the way the original pipeline did.
  FirmwareStore* store = nullptr;
  /// Protocol-level adversary driven through the transfer engine's
  /// LinkAttacker hooks (forged ACKs, jamming, truncation, replay).
  LinkAttacker* attacker = nullptr;
  /// Monotonic firmware version carried by the pushed image. Checked
  /// against the store's anti-rollback floor at activation; pushing an
  /// older version fails with UpdateFailure::kRejectedRollback while the
  /// node keeps running its current image.
  std::uint32_t image_version = 0;
};

/// Runs a complete OTA update of one node over a given link.
class UpdatePlanner {
 public:
  UpdatePlanner() = default;

  /// MCU decompression throughput (bytes of *output* per second). The
  /// paper: decompressing a full image takes at most 450 ms; miniLZO on a
  /// 48 MHz M4F streams roughly 1.3 MB/s.
  static constexpr double kDecompressBytesPerSecond = 1.32e6;

  [[nodiscard]] UpdateReport run(const fpga::FirmwareImage& image,
                                 UpdateTarget target, std::uint16_t device_id,
                                 OtaLink& link, FlashModel& flash,
                                 mcu::Msp432& mcu,
                                 const UpdateOptions& options = {}) const;
};

/// Convenience: average power if a node is OTA-updated once per `period`
/// and sleeps otherwise (§5.3's 71 uW / 27 uW numbers).
[[nodiscard]] Milliwatts amortized_update_power(const UpdateReport& report,
                                                Seconds period);

}  // namespace tinysdr::ota
