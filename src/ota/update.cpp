#include "ota/update.hpp"

#include <stdexcept>

#include "common/crc.hpp"
#include "obs/metrics.hpp"

namespace tinysdr::ota {

UpdateReport UpdatePlanner::run(const fpga::FirmwareImage& image,
                                UpdateTarget target, std::uint16_t device_id,
                                OtaLink& link, FlashModel& flash,
                                mcu::Msp432& mcu,
                                const UpdateOptions& options) const {
  UpdateReport report;
  report.target = target;
  report.original_bytes = image.size();

  // AP side: block-compress.
  auto blocks = compress_blocks(image.data);
  report.compressed_bytes = compressed_size(blocks);

  // Serialize blocks into the transfer byte stream: per block a small
  // header (orig size u32, comp size u32, crc16) then the payload.
  std::vector<std::uint8_t> stream;
  stream.reserve(report.compressed_bytes + blocks.size() * 10);
  for (const auto& b : blocks) {
    auto push32 = [&](std::uint32_t v) {
      for (int i = 0; i < 4; ++i)
        stream.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
    };
    push32(b.original_size);
    push32(static_cast<std::uint32_t>(b.data.size()));
    stream.push_back(static_cast<std::uint8_t>(b.crc16 & 0xFF));
    stream.push_back(static_cast<std::uint8_t>(b.crc16 >> 8));
    stream.insert(stream.end(), b.data.begin(), b.data.end());
  }

  // Radio phase. The node agent streams chunks straight into the flash
  // staging region and checkpoints its session, so a brownout mid-transfer
  // resumes rather than restarting.
  AccessPoint ap;
  NodeAgent node(device_id, flash, options.faults, &mcu);
  report.transfer =
      ap.transfer(stream, device_id, link, options.policy, &node,
                  options.faults, options.attacker);
  report.failure = report.transfer.failure;
  if (!report.transfer.success) {
    report.total_time = report.transfer.total_time;
    report.total_energy = report.transfer.node_energy;
    return report;
  }

  // The stream is already in flash (written chunk-by-chunk as it arrived);
  // keep the aggregate program time in the ledger.
  report.flash_time += FlashModel::program_time(stream.size());

  auto fail_with_rollback = [&](UpdateFailure cause) {
    report.failure = cause;
    if (options.store != nullptr &&
        options.store->rollback_to_golden()) {
      report.rolled_back = true;
    }
    report.total_time = report.transfer.total_time;
    report.total_energy = report.transfer.node_energy;
    return report;
  };

  // Decompression: radio off; 30 kB SRAM block buffer on the MCU.
  mcu.allocate_sram("ota_block", static_cast<std::uint32_t>(kOtaBlockSize));
  std::vector<CompressedBlock> rx_blocks;
  {
    auto staged = flash.read(NodeAgent::kStagingBase, stream.size());
    std::size_t pos = 0;
    auto read32 = [&](std::size_t at) {
      return static_cast<std::uint32_t>(staged[at]) |
             (static_cast<std::uint32_t>(staged[at + 1]) << 8) |
             (static_cast<std::uint32_t>(staged[at + 2]) << 16) |
             (static_cast<std::uint32_t>(staged[at + 3]) << 24);
    };
    while (pos + 10 <= staged.size()) {
      CompressedBlock b;
      b.original_size = read32(pos);
      std::uint32_t clen = read32(pos + 4);
      b.crc16 = static_cast<std::uint16_t>(staged[pos + 8] |
                                           (staged[pos + 9] << 8));
      pos += 10;
      if (pos + clen > staged.size()) break;
      b.data.assign(staged.begin() + static_cast<std::ptrdiff_t>(pos),
                    staged.begin() + static_cast<std::ptrdiff_t>(pos + clen));
      pos += clen;
      rx_blocks.push_back(std::move(b));
    }
  }
  auto decompressed = decompress_blocks(rx_blocks);
  mcu.free_sram("ota_block");
  if (!decompressed || decompressed->size() != image.size()) {
    return fail_with_rollback(UpdateFailure::kDecodeFailed);
  }
  report.decompress_time =
      Seconds{static_cast<double>(image.size()) / kDecompressBytesPerSecond};

  if (options.store != nullptr) {
    // A/B layout: the new image goes to the standby slot; the active slot
    // keeps running until the fingerprint checks out.
    Slot slot = options.store->standby_slot();
    bool written =
        options.store->write_slot(slot, *decompressed, options.image_version);
    if (!written)
      written = options.store->write_slot(slot, *decompressed,
                                          options.image_version);
    std::uint32_t want = crc32_ieee(image.data);
    if (!written || options.store->slot_fingerprint(slot) != want) {
      return fail_with_rollback(UpdateFailure::kImageVerify);
    }
    if (!options.store->activate(slot)) {
      // The image verified but carries an older version than the node has
      // already run: the anti-rollback ratchet refuses it. No golden
      // rollback — the node survives on its current boot image.
      report.failure = UpdateFailure::kRejectedRollback;
      if (auto* m = obs::metrics())
        m->counter("adversary.ota.rollback_rejected").add();
      report.total_time = report.transfer.total_time;
      report.total_energy = report.transfer.node_energy;
      return report;
    }
    report.slot = slot;
    auto sectors = (decompressed->size() + FlashModel::kSectorSize - 1) /
                   FlashModel::kSectorSize;
    report.flash_time +=
        Seconds{FlashModel::sector_erase_time().value() *
                static_cast<double>(sectors)} +
        FlashModel::program_time(decompressed->size());
  } else {
    // Legacy layout: boot image at offset 0.
    flash.erase_range(0, decompressed->size());
    flash.program(0, *decompressed);
    report.flash_time += FlashModel::program_time(decompressed->size());
  }

  // Reprogram.
  if (target == UpdateTarget::kFpga) {
    fpga::ProgrammingModel prog;
    report.reprogram_time = prog.load_time(decompressed->size());
  } else {
    // MCU self-flash at ~32 kB/s effective.
    report.reprogram_time =
        Seconds{static_cast<double>(decompressed->size()) / 32768.0};
  }

  // Energy: radio phase already accounted; add MCU-active phases.
  power::PlatformPowerModel power_model;
  Milliwatts mcu_active = power_model.draw(power::Activity::kDecompress);
  Seconds mcu_time =
      report.decompress_time + report.flash_time + report.reprogram_time;
  report.total_energy = report.transfer.node_energy + mcu_active * mcu_time;
  report.total_time = report.transfer.total_time + mcu_time;
  report.success = true;
  return report;
}

Milliwatts amortized_update_power(const UpdateReport& report, Seconds period) {
  if (period.value() <= 0.0)
    throw std::invalid_argument("amortized_update_power: bad period");
  return Milliwatts{report.total_energy.value() / period.value()};
}

}  // namespace tinysdr::ota
