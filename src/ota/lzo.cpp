#include "ota/lzo.hpp"

#include <array>
#include <cstring>

#include "common/crc.hpp"

namespace tinysdr::ota {

namespace {

constexpr std::size_t kHashBits = 13;
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::size_t hash4(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::vector<std::uint8_t> lzo_compress(std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + 16);

  // Hash table of last-seen positions for 4-byte prefixes (the "small
  // dictionary" miniLZO keeps; 2^13 entries * 4 B < 16 KiB auxiliary RAM).
  std::array<std::uint32_t, kHashSize> table{};
  constexpr std::uint32_t kUnset = 0xFFFFFFFF;
  table.fill(kUnset);

  std::size_t literal_start = 0;
  std::size_t pos = 0;

  auto flush_literals = [&](std::size_t end) {
    std::size_t run_start = literal_start;
    while (run_start < end) {
      std::size_t run =
          std::min<std::size_t>(kMaxLiteralRun, end - run_start);
      out.push_back(static_cast<std::uint8_t>(run - 1));
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(run_start),
                 input.begin() + static_cast<std::ptrdiff_t>(run_start + run));
      run_start += run;
    }
    literal_start = end;
  };

  while (pos + kMinMatch <= input.size()) {
    std::uint32_t prefix = read_u32(&input[pos]);
    std::size_t h = hash4(prefix);
    std::uint32_t candidate = table[h];
    table[h] = static_cast<std::uint32_t>(pos);

    bool matched = false;
    if (candidate != kUnset) {
      std::size_t cand = candidate;
      std::size_t offset = pos - cand;
      if (offset >= 1 && offset <= kMaxOffset &&
          read_u32(&input[cand]) == prefix) {
        // Extend the match.
        std::size_t len = kMinMatch;
        std::size_t max_len =
            std::min(kMaxMatch, input.size() - pos);
        while (len < max_len && input[cand + len] == input[pos + len]) ++len;

        flush_literals(pos);
        out.push_back(
            static_cast<std::uint8_t>(0x20 + (len - kMinMatch)));
        out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
        out.push_back(static_cast<std::uint8_t>(offset >> 8));

        // Seed the table sparsely inside the match (every 4th position) —
        // keeps compression strong on periodic data without O(n*len) cost.
        for (std::size_t k = 1; k < len && pos + k + kMinMatch <= input.size();
             k += 4)
          table[hash4(read_u32(&input[pos + k]))] =
              static_cast<std::uint32_t>(pos + k);

        pos += len;
        literal_start = pos;
        matched = true;
      }
    }
    if (!matched) ++pos;
  }
  flush_literals(input.size());
  return out;
}

std::optional<std::vector<std::uint8_t>> lzo_decompress(
    std::span<const std::uint8_t> input, std::size_t expected_size) {
  std::vector<std::uint8_t> out;
  out.reserve(expected_size);
  std::size_t pos = 0;
  while (pos < input.size()) {
    std::uint8_t token = input[pos++];
    if (token < 0x20) {
      std::size_t run = static_cast<std::size_t>(token) + 1;
      if (pos + run > input.size()) return std::nullopt;
      if (out.size() + run > expected_size) return std::nullopt;
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(pos),
                 input.begin() + static_cast<std::ptrdiff_t>(pos + run));
      pos += run;
    } else {
      if (pos + 2 > input.size()) return std::nullopt;
      std::size_t len = static_cast<std::size_t>(token) - 0x20 + kMinMatch;
      std::size_t offset = static_cast<std::size_t>(input[pos]) |
                           (static_cast<std::size_t>(input[pos + 1]) << 8);
      pos += 2;
      if (offset == 0 || offset > out.size()) return std::nullopt;
      if (out.size() + len > expected_size) return std::nullopt;
      // Byte-by-byte copy: overlapping matches (offset < len) replicate,
      // which is the RLE trick LZ77 decoders rely on.
      std::size_t src = out.size() - offset;
      for (std::size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    }
  }
  if (out.size() != expected_size) return std::nullopt;
  return out;
}

std::vector<CompressedBlock> compress_blocks(
    std::span<const std::uint8_t> image, std::size_t block_size) {
  std::vector<CompressedBlock> blocks;
  for (std::size_t start = 0; start < image.size(); start += block_size) {
    std::size_t len = std::min(block_size, image.size() - start);
    CompressedBlock block;
    block.original_size = static_cast<std::uint32_t>(len);
    block.data = lzo_compress(image.subspan(start, len));
    block.crc16 = crc16_ccitt(block.data);
    blocks.push_back(std::move(block));
  }
  return blocks;
}

std::optional<std::vector<std::uint8_t>> decompress_blocks(
    const std::vector<CompressedBlock>& blocks) {
  std::vector<std::uint8_t> image;
  for (const auto& block : blocks) {
    if (crc16_ccitt(block.data) != block.crc16) return std::nullopt;
    auto chunk = lzo_decompress(block.data, block.original_size);
    if (!chunk) return std::nullopt;
    image.insert(image.end(), chunk->begin(), chunk->end());
  }
  return image;
}

std::size_t compressed_size(const std::vector<CompressedBlock>& blocks) {
  std::size_t total = 0;
  for (const auto& b : blocks) total += b.data.size();
  return total;
}

}  // namespace tinysdr::ota
