#include "ota/flash.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/crc.hpp"

namespace tinysdr::ota {

bool FlashModel::erase_sector(std::size_t address) {
  if (address >= kCapacity)
    throw std::out_of_range("FlashModel::erase_sector: past end");
  std::size_t base = address - (address % kSectorSize);
  ++erase_count_;
  if (sector_erase_hook_ && sector_erase_hook_(base)) {
    // Power/voltage fault partway through: only the first half blanks.
    ++erase_failures_;
    std::fill(
        memory_.begin() + static_cast<std::ptrdiff_t>(base),
        memory_.begin() + static_cast<std::ptrdiff_t>(base + kSectorSize / 2),
        0xFF);
    return false;
  }
  std::fill(memory_.begin() + static_cast<std::ptrdiff_t>(base),
            memory_.begin() + static_cast<std::ptrdiff_t>(base + kSectorSize),
            0xFF);
  return true;
}

bool FlashModel::erase_range(std::size_t address, std::size_t length) {
  if (length == 0) return true;
  if (address + length > kCapacity)
    throw std::out_of_range("FlashModel::erase_range: past end");
  bool ok = true;
  std::size_t first = address - (address % kSectorSize);
  for (std::size_t s = first; s < address + length; s += kSectorSize)
    ok = erase_sector(s) && ok;
  return ok;
}

bool FlashModel::program(std::size_t address,
                         std::span<const std::uint8_t> data) {
  if (address + data.size() > kCapacity)
    throw std::out_of_range("FlashModel::program: past end");
  bool ok = true;
  // Real parts program through the page buffer; faults are per page op.
  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t page_end = address + pos + kPageSize -
                           ((address + pos) % kPageSize);
    std::size_t len = std::min(data.size() - pos, page_end - (address + pos));
    std::optional<PageProgramFault> fault;
    if (page_program_hook_) fault = page_program_hook_(address + pos, len);
    std::size_t commit = fault ? std::min(fault->committed, len) : len;
    for (std::size_t i = 0; i < commit; ++i) {
      // NOR: programming can only clear bits.
      memory_[address + pos + i] &= data[pos + i];
    }
    if (fault) {
      ++program_failures_;
      ok = false;
      if (commit < len) {
        // Torn byte: the bits in torn_keep_mask refuse to clear.
        memory_[address + pos + commit] &=
            static_cast<std::uint8_t>(data[pos + commit] |
                                      fault->torn_keep_mask);
      }
      bytes_programmed_ += commit + (commit < len ? 1 : 0);
    } else {
      bytes_programmed_ += len;
    }
    pos += len;
  }
  return ok;
}

std::vector<std::uint8_t> FlashModel::read(std::size_t address,
                                           std::size_t length) const {
  if (address + length > kCapacity)
    throw std::out_of_range("FlashModel::read: past end");
  return {memory_.begin() + static_cast<std::ptrdiff_t>(address),
          memory_.begin() + static_cast<std::ptrdiff_t>(address + length)};
}

bool FlashModel::is_erased(std::size_t address, std::size_t length) const {
  if (address + length > kCapacity)
    throw std::out_of_range("FlashModel::is_erased: past end");
  for (std::size_t i = 0; i < length; ++i)
    if (memory_[address + i] != 0xFF) return false;
  return true;
}

const char* to_string(Slot slot) {
  switch (slot) {
    case Slot::kA:
      return "A";
    case Slot::kB:
      return "B";
    case Slot::kGolden:
      return "golden";
  }
  return "?";
}

void FirmwareStore::store(const std::string& name,
                          std::span<const std::uint8_t> image) {
  // Reuse the slot if replacing; otherwise allocate after the last image,
  // rounded to sector alignment so erases never clip a neighbour.
  std::size_t offset;
  if (auto it = entries_.find(name);
      it != entries_.end() && it->second.length >= image.size()) {
    offset = it->second.offset;
  } else {
    offset = next_offset_;
    std::size_t need = image.size() + FlashModel::kSectorSize -
                       (image.size() % FlashModel::kSectorSize);
    if (offset + need > FlashModel::kCapacity)
      throw std::length_error("FirmwareStore: flash exhausted");
    next_offset_ = offset + need;
  }
  flash_->erase_range(offset, image.size());
  flash_->program(offset, image);
  entries_[name] = Entry{offset, image.size(), crc32_ieee(image)};
}

std::optional<std::vector<std::uint8_t>> FirmwareStore::load(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  auto data = flash_->read(it->second.offset, it->second.length);
  if (crc32_ieee(data) != it->second.crc32) return std::nullopt;
  return data;
}

std::size_t FirmwareStore::slot_base(Slot slot) {
  switch (slot) {
    case Slot::kA:
      return kSlotABase;
    case Slot::kB:
      return kSlotBBase;
    case Slot::kGolden:
      return kGoldenBase;
  }
  return kGoldenBase;
}

bool FirmwareStore::write_slot(Slot slot, std::span<const std::uint8_t> image,
                               std::uint32_t version) {
  if (image.size() > kSlotCapacity)
    throw std::length_error("FirmwareStore::write_slot: image too large");
  std::size_t base = slot_base(slot);
  auto& st = state(slot);
  st.valid = false;
  st.length = image.size();
  st.crc32 = crc32_ieee(image);
  st.version = version;
  // Erase with verify-and-retry, as real update firmware does (a faulted
  // erase leaves stuck bits that a plain re-program cannot clear).
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (flash_->erase_range(base, image.size()) &&
        flash_->is_erased(base, image.size()))
      break;
  }
  flash_->program(base, image);
  // Read-back fingerprint verification decides validity.
  auto back = flash_->read(base, image.size());
  st.valid = crc32_ieee(back) == st.crc32;
  return st.valid;
}

std::optional<std::vector<std::uint8_t>> FirmwareStore::load_slot(
    Slot slot) const {
  const auto& st = state(slot);
  if (!st.valid && st.length == 0) return std::nullopt;
  auto data = flash_->read(slot_base(slot), st.length);
  if (crc32_ieee(data) != st.crc32) return std::nullopt;
  return data;
}

bool FirmwareStore::activate(Slot slot) {
  if (!load_slot(slot)) return false;
  // Anti-rollback ratchet: an image older than anything this node already
  // ran is refused — a downgrade attack, not a benign failure. The golden
  // image stays reachable through rollback_to_golden(), which is the
  // recovery path, not an activation.
  if (state(slot).version < min_version_) {
    ++rollback_rejections_;
    return false;
  }
  min_version_ = std::max(min_version_, state(slot).version);
  active_ = slot;
  return true;
}

bool FirmwareStore::rollback_to_golden() {
  ++rollbacks_;
  if (!load_slot(Slot::kGolden)) return false;
  active_ = Slot::kGolden;
  return true;
}

std::optional<std::vector<std::uint8_t>> FirmwareStore::boot_image() {
  if (auto image = load_slot(active_)) return image;
  // Active image corrupt: fall back to the factory golden image.
  if (active_ != Slot::kGolden) {
    if (rollback_to_golden()) return load_slot(Slot::kGolden);
    return std::nullopt;
  }
  return std::nullopt;
}

std::uint32_t FirmwareStore::slot_fingerprint(Slot slot) const {
  return state(slot).crc32;
}

bool FirmwareStore::slot_valid(Slot slot) const {
  return load_slot(slot).has_value();
}

}  // namespace tinysdr::ota
