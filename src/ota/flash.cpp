#include "ota/flash.hpp"

#include <stdexcept>

#include "common/crc.hpp"

namespace tinysdr::ota {

void FlashModel::erase_sector(std::size_t address) {
  if (address >= kCapacity)
    throw std::out_of_range("FlashModel::erase_sector: past end");
  std::size_t base = address - (address % kSectorSize);
  std::fill(memory_.begin() + static_cast<std::ptrdiff_t>(base),
            memory_.begin() + static_cast<std::ptrdiff_t>(base + kSectorSize),
            0xFF);
  ++erase_count_;
}

void FlashModel::erase_range(std::size_t address, std::size_t length) {
  if (length == 0) return;
  if (address + length > kCapacity)
    throw std::out_of_range("FlashModel::erase_range: past end");
  std::size_t first = address - (address % kSectorSize);
  for (std::size_t s = first; s < address + length; s += kSectorSize)
    erase_sector(s);
}

void FlashModel::program(std::size_t address,
                         std::span<const std::uint8_t> data) {
  if (address + data.size() > kCapacity)
    throw std::out_of_range("FlashModel::program: past end");
  for (std::size_t i = 0; i < data.size(); ++i) {
    // NOR: programming can only clear bits.
    memory_[address + i] &= data[i];
  }
  bytes_programmed_ += data.size();
}

std::vector<std::uint8_t> FlashModel::read(std::size_t address,
                                           std::size_t length) const {
  if (address + length > kCapacity)
    throw std::out_of_range("FlashModel::read: past end");
  return {memory_.begin() + static_cast<std::ptrdiff_t>(address),
          memory_.begin() + static_cast<std::ptrdiff_t>(address + length)};
}

bool FlashModel::is_erased(std::size_t address, std::size_t length) const {
  if (address + length > kCapacity)
    throw std::out_of_range("FlashModel::is_erased: past end");
  for (std::size_t i = 0; i < length; ++i)
    if (memory_[address + i] != 0xFF) return false;
  return true;
}

void FirmwareStore::store(const std::string& name,
                          std::span<const std::uint8_t> image) {
  // Reuse the slot if replacing; otherwise allocate after the last image,
  // rounded to sector alignment so erases never clip a neighbour.
  std::size_t offset;
  if (auto it = entries_.find(name);
      it != entries_.end() && it->second.length >= image.size()) {
    offset = it->second.offset;
  } else {
    offset = next_offset_;
    std::size_t need = image.size() + FlashModel::kSectorSize -
                       (image.size() % FlashModel::kSectorSize);
    if (offset + need > FlashModel::kCapacity)
      throw std::length_error("FirmwareStore: flash exhausted");
    next_offset_ = offset + need;
  }
  flash_->erase_range(offset, image.size());
  flash_->program(offset, image);
  entries_[name] = Entry{offset, image.size(), crc32_ieee(image)};
}

std::optional<std::vector<std::uint8_t>> FirmwareStore::load(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  auto data = flash_->read(it->second.offset, it->second.length);
  if (crc32_ieee(data) != it->second.crc32) return std::nullopt;
  return data;
}

}  // namespace tinysdr::ota
