// Broadcast OTA update protocol (paper §7 future work: "we could explore
// modified MAC protocols that simultaneously broadcast the updates across
// the network to reduce programming time").
//
// Instead of updating nodes sequentially (§3.4's stop-and-wait unicast),
// the AP broadcasts every DATA packet once to all nodes, then runs repair
// rounds: it polls each node for a bitmap of missing sequence numbers and
// rebroadcasts the union until every node is complete (or the round limit
// hits). For N nodes with per-node loss p, broadcast sends ~size*(1+p*N')
// instead of ~N*size — the win Fig. 14's sequential times leave on the
// table.
#pragma once

#include <vector>

#include "ota/protocol.hpp"

namespace tinysdr::ota {

struct BroadcastOutcome {
  std::size_t nodes_complete = 0;
  std::size_t repair_rounds = 0;
  std::size_t packets_broadcast = 0;  ///< including repairs
  Seconds total_time{0.0};

  /// Speedup factor vs a given sequential campaign duration.
  [[nodiscard]] double speedup_vs(Seconds sequential_total) const {
    return total_time.value() <= 0.0
               ? 0.0
               : sequential_total.value() / total_time.value();
  }
};

class BroadcastUpdater {
 public:
  explicit BroadcastUpdater(lora::LoraParams params = ota_link_params())
      : params_(params) {}

  /// Broadcast `image` to all `links` (one lossy link per node).
  /// @param max_rounds  repair-round budget
  [[nodiscard]] BroadcastOutcome broadcast(
      const std::vector<std::uint8_t>& image, std::vector<OtaLink>& links,
      std::size_t max_rounds = 20) const;

 private:
  lora::LoraParams params_;
};

}  // namespace tinysdr::ota
