// miniLZO-class LZ77 codec for OTA firmware compression (paper §3.4).
//
// The paper compresses update images with miniLZO on the access point and
// decompresses on the MSP432. We implement a codec from scratch with the
// same operational profile:
//   - compression uses a small hash table (16 KiB) — AP side;
//   - decompression needs ZERO working memory beyond the output buffer —
//     exactly the constraint that lets the MCU decompress 30 kB blocks
//     in SRAM;
//   - byte-oriented tokens, single pass, no entropy coder.
//
// Token format ("tlzo"):
//   0x00..0x1F : literal run, count = token + 1 (1..32), bytes follow
//   0x20..0xFF : match, length = token - 0x20 + 4 (4..227), followed by a
//                2-byte little-endian backward offset (1..65535)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace tinysdr::ota {

inline constexpr std::size_t kMinMatch = 4;
inline constexpr std::size_t kMaxMatch = 227;
inline constexpr std::size_t kMaxOffset = 65535;
inline constexpr std::size_t kMaxLiteralRun = 32;

/// Compress a buffer. Output is never much larger than input
/// (worst case: input + input/32 + 1).
[[nodiscard]] std::vector<std::uint8_t> lzo_compress(
    std::span<const std::uint8_t> input);

/// Decompress; returns nullopt on malformed input (bad offset/overrun).
/// `expected_size` bounds the output (the block header carries it).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> lzo_decompress(
    std::span<const std::uint8_t> input, std::size_t expected_size);

/// Worst-case compressed size for an input length.
[[nodiscard]] constexpr std::size_t lzo_worst_case(std::size_t n) {
  return n + n / kMaxLiteralRun + 2;
}

// ----------------------------------------------------------------- blocks

/// The paper splits images into 30 kB blocks so each fits the MCU's SRAM
/// during decompression (§3.4).
inline constexpr std::size_t kOtaBlockSize = 30 * 1024;

struct CompressedBlock {
  std::uint32_t original_size = 0;
  std::uint16_t crc16 = 0;  ///< CRC over the *compressed* payload
  std::vector<std::uint8_t> data;
};

/// Split + compress an image into blocks.
[[nodiscard]] std::vector<CompressedBlock> compress_blocks(
    std::span<const std::uint8_t> image,
    std::size_t block_size = kOtaBlockSize);

/// Reassemble an image from blocks; nullopt on CRC or decode failure.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> decompress_blocks(
    const std::vector<CompressedBlock>& blocks);

/// Total compressed bytes across blocks (what goes over the air).
[[nodiscard]] std::size_t compressed_size(
    const std::vector<CompressedBlock>& blocks);

}  // namespace tinysdr::ota
