#include "ota/broadcast.hpp"

#include <algorithm>

namespace tinysdr::ota {

BroadcastOutcome BroadcastUpdater::broadcast(
    const std::vector<std::uint8_t>& image, std::vector<OtaLink>& links,
    std::size_t max_rounds) const {
  BroadcastOutcome outcome;
  const std::size_t packet_count = (image.size() + kDataPayload - 1) /
                                   kDataPayload;
  // missing[node][seq] — start with everything missing everywhere.
  std::vector<std::vector<bool>> missing(
      links.size(), std::vector<bool>(packet_count, true));

  // Per-packet airtime (size of the last packet differs; use the common
  // full-size airtime for all but the tail).
  auto payload_of = [&](std::size_t seq) {
    return std::min(kDataPayload, image.size() - seq * kDataPayload);
  };
  OtaPacket ack{OtaPacketType::kDataAck, 0, 0, 0, {}};
  const Seconds poll_time =
      links.empty() ? Seconds{0.0}
                    : links[0].airtime(ack.wire_size() + 8);  // bitmap poll

  for (std::size_t round = 0; round < max_rounds; ++round) {
    // Union of missing sequence numbers across incomplete nodes.
    std::vector<std::size_t> to_send;
    for (std::size_t seq = 0; seq < packet_count; ++seq) {
      bool any = false;
      for (const auto& m : missing)
        if (m[seq]) {
          any = true;
          break;
        }
      if (any) to_send.push_back(seq);
    }
    if (to_send.empty()) break;
    ++outcome.repair_rounds;

    for (std::size_t seq : to_send) {
      std::size_t bytes = payload_of(seq);
      OtaPacket data{OtaPacketType::kData, 0xFFFF,
                     static_cast<std::uint16_t>(seq), 0, {}};
      data.payload.resize(bytes);
      Seconds t = links[0].airtime(data.wire_size());
      outcome.total_time += t;
      ++outcome.packets_broadcast;
      // Every node independently receives or loses this broadcast.
      for (std::size_t n = 0; n < links.size(); ++n) {
        if (!missing[n][seq]) continue;
        if (links[n].deliver(data.wire_size())) missing[n][seq] = false;
      }
    }

    // Repair poll: each still-incomplete node reports its bitmap.
    for (std::size_t n = 0; n < links.size(); ++n) {
      bool incomplete =
          std::any_of(missing[n].begin(), missing[n].end(),
                      [](bool m) { return m; });
      if (incomplete || outcome.repair_rounds == 1)
        outcome.total_time += poll_time;
    }
  }

  for (const auto& m : missing) {
    if (std::none_of(m.begin(), m.end(), [](bool x) { return x; }))
      ++outcome.nodes_complete;
  }
  return outcome;
}

}  // namespace tinysdr::ota
