#include "ota/protocol.hpp"

#include <cmath>

#include "power/platform_power.hpp"

namespace tinysdr::ota {

lora::LoraParams ota_link_params() {
  lora::LoraParams p{8, Hertz::from_kilohertz(500.0), lora::CodingRate::kCr46};
  p.preamble_symbols = kOtaPreambleSymbols;
  return p;
}

std::size_t OtaPacket::wire_size() const {
  // type(1) + device(2) + seq(2) + crc16(2) [+ crc32(4) for END] + payload.
  std::size_t base = 7;
  if (type == OtaPacketType::kEnd) base += 4;
  return base + payload.size();
}

double OtaLink::packet_error_rate(std::size_t payload_bytes) const {
  Dbm sensitivity = lora::sx1276_sensitivity(params_.sf, params_.bandwidth);
  double margin = rssi_ - sensitivity;
  // Logistic waterfall ~3 dB wide, scaled mildly by packet length (longer
  // packets waterfall slightly earlier).
  double length_penalty =
      0.5 * std::log10(1.0 + static_cast<double>(payload_bytes) / 20.0);
  double x = (margin - length_penalty) / 0.8;
  double per = 1.0 / (1.0 + std::exp(x));
  return per;
}

Seconds OtaLink::airtime(std::size_t payload_bytes) const {
  return lora::time_on_air(params_, payload_bytes);
}

bool OtaLink::deliver(std::size_t payload_bytes) {
  return !rng_.next_bool(packet_error_rate(payload_bytes));
}

UpdateOutcome AccessPoint::transfer(
    const std::vector<std::uint8_t>& compressed_image,
    std::uint16_t device_id, OtaLink& link, std::size_t max_retries) const {
  UpdateOutcome outcome;
  power::PlatformPowerModel power_model;
  const Milliwatts rx_draw =
      power_model.draw(power::Activity::kOtaReceive);

  auto account = [&](Seconds on_air, Seconds node_listen) {
    outcome.airtime += on_air;
    outcome.total_time += on_air + node_listen;
    outcome.node_energy += rx_draw * (on_air + node_listen);
  };

  // Control-plane exchange: request -> ready (retry on loss).
  OtaPacket request{OtaPacketType::kProgrammingRequest, device_id, 0, 0, {}};
  OtaPacket ready{OtaPacketType::kReady, device_id, 0, 0, {}};
  bool associated = false;
  for (std::size_t attempt = 0; attempt < max_retries; ++attempt) {
    Seconds t_req = link.airtime(request.wire_size());
    Seconds t_rdy = link.airtime(ready.wire_size());
    account(t_req + t_rdy, Seconds{0.0});
    if (link.deliver(request.wire_size()) && link.deliver(ready.wire_size())) {
      associated = true;
      break;
    }
    outcome.total_time += Seconds::from_milliseconds(50.0);  // retry backoff
  }
  if (!associated) return outcome;

  // Data plane: stop-and-wait with per-packet ACKs (§3.4).
  OtaPacket ack{OtaPacketType::kDataAck, device_id, 0, 0, {}};
  const Seconds t_ack = link.airtime(ack.wire_size());
  std::size_t offset = 0;
  std::uint16_t seq = 0;
  while (offset < compressed_image.size()) {
    std::size_t chunk = std::min(kDataPayload, compressed_image.size() - offset);
    OtaPacket data{OtaPacketType::kData, device_id, seq, 0, {}};
    data.payload.assign(compressed_image.begin() + static_cast<std::ptrdiff_t>(offset),
                        compressed_image.begin() +
                            static_cast<std::ptrdiff_t>(offset + chunk));
    const Seconds t_data = link.airtime(data.wire_size());

    bool delivered = false;
    std::size_t attempts = 0;
    while (!delivered) {
      if (attempts++ >= max_retries) return outcome;  // link too poor
      account(t_data, Seconds{0.0});
      bool data_ok = link.deliver(data.wire_size());
      if (!data_ok) {
        // No ACK comes back; AP retransmits after a timeout.
        outcome.total_time += t_ack + Seconds::from_milliseconds(20.0);
        ++outcome.retransmissions;
        continue;
      }
      account(t_ack, Seconds{0.0});
      bool ack_ok = link.deliver(ack.wire_size());
      if (!ack_ok) {
        outcome.total_time += Seconds::from_milliseconds(20.0);
        ++outcome.retransmissions;
        continue;  // duplicate data; node dedups by seq
      }
      delivered = true;
    }
    ++outcome.data_packets;
    offset += chunk;
    ++seq;
  }

  // End-of-update handshake.
  OtaPacket end{OtaPacketType::kEnd, device_id, seq, 0, {}};
  for (std::size_t attempt = 0; attempt < max_retries; ++attempt) {
    Seconds t_end = link.airtime(end.wire_size());
    account(t_end + t_ack, Seconds{0.0});
    if (link.deliver(end.wire_size()) && link.deliver(ack.wire_size())) {
      outcome.success = true;
      break;
    }
    outcome.total_time += Seconds::from_milliseconds(20.0);
  }
  return outcome;
}

}  // namespace tinysdr::ota
