#include "ota/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>

#include "common/crc.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "power/platform_power.hpp"

namespace tinysdr::ota {

lora::LoraParams ota_link_params() {
  lora::LoraParams p{8, Hertz::from_kilohertz(500.0), lora::CodingRate::kCr46};
  p.preamble_symbols = kOtaPreambleSymbols;
  return p;
}

std::size_t OtaPacket::wire_size() const {
  // type(1) + device(2) + seq(2) + crc16(2) [+ crc32(4) for END] + payload.
  std::size_t base = 7;
  if (type == OtaPacketType::kEnd) base += 4;
  return base + payload.size();
}

const char* to_string(UpdateFailure failure) {
  switch (failure) {
    case UpdateFailure::kNone:
      return "none";
    case UpdateFailure::kAssociation:
      return "association";
    case UpdateFailure::kRetryBudget:
      return "retry-budget";
    case UpdateFailure::kDeadline:
      return "deadline";
    case UpdateFailure::kEndHandshake:
      return "end-handshake";
    case UpdateFailure::kStreamCorrupt:
      return "stream-corrupt";
    case UpdateFailure::kDecodeFailed:
      return "decode-failed";
    case UpdateFailure::kImageVerify:
      return "image-verify";
    case UpdateFailure::kRejectedRollback:
      return "rejected-rollback";
  }
  return "?";
}

// ------------------------------------------------------------------ OtaLink

double OtaLink::packet_error_rate(std::size_t payload_bytes) const {
  Dbm sensitivity = lora::sx1276_sensitivity(params_.sf, params_.bandwidth);
  double margin = rssi_ - sensitivity;
  // Logistic waterfall ~3 dB wide, scaled mildly by packet length (longer
  // packets waterfall slightly earlier).
  double length_penalty =
      0.5 * std::log10(1.0 + static_cast<double>(payload_bytes) / 20.0);
  double x = (margin - length_penalty) / 0.8;
  double per = 1.0 / (1.0 + std::exp(x));
  return per;
}

double OtaLink::mean_error_rate(std::size_t payload_bytes) const {
  double per = packet_error_rate(payload_bytes);
  if (!burst_) return per;
  double burst_loss = burst_->params().mean_loss();
  return 1.0 - (1.0 - per) * (1.0 - burst_loss);
}

Seconds OtaLink::airtime(std::size_t payload_bytes) const {
  return lora::time_on_air(params_, payload_bytes);
}

void OtaLink::set_burst(const channel::GilbertElliottParams& params) {
  burst_.emplace(params, Rng{rng_.next_u32(), 0x6E11});
}

bool OtaLink::deliver(std::size_t payload_bytes) {
  // Exactly one draw of each loss process per delivery attempt, so
  // retransmissions redraw and runs replay from the seed.
  bool rssi_lost = rng_.next_bool(packet_error_rate(payload_bytes));
  bool burst_lost = burst_ && burst_->lose_packet();
  bool delivered = !rssi_lost && !burst_lost;
  if (auto* m = obs::metrics()) {
    m->counter("radio.link_attempts").add();
    if (!delivered) m->counter("radio.link_drops").add();
  }
  if (!delivered) {
    if (auto* t = obs::tracer()) {
      t->instant("radio", "packet-loss",
                 {obs::TraceArg::str("cause", rssi_lost ? "rssi" : "burst"),
                  obs::TraceArg::num("bytes",
                                     static_cast<double>(payload_bytes))});
    }
  }
  return delivered;
}

// ---------------------------------------------------------------- NodeAgent

namespace {

constexpr std::uint32_t kSessionMagic = 0x4F544131;  // "OTA1"
constexpr std::size_t kSessionHeader = 12;           // magic + id + bytes

void push_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

std::uint32_t read_u32(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint32_t>(in[at]) |
         (static_cast<std::uint32_t>(in[at + 1]) << 8) |
         (static_cast<std::uint32_t>(in[at + 2]) << 16) |
         (static_cast<std::uint32_t>(in[at + 3]) << 24);
}

}  // namespace

NodeAgent::NodeAgent(std::uint16_t device_id, FlashModel& flash,
                     sim::FaultInjector* faults, mcu::Msp432* mcu,
                     Seconds watchdog_timeout)
    : device_id_(device_id),
      flash_(&flash),
      faults_(faults),
      mcu_(mcu),
      watchdog_timeout_(watchdog_timeout) {
  install_flash_hooks();
}

void NodeAgent::install_flash_hooks() {
  if (!faults_) return;
  flash_->set_page_program_hook(
      [this](std::size_t address, std::size_t length)
          -> std::optional<PageProgramFault> {
        auto fault = faults_->page_program_fault(address, length);
        if (!fault) return std::nullopt;
        return PageProgramFault{fault->committed, fault->torn_keep_mask};
      });
  flash_->set_sector_erase_hook([this](std::size_t address) {
    return faults_->sector_erase_fault(address);
  });
}

std::size_t NodeAgent::chunk_bytes(std::size_t seq) const {
  std::size_t offset = seq * kDataPayload;
  return std::min(kDataPayload, stream_bytes_ - offset);
}

bool NodeAgent::has_chunk(std::size_t seq) const {
  if (seq >= total_chunks_) return false;
  return (bitmap_[seq / 8] >> (seq % 8)) & 1u;
}

void NodeAgent::mark_chunk(std::size_t seq) {
  bitmap_[seq / 8] |= static_cast<std::uint8_t>(1u << (seq % 8));
}

bool NodeAgent::begin_session(std::uint32_t session_id,
                              std::size_t stream_bytes) {
  if (stream_bytes > kStagingCapacity)
    throw std::length_error("NodeAgent: stream exceeds staging region");
  if (mcu_) mcu_->kick_watchdog();
  if (session_active_ && session_id_ == session_id &&
      stream_bytes_ == stream_bytes)
    return true;  // already running this session (AP re-associated)

  // A matching checkpoint in flash means we crashed mid-transfer: resume.
  std::size_t chunks = (stream_bytes + kDataPayload - 1) / kDataPayload;
  auto record = flash_->read(kSessionSector,
                             kSessionHeader + (chunks + 7) / 8 + 4);
  if (read_u32(record, 0) == kSessionMagic &&
      read_u32(record, 4) == session_id &&
      read_u32(record, 8) == static_cast<std::uint32_t>(stream_bytes)) {
    std::size_t body = kSessionHeader + (chunks + 7) / 8;
    std::uint32_t crc = read_u32(record, body);
    if (crc32_ieee(std::span(record).first(body)) == crc) {
      session_id_ = session_id;
      stream_bytes_ = stream_bytes;
      total_chunks_ = chunks;
      bitmap_.assign(record.begin() + kSessionHeader,
                     record.begin() + static_cast<std::ptrdiff_t>(body));
      received_ = 0;
      bytes_received_ = 0;
      for (std::size_t seq = 0; seq < total_chunks_; ++seq) {
        if ((bitmap_[seq / 8] >> (seq % 8)) & 1u) {
          ++received_;
          bytes_received_ += chunk_bytes(seq);
        }
      }
      session_active_ = true;
      ++resumes_;
      if (auto* t = obs::tracer()) {
        t->instant("ota", "session-resume",
                   {obs::TraceArg::num("chunks_held",
                                       static_cast<double>(received_))});
      }
      if (auto* f = obs::flight()) {
        f->record(obs::FlightLevel::kInfo, "ota", "session-resume",
                  {obs::TraceArg::num("chunks_held",
                                      static_cast<double>(received_))});
      }
      if (auto* m = obs::metrics()) m->counter("ota.session_resumes").add();
      if (mcu_) mcu_->arm_watchdog(watchdog_timeout_);
      return true;
    }
  }

  // Fresh session: erase the staging region (verify-and-retry, since an
  // injected erase fault leaves stuck bits a re-program cannot clear).
  session_id_ = session_id;
  stream_bytes_ = stream_bytes;
  total_chunks_ = chunks;
  bitmap_.assign((chunks + 7) / 8, 0);
  received_ = 0;
  bytes_received_ = 0;
  session_active_ = true;
  if (stream_bytes > 0) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (flash_->erase_range(kStagingBase, stream_bytes) &&
          flash_->is_erased(kStagingBase, stream_bytes))
        break;
    }
  }
  if (mcu_) mcu_->arm_watchdog(watchdog_timeout_);
  persist_session();
  return false;
}

NodeAgent::RxStatus NodeAgent::receive_chunk(
    std::uint16_t seq, std::span<const std::uint8_t> payload, bool corrupted) {
  if (!online_ || !session_active_) return RxStatus::kNoSession;
  if (mcu_) mcu_->kick_watchdog();
  // The per-packet CRC16 catches in-flight corruption; the packet is
  // simply dropped and shows up as a gap in the bitmap.
  if (corrupted) return RxStatus::kCorrupt;
  if (seq >= total_chunks_ || payload.size() != chunk_bytes(seq))
    return RxStatus::kCorrupt;
  if (has_chunk(seq)) return RxStatus::kDuplicate;

  // "Considering the LoRa radio takes more power than the MCU, we
  // immediately write the data to flash" (§3.4) — then read back to
  // verify, as real update firmware does.
  std::size_t address = kStagingBase + seq * kDataPayload;
  flash_->program(address, payload);
  auto back = flash_->read(address, payload.size());
  if (!std::equal(back.begin(), back.end(), payload.begin())) {
    ++flash_write_errors_;
    if (auto* t = obs::tracer()) {
      t->instant("ota", "flash-write-error",
                 {obs::TraceArg::num("seq", static_cast<double>(seq))});
    }
    if (auto* f = obs::flight()) {
      f->record(obs::FlightLevel::kWarn, "ota", "flash-write-error",
                {obs::TraceArg::num("seq", static_cast<double>(seq))});
    }
    if (auto* m = obs::metrics()) m->counter("ota.flash_write_errors").add();
    return RxStatus::kFlashError;
  }
  mark_chunk(seq);
  ++received_;
  bytes_received_ += payload.size();
  // A scheduled brownout fires on the byte count crossing its offset.
  if (faults_ && faults_->brownout_due(bytes_received_)) reboot();
  return RxStatus::kStored;
}

std::vector<std::uint8_t> NodeAgent::window_bitmap(std::size_t base,
                                                   std::size_t count) const {
  std::vector<std::uint8_t> bits((count + 7) / 8, 0);
  for (std::size_t i = 0; i < count; ++i) {
    if (has_chunk(base + i))
      bits[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return bits;
}

void NodeAgent::persist_session() {
  if (!session_active_ || !online_) return;
  std::vector<std::uint8_t> record;
  record.reserve(kSessionHeader + bitmap_.size() + 4);
  push_u32(record, kSessionMagic);
  push_u32(record, session_id_);
  push_u32(record, static_cast<std::uint32_t>(stream_bytes_));
  record.insert(record.end(), bitmap_.begin(), bitmap_.end());
  push_u32(record, crc32_ieee(record));
  // Checkpointing must survive its own faults: erase-verify-retry, then
  // program and read back. A bad checkpoint simply fails the CRC at
  // restore time and the node starts fresh — never boots corrupt state.
  for (int attempt = 0; attempt < 3; ++attempt) {
    bool erased = false;
    for (int e = 0; e < 3; ++e) {
      if (flash_->erase_sector(kSessionSector) &&
          flash_->is_erased(kSessionSector, record.size())) {
        erased = true;
        break;
      }
    }
    if (!erased) continue;
    flash_->program(kSessionSector, record);
    if (flash_->read(kSessionSector, record.size()) == record) return;
  }
}

void NodeAgent::clear_session() {
  flash_->erase_sector(kSessionSector);
  session_active_ = false;
  bitmap_.clear();
  received_ = 0;
  bytes_received_ = 0;
  if (mcu_) mcu_->disarm_watchdog();
}

void NodeAgent::reboot() {
  // Brownout: every RAM structure is gone; flash (staged chunks + the
  // session checkpoint) survives.
  if (auto* t = obs::tracer()) {
    t->instant("power", "brownout-reboot",
               {obs::TraceArg::num("bytes_received",
                                   static_cast<double>(bytes_received_))});
  }
  if (auto* f = obs::flight()) {
    f->record(obs::FlightLevel::kWarn, "power", "brownout-reboot",
              {obs::TraceArg::num("bytes_received",
                                  static_cast<double>(bytes_received_))});
  }
  if (auto* m = obs::metrics()) m->counter("power.node_reboots").add();
  online_ = false;
  session_active_ = false;
  bitmap_.clear();
  received_ = 0;
  bytes_received_ = 0;
  ++reboots_;
  if (mcu_) mcu_->reset(mcu::ResetCause::kBrownout);
}

bool NodeAgent::poll_boot() {
  if (online_) return true;
  online_ = true;
  if (auto* t = obs::tracer()) t->instant("power", "node-boot");
  // Boot firmware scans the session sector; a valid checkpoint re-enters
  // the transfer where the last persisted bitmap left off.
  auto header = flash_->read(kSessionSector, kSessionHeader);
  if (read_u32(header, 0) == kSessionMagic) {
    std::uint32_t id = read_u32(header, 4);
    std::size_t bytes = read_u32(header, 8);
    if (bytes <= kStagingCapacity) {
      session_active_ = false;  // force the restore path
      if (begin_session(id, bytes) && session_active_) return true;
      // begin_session returning false means it started *fresh* (bad CRC on
      // the checkpoint); that is still a valid boot.
    }
  }
  return true;
}

void NodeAgent::advance_time(Seconds elapsed) {
  if (!mcu_ || !online_) return;
  if (mcu_->advance_time(elapsed)) {
    // Watchdog fired: same RAM loss as a brownout, but the MCU reset has
    // already happened inside advance_time.
    if (auto* t = obs::tracer()) t->instant("power", "watchdog-reset");
    if (auto* f = obs::flight())
      f->record(obs::FlightLevel::kWarn, "power", "watchdog-reset");
    if (auto* m = obs::metrics()) m->counter("power.watchdog_resets").add();
    online_ = false;
    session_active_ = false;
    bitmap_.clear();
    received_ = 0;
    bytes_received_ = 0;
    ++reboots_;
  }
}

bool NodeAgent::verify_stream(std::uint32_t crc32) const {
  if (!session_active_ || received_ != total_chunks_) return false;
  return crc32_ieee(staged_stream()) == crc32;
}

std::vector<std::uint8_t> NodeAgent::staged_stream() const {
  return flash_->read(kStagingBase, stream_bytes_);
}

// -------------------------------------------------------- transfer engine

namespace {

/// Shared state of one simulated transfer: accounting, backoff, and the
/// control-plane helpers used by both ACK modes.
class TransferEngine {
 public:
  TransferEngine(const std::vector<std::uint8_t>& stream,
                 std::uint16_t device_id, OtaLink& link,
                 const TransferPolicy& policy, NodeAgent& node,
                 sim::FaultInjector* faults, LinkAttacker* attacker,
                 UpdateOutcome& outcome)
      : stream_(stream),
        device_id_(device_id),
        link_(link),
        policy_(policy),
        node_(node),
        faults_(faults),
        attacker_(attacker),
        outcome_(outcome),
        chunks_((stream.size() + kDataPayload - 1) / kDataPayload),
        got_(chunks_, false),
        session_id_(crc32_ieee(stream)) {
    power::PlatformPowerModel power_model;
    rx_draw_ = power_model.draw(power::Activity::kOtaReceive);
    outcome_.sends_per_chunk.assign(chunks_, 0);
    outcome_.link_seed = link.seed();
  }

  void run() {
    // Each transfer owns the tracer's engine-relative clock; campaigns
    // lay consecutive transfers end to end with shift_base between runs.
    if (auto* t = obs::tracer()) t->set_time(outcome_.total_time);
    if (auto* f = obs::flight()) f->set_time(outcome_.total_time);
    obs::TraceSpan span{"ota", "transfer"};
    span.arg("bytes", static_cast<double>(stream_.size()));
    span.arg("chunks", static_cast<double>(chunks_));
    run_phases();
    if (auto* t = obs::tracer()) {
      t->instant("ota", outcome_.success ? "update-ok" : "update-failed",
                 {obs::TraceArg::str("failure", to_string(outcome_.failure))});
    }
    if (auto* f = obs::flight()) {
      if (!outcome_.success) {
        f->record(obs::FlightLevel::kError, "ota",
                  std::string("update-failed: ") + to_string(outcome_.failure),
                  {obs::TraceArg::num("retransmissions",
                                      static_cast<double>(
                                          outcome_.retransmissions)),
                   obs::TraceArg::num("time_s", outcome_.total_time.value())});
      } else {
        f->record(obs::FlightLevel::kDebug, "ota", "update-ok",
                  {obs::TraceArg::num("time_s", outcome_.total_time.value())});
      }
    }
  }

  void run_phases() {
    if (!associate(/*initial=*/true)) {
      fail(UpdateFailure::kAssociation);
      return finish();
    }
    UpdateFailure data_result = policy_.mode == AckMode::kSelectiveAck
                                    ? run_selective_ack()
                                    : run_stop_and_wait();
    if (data_result != UpdateFailure::kNone) {
      fail(data_result);
      return finish();
    }
    // END handshake; a verify failure earns one bitmap-rescan repair
    // round in selective-ACK mode before giving up.
    for (std::size_t repair = 0; repair <= 1; ++repair) {
      EndResult end = end_handshake();
      if (end == EndResult::kOk) {
        outcome_.success = true;
        node_.clear_session();
        return finish();
      }
      if (end == EndResult::kTimeout) {
        fail(UpdateFailure::kEndHandshake);
        return finish();
      }
      if (policy_.mode != AckMode::kSelectiveAck || repair == 1) break;
      ++outcome_.repair_rounds;
      rescan_bitmap();
      if (run_selective_ack() != UpdateFailure::kNone) break;
    }
    fail(UpdateFailure::kStreamCorrupt);
    finish();
  }

 private:
  enum class EndResult { kOk, kVerifyFailed, kTimeout };

  // --------------------------------------------------------- accounting

  /// A packet actually on the air: both sides pay airtime and the node's
  /// radio is up for it.
  void account_air(Seconds t) {
    outcome_.airtime += t;
    outcome_.total_time += t;
    outcome_.node_energy += rx_draw_ * t;
    if (auto* tr = obs::tracer()) {
      tr->set_time(outcome_.total_time);
      tr->counter("power", "node_energy_mj", outcome_.node_energy.value());
    }
    if (auto* fr = obs::flight()) fr->set_time(outcome_.total_time);
    node_.advance_time(t);
  }

  /// Idle wait (timeout, backoff): wall-clock only. Node boots complete
  /// during waits.
  void wait(Seconds t) {
    if (faults_) t = faults_->jitter(t);
    outcome_.total_time += t;
    if (auto* tr = obs::tracer()) tr->set_time(outcome_.total_time);
    if (auto* fr = obs::flight()) fr->set_time(outcome_.total_time);
    node_.advance_time(t);
    node_.poll_boot();
  }

  void backoff(std::size_t consecutive_failures) {
    double factor = std::pow(policy_.backoff_factor,
                             static_cast<double>(
                                 std::min<std::size_t>(consecutive_failures,
                                                       10)));
    Seconds t{std::min(policy_.ack_timeout.value() * factor,
                       policy_.max_backoff.value())};
    ++outcome_.backoff_events;
    Seconds start{0.0};
    auto* tr = obs::tracer();
    if (tr != nullptr) start = tr->now();
    wait(t);
    if (tr != nullptr) {
      tr->complete("ota", "backoff", start, tr->now() - start,
                   {obs::TraceArg::num("failures", static_cast<double>(
                                                       consecutive_failures))});
    }
    if (auto* m = obs::metrics()) {
      m->counter("ota.backoff_events").add();
      m->histogram("ota.backoff_s",
                   obs::HistogramSpec::log_scale(1e-3, 1e3, 30))
          .observe(t.value());
    }
  }

  [[nodiscard]] bool deadline_exceeded() const {
    return policy_.deadline.value() > 0.0 &&
           outcome_.total_time > policy_.deadline;
  }

  // ----------------------------------------------------------- adversary

  /// Delivery wrapper: a jammer can destroy a packet that would have
  /// arrived. The link's loss draw still happens first, so attacked and
  /// clean runs consume the same loss stream and stay comparable.
  bool deliver_packet(OtaPacketType type, std::size_t wire_bytes) {
    bool delivered = link_.deliver(wire_bytes);
    if (delivered && attacker_ != nullptr &&
        attacker_->jam_packet(type, wire_bytes)) {
      ++outcome_.jammed_packets;
      note_attack("jammed_packet");
      return false;
    }
    return delivered;
  }

  /// Record a detected attack event; opens the time-to-recovery window if
  /// one is not already running.
  void note_attack(const char* kind) {
    if (!attack_since_) attack_since_ = outcome_.total_time;
    if (auto* m = obs::metrics())
      m->counter(std::string("adversary.ota.") + kind).add();
    if (auto* t = obs::tracer()) t->instant("adversary", kind);
    if (auto* f = obs::flight())
      f->record(obs::FlightLevel::kWarn, "adversary", kind);
  }

  /// Forward progress after an attack: close the recovery window and
  /// observe how long the attacker held the transfer back.
  void note_progress() {
    if (!attack_since_) return;
    if (auto* m = obs::metrics()) {
      m->histogram("adversary.ota.recovery_s",
                   obs::HistogramSpec::log_scale(1e-3, 1e4, 40))
          .observe(outcome_.total_time.value() - attack_since_->value());
    }
    attack_since_.reset();
  }

  void fail(UpdateFailure cause) {
    outcome_.success = false;
    if (outcome_.failure == UpdateFailure::kNone) outcome_.failure = cause;
  }

  void finish() {
    outcome_.data_packets = static_cast<std::size_t>(
        std::count(got_.begin(), got_.end(), true));
    outcome_.node_reboots = node_.reboot_count();
    outcome_.session_resumes = node_.resume_count();
    outcome_.flash_write_errors = node_.flash_write_errors();
    if (auto* m = obs::metrics()) {
      m->counter("ota.transfers").add();
      m->counter(outcome_.success ? "ota.success" : "ota.failures").add();
      m->counter("ota.retransmissions")
          .add(static_cast<double>(outcome_.retransmissions));
      m->counter("ota.duplicates_dropped")
          .add(static_cast<double>(outcome_.duplicates_dropped));
      m->counter("ota.corrupted_dropped")
          .add(static_cast<double>(outcome_.corrupted_dropped));
      m->histogram("ota.transfer_time_s",
                   obs::HistogramSpec::log_scale(0.1, 1e5, 50))
          .observe(outcome_.total_time.value());
      m->histogram("ota.node_energy_mj",
                   obs::HistogramSpec::log_scale(0.1, 1e6, 50))
          .observe(outcome_.node_energy.value());
    }
  }

  // ------------------------------------------------------ control plane

  bool associate(bool initial) {
    obs::TraceSpan span{"ota", initial ? "associate" : "re-associate"};
    OtaPacket request{OtaPacketType::kProgrammingRequest, device_id_, 0, 0,
                      {}};
    OtaPacket ready{OtaPacketType::kReady, device_id_, 0, 0,
                    std::vector<std::uint8_t>(1, 0)};
    for (std::size_t attempt = 0; attempt < policy_.max_retries; ++attempt) {
      if (deadline_exceeded()) return false;
      account_air(link_.airtime(request.wire_size()));
      if (deliver_packet(OtaPacketType::kProgrammingRequest,
                         request.wire_size()) &&
          node_.online()) {
        bool resumed = node_.begin_session(
            session_id_, stream_.size());
        // READY is only on the air if the node heard the request.
        account_air(link_.airtime(ready.wire_size()));
        if (deliver_packet(OtaPacketType::kReady, ready.wire_size())) {
          if (!resumed && !initial) {
            // Node lost its session state entirely: our delivery ledger
            // is stale, start over from an empty bitmap.
            std::fill(got_.begin(), got_.end(), false);
          }
          return true;
        }
      }
      backoff(attempt);
    }
    return false;
  }

  /// Budget-exhaustion escape hatch shared by both data-plane modes:
  /// attempt a re-association (the node may have rebooted and be waiting
  /// in its resumed session). Returns false when out of budget for good.
  bool try_reassociate() {
    if (reassociations_used_ >= policy_.max_reassociations) return false;
    ++reassociations_used_;
    ++outcome_.reassociations;
    return associate(/*initial=*/false);
  }

  // ----------------------------------------------------------- data plane

  [[nodiscard]] std::size_t chunk_len(std::size_t seq) const {
    return std::min(kDataPayload, stream_.size() - seq * kDataPayload);
  }

  /// Flow id binding every TX/retransmission/ACK leg of one chunk's
  /// journey. Derived from the link seed (golden-ratio product) xor the
  /// seq, so ids are deterministic per run, unique per chunk, and
  /// distinct across nodes in a campaign (each node gets its own link
  /// seed).
  [[nodiscard]] std::uint64_t chunk_flow(std::size_t seq) const {
    return (outcome_.link_seed * 0x9E3779B97F4A7C15ULL) ^
           static_cast<std::uint64_t>(seq);
  }

  /// Transmit one DATA packet; returns true if the node verified+stored
  /// (or already had) the chunk.
  bool send_chunk(std::size_t seq) {
    OtaPacket data{OtaPacketType::kData, device_id_,
                   static_cast<std::uint16_t>(seq), 0, {}};
    data.payload.assign(
        stream_.begin() + static_cast<std::ptrdiff_t>(seq * kDataPayload),
        stream_.begin() +
            static_cast<std::ptrdiff_t>(seq * kDataPayload + chunk_len(seq)));
    Seconds air = link_.airtime(data.wire_size());
    Seconds start{0.0};
    auto* tr = obs::tracer();
    if (tr != nullptr) start = tr->now();
    const std::uint32_t send_count = ++outcome_.sends_per_chunk[seq];
    if (send_count > 1) ++outcome_.retransmissions;
    if (tr != nullptr) {
      // Flow legs land at the DATA slice's start so Perfetto binds the
      // arrow to it: begin on first TX, step on every retransmission.
      if (send_count == 1)
        tr->flow_begin("ota", "chunk", chunk_flow(seq));
      else
        tr->flow_step("ota", "chunk", chunk_flow(seq));
    }
    account_air(air);
    if (tr != nullptr) {
      tr->complete("ota", "data", start, air,
                   {obs::TraceArg::num("seq", static_cast<double>(seq)),
                    obs::TraceArg::num("send",
                                       static_cast<double>(send_count))});
    }
    if (auto* m = obs::metrics()) m->counter("ota.data_packets_sent").add();
    if (!deliver_packet(OtaPacketType::kData, data.wire_size()) ||
        !node_.online())
      return false;

    bool corrupted = faults_ && faults_->corrupt_packet();
    bool truncated = !corrupted && attacker_ != nullptr &&
                     attacker_->truncate_chunk(static_cast<std::uint16_t>(seq));
    if (truncated) {
      // The radio hears a shortened DATA frame; the node's length check
      // rejects it exactly like in-flight corruption.
      auto clipped =
          std::span(data.payload).first(data.payload.size() - 1);
      if (node_.receive_chunk(static_cast<std::uint16_t>(seq), clipped,
                              false) == NodeAgent::RxStatus::kCorrupt) {
        ++outcome_.truncated_dropped;
        note_attack("truncated_dropped");
      }
      return false;
    }
    auto status = node_.receive_chunk(static_cast<std::uint16_t>(seq),
                                      data.payload, corrupted);
    switch (status) {
      case NodeAgent::RxStatus::kCorrupt:
        ++outcome_.corrupted_dropped;
        return false;
      case NodeAgent::RxStatus::kFlashError:
      case NodeAgent::RxStatus::kNoSession:
        return false;
      case NodeAgent::RxStatus::kDuplicate:
        ++outcome_.duplicates_dropped;
        break;
      case NodeAgent::RxStatus::kStored:
        note_progress();
        break;
    }
    // The ether can hand the radio a second copy; the bitmap dedups it.
    if (faults_ && faults_->duplicate_packet() && node_.online()) {
      if (node_.receive_chunk(static_cast<std::uint16_t>(seq), data.payload,
                              false) == NodeAgent::RxStatus::kDuplicate)
        ++outcome_.duplicates_dropped;
    }
    // A protocol attacker can replay a captured copy too; same dedup.
    if (attacker_ != nullptr &&
        attacker_->replay_chunk(static_cast<std::uint16_t>(seq)) &&
        node_.online()) {
      if (node_.receive_chunk(static_cast<std::uint16_t>(seq), data.payload,
                              false) == NodeAgent::RxStatus::kDuplicate) {
        ++outcome_.replays_dropped;
        note_attack("replay_dropped");
      }
    }
    return true;
  }

  /// One SACK poll over chunks [base, base+count). Returns the bitmap, or
  /// nullopt if either side of the exchange was lost.
  std::optional<std::vector<std::uint8_t>> poll_bitmap(std::size_t base,
                                                       std::size_t count) {
    obs::TraceSpan span{"ota", "sack-poll"};
    span.arg("base", static_cast<double>(base));
    OtaPacket query{OtaPacketType::kSackQuery, device_id_,
                    static_cast<std::uint16_t>(base), 0,
                    std::vector<std::uint8_t>(2, 0)};
    account_air(link_.airtime(query.wire_size()));
    if (!deliver_packet(OtaPacketType::kSackQuery, query.wire_size()) ||
        !node_.online() || !node_.has_session())
      return std::nullopt;
    // The node checkpoints at every acknowledgement point, so anything it
    // reports as received survives a brownout.
    node_.persist_session();
    wait(FlashModel::sector_erase_time() +
         FlashModel::program_time((node_.total_chunks() + 7) / 8 + 16));
    auto bits = node_.window_bitmap(base, count);
    OtaPacket sack{OtaPacketType::kSack, device_id_,
                   static_cast<std::uint16_t>(base), 0, bits};
    // A forged SACK races the node's genuine reply; the AP's session
    // authentication rejects it, but the poll exchange is spent.
    bool forged =
        attacker_ != nullptr && attacker_->forge_ack(OtaPacketType::kSack);
    account_air(link_.airtime(sack.wire_size()));
    bool arrived = deliver_packet(OtaPacketType::kSack, sack.wire_size());
    if (forged) {
      ++outcome_.forged_acks_discarded;
      note_attack("forged_ack_discarded");
      return std::nullopt;
    }
    if (!arrived) return std::nullopt;
    ++outcome_.ack_packets;
    return bits;
  }

  /// Largest seq span a single SACK payload can cover (bounded by the
  /// 60 B LoRa payload: 2 B base + bitmap).
  static constexpr std::size_t kSackSpan = (kDataPayload - 2) * 8;

  UpdateFailure run_selective_ack() {
    std::size_t consecutive_failures = 0;
    while (true) {
      if (deadline_exceeded()) return UpdateFailure::kDeadline;
      // Collect the next window: lowest missing seqs within one SACK span.
      std::vector<std::size_t> window;
      std::size_t base = 0;
      for (std::size_t seq = 0; seq < chunks_ && window.size() < policy_.window;
           ++seq) {
        if (got_[seq]) continue;
        if (window.empty()) base = seq;
        if (seq - base >= kSackSpan) break;
        window.push_back(seq);
      }
      if (window.empty()) return UpdateFailure::kNone;  // all delivered

      if (consecutive_failures > policy_.max_retries) {
        if (!try_reassociate()) return UpdateFailure::kRetryBudget;
        consecutive_failures = 0;
        continue;
      }

      for (std::size_t seq : window) {
        if (deadline_exceeded()) return UpdateFailure::kDeadline;
        send_chunk(seq);
      }

      std::size_t span =
          std::min(kSackSpan, chunks_ - base);
      auto bits = poll_bitmap(base, span);
      if (!bits) {
        ++consecutive_failures;
        backoff(consecutive_failures);
        continue;
      }
      bool progress = false;
      auto* tr = obs::tracer();
      for (std::size_t i = 0; i < span; ++i) {
        if (((*bits)[i / 8] >> (i % 8)) & 1u) {
          if (!got_[base + i]) {
            progress = true;
            // This SACK is the first to cover the chunk: close its flow.
            if (tr != nullptr)
              tr->flow_end("ota", "chunk", chunk_flow(base + i));
          }
          got_[base + i] = true;
        }
      }
      if (progress) {
        consecutive_failures = 0;
        note_progress();
      } else {
        ++consecutive_failures;
        backoff(consecutive_failures);
      }
    }
  }

  UpdateFailure run_stop_and_wait() {
    OtaPacket ack{OtaPacketType::kDataAck, device_id_, 0, 0, {}};
    const Seconds t_ack = link_.airtime(ack.wire_size());
    std::size_t stored_since_persist = 0;
    for (std::size_t seq = 0; seq < chunks_; ++seq) {
      if (got_[seq]) continue;
      std::size_t attempts = 0;
      while (!got_[seq]) {
        if (deadline_exceeded()) return UpdateFailure::kDeadline;
        if (attempts >= policy_.max_retries) {
          if (!try_reassociate()) return UpdateFailure::kRetryBudget;
          attempts = 0;
          if (got_[seq]) break;  // ledger says delivered after re-sync
        }
        ++attempts;
        bool stored = send_chunk(seq);
        if (!stored) {
          // No ACK comes back; AP retransmits after a timeout.
          wait(policy_.ack_timeout);
          ++outcome_.backoff_events;
          continue;
        }
        // Reordering in stop-and-wait means the ACK shows up after the
        // timeout: the AP has already given up on the attempt and will
        // retransmit (the node dedups the copy).
        if (faults_ && faults_->reorder_packet()) {
          account_air(t_ack);
          wait(policy_.ack_timeout);
          continue;
        }
        bool forged = attacker_ != nullptr &&
                      attacker_->forge_ack(OtaPacketType::kDataAck);
        account_air(t_ack);
        bool acked = deliver_packet(OtaPacketType::kDataAck, ack.wire_size());
        if (forged) {
          // Forged ACK beats the node's; authentication discards it and
          // the AP retransmits (the node dedups the copy).
          ++outcome_.forged_acks_discarded;
          note_attack("forged_ack_discarded");
          wait(policy_.ack_timeout);
          continue;
        }
        if (!acked) {
          wait(policy_.ack_timeout);
          continue;  // duplicate data next attempt; node dedups by seq
        }
        got_[seq] = true;
        if (auto* tr = obs::tracer())
          tr->flow_end("ota", "chunk", chunk_flow(seq));
        ++outcome_.ack_packets;
        note_progress();
        if (++stored_since_persist >= policy_.window) {
          node_.persist_session();
          wait(FlashModel::sector_erase_time());
          stored_since_persist = 0;
        }
      }
    }
    return UpdateFailure::kNone;
  }

  /// After an END fingerprint failure: rebuild the delivery ledger from
  /// full-range bitmap polls (the node may have lost unpersisted chunks
  /// in a brownout).
  void rescan_bitmap() {
    for (std::size_t base = 0; base < chunks_; base += kSackSpan) {
      std::size_t span = std::min(kSackSpan, chunks_ - base);
      for (std::size_t attempt = 0; attempt < policy_.max_retries; ++attempt) {
        auto bits = poll_bitmap(base, span);
        if (bits) {
          for (std::size_t i = 0; i < span; ++i)
            got_[base + i] = ((*bits)[i / 8] >> (i % 8)) & 1u;
          break;
        }
        backoff(attempt + 1);
      }
    }
  }

  EndResult end_handshake() {
    obs::TraceSpan span{"ota", "end-handshake"};
    OtaPacket end{OtaPacketType::kEnd, device_id_,
                  static_cast<std::uint16_t>(chunks_), session_id_, {}};
    OtaPacket end_ack{OtaPacketType::kEndAck, device_id_, 0, 0,
                      std::vector<std::uint8_t>(1, 0)};
    for (std::size_t attempt = 0; attempt < policy_.max_retries; ++attempt) {
      if (deadline_exceeded()) return EndResult::kTimeout;
      account_air(link_.airtime(end.wire_size()));
      if (deliver_packet(OtaPacketType::kEnd, end.wire_size()) &&
          node_.online() && node_.has_session()) {
        bool verified = node_.verify_stream(session_id_);
        bool forged = attacker_ != nullptr &&
                      attacker_->forge_ack(OtaPacketType::kEndAck);
        account_air(link_.airtime(end_ack.wire_size()));
        bool arrived =
            deliver_packet(OtaPacketType::kEndAck, end_ack.wire_size());
        if (forged) {
          ++outcome_.forged_acks_discarded;
          note_attack("forged_ack_discarded");
        } else if (arrived) {
          if (verified) note_progress();
          return verified ? EndResult::kOk : EndResult::kVerifyFailed;
        }
      }
      backoff(attempt + 1);
    }
    return EndResult::kTimeout;
  }

  const std::vector<std::uint8_t>& stream_;
  std::uint16_t device_id_;
  OtaLink& link_;
  const TransferPolicy& policy_;
  NodeAgent& node_;
  sim::FaultInjector* faults_;
  LinkAttacker* attacker_;
  UpdateOutcome& outcome_;
  std::size_t chunks_;
  std::vector<bool> got_;
  std::uint32_t session_id_;
  Milliwatts rx_draw_{0.0};
  std::size_t reassociations_used_ = 0;
  /// Engine time at the first unrecovered attack event (TTR clock).
  std::optional<Seconds> attack_since_;
};

}  // namespace

UpdateOutcome AccessPoint::transfer(
    const std::vector<std::uint8_t>& compressed_image,
    std::uint16_t device_id, OtaLink& link, const TransferPolicy& policy,
    NodeAgent* node, sim::FaultInjector* faults,
    LinkAttacker* attacker) const {
  UpdateOutcome outcome;
  // Without an explicit node, simulate an ideal one: private flash, no
  // injected faults, no MCU.
  std::optional<FlashModel> local_flash;
  std::optional<NodeAgent> local_node;
  if (node == nullptr) {
    local_flash.emplace();
    local_node.emplace(device_id, *local_flash, faults);
    node = &*local_node;
  }
  TransferEngine engine{compressed_image, device_id, link,    policy,
                        *node,            faults,    attacker, outcome};
  engine.run();
  return outcome;
}

}  // namespace tinysdr::ota
