#include "ota/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tinysdr::ota {

Seconds ListenSchedule::next_window(Seconds t) const {
  if (interval.value() <= 0.0)
    throw std::invalid_argument("ListenSchedule: non-positive interval");
  double relative = t.value() - phase.value();
  if (relative <= 0.0) return phase;
  double periods = std::ceil(relative / interval.value());
  return Seconds{phase.value() + periods * interval.value()};
}

Milliwatts idle_listen_power(const ListenSchedule& schedule) {
  power::PlatformPowerModel model;
  double d = schedule.duty();
  double listen_mw = model.draw(power::Activity::kOtaReceive).value();
  double sleep_mw = model.sleep_power().value();
  return Milliwatts{d * listen_mw + (1.0 - d) * sleep_mw};
}

Seconds worst_case_rendezvous(const ListenSchedule& schedule) {
  return schedule.interval;
}

Seconds average_rendezvous(const ListenSchedule& schedule) {
  return Seconds{schedule.interval.value() / 2.0};
}

std::vector<Seconds> plan_fleet_rendezvous(
    const std::vector<ListenSchedule>& schedules) {
  std::vector<Seconds> out;
  out.reserve(schedules.size());
  for (const auto& s : schedules) out.push_back(s.next_window(Seconds{0.0}));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tinysdr::ota
