// OTA rendezvous scheduling (paper §3.4).
//
// "We pre-program a timer on the MCU to periodically turn off the FPGA and
// switch from IQ radio mode to the backbone radio to listen for new
// firmware updates. If there is an update, the AP sends a programming
// request ... along with the time they should wake up to receive the
// update."
//
// This module models the rendezvous economics: each node wakes every
// `listen_interval` for a short backbone-listen window; an update issued at
// an arbitrary time must wait for the next window of each target node; the
// standing cost is the idle-listen energy. The ablation bench sweeps the
// interval against both.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "power/platform_power.hpp"

namespace tinysdr::ota {

struct ListenSchedule {
  Seconds interval{600.0};  ///< MCU wakeup timer period
  Seconds window = Seconds::from_milliseconds(50.0);  ///< listen duration
  Seconds phase{0.0};       ///< first window offset

  /// Start time of the first listen window at or after `t`.
  [[nodiscard]] Seconds next_window(Seconds t) const;

  /// Fraction of time spent listening.
  [[nodiscard]] double duty() const {
    return window.value() / interval.value();
  }
};

/// Average standing power of the rendezvous listening (backbone RX during
/// windows, sleep otherwise).
[[nodiscard]] Milliwatts idle_listen_power(const ListenSchedule& schedule);

/// Worst-case and average latency from "update available" to "node
/// listening".
[[nodiscard]] Seconds worst_case_rendezvous(const ListenSchedule& schedule);
[[nodiscard]] Seconds average_rendezvous(const ListenSchedule& schedule);

/// Plan a fleet update: given each node's schedule phase, the AP contacts
/// nodes in the order their windows come up; returns per-node rendezvous
/// times (update available at t = 0).
[[nodiscard]] std::vector<Seconds> plan_fleet_rendezvous(
    const std::vector<ListenSchedule>& schedules);

}  // namespace tinysdr::ota
