// MX25R6435F flash memory model (paper §3.1.2).
//
// 8 MB NOR flash storing FPGA bitstreams and MCU programs: "it allows
// tinySDR to store multiple FPGA bitstreams and MCU programs to quickly
// switch between stored protocols without having to re-send the
// programming data over the air." NOR semantics are modeled: erase sets a
// 4 KiB sector to 0xFF, programming can only clear bits (AND), and writes
// to unerased cells without erase corrupt data — catching a real class of
// firmware-update bugs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace tinysdr::ota {

class FlashModel {
 public:
  static constexpr std::size_t kCapacity = 8 * 1024 * 1024;
  static constexpr std::size_t kSectorSize = 4 * 1024;
  static constexpr std::size_t kPageSize = 256;

  FlashModel() : memory_(kCapacity, 0xFF) {}

  /// Erase the 4 KiB sector containing `address`.
  void erase_sector(std::size_t address);
  /// Erase a whole address range (sector-aligned sweep).
  void erase_range(std::size_t address, std::size_t length);

  /// Program bytes (NOR AND semantics, page-size chunks internally).
  /// @throws std::out_of_range past the end of the array.
  void program(std::size_t address, std::span<const std::uint8_t> data);

  [[nodiscard]] std::vector<std::uint8_t> read(std::size_t address,
                                               std::size_t length) const;

  /// True if the whole range reads 0xFF.
  [[nodiscard]] bool is_erased(std::size_t address, std::size_t length) const;

  /// Lifetime wear statistics.
  [[nodiscard]] std::uint64_t erase_count() const { return erase_count_; }
  [[nodiscard]] std::uint64_t bytes_programmed() const {
    return bytes_programmed_;
  }

  /// Timing model (datasheet): page program 3 ms max? No — MX25R: tBP
  /// ~100 us typical per page in low-power mode; sector erase ~58 ms typ.
  [[nodiscard]] static Seconds page_program_time() {
    return Seconds::from_microseconds(100.0);
  }
  [[nodiscard]] static Seconds sector_erase_time() {
    return Seconds::from_milliseconds(58.0);
  }
  /// Time to stream + program `length` bytes (SPI transfer overlapped with
  /// page programming; programming dominates).
  [[nodiscard]] static Seconds program_time(std::size_t length) {
    auto pages = (length + kPageSize - 1) / kPageSize;
    return Seconds{page_program_time().value() * static_cast<double>(pages)};
  }

 private:
  std::vector<std::uint8_t> memory_;
  std::uint64_t erase_count_ = 0;
  std::uint64_t bytes_programmed_ = 0;
};

/// Slot directory laid over the flash: named firmware images at fixed
/// offsets, with length and CRC32 tracked in a (RAM-resident) index the
/// MCU rebuilds at boot in the real system.
class FirmwareStore {
 public:
  explicit FirmwareStore(FlashModel& flash) : flash_(&flash) {}

  struct Entry {
    std::size_t offset;
    std::size_t length;
    std::uint32_t crc32;
  };

  /// Store an image under a name; erases + programs the region.
  /// @throws std::length_error when flash space is exhausted.
  void store(const std::string& name, std::span<const std::uint8_t> image);

  /// Read an image back, verifying its CRC. nullopt if unknown/corrupt.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> load(
      const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const {
    return entries_.contains(name);
  }
  [[nodiscard]] std::size_t stored_count() const { return entries_.size(); }
  [[nodiscard]] std::size_t bytes_used() const { return next_offset_; }

 private:
  FlashModel* flash_;
  std::map<std::string, Entry> entries_;
  std::size_t next_offset_ = 0;
};

}  // namespace tinysdr::ota
