// MX25R6435F flash memory model (paper §3.1.2).
//
// 8 MB NOR flash storing FPGA bitstreams and MCU programs: "it allows
// tinySDR to store multiple FPGA bitstreams and MCU programs to quickly
// switch between stored protocols without having to re-send the
// programming data over the air." NOR semantics are modeled: erase sets a
// 4 KiB sector to 0xFF, programming can only clear bits (AND), and writes
// to unerased cells without erase corrupt data — catching a real class of
// firmware-update bugs.
//
// For fault-injection campaigns the model exposes two hooks queried per
// page-program and per sector-erase operation: a page program can tear
// mid-page (a prefix commits, one byte is left with partial bits), and a
// sector erase can fail halfway. `sim::FaultInjector` drives these hooks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace tinysdr::ota {

/// Result of a faulted page program (mirrors sim::PageFault without a
/// dependency on the sim layer): `committed` leading bytes landed, the
/// next byte keeps the bits in `torn_keep_mask` uncleared.
struct PageProgramFault {
  std::size_t committed = 0;
  std::uint8_t torn_keep_mask = 0;
};

class FlashModel {
 public:
  static constexpr std::size_t kCapacity = 8 * 1024 * 1024;
  static constexpr std::size_t kSectorSize = 4 * 1024;
  static constexpr std::size_t kPageSize = 256;

  /// Fault hooks, queried once per physical operation. A page-program hook
  /// returns nullopt on success; a sector-erase hook returns true when the
  /// erase fails partway (only the first half of the sector is blanked).
  using PageProgramHook =
      std::function<std::optional<PageProgramFault>(std::size_t address,
                                                    std::size_t length)>;
  using SectorEraseHook = std::function<bool(std::size_t address)>;

  FlashModel() : memory_(kCapacity, 0xFF) {}

  /// Erase the 4 KiB sector containing `address`.
  /// Returns false if an injected fault left the sector partially erased.
  bool erase_sector(std::size_t address);
  /// Erase a whole address range (sector-aligned sweep).
  /// Returns false if any sector erase faulted.
  bool erase_range(std::size_t address, std::size_t length);

  /// Program bytes (NOR AND semantics, page-size chunks internally).
  /// Returns false if an injected fault tore any page program; callers
  /// that care should read back and verify, as real firmware does.
  /// @throws std::out_of_range past the end of the array.
  bool program(std::size_t address, std::span<const std::uint8_t> data);

  [[nodiscard]] std::vector<std::uint8_t> read(std::size_t address,
                                               std::size_t length) const;

  /// True if the whole range reads 0xFF.
  [[nodiscard]] bool is_erased(std::size_t address, std::size_t length) const;

  void set_page_program_hook(PageProgramHook hook) {
    page_program_hook_ = std::move(hook);
  }
  void set_sector_erase_hook(SectorEraseHook hook) {
    sector_erase_hook_ = std::move(hook);
  }

  /// Lifetime wear statistics.
  [[nodiscard]] std::uint64_t erase_count() const { return erase_count_; }
  [[nodiscard]] std::uint64_t bytes_programmed() const {
    return bytes_programmed_;
  }
  /// Injected-fault statistics.
  [[nodiscard]] std::uint64_t program_failures() const {
    return program_failures_;
  }
  [[nodiscard]] std::uint64_t erase_failures() const {
    return erase_failures_;
  }

  /// Timing model (datasheet): page program 3 ms max? No — MX25R: tBP
  /// ~100 us typical per page in low-power mode; sector erase ~58 ms typ.
  [[nodiscard]] static Seconds page_program_time() {
    return Seconds::from_microseconds(100.0);
  }
  [[nodiscard]] static Seconds sector_erase_time() {
    return Seconds::from_milliseconds(58.0);
  }
  /// Time to stream + program `length` bytes (SPI transfer overlapped with
  /// page programming; programming dominates).
  [[nodiscard]] static Seconds program_time(std::size_t length) {
    auto pages = (length + kPageSize - 1) / kPageSize;
    return Seconds{page_program_time().value() * static_cast<double>(pages)};
  }

 private:
  std::vector<std::uint8_t> memory_;
  std::uint64_t erase_count_ = 0;
  std::uint64_t bytes_programmed_ = 0;
  std::uint64_t program_failures_ = 0;
  std::uint64_t erase_failures_ = 0;
  PageProgramHook page_program_hook_;
  SectorEraseHook sector_erase_hook_;
};

/// Firmware slot identifiers for the dual-image boot layout.
enum class Slot : std::uint8_t { kA, kB, kGolden };

[[nodiscard]] const char* to_string(Slot slot);

/// Slot directory laid over the flash: named firmware images at fixed
/// offsets, with length and CRC32 tracked in a (RAM-resident) index the
/// MCU rebuilds at boot in the real system.
///
/// On top of the named store the class manages an A/B dual-slot boot
/// layout in the top of the array: two update slots plus a factory
/// "golden" image. OTA updates land in the standby slot; activation
/// requires a fingerprint match, and a corrupted active image rolls the
/// node back to golden at boot. The named region grows from offset 0 and
/// must stay below `kSlotABase` when slots are in use.
class FirmwareStore {
 public:
  // Flash layout of the managed region (staging for in-flight OTA data
  // lives at 4 MB, see ota::NodeAgent):
  //   [5.0 MB, 6.0 MB)  slot A
  //   [6.0 MB, 7.0 MB)  slot B
  //   [7.0 MB, 8 MB - 4 KiB)  golden image
  //   last sector       OTA transfer-session checkpoint (NodeAgent)
  static constexpr std::size_t kSlotABase = 0x500000;
  static constexpr std::size_t kSlotBBase = 0x600000;
  static constexpr std::size_t kGoldenBase = 0x700000;
  static constexpr std::size_t kSlotCapacity = 0x0FF000;

  explicit FirmwareStore(FlashModel& flash) : flash_(&flash) {}

  struct Entry {
    std::size_t offset;
    std::size_t length;
    std::uint32_t crc32;
  };

  /// Store an image under a name; erases + programs the region.
  /// @throws std::length_error when flash space is exhausted.
  void store(const std::string& name, std::span<const std::uint8_t> image);

  /// Read an image back, verifying its CRC. nullopt if unknown/corrupt.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> load(
      const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const {
    return entries_.contains(name);
  }
  [[nodiscard]] std::size_t stored_count() const { return entries_.size(); }
  [[nodiscard]] std::size_t bytes_used() const { return next_offset_; }

  // ------------------------------------------------------- A/B + golden

  /// Write an image into a slot (erase, program, read-back verify against
  /// the image fingerprint). Returns false if verification fails — e.g.
  /// under injected flash faults — leaving the slot marked invalid.
  /// `version` is the image's monotonic firmware version, checked by the
  /// anti-rollback ratchet at activation time.
  bool write_slot(Slot slot, std::span<const std::uint8_t> image,
                  std::uint32_t version = 0);

  /// Read a slot back, verifying its recorded fingerprint.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> load_slot(
      Slot slot) const;

  /// Install the factory golden image (write + verify + remember).
  bool install_golden(std::span<const std::uint8_t> image,
                      std::uint32_t version = 0) {
    return write_slot(Slot::kGolden, image, version);
  }

  /// Make `slot` the boot image. Refuses (returns false) if the slot does
  /// not currently verify, or if its version is below the anti-rollback
  /// floor (every successful activation ratchets the floor up to the
  /// activated version — a downgrade attack is detected and counted, and
  /// the node keeps running its current image).
  bool activate(Slot slot);

  [[nodiscard]] Slot active_slot() const { return active_; }
  /// The slot the next update should land in (the inactive one of A/B).
  [[nodiscard]] Slot standby_slot() const {
    return active_ == Slot::kA ? Slot::kB : Slot::kA;
  }

  /// Roll back to the golden image; counts the event. Returns false if
  /// the golden image itself does not verify (unrecoverable node).
  bool rollback_to_golden();

  /// What the node actually boots: the active slot if it verifies, else
  /// golden (recording a rollback). nullopt if nothing verifies.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> boot_image();

  [[nodiscard]] std::size_t rollback_count() const { return rollbacks_; }
  [[nodiscard]] std::uint32_t slot_fingerprint(Slot slot) const;
  [[nodiscard]] bool slot_valid(Slot slot) const;

  /// Anti-rollback state: the recorded firmware version of a slot, the
  /// ratcheted minimum acceptable version, and how many activations were
  /// refused for carrying an older version.
  [[nodiscard]] std::uint32_t slot_version(Slot slot) const {
    return state(slot).version;
  }
  [[nodiscard]] std::uint32_t min_version() const { return min_version_; }
  [[nodiscard]] std::size_t rollback_rejections() const {
    return rollback_rejections_;
  }

 private:
  struct SlotState {
    std::size_t length = 0;
    std::uint32_t crc32 = 0;
    std::uint32_t version = 0;
    bool valid = false;
  };

  [[nodiscard]] static std::size_t slot_base(Slot slot);
  [[nodiscard]] const SlotState& state(Slot slot) const {
    return slots_[static_cast<std::size_t>(slot)];
  }
  [[nodiscard]] SlotState& state(Slot slot) {
    return slots_[static_cast<std::size_t>(slot)];
  }

  FlashModel* flash_;
  std::map<std::string, Entry> entries_;
  std::size_t next_offset_ = 0;
  SlotState slots_[3];
  Slot active_ = Slot::kGolden;
  std::size_t rollbacks_ = 0;
  std::uint32_t min_version_ = 0;
  std::size_t rollback_rejections_ = 0;
};

}  // namespace tinysdr::ota
