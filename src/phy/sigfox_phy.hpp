// Sigfox ultra-narrowband DBPSK adapter for the unified PHY layer:
// payloads (up to the 12-byte Sigfox uplink limit) framed with preamble,
// sync word and CRC-16 through the differential modem.
#pragma once

#include "phy/phy.hpp"
#include "sigfox/unb.hpp"

namespace tinysdr::phy {

/// Sigfox uses the default receiver NF; no extra calibrated margin.
inline constexpr double kSigfoxSystemNf = 6.0;

struct SigfoxPhyConfig {
  sigfox::UnbConfig unb{};
  double system_noise_figure_db = kSigfoxSystemNf;
};

class SigfoxTx final : public PhyTx {
 public:
  explicit SigfoxTx(SigfoxPhyConfig config = {});

  [[nodiscard]] Protocol protocol() const override {
    return Protocol::kSigfox;
  }
  [[nodiscard]] Hertz sample_rate() const override {
    return config_.unb.sample_rate();
  }
  [[nodiscard]] std::size_t max_payload() const override {
    return sigfox::kMaxPayload;
  }
  void modulate(std::span<const std::uint8_t> payload,
                dsp::Samples& out) const override;

 private:
  SigfoxPhyConfig config_;
  sigfox::UnbModem modem_;
};

class SigfoxRx final : public PhyRx {
 public:
  explicit SigfoxRx(SigfoxPhyConfig config = {});

  [[nodiscard]] Protocol protocol() const override {
    return Protocol::kSigfox;
  }
  [[nodiscard]] Hertz sample_rate() const override {
    return config_.unb.sample_rate();
  }
  [[nodiscard]] FrameResult demodulate(
      std::span<const dsp::Complex> iq,
      std::span<const std::uint8_t> reference) const override;

 private:
  SigfoxPhyConfig config_;
  sigfox::UnbModem modem_;
};

}  // namespace tinysdr::phy
