#include "phy/registry.hpp"

#include <stdexcept>

#include "phy/ble_phy.hpp"
#include "phy/lora_phy.hpp"
#include "phy/nbiot_phy.hpp"
#include "phy/sigfox_phy.hpp"
#include "phy/zigbee_phy.hpp"

namespace tinysdr::phy {

void Registry::add(RegisteredPhy entry) {
  if (find(entry.id) != nullptr)
    throw std::invalid_argument("Registry: duplicate protocol id: " +
                                entry.name);
  entries_.push_back(std::move(entry));
}

const RegisteredPhy* Registry::find(Protocol id) const {
  for (const auto& e : entries_)
    if (e.id == id) return &e;
  return nullptr;
}

const RegisteredPhy* Registry::find_by_name(std::string_view name) const {
  for (const auto& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

const RegisteredPhy& Registry::at(Protocol id) const {
  const RegisteredPhy* e = find(id);
  if (e == nullptr)
    throw std::out_of_range("Registry: protocol not registered: " +
                            std::string(protocol_name(id)));
  return *e;
}

const Registry& Registry::builtin() {
  static const Registry registry = [] {
    Registry r;
    r.add({Protocol::kLora, std::string(protocol_name(Protocol::kLora)),
           kLoraSystemNf, lora::kMaxPayload, 300, 256, 1, 0,
           [] { return std::make_unique<LoraPacketTx>(); },
           [] { return std::make_unique<LoraPacketRx>(); }});
    r.add({Protocol::kBle, std::string(protocol_name(Protocol::kBle)),
           kBleSystemNf, 31, 0, 1, 1, 0,
           [] { return std::make_unique<BleBeaconTx>(); },
           [] { return std::make_unique<BleBeaconRx>(); }});
    r.add({Protocol::kZigbee, std::string(protocol_name(Protocol::kZigbee)),
           // cfo_window 512 with cfo_lag 64: the fixed preamble is 8
           // identical zero symbols of 64 samples, so lag-one-symbol
           // products inside the window rotate by the CFO alone
           // (Schmidl-&-Cox) — O-QPSK's chip-dependent rotation makes any
           // whole-frame or lag-1 estimate payload-biased, and the
           // frame-coherent demod needs ~1e-4 cycles/sample precision.
           kZigbeeSystemNf, zigbee::kMaxPsdu - 2, 0, 64, 1, 512,
           [] { return std::make_unique<ZigbeeTx>(); },
           [] { return std::make_unique<ZigbeeRx>(); }});
    r.add({Protocol::kSigfox, std::string(protocol_name(Protocol::kSigfox)),
           kSigfoxSystemNf, sigfox::kMaxPayload, 0, 1, 1, 0,
           [] { return std::make_unique<SigfoxTx>(); },
           [] { return std::make_unique<SigfoxRx>(); }});
    r.add({Protocol::kNbiot, std::string(protocol_name(Protocol::kNbiot)),
           // cfo_power 2 strips pi/2-BPSK data flips (they would bias a
           // first-order estimate); cfo_lag 16 = two symbols, where the
           // squared signal's pi-per-symbol ramp is exactly 2*pi == 0, so
           // the bias vanishes and precision scales by the lag.
           kNbiotSystemNf, nbiot::kMaxPayload, 0, 16, 2, 0,
           [] { return std::make_unique<NbiotTx>(); },
           [] { return std::make_unique<NbiotRx>(); }});
    return r;
  }();
  return registry;
}

}  // namespace tinysdr::phy
