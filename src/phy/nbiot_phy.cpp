#include "phy/nbiot_phy.hpp"

namespace tinysdr::phy {

NbiotTx::NbiotTx(NbiotPhyConfig config)
    : config_(config), modem_(config.tone) {}

void NbiotTx::modulate(std::span<const std::uint8_t> payload,
                       dsp::Samples& out) const {
  auto wave = modem_.modulate(payload);
  out.insert(out.end(), wave.begin(), wave.end());
}

NbiotRx::NbiotRx(NbiotPhyConfig config)
    : config_(config), modem_(config.tone) {}

FrameResult NbiotRx::demodulate(
    std::span<const dsp::Complex> iq,
    std::span<const std::uint8_t> reference) const {
  auto decoded = modem_.demodulate(iq);
  if (!decoded) return score_lost_packet(reference);
  return score_packet(reference, *decoded, true);
}

}  // namespace tinysdr::phy
