// NB-IoT single-tone pi/2-BPSK adapter for the unified PHY layer:
// payloads framed with the DMRS-like pilot, length byte and CRC-16 on one
// 3.75 kHz subcarrier.
#pragma once

#include "nbiot/uplink.hpp"
#include "phy/phy.hpp"

namespace tinysdr::phy {

/// NB-IoT uses the default receiver NF; no extra calibrated margin.
inline constexpr double kNbiotSystemNf = 6.0;

struct NbiotPhyConfig {
  nbiot::SingleToneConfig tone{};
  double system_noise_figure_db = kNbiotSystemNf;
};

class NbiotTx final : public PhyTx {
 public:
  explicit NbiotTx(NbiotPhyConfig config = {});

  [[nodiscard]] Protocol protocol() const override {
    return Protocol::kNbiot;
  }
  [[nodiscard]] Hertz sample_rate() const override {
    return config_.tone.sample_rate();
  }
  [[nodiscard]] std::size_t max_payload() const override {
    return nbiot::kMaxPayload;
  }
  void modulate(std::span<const std::uint8_t> payload,
                dsp::Samples& out) const override;

 private:
  NbiotPhyConfig config_;
  nbiot::SingleToneModem modem_;
};

class NbiotRx final : public PhyRx {
 public:
  explicit NbiotRx(NbiotPhyConfig config = {});

  [[nodiscard]] Protocol protocol() const override {
    return Protocol::kNbiot;
  }
  [[nodiscard]] Hertz sample_rate() const override {
    return config_.tone.sample_rate();
  }
  [[nodiscard]] FrameResult demodulate(
      std::span<const dsp::Complex> iq,
      std::span<const std::uint8_t> reference) const override;

 private:
  NbiotPhyConfig config_;
  nbiot::SingleToneModem modem_;
};

}  // namespace tinysdr::phy
