// Opt-in RX calibration: DC notch, blind IQ-imbalance correction and
// preamble/autocorrelation CFO correction in front of any PhyRx.
//
// CalibratedRx is a PhyRx decorator — it copies the capture, runs the
// enabled correction stages (DC -> IQ -> CFO, the order the front-end
// defects stack in), then hands the cleaned capture to the wrapped
// receiver. Because it *is* a PhyRx, every trial engine (LinkSimulator
// sweeps, StreamingLink, campaigns) gains calibration by swapping the
// receiver object; none of the five PHY adapters change.
//
// The CFO estimator is dsp::estimate_cfo with a per-PHY lag
// (RegisteredPhy::cfo_lag: samples-per-symbol for LoRa's repeated-preamble
// correlation, 1 for the oversampled FSK/PSK family) and a bias measured
// once on a clean reference waveform — so modulations with an inherent
// mean rotation (NB-IoT pi/2-BPSK) read zero at zero offset.
//
// Telemetry: impair.cal.frames counts calibrated demods;
// impair.cfo_estimate_hz / impair.cfo_residual_hz histograms record the
// correction applied and what the estimator still sees afterwards.
#pragma once

#include <memory>

#include "phy/phy.hpp"
#include "phy/registry.hpp"

namespace tinysdr::phy {

/// Which correction stages run, plus the CFO estimator's per-PHY knobs.
struct RxCalibration {
  bool dc_notch = true;
  bool iq_correct = true;
  bool cfo_correct = true;
  /// Autocorrelation lag in samples (see dsp::CfoEstimatorConfig).
  std::size_t cfo_lag = 1;
  /// Estimator nonlinearity order (2 strips BPSK-family data flips).
  std::size_t cfo_power = 1;
  /// Samples of the capture the estimator reads (0 = whole capture);
  /// window a data-dependent PHY to its fixed preamble.
  std::size_t cfo_window = 0;
  /// Zero-CFO estimator reading of the target waveform (cycles/sample),
  /// subtracted from every raw estimate. Measure with measure_cfo_bias().
  double cfo_bias = 0.0;
};

class CalibratedRx final : public PhyRx {
 public:
  /// Borrows `inner`; it must outlive this object.
  CalibratedRx(const PhyRx& inner, RxCalibration calibration);
  /// Owns `inner` (the make_calibrated_rx() path).
  CalibratedRx(std::unique_ptr<PhyRx> inner, RxCalibration calibration);

  [[nodiscard]] Protocol protocol() const override {
    return inner_->protocol();
  }
  [[nodiscard]] Hertz sample_rate() const override {
    return inner_->sample_rate();
  }
  [[nodiscard]] const RxCalibration& calibration() const {
    return calibration_;
  }

  [[nodiscard]] FrameResult demodulate(
      std::span<const dsp::Complex> iq,
      std::span<const std::uint8_t> reference) const override;

 private:
  const PhyRx* inner_;
  std::unique_ptr<PhyRx> owned_;
  RxCalibration calibration_;
};

/// The CFO estimator's reading on a clean reference waveform from `tx`
/// (fixed calibration payload, `pad_samples` of silence around it) — the
/// modulation's inherent rotation under `cal`'s lag/power/window, i.e.
/// the bias to subtract at estimate time. cal.cfo_bias itself is ignored.
[[nodiscard]] double measure_cfo_bias(const PhyTx& tx,
                                      const RxCalibration& cal,
                                      std::size_t pad_samples = 0);

/// Calibration defaults for a registry entry: all three stages on, the
/// entry's cfo_lag, and the bias measured on a clean waveform from its TX.
[[nodiscard]] RxCalibration default_calibration(const RegisteredPhy& entry);

/// A ready-to-use calibrated receiver for a registry entry (owns the
/// wrapped RX). Pass a config to override default_calibration(entry).
[[nodiscard]] std::unique_ptr<PhyRx> make_calibrated_rx(
    const RegisteredPhy& entry);
[[nodiscard]] std::unique_ptr<PhyRx> make_calibrated_rx(
    const RegisteredPhy& entry, RxCalibration calibration);

}  // namespace tinysdr::phy
