#include "phy/lora_phy.hpp"

#include <bit>

namespace tinysdr::phy {

std::vector<std::uint32_t> symbols_from_bytes(
    std::span<const std::uint8_t> payload, int sf) {
  std::vector<std::uint32_t> symbols;
  const std::size_t total_bits = payload.size() * 8;
  symbols.reserve(total_bits / static_cast<std::size_t>(sf));
  std::uint32_t acc = 0;
  int held = 0;
  for (std::uint8_t byte : payload) {
    acc = (acc << 8) | byte;
    held += 8;
    while (held >= sf) {
      held -= sf;
      symbols.push_back((acc >> held) & ((std::uint32_t{1} << sf) - 1));
    }
    acc &= (std::uint32_t{1} << held) - 1;
  }
  return symbols;
}

// ------------------------------------------------------------- packet TX

LoraPacketTx::LoraPacketTx(LoraPhyConfig config)
    : config_(config),
      modulator_(config.params, config.rate()),
      sx1276_(config.params),
      dac_(config.dac_bits > 0 ? config.dac_bits : 13, 1.0f) {}

void LoraPacketTx::modulate(std::span<const std::uint8_t> payload,
                            dsp::Samples& out) const {
  dsp::Samples wave = config_.sx1276_tx ? sx1276_.transmit(payload)
                                        : modulator_.modulate(payload);
  if (!config_.sx1276_tx && config_.dac_bits > 0) wave = dac_.roundtrip(wave);
  out.insert(out.end(), wave.begin(), wave.end());
}

// ------------------------------------------------------------- packet RX

LoraPacketRx::LoraPacketRx(LoraPhyConfig config)
    : config_(config),
      demod_(config.params, config.rate(), config.fir_taps) {}

FrameResult LoraPacketRx::demodulate(
    std::span<const dsp::Complex> iq,
    std::span<const std::uint8_t> reference) const {
  auto result = demod_.receive(iq);
  if (!result) return score_lost_packet(reference);
  return score_packet(reference, result->packet.payload,
                      result->packet.header_valid &&
                          result->packet.crc_valid);
}

// ------------------------------------------------------------- symbol TX

LoraSymbolTx::LoraSymbolTx(LoraPhyConfig config)
    : config_(config), chirps_(config.params, config.rate()) {}

void LoraSymbolTx::modulate(std::span<const std::uint8_t> payload,
                            dsp::Samples& out) const {
  auto symbols = symbols_from_bytes(payload, config_.params.sf);
  out.reserve(out.size() + symbols.size() * chirps_.samples_per_symbol());
  for (std::uint32_t value : symbols) {
    auto sym = chirps_.symbol(value, lora::ChirpDirection::kUp);
    out.insert(out.end(), sym.begin(), sym.end());
  }
}

// ------------------------------------------------------------- symbol RX

LoraSymbolRx::LoraSymbolRx(LoraPhyConfig config)
    : config_(config),
      demod_(config.params, config.rate(), config.fir_taps) {}

FrameResult LoraSymbolRx::demodulate(
    std::span<const dsp::Complex> iq,
    std::span<const std::uint8_t> reference) const {
  auto tx = symbols_from_bytes(reference, config_.params.sf);
  FrameResult r;
  r.symbols = tx.size();
  r.bits = tx.size() * static_cast<std::size_t>(config_.params.sf);
  if (tx.empty()) {
    r.frame_ok = true;
    return r;
  }
  auto conditioned = demod_.condition(iq);
  auto rx = demod_.demodulate_aligned(conditioned, 0, tx.size());
  for (std::size_t i = 0; i < tx.size(); ++i) {
    std::uint32_t got = i < rx.size() ? rx[i] : ~tx[i];
    if (got != tx[i]) {
      ++r.symbol_errors;
      r.bit_errors += static_cast<std::uint64_t>(std::popcount(
          (got ^ tx[i]) & ((std::uint32_t{1} << config_.params.sf) - 1)));
    }
  }
  r.frame_ok = r.symbol_errors == 0;
  return r;
}

}  // namespace tinysdr::phy
