// LinkSimulator: the one trial engine behind every PER/BER/SER curve.
//
// One seeded pipeline — random (or fixed) payload -> PhyTx waveform ->
// optional quasi-orthogonal interferer superposition -> AwgnChannel at the
// sweep RSSI -> PhyRx -> FrameResult — aggregated per sweep point. The
// figure benches (Fig. 10/11/12/15a/15b) and the testbed multi-PHY
// campaigns all run on it instead of hand-rolling their own loops.
//
// Determinism contract (PR 3's rules): one base seed roots a sweep; a
// point's seed is a pure function of (base, rssi value) — independent of
// the sweep grid, so adding or reordering points never changes another
// point's trials — and each trial's RNGs derive from (point seed, trial
// index) via exec::stream_seed. Points shard across exec::parallel_for
// with per-point metrics shards merged in point order, so results and
// telemetry are byte-identical for any --threads value.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "channel/noise.hpp"
#include "exec/policy.hpp"
#include "phy/phy.hpp"

namespace tinysdr::phy {

/// Per-sweep configuration of the trial loop.
struct TrialPlan {
  std::size_t trials = 50;
  /// Random-payload size per trial (clamped to the TX's max_payload()).
  std::size_t payload_bytes = 16;
  /// Transmit this exact payload every trial instead of random bytes
  /// (Fig. 10's fixed 3-byte payload, Fig. 12's fixed beacon).
  std::optional<std::vector<std::uint8_t>> fixed_payload;
  /// Zero samples padded before and after the waveform so synchronising
  /// receivers hunt for the packet the way they would on air.
  std::size_t pad_samples = 0;
  /// Receiver noise figure; defaults to the generic front end — benches
  /// pass the per-PHY calibrated value from the phy:: config defaults.
  double noise_figure_db = channel::kDefaultNoiseFigureDb;
  /// Noise bandwidth; unset means the RX sample rate.
  std::optional<Hertz> channel_rate;
  /// Root of the sweep's seed derivation.
  std::uint64_t base_seed = 1;
};

/// One sweep point: the signal RSSI, plus the interferer's RSSI when the
/// simulator has an interferer attached (Fig. 15's second transmitter).
struct SweepPoint {
  Dbm rssi{0.0};
  std::optional<Dbm> interferer_rssi;
};

/// Aggregated trial outcomes at one point.
struct PointResult {
  double rssi_dbm = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t frame_errors = 0;
  std::uint64_t bits = 0;
  std::uint64_t bit_errors = 0;
  std::uint64_t symbols = 0;
  std::uint64_t symbol_errors = 0;

  [[nodiscard]] double per() const {
    return frames == 0 ? 0.0
                       : static_cast<double>(frame_errors) /
                             static_cast<double>(frames);
  }
  [[nodiscard]] double ber() const {
    return bits == 0 ? 0.0
                     : static_cast<double>(bit_errors) /
                           static_cast<double>(bits);
  }
  [[nodiscard]] double ser() const {
    return symbols == 0 ? 0.0
                        : static_cast<double>(symbol_errors) /
                              static_cast<double>(symbols);
  }

  [[nodiscard]] bool operator==(const PointResult&) const = default;
};

class LinkSimulator {
 public:
  /// Borrows the TX/RX (and optional interferer); they must outlive the
  /// simulator and be safe for concurrent const use (all adapters are).
  LinkSimulator(const PhyTx& tx, const PhyRx& rx, TrialPlan plan);

  /// Attach a second, concurrently transmitting PHY whose waveform is
  /// superposed onto the signal at each point's interferer RSSI.
  void set_interferer(const PhyTx& tx) { interferer_ = &tx; }

  [[nodiscard]] const TrialPlan& plan() const { return plan_; }

  /// Seed for a point: pure in (base, rssi value), independent of where —
  /// or whether — the point sits in any particular sweep grid.
  [[nodiscard]] static std::uint64_t point_seed(std::uint64_t base,
                                                double rssi_dbm);

  /// Run the full trial loop at one point.
  [[nodiscard]] PointResult run_point(const SweepPoint& point) const;

  /// Run every point, sharded across the exec worker pool. Results and
  /// merged metrics are byte-identical regardless of thread count.
  [[nodiscard]] std::vector<PointResult> sweep(
      std::span<const SweepPoint> points,
      const exec::ExecPolicy& policy = {}) const;

  /// Like sweep(), but surfaces how the region ended: the policy's
  /// cancellation token or deadline can stop the sweep early, and the
  /// returned RunStatus says so plus how many points completed. `results`
  /// is resized to points.size(); a point that never ran is left
  /// value-initialised (frames == 0 — a well-formed "no trials" result).
  /// Metric shards of completed points are still merged in point-index
  /// order, so partial telemetry is deterministic and no shard is leaked
  /// or double-counted.
  [[nodiscard]] exec::RunStatus sweep(std::span<const SweepPoint> points,
                                      std::vector<PointResult>& results,
                                      const exec::ExecPolicy& policy = {}) const;

  /// Convenience: a plain RSSI grid with no interferer sweep.
  [[nodiscard]] std::vector<PointResult> sweep_rssi(
      std::span<const double> rssi_dbm,
      const exec::ExecPolicy& policy = {}) const;

 private:
  const PhyTx* tx_;
  const PhyRx* rx_;
  const PhyTx* interferer_ = nullptr;
  TrialPlan plan_;
};

}  // namespace tinysdr::phy
