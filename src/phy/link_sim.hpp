// LinkSimulator: the one trial engine behind every PER/BER/SER curve.
//
// One seeded pipeline — random (or fixed) payload -> PhyTx waveform ->
// superposition of any attached interferers/jammers -> AwgnChannel at the
// sweep RSSI -> PhyRx -> FrameResult — aggregated per sweep point. The
// figure benches (Fig. 10/11/12/15a/15b), the adversary jammer sweeps and
// the testbed multi-PHY campaigns all run on it instead of hand-rolling
// their own loops.
//
// Determinism contract (PR 3's rules): one base seed roots a sweep; a
// point's seed is a pure function of (base, rssi value) — independent of
// the sweep grid, so adding or reordering points never changes another
// point's trials — and each trial's RNGs derive from (point seed, trial
// index) via exec::stream_seed. Points shard across exec::parallel_for
// with per-point metrics shards merged in point order, so results and
// telemetry are byte-identical for any --threads value.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "channel/noise.hpp"
#include "exec/policy.hpp"
#include "impair/impair.hpp"
#include "phy/phy.hpp"

namespace tinysdr::phy {

/// A concurrent in-band emitter superposed onto the signal before the
/// AWGN channel: a second PHY, a jammer, any RF attacker model.
///
/// emit() appends the emitter's waveform to `out` (unit power where
/// active; the simulator scales it to the slot's configured receive
/// power). The clean, padded victim signal is passed in so reactive
/// models can key off its energy — a shorter (or empty) emission simply
/// stops superposing early. Implementations must be safe for concurrent
/// const use; all per-trial randomness comes from `rng`, which the
/// simulator seeds per (point, trial, slot), keeping sweeps
/// byte-identical at any thread count.
class Interferer {
 public:
  virtual ~Interferer() = default;
  virtual void emit(std::span<const dsp::Complex> signal, dsp::Samples& out,
                    Rng& rng) const = 0;
};

/// The classic Fig. 15 interferer: a second PHY transmitting a random
/// payload drawn from the trial's interferer stream. Ignores the victim
/// signal (quasi-orthogonal concurrent transmitter, not an attacker).
class PhyTxInterferer final : public Interferer {
 public:
  /// Borrows the TX; payload size is clamped to its max_payload().
  PhyTxInterferer(const PhyTx& tx, std::size_t payload_bytes)
      : tx_(&tx), payload_bytes_(payload_bytes) {}

  void emit(std::span<const dsp::Complex> signal, dsp::Samples& out,
            Rng& rng) const override;

 private:
  const PhyTx* tx_;
  std::size_t payload_bytes_;
};

/// Per-sweep configuration of the trial loop.
struct TrialPlan {
  std::size_t trials = 50;
  /// Random-payload size per trial (clamped to the TX's max_payload()).
  std::size_t payload_bytes = 16;
  /// Transmit this exact payload every trial instead of random bytes
  /// (Fig. 10's fixed 3-byte payload, Fig. 12's fixed beacon).
  std::optional<std::vector<std::uint8_t>> fixed_payload;
  /// Zero samples padded before and after the waveform so synchronising
  /// receivers hunt for the packet the way they would on air.
  std::size_t pad_samples = 0;
  /// Receiver noise figure; defaults to the generic front end — benches
  /// pass the per-PHY calibrated value from the phy:: config defaults.
  double noise_figure_db = channel::kDefaultNoiseFigureDb;
  /// Noise bandwidth; unset means the RX sample rate.
  std::optional<Hertz> channel_rate;
  /// Root of the sweep's seed derivation.
  std::uint64_t base_seed = 1;
};

/// One sweep point: the signal RSSI, plus the interferer's RSSI when the
/// simulator has an interferer attached (Fig. 15's second transmitter).
struct SweepPoint {
  Dbm rssi{0.0};
  std::optional<Dbm> interferer_rssi;
};

/// Aggregated trial outcomes at one point.
struct PointResult {
  double rssi_dbm = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t frame_errors = 0;
  std::uint64_t bits = 0;
  std::uint64_t bit_errors = 0;
  std::uint64_t symbols = 0;
  std::uint64_t symbol_errors = 0;

  [[nodiscard]] double per() const {
    return frames == 0 ? 0.0
                       : static_cast<double>(frame_errors) /
                             static_cast<double>(frames);
  }
  [[nodiscard]] double ber() const {
    return bits == 0 ? 0.0
                     : static_cast<double>(bit_errors) /
                           static_cast<double>(bits);
  }
  [[nodiscard]] double ser() const {
    return symbols == 0 ? 0.0
                        : static_cast<double>(symbol_errors) /
                              static_cast<double>(symbols);
  }

  [[nodiscard]] bool operator==(const PointResult&) const = default;
};

class LinkSimulator {
 public:
  /// Borrows the TX/RX (and any attached interferers); they must outlive
  /// the simulator and be safe for concurrent const use (all adapters are).
  LinkSimulator(const PhyTx& tx, const PhyRx& rx, TrialPlan plan);

  /// Attach a second, concurrently transmitting PHY whose waveform is
  /// superposed onto the signal at each point's interferer RSSI. Kept as
  /// a wrapper over add_interferer() — the first slot draws from the same
  /// RNG stream the single-interferer engine always used, so existing
  /// sweeps stay byte-identical.
  void set_interferer(const PhyTx& tx);

  /// Attach any interferer/attacker model. `power` fixes its received
  /// power; nullopt means the sweep point's interferer_rssi drives it
  /// (and the slot stays silent at points without one). Slots superpose
  /// in attachment order; each gets its own RNG stream per trial.
  void add_interferer(const Interferer& source,
                      std::optional<Dbm> power = std::nullopt);

  [[nodiscard]] std::size_t interferer_count() const {
    return interferers_.size();
  }

  /// Append an impairment block to the ordered chain (borrowed; must
  /// outlive the simulator). TX-stage slots distort the combined waveform
  /// after the interferer mix and before the AWGN channel; RX-stage slots
  /// land on the noisy capture before demodulation. Slot k draws from RNG
  /// stream (trial seed, kImpairStreamBase + k) — k the slot's index in
  /// the full chain — so results are independent of the sweep grid and
  /// thread count, and flow::StreamingLink can replay them byte-for-byte.
  /// An empty chain leaves every existing sweep byte-identical.
  void add_impairment(const impair::Impairment& block, impair::Stage stage);

  [[nodiscard]] const impair::Chain& impairments() const {
    return impairments_;
  }

  [[nodiscard]] const TrialPlan& plan() const { return plan_; }

  /// PCG stream selectors for the independent randomness a trial consumes.
  /// Distinct streams of one trial seed, so adding a consumer never
  /// perturbs the others. Public so alternative trial engines (the flow
  /// layer's continuous-streaming mode) can replay the exact same
  /// randomness and stay byte-identical with run_point(). The first
  /// interferer slot keeps the historical kInterfererStream; further slots
  /// get kExtraInterfererBase + k, clear of any selector already in use.
  static constexpr std::uint64_t kPayloadStream = 1;
  static constexpr std::uint64_t kInterfererStream = 2;
  static constexpr std::uint64_t kChannelStream = 3;
  static constexpr std::uint64_t kExtraInterfererBase = 16;
  /// Impairment chain slot k draws stream kImpairStreamBase + k; the base
  /// sits clear of the interferer block (kExtraInterfererBase + k).
  static constexpr std::uint64_t kImpairStreamBase = 64;

  /// Seed for a point: pure in (base, rssi value), independent of where —
  /// or whether — the point sits in any particular sweep grid.
  [[nodiscard]] static std::uint64_t point_seed(std::uint64_t base,
                                                double rssi_dbm);

  /// Run the full trial loop at one point.
  [[nodiscard]] PointResult run_point(const SweepPoint& point) const;

  /// Run every point, sharded across the exec worker pool. Results and
  /// merged metrics are byte-identical regardless of thread count.
  [[nodiscard]] std::vector<PointResult> sweep(
      std::span<const SweepPoint> points,
      const exec::ExecPolicy& policy = {}) const;

  /// Like sweep(), but surfaces how the region ended: the policy's
  /// cancellation token or deadline can stop the sweep early, and the
  /// returned RunStatus says so plus how many points completed. `results`
  /// is resized to points.size(); a point that never ran is left
  /// value-initialised (frames == 0 — a well-formed "no trials" result).
  /// Metric shards of completed points are still merged in point-index
  /// order, so partial telemetry is deterministic and no shard is leaked
  /// or double-counted.
  [[nodiscard]] exec::RunStatus sweep(std::span<const SweepPoint> points,
                                      std::vector<PointResult>& results,
                                      const exec::ExecPolicy& policy = {}) const;

  /// Convenience: a plain RSSI grid with no interferer sweep.
  [[nodiscard]] std::vector<PointResult> sweep_rssi(
      std::span<const double> rssi_dbm,
      const exec::ExecPolicy& policy = {}) const;

 private:
  struct InterfererSlot {
    const Interferer* source;
    std::optional<Dbm> power;  ///< nullopt: the point's interferer_rssi
  };

  const PhyTx* tx_;
  const PhyRx* rx_;
  TrialPlan plan_;
  std::vector<InterfererSlot> interferers_;
  impair::Chain impairments_;
  /// Adapters created by set_interferer(); stable addresses for the slots.
  std::vector<std::unique_ptr<Interferer>> owned_;
};

}  // namespace tinysdr::phy
