// LoRa adapters for the unified PHY layer.
//
// Two granularities, matching the paper's two LoRa evaluations:
//   - LoraPacketTx/Rx: full packets (preamble/sync/SFD/header/payload/CRC)
//     through the synchronising receiver — the Fig. 10 PER pipeline. The
//     TX side models either tinySDR's path (modulator + 13-bit DAC) or the
//     SX1276 baseline.
//   - LoraSymbolTx/Rx: raw chirp symbols carved SF bits at a time from the
//     payload bytes, demodulated symbol-aligned — the Fig. 11/15 SER
//     pipeline ("we have access to I/Q samples, we can compute it").
#pragma once

#include <vector>

#include "lora/demodulator.hpp"
#include "lora/modulator.hpp"
#include "lora/sx1276.hpp"
#include "phy/phy.hpp"
#include "radio/quantizer.hpp"

namespace tinysdr::phy {

/// Calibrated LoRa system noise figure: 4 dB front-end NF (AT86RF215,
/// §3.1.1) plus 7.5 dB implementation margin (CFO, quantization, AGC
/// settle, sync jitter folded into one number), placing the SF8/BW125
/// chirp SER knee at about -126 dBm as the paper measures (Fig. 11). The
/// calibration is recorded in EXPERIMENTS.md.
inline constexpr double kLoraSystemNf = 11.5;

struct LoraPhyConfig {
  lora::LoraParams params{8, Hertz::from_kilohertz(125.0)};
  /// Front-end rate; 0 means critical sampling (fs = BW).
  Hertz sample_rate{0.0};
  /// Demodulator front-end FIR length (paper: 14).
  std::size_t fir_taps = 14;
  /// TX DAC resolution for the tinySDR path; 0 disables quantization.
  int dac_bits = 13;
  /// Model the SX1276 baseline transmitter instead of tinySDR's DAC path.
  bool sx1276_tx = false;
  double system_noise_figure_db = kLoraSystemNf;

  [[nodiscard]] Hertz rate() const {
    return sample_rate.value() > 0.0 ? sample_rate : params.bandwidth;
  }
};

/// Payload bytes -> chirp symbol values, SF bits per symbol MSB-first.
/// Trailing bits that do not fill a symbol are dropped; TX and RX share
/// this mapping so the scorer knows the expected symbols.
[[nodiscard]] std::vector<std::uint32_t> symbols_from_bytes(
    std::span<const std::uint8_t> payload, int sf);

class LoraPacketTx final : public PhyTx {
 public:
  explicit LoraPacketTx(LoraPhyConfig config = {});

  [[nodiscard]] Protocol protocol() const override { return Protocol::kLora; }
  [[nodiscard]] Hertz sample_rate() const override { return config_.rate(); }
  [[nodiscard]] std::size_t max_payload() const override {
    return lora::kMaxPayload;
  }
  void modulate(std::span<const std::uint8_t> payload,
                dsp::Samples& out) const override;

 private:
  LoraPhyConfig config_;
  lora::Modulator modulator_;
  lora::Sx1276Model sx1276_;
  radio::IqQuantizer dac_;
};

class LoraPacketRx final : public PhyRx {
 public:
  explicit LoraPacketRx(LoraPhyConfig config = {});

  [[nodiscard]] Protocol protocol() const override { return Protocol::kLora; }
  [[nodiscard]] Hertz sample_rate() const override { return config_.rate(); }
  [[nodiscard]] FrameResult demodulate(
      std::span<const dsp::Complex> iq,
      std::span<const std::uint8_t> reference) const override;

 private:
  LoraPhyConfig config_;
  lora::Demodulator demod_;
};

class LoraSymbolTx final : public PhyTx {
 public:
  explicit LoraSymbolTx(LoraPhyConfig config = {});

  [[nodiscard]] Protocol protocol() const override { return Protocol::kLora; }
  [[nodiscard]] Hertz sample_rate() const override { return config_.rate(); }
  /// Bounded only by how many symbols the caller wants per trial.
  [[nodiscard]] std::size_t max_payload() const override { return 4096; }
  void modulate(std::span<const std::uint8_t> payload,
                dsp::Samples& out) const override;

 private:
  LoraPhyConfig config_;
  lora::ChirpGenerator chirps_;
};

class LoraSymbolRx final : public PhyRx {
 public:
  explicit LoraSymbolRx(LoraPhyConfig config = {});

  [[nodiscard]] Protocol protocol() const override { return Protocol::kLora; }
  [[nodiscard]] Hertz sample_rate() const override { return config_.rate(); }
  [[nodiscard]] FrameResult demodulate(
      std::span<const dsp::Complex> iq,
      std::span<const std::uint8_t> reference) const override;

 private:
  LoraPhyConfig config_;
  lora::Demodulator demod_;
};

}  // namespace tinysdr::phy
