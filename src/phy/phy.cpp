#include "phy/phy.hpp"

#include <bit>

namespace tinysdr::phy {

std::string_view protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kLora: return "lora";
    case Protocol::kBle: return "ble";
    case Protocol::kZigbee: return "zigbee";
    case Protocol::kSigfox: return "sigfox";
    case Protocol::kNbiot: return "nbiot";
  }
  return "unknown";
}

std::optional<Protocol> protocol_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kProtocolCount; ++i) {
    auto p = static_cast<Protocol>(i);
    if (protocol_name(p) == name) return p;
  }
  return std::nullopt;
}

FrameResult score_packet(std::span<const std::uint8_t> reference,
                         std::span<const std::uint8_t> decoded,
                         bool decoded_ok) {
  FrameResult r;
  r.bits = reference.size() * 8;
  std::size_t common = std::min(reference.size(), decoded.size());
  for (std::size_t i = 0; i < common; ++i)
    r.bit_errors += static_cast<std::uint64_t>(
        std::popcount(static_cast<unsigned>(reference[i] ^ decoded[i])));
  // Length mismatch: every byte not covered by the decode is fully errored.
  if (reference.size() > common)
    r.bit_errors += (reference.size() - common) * 8;
  r.frame_ok = decoded_ok && decoded.size() == reference.size() &&
               r.bit_errors == 0;
  return r;
}

FrameResult score_lost_packet(std::span<const std::uint8_t> reference) {
  FrameResult r;
  r.bits = reference.size() * 8;
  r.bit_errors = r.bits;
  r.frame_ok = false;
  return r;
}

}  // namespace tinysdr::phy
