// 802.15.4 O-QPSK ("Zigbee") adapter for the unified PHY layer: payloads
// are PSDUs carried in a full PPDU (preamble, SFD, PHR, FCS) through the
// DSSS modem at the AT86RF215's 4 MHz I/Q rate.
#pragma once

#include "phy/phy.hpp"
#include "zigbee/oqpsk.hpp"

namespace tinysdr::phy {

/// Zigbee runs over the same front end with no extra implementation margin
/// calibrated in: the default receiver NF (front-end + margin).
inline constexpr double kZigbeeSystemNf = 6.0;

struct ZigbeePhyConfig {
  zigbee::OqpskConfig oqpsk{};
  double system_noise_figure_db = kZigbeeSystemNf;
};

class ZigbeeTx final : public PhyTx {
 public:
  explicit ZigbeeTx(ZigbeePhyConfig config = {});

  [[nodiscard]] Protocol protocol() const override {
    return Protocol::kZigbee;
  }
  [[nodiscard]] Hertz sample_rate() const override {
    return config_.oqpsk.sample_rate();
  }
  /// PHR length field covers PSDU + FCS, capping the payload at 125 B.
  [[nodiscard]] std::size_t max_payload() const override {
    return zigbee::kMaxPsdu - 2;
  }
  void modulate(std::span<const std::uint8_t> payload,
                dsp::Samples& out) const override;

 private:
  ZigbeePhyConfig config_;
  zigbee::OqpskModem modem_;
};

class ZigbeeRx final : public PhyRx {
 public:
  explicit ZigbeeRx(ZigbeePhyConfig config = {});

  [[nodiscard]] Protocol protocol() const override {
    return Protocol::kZigbee;
  }
  [[nodiscard]] Hertz sample_rate() const override {
    return config_.oqpsk.sample_rate();
  }
  [[nodiscard]] FrameResult demodulate(
      std::span<const dsp::Complex> iq,
      std::span<const std::uint8_t> reference) const override;

 private:
  ZigbeePhyConfig config_;
  zigbee::OqpskModem modem_;
};

}  // namespace tinysdr::phy
