#include "phy/ble_phy.hpp"

#include <cmath>

namespace tinysdr::phy {

namespace {

ble::AdvPacket packet_for(const BlePhyConfig& config,
                          std::span<const std::uint8_t> payload) {
  ble::AdvPacket packet;
  packet.adv_address = config.adv_address;
  packet.adv_data.assign(payload.begin(), payload.end());
  return packet;
}

}  // namespace

BleBeaconTx::BleBeaconTx(BlePhyConfig config)
    : config_(config), modulator_(config.gfsk) {}

void BleBeaconTx::modulate(std::span<const std::uint8_t> payload,
                           dsp::Samples& out) const {
  auto bits = ble::assemble_air_bits(packet_for(config_, payload),
                                     config_.channel_index);
  auto wave = modulator_.modulate(bits);
  out.insert(out.end(), wave.begin(), wave.end());
}

BleBeaconRx::BleBeaconRx(BlePhyConfig config)
    : config_(config), demod_(config.gfsk) {}

FrameResult BleBeaconRx::demodulate(
    std::span<const dsp::Complex> iq,
    std::span<const std::uint8_t> reference) const {
  auto reference_bits = ble::assemble_air_bits(
      packet_for(config_, reference), config_.channel_index);
  auto bits = demod_.demodulate(iq, demod_.estimate_timing(iq));
  double ber = ble::aligned_ber(reference_bits, bits);
  FrameResult r;
  r.bits = reference_bits.size();
  r.bit_errors = static_cast<std::uint64_t>(
      std::llround(ber * static_cast<double>(reference_bits.size())));
  r.frame_ok = r.bit_errors == 0;
  return r;
}

}  // namespace tinysdr::phy
