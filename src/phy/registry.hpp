// Protocol registry: every PHY the platform hosts, keyed by protocol id.
//
// The registry is how harness code (LinkSimulator benches, testbed
// campaigns, the flow blocks) reaches a PHY without naming its concrete
// classes: look up the entry, build a PhyTx/PhyRx pair from its factories,
// and run. `Registry::builtin()` carries all five reproduced PHYs at their
// paper-default configurations; adding a sixth protocol is one add() call.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "phy/phy.hpp"

namespace tinysdr::phy {

struct RegisteredPhy {
  Protocol id{};
  std::string name;
  /// Calibrated system noise figure the evaluation benches use for this
  /// PHY (one source of truth — bench code reads it from here).
  double system_noise_figure_db = 0.0;
  /// Largest payload the TX accepts (mirrors PhyTx::max_payload()).
  std::size_t max_payload = 0;
  /// Zero-padding the RX wants around the waveform. Non-zero only for
  /// synchronising receivers (LoRa packet sync hunts for the preamble);
  /// aligned demodulators expect the frame at sample zero and must get 0.
  std::size_t pad_samples = 0;
  /// Autocorrelation lag (samples) the CFO estimator should use for this
  /// PHY: 1 for oversampled constant-envelope modulations, samples-per-
  /// symbol for LoRa's repeated-preamble correlation (see dsp/cfo.hpp).
  std::size_t cfo_lag = 1;
  /// Estimator nonlinearity order: 2 for BPSK-family PHYs whose data
  /// flips would otherwise bias the angle (NB-IoT pi/2-BPSK); 1 elsewhere.
  std::size_t cfo_power = 1;
  /// Samples of the capture the estimator reads (0 = all). Non-zero for
  /// PHYs whose rotation is data-dependent but whose frames open with a
  /// fixed pattern (Zigbee's 8-symbol preamble + SFD): windowing to it
  /// makes the measured bias payload-independent.
  std::size_t cfo_window = 0;
  std::function<std::unique_ptr<PhyTx>()> make_tx;
  std::function<std::unique_ptr<PhyRx>()> make_rx;
};

class Registry {
 public:
  /// Register a PHY. @throws std::invalid_argument on a duplicate id.
  void add(RegisteredPhy entry);

  [[nodiscard]] const RegisteredPhy* find(Protocol id) const;
  /// find() that throws std::out_of_range instead of returning nullptr.
  [[nodiscard]] const RegisteredPhy& at(Protocol id) const;
  /// Lookup by wire name ("lora", "ble", ...); nullptr when absent. The
  /// serve job schema names PHYs, so this is its entry point.
  [[nodiscard]] const RegisteredPhy* find_by_name(std::string_view name) const;

  [[nodiscard]] const std::vector<RegisteredPhy>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// The built-in registry: all five reproduced PHYs (LoRa SF8/BW125
  /// packets, BLE 1 Mbps beacons, Zigbee 250 kb/s, Sigfox 100 bps,
  /// NB-IoT single-tone) at their default configurations.
  [[nodiscard]] static const Registry& builtin();

 private:
  std::vector<RegisteredPhy> entries_;
};

}  // namespace tinysdr::phy
