#include "phy/link_sim.hpp"

#include <bit>
#include <chrono>
#include <memory>
#include <string>

#include "exec/parallel_for.hpp"
#include "exec/seed.hpp"
#include "obs/metrics.hpp"

namespace tinysdr::phy {

namespace {

void fill_random(std::vector<std::uint8_t>& payload, std::size_t count,
                 Rng& rng) {
  payload.resize(count);
  for (auto& b : payload) b = rng.next_byte();
}

}  // namespace

void PhyTxInterferer::emit(std::span<const dsp::Complex> /*signal*/,
                           dsp::Samples& out, Rng& rng) const {
  std::vector<std::uint8_t> payload;
  fill_random(payload, std::min(payload_bytes_, tx_->max_payload()), rng);
  tx_->modulate(payload, out);
}

LinkSimulator::LinkSimulator(const PhyTx& tx, const PhyRx& rx, TrialPlan plan)
    : tx_(&tx), rx_(&rx), plan_(std::move(plan)) {}

void LinkSimulator::set_interferer(const PhyTx& tx) {
  owned_.push_back(
      std::make_unique<PhyTxInterferer>(tx, plan_.payload_bytes));
  add_interferer(*owned_.back());
}

void LinkSimulator::add_interferer(const Interferer& source,
                                   std::optional<Dbm> power) {
  interferers_.push_back({&source, power});
}

void LinkSimulator::add_impairment(const impair::Impairment& block,
                                   impair::Stage stage) {
  impairments_.push_back({&block, stage});
}

std::uint64_t LinkSimulator::point_seed(std::uint64_t base, double rssi_dbm) {
  return exec::stream_seed(
      base, exec::splitmix64(std::bit_cast<std::uint64_t>(rssi_dbm)));
}

PointResult LinkSimulator::run_point(const SweepPoint& point) const {
  PointResult acc;
  acc.rssi_dbm = point.rssi.value();

  obs::Registry* registry = obs::metrics();
  const std::string prefix = "phy." + std::string(protocol_name(
                                          rx_->protocol()));

  const Hertz rate = plan_.channel_rate.value_or(rx_->sample_rate());
  const std::uint64_t pseed = point_seed(plan_.base_seed, acc.rssi_dbm);

  // Buffers live across the trial loop; modulate() appends, so the only
  // steady-state cost is the waveform writes themselves.
  dsp::Samples wave, interferer_wave;
  std::vector<std::uint8_t> payload;

  bool has_tx_impair = false;
  bool has_rx_impair = false;
  for (const auto& slot : impairments_) {
    if (slot.stage == impair::Stage::kTx) has_tx_impair = true;
    if (slot.stage == impair::Stage::kRx) has_rx_impair = true;
  }
  std::uint64_t tx_impair_samples = 0;
  std::uint64_t rx_impair_samples = 0;

  for (std::size_t t = 0; t < plan_.trials; ++t) {
    const std::uint64_t tseed = exec::stream_seed(pseed, t);

    if (plan_.fixed_payload) {
      payload = *plan_.fixed_payload;
    } else {
      Rng payload_rng{tseed, kPayloadStream};
      fill_random(payload,
                  std::min(plan_.payload_bytes, tx_->max_payload()),
                  payload_rng);
    }

    wave.clear();
    wave.insert(wave.end(), plan_.pad_samples, dsp::Complex{0.0f, 0.0f});
    tx_->modulate(payload, wave);
    wave.insert(wave.end(), plan_.pad_samples, dsp::Complex{0.0f, 0.0f});

    const dsp::Samples* signal = &wave;
    dsp::Samples combined;
    for (std::size_t k = 0; k < interferers_.size(); ++k) {
      const InterfererSlot& slot = interferers_[k];
      std::optional<Dbm> power =
          slot.power ? slot.power : point.interferer_rssi;
      if (!power) continue;
      Rng interferer_rng{tseed, k == 0 ? kInterfererStream
                                       : kExtraInterfererBase + k};
      interferer_wave.clear();
      slot.source->emit(wave, interferer_wave, interferer_rng);
      if (interferer_wave.empty()) continue;
      combined = channel::superpose(*signal, interferer_wave,
                                    power->value() - point.rssi.value());
      signal = &combined;
    }

    // TX-stage impairments distort the combined waveform on a copy, so
    // the clean `wave` stays available to reactive interferer models and
    // an empty chain leaves this path untouched.
    if (has_tx_impair) {
      if (signal != &combined) {
        combined.assign(signal->begin(), signal->end());
        signal = &combined;
      }
      impair::apply_stage(impairments_, impair::Stage::kTx, combined, tseed,
                          kImpairStreamBase);
      tx_impair_samples += combined.size();
    }

    channel::AwgnChannel channel{rate, plan_.noise_figure_db,
                                 Rng{tseed, kChannelStream}};
    auto noisy = channel.apply(*signal, point.rssi);

    if (has_rx_impair) {
      impair::apply_stage(impairments_, impair::Stage::kRx, noisy, tseed,
                          kImpairStreamBase);
      rx_impair_samples += noisy.size();
    }

    FrameResult r;
    if (registry != nullptr) {
      auto start = std::chrono::steady_clock::now();
      r = rx_->demodulate(noisy, payload);
      auto end = std::chrono::steady_clock::now();
      registry
          ->histogram(prefix + ".demod_us",
                      obs::HistogramSpec::log_scale(0.01, 1e7, 72))
          .observe(
              std::chrono::duration<double, std::micro>(end - start).count());
    } else {
      r = rx_->demodulate(noisy, payload);
    }

    acc.frames += 1;
    acc.frame_errors += r.frame_ok ? 0 : 1;
    acc.bits += r.bits;
    acc.bit_errors += r.bit_errors;
    acc.symbols += r.symbols;
    acc.symbol_errors += r.symbol_errors;
  }

  if (registry != nullptr) {
    registry->counter(prefix + ".trials")
        .add(static_cast<double>(acc.frames));
    registry->counter(prefix + ".frame_errors")
        .add(static_cast<double>(acc.frame_errors));
    registry->counter(prefix + ".bit_errors")
        .add(static_cast<double>(acc.bit_errors));
    registry->counter(prefix + ".symbol_errors")
        .add(static_cast<double>(acc.symbol_errors));
    // One add per chain slot, in chain order — the streaming engine adds
    // the same totals in the same order, keeping journaled metrics
    // byte-identical between the two paths.
    for (const auto& slot : impairments_) {
      const std::uint64_t total = slot.stage == impair::Stage::kTx
                                      ? tx_impair_samples
                                      : rx_impair_samples;
      registry
          ->counter("impair." + std::string(impair::stage_name(slot.stage)) +
                    "." + std::string(slot.impairment->name()) + ".samples")
          .add(static_cast<double>(total));
    }
  }
  return acc;
}

std::vector<PointResult> LinkSimulator::sweep(
    std::span<const SweepPoint> points,
    const exec::ExecPolicy& policy) const {
  std::vector<PointResult> results;
  (void)sweep(points, results, policy);
  return results;
}

exec::RunStatus LinkSimulator::sweep(std::span<const SweepPoint> points,
                                     std::vector<PointResult>& results,
                                     const exec::ExecPolicy& policy) const {
  results.assign(points.size(), PointResult{});
  obs::Registry* parent = obs::metrics();
  std::vector<std::unique_ptr<obs::Registry>> shards(points.size());

  exec::ExecPolicy p = policy;
  if (p.grain == 0) p.grain = 1;  // a point's trial loop is a heavy item

  exec::RunStatus status =
      exec::parallel_for(points.size(), p, [&](std::size_t i, std::size_t) {
        std::optional<obs::MetricsSession> session;
        if (parent != nullptr) {
          shards[i] = std::make_unique<obs::Registry>();
          shards[i]->enable_journal();
          session.emplace(*shards[i]);
        }
        results[i] = run_point(points[i]);
      });

  // Points skipped by cancellation/deadline have no shard; completed ones
  // merge in index order exactly as a full run would.
  if (parent != nullptr)
    for (const auto& shard : shards)
      if (shard != nullptr) parent->merge_from(*shard);
  return status;
}

std::vector<PointResult> LinkSimulator::sweep_rssi(
    std::span<const double> rssi_dbm, const exec::ExecPolicy& policy) const {
  std::vector<SweepPoint> points;
  points.reserve(rssi_dbm.size());
  for (double rssi : rssi_dbm) points.push_back({Dbm{rssi}, std::nullopt});
  return sweep(points, policy);
}

}  // namespace tinysdr::phy
