#include "phy/zigbee_phy.hpp"

namespace tinysdr::phy {

ZigbeeTx::ZigbeeTx(ZigbeePhyConfig config)
    : config_(config), modem_(config.oqpsk) {}

void ZigbeeTx::modulate(std::span<const std::uint8_t> payload,
                        dsp::Samples& out) const {
  auto wave = modem_.modulate(payload);
  out.insert(out.end(), wave.begin(), wave.end());
}

ZigbeeRx::ZigbeeRx(ZigbeePhyConfig config)
    : config_(config), modem_(config.oqpsk) {}

FrameResult ZigbeeRx::demodulate(
    std::span<const dsp::Complex> iq,
    std::span<const std::uint8_t> reference) const {
  auto decoded = modem_.demodulate(iq);
  if (!decoded) return score_lost_packet(reference);
  return score_packet(reference, *decoded, true);
}

}  // namespace tinysdr::phy
