// BLE beacon adapter for the unified PHY layer — the Fig. 12 pipeline.
//
// TX assembles a full ADV_NONCONN_IND on-air bit sequence (preamble,
// access address, whitened PDU + CRC24) for the payload as AdvData and
// GFSK-modulates it; RX demodulates with timing recovery and scores
// aligned bit errors against the reference air bits, the way the paper's
// CC2650 BER measurement does.
#pragma once

#include <array>

#include "ble/gfsk.hpp"
#include "ble/packet.hpp"
#include "phy/phy.hpp"

namespace tinysdr::phy {

/// Calibrated BLE system noise figure: places the BER 1e-3 knee at about
/// -94 dBm into the CC2650-class receiver model, within 2 dB of the
/// datasheet sensitivity as the paper's Fig. 12 shows.
inline constexpr double kBleSystemNf = 4.0;

struct BlePhyConfig {
  ble::GfskConfig gfsk{};
  int channel_index = 37;
  std::array<std::uint8_t, 6> adv_address{0x12, 0x34, 0x56,
                                          0x78, 0x9A, 0xBC};
  double system_noise_figure_db = kBleSystemNf;
};

class BleBeaconTx final : public PhyTx {
 public:
  explicit BleBeaconTx(BlePhyConfig config = {});

  [[nodiscard]] Protocol protocol() const override { return Protocol::kBle; }
  [[nodiscard]] Hertz sample_rate() const override {
    return config_.gfsk.sample_rate();
  }
  /// AdvData is capped at 31 bytes by the spec.
  [[nodiscard]] std::size_t max_payload() const override { return 31; }
  void modulate(std::span<const std::uint8_t> payload,
                dsp::Samples& out) const override;

 private:
  BlePhyConfig config_;
  ble::GfskModulator modulator_;
};

class BleBeaconRx final : public PhyRx {
 public:
  explicit BleBeaconRx(BlePhyConfig config = {});

  [[nodiscard]] Protocol protocol() const override { return Protocol::kBle; }
  [[nodiscard]] Hertz sample_rate() const override {
    return config_.gfsk.sample_rate();
  }
  [[nodiscard]] FrameResult demodulate(
      std::span<const dsp::Complex> iq,
      std::span<const std::uint8_t> reference) const override;

 private:
  BlePhyConfig config_;
  ble::GfskDemodulator demod_;
};

}  // namespace tinysdr::phy
