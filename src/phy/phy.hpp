// Unified PHY abstraction (paper §1/§4: one I/Q front end hosting many
// reprogrammable IoT PHYs).
//
// Every protocol the platform reproduces — LoRa CSS, BLE GFSK, 802.15.4
// O-QPSK, Sigfox UNB DBPSK, NB-IoT single-tone pi/2-BPSK — is exposed
// through the same two entry points: a PhyTx that turns payload bytes into
// a baseband waveform, and a PhyRx that turns a (noisy) waveform back into
// a FrameResult scored against the reference payload. The trial engines
// (phy::LinkSimulator, the flow blocks, the testbed campaigns) only ever
// see these interfaces, so a sixth PHY plugs in by writing one adapter and
// registering it — no harness changes.
//
// Both entry points are batch-oriented and span-based: modulate() appends
// to a caller-owned buffer (reused across trials, so the hot path performs
// no per-sample reallocation) and demodulate() reads a borrowed span.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "common/units.hpp"
#include "dsp/types.hpp"

namespace tinysdr::phy {

/// Protocol identifier — the registry key (paper §1's support list).
enum class Protocol : std::uint8_t {
  kLora = 0,
  kBle,
  kZigbee,
  kSigfox,
  kNbiot,
};

inline constexpr std::size_t kProtocolCount = 5;

[[nodiscard]] std::string_view protocol_name(Protocol p);

/// Inverse of protocol_name(): the id for a wire/CLI name ("lora", "ble",
/// ...), or nullopt for anything unrecognised. The job schema and the
/// serve layer key PHYs by name, not enum value.
[[nodiscard]] std::optional<Protocol> protocol_from_name(
    std::string_view name);

/// Outcome of one modulate → channel → demodulate trial, scored against
/// the transmitted reference. Frame/bit/symbol granularity so one result
/// type serves PER (Fig. 10), BER (Fig. 12) and SER (Fig. 11/15) curves;
/// PHYs that have no symbol notion leave the symbol fields zero.
struct FrameResult {
  bool frame_ok = false;
  std::uint64_t bits = 0;
  std::uint64_t bit_errors = 0;
  std::uint64_t symbols = 0;
  std::uint64_t symbol_errors = 0;

  [[nodiscard]] double ber() const {
    return bits == 0 ? 0.0
                     : static_cast<double>(bit_errors) /
                           static_cast<double>(bits);
  }
  [[nodiscard]] double ser() const {
    return symbols == 0 ? 0.0
                        : static_cast<double>(symbol_errors) /
                              static_cast<double>(symbols);
  }

  [[nodiscard]] bool operator==(const FrameResult&) const = default;
};

/// Transmit side: payload bytes -> baseband waveform.
class PhyTx {
 public:
  virtual ~PhyTx() = default;

  [[nodiscard]] virtual Protocol protocol() const = 0;
  [[nodiscard]] virtual Hertz sample_rate() const = 0;
  /// Largest payload modulate() accepts (trial engines clamp to this).
  [[nodiscard]] virtual std::size_t max_payload() const = 0;

  /// Append the waveform for `payload` to `out`. Appending (rather than
  /// returning a fresh vector) lets trial loops reuse one buffer.
  virtual void modulate(std::span<const std::uint8_t> payload,
                        dsp::Samples& out) const = 0;
};

/// Receive side: waveform -> error accounting against the reference.
class PhyRx {
 public:
  virtual ~PhyRx() = default;

  [[nodiscard]] virtual Protocol protocol() const = 0;
  [[nodiscard]] virtual Hertz sample_rate() const = 0;

  /// Demodulate `iq` (which carries the waveform some PhyTx produced for
  /// `reference`, possibly impaired) and score the outcome.
  [[nodiscard]] virtual FrameResult demodulate(
      std::span<const dsp::Complex> iq,
      std::span<const std::uint8_t> reference) const = 0;
};

/// Score a packet-granularity decode: hamming distance over the common
/// prefix, every missing/extra byte counted as 8 errored bits. `decoded_ok`
/// gates frame_ok on protocol-level success (CRC, header) beyond byte
/// equality.
[[nodiscard]] FrameResult score_packet(std::span<const std::uint8_t> reference,
                                       std::span<const std::uint8_t> decoded,
                                       bool decoded_ok);

/// Score a decode that produced nothing at all (sync never found): every
/// reference bit counts as an error.
[[nodiscard]] FrameResult score_lost_packet(
    std::span<const std::uint8_t> reference);

}  // namespace tinysdr::phy
