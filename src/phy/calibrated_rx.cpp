#include "phy/calibrated_rx.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "dsp/cfo.hpp"
#include "impair/correct.hpp"
#include "obs/metrics.hpp"

namespace tinysdr::phy {

CalibratedRx::CalibratedRx(const PhyRx& inner, RxCalibration calibration)
    : inner_(&inner), calibration_(calibration) {}

CalibratedRx::CalibratedRx(std::unique_ptr<PhyRx> inner,
                           RxCalibration calibration)
    : inner_(inner.get()),
      owned_(std::move(inner)),
      calibration_(calibration) {}

FrameResult CalibratedRx::demodulate(
    std::span<const dsp::Complex> iq,
    std::span<const std::uint8_t> reference) const {
  // Local copy: demodulate() borrows a const capture and must stay
  // thread-safe, so all correction happens on stack-owned storage.
  std::vector<dsp::Complex> work(iq.begin(), iq.end());

  if (calibration_.dc_notch) impair::remove_dc(work);
  if (calibration_.iq_correct) impair::correct_iq_imbalance(work);

  obs::Registry* registry = obs::metrics();
  if (calibration_.cfo_correct) {
    const dsp::CfoEstimatorConfig cfg{calibration_.cfo_lag,
                                      calibration_.cfo_bias,
                                      calibration_.cfo_power};
    const std::size_t window =
        calibration_.cfo_window == 0
            ? work.size()
            : std::min(calibration_.cfo_window, work.size());
    const std::span<const dsp::Complex> head{work.data(), window};
    const double est = dsp::estimate_cfo(head, cfg);
    dsp::mix_cfo(work, -est);
    if (registry != nullptr) {
      const double rate = inner_->sample_rate().value();
      const auto spec = obs::HistogramSpec::log_scale(1e-3, 1e6, 72);
      registry->histogram("impair.cfo_estimate_hz", spec)
          .observe(std::fabs(est) * rate);
      registry->histogram("impair.cfo_residual_hz", spec)
          .observe(std::fabs(dsp::estimate_cfo(head, cfg)) * rate);
    }
  }
  if (registry != nullptr) registry->counter("impair.cal.frames").add(1.0);

  return inner_->demodulate(work, reference);
}

double measure_cfo_bias(const PhyTx& tx, const RxCalibration& cal,
                        std::size_t pad_samples) {
  // A short fixed pattern with bit variety, so the reference waveform
  // exercises the modulation the way real payloads do.
  static constexpr std::uint8_t kPattern[] = {0xA5, 0x3C, 0x0F, 0x96,
                                              0x5A, 0xC3, 0xF0, 0x69};
  std::size_t n = sizeof(kPattern);
  if (tx.max_payload() < n) n = tx.max_payload();
  dsp::Samples wave(pad_samples, dsp::Complex{0.0F, 0.0F});
  tx.modulate(std::span(kPattern, n), wave);
  wave.resize(wave.size() + pad_samples, dsp::Complex{0.0F, 0.0F});
  const std::size_t window =
      cal.cfo_window == 0 ? wave.size() : std::min(cal.cfo_window, wave.size());
  return dsp::estimate_cfo(
      std::span<const dsp::Complex>{wave.data(), window},
      {.lag = cal.cfo_lag, .bias_cycles_per_sample = 0.0,
       .power = cal.cfo_power});
}

RxCalibration default_calibration(const RegisteredPhy& entry) {
  RxCalibration cal;
  cal.cfo_lag = entry.cfo_lag;
  cal.cfo_power = entry.cfo_power;
  cal.cfo_window = entry.cfo_window;
  cal.cfo_bias = measure_cfo_bias(*entry.make_tx(), cal, entry.pad_samples);
  return cal;
}

std::unique_ptr<PhyRx> make_calibrated_rx(const RegisteredPhy& entry) {
  return make_calibrated_rx(entry, default_calibration(entry));
}

std::unique_ptr<PhyRx> make_calibrated_rx(const RegisteredPhy& entry,
                                          RxCalibration calibration) {
  return std::make_unique<CalibratedRx>(entry.make_rx(), calibration);
}

}  // namespace tinysdr::phy
