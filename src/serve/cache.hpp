// Content-addressed sweep-point cache with an LRU byte budget and a
// newline-delimited JSON journal.
//
// The unit of memoization is one LinkSimulator sweep point: PR 4's
// grid-independent point seeds make a point's trials a pure function of
// (phy, trial-plan parameters, point seed), so a cached PointResult is
// byte-identical to recomputing it — from any grid, at any thread count,
// in any process. The key is a canonical string spelling exactly those
// inputs plus a cache schema version; bump kCacheVersion whenever trial
// semantics change and every stale entry misses by construction.
//
// Persistence is an append-only journal: every insert is one JSON line,
// so a killed server loses at most the line being written. load_journal()
// replays the file, skipping corrupt lines (counted, never fatal) and
// re-applying the LRU budget; this is what lets a restarted server resume
// a partial campaign with byte-identical output.
#pragma once

#include <cstdint>
#include <fstream>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "phy/link_sim.hpp"

namespace tinysdr::serve {

/// Bump when PointResult layout or LinkSimulator trial semantics change;
/// old journal entries then stop matching any lookup key.
inline constexpr int kCacheVersion = 1;

/// Canonical key for one sweep point. `point_seed` is
/// LinkSimulator::point_seed(base_seed, rssi) — already grid-independent —
/// and the doubles are keyed by bit pattern, not formatting.
[[nodiscard]] std::string point_cache_key(std::string_view phy_name,
                                          std::uint64_t point_seed,
                                          std::size_t trials,
                                          std::size_t payload_bytes,
                                          std::size_t pad_samples,
                                          double noise_figure_db);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t corrupt = 0;  ///< journal lines skipped on load
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

class SweepCache {
 public:
  /// `max_bytes` bounds key + entry storage; 0 disables caching entirely
  /// (every lookup misses, inserts are dropped).
  explicit SweepCache(std::size_t max_bytes = std::size_t{64} << 20);

  /// Replay `path` into the cache (oldest line first, so journal order is
  /// LRU order) and keep it open for appending subsequent inserts. Corrupt
  /// or truncated lines bump the corrupt counter — and the thread-local
  /// obs `serve.cache.corrupt` counter — and are skipped. Returns the
  /// number of entries applied; a missing file is an empty cache, not an
  /// error.
  std::size_t attach_journal(const std::string& path);

  [[nodiscard]] std::optional<phy::PointResult> lookup(const std::string& key);
  void insert(const std::string& key, const phy::PointResult& result);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    std::string key;
    phy::PointResult result;
  };

  // One journal line: {"k":"...","r":[rssi,frames,...]}. Append under
  // lock; `journal` false suppresses re-journaling during replay.
  void insert_locked(const std::string& key, const phy::PointResult& result,
                     bool journal);
  [[nodiscard]] static std::size_t entry_bytes(const std::string& key);

  mutable std::mutex mu_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::ofstream journal_;
  CacheStats stats_;
};

}  // namespace tinysdr::serve
