#include "serve/protocol.hpp"

#include <sstream>

#include "obs/json.hpp"
#include "serve/engine.hpp"

namespace tinysdr::serve {

namespace {

using obs::JsonValue;
using obs::json_number;
using obs::json_quote;

Response error_response(const std::string& message) {
  Response r;
  r.lines.push_back("{\"ok\":false,\"error\":" + json_quote(message) + "}");
  return r;
}

std::string status_line(const JobStatus& s) {
  std::ostringstream out;
  out << "{\"ok\":true,\"id\":" << s.id
      << ",\"state\":" << json_quote(to_string(s.state))
      << ",\"attempts\":" << s.attempts
      << ",\"cache_hits\":" << s.cache_hits
      << ",\"cache_misses\":" << s.cache_misses << ",\"result_retained\":"
      << (s.result_retained ? "true" : "false");
  if (!s.error.empty()) out << ",\"error\":" << json_quote(s.error);
  out << "}";
  return out.str();
}

}  // namespace

Response handle_line(Engine& engine, std::string_view line) {
  auto doc = JsonValue::parse(line);
  if (!doc || !doc->is_object())
    return error_response("request is not a JSON object");
  const std::string_view type = doc->string_or("type", "");

  if (type == "submit") {
    const JsonValue* job = doc->find("job");
    if (job == nullptr) return error_response("submit has no 'job' member");
    std::string error;
    auto spec = parse_job(*job, error);
    if (!spec) return error_response(error);
    const std::uint64_t id = engine.submit(std::move(*spec));
    Response r;
    r.lines.push_back("{\"ok\":true,\"id\":" + std::to_string(id) +
                      ",\"state\":\"queued\"}");
    r.submitted = true;
    return r;
  }

  if (type == "status" || type == "result") {
    const double raw_id = doc->number_or("id", -1.0);
    if (raw_id < 0) return error_response("missing or bad 'id'");
    const auto id = static_cast<std::uint64_t>(raw_id);
    auto status = engine.status(id);
    if (!status)
      return error_response("no job with id " + std::to_string(id));
    if (type == "status") {
      Response r;
      r.lines.push_back(status_line(*status));
      return r;
    }
    auto result = engine.result_json(id);
    if (!result) {
      Response r;
      r.lines.push_back(
          "{\"ok\":false,\"id\":" + std::to_string(id) + ",\"state\":" +
          json_quote(to_string(status->state)) +
          ",\"error\":\"result not available\"}");
      return r;
    }
    Response r;
    r.lines.push_back("{\"ok\":true,\"id\":" + std::to_string(id) +
                      ",\"state\":\"done\",\"lines\":1}");
    r.lines.push_back(std::move(*result));
    return r;
  }

  if (type == "stats") {
    std::ostringstream out;
    out << "{\"ok\":true,\"stats\":{";
    bool first = true;
    for (const auto& [name, value] : engine.stats()) {
      if (!first) out << ",";
      first = false;
      out << json_quote(name) << ":" << json_number(value);
    }
    out << "}}";
    Response r;
    r.lines.push_back(out.str());
    return r;
  }

  if (type == "ping") {
    Response r;
    r.lines.push_back("{\"ok\":true,\"pong\":true}");
    return r;
  }

  if (type == "shutdown") {
    Response r;
    r.lines.push_back("{\"ok\":true,\"stopping\":true}");
    r.shutdown = true;
    return r;
  }

  return error_response("unknown request type '" + std::string(type) + "'");
}

}  // namespace tinysdr::serve
