#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "serve/engine.hpp"

namespace tinysdr::serve {

namespace {

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(Engine& engine, ServerConfig config)
    : engine_(&engine), config_(std::move(config)) {}

Server::~Server() {
  stop();
  if (runner_.joinable()) runner_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!config_.unix_socket.empty()) ::unlink(config_.unix_socket.c_str());
}

bool Server::start(std::string& error) {
  const bool want_unix = !config_.unix_socket.empty();
  const bool want_tcp = config_.tcp_port >= 0;
  if (want_unix == want_tcp) {
    error = "choose exactly one of --socket and --tcp";
    return false;
  }

  if (want_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_socket.size() >= sizeof(addr.sun_path)) {
      error = "socket path too long: " + config_.unix_socket;
      return false;
    }
    std::strncpy(addr.sun_path, config_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      error = "socket(): " + std::string(std::strerror(errno));
      return false;
    }
    ::unlink(config_.unix_socket.c_str());  // replace a stale socket file
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      error = "bind(" + config_.unix_socket +
              "): " + std::string(std::strerror(errno));
      return false;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      error = "socket(): " + std::string(std::strerror(errno));
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local clients only
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      error = "bind(127.0.0.1:" + std::to_string(config_.tcp_port) +
              "): " + std::string(std::strerror(errno));
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0)
      resolved_port_ = ntohs(bound.sin_port);
  }

  if (::listen(listen_fd_, 16) != 0) {
    error = "listen(): " + std::string(std::strerror(errno));
    return false;
  }
  runner_ = std::thread([this] { runner_loop(); });
  return true;
}

void Server::runner_loop() {
  while (!stop_.load()) {
    if (engine_->wait_for_job(std::chrono::milliseconds(100)))
      engine_->run_next();
  }
}

void Server::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (!stop_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client hung up
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t newline = 0;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      Response response = handle_line(*engine_, line);
      std::string out;
      for (const std::string& l : response.lines) {
        out += l;
        out += "\n";
      }
      if (!send_all(fd, out)) return;
      if (response.shutdown) {
        stop();
        return;
      }
    }
  }
}

void Server::serve_forever() {
  while (!stop_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void Server::stop() {
  if (stop_.exchange(true)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

}  // namespace tinysdr::serve
